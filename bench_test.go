// Package bench regenerates the performance-flavoured claims of
// "Measures in SQL" (see EXPERIMENTS.md): the equivalence and relative
// cost of the four query forms of Listing 12 (E13), the execution
// strategies for measure evaluation — inline vs memoized ("localized
// self-join", §5.1) vs naive correlated (E12), planning overhead of the
// measure expansion (E19), and the conciseness metrics of §5.7 (E14).
//
// Run with: go test -bench=. -benchmem
package bench

import (
	"fmt"
	"testing"

	"github.com/measures-sql/msql/internal/datagen"
	"github.com/measures-sql/msql/msql"
)

// loadDB builds a database with a synthetic Orders table of n rows over
// p products.
func loadDB(tb testing.TB, n, products int) *msql.DB {
	tb.Helper()
	db := msql.Open()
	if err := db.Exec(datagen.SetupSQL); err != nil {
		tb.Fatal(err)
	}
	cfg := datagen.Config{Seed: 7, Customers: 100, Products: products, Orders: n, Years: 3}
	ds := datagen.Generate(cfg)
	if err := db.InsertRows("Customers", ds.Customers); err != nil {
		tb.Fatal(err)
	}
	if err := db.InsertRows("Orders", ds.Orders); err != nil {
		tb.Fatal(err)
	}
	return db
}

// Listing 12: the four equivalent formulations of "orders with revenue
// above their product's average".
var listing12 = map[string]string{
	"correlated": `
		SELECT o.prodName, o.orderDate
		FROM Orders AS o
		WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS o1
		                   WHERE o1.prodName = o.prodName)`,
	"selfjoin": `
		SELECT o.prodName, o.orderDate
		FROM Orders AS o
		LEFT JOIN (SELECT prodName, AVG(revenue) AS avgRevenue
		           FROM Orders GROUP BY prodName) AS o2
		  ON o.prodName = o2.prodName
		WHERE o.revenue > o2.avgRevenue`,
	"window": `
		SELECT o.prodName, o.orderDate
		FROM (SELECT prodName, revenue, orderDate,
		             AVG(revenue) OVER (PARTITION BY prodName) AS avgRevenue
		      FROM Orders) AS o
		WHERE o.revenue > o.avgRevenue`,
	"measure": `
		SELECT o.prodName, o.orderDate
		FROM (SELECT prodName, orderDate, revenue,
		             AVG(revenue) AS MEASURE avgRevenue
		      FROM Orders) AS o
		WHERE o.revenue > o.avgRevenue AT (WHERE prodName = o.prodName)`,
}

// BenchmarkListing12Forms (E13) measures the four forms at two scales.
// With default settings the WinMagic rule (§5.1) rewrites both the
// correlated subquery and the measure form into window aggregates, so
// all four forms land within a small factor of each other — exactly the
// paper's equivalence. BenchmarkListing12CorrelatedMemo and
// BenchmarkListing12NaiveCorrelated show the costs without the rewrite.
func BenchmarkListing12Forms(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		db := loadDB(b, n, 20)
		for _, form := range []string{"correlated", "selfjoin", "window", "measure"} {
			b.Run(fmt.Sprintf("%s/orders=%d", form, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := db.Query(listing12[form]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkListing12CorrelatedMemo (E13 ablation) disables WinMagic but
// keeps subquery memoization: one scan per distinct product (the
// "localized self-join" strategy).
func BenchmarkListing12CorrelatedMemo(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		db := loadDB(b, n, 20)
		db.SetStrategy(msql.StrategyMemo)
		b.Run(fmt.Sprintf("orders=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(listing12["correlated"]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkListing12NaiveCorrelated (E13 ablation) runs the correlated
// form with every strategy disabled: O(rows × rows-per-product) work,
// the cost WinMagic-style rewrites (and measures) avoid.
func BenchmarkListing12NaiveCorrelated(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		db := loadDB(b, n, 20)
		db.SetStrategy(msql.StrategyNaive)
		b.Run(fmt.Sprintf("orders=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(listing12["correlated"]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// measureQuery is the canonical measure aggregation for the strategy
// benchmarks: per-product profit margin through a measure view.
const measureQuery = `
	SELECT prodName, AGGREGATE(margin) AS margin
	FROM (SELECT *, (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
	      FROM Orders) AS o
	GROUP BY prodName`

// BenchmarkContextStrategies (E12) compares the three execution
// strategies for measure evaluation across data sizes and group counts.
// Expected shape: inline ≈ plain SQL; memo pays one extra scan per
// distinct context; naive pays one scan per group (quadratic in groups ×
// rows).
func BenchmarkContextStrategies(b *testing.B) {
	strategies := []struct {
		name string
		s    msql.Strategy
	}{
		{"inline", msql.StrategyDefault},
		{"memo", msql.StrategyMemo},
		{"naive", msql.StrategyNaive},
	}
	for _, n := range []int{1000, 10000} {
		for _, products := range []int{10, 100} {
			db := loadDB(b, n, products)
			for _, st := range strategies {
				if st.name == "naive" && n > 1000 && products > 10 {
					// Keep the quadratic case bounded; the 1k point
					// already shows the blow-up.
					continue
				}
				b.Run(fmt.Sprintf("%s/orders=%d/groups=%d", st.name, n, products), func(b *testing.B) {
					db.SetStrategy(st.s)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := db.Query(measureQuery); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
			db.SetStrategy(msql.StrategyDefault)
		}
	}
}

// BenchmarkPlainAggregateBaseline is the measure-free control for E12:
// the same aggregation written directly against Orders.
func BenchmarkPlainAggregateBaseline(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		db := loadDB(b, n, 100)
		b.Run(fmt.Sprintf("orders=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := db.Query(`
					SELECT prodName,
					       (SUM(revenue) - SUM(cost)) / SUM(revenue) AS margin
					FROM Orders GROUP BY prodName`)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRollupVisible (Listing 8 shape at scale): ROLLUP totals with
// VISIBLE and default contexts — three measures per output row, each a
// different evaluation context.
func BenchmarkRollupVisible(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		db := loadDB(b, n, 20)
		b.Run(fmt.Sprintf("orders=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := db.Query(`
					SELECT o.prodName, COUNT(*) AS c,
					       AGGREGATE(o.rev) AS rAgg,
					       o.rev AT (VISIBLE) AS rViz,
					       o.rev AS r
					FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
					WHERE o.custName <> 'cust0001'
					GROUP BY ROLLUP(o.prodName)`)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExpandOverhead (E19): the planning-side cost of the measure
// machinery — parse+bind+optimize of a measure query vs. the equivalent
// plain SQL, plus the full SQL-to-SQL expansion.
func BenchmarkExpandOverhead(b *testing.B) {
	db := loadDB(b, 100, 10)
	db.MustExec(`CREATE VIEW EO AS
		SELECT *, (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
		FROM Orders`)
	measureSQL := `SELECT prodName, AGGREGATE(margin) AS m FROM EO GROUP BY prodName`
	plainSQL := `SELECT prodName, (SUM(revenue) - SUM(cost)) / SUM(revenue) AS m
	             FROM Orders GROUP BY prodName`
	b.Run("explain-measure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Explain(measureSQL); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("explain-plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Explain(plainSQL); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("expand-to-sql", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Expand(measureSQL); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkJoinedMeasure (Listing 9 shape at scale): measures linked
// through a join, exercising the semijoin context-link path.
func BenchmarkJoinedMeasure(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		db := loadDB(b, n, 20)
		db.MustExec(`CREATE VIEW EC AS
			SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers`)
		b.Run(fmt.Sprintf("orders=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := db.Query(`
					SELECT o.prodName, COUNT(*) AS c,
					       c.avgAge AT (VISIBLE) AS visibleAvgAge
					FROM Orders AS o
					JOIN EC AS c USING (custName)
					WHERE c.custAge >= 18
					GROUP BY o.prodName`)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWithinDistinct measures the grain-preserving aggregate clause
// (§6.3) against the plain weighted aggregate it corrects.
func BenchmarkWithinDistinct(b *testing.B) {
	db := loadDB(b, 10000, 20)
	queries := map[string]string{
		"weighted": `
			SELECT o.prodName, AVG(c.custAge) AS a
			FROM Orders AS o JOIN Customers AS c USING (custName)
			GROUP BY o.prodName`,
		"within-distinct": `
			SELECT o.prodName, AVG(c.custAge) WITHIN DISTINCT (c.custName) AS a
			FROM Orders AS o JOIN Customers AS c USING (custName)
			GROUP BY o.prodName`,
		"measure": `
			SELECT o.prodName, AGGREGATE(c.avgAge) AS a
			FROM Orders AS o
			JOIN (SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers) AS c
			  USING (custName)
			GROUP BY o.prodName`,
	}
	for _, name := range []string{"weighted", "within-distinct", "measure"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(queries[name]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWindowFunctions exercises the window operator at scale.
func BenchmarkWindowFunctions(b *testing.B) {
	db := loadDB(b, 10000, 20)
	b.Run("partition-agg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := db.Query(`
				SELECT prodName, AVG(revenue) OVER (PARTITION BY prodName) AS a
				FROM Orders`)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("running-sum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := db.Query(`
				SELECT orderDate, SUM(revenue) OVER (ORDER BY orderDate) AS run
				FROM Orders`)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("qualify-topk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := db.Query(`
				SELECT prodName, revenue FROM Orders
				QUALIFY ROW_NUMBER() OVER (PARTITION BY prodName ORDER BY revenue DESC) <= 3`)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRollupCubeMeasures: grouping-set evaluation with measures.
func BenchmarkRollupCubeMeasures(b *testing.B) {
	db := loadDB(b, 10000, 20)
	db.MustExec(`CREATE VIEW MV AS
		SELECT *, YEAR(orderDate) AS y, SUM(revenue) AS MEASURE rev FROM Orders`)
	b.Run("cube", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := db.Query(`
				SELECT prodName, y, AGGREGATE(rev) AS r
				FROM MV GROUP BY CUBE(prodName, y)`)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelAggregate (E21): a measure-free aggregation plus a
// measure aggregation over 50k orders, swept across executor worker
// counts. Results are bit-identical at every setting; throughput scales
// with available CPUs (on a single-CPU host the sweep is flat).
func BenchmarkParallelAggregate(b *testing.B) {
	db := loadDB(b, 50000, 100)
	db.MustExec(`CREATE VIEW PV AS
		SELECT *, SUM(revenue) AS MEASURE rev,
		       (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
		FROM Orders`)
	queries := map[string]string{
		"plain": `SELECT prodName, COUNT(*) AS c, SUM(revenue) AS s,
		                 MIN(revenue) AS mn, MAX(revenue) AS mx
		          FROM Orders GROUP BY prodName`,
		"measure": `SELECT prodName, AGGREGATE(margin) AS m, AGGREGATE(rev) AS r
		            FROM PV GROUP BY prodName`,
	}
	for _, qname := range []string{"plain", "measure"} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", qname, workers), func(b *testing.B) {
				db.SetWorkers(workers)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.Query(queries[qname]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	db.SetWorkers(0)
}

// BenchmarkParallelMemo (E21): the memo strategy's shared measure-context
// cache under multi-worker evaluation — each distinct context is computed
// once (singleflight) regardless of how many workers request it.
func BenchmarkParallelMemo(b *testing.B) {
	db := loadDB(b, 20000, 100)
	db.MustExec(`CREATE VIEW MVP AS
		SELECT *, SUM(revenue) AS MEASURE rev FROM Orders`)
	db.SetStrategy(msql.StrategyMemo)
	defer db.SetStrategy(msql.StrategyDefault)
	const q = `SELECT prodName, AGGREGATE(rev) AS r, rev AT (ALL) AS tot
	           FROM MVP GROUP BY prodName`
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			db.SetWorkers(workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	db.SetWorkers(0)
}

// vectorizedScanQuery is the E25 workload: a selective scan-filter-
// aggregate over the synthetic Orders table, the shape where columnar
// batch kernels pay off most (every expression is kernel-eligible).
const vectorizedScanQuery = `
	SELECT prodName, COUNT(*) AS cnt, SUM(revenue) AS rev,
	       SUM(revenue - cost) AS profit
	FROM Orders
	WHERE revenue > 20 AND cost < 60
	GROUP BY prodName`

// BenchmarkRowScanFilterAgg (E25 baseline): the workload on the
// row-at-a-time engine, single core.
func BenchmarkRowScanFilterAgg(b *testing.B) {
	db := loadDB(b, 50000, 20)
	db.SetWorkers(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(vectorizedScanQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVectorizedScanFilterAgg (E25): the same workload with
// columnar batch execution, single core. The differential harness
// (msql/differential_test.go) guarantees the answers are identical.
func BenchmarkVectorizedScanFilterAgg(b *testing.B) {
	db := loadDB(b, 50000, 20)
	db.SetWorkers(1)
	db.SetVectorized(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(vectorizedScanQuery); err != nil {
			b.Fatal(err)
		}
	}
}
