package msql_test

// Metamorphic properties of the rollup lattice's derivation rule
// (coarser grouping sets derived by merging finer aggregate states),
// plus a concurrency hammer that races queriers against inserters and
// a dirty-group rebuilder. Run with -race in CI.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/msql"
)

// rollupDB is a lattice-enabled random database.
func rollupDB(t testing.TB, seed int64) *msql.DB {
	t.Helper()
	db := buildRandomDB(t, seed, msql.StrategyDefault)
	db.SetRollups(true)
	return db
}

// queryMap runs a two-column (key, int) query and returns key→value.
func queryMap(t *testing.T, db *msql.DB, sql string) map[string]int64 {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	out := map[string]int64{}
	for _, row := range res.Rows {
		k := "NULL"
		if !row[0].Null {
			k = row[0].String()
		}
		if row[1].Null {
			continue
		}
		out[k] = row[1].I
	}
	return out
}

// TestRollupMetamorphicCoarseFromFine checks the derivation rule
// end-to-end: the engine's coarse answer (served from the lattice, by
// merging the fine node's states when the fine node was built first)
// must equal the test's own recombination of the fine answer.
func TestRollupMetamorphicCoarseFromFine(t *testing.T) {
	for _, agg := range []struct {
		name, fn string
		combine  func(a, b int64) int64
	}{
		{"sum", "SUM(revenue)", func(a, b int64) int64 { return a + b }},
		{"count", "COUNT(*)", func(a, b int64) int64 { return a + b }},
		{"min", "MIN(revenue)", func(a, b int64) int64 {
			if b < a {
				return b
			}
			return a
		}},
		{"max", "MAX(revenue)", func(a, b int64) int64 {
			if b > a {
				return b
			}
			return a
		}},
	} {
		agg := agg
		t.Run(agg.name, func(t *testing.T) {
			db := rollupDB(t, 7)
			// Materialize the fine node first so the coarse query is
			// answered by merging its states, not by a fresh scan.
			fine, err := db.Query(fmt.Sprintf(
				"SELECT prodName, custName, %s FROM Orders GROUP BY prodName, custName", agg.fn))
			if err != nil {
				t.Fatal(err)
			}
			want := map[string]int64{}
			for _, row := range fine.Rows {
				k := "NULL"
				if !row[0].Null {
					k = row[0].String()
				}
				if row[2].Null {
					continue
				}
				if cur, ok := want[k]; ok {
					want[k] = agg.combine(cur, row[2].I)
				} else {
					want[k] = row[2].I
				}
			}
			got := queryMap(t, db, fmt.Sprintf(
				"SELECT prodName, %s FROM Orders GROUP BY prodName", agg.fn))
			if len(got) != len(want) {
				t.Fatalf("group count: recombined=%d coarse=%d", len(want), len(got))
			}
			for k, w := range want {
				if got[k] != w {
					t.Errorf("%s: recombined=%d coarse=%d", k, w, got[k])
				}
			}
			if hits := db.RollupStats().Hits; hits < 2 {
				t.Fatalf("expected both queries lattice-answered, hits=%d", hits)
			}
		})
	}
}

// TestRollupMetamorphicRollupConsistency checks the multi-set shape: in
// a GROUP BY ROLLUP result the subtotal rows must equal the sum of
// their detail rows, and the grand total the sum of subtotals, when
// both levels are served from one lattice node.
func TestRollupMetamorphicRollupConsistency(t *testing.T) {
	db := rollupDB(t, 11)
	res, err := db.Query(`SELECT prodName, custName, SUM(revenue), GROUPING(custName), GROUPING(prodName)
		FROM Orders GROUP BY ROLLUP(prodName, custName)`)
	if err != nil {
		t.Fatal(err)
	}
	detail := map[string]int64{}
	subtotal := map[string]int64{}
	var grand, grandWant int64
	key := func(v sqltypes.Value) string {
		if v.Null {
			return "NULL"
		}
		return v.String()
	}
	for _, row := range res.Rows {
		sum := int64(0)
		if !row[2].Null {
			sum = row[2].I
		}
		gCust, gProd := row[3].I, row[4].I
		switch {
		case gProd == 1:
			grand = sum
		case gCust == 1:
			subtotal[key(row[0])] = sum
		default:
			detail[key(row[0])] += sum
		}
	}
	for k, want := range detail {
		if subtotal[k] != want {
			t.Errorf("subtotal %s: rollup=%d detail-sum=%d", k, subtotal[k], want)
		}
		grandWant += want
	}
	if grand != grandWant {
		t.Errorf("grand total: rollup=%d subtotal-sum=%d", grand, grandWant)
	}
	if db.RollupStats().Hits == 0 {
		t.Fatal("ROLLUP query was not lattice-answered")
	}
}

// TestRollupMetamorphicAtAllDim checks the measure-context derivation:
// rev AT (ALL custName) grouped by (prodName, custName) must equal, on
// every row, the union-of-slices total — the sum of per-custName rev
// values for that prodName computed from a separate fine query.
func TestRollupMetamorphicAtAllDim(t *testing.T) {
	db := rollupDB(t, 13)
	fine, err := db.Query(`SELECT prodName, custName, rev FROM EO GROUP BY prodName, custName`)
	if err != nil {
		t.Fatal(err)
	}
	perProd := map[string]int64{}
	key := func(v sqltypes.Value) string {
		if v.Null {
			return "NULL"
		}
		return v.String()
	}
	for _, row := range fine.Rows {
		if !row[2].Null {
			perProd[key(row[0])] += row[2].I
		}
	}
	all, err := db.Query(`SELECT prodName, custName, rev AT (ALL custName) AS r
		FROM EO GROUP BY prodName, custName`)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Rows) != len(fine.Rows) {
		t.Fatalf("row count: fine=%d at-all=%d", len(fine.Rows), len(all.Rows))
	}
	for _, row := range all.Rows {
		want := perProd[key(row[0])]
		var got int64
		if !row[2].Null {
			got = row[2].I
		}
		if got != want {
			t.Errorf("prodName=%s custName=%s: AT (ALL custName)=%d union-of-slices=%d",
				key(row[0]), key(row[1]), got, want)
		}
	}
	if db.RollupStats().Hits == 0 {
		t.Fatal("AT (ALL custName) query was not lattice-answered")
	}
}

// TestRollupRaceHammer races lattice-answered queries against
// inserters and an AVG querier (AVG states are order-sensitive, so its
// node exercises the dirty-mark/lazy-rebuild path) on one shared
// database. Run under -race in CI; also asserts no goroutine leaks.
func TestRollupRaceHammer(t *testing.T) {
	db := rollupDB(t, 17)
	base := runtime.NumGoroutine()
	const iterations = 40
	var wg sync.WaitGroup
	fatal := make(chan error, 8)
	report := func(err error) {
		select {
		case fatal <- err:
		default:
		}
	}
	// Queriers: exactly-mergeable dashboards.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				if _, err := db.Query(`SELECT prodName, SUM(revenue), COUNT(*) FROM Orders GROUP BY prodName`); err != nil {
					report(fmt.Errorf("querier: %w", err))
					return
				}
			}
		}()
	}
	// Dirty-rebuilder: order-sensitive aggregate, rebuilt lazily after
	// every insert round.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iterations; i++ {
			if _, err := db.Query(`SELECT custName, AVG(revenue) FROM Orders GROUP BY custName`); err != nil {
				report(fmt.Errorf("rebuilder: %w", err))
				return
			}
		}
	}()
	// Inserters: concurrent INSERT batches.
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				stmt := fmt.Sprintf(
					"INSERT INTO Orders VALUES ('prod%03d', 'cust%04d', DATE '2024-03-%02d', %d, %d)",
					g, i%12, 1+i%28, 10+i, 5+i/2)
				if err := db.Exec(stmt); err != nil {
					report(fmt.Errorf("inserter: %w", err))
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-fatal:
		t.Fatal(err)
	default:
	}
	// Quiesced database must still agree with a fresh scan.
	st := db.RollupStats()
	if st.Hits == 0 {
		t.Fatal("hammer produced no lattice hits")
	}
	before := db.RollupStats().Hits
	want := queryMap(t, db, `SELECT prodName, SUM(revenue) FROM Orders GROUP BY prodName`)
	db.SetRollups(false)
	got := queryMap(t, db, `SELECT prodName, SUM(revenue) FROM Orders GROUP BY prodName`)
	if db.RollupStats().Hits != 0 || len(want) != len(got) {
		t.Fatalf("post-hammer state: hits after disable=%d rows lattice=%d direct=%d",
			db.RollupStats().Hits, len(want), len(got))
	}
	for k, w := range got {
		if want[k] != w {
			t.Errorf("post-hammer %s: lattice=%d direct=%d", k, want[k], w)
		}
	}
	_ = before
	waitGoroutines(t, base)
}
