package msql_test

// Metamorphic identities over AT-context transforms, checked across all
// three execution strategies × Workers ∈ {1, 4}:
//
//	(1) m AT (m1 m2)  ≡  (m AT (m2)) AT (m1)
//	    A modifier list applies left-to-right to the evaluation context,
//	    so the chained form nests the LAST list element innermost
//	    (established for ALL+SET in measures_test.go; here it is checked
//	    for every ordered pair of modifier kinds).
//	(2) AGGREGATE(m)  ≡  m AT (VISIBLE)        (paper §3.5)
//
// These are metamorphic relations: we never assert absolute values, only
// that syntactically different forms of the same context transform
// agree — on every strategy and worker count.

import (
	"fmt"
	"strings"
	"testing"

	"github.com/measures-sql/msql/msql"
)

// metaConfig is one execution configuration under test.
type metaConfig struct {
	name     string
	strategy msql.Strategy
	workers  int
}

func metaConfigs() []metaConfig {
	var cfgs []metaConfig
	for _, s := range []struct {
		name string
		s    msql.Strategy
	}{
		{"default", msql.StrategyDefault},
		{"memo", msql.StrategyMemo},
		{"naive", msql.StrategyNaive},
	} {
		for _, w := range []int{1, 4} {
			cfgs = append(cfgs, metaConfig{
				name:     fmt.Sprintf("%s/workers=%d", s.name, w),
				strategy: s.s,
				workers:  w,
			})
		}
	}
	return cfgs
}

func metaDBs(t *testing.T) map[string]*msql.DB {
	t.Helper()
	dbs := make(map[string]*msql.DB)
	for _, cfg := range metaConfigs() {
		db := buildRandomDB(t, 77, cfg.strategy)
		db.SetWorkers(cfg.workers)
		dbs[cfg.name] = db
	}
	return dbs
}

func metaRows(t *testing.T, db *msql.DB, q string) [][]string {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("query failed: %v\nSQL: %s", err, q)
	}
	return rowsAsStrings(res)
}

func metaSame(t *testing.T, label, qa, qb string, a, b [][]string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: row count %d vs %d\nLHS: %s\nRHS: %s", label, len(a), len(b), qa, qb)
	}
	for r := range a {
		if strings.Join(a[r], "|") != strings.Join(b[r], "|") {
			t.Fatalf("%s: row %d differs:\n%v\n%v\nLHS: %s\nRHS: %s", label, r, a[r], b[r], qa, qb)
		}
	}
}

// TestMetamorphicAtListVsChain checks identity (1) for every ordered
// pair of distinct modifiers, on every strategy × worker configuration.
// All configurations must also agree with each other, so this doubles as
// a strategy/parallelism oracle for composed context transforms.
func TestMetamorphicAtListVsChain(t *testing.T) {
	mods := []struct{ name, text string }{
		{"allProd", "ALL prodName"},
		{"allCust", "ALL custName"},
		{"all", "ALL"},
		{"setCust", "SET custName = 'cust0003'"},
		{"setYear", "SET orderYear = CURRENT orderYear - 1"},
		{"where", "WHERE revenue > 50"},
		{"visible", "VISIBLE"},
	}
	dbs := metaDBs(t)
	cfgs := metaConfigs()

	for i, m1 := range mods {
		for j, m2 := range mods {
			if i == j {
				continue
			}
			label := m1.name + "+" + m2.name
			lhs := fmt.Sprintf(
				`SELECT prodName, rev AT (%s %s) AS v FROM EO GROUP BY prodName ORDER BY 1 NULLS FIRST`,
				m1.text, m2.text)
			rhs := fmt.Sprintf(
				`SELECT prodName, rev AT (%s) AT (%s) AS v FROM EO GROUP BY prodName ORDER BY 1 NULLS FIRST`,
				m2.text, m1.text)

			var ref [][]string
			for _, cfg := range cfgs {
				db := dbs[cfg.name]
				a := metaRows(t, db, lhs)
				b := metaRows(t, db, rhs)
				metaSame(t, label+" list-vs-chain ["+cfg.name+"]", lhs, rhs, a, b)
				if ref == nil {
					ref = a
				} else {
					metaSame(t, label+" vs reference config ["+cfg.name+"]", lhs, lhs, ref, a)
				}
			}
		}
	}
}

// TestMetamorphicAggregateVsVisible checks identity (2) on several query
// shapes — plain grouping, an outer WHERE (so VISIBLE must pick up the
// filter), two grouping keys, and a measure used inside arithmetic — on
// every strategy × worker configuration.
func TestMetamorphicAggregateVsVisible(t *testing.T) {
	shapes := []struct{ name, tmpl string }{
		{"plain",
			`SELECT prodName, %s AS v FROM EO GROUP BY prodName ORDER BY 1 NULLS FIRST`},
		{"filtered",
			`SELECT prodName, %s AS v FROM EO WHERE revenue > 20 GROUP BY prodName ORDER BY 1 NULLS FIRST`},
		{"twoKeys",
			`SELECT prodName, orderYear, %s AS v FROM EO GROUP BY prodName, orderYear ORDER BY 1 NULLS FIRST, 2`},
		{"arith",
			`SELECT custName, %s + 0 AS v FROM EO GROUP BY custName ORDER BY 1`},
	}
	measures := []struct{ agg, viz string }{
		{"AGGREGATE(rev)", "rev AT (VISIBLE)"},
		{"AGGREGATE(cnt)", "cnt AT (VISIBLE)"},
	}
	dbs := metaDBs(t)
	cfgs := metaConfigs()

	for _, shape := range shapes {
		for _, m := range measures {
			lhs := fmt.Sprintf(shape.tmpl, m.agg)
			rhs := fmt.Sprintf(shape.tmpl, m.viz)
			label := shape.name + "/" + m.agg
			var ref [][]string
			for _, cfg := range cfgs {
				db := dbs[cfg.name]
				a := metaRows(t, db, lhs)
				b := metaRows(t, db, rhs)
				metaSame(t, label+" aggregate-vs-visible ["+cfg.name+"]", lhs, rhs, a, b)
				if ref == nil {
					ref = a
				} else {
					metaSame(t, label+" vs reference config ["+cfg.name+"]", lhs, lhs, ref, a)
				}
			}
		}
	}
}
