package msql

import (
	"context"
	"fmt"
	"time"

	"github.com/measures-sql/msql/internal/engine"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// Stmt is a prepared statement: a parameterized query (`?` or `$n`
// placeholders) parsed once and executed many times. Executions go
// through the session plan cache, so after the first run the bind,
// optimize, and vectorized-compilation phases are skipped and only
// parameter values are injected.
//
//	stmt, _ := db.Prepare(`SELECT COUNT(*) FROM Orders WHERE revenue > ?`)
//	res, _ := stmt.Query(4)
type Stmt struct {
	db *DB
	ps *engine.PreparedStmt
}

// Prepare parses a single parameterized query and returns a reusable
// statement handle. Placeholders may be positional `?` (numbered left
// to right) or explicit `$1..$n`; parameter types are inferred from the
// argument values at execution time.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	ps, err := db.session.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, ps: ps}, nil
}

// NumParams returns the number of parameter placeholders.
func (s *Stmt) NumParams() int { return s.ps.NumParams() }

// Query executes the statement with the given arguments and returns its
// rows. Arguments may be Values or ordinary Go values (bool, integer
// and float types, string, time.Time, nil for NULL).
func (s *Stmt) Query(args ...any) (*Result, error) {
	return s.QueryContext(context.Background(), args)
}

// QueryContext is Query under a context with per-call options.
func (s *Stmt) QueryContext(ctx context.Context, args []any, opts ...Option) (*Result, error) {
	vals, err := BindArgs(args)
	if err != nil {
		return nil, err
	}
	return s.ps.ExecuteContext(ctx, vals, overrides(opts))
}

// Exec executes the statement, discarding result rows.
func (s *Stmt) Exec(args ...any) error {
	_, err := s.Query(args...)
	return err
}

// ExecContext is Exec under a context with per-call options.
func (s *Stmt) ExecContext(ctx context.Context, args []any, opts ...Option) error {
	_, err := s.QueryContext(ctx, args, opts...)
	return err
}

// BindArgs converts Go argument values to SQL values for prepared
// execution: nil → NULL, bool → BOOLEAN, integers → INTEGER, floats →
// DOUBLE, string → VARCHAR, time.Time → DATE. Values pass through.
func BindArgs(args []any) ([]Value, error) {
	vals := make([]Value, len(args))
	for i, a := range args {
		v, err := bindArg(a)
		if err != nil {
			return nil, fmt.Errorf("argument %d: %w", i+1, err)
		}
		vals[i] = v
	}
	return vals, nil
}

func bindArg(a any) (Value, error) {
	switch a := a.(type) {
	case Value:
		return a, nil
	case nil:
		return sqltypes.Null(sqltypes.KindUnknown), nil
	case bool:
		return sqltypes.NewBool(a), nil
	case int:
		return sqltypes.NewInt(int64(a)), nil
	case int32:
		return sqltypes.NewInt(int64(a)), nil
	case int64:
		return sqltypes.NewInt(a), nil
	case float32:
		return sqltypes.NewFloat(float64(a)), nil
	case float64:
		return sqltypes.NewFloat(a), nil
	case string:
		return sqltypes.NewString(a), nil
	case time.Time:
		return sqltypes.NewDate(a.Year(), a.Month(), a.Day()), nil
	default:
		return Value{}, fmt.Errorf("unsupported parameter type %T", a)
	}
}

// PrepareNamed registers (or replaces) a named prepared statement in
// the session registry — the server-side half of the wire protocol's
// PREPARE message. It returns the statement's parameter count. The
// statement is then runnable via ExecuteNamed or SQL `EXECUTE name`.
func (db *DB) PrepareNamed(name, sql string) (int, error) {
	return db.session.PrepareNamed(name, sql)
}

// ExecuteNamed runs a named prepared statement with the given parameter
// values through the plan cache.
func (db *DB) ExecuteNamed(ctx context.Context, name string, args []Value, opts ...Option) (*Result, error) {
	return db.session.ExecuteNamed(ctx, name, args, overrides(opts))
}

// DeallocateNamed removes a named prepared statement, reporting whether
// it existed.
func (db *DB) DeallocateNamed(name string) bool {
	return db.session.DeallocateNamed(name)
}

// SetPlanCacheSize caps the session plan cache at n compiled plans
// (LRU-evicted beyond that); 0 disables plan caching entirely. The
// default is engine.DefaultPlanCacheSize (128). Safe to call while
// queries are in flight: executions already holding a cached plan keep
// it.
func (db *DB) SetPlanCacheSize(n int) { db.session.SetPlanCacheSize(n) }

// PlanCacheCounters is a point-in-time copy of the plan cache's
// hit/miss/eviction/invalidation counters; also embedded in Metrics().
type PlanCacheCounters = engine.PlanCacheCounters

// PlanCacheStats returns the plan cache's counters.
func (db *DB) PlanCacheStats() PlanCacheCounters {
	return db.session.PlanCacheCountersSnapshot()
}
