package msql_test

// Differential-testing harness for the vectorized execution engine
// (experiment E25's correctness side). Every generated query runs
// through the row engine and the vectorized engine, under each planning
// strategy and at 1 and 4 workers, and must return row-for-row
// identical results. The row engine is the oracle: it is the
// implementation every paper listing is tested against.
//
// The corpus size defaults to 80 queries per strategy and scales with
// MSQL_DIFF_QUERIES (the nightly CI run uses 500). On failure the
// harness prints the generator seed and the SQL, which reproduce the
// query deterministically.

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"github.com/measures-sql/msql/internal/qgen"
	"github.com/measures-sql/msql/msql"
)

// liftArgs converts the SQL literal texts recorded by a lifting
// generator into Go argument values for prepared execution: quoted
// strings, floats (the generator only emits them with a '.'), ints.
func liftArgs(t *testing.T, lits []string) []any {
	t.Helper()
	args := make([]any, len(lits))
	for i, l := range lits {
		switch {
		case strings.HasPrefix(l, "'"):
			args[i] = strings.Trim(l, "'")
		case strings.Contains(l, "."):
			f, err := strconv.ParseFloat(l, 64)
			if err != nil {
				t.Fatalf("lifted literal %q: %v", l, err)
			}
			args[i] = f
		default:
			n, err := strconv.ParseInt(l, 10, 64)
			if err != nil {
				t.Fatalf("lifted literal %q: %v", l, err)
			}
			args[i] = n
		}
	}
	return args
}

func diffCorpusSize(t testing.TB) int {
	if s := os.Getenv("MSQL_DIFF_QUERIES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad MSQL_DIFF_QUERIES=%q", s)
		}
		return n
	}
	return 80
}

// variant is one execution configuration compared against the row
// oracle.
type variant struct {
	name string
	opts []msql.Option
}

func diffVariants() []variant {
	return []variant{
		{"vec-w1", []msql.Option{msql.WithVectorized(true), msql.WithWorkers(1)}},
		{"vec-w4", []msql.Option{msql.WithVectorized(true), msql.WithWorkers(4)}},
		{"row-w4", []msql.Option{msql.WithVectorized(false), msql.WithWorkers(4)}},
	}
}

func flattenRows(res *msql.Result) []string {
	rows := rowsAsStrings(res)
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "|")
	}
	return out
}

// TestDifferentialRowVsVectorized is the harness. The oracle run is the
// row engine at Workers=1 under the strategy being tested; each variant
// must agree with it exactly (values after the shared 2-decimal float
// rendering), including on whether the query errors at all.
func TestDifferentialRowVsVectorized(t *testing.T) {
	const seed = 20240805
	corpus := diffCorpusSize(t)
	for _, strategy := range []struct {
		name string
		s    msql.Strategy
	}{
		{"inline", msql.StrategyDefault},
		{"memo", msql.StrategyMemo},
		{"naive", msql.StrategyNaive},
	} {
		strategy := strategy
		t.Run(strategy.name, func(t *testing.T) {
			db := buildRandomDB(t, 99, strategy.s)
			db.SetWorkers(1)
			gen := qgen.New(seed, qgen.DefaultCatalog())
			ctx := context.Background()
			vecBatchesBefore := db.Metrics().VecBatches
			for i := 0; i < corpus; i++ {
				q := gen.Query()
				fail := func(format string, args ...any) {
					t.Helper()
					t.Fatalf("query %d (seed %d)\nSQL: %s\n%s", i, seed, q, fmt.Sprintf(format, args...))
				}
				oracle, oracleErr := db.Query(q)
				for _, v := range diffVariants() {
					got, err := db.QueryContext(ctx, q, v.opts...)
					// Error agreement is presence, not message: the
					// vectorized engine may surface an equivalent error
					// from a different row of the batch.
					if (err == nil) != (oracleErr == nil) {
						fail("%s disagrees on error: oracle=%v variant=%v", v.name, oracleErr, err)
					}
					if oracleErr != nil {
						continue
					}
					want, have := flattenRows(oracle), flattenRows(got)
					if len(want) != len(have) {
						fail("%s row count: oracle=%d variant=%d", v.name, len(want), len(have))
					}
					for r := range want {
						if want[r] != have[r] {
							fail("%s row %d differs:\noracle:  %s\nvariant: %s", v.name, r, want[r], have[r])
						}
					}
				}
			}
			// The harness is only meaningful if the vectorized path
			// actually ran: batches must have been recorded.
			if db.Metrics().VecBatches == vecBatchesBefore {
				t.Fatal("no vectorized batches recorded across the corpus")
			}
		})
	}
}

// TestDifferentialPreparedVsDirect replays the generated corpus through
// PREPARE/EXECUTE: a lifting generator in lockstep with the plain one
// turns every literal into a $n parameter, the direct run of the plain
// query is the oracle, and the prepared run must agree bit for bit —
// including on whether the query errors. Each variant executes twice,
// so the second run exercises the cached compiled pipeline; both runs
// must match, and across the corpus the plan cache must record hits.
func TestDifferentialPreparedVsDirect(t *testing.T) {
	const seed = 20240805
	corpus := diffCorpusSize(t)
	for _, strategy := range []struct {
		name string
		s    msql.Strategy
	}{
		{"inline", msql.StrategyDefault},
		{"memo", msql.StrategyMemo},
		{"naive", msql.StrategyNaive},
	} {
		strategy := strategy
		t.Run(strategy.name, func(t *testing.T) {
			db := buildRandomDB(t, 99, strategy.s)
			db.SetWorkers(1)
			plain := qgen.New(seed, qgen.DefaultCatalog())
			lifted := qgen.New(seed, qgen.DefaultCatalog())
			lifted.SetLift(true)
			ctx := context.Background()
			hitsBefore := db.PlanCacheStats().Hits
			for i := 0; i < corpus; i++ {
				q := plain.Query()
				lq := lifted.Query()
				args := liftArgs(t, lifted.TakeParams())
				fail := func(format string, a ...any) {
					t.Helper()
					t.Fatalf("query %d (seed %d)\nSQL:    %s\nlifted: %s\nargs:   %v\n%s",
						i, seed, q, lq, args, fmt.Sprintf(format, a...))
				}
				oracle, oracleErr := db.Query(q)
				stmt, prepErr := db.Prepare(lq)
				if prepErr != nil {
					if oracleErr == nil {
						fail("prepare failed but direct query succeeded: %v", prepErr)
					}
					continue
				}
				for _, v := range diffVariants() {
					var prev []string
					for run := 0; run < 2; run++ {
						got, err := stmt.QueryContext(ctx, args, v.opts...)
						if (err == nil) != (oracleErr == nil) {
							fail("%s run %d disagrees on error: oracle=%v prepared=%v", v.name, run, oracleErr, err)
						}
						if oracleErr != nil {
							continue
						}
						want, have := flattenRows(oracle), flattenRows(got)
						if len(want) != len(have) {
							fail("%s run %d row count: oracle=%d prepared=%d", v.name, run, len(want), len(have))
						}
						for r := range want {
							if want[r] != have[r] {
								fail("%s run %d row %d differs:\noracle:   %s\nprepared: %s", v.name, run, r, want[r], have[r])
							}
						}
						if run == 1 {
							for r := range prev {
								if prev[r] != have[r] {
									fail("%s cold/warm runs differ at row %d:\ncold: %s\nwarm: %s", v.name, r, prev[r], have[r])
								}
							}
						}
						prev = have
					}
				}
			}
			if hits := db.PlanCacheStats().Hits; hits <= hitsBefore {
				t.Fatalf("no plan-cache hits across the prepared corpus (before=%d after=%d)", hitsBefore, hits)
			}
		})
	}
}
