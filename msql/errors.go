package msql

import "github.com/measures-sql/msql/internal/exec"

// Error is the structured error returned by every entry point of this
// package. Use errors.As to reach the fields:
//
//	var me *msql.Error
//	if errors.As(err, &me) {
//	    fmt.Println(me.Code, me.Phase, me.Hint)
//	}
//
// or match on a code sentinel directly:
//
//	if errors.Is(err, msql.ErrCanceled) { ... }
//
// Cancellation and timeout errors additionally unwrap to
// context.Canceled / context.DeadlineExceeded.
type Error = exec.Error

// ErrorCode classifies an Error; its constants are errors.Is sentinels.
type ErrorCode = exec.Code

const (
	// ErrParse: the statement text failed to lex or parse.
	ErrParse = exec.CodeParse
	// ErrBind: name resolution or type checking failed.
	ErrBind = exec.CodeBind
	// ErrExpand: measure expansion (AT-context rewriting) failed.
	ErrExpand = exec.CodeExpand
	// ErrRuntime: execution failed — bad cast, arithmetic overflow, or a
	// recovered internal panic.
	ErrRuntime = exec.CodeRuntime
	// ErrCanceled: the caller's context was canceled mid-statement.
	ErrCanceled = exec.CodeCanceled
	// ErrTimeout: the statement deadline (Limits.Timeout or a context
	// deadline) expired.
	ErrTimeout = exec.CodeTimeout
	// ErrResourceExhausted: a resource governor limit tripped (MaxRows,
	// MaxMemBytes, MaxSubqueryEvals, MaxExpansionDepth).
	ErrResourceExhausted = exec.CodeResourceExhausted
	// ErrUnavailable: a distributed query lost every endpoint of at least
	// one required shard after retries, failover, and hedging. The error
	// names the shards lost; no silently partial result is ever returned.
	ErrUnavailable = exec.CodeUnavailable
)
