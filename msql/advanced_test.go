package msql_test

// Advanced scenarios from the paper's discussion section: GROUPING_ID
// driving level-dependent formulas (§5.3), measures from both sides of a
// join (§4.2's inline TODO — "the evaluation context will have the
// dimensionality of the measure in question"), CUBE with measures, and
// deeper AT compositions.

import (
	"fmt"
	"strings"
	"testing"

	"github.com/measures-sql/msql/msql"
)

func TestGroupingID(t *testing.T) {
	db := open(t)
	got := mustRows(t, db, `
		SELECT prodName, custName, GROUPING_ID(prodName, custName) AS gid, COUNT(*) AS c
		FROM Orders
		GROUP BY ROLLUP(prodName, custName)
		ORDER BY gid, prodName NULLS LAST, custName NULLS LAST`)
	// gid 0: leaf rows; gid 1: custName rolled up; gid 3: grand total.
	if got[len(got)-1][2] != "3" || got[len(got)-1][3] != "5" {
		t.Errorf("grand total row: %v", got[len(got)-1])
	}
	leafs, mids, total := 0, 0, 0
	for _, row := range got {
		switch row[2] {
		case "0":
			leafs++
		case "1":
			mids++
		case "3":
			total++
		default:
			t.Errorf("unexpected GROUPING_ID %v", row)
		}
	}
	if leafs != 4 || mids != 3 || total != 1 {
		t.Errorf("level counts: %d leaf, %d mid, %d total", leafs, mids, total)
	}
}

// §5.3: "custom measures might use a different formula for different
// levels of a hierarchy ... GROUPING_ID can be used to identify the
// level." Here the per-product level shows the margin and rolled-up
// levels show total revenue instead.
func TestPerLevelFormulaWithGroupingID(t *testing.T) {
	db := open(t)
	got := mustRows(t, db, `
		SELECT prodName,
		       CASE WHEN GROUPING_ID(prodName) = 0
		            THEN AGGREGATE(margin)
		            ELSE AGGREGATE(rev) END AS levelValue
		FROM (SELECT *,
		        SUM(revenue) AS MEASURE rev,
		        (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
		      FROM Orders) AS o
		GROUP BY ROLLUP(prodName)
		ORDER BY prodName NULLS LAST`)
	want := [][]string{
		{"Acme", "0.6"},
		{"Happy", "0.47"},
		{"Whizz", "0.67"},
		{"NULL", "25"},
	}
	sameRows(t, got, want, "per-level formula")
}

// Measures from both sides of a join: each keeps the dimensionality of
// its own table.
func TestMeasuresFromBothJoinSides(t *testing.T) {
	db := open(t)
	got := mustRows(t, db, `
		WITH EO AS (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders),
		     EC AS (SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers)
		SELECT o.prodName,
		       AGGREGATE(o.rev) AS revenue,
		       AGGREGATE(c.avgAge) AS age
		FROM EO AS o
		JOIN EC AS c USING (custName)
		GROUP BY o.prodName
		ORDER BY o.prodName`)
	// rev keeps Orders' grain (sums order rows of the group); avgAge keeps
	// Customers' grain (each distinct customer once).
	want := [][]string{
		{"Acme", "5", "41"},
		{"Happy", "17", "32"},
		{"Whizz", "3", "17"},
	}
	sameRows(t, got, want, "two-sided measures")
}

func TestCubeWithMeasures(t *testing.T) {
	db := open(t)
	got := mustRows(t, db, `
		SELECT prodName, custName, AGGREGATE(rev) AS r
		FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
		GROUP BY CUBE(prodName, custName)
		ORDER BY prodName NULLS LAST, custName NULLS LAST, r`)
	// 4 leaf combos + 3 product totals + 3 customer totals + 1 grand = 11.
	if len(got) != 11 {
		t.Fatalf("CUBE rows: %d (%v)", len(got), got)
	}
	last := got[len(got)-1]
	if last[0] != "NULL" || last[1] != "NULL" || last[2] != "25" {
		t.Errorf("grand total: %v", last)
	}
}

func TestNestedAtComposition(t *testing.T) {
	db := open(t)
	// Deep chains: ((m AT (SET custName='Bob')) AT (ALL prodName)) AT (VISIBLE)
	// applies VISIBLE, then ALL prodName, then SET.
	got := mustRows(t, db, `
		SELECT prodName,
		       rev AT (VISIBLE) AT (ALL prodName) AT (SET custName = 'Bob') AS v
		FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
		WHERE custName <> 'Bob'
		GROUP BY prodName
		ORDER BY prodName`)
	// Application order is outermost-first: SET custName='Bob', then ALL
	// prodName, then VISIBLE (which adds custName <> 'Bob'). Bob's rows
	// conflict with VISIBLE's filter, so the result is the empty sum.
	for _, row := range got {
		if row[1] != "NULL" {
			t.Errorf("contradictory context should be empty → NULL, got %v", row)
		}
	}
	// Without VISIBLE the same chain yields Bob's total (9) everywhere.
	got = mustRows(t, db, `
		SELECT prodName,
		       rev AT (ALL prodName) AT (SET custName = 'Bob') AS v
		FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
		WHERE custName <> 'Bob'
		GROUP BY prodName
		ORDER BY prodName`)
	for _, row := range got {
		if row[1] != "9" {
			t.Errorf("Bob's total expected, got %v", row)
		}
	}
}

func TestMeasureWithFilterClauseInFormula(t *testing.T) {
	db := open(t)
	got := mustRows(t, db, `
		SELECT prodName, AGGREGATE(aliceRev) AS ar
		FROM (SELECT *, SUM(revenue) FILTER (WHERE custName = 'Alice') AS MEASURE aliceRev
		      FROM Orders) AS o
		GROUP BY prodName
		ORDER BY prodName`)
	want := [][]string{{"Acme", "NULL"}, {"Happy", "13"}, {"Whizz", "NULL"}}
	sameRows(t, got, want, "FILTER in measure formula")
}

func TestCountDistinctMeasure(t *testing.T) {
	db := open(t)
	got := mustRows(t, db, `
		SELECT prodName, AGGREGATE(buyers) AS b
		FROM (SELECT *, COUNT(DISTINCT custName) AS MEASURE buyers FROM Orders) AS o
		GROUP BY ROLLUP(prodName)
		ORDER BY prodName NULLS LAST`)
	want := [][]string{{"Acme", "1"}, {"Happy", "2"}, {"Whizz", "1"}, {"NULL", "3"}}
	sameRows(t, got, want, "COUNT DISTINCT measure")
}

func TestMeasureInCaseExpression(t *testing.T) {
	db := open(t)
	got := mustRows(t, db, `
		SELECT prodName,
		       CASE WHEN AGGREGATE(rev) > 10 THEN 'big' ELSE 'small' END AS size
		FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
		GROUP BY prodName
		ORDER BY prodName`)
	want := [][]string{{"Acme", "small"}, {"Happy", "big"}, {"Whizz", "small"}}
	sameRows(t, got, want, "measure in CASE")
}

func TestExplainShowsMeasureContext(t *testing.T) {
	db := open(t)
	out, err := db.Explain(`
		SELECT prodName, rev AT (ALL) AS total
		FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
		GROUP BY prodName`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "measure rev") || !strings.Contains(out, "TRUE") {
		t.Errorf("EXPLAIN should label measure subqueries with their context:\n%s", out)
	}
}

// §6.5: measures evaluated at dimension values with no rows (gap
// filling through a calendar table). Also serves as the regression test
// for examples/timeseries.
func TestGapFillingWithCalendar(t *testing.T) {
	db := msql.Open()
	db.MustExec(`
		CREATE TABLE Sales (day DATE, amount INTEGER);
		INSERT INTO Sales VALUES
		  (DATE '2024-03-01', 10), (DATE '2024-03-01', 5),
		  (DATE '2024-03-02', 8), (DATE '2024-03-04', 12);
		CREATE TABLE Calendar (day DATE);
		INSERT INTO Calendar VALUES
		  (DATE '2024-03-01'), (DATE '2024-03-02'),
		  (DATE '2024-03-03'), (DATE '2024-03-04');
		CREATE VIEW SalesM AS SELECT day, SUM(amount) AS MEASURE rev FROM Sales;
	`)
	got := mustRows(t, db, `
		SELECT c.day, COALESCE(s.rev AT (SET day = c.day), 0) AS revenue
		FROM Calendar AS c
		CROSS JOIN (SELECT * FROM SalesM LIMIT 1) AS s
		ORDER BY c.day`)
	want := [][]string{
		{"2024-03-01", "15"},
		{"2024-03-02", "8"},
		{"2024-03-03", "0"},
		{"2024-03-04", "12"},
	}
	sameRows(t, got, want, "calendar gap filling")
}

// Wide-table views (join inside the view, §5.3): the call site has no
// join, so VISIBLE contributes only the WHERE predicates, and ALL can
// lift the group constraint past them — a share-of-visible calculation.
func TestVisibleAllOnWideTable(t *testing.T) {
	db := msql.Open()
	db.MustExec(`
		CREATE TABLE O (p VARCHAR, c VARCHAR, r INTEGER);
		INSERT INTO O VALUES ('x','adult',10), ('x','kid',1), ('y','adult',20), ('y','kid',2);
		CREATE TABLE C (c VARCHAR, age INTEGER);
		INSERT INTO C VALUES ('adult', 30), ('kid', 10);
		CREATE VIEW W AS
		SELECT o.p, o.c, o.r, cu.age, SUM(o.r) AS MEASURE rev
		FROM O AS o JOIN C AS cu ON o.c = cu.c;
	`)
	got := mustRows(t, db, `
		SELECT p,
		       AGGREGATE(rev) AS vis,
		       rev AT (VISIBLE ALL p) AS visTotal,
		       rev AT (ALL p VISIBLE) AS totalVis,
		       rev AT (ALL p) AS total
		FROM W WHERE age >= 18 GROUP BY p ORDER BY p`)
	want := [][]string{
		// visible per product; visible total (both orders); same with the
		// modifiers in either order (they commute here); unfiltered total.
		{"x", "10", "30", "30", "33"},
		{"y", "20", "30", "30", "33"},
	}
	sameRows(t, got, want, "VISIBLE/ALL on wide table")
}

// WITHIN DISTINCT (Calcite CALCITE-4483; the paper's §6.3/§6.4 candidate
// for preserving a measure's grain under joins): the aggregate sees one
// row per distinct key tuple. The hand-written WITHIN DISTINCT query must
// match what the measure computes automatically.
func TestWithinDistinct(t *testing.T) {
	db := open(t)
	// Join Orders to Customers: custAge repeats once per order. A plain
	// AVG double-counts repeat buyers; WITHIN DISTINCT (custName) does not.
	manual := mustRows(t, db, `
		SELECT o.prodName,
		       AVG(c.custAge) AS weighted,
		       AVG(c.custAge) WITHIN DISTINCT (c.custName) AS symmetric
		FROM Orders AS o JOIN Customers AS c USING (custName)
		GROUP BY o.prodName ORDER BY o.prodName`)
	viaMeasure := mustRows(t, db, `
		WITH EC AS (SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers)
		SELECT o.prodName, AGGREGATE(c.avgAge) AS symmetric
		FROM Orders AS o JOIN EC AS c USING (custName)
		GROUP BY o.prodName ORDER BY o.prodName`)
	for i := range manual {
		if manual[i][2] != viaMeasure[i][1] {
			t.Errorf("row %d: WITHIN DISTINCT %s vs measure %s", i, manual[i][2], viaMeasure[i][1])
		}
	}
	// Happy: weighted (23+23+41)/3 = 29, symmetric (23+41)/2 = 32.
	if manual[1][1] != "29" || manual[1][2] != "32" {
		t.Errorf("Happy row: %v", manual[1])
	}
}

func TestWithinDistinctConsistencyError(t *testing.T) {
	db := open(t)
	// revenue is NOT functionally dependent on custName → error.
	_, err := db.Query(`
		SELECT SUM(revenue) WITHIN DISTINCT (custName) AS s FROM Orders`)
	if err == nil || !strings.Contains(err.Error(), "functionally dependent") {
		t.Errorf("expected functional-dependence error, got %v", err)
	}
	// DISTINCT + WITHIN DISTINCT cannot combine.
	_, err = db.Query(`
		SELECT SUM(DISTINCT revenue) WITHIN DISTINCT (custName) AS s FROM Orders`)
	if err == nil {
		t.Error("DISTINCT with WITHIN DISTINCT should be rejected")
	}
}

// WITHIN DISTINCT inside a measure formula: a wide-table measure that
// protects its own grain explicitly (§6.4's suggested implementation
// strategy for joins).
func TestWithinDistinctInMeasureFormula(t *testing.T) {
	db := open(t)
	got := mustRows(t, db, `
		SELECT prodName, AGGREGATE(avgBuyerAge) AS age
		FROM (SELECT o.prodName, o.custName, c.custAge,
		             AVG(c.custAge) WITHIN DISTINCT (o.custName) AS MEASURE avgBuyerAge
		      FROM Orders AS o JOIN Customers AS c USING (custName)) AS w
		GROUP BY prodName ORDER BY prodName`)
	want := [][]string{{"Acme", "41"}, {"Happy", "32"}, {"Whizz", "17"}}
	sameRows(t, got, want, "WITHIN DISTINCT measure")
}

// Deep nesting stress: measures survive five levels of query nesting with
// renames and filters at each level, composing their base relations.
func TestDeepNestingStress(t *testing.T) {
	db := open(t)
	got := mustRows(t, db, `
		SELECT p5, AGGREGATE(m5) AS v
		FROM (SELECT p4 AS p5, m4 AS m5
		      FROM (SELECT p3 AS p4, m3 AS m4
		            FROM (SELECT p2 AS p3, m2 AS m3
		                  FROM (SELECT prodName AS p2, rev AS m2
		                        FROM (SELECT *, SUM(revenue) AS MEASURE rev
		                              FROM Orders) AS l1) AS l2) AS l3) AS l4) AS l5
		GROUP BY p5 ORDER BY p5`)
	want := [][]string{{"Acme", "5"}, {"Happy", "17"}, {"Whizz", "3"}}
	sameRows(t, got, want, "five-level nesting")
}

// Many measures on one view: 20 sibling measures all evaluate in one
// query without interference (and with inlining they share one scan).
func TestManyMeasuresOneQuery(t *testing.T) {
	db := open(t)
	var defs, uses []string
	for i := 0; i < 20; i++ {
		defs = append(defs, fmt.Sprintf("SUM(revenue) + %d AS MEASURE m%d", i, i))
		uses = append(uses, fmt.Sprintf("AGGREGATE(m%d) AS v%d", i, i))
	}
	sql := "SELECT prodName, " + strings.Join(uses, ", ") +
		" FROM (SELECT *, " + strings.Join(defs, ", ") +
		" FROM Orders) AS o GROUP BY prodName ORDER BY prodName"
	got := mustRows(t, db, sql)
	if len(got) != 3 {
		t.Fatalf("rows: %d", len(got))
	}
	// Acme rev = 5, so v0..v19 = 5..24.
	for i := 0; i < 20; i++ {
		if got[0][1+i] != fmt.Sprintf("%d", 5+i) {
			t.Errorf("m%d = %s, want %d", i, got[0][1+i], 5+i)
		}
	}
	if s := db.LastStats(); s.SubqueryEvals != 0 {
		t.Errorf("20 inlined measures should need 0 subquery evals, got %d", s.SubqueryEvals)
	}
}
