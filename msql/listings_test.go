package msql_test

// Golden tests reproducing every listing of "Measures in SQL" (Hyde &
// Fremlin, SIGMOD 2024) on the paper's Tables 1-2 data. Where the paper
// prints a result (Listings 4 and 8) the expected rows are the paper's;
// elsewhere the expectations were derived by hand from the paper's
// semantics. See EXPERIMENTS.md for the experiment index.

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"github.com/measures-sql/msql/internal/paperdata"
	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/msql"
)

func open(t testing.TB) *msql.DB {
	t.Helper()
	db := msql.Open()
	if err := db.Exec(paperdata.All); err != nil {
		t.Fatalf("loading paper data: %v", err)
	}
	return db
}

// rowsAsStrings renders rows with NULL as "NULL" and floats rounded to
// 2 decimals for stable comparison against the paper's printed values.
func rowsAsStrings(res *msql.Result) [][]string {
	out := make([][]string, len(res.Rows))
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			if !v.Null && v.K == sqltypes.KindFloat {
				f := math.Round(v.AsFloat()*100) / 100
				cells[j] = trimFloat(f)
				continue
			}
			cells[j] = v.String()
		}
		out[i] = cells
	}
	return out
}

func trimFloat(f float64) string {
	s := strconv.FormatFloat(f, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" || s == "-0" {
		return "0"
	}
	return s
}

func expectRows(t *testing.T, db *msql.DB, sql string, want [][]string) {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("query failed: %v\nSQL: %s", err, sql)
	}
	got := rowsAsStrings(res)
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d\ngot: %v\nSQL: %s", len(got), len(want), got, sql)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("row %d col %d: got %q, want %q (full row %v)", i, j, got[i][j], want[i][j], got[i])
			}
		}
	}
}

func TestListing01_SummarizeByProduct(t *testing.T) {
	db := open(t)
	expectRows(t, db, `
		SELECT prodName, COUNT(*) AS c,
		       (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
		FROM Orders
		GROUP BY prodName
		ORDER BY prodName`,
		[][]string{
			{"Acme", "1", "0.6"},
			{"Happy", "3", "0.47"},
			{"Whizz", "1", "0.67"},
		})
}

func TestListing02_BrokenView(t *testing.T) {
	// The paper's point: AVG over the summarized view weighs (prodName,
	// orderDate) combinations equally, NOT orders, so Happy differs from
	// the correct per-order margin 0.47.
	db := open(t)
	res, err := db.Query(`
		SELECT prodName, AVG(profitMargin) AS m
		FROM SummarizedOrders
		GROUP BY prodName
		ORDER BY prodName`)
	if err != nil {
		t.Fatal(err)
	}
	got := rowsAsStrings(res)
	// Happy: margins are (6-4)/6=0.333, (7-4)/7=0.4286, (4-1)/4=0.75 per
	// date; their average 0.504 != 0.47 (the correct order-weighted one).
	if got[1][0] != "Happy" {
		t.Fatalf("unexpected rows: %v", got)
	}
	if got[1][1] == "0.47" {
		t.Errorf("SummarizedOrders should NOT produce the correct margin; the paper's premise failed")
	}
	if got[1][1] != "0.5" {
		t.Errorf("Happy avg-of-margins = %s, want 0.5 ((0.33+0.43+0.75)/3 rounded)", got[1][1])
	}
}

func TestListing03_04_MeasureWithAggregate(t *testing.T) {
	db := open(t)
	// The paper's printed output for Listing 4.
	expectRows(t, db, `
		SELECT prodName, AGGREGATE(profitMargin) AS profitMargin, COUNT(*) AS c
		FROM EnhancedOrders
		GROUP BY prodName
		ORDER BY prodName`,
		[][]string{
			{"Acme", "0.6", "1"},
			{"Happy", "0.47", "3"},
			{"Whizz", "0.67", "1"},
		})
}

func TestListing05_ManualExpansion(t *testing.T) {
	// The paper's hand-expanded SQL (Listing 5) must give the same result
	// as the measure query of Listing 4.
	db := open(t)
	expanded := `
		SELECT prodName,
		       (SELECT (SUM(i.revenue) - SUM(i.cost)) / SUM(i.revenue)
		        FROM Orders AS i
		        WHERE i.prodName = o.prodName) AS profitMargin,
		       COUNT(*) AS c
		FROM Orders AS o
		GROUP BY prodName
		ORDER BY prodName`
	expectRows(t, db, expanded,
		[][]string{
			{"Acme", "0.6", "1"},
			{"Happy", "0.47", "3"},
			{"Whizz", "0.67", "1"},
		})
}

func TestListing05_EngineExpansion(t *testing.T) {
	// EXPAND must produce measure-free SQL that evaluates identically.
	db := open(t)
	src := `
		SELECT prodName, AGGREGATE(profitMargin) AS profitMargin, COUNT(*) AS c
		FROM EnhancedOrders
		GROUP BY prodName
		ORDER BY prodName`
	expanded, err := db.Expand(src)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if strings.Contains(strings.ToUpper(expanded), "MEASURE") ||
		strings.Contains(strings.ToUpper(expanded), "AGGREGATE(") {
		t.Fatalf("expansion still contains measure syntax:\n%s", expanded)
	}
	want := db.MustQuery(src)
	got, err := db.Query(expanded)
	if err != nil {
		t.Fatalf("expanded SQL does not run: %v\nSQL:\n%s", err, expanded)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("row counts differ: %d vs %d\nexpanded:\n%s", len(got.Rows), len(want.Rows), expanded)
	}
	g, w := rowsAsStrings(got), rowsAsStrings(want)
	for i := range w {
		for j := range w[i] {
			if g[i][j] != w[i][j] {
				t.Errorf("row %d col %d: expanded %q vs measure %q", i, j, g[i][j], w[i][j])
			}
		}
	}
}

func TestListing06_ProportionOfTotal(t *testing.T) {
	db := open(t)
	// Revenue: Acme 5, Happy 17, Whizz 3; total 25.
	expectRows(t, db, `
		SELECT prodName, sumRevenue,
		       sumRevenue / sumRevenue AT (ALL prodName) AS proportionOfTotalRevenue
		FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
		GROUP BY prodName
		ORDER BY prodName`,
		[][]string{
			{"Acme", "5", "0.2"},
			{"Happy", "17", "0.68"},
			{"Whizz", "3", "0.12"},
		})
}

func TestListing07_SetCurrentYear(t *testing.T) {
	db := open(t)
	// 2024 has only Happy (margin (7-4)/7 = 0.43); last year Happy 2023:
	// (6-4)/6 = 0.33.
	expectRows(t, db, `
		SELECT prodName, orderYear, profitMargin,
		       profitMargin AT (SET orderYear = CURRENT orderYear - 1)
		         AS profitMarginLastYear
		FROM (SELECT *,
		        (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin,
		        YEAR(orderDate) AS orderYear
		      FROM Orders)
		WHERE orderYear = 2024
		GROUP BY prodName, orderYear`,
		[][]string{
			{"Happy", "2024", "0.43", "0.33"},
		})
}

func TestListing08_VisibleRollup(t *testing.T) {
	db := open(t)
	// The paper's printed output, including the grand-total row.
	expectRows(t, db, `
		SELECT o.prodName,
		       COUNT(*) AS c,
		       AGGREGATE(o.sumRevenue) AS rAgg,
		       o.sumRevenue AT (VISIBLE) AS rViz,
		       o.sumRevenue AS r
		FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
		WHERE o.custName <> 'Bob'
		GROUP BY ROLLUP(o.prodName)
		ORDER BY o.prodName NULLS LAST`,
		[][]string{
			{"Happy", "2", "13", "13", "17"},
			{"Whizz", "1", "3", "3", "3"},
			{"NULL", "3", "16", "16", "25"},
		})
}

func TestListing09_JoinedMeasures(t *testing.T) {
	db := open(t)
	// Happy is bought by Alice (23) and Bob (41): two orders by Alice,
	// one by Bob, all with custAge >= 18.
	//   weightedAvgAge = (23+23+41)/3 = 29
	//   avgAge (measure, distinct customers) = (23+41)/2 = 32
	// Whizz is bought only by Celia (17), removed by the WHERE clause,
	// so no Whizz group exists.
	expectRows(t, db, `
		WITH EnhancedCustomers AS (
		  SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers)
		SELECT o.prodName,
		       COUNT(*) AS orderCount,
		       AVG(c.custAge) AS weightedAvgAge,
		       c.avgAge AS avgAge,
		       c.avgAge AT (VISIBLE) AS visibleAvgAge
		FROM Orders AS o
		JOIN EnhancedCustomers AS c USING (custName)
		WHERE c.custAge >= 18
		GROUP BY o.prodName
		ORDER BY o.prodName`,
		[][]string{
			{"Acme", "1", "41", "41", "41"},
			{"Happy", "3", "29", "32", "32"},
		})
}

func TestListing10_YearOverYearRatio(t *testing.T) {
	db := open(t)
	// Happy: 2022 rev 4, 2023 rev 6, 2024 rev 7.
	expectRows(t, db, `
		SELECT prodName, YEAR(orderDate) AS orderYear,
		       sumRevenue / sumRevenue AT (SET orderYear = CURRENT orderYear - 1) AS ratio
		FROM OrdersWithRevenue
		GROUP BY prodName, YEAR(orderDate)
		ORDER BY prodName, orderYear`,
		[][]string{
			{"Acme", "2023", "NULL"},
			{"Happy", "2022", "NULL"},
			{"Happy", "2023", "1.5"},
			{"Happy", "2024", "1.17"},
			{"Whizz", "2023", "NULL"},
		})
}

func TestListing11_ExpansionOfYearOverYear(t *testing.T) {
	db := open(t)
	src := `
		SELECT prodName, YEAR(orderDate) AS orderYear,
		       sumRevenue / sumRevenue AT (SET orderYear = CURRENT orderYear - 1) AS ratio
		FROM OrdersWithRevenue
		GROUP BY prodName, YEAR(orderDate)
		ORDER BY prodName, orderYear`
	expanded, err := db.Expand(src)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	want := rowsAsStrings(db.MustQuery(src))
	res, err := db.Query(expanded)
	if err != nil {
		t.Fatalf("expanded SQL does not run: %v\nSQL:\n%s", err, expanded)
	}
	got := rowsAsStrings(res)
	if len(got) != len(want) {
		t.Fatalf("rows: got %d want %d\nexpanded:\n%s", len(got), len(want), expanded)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("row %d col %d: %q vs %q", i, j, got[i][j], want[i][j])
			}
		}
	}
	// The paper's own hand expansion (Listing 11, adapted to this
	// engine's dialect) must also agree.
	manual := `
		SELECT o.prodName, YEAR(o.orderDate) AS orderYear,
		       (SELECT SUM(i.revenue) FROM Orders AS i
		        WHERE i.prodName = o.prodName
		          AND YEAR(i.orderDate) = YEAR(o.orderDate))
		     / (SELECT SUM(i.revenue) FROM Orders AS i
		        WHERE i.prodName = o.prodName
		          AND YEAR(i.orderDate) = YEAR(o.orderDate) - 1) AS ratio
		FROM Orders AS o
		GROUP BY prodName, YEAR(orderDate)
		ORDER BY prodName, orderYear`
	expectRows(t, db, manual, want)
}

func TestListing12_FourEquivalentQueries(t *testing.T) {
	db := open(t)
	queries := map[string]string{
		"correlated": `
			SELECT o.prodName, o.orderDate
			FROM Orders AS o
			WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS o1
			                   WHERE o1.prodName = o.prodName)
			ORDER BY o.prodName, o.orderDate`,
		"self-join": `
			SELECT o.prodName, o.orderDate
			FROM Orders AS o
			LEFT JOIN (SELECT prodName, AVG(revenue) AS avgRevenue
			           FROM Orders GROUP BY prodName) AS o2
			  ON o.prodName = o2.prodName
			WHERE o.revenue > o2.avgRevenue
			ORDER BY o.prodName, o.orderDate`,
		"window": `
			SELECT o.prodName, o.orderDate
			FROM (SELECT prodName, revenue, orderDate,
			             AVG(revenue) OVER (PARTITION BY prodName) AS avgRevenue
			      FROM Orders) AS o
			WHERE o.revenue > o.avgRevenue
			ORDER BY o.prodName, o.orderDate`,
		"measure": `
			SELECT o.prodName, o.orderDate
			FROM (SELECT prodName, orderDate, revenue,
			             AVG(revenue) AS MEASURE avgRevenue
			      FROM Orders) AS o
			WHERE o.revenue > o.avgRevenue AT (WHERE prodName = o.prodName)
			ORDER BY o.prodName, o.orderDate`,
	}
	// Happy avg = 17/3 = 5.67 → orders with revenue 6, 7 qualify.
	want := [][]string{
		{"Happy", "2023-11-28"},
		{"Happy", "2024-11-28"},
	}
	for name, sql := range queries {
		res, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%s query failed: %v", name, err)
		}
		got := rowsAsStrings(res)
		if len(got) != len(want) {
			t.Fatalf("%s: got %d rows (%v), want %d", name, len(got), got, len(want))
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Errorf("%s row %d col %d: got %q want %q", name, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}
