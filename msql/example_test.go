package msql_test

import (
	"fmt"

	"github.com/measures-sql/msql/msql"
)

// The paper's core example: a measure view and the AGGREGATE function.
func Example() {
	db := msql.Open()
	db.MustExec(`
		CREATE TABLE Orders (prodName VARCHAR, revenue INTEGER, cost INTEGER);
		INSERT INTO Orders VALUES
		  ('Happy', 6, 4), ('Acme', 5, 2), ('Happy', 7, 4),
		  ('Whizz', 3, 1), ('Happy', 4, 1);
		CREATE VIEW EnhancedOrders AS
		SELECT *, (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin
		FROM Orders;
	`)
	res := db.MustQuery(`
		SELECT prodName, ROUND(AGGREGATE(profitMargin), 2) AS margin
		FROM EnhancedOrders
		GROUP BY prodName
		ORDER BY prodName`)
	fmt.Print(msql.Format(res))
	// Output:
	// prodName  margin
	// ========  ======
	// Acme      0.6
	// Happy     0.47
	// Whizz     0.67
}

// The AT operator transforms the evaluation context: here ALL removes
// the product constraint to compute each product's share of the total.
func ExampleDB_Query_atOperator() {
	db := msql.Open()
	db.MustExec(`
		CREATE TABLE Orders (prodName VARCHAR, revenue INTEGER);
		INSERT INTO Orders VALUES ('Happy', 17), ('Acme', 5), ('Whizz', 3);
		CREATE VIEW V AS SELECT *, SUM(revenue) AS MEASURE rev FROM Orders;
	`)
	res := db.MustQuery(`
		SELECT prodName, AGGREGATE(rev) AS revenue,
		       ROUND(rev / rev AT (ALL prodName), 2) AS share
		FROM V GROUP BY prodName ORDER BY revenue DESC`)
	fmt.Print(msql.Format(res))
	// Output:
	// prodName  revenue  share
	// ========  =======  =====
	// Happy     17       0.68
	// Acme      5        0.2
	// Whizz     3        0.12
}

// Expand rewrites a measure query into plain SQL — the paper's §4.2
// static expansion.
func ExampleDB_Expand() {
	db := msql.Open()
	db.MustExec(`
		CREATE TABLE Orders (prodName VARCHAR, revenue INTEGER);
		CREATE VIEW V AS SELECT *, SUM(revenue) AS MEASURE rev FROM Orders;
	`)
	sql, err := db.Expand(`SELECT prodName, AGGREGATE(rev) AS r FROM V GROUP BY prodName`)
	if err != nil {
		panic(err)
	}
	fmt.Println(sql)
	// Output:
	// SELECT prodName, (
	//   SELECT SUM(i.revenue)
	//   FROM Orders AS i
	//   WHERE i.prodName IS NOT DISTINCT FROM o.prodName) AS r
	// FROM Orders AS o
	// GROUP BY prodName
}
