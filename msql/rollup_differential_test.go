package msql_test

// Differential mutation-replay harness for the materialized rollup
// lattice (experiment E30's correctness side). Two identically seeded
// databases — one with the lattice enabled, one without — replay the
// same interleaved schedule of generated queries and mutations (INSERT
// batches, TRUNCATE, scratch-table DDL); after every step both engines
// must agree bit for bit, including on whether a statement errors. The
// lattice-off engine is the oracle.
//
// Comparison here is stricter than the vectorized harness's 2-decimal
// float rendering: floats compare by their exact bit pattern (hex
// FormatFloat), because the lattice's claim is bit-identity, not
// tolerance — any query it cannot reproduce exactly must miss instead.
//
// The schedule length scales with MSQL_DIFF_QUERIES but never drops
// below 500 steps per configuration.

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"github.com/measures-sql/msql/internal/qgen"
	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/msql"
)

// exactRows renders a result for bit-exact comparison: floats as hex
// bit patterns, NULLs tagged with their kind, everything else through
// the standard value renderer.
func exactRows(res *msql.Result) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			switch {
			case v.Null:
				cells[j] = fmt.Sprintf("NULL:%d", v.K)
			case v.K == sqltypes.KindFloat:
				cells[j] = strconv.FormatFloat(v.AsFloat(), 'x', -1, 64)
			default:
				cells[j] = v.String()
			}
		}
		out[i] = strings.Join(cells, "|")
	}
	return out
}

func rollupScheduleSteps(t testing.TB) int {
	steps := 2 * diffCorpusSize(t)
	if steps < 500 {
		steps = 500
	}
	return steps
}

// TestDifferentialRollupMutationReplay replays one interleaved
// query/mutation schedule per (strategy, workers) configuration.
func TestDifferentialRollupMutationReplay(t *testing.T) {
	const seed = 20240805
	steps := rollupScheduleSteps(t)
	for _, strategy := range []struct {
		name string
		s    msql.Strategy
	}{
		{"inline", msql.StrategyDefault},
		{"memo", msql.StrategyMemo},
		{"naive", msql.StrategyNaive},
	} {
		for _, workers := range []int{1, 4} {
			strategy, workers := strategy, workers
			t.Run(fmt.Sprintf("%s-w%d", strategy.name, workers), func(t *testing.T) {
				t.Parallel()
				oracle := buildRandomDB(t, 99, strategy.s)
				latticed := buildRandomDB(t, 99, strategy.s)
				latticed.SetRollups(true)
				oracle.SetWorkers(workers)
				latticed.SetWorkers(workers)

				queries := qgen.New(seed, qgen.DefaultCatalog())
				mutations := qgen.New(seed+1, qgen.DefaultCatalog())
				sched := rand.New(rand.NewSource(seed + 2))

				nQueries, nMutations := 0, 0
				for i := 0; i < steps; i++ {
					if sched.Intn(3) == 0 {
						m := mutations.Mutation()
						nMutations++
						errO := oracle.Exec(m)
						errL := latticed.Exec(m)
						if (errO == nil) != (errL == nil) {
							t.Fatalf("step %d (seed %d) mutation disagrees on error\nSQL: %s\noracle: %v\nlattice: %v",
								i, seed, m, errO, errL)
						}
						continue
					}
					q := queries.Query()
					nQueries++
					fail := func(format string, args ...any) {
						t.Helper()
						t.Fatalf("step %d (seed %d)\nSQL: %s\n%s", i, seed, q, fmt.Sprintf(format, args...))
					}
					want, errO := oracle.Query(q)
					got, errL := latticed.Query(q)
					if (errO == nil) != (errL == nil) {
						fail("disagrees on error: oracle=%v lattice=%v", errO, errL)
					}
					if errO != nil {
						continue
					}
					w, h := exactRows(want), exactRows(got)
					if len(w) != len(h) {
						fail("row count: oracle=%d lattice=%d", len(w), len(h))
					}
					for r := range w {
						if w[r] != h[r] {
							fail("row %d differs:\noracle:  %s\nlattice: %s", r, w[r], h[r])
						}
					}
				}
				st := latticed.RollupStats()
				if st.Hits == 0 {
					t.Fatalf("lattice never answered a query across %d queries / %d mutations (misses=%d)",
						nQueries, nMutations, st.Misses)
				}
				if oracleHits := oracle.RollupStats().Hits; oracleHits != 0 {
					t.Fatalf("oracle recorded %d rollup hits with rollups disabled", oracleHits)
				}
				t.Logf("%d queries, %d mutations: hits=%d misses=%d builds=%d rebuilds=%d incr=%d inval=%d",
					nQueries, nMutations, st.Hits, st.Misses, st.Builds, st.Rebuilds,
					st.IncrementalRows, st.Invalidations)
			})
		}
	}
}
