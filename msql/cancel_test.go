package msql_test

// Cancellation tests (run under -race in CI): a context canceled
// mid-query must stop the statement cooperatively with ErrCanceled,
// leak no goroutines, leave the session usable, and do so promptly even
// with parallel workers in flight.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/msql"
)

// measureDB is bigDB plus a measure view, so cancellation also crosses
// the measure-subquery machinery of each strategy.
func measureDB(t testing.TB) *msql.DB {
	t.Helper()
	db := msql.Open()
	db.MustExec(`CREATE TABLE big (a INTEGER, b INTEGER)`)
	rows := make([][]msql.Value, 20000)
	for i := range rows {
		rows[i] = []msql.Value{sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i % 97))}
	}
	if err := db.InsertRows("big", rows); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE VIEW bigM AS SELECT *, SUM(a) AS MEASURE sumA FROM big`)
	return db
}

const cancelQuery = `SELECT b, AGGREGATE(sumA) FROM bigM GROUP BY b ORDER BY b`

// cancelOnce arms a FailOperator hook that cancels on its first firing
// and slows every operator slightly, so the statement is reliably in
// flight when the cancellation lands.
func cancelOnce(cancel context.CancelFunc) {
	var once sync.Once
	exec.SetFailPoint(exec.FailOperator, func() error {
		once.Do(cancel)
		time.Sleep(time.Millisecond)
		return nil
	})
}

// waitGoroutines waits for the goroutine count to drain back to at most
// base+slack, retrying because exiting workers need a beat to unwind.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	const slack = 2
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, started with %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCancelHammer(t *testing.T) {
	strategies := []struct {
		name string
		s    msql.Strategy
	}{
		{"default", msql.StrategyDefault},
		{"memo", msql.StrategyMemo},
		{"naive", msql.StrategyNaive},
	}
	for _, workers := range []int{1, 4} {
		for _, st := range strategies {
			t.Run(fmt.Sprintf("workers=%d/%s", workers, st.name), func(t *testing.T) {
				db := measureDB(t)
				db.SetStrategy(st.s)
				db.SetWorkers(workers)
				base := runtime.NumGoroutine()
				const iterations = 5
				for i := 0; i < iterations; i++ {
					ctx, cancel := context.WithCancel(context.Background())
					cancelOnce(cancel)
					_, err := db.QueryContext(ctx, cancelQuery)
					exec.ClearFailPoints()
					cancel()
					if !errors.Is(err, msql.ErrCanceled) {
						t.Fatalf("iteration %d: want ErrCanceled, got %v", i, err)
					}
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("iteration %d: must unwrap to context.Canceled, got %v", i, err)
					}
				}
				waitGoroutines(t, base)
				if got := db.Metrics().Canceled; got != iterations {
					t.Fatalf("Canceled metric = %d, want %d", got, iterations)
				}
				// The session stays fully usable.
				res, err := db.Query(cancelQuery)
				if err != nil {
					t.Fatalf("post-cancel query: %v", err)
				}
				if len(res.Rows) != 97 {
					t.Fatalf("post-cancel rows = %d, want 97", len(res.Rows))
				}
			})
		}
	}
}

// TestCancelLatency checks the acceptance budget: with four workers mid
// query, cancellation must surface within 50ms (ticks fire every 1024
// rows, so the bound is dominated by the injected 1ms operator delay).
func TestCancelLatency(t *testing.T) {
	db := measureDB(t)
	db.SetWorkers(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	var once sync.Once
	exec.SetFailPoint(exec.FailOperator, func() error {
		once.Do(func() { close(started) })
		time.Sleep(time.Millisecond)
		return nil
	})
	defer exec.ClearFailPoints()
	errCh := make(chan error, 1)
	go func() {
		_, err := db.QueryContext(ctx, cancelQuery)
		errCh <- err
	}()
	<-started
	start := time.Now()
	cancel()
	err := <-errCh
	latency := time.Since(start)
	if !errors.Is(err, msql.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if latency > 50*time.Millisecond {
		t.Fatalf("cancellation took %v, budget is 50ms", latency)
	}
}

// TestPreCanceledContext never starts executing: the statement is
// rejected up front.
func TestPreCanceledContext(t *testing.T) {
	db := open(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryContext(ctx, `SELECT 1`)
	if !errors.Is(err, msql.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestContextDeadline exercises a caller-supplied deadline (as opposed
// to Limits.Timeout) mapping to ErrTimeout.
func TestContextDeadline(t *testing.T) {
	db := measureDB(t)
	exec.SetFailPoint(exec.FailOperator, func() error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	defer exec.ClearFailPoints()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := db.QueryContext(ctx, cancelQuery)
	if !errors.Is(err, msql.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}
