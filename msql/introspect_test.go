package msql_test

// Introspection tests (run under -race in CI): the statement-stats
// store and its fingerprint normalization, the msql_stats virtual
// tables over plain SQL, the live-query registry with KILL (SQL and
// API), the slow-query log, the Prometheus exposition format contract
// (full text output parses and stays deterministic), and a concurrent
// hammer over stats updates + KILL.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/msql"
)

// TestStatementStatsFingerprint checks that literal variants of one
// query collapse to a single normalized fingerprint, and that the
// acceptance query over msql_stats.statements works in plain SQL.
func TestStatementStatsFingerprint(t *testing.T) {
	db := open(t)
	db.ResetStatementStats()
	for _, rev := range []int{1, 2, 3} {
		q := fmt.Sprintf(`SELECT COUNT(*) AS c FROM Orders WHERE revenue > %d`, rev)
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query(`SELECT fingerprint, calls, p99_exec_ms FROM msql_stats.statements ORDER BY p99_exec_ms DESC`)
	if err != nil {
		t.Fatalf("acceptance query over msql_stats.statements: %v", err)
	}
	if got := strings.Join(res.Columns, ","); got != "fingerprint,calls,p99_exec_ms" {
		t.Fatalf("columns = %s", got)
	}
	found := false
	for _, row := range res.Rows {
		fp := row[0].String()
		if strings.Contains(fp, "revenue > ?") {
			found = true
			if got := row[1].String(); got != "3" {
				t.Errorf("calls for %q = %s, want 3 (literals must share a fingerprint)", fp, got)
			}
			if strings.ContainsAny(fp, "\n\t") {
				t.Errorf("fingerprint not single-line: %q", fp)
			}
		}
		if strings.Contains(fp, "> 1") || strings.Contains(fp, "> 2") {
			t.Errorf("literal leaked into fingerprint: %q", fp)
		}
	}
	if !found {
		t.Fatalf("no normalized fingerprint found in %v", res.Rows)
	}

	// The API snapshot agrees with the virtual table.
	stats := db.StatementStats()
	var entry *msql.StatementStat
	for i := range stats {
		if strings.Contains(stats[i].Fingerprint, "revenue > ?") {
			entry = &stats[i]
		}
	}
	if entry == nil {
		t.Fatal("fingerprint missing from StatementStats()")
	}
	if entry.Calls != 3 || entry.Exec.Count != 3 {
		t.Errorf("calls=%d exec.count=%d, want 3/3", entry.Calls, entry.Exec.Count)
	}
	if entry.Rows != 3 { // one COUNT(*) row per run
		t.Errorf("rows=%d, want 3", entry.Rows)
	}
	if entry.Exec.P99Ns < entry.Exec.P50Ns {
		t.Errorf("p99 %d < p50 %d", entry.Exec.P99Ns, entry.Exec.P50Ns)
	}
}

// TestStatementStatsErrors checks per-fingerprint error attribution and
// the enable/disable/reset lifecycle.
func TestStatementStatsErrors(t *testing.T) {
	db := open(t)
	db.ResetStatementStats()
	if _, err := db.Query(`SELECT noSuchColumn FROM Orders`); err == nil {
		t.Fatal("want bind error")
	}
	stats := db.StatementStats()
	if len(stats) != 1 {
		t.Fatalf("want exactly the failing query in the store, got %v", stats)
	}
	boom := stats[0]
	if boom.Calls != 1 || boom.Errors != 1 {
		t.Errorf("calls=%d errors=%d, want 1/1", boom.Calls, boom.Errors)
	}

	db.SetStatementStats(false)
	db.ResetStatementStats()
	if _, err := db.Query(`SELECT COUNT(*) FROM Orders`); err != nil {
		t.Fatal(err)
	}
	if got := db.StatementStats(); len(got) != 0 {
		t.Errorf("stats recorded while disabled: %v", got)
	}
	db.SetStatementStats(true)
	if _, err := db.Query(`SELECT COUNT(*) FROM Orders`); err != nil {
		t.Fatal(err)
	}
	if got := db.StatementStats(); len(got) != 1 {
		t.Errorf("after re-enable want 1 entry, got %d", len(got))
	}
}

// TestSystemTables checks the remaining msql_stats tables answer over
// SQL, never shadow user objects, and stay out of the plan cache.
func TestSystemTables(t *testing.T) {
	db := open(t)
	res, err := db.Query(`SELECT name, value FROM msql_stats.metrics WHERE name = 'queries'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("queries missing from msql_stats.metrics: %v", res.Rows)
	}
	if _, err := db.Query(`SELECT hits, misses, entries FROM msql_stats.plan_cache`); err != nil {
		t.Fatal(err)
	}
	// The stats virtual table reflects new activity on every read —
	// i.e. its plan is not served stale from the plan cache.
	before, err := db.Query(`SELECT SUM(calls) AS c FROM msql_stats.statements`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT COUNT(*) FROM Customers`); err != nil {
		t.Fatal(err)
	}
	after, err := db.Query(`SELECT SUM(calls) AS c FROM msql_stats.statements`)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := strconv.ParseFloat(before.Rows[0][0].String(), 64)
	a, _ := strconv.ParseFloat(after.Rows[0][0].String(), 64)
	if a <= b {
		t.Errorf("msql_stats.statements is stale: sum(calls) %v -> %v", b, a)
	}
	// A user table wins over a virtual table of the same name.
	db.MustExec(`CREATE TABLE statements (x INTEGER); INSERT INTO statements VALUES (7)`)
	res, err = db.Query(`SELECT x FROM statements`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].String() != "7" {
		t.Fatalf("user table shadowed by virtual table: %v %v", res, err)
	}
	if len(db.SystemTables()) < 4 {
		t.Errorf("SystemTables() = %v, want the four msql_stats tables", db.SystemTables())
	}
}

// slowDB returns a DB plus a failpoint that keeps its queries in flight
// long enough to observe and kill; the cleanup disarms the failpoint.
func slowDB(t *testing.T) *msql.DB {
	t.Helper()
	db := measureDB(t)
	exec.SetFailPoint(exec.FailOperator, func() error {
		time.Sleep(time.Millisecond)
		return nil
	})
	t.Cleanup(exec.ClearFailPoints)
	return db
}

// waitActive polls the live registry until a query with needle in its
// SQL shows up.
func waitActive(t *testing.T, db *msql.DB, needle string) msql.ActiveQuery {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, q := range db.ActiveQueries() {
			if strings.Contains(q.SQL, needle) {
				return q
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("query %q never appeared in ActiveQueries", needle)
	return msql.ActiveQuery{}
}

// TestKillAPI cancels an in-flight query through DB.Kill and checks the
// CANCELED taxonomy code plus registry cleanup.
func TestKillAPI(t *testing.T) {
	db := slowDB(t)
	done := make(chan error, 1)
	go func() {
		_, err := db.QueryContext(context.Background(), cancelQuery)
		done <- err
	}()
	q := waitActive(t, db, "AGGREGATE")
	if q.Source != "api" || q.ID <= 0 {
		t.Errorf("active query = %+v, want source api and a positive id", q)
	}
	if !db.Kill(q.ID) {
		t.Fatalf("Kill(%d) = false for a running query", q.ID)
	}
	err := <-done
	if !errors.Is(err, msql.ErrCanceled) {
		t.Fatalf("killed query returned %v, want ErrCanceled", err)
	}
	if db.Kill(q.ID) {
		t.Error("Kill succeeded twice for the same id")
	}
	for _, still := range db.ActiveQueries() {
		if still.ID == q.ID {
			t.Errorf("killed query %d still in registry", q.ID)
		}
	}
}

// TestKillSQL cancels an in-flight query with the KILL statement and
// checks the unknown-id error shape.
func TestKillSQL(t *testing.T) {
	db := slowDB(t)
	done := make(chan error, 1)
	go func() {
		_, err := db.QueryContext(context.Background(), cancelQuery)
		done <- err
	}()
	q := waitActive(t, db, "AGGREGATE")
	if err := db.Exec(fmt.Sprintf("KILL %d", q.ID)); err != nil {
		t.Fatalf("KILL %d: %v", q.ID, err)
	}
	if err := <-done; !errors.Is(err, msql.ErrCanceled) {
		t.Fatalf("killed query returned %v, want ErrCanceled", err)
	}
	err := db.Exec("KILL 999999")
	if err == nil || !strings.Contains(err.Error(), "no running query") {
		t.Fatalf("KILL of unknown id: %v", err)
	}
}

// TestSlowQueryLog checks the structured slow-query log line: one JSON
// object carrying the query id, source, fingerprint and duration.
func TestSlowQueryLog(t *testing.T) {
	db := open(t)
	var buf bytes.Buffer
	db.SetSlowQueryLog(&buf, time.Nanosecond)
	if _, err := db.Query(`SELECT COUNT(*) FROM Orders`); err != nil {
		t.Fatal(err)
	}
	db.SetSlowQueryLog(nil, 0)
	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("no slow-query log line written")
	}
	var rec struct {
		QueryID     int64   `json:"query_id"`
		Source      string  `json:"source"`
		Fingerprint string  `json:"fingerprint"`
		SQL         string  `json:"sql"`
		DurMs       float64 `json:"dur_ms"`
		Rows        int     `json:"rows"`
		Code        string  `json:"code"`
	}
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &rec); err != nil {
		t.Fatalf("slow-query line is not JSON: %q: %v", line, err)
	}
	if rec.QueryID <= 0 || rec.Source != "api" || !strings.Contains(rec.Fingerprint, "COUNT(*)") {
		t.Errorf("slow-query record = %+v", rec)
	}
	if rec.Rows != 1 || rec.Code != "" || rec.DurMs < 0 {
		t.Errorf("slow-query record = %+v", rec)
	}
}

// parsePrometheus validates s against the Prometheus text exposition
// format and returns sample values by full series name (with labels).
// It checks: every sample belongs to a declared metric, HELP/TYPE come
// before samples, values parse as floats, histogram buckets are
// cumulative with le="+Inf" equal to _count, and _sum is present.
func parsePrometheus(t *testing.T, s string) map[string]float64 {
	t.Helper()
	types := map[string]string{}
	samples := map[string]float64{}
	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, suf); b != name && types[b] == "histogram" {
				return b
			}
		}
		return name
	}
	for _, line := range strings.Split(s, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("malformed comment line: %q", line)
			}
			if parts[1] == "TYPE" {
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("unknown metric type in %q", line)
				}
				types[parts[2]] = parts[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment form: %q", line)
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("sample value %q does not parse: %v", line, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
			name = series[:i]
		}
		if _, ok := types[base(name)]; !ok {
			t.Fatalf("sample %q has no preceding # TYPE", line)
		}
		samples[series] = val
	}
	// Histogram invariants.
	for name, typ := range types {
		if typ != "histogram" {
			continue
		}
		count, ok := samples[name+"_count"]
		if !ok {
			t.Fatalf("histogram %s has no _count", name)
		}
		if _, ok := samples[name+"_sum"]; !ok {
			t.Fatalf("histogram %s has no _sum", name)
		}
		prev, sawInf := -1.0, false
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, name+"_bucket{le=") {
				continue
			}
			sp := strings.LastIndex(line, " ")
			v, _ := strconv.ParseFloat(line[sp+1:], 64)
			if v < prev {
				t.Fatalf("histogram %s buckets not cumulative: %q after %g", name, line, prev)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				sawInf = true
				if v != count {
					t.Fatalf("histogram %s: +Inf bucket %g != _count %g", name, v, count)
				}
			}
		}
		if !sawInf {
			t.Fatalf("histogram %s has no +Inf bucket", name)
		}
	}
	return samples
}

// TestPrometheusExposition runs a workload and checks the full
// exposition output — including the new latency histograms and
// per-strategy error counters — parses under text-format rules and
// renders deterministically.
func TestPrometheusExposition(t *testing.T) {
	db := open(t)
	for i := 0; i < 3; i++ {
		if _, err := db.Query(`SELECT prodName, AGGREGATE(sumRevenue) AS r FROM OrdersWithRevenue GROUP BY prodName`); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Query(`SELECT noSuchColumn FROM Orders`); err == nil {
		t.Fatal("want bind error")
	}
	out := db.Metrics().Prometheus()
	samples := parsePrometheus(t, out)
	for _, want := range []string{
		`msql_plan_duration_seconds_count`,
		`msql_exec_duration_seconds_count`,
		`msql_strategy_errors_total{strategy="default"}`,
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("series %s missing from exposition:\n%s", want, out)
		}
	}
	if n := samples[`msql_exec_duration_seconds_count`]; n < 3 {
		t.Errorf("exec histogram count = %g, want >= 3 (the bind error never executes)", n)
	}
	if n := samples[`msql_strategy_errors_total{strategy="default"}`]; n != 1 {
		t.Errorf("strategy errors = %g, want 1", n)
	}
	if math.IsNaN(samples[`msql_exec_duration_seconds_sum`]) {
		t.Error("histogram sum is NaN")
	}
	if again := db.Metrics().Prometheus(); again != out {
		t.Errorf("exposition output not deterministic:\n--- first\n%s\n--- second\n%s", out, again)
	}
}

// TestIntrospectionHammer runs concurrent queries, stats readers, and
// killers against one session; meaningful under -race.
func TestIntrospectionHammer(t *testing.T) {
	db := measureDB(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var killed atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := fmt.Sprintf(`SELECT b, COUNT(*) FROM big WHERE a > %d GROUP BY b`, (w*100+i)%500)
				if _, err := db.Query(q); err != nil && !errors.Is(err, msql.ErrCanceled) {
					t.Errorf("worker query: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // poller: snapshots must never race with writers
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			db.StatementStats()
			db.Metrics().Prometheus()
			for _, q := range db.ActiveQueries() {
				if q.ID%3 == 0 && db.Kill(q.ID) {
					killed.Add(1)
				}
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	total := int64(0)
	for _, st := range db.StatementStats() {
		total += st.Calls
	}
	if total == 0 {
		t.Fatal("hammer recorded no statements")
	}
	t.Logf("hammer: %d calls recorded, %d killed", total, killed.Load())
}
