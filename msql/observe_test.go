package msql_test

// Observability tests: EXPLAIN ANALYZE goldens (timings masked, counts
// exact), the EXPLAIN-ANALYZE-vs-LastStats consistency guarantee, the
// lifecycle tracer, the session metrics registry, and the LastStats
// race fix (run with -race).

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"

	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/msql"
)

// maskTimes replaces wall-clock annotations so goldens are stable.
func maskTimes(s string) string {
	return regexp.MustCompile(`time=[^ )]*`).ReplaceAllString(s, "time=X")
}

// openMemo is open() pinned to StrategyMemo and one worker, the
// configuration the goldens were derived under.
func openMemo(t testing.TB) *msql.DB {
	t.Helper()
	db := open(t)
	db.SetStrategy(msql.StrategyMemo)
	db.SetWorkers(1)
	return db
}

const listing3SQL = `SELECT prodName, AGGREGATE(sumRevenue) AS r FROM OrdersWithRevenue GROUP BY prodName ORDER BY prodName`

const listing6SQL = `SELECT prodName, sumRevenue,
        sumRevenue / sumRevenue AT (ALL prodName) AS proportionOfTotalRevenue
 FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
 GROUP BY prodName ORDER BY prodName`

func TestExplainGoldenListing3(t *testing.T) {
	db := openMemo(t)
	got, err := db.Explain(listing3SQL)
	if err != nil {
		t.Fatal(err)
	}
	want := `Sort $0:prodName ASC
  Project $0:prodName AS prodName, subquery(scalar memo) [measure sumRevenue at prodName = corr^1$0:prodName] AS r
    [measure sumRevenue at prodName = corr^1$0:prodName]
      Project $0:agg0 AS sumRevenue
        Aggregate aggs [SUM($3:revenue)]
          Filter ($0:prodName IS NOT DISTINCT FROM corr^1$0:prodName)
            Scan Orders
    Aggregate by [$0:prodName]
      Project $0:prodName AS prodName, $1:custName AS custName, $2:orderDate AS orderDate, $3:revenue AS revenue, $4:cost AS cost, NULL AS sumRevenue
        Scan Orders
`
	if got != want {
		t.Errorf("plain EXPLAIN mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if strings.Contains(got, "rows=") || strings.Contains(got, "time=") {
		t.Errorf("plain EXPLAIN must carry no runtime annotations:\n%s", got)
	}
}

// TestExplainAnalyzeGoldenListing3 locks the annotated rendering of the
// paper's Listing-3-style aggregation under StrategyMemo: 3 product
// contexts, so exactly 3 subquery evals and no memo hits. Note the Scan
// node is shared between the measure's base plan and the outer plan, so
// its metrics aggregate across both appearances (rows=20 over 4 scans
// of the 5-row Orders table).
func TestExplainAnalyzeGoldenListing3(t *testing.T) {
	db := openMemo(t)
	got, err := db.ExplainAnalyze(listing3SQL)
	if err != nil {
		t.Fatal(err)
	}
	want := `Sort $0:prodName ASC (rows=3 time=X)
  Project $0:prodName AS prodName, subquery(scalar memo) [measure sumRevenue at prodName = corr^1$0:prodName] AS r (rows=3 time=X)
    [measure sumRevenue at prodName = corr^1$0:prodName] (evals=3 hits=0)
      Project $0:agg0 AS sumRevenue (rows=3 loops=3 time=X)
        Aggregate aggs [SUM($3:revenue)] (rows=3 loops=3 time=X)
          Filter ($0:prodName IS NOT DISTINCT FROM corr^1$0:prodName) (rows=5 loops=3 time=X)
            Scan Orders (rows=20 loops=4 time=X)
    Aggregate by [$0:prodName] (rows=3 time=X)
      Project $0:prodName AS prodName, $1:custName AS custName, $2:orderDate AS orderDate, $3:revenue AS revenue, $4:cost AS cost, NULL AS sumRevenue (rows=5 time=X)
        Scan Orders (rows=20 loops=4 time=X)
Totals: rows=3 scanned=20 evals=3 hits=0 fanouts=0
`
	if maskTimes(got) != want {
		t.Errorf("EXPLAIN ANALYZE mismatch:\ngot:\n%s\nwant:\n%s", maskTimes(got), want)
	}
}

// TestExplainAnalyzeGoldenListing6 is the paper's share-of-total query
// (Listing 6). The two syntactic references to sumRevenue at the group
// context are distinct subqueries (each evaluated per group: 3 evals),
// while the AT (ALL prodName) grand total is evaluated once and served
// from the memo twice.
func TestExplainAnalyzeGoldenListing6(t *testing.T) {
	db := openMemo(t)
	got, err := db.ExplainAnalyze(listing6SQL)
	if err != nil {
		t.Fatal(err)
	}
	want := `Sort $0:prodName ASC (rows=3 time=X)
  Project $0:prodName AS prodName, subquery(scalar memo) [measure sumRevenue at prodName = corr^1$0:prodName] AS sumRevenue, /(subquery(scalar memo) [measure sumRevenue at prodName = corr^1$0:prodName], subquery(scalar memo) [measure sumRevenue at TRUE]) AS proportionOfTotalRevenue (rows=3 time=X)
    [measure sumRevenue at prodName = corr^1$0:prodName] (evals=3 hits=0)
      Project $0:agg0 AS sumRevenue (rows=3 loops=3 time=X)
        Aggregate aggs [SUM($3:revenue)] (rows=3 loops=3 time=X)
          Filter ($0:prodName IS NOT DISTINCT FROM corr^1$0:prodName) (rows=5 loops=3 time=X)
            Scan Orders (rows=40 loops=8 time=X)
    [measure sumRevenue at prodName = corr^1$0:prodName] (evals=3 hits=0)
      Project $0:agg0 AS sumRevenue (rows=3 loops=3 time=X)
        Aggregate aggs [SUM($3:revenue)] (rows=3 loops=3 time=X)
          Filter ($0:prodName IS NOT DISTINCT FROM corr^1$0:prodName) (rows=5 loops=3 time=X)
            Scan Orders (rows=40 loops=8 time=X)
    [measure sumRevenue at TRUE] (evals=1 hits=2)
      Project $0:agg0 AS sumRevenue (rows=1 time=X)
        Aggregate aggs [SUM($3:revenue)] (rows=1 time=X)
          Scan Orders (rows=40 loops=8 time=X)
    Aggregate by [$0:prodName] (rows=3 time=X)
      Project $0:prodName AS prodName, $1:custName AS custName, $2:orderDate AS orderDate, $3:revenue AS revenue, $4:cost AS cost, NULL AS sumRevenue (rows=5 time=X)
        Scan Orders (rows=40 loops=8 time=X)
Totals: rows=3 scanned=40 evals=7 hits=2 fanouts=0
`
	if maskTimes(got) != want {
		t.Errorf("EXPLAIN ANALYZE mismatch:\ngot:\n%s\nwant:\n%s", maskTimes(got), want)
	}
}

// TestExplainAnalyzeMatchesLastStats asserts the acceptance criterion:
// the Totals line of EXPLAIN ANALYZE agrees exactly with the session's
// LastStats, under every strategy and at several worker counts.
func TestExplainAnalyzeMatchesLastStats(t *testing.T) {
	re := regexp.MustCompile(`Totals: rows=(\d+) scanned=(\d+) evals=(\d+) hits=(\d+) fanouts=(\d+)`)
	for _, strat := range []struct {
		name string
		s    msql.Strategy
	}{{"default", msql.StrategyDefault}, {"memo", msql.StrategyMemo}, {"naive", msql.StrategyNaive}} {
		for _, w := range []int{1, 4} {
			db := open(t)
			db.SetStrategy(strat.s)
			db.SetWorkers(w)
			got, err := db.ExplainAnalyze(listing6SQL)
			if err != nil {
				t.Fatal(err)
			}
			m := re.FindStringSubmatch(got)
			if m == nil {
				t.Fatalf("%s/w=%d: no Totals line in:\n%s", strat.name, w, got)
			}
			st := db.LastStats()
			want := fmt.Sprintf("Totals: rows=3 scanned=%d evals=%d hits=%d fanouts=%d",
				st.RowsScanned, st.SubqueryEvals, st.SubqueryCacheHits, st.ParallelFanouts)
			if m[0] != want {
				t.Errorf("%s/w=%d: totals %q, LastStats says %q", strat.name, w, m[0], want)
			}
		}
	}
}

// TestExplainAnalyzeExecutes verifies EXPLAIN ANALYZE via the SQL
// statement form, and that it really ran the query (counts are nonzero).
func TestExplainAnalyzeStatement(t *testing.T) {
	db := openMemo(t)
	results, err := db.Run(`EXPLAIN ANALYZE ` + listing3SQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	msg := results[0].Message
	if !strings.Contains(msg, "Totals: rows=3 scanned=20 evals=3 hits=0") {
		t.Errorf("EXPLAIN ANALYZE statement output:\n%s", msg)
	}
	// Lowercase keyword must work too.
	results, err = db.Run(`explain analyze ` + listing3SQL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(results[0].Message, "Totals:") {
		t.Errorf("lowercase explain analyze output:\n%s", results[0].Message)
	}
}

// TestTraceSpans runs the share-of-total query with a SpanCollector
// installed and checks every lifecycle phase reports.
func TestTraceSpans(t *testing.T) {
	db := openMemo(t)
	col := &exec.SpanCollector{}
	db.SetTrace(col)
	if _, err := db.Query(listing6SQL); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"parse", "bind", "expand", "optimize", "execute", "operator"} {
		if len(col.ByPhase(phase)) == 0 {
			t.Errorf("no %q spans; got %+v", phase, col.Spans())
		}
	}
	// Expansion spans name the measure and its context transform.
	var sawMeasure bool
	for _, sp := range col.ByPhase("expand") {
		if sp.Name == "sumRevenue" {
			sawMeasure = true
			if sp.Attrs["strategy"] != "subquery" {
				t.Errorf("expand span attrs = %v", sp.Attrs)
			}
		}
	}
	if !sawMeasure {
		t.Errorf("no expand span for sumRevenue: %+v", col.ByPhase("expand"))
	}
	// Execute span carries the counters.
	ex := col.ByPhase("execute")
	if len(ex) != 1 || ex[0].Attrs["evals"] != "7" || ex[0].Attrs["hits"] != "2" {
		t.Errorf("execute span = %+v", ex)
	}
	// SetTrace(nil) removes the hook.
	db.SetTrace(nil)
	n := len(col.Spans())
	if _, err := db.Query(listing3SQL); err != nil {
		t.Fatal(err)
	}
	if len(col.Spans()) != n {
		t.Error("spans recorded after SetTrace(nil)")
	}
}

// TestInlineTraceSpan checks the default strategy reports measure
// inlining (§6.4) rather than subquery expansion.
func TestInlineTraceSpan(t *testing.T) {
	db := open(t)
	db.SetStrategy(msql.StrategyDefault)
	col := &exec.SpanCollector{}
	db.SetTrace(col)
	if _, err := db.Query(listing3SQL); err != nil {
		t.Fatal(err)
	}
	var sawInline bool
	for _, sp := range col.ByPhase("expand") {
		if sp.Attrs["strategy"] == "inline" && sp.Name == "sumRevenue" {
			sawInline = true
		}
	}
	if !sawInline {
		t.Errorf("no inline expand span: %+v", col.ByPhase("expand"))
	}
}

// TestMetricsRegistry checks the cumulative session counters and both
// export formats.
func TestMetricsRegistry(t *testing.T) {
	db := open(t)
	db.SetWorkers(1)
	db.SetStrategy(msql.StrategyMemo)
	for i := 0; i < 2; i++ {
		if _, err := db.Query(listing6SQL); err != nil {
			t.Fatal(err)
		}
	}
	db.SetStrategy(msql.StrategyNaive)
	if _, err := db.Query(listing3SQL); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`SELECT no_such_column FROM Orders`); err == nil {
		t.Fatal("expected error")
	}

	snap := db.Metrics()
	if snap.Queries != 3 {
		t.Errorf("queries = %d, want 3", snap.Queries)
	}
	if snap.Errors != 1 {
		t.Errorf("errors = %d, want 1", snap.Errors)
	}
	if snap.RowsReturned != 9 {
		t.Errorf("rows returned = %d, want 9", snap.RowsReturned)
	}
	// Two Listing-6 runs: 7 evals + 2 hits each; naive Listing 3: 3 evals.
	if snap.SubqueryEvals != 17 || snap.CacheHits != 4 {
		t.Errorf("evals=%d hits=%d, want 17/4", snap.SubqueryEvals, snap.CacheHits)
	}
	wantRatio := 4.0 / 21.0
	if diff := snap.CacheHitRatio - wantRatio; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cache hit ratio = %g, want %g", snap.CacheHitRatio, wantRatio)
	}
	if snap.ByStrategy["memo"].Queries != 2 || snap.ByStrategy["naive"].Queries != 1 {
		t.Errorf("by-strategy = %+v", snap.ByStrategy)
	}
	if snap.ByStrategy["memo"].ExecNs <= 0 || snap.ByStrategy["memo"].PlanNs <= 0 {
		t.Errorf("memo timings not recorded: %+v", snap.ByStrategy["memo"])
	}

	j := snap.JSON()
	for _, want := range []string{`"queries": 3`, `"cache_hits": 4`, `"by_strategy"`} {
		if !strings.Contains(j, want) {
			t.Errorf("JSON export missing %q:\n%s", want, j)
		}
	}
	p := snap.Prometheus()
	for _, want := range []string{
		"msql_queries_total 3",
		"msql_query_errors_total 1",
		"msql_subquery_cache_hits_total 4",
		`msql_strategy_queries_total{strategy="memo"} 2`,
		`msql_strategy_queries_total{strategy="naive"} 1`,
		"# TYPE msql_cache_hit_ratio gauge",
	} {
		if !strings.Contains(p, want) {
			t.Errorf("Prometheus export missing %q:\n%s", want, p)
		}
	}
}

// TestLastStatsDuringQuery reads LastStats while a parallel query is
// mutating the counters from worker goroutines — the data race fixed by
// making LastStats take an atomic snapshot. Meaningful under -race.
func TestLastStatsDuringQuery(t *testing.T) {
	db := open(t)
	db.SetStrategy(msql.StrategyMemo)
	db.SetWorkers(4)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = db.LastStats()
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := db.Query(listing6SQL); err != nil {
			t.Error(err)
			break
		}
	}
	close(done)
	wg.Wait()
	st := db.LastStats()
	if st.SubqueryEvals != 7 || st.SubqueryCacheHits != 2 {
		t.Errorf("final stats evals=%d hits=%d, want 7/2", st.SubqueryEvals, st.SubqueryCacheHits)
	}
}
