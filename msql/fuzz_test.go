package msql_test

// Native fuzz targets, seeded from the paper's listings. CI runs each
// for a short -fuzztime as a smoke test; run locally with e.g.
//
//	go test ./msql -fuzz=FuzzParseQuery -fuzztime=60s
//
// FuzzLexer and FuzzParseQuery assert the frontend never panics on
// arbitrary bytes; FuzzEndToEnd drives the whole engine under tight
// resource limits and asserts every failure is a classified *msql.Error.

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/measures-sql/msql/internal/lexer"
	"github.com/measures-sql/msql/internal/parser"
	"github.com/measures-sql/msql/msql"
)

// fuzzSeeds are drawn from the paper's listings plus frontier cases
// (measures, AT contexts, window frames, hostile arithmetic).
var fuzzSeeds = []string{
	`SELECT prodName, AGGREGATE(sumRevenue) AS r FROM OrdersWithRevenue GROUP BY prodName ORDER BY prodName`,
	`SELECT prodName, sumRevenue,
	        sumRevenue / sumRevenue AT (ALL prodName) AS proportionOfTotalRevenue
	 FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
	 GROUP BY prodName ORDER BY prodName`,
	`SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders`,
	`SELECT o.prodName, sumRevenue AT (WHERE orderDate >= DATE '2024-01-01') FROM EO AS o GROUP BY o.prodName`,
	`SELECT prodName, sumRevenue AT (SET orderYear = orderYear - 1) FROM EO GROUP BY prodName`,
	`SELECT custName, sumRevenue AT (VISIBLE) FROM EO GROUP BY custName`,
	`CREATE TABLE Orders (prodName VARCHAR, revenue INTEGER)`,
	`CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders`,
	`INSERT INTO Orders VALUES ('Happy', 6), ('Acme', 5)`,
	`SELECT b, SUM(a) OVER (PARTITION BY b ORDER BY a ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) FROM big`,
	`SELECT NTILE(3) OVER (ORDER BY a), RANK() OVER (ORDER BY b DESC) FROM big`,
	`SELECT 9223372036854775807 + 1`,
	`SELECT SUBSTRING('hello', 2, 9223372036854775807)`,
	`SELECT CAST('abc' AS INTEGER), MOD(1.0, 0.5)`,
	`EXPLAIN SELECT COUNT(*) FROM Orders`,
	`SELECT /*comment*/ 'quoted ''string''' -- trailing`,
	"SELECT \x00\xff",
	`((((((((((`,
	`SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE u.b = t.a)`,
}

func FuzzLexer(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Must terminate without panicking; errors are fine.
		_, _ = lexer.Tokenize(src)
	})
}

func FuzzParseQuery(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Parsing arbitrary input must not panic. A query that parses
		// must also survive the statement parser.
		if _, err := parser.ParseQuery(src); err == nil {
			_, _ = parser.ParseStatements(src)
		}
	})
}

func FuzzEndToEnd(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		db := msql.Open()
		db.MustExec(`CREATE TABLE Orders (prodName VARCHAR, custName VARCHAR, orderDate DATE, revenue INTEGER, cost INTEGER)`)
		db.MustExec(`INSERT INTO Orders VALUES ('Happy', 'Alice', DATE '2024-01-05', 6, 3)`)
		db.MustExec(`CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders`)
		db.MustExec(`CREATE TABLE big (a INTEGER, b INTEGER)`)
		db.MustExec(`INSERT INTO big VALUES (1, 1), (2, 0), (3, 1)`)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		err := db.ExecContext(ctx, src, msql.WithLimits(msql.Limits{
			MaxRows:           100000,
			MaxMemBytes:       16 << 20,
			MaxSubqueryEvals:  10000,
			MaxExpansionDepth: 32,
			Timeout:           time.Second,
		}))
		if err == nil {
			return
		}
		var me *msql.Error
		if !errors.As(err, &me) {
			t.Fatalf("unclassified error %T from %q: %v", err, src, err)
		}
	})
}
