package msql_test

// Regression tests for the mutation-invalidation contract: every path
// that can memoize results against a catalog version — the prepared
// plan cache's identical-binding result memo, and the rollup lattice —
// must observe INSERT and TRUNCATE immediately. TRUNCATE historically
// had no statement form here, so nothing exercised its bump of the
// shared invalidation path; these tests pin it alongside INSERT.

import (
	"testing"

	"github.com/measures-sql/msql/msql"
)

// execOne runs the query through a prepared statement and returns the
// single aggregate cell as its string rendering.
func execOne(t *testing.T, stmt *msql.Stmt) string {
	t.Helper()
	res, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("want a single cell, got %d rows", len(res.Rows))
	}
	return res.Rows[0][0].String()
}

func TestPreparedMemoSeesInsertAndTruncate(t *testing.T) {
	for _, rollups := range []bool{false, true} {
		name := "rollups-off"
		if rollups {
			name = "rollups-on"
		}
		t.Run(name, func(t *testing.T) {
			db := msql.Open()
			db.SetRollups(rollups)
			db.MustExec(`CREATE TABLE Sales (region VARCHAR, amount INTEGER)`)
			db.MustExec(`INSERT INTO Sales VALUES ('east', 10), ('west', 20)`)
			stmt, err := db.Prepare(`SELECT SUM(amount) FROM Sales`)
			if err != nil {
				t.Fatal(err)
			}
			// Same statement, same (empty) bindings, twice: the second
			// execution is the memoizable one.
			if got := execOne(t, stmt); got != "30" {
				t.Fatalf("initial sum = %s, want 30", got)
			}
			if got := execOne(t, stmt); got != "30" {
				t.Fatalf("repeat sum = %s, want 30", got)
			}
			db.MustExec(`INSERT INTO Sales VALUES ('east', 5)`)
			if got := execOne(t, stmt); got != "35" {
				t.Fatalf("post-insert sum = %s, want 35 (stale memo?)", got)
			}
			db.MustExec(`TRUNCATE TABLE Sales`)
			if got := execOne(t, stmt); got != "NULL" {
				t.Fatalf("post-truncate sum = %s, want NULL (stale memo?)", got)
			}
			// Refill to the pre-truncate row count with different values:
			// neither the memo nor a length-based lattice delta check may
			// resurrect pre-truncate state.
			db.MustExec(`INSERT INTO Sales VALUES ('east', 1), ('west', 2), ('east', 4)`)
			if got := execOne(t, stmt); got != "7" {
				t.Fatalf("post-refill sum = %s, want 7 (stale state)", got)
			}
			if rollups {
				if st := db.RollupStats(); st.Hits == 0 {
					t.Fatalf("rollups-on run never hit the lattice: %+v", st)
				}
			}
		})
	}
}

// TestTruncateStatementSurface pins the statement form itself: parse,
// message, idempotence on an empty table, and the error for a missing
// table.
func TestTruncateStatementSurface(t *testing.T) {
	db := msql.Open()
	db.MustExec(`CREATE TABLE T (x INTEGER)`)
	db.MustExec(`INSERT INTO T VALUES (1), (2)`)
	db.MustExec(`TRUNCATE TABLE T`)
	db.MustExec(`TRUNCATE T`) // TABLE keyword is optional
	res := db.MustQuery(`SELECT COUNT(*) FROM T`)
	if res.Rows[0][0].I != 0 {
		t.Fatalf("count after truncate = %d", res.Rows[0][0].I)
	}
	if err := db.Exec(`TRUNCATE TABLE NoSuch`); err == nil {
		t.Fatal("TRUNCATE of a missing table succeeded")
	}
	// TRUNCATE must keep working as an identifier.
	db.MustExec(`CREATE TABLE Truncate (x INTEGER)`)
	db.MustExec(`INSERT INTO Truncate VALUES (9)`)
	if got := db.MustQuery(`SELECT x FROM Truncate`).Rows[0][0].I; got != 9 {
		t.Fatalf("identifier use of TRUNCATE broken, got %d", got)
	}
}
