// Package msql is the public API of the measures-enabled SQL engine: an
// embeddable, in-memory SQL database implementing the language extension
// of "Measures in SQL" (Hyde & Fremlin, SIGMOD 2024).
//
// A measure is a column defined by AS MEASURE whose formula contains
// aggregate functions; referencing it in a query evaluates the formula
// in that call site's evaluation context, which the AT operator can
// transform (ALL, SET, VISIBLE, WHERE) — see README.md for a tour.
//
//	db := msql.Open()
//	db.MustExec(`CREATE TABLE Orders (prodName VARCHAR, revenue INTEGER)`)
//	db.MustExec(`INSERT INTO Orders VALUES ('Happy', 6), ('Acme', 5)`)
//	db.MustExec(`CREATE VIEW EO AS
//	    SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders`)
//	res, _ := db.Query(`SELECT prodName, AGGREGATE(sumRevenue)
//	    FROM EO GROUP BY prodName`)
//	fmt.Print(msql.Format(res))
package msql

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/engine"
	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/optimizer"
	"github.com/measures-sql/msql/internal/parser"
	"github.com/measures-sql/msql/internal/rollup"
	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/internal/wal"
)

// Value is a SQL value.
type Value = sqltypes.Value

// Type is a SQL type (possibly a measure type, e.g. DOUBLE MEASURE).
type Type = sqltypes.Type

// Result holds the rows of one statement.
type Result = engine.Result

// Strategy selects how measure references are evaluated; see the paper's
// §5.1/§6.4 and EXPERIMENTS.md for the trade-offs.
type Strategy int

const (
	// StrategyDefault inlines measures into plain aggregation when
	// provably equivalent and memoizes correlated subqueries otherwise.
	StrategyDefault Strategy = iota
	// StrategyMemo always expands to correlated subqueries, with
	// memoization (the "localized self-join" of §5.1).
	StrategyMemo
	// StrategyNaive always expands to correlated subqueries and
	// re-evaluates them per row/group (the textbook nested-loops
	// reading of the §4.2 rewrite).
	StrategyNaive
)

// DB is an in-memory SQL database session.
//
// Concurrency contract: a DB is intended for sequential use — one
// statement at a time — and concurrent queries on one DB share the
// catalog and metrics without further guarantees about LastStats.
// Configuration is nonetheless mutation-safe: SetStrategy, SetWorkers,
// and SetLimits take effect on the next statement, and every statement
// snapshots its settings at start, so calling a setter while a query
// runs on another goroutine degrades gracefully (the in-flight query
// keeps its settings) instead of racing. Per-call options
// (WithWorkers, WithLimits, WithTimeout) never touch shared state.
type DB struct {
	session *engine.Session
}

// Open creates an empty database.
func Open() *DB {
	return &DB{session: engine.New()}
}

// SyncPolicy controls when the write-ahead log is fsynced; see OpenDir.
type SyncPolicy = wal.SyncPolicy

const (
	// SyncAlways fsyncs before acknowledging each mutation (group
	// commit batches concurrent writers into shared fsyncs). No
	// acknowledged write is ever lost to a crash.
	SyncAlways = wal.SyncAlways
	// SyncInterval fsyncs on a short timer; a crash can lose the last
	// interval's writes but never corrupts the store.
	SyncInterval = wal.SyncInterval
	// SyncOff never fsyncs explicitly (the OS flushes eventually).
	SyncOff = wal.SyncOff
)

// ParseSyncPolicy parses "always", "interval", or "off".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// DirOption adjusts OpenDir.
type DirOption func(*wal.Options)

// WithSyncPolicy selects the WAL fsync policy (default SyncAlways).
func WithSyncPolicy(p SyncPolicy) DirOption {
	return func(o *wal.Options) { o.Sync = p }
}

// WithSyncInterval sets the SyncInterval flush period (default 50ms).
func WithSyncInterval(d time.Duration) DirOption {
	return func(o *wal.Options) { o.SyncEvery = d }
}

// OpenDir opens a durable database backed by dir, creating it if
// needed. Catalog and data mutations are written to an append-only,
// checksummed write-ahead log before they are acknowledged; Checkpoint
// snapshots the full store and truncates the log. Reopening the
// directory recovers the store — after a crash, recovery replays the
// snapshot plus the log tail, truncating a torn final record cleanly.
func OpenDir(dir string, opts ...DirOption) (*DB, error) {
	var o wal.Options
	for _, opt := range opts {
		opt(&o)
	}
	s, err := engine.NewDurable(dir, o)
	if err != nil {
		return nil, err
	}
	return &DB{session: s}, nil
}

// Durable reports whether this database writes through a WAL.
func (db *DB) Durable() bool { return db.session.Durable() }

// Checkpoint snapshots the full store to disk and truncates the WAL,
// bounding the next recovery's replay work. No-op for in-memory
// databases.
func (db *DB) Checkpoint() error { return db.session.Checkpoint() }

// Sync forces every acknowledged mutation onto disk regardless of the
// sync policy (useful before a planned stop under SyncInterval/SyncOff).
// No-op for in-memory databases.
func (db *DB) Sync() error { return db.session.SyncWAL() }

// Close flushes and closes the write-ahead log. The database stays
// readable; mutations fail after Close. No-op for in-memory databases.
func (db *DB) Close() error { return db.session.CloseDurability() }

// WALStats is a point-in-time copy of the durability layer's counters.
type WALStats = wal.Stats

// WALStats returns WAL/checkpoint/recovery counters (zero value for
// in-memory databases). The same data is queryable as
// msql_stats.storage and exported via Metrics().
func (db *DB) WALStats() WALStats { return db.session.WALStats() }

// SetStrategy switches the measure evaluation strategy for subsequent
// statements.
func (db *DB) SetStrategy(s Strategy) {
	db.session.Update(func(ex *exec.Settings, opt *optimizer.Options) {
		switch s {
		case StrategyMemo:
			opt.InlineMeasures = false
			opt.WinMagic = false
			opt.MemoizeSubqueries = true
			ex.MemoizeSubqueries = true
		case StrategyNaive:
			opt.InlineMeasures = false
			opt.WinMagic = false
			opt.MemoizeSubqueries = false
			ex.MemoizeSubqueries = false
		default:
			opt.InlineMeasures = true
			opt.WinMagic = true
			opt.MemoizeSubqueries = true
			ex.MemoizeSubqueries = true
		}
	})
	switch s {
	case StrategyMemo:
		db.session.SetStrategyLabel("memo")
	case StrategyNaive:
		db.session.SetStrategyLabel("naive")
	default:
		db.session.SetStrategyLabel("default")
	}
}

// SetWorkers sets the executor's worker-goroutine budget for subsequent
// statements: 0 means one worker per CPU, 1 runs the exact serial path.
// Results are identical at every setting; only wall-clock time changes.
func (db *DB) SetWorkers(n int) {
	db.session.Update(func(ex *exec.Settings, _ *optimizer.Options) {
		ex.Workers = n
	})
}

// SetVectorized toggles columnar batch execution for subsequent
// statements: filter, project, and hash aggregation run ~1024 rows at a
// time through typed kernels, falling back per-expression to the row
// evaluator for anything without a kernel (subqueries, CASE, volatile
// functions). Results are bit-identical to the row engine either way.
func (db *DB) SetVectorized(on bool) {
	db.session.Update(func(ex *exec.Settings, _ *optimizer.Options) {
		ex.Vectorized = on
	})
}

// SetRollups toggles the materialized rollup lattice for subsequent
// statements: eligible aggregations (plain GROUP BY dashboards, measure
// contexts, AT (ALL ...), ROLLUP) are answered from incrementally
// maintained per-group aggregate states instead of rescanning base
// rows. Results are bit-identical to direct execution — queries the
// lattice cannot answer exactly fall back transparently. Enabling
// replaces any previous lattice with an empty one.
func (db *DB) SetRollups(on bool) { db.session.SetRollups(on) }

// RollupStats is a point-in-time copy of the rollup lattice's activity
// counters.
type RollupStats = rollup.Counters

// RollupStats returns the lattice counters (zero value while rollups
// are disabled).
func (db *DB) RollupStats() RollupStats { return db.session.RollupStats() }

// Limits bounds one statement's resource consumption; see SetLimits and
// WithLimits. The zero value means unlimited in every dimension.
type Limits = exec.Limits

// SetLimits installs session-wide resource limits applied to every
// subsequent statement. Limit trips return ErrResourceExhausted (or
// ErrTimeout for Limits.Timeout) and increment session metrics.
func (db *DB) SetLimits(l Limits) {
	db.session.Update(func(ex *exec.Settings, _ *optimizer.Options) {
		ex.Limits = l
	})
}

// Option adjusts a single Context call without touching session state.
type Option func(*engine.Overrides)

// WithWorkers overrides the worker budget for one call.
func WithWorkers(n int) Option {
	return func(ov *engine.Overrides) { ov.Workers = &n }
}

// WithLimits replaces the resource limits for one call.
func WithLimits(l Limits) Option {
	return func(ov *engine.Overrides) { ov.Limits = &l }
}

// WithVectorized overrides the columnar-execution toggle for one call;
// see SetVectorized.
func WithVectorized(on bool) Option {
	return func(ov *engine.Overrides) { ov.Vectorized = &on }
}

// WithTimeout overrides (only) the statement timeout for one call.
func WithTimeout(d time.Duration) Option {
	return func(ov *engine.Overrides) { ov.Timeout = &d }
}

// WithSource labels the statement's origin ("repl", "api", "wire") in
// the live-query registry and slow-query log; unset defaults to "api".
func WithSource(source string) Option {
	return func(ov *engine.Overrides) { ov.Source = source }
}

// WithRequestID attaches a request correlation ID to one call: tracer
// spans for the statement carry request_id and query_id attributes, and
// the slow-query log and active-query listing echo the ID.
func WithRequestID(id string) Option {
	return func(ov *engine.Overrides) { ov.RequestID = id }
}

func overrides(opts []Option) *engine.Overrides {
	if len(opts) == 0 {
		return nil
	}
	ov := &engine.Overrides{}
	for _, o := range opts {
		o(ov)
	}
	return ov
}

// Exec runs a script of one or more statements, discarding result rows.
func (db *DB) Exec(sql string) error {
	_, err := db.session.Execute(sql)
	return err
}

// ExecContext is Exec under a context: cancel the context (or exceed
// its deadline / a WithTimeout option) and the running statement stops
// cooperatively with ErrCanceled or ErrTimeout.
func (db *DB) ExecContext(ctx context.Context, sql string, opts ...Option) error {
	_, err := db.session.ExecuteContext(ctx, sql, overrides(opts))
	return err
}

// Run executes a script and returns every statement's result (rows for
// queries, a message for DDL/DML/EXPLAIN/EXPAND).
func (db *DB) Run(sql string) ([]*Result, error) {
	return db.session.Execute(sql)
}

// RunContext is Run under a context with per-call options; results of
// the statements completed before an error are returned alongside it.
func (db *DB) RunContext(ctx context.Context, sql string, opts ...Option) ([]*Result, error) {
	return db.session.ExecuteContext(ctx, sql, overrides(opts))
}

// MustExec is Exec that panics on error, for setup code and examples.
func (db *DB) MustExec(sql string) {
	if err := db.Exec(sql); err != nil {
		panic(err)
	}
}

// Query runs a single statement and returns its rows.
func (db *DB) Query(sql string) (*Result, error) {
	return db.session.Query(sql)
}

// QueryContext is Query under a context: execution polls the context
// cooperatively (including inside parallel workers and in-flight
// measure-subquery evaluations), so cancellation returns ErrCanceled
// promptly and leaves the session usable.
func (db *DB) QueryContext(ctx context.Context, sql string, opts ...Option) (*Result, error) {
	return db.session.QueryContext(ctx, sql, overrides(opts))
}

// MustQuery is Query that panics on error.
func (db *DB) MustQuery(sql string) *Result {
	res, err := db.Query(sql)
	if err != nil {
		panic(err)
	}
	return res
}

// Explain returns the optimized logical plan of a query as text.
func (db *DB) Explain(sql string) (string, error) {
	q, err := parser.ParseQuery(sql)
	if err != nil {
		return "", err
	}
	res, err := db.session.ExecStatement(&ast.Explain{Query: q})
	if err != nil {
		return "", err
	}
	return res.Message, nil
}

// ExplainAnalyze executes a query and returns the optimized plan
// annotated per operator with rows, loops, worker fan-out and wall time,
// and per measure subquery with distinct-context evaluations vs memo
// hits — equivalent to running `EXPLAIN ANALYZE <sql>`.
func (db *DB) ExplainAnalyze(sql string) (string, error) {
	q, err := parser.ParseQuery(sql)
	if err != nil {
		return "", err
	}
	res, err := db.session.ExecStatement(&ast.Explain{Query: q, Analyze: true})
	if err != nil {
		return "", err
	}
	return res.Message, nil
}

// Expand rewrites a measure query into plain, measure-free SQL — the
// paper's §4.2 static expansion (Listings 5 and 11). The returned SQL
// parses and runs on this same engine with identical results.
func (db *DB) Expand(sql string) (string, error) {
	q, err := parser.ParseQuery(sql)
	if err != nil {
		return "", err
	}
	return db.session.ExpandQuery(q)
}

// InsertRows bulk-inserts pre-built rows into a base table without going
// through the SQL parser; values are coerced to the column types.
func (db *DB) InsertRows(table string, rows [][]Value) error {
	return db.session.InsertRows(table, rows)
}

// Stats holds executor counters for one query (see LastStats).
type Stats = exec.Stats

// LastStats returns executor counters for the most recent Query call:
// subquery evaluations, memo-cache hits, rows scanned. Useful to verify
// what a strategy actually did (EXPERIMENTS.md E12).
func (db *DB) LastStats() Stats { return db.session.LastStats() }

// TraceSpan is one structured query-lifecycle event: parse, bind,
// measure expansion (which measure, which context transform), optimizer
// rewrites that fired, execution, and per-operator detail.
type TraceSpan = exec.Span

// TraceHook receives lifecycle spans; implementations must be safe for
// concurrent use.
type TraceHook = exec.Tracer

// SetTrace installs a lifecycle trace hook on the session; nil removes
// it. Bundled implementations: NewTextTracer, NewJSONTracer.
func (db *DB) SetTrace(t TraceHook) { db.session.SetTracer(t) }

// NewTextTracer returns a TraceHook rendering each span as one aligned
// text line on w.
func NewTextTracer(w io.Writer) TraceHook { return &exec.TextTracer{W: w} }

// NewJSONTracer returns a TraceHook rendering each span as one JSON
// object per line on w.
func NewJSONTracer(w io.Writer) TraceHook { return &exec.JSONTracer{W: w} }

// MetricsSnapshot is a point-in-time copy of a session's cumulative
// metrics; render with its JSON() (expvar-style) or Prometheus() (text
// exposition format) methods.
type MetricsSnapshot = engine.MetricsSnapshot

// Metrics returns cumulative session metrics: queries, rows, subquery
// cache hit ratio, and per-strategy plan/exec timings. When a query
// server has registered itself (RegisterServerMetrics), the snapshot
// additionally carries its admission/drain counters.
func (db *DB) Metrics() MetricsSnapshot { return db.session.Metrics().Snapshot() }

// ServerCounters is the serving layer's slice of a metrics snapshot:
// admission-control and drain counters published by a query server
// (msqld) sitting in front of this DB.
type ServerCounters = engine.ServerCounters

// RegisterServerMetrics installs (or with nil removes) a source of
// serving-layer counters; Metrics() calls it so the server's inflight/
// queued/shed/drain counters appear in the same JSON and Prometheus
// output as the engine's.
func (db *DB) RegisterServerMetrics(fn func() ServerCounters) {
	db.session.Metrics().SetServerSource(fn)
}

// Tables lists base tables and views, for tooling.
func (db *DB) Tables() (tables, views []string) {
	return db.session.Catalog().Names()
}

// SystemTables lists the read-only msql_stats.* virtual tables, for
// tooling like the CLI's \d.
func (db *DB) SystemTables() []string {
	return db.session.Catalog().VirtualNames()
}

// StatementStat is a point-in-time snapshot of one normalized
// statement's cumulative statistics, in the pg_stat_statements
// tradition: queries differing only in literal values share one
// fingerprint. The same data is queryable as msql_stats.statements.
type StatementStat = engine.StatementStat

// StatementStats snapshots the statement-stats store, sorted by
// fingerprint.
func (db *DB) StatementStats() []StatementStat { return db.session.StatementStats() }

// SetStatementStats toggles statement-stats tracking (default on).
// Turning it off removes fingerprinting and recording from the
// statement path; accumulated statistics are retained.
func (db *DB) SetStatementStats(on bool) { db.session.SetStatementStats(on) }

// ResetStatementStats clears all accumulated statement statistics.
func (db *DB) ResetStatementStats() { db.session.ResetStatementStats() }

// ActiveQuery is a point-in-time view of one in-flight statement, also
// queryable as msql_stats.active_queries.
type ActiveQuery = engine.ActiveQuery

// ActiveQueries lists in-flight statements, oldest first.
func (db *DB) ActiveQueries() []ActiveQuery { return db.session.ActiveQueries() }

// Kill cancels the in-flight statement with the given query ID
// (equivalent to the SQL statement KILL <id>), returning false when no
// such query is running. The victim fails with ErrCanceled at its next
// cooperative checkpoint.
func (db *DB) Kill(id int64) bool { return db.session.Kill(id) }

// SetSlowQueryLog installs (or with nil w removes) a slow-query log:
// statements whose total wall time is at least threshold emit one JSON
// line to w with the query ID, request ID, source, fingerprint, and
// duration.
func (db *DB) SetSlowQueryLog(w io.Writer, threshold time.Duration) {
	db.session.SetSlowQueryLog(w, threshold)
}

// Format renders a result as an aligned text table, in the style of the
// paper's listings.
func Format(res *Result) string {
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for ri, row := range res.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb strings.Builder
	for i, c := range res.Columns {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%-*s", widths[i], c)
	}
	sb.WriteByte('\n')
	for i := range res.Columns {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("=", widths[i]))
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == len(row)-1 {
				sb.WriteString(cell) // no trailing padding
			} else {
				fmt.Fprintf(&sb, "%-*s", widths[i], cell)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
