package msql_test

// Semantic tests for the measure machinery beyond the paper's listings:
// composability and closure (§5.4 / E16), the security "hologram"
// property (§5.5 / E15), modifier laws (§3.5 / E18), strategy equivalence
// (E20), NULL dimensions, semi-additive measures (§5.3 / E17), and error
// behaviour.

import (
	"strings"
	"testing"

	"github.com/measures-sql/msql/internal/datagen"
	"github.com/measures-sql/msql/internal/paperdata"
	"github.com/measures-sql/msql/msql"
)

func mustRows(t *testing.T, db *msql.DB, sql string) [][]string {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("query failed: %v\nSQL: %s", err, sql)
	}
	return rowsAsStrings(res)
}

func sameRows(t *testing.T, a, b [][]string, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d rows\n%v\n%v", label, len(a), len(b), a, b)
	}
	for i := range a {
		if strings.Join(a[i], "|") != strings.Join(b[i], "|") {
			t.Errorf("%s: row %d differs: %v vs %v", label, i, a[i], b[i])
		}
	}
}

// ---------------------------------------------------------------------------
// E16: composability and closure

func TestMeasureReferencingSiblingMeasure(t *testing.T) {
	db := open(t)
	// profit defined in terms of two sibling measures.
	got := mustRows(t, db, `
		SELECT prodName, AGGREGATE(margin) AS m
		FROM (SELECT *,
		        SUM(revenue) AS MEASURE rev,
		        SUM(cost) AS MEASURE c,
		        (rev - c) / rev AS MEASURE margin
		      FROM Orders) AS o
		GROUP BY prodName ORDER BY prodName`)
	want := [][]string{{"Acme", "0.6"}, {"Happy", "0.47"}, {"Whizz", "0.67"}}
	sameRows(t, got, want, "sibling measures")
}

func TestMeasureOnMeasureThroughNestedQueries(t *testing.T) {
	db := open(t)
	// A measure defined over a table whose measures came from a subquery:
	// ratio = rev / cost composed through the shared base.
	got := mustRows(t, db, `
		SELECT prodName, AGGREGATE(ratio) AS r
		FROM (SELECT *, rev / c AS MEASURE ratio
		      FROM (SELECT *,
		              SUM(revenue) AS MEASURE rev,
		              SUM(cost) AS MEASURE c
		            FROM Orders) AS inner1) AS outer1
		GROUP BY prodName ORDER BY prodName`)
	// Acme 5/2=2.5, Happy 17/9=1.889, Whizz 3/1=3.
	want := [][]string{{"Acme", "2.5"}, {"Happy", "1.89"}, {"Whizz", "3"}}
	sameRows(t, got, want, "measure-on-measure")
}

func TestClosureReexportThroughWhere(t *testing.T) {
	db := open(t)
	// Re-export bakes the WHERE into the measure: the inner query removes
	// Bob, and the measure cannot be subverted back (paper §3.5).
	got := mustRows(t, db, `
		SELECT prodName, AGGREGATE(rev) AS r, rev AT (ALL) AS total
		FROM (SELECT prodName, custName, rev
		      FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS v
		      WHERE custName <> 'Bob') AS filtered
		GROUP BY prodName ORDER BY prodName`)
	// Without Bob: Happy 6+7=13, Whizz 3 (Acme had only Bob's order, so
	// no group). AT (ALL) lifts group filters but NOT the baked WHERE:
	// total = 16 everywhere, never 25.
	want := [][]string{{"Happy", "13", "16"}, {"Whizz", "3", "16"}}
	sameRows(t, got, want, "baked WHERE")
}

func TestClosureReexportRenamesDims(t *testing.T) {
	db := open(t)
	got := mustRows(t, db, `
		SELECT product, AGGREGATE(rev) AS r
		FROM (SELECT prodName AS product, rev
		      FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS v) AS renamed
		GROUP BY product ORDER BY product`)
	want := [][]string{{"Acme", "5"}, {"Happy", "17"}, {"Whizz", "3"}}
	sameRows(t, got, want, "renamed dims")
}

func TestViewsOverViewsWithMeasures(t *testing.T) {
	db := open(t)
	db.MustExec(`
		CREATE VIEW V1 AS SELECT *, SUM(revenue) AS MEASURE rev FROM Orders;
		CREATE VIEW V2 AS SELECT prodName, orderDate, rev FROM V1;
	`)
	got := mustRows(t, db, `
		SELECT prodName, AGGREGATE(rev) AS r FROM V2 GROUP BY prodName ORDER BY prodName`)
	want := [][]string{{"Acme", "5"}, {"Happy", "17"}, {"Whizz", "3"}}
	sameRows(t, got, want, "view over view")
}

// Reducing the projected dimensions reduces what contexts can constrain:
// dropping orderDate from the projection makes SET orderYear an error.
func TestDimensionalityShrinksWithProjection(t *testing.T) {
	db := open(t)
	_, err := db.Query(`
		SELECT prodName, rev AT (SET orderDate = DATE '2023-11-28') AS r
		FROM (SELECT prodName, rev
		      FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS v) AS narrow
		GROUP BY prodName`)
	if err == nil || !strings.Contains(err.Error(), "dimension") {
		t.Errorf("constraining a dropped dimension should fail, got %v", err)
	}
}

// ---------------------------------------------------------------------------
// E18: modifier laws

// cse AT (m1 m2) ≡ (cse AT (m2)) AT (m1) — paper §3.5.
func TestModifierSequencingLaw(t *testing.T) {
	db := open(t)
	q1 := `
		SELECT prodName, rev AT (ALL prodName SET custName = 'Alice') AS x
		FROM OrdersWithRevenue GROUP BY prodName ORDER BY prodName`
	q2 := `
		SELECT prodName, rev AT (SET custName = 'Alice') AT (ALL prodName) AS x
		FROM OrdersWithRevenue GROUP BY prodName ORDER BY prodName`
	db.MustExec(`CREATE VIEW OWR2 AS SELECT *, SUM(revenue) AS MEASURE rev FROM Orders`)
	q1 = strings.ReplaceAll(q1, "OrdersWithRevenue", "OWR2")
	q2 = strings.ReplaceAll(q2, "OrdersWithRevenue", "OWR2")
	sameRows(t, mustRows(t, db, q1), mustRows(t, db, q2), "sequencing law")
	// And the law is not vacuous: both should give Alice's total 13.
	got := mustRows(t, db, q1)
	for _, row := range got {
		if row[1] != "13" {
			t.Errorf("expected Alice's revenue 13 in every group, got %v", row)
		}
	}
}

func TestAggregateEqualsEvalAtVisible(t *testing.T) {
	db := open(t)
	q := func(expr string) string {
		return `
			SELECT o.prodName, ` + expr + ` AS v
			FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
			WHERE o.custName <> 'Bob'
			GROUP BY ROLLUP(o.prodName)
			ORDER BY o.prodName NULLS LAST`
	}
	sameRows(t, mustRows(t, db, q("AGGREGATE(o.rev)")), mustRows(t, db, q("EVAL(o.rev AT (VISIBLE))")),
		"AGGREGATE(m) = EVAL(m AT (VISIBLE))")
}

func TestAllThenSetEqualsSet(t *testing.T) {
	db := open(t)
	q := func(mods string) string {
		return `
			SELECT prodName, rev AT (` + mods + `) AS v
			FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
			GROUP BY prodName ORDER BY prodName`
	}
	// ALL prodName then SET prodName = 'Happy' ≡ SET prodName = 'Happy'.
	sameRows(t, mustRows(t, db, q("ALL prodName SET prodName = 'Happy'")),
		mustRows(t, db, q("SET prodName = 'Happy'")), "ALL-then-SET")
	for _, row := range mustRows(t, db, q("SET prodName = 'Happy'")) {
		if row[1] != "17" {
			t.Errorf("SET prodName='Happy' should yield 17, got %v", row)
		}
	}
}

func TestBareAllRemovesEverything(t *testing.T) {
	db := open(t)
	got := mustRows(t, db, `
		SELECT prodName, rev AT (ALL) AS total
		FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
		WHERE custName <> 'Bob'
		GROUP BY prodName ORDER BY prodName`)
	for _, row := range got {
		if row[1] != "25" {
			t.Errorf("AT (ALL) must see the whole base table (25), got %v", row)
		}
	}
}

func TestCurrentOfUnconstrainedDimensionIsNull(t *testing.T) {
	db := open(t)
	// custName is not constrained by the context, so CURRENT custName is
	// NULL and the SET term matches no row → measure over empty set → NULL.
	got := mustRows(t, db, `
		SELECT prodName, rev AT (SET custName = CURRENT custName) AS v
		FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
		GROUP BY prodName ORDER BY prodName`)
	for _, row := range got {
		if row[1] != "NULL" {
			t.Errorf("CURRENT of unconstrained dim should be NULL → empty context, got %v", row)
		}
	}
}

func TestAtWhereReplacesContext(t *testing.T) {
	db := open(t)
	got := mustRows(t, db, `
		SELECT prodName, rev AT (WHERE custName = 'Bob') AS bobTotal
		FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
		GROUP BY prodName ORDER BY prodName`)
	// Context replaced entirely: Bob's total (5+4=9) in every group.
	for _, row := range got {
		if row[1] != "9" {
			t.Errorf("AT (WHERE ...) should replace the context, got %v", row)
		}
	}
}

// ---------------------------------------------------------------------------
// E20: strategy equivalence

func TestStrategyEquivalence(t *testing.T) {
	queries := []string{
		`SELECT prodName, AGGREGATE(margin) AS m
		 FROM (SELECT *, (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
		       FROM Orders) AS o
		 GROUP BY prodName ORDER BY prodName`,
		`SELECT prodName, rev, rev / rev AT (ALL prodName) AS share
		 FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
		 GROUP BY prodName ORDER BY prodName`,
		`SELECT o.prodName, AGGREGATE(o.rev) AS ragg, o.rev AS r
		 FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
		 WHERE o.custName <> 'cust0001'
		 GROUP BY ROLLUP(o.prodName)
		 ORDER BY o.prodName NULLS LAST`,
		`SELECT YEAR(orderDate) AS y, rev AT (SET y = CURRENT y - 1) AS lastYear
		 FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
		 GROUP BY YEAR(orderDate) ORDER BY y`,
	}
	cfg := datagen.Config{Seed: 3, Customers: 30, Products: 8, Orders: 2000, Years: 3, NullProductFraction: 0.05}
	load := func(strategy msql.Strategy) *msql.DB {
		db := msql.Open()
		db.MustExec(datagen.SetupSQL)
		ds := datagen.Generate(cfg)
		if err := db.InsertRows("Customers", ds.Customers); err != nil {
			t.Fatal(err)
		}
		if err := db.InsertRows("Orders", ds.Orders); err != nil {
			t.Fatal(err)
		}
		db.SetStrategy(strategy)
		return db
	}
	inline := load(msql.StrategyDefault)
	memo := load(msql.StrategyMemo)
	naive := load(msql.StrategyNaive)
	for qi, q := range queries {
		a := mustRows(t, inline, q)
		b := mustRows(t, memo, q)
		c := mustRows(t, naive, q)
		sameRows(t, a, b, "inline vs memo, query "+string(rune('A'+qi)))
		sameRows(t, b, c, "memo vs naive, query "+string(rune('A'+qi)))
	}
}

func TestExpansionEquivalenceOnSyntheticData(t *testing.T) {
	db := msql.Open()
	db.MustExec(datagen.SetupSQL)
	ds := datagen.Generate(datagen.Config{Seed: 5, Customers: 20, Products: 6, Orders: 500, Years: 2})
	if err := db.InsertRows("Customers", ds.Customers); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRows("Orders", ds.Orders); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE VIEW EO AS
		SELECT *, SUM(revenue) AS MEASURE rev,
		       (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
		FROM Orders`)
	queries := []string{
		`SELECT prodName, AGGREGATE(margin) AS m FROM EO GROUP BY prodName ORDER BY prodName`,
		`SELECT prodName, rev / rev AT (ALL prodName) AS share FROM EO GROUP BY prodName ORDER BY prodName`,
		`SELECT prodName, YEAR(orderDate) AS y,
		        rev / rev AT (SET y = CURRENT y - 1) AS ratio
		 FROM EO GROUP BY prodName, YEAR(orderDate) ORDER BY prodName, y`,
		`SELECT custName, AGGREGATE(rev) AS r FROM EO
		 WHERE prodName = 'prod001' GROUP BY custName ORDER BY custName`,
	}
	for _, q := range queries {
		expanded, err := db.Expand(q)
		if err != nil {
			t.Fatalf("Expand(%s): %v", q, err)
		}
		sameRows(t, mustRows(t, db, q), mustRows(t, db, expanded), "expansion of "+q)
	}
}

// ---------------------------------------------------------------------------
// E15: the security/hologram property (§5.5)

// A view with measures reveals only information distinguishable by its
// dimension columns: two base tables whose rows cannot be separated by
// the projected dimensions answer every measure query identically.
func TestHologramProperty(t *testing.T) {
	build := func(extraRows string) *msql.DB {
		db := msql.Open()
		db.MustExec(`
			CREATE TABLE Secret (a VARCHAR, b INTEGER, c VARCHAR, d INTEGER);
			INSERT INTO Secret VALUES
			  ('x', 1, 'hidden1', 10),
			  ('x', 2, 'hidden2', 20),
			  ('y', 1, 'hidden3', 30)` + extraRows + `;
			CREATE VIEW Exposed AS
			SELECT a, b, SUM(d) AS MEASURE m, COUNT(*) AS MEASURE n
			FROM Secret;
		`)
		return db
	}
	// The second database swaps the hidden c values and splits one row
	// into two half-sized rows with the same (a, b): indistinguishable
	// через the (a, b) dimensions for SUM, but NOT for COUNT — so we only
	// compare SUM-based answers, plus show COUNT changes (the hologram
	// has finite resolution: dimension-distinguishable content only).
	db1 := build("")
	db2 := msql.Open()
	db2.MustExec(`
		CREATE TABLE Secret (a VARCHAR, b INTEGER, c VARCHAR, d INTEGER);
		INSERT INTO Secret VALUES
		  ('x', 1, 'swapped', 4),
		  ('x', 1, 'swapped', 6),
		  ('x', 2, 'other', 20),
		  ('y', 1, 'other', 30);
		CREATE VIEW Exposed AS
		SELECT a, b, SUM(d) AS MEASURE m, COUNT(*) AS MEASURE n
		FROM Secret;
	`)
	probes := []string{
		`SELECT a, AGGREGATE(m) AS v FROM Exposed GROUP BY a ORDER BY a`,
		`SELECT b, AGGREGATE(m) AS v FROM Exposed GROUP BY b ORDER BY b`,
		`SELECT a, b, AGGREGATE(m) AS v FROM Exposed GROUP BY a, b ORDER BY a, b`,
		`SELECT a, m AT (ALL a) AS v FROM Exposed GROUP BY a ORDER BY a`,
		`SELECT a, m AT (SET b = 1) AS v FROM Exposed GROUP BY a ORDER BY a`,
		`SELECT AGGREGATE(m) AS v FROM Exposed`,
	}
	for _, p := range probes {
		sameRows(t, mustRows(t, db1, p), mustRows(t, db2, p), "hologram probe "+p)
	}
	// The hidden column c is simply not addressable.
	_, err := db1.Query(`SELECT a, m AT (SET c = 'hidden1') AS v FROM Exposed GROUP BY a`)
	if err == nil {
		t.Error("constraining a hidden column must fail")
	}
}

// ---------------------------------------------------------------------------
// E17: semi-additive and NULL-dimension behaviour

func TestSemiAdditiveInventory(t *testing.T) {
	db := msql.Open()
	db.MustExec(`
		CREATE TABLE Inv (prod VARCHAR, wh VARCHAR, snapDate DATE, onHand INTEGER);
		INSERT INTO Inv VALUES
		  ('p', 'e', DATE '2024-01-01', 10),
		  ('p', 'e', DATE '2024-02-01', 4),
		  ('p', 'w', DATE '2024-01-01', 7),
		  ('q', 'w', DATE '2024-01-01', 1);
		CREATE VIEW LastSnap AS
		SELECT prod, wh, ARG_MAX(onHand, snapDate) AS lastQty
		FROM Inv GROUP BY prod, wh;
		CREATE VIEW InvM AS SELECT *, SUM(lastQty) AS MEASURE onHand FROM LastSnap;
	`)
	got := mustRows(t, db, `SELECT prod, AGGREGATE(onHand) AS oh FROM InvM GROUP BY prod ORDER BY prod`)
	sameRows(t, got, [][]string{{"p", "11"}, {"q", "1"}}, "semi-additive rollup")
	got = mustRows(t, db, `SELECT AGGREGATE(onHand) AS oh FROM InvM`)
	sameRows(t, got, [][]string{{"12"}}, "semi-additive grand total")
}

func TestNullDimensionGrouping(t *testing.T) {
	db := msql.Open()
	db.MustExec(`
		CREATE TABLE T (k VARCHAR, v INTEGER);
		INSERT INTO T VALUES ('a', 1), (NULL, 2), (NULL, 3);
	`)
	// The NULL group's measure must cover exactly the NULL rows —
	// the paper's footnote about IS NOT DISTINCT FROM.
	got := mustRows(t, db, `
		SELECT k, AGGREGATE(s) AS v
		FROM (SELECT *, SUM(v) AS MEASURE s FROM T) AS o
		GROUP BY k ORDER BY k NULLS FIRST`)
	sameRows(t, got, [][]string{{"NULL", "5"}, {"a", "1"}}, "NULL dimension group")
}

func TestMeasureOverEmptyTable(t *testing.T) {
	db := msql.Open()
	db.MustExec(`
		CREATE TABLE Empty (k VARCHAR, v INTEGER);
		CREATE VIEW EM AS SELECT *, SUM(v) AS MEASURE s, COUNT(*) AS MEASURE c FROM Empty;
	`)
	// "How can I evaluate a measure on a table that has no rows?" (§6.5):
	// the global aggregate returns SUM NULL / COUNT 0.
	got := mustRows(t, db, `SELECT AGGREGATE(s) AS s, AGGREGATE(c) AS c FROM EM`)
	sameRows(t, got, [][]string{{"NULL", "0"}}, "measure over empty table")
}

// ---------------------------------------------------------------------------
// Wide tables: measures defined over a join keep their grain

func TestWideTableJoinGrain(t *testing.T) {
	db := open(t)
	db.MustExec(`
		CREATE VIEW Wide AS
		SELECT o.prodName, o.custName, o.revenue, c.custAge,
		       SUM(o.revenue) AS MEASURE rev
		FROM Orders AS o JOIN Customers AS c USING (custName);
	`)
	got := mustRows(t, db, `
		SELECT prodName, AGGREGATE(rev) AS r FROM Wide GROUP BY prodName ORDER BY prodName`)
	sameRows(t, got, [][]string{{"Acme", "5"}, {"Happy", "17"}, {"Whizz", "3"}}, "wide table measure")
	// Grouping by the customer side of the join still works: custAge is a
	// dimension of the wide table.
	got = mustRows(t, db, `
		SELECT custAge, AGGREGATE(rev) AS r FROM Wide GROUP BY custAge ORDER BY custAge`)
	sameRows(t, got, [][]string{{"17", "3"}, {"23", "13"}, {"41", "9"}}, "wide table by age")
}

// ---------------------------------------------------------------------------
// Error behaviour

func TestMeasureErrors(t *testing.T) {
	db := open(t)
	cases := []struct {
		sql, needle string
	}{
		{`SELECT AVG(profitMargin) FROM EnhancedOrders GROUP BY prodName`, "AGGREGATE"},
		{`SELECT AGGREGATE(revenue) FROM Orders GROUP BY prodName`, "measure"},
		{`SELECT revenue AT (ALL) FROM Orders`, "measure"},
		{`SELECT AGGREGATE(profitMargin, 2) FROM EnhancedOrders GROUP BY prodName`, "one measure argument"},
		{`SELECT prodName, profitMargin AT (SET bogus = 1) AS x FROM EnhancedOrders GROUP BY prodName`, "unknown"},
		{`SELECT prodName, profitMargin AT (ALL bogus) AS x FROM EnhancedOrders GROUP BY prodName`, "unknown dimension"},
		{`SELECT prodName FROM EnhancedOrders GROUP BY profitMargin`, "measure"},
		{`SELECT *, SUM(revenue) + cost AS MEASURE bad FROM Orders`, "aggregatable"},
		{`SELECT *, m2 + 1 AS MEASURE m2 FROM Orders`, "recursive"},
		{`SELECT profitMargin FROM EnhancedOrders UNION SELECT 1.0`, "set operations"},
	}
	for _, c := range cases {
		_, err := db.Query(c.sql)
		if err == nil {
			err = db.Exec(c.sql)
		}
		if err == nil {
			t.Errorf("%q: expected an error mentioning %q", c.sql, c.needle)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.needle)) {
			t.Errorf("%q: error %q does not mention %q", c.sql, err, c.needle)
		}
	}
}

func TestMeasuresInHavingAndOrderBy(t *testing.T) {
	db := open(t)
	got := mustRows(t, db, `
		SELECT prodName, AGGREGATE(rev) AS r
		FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
		GROUP BY prodName
		HAVING AGGREGATE(rev) > 4
		ORDER BY AGGREGATE(rev) DESC`)
	sameRows(t, got, [][]string{{"Happy", "17"}, {"Acme", "5"}}, "measure in HAVING/ORDER BY")
}

func TestRowContextMeasureInSelect(t *testing.T) {
	db := open(t)
	// Non-aggregate query: bare-ish measure in an expression evaluates in
	// row context (all dimensions bound to the current row).
	got := mustRows(t, db, `
		SELECT prodName, revenue, EVAL(rev) AS rowRev
		FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
		WHERE prodName = 'Happy'
		ORDER BY orderDate`)
	// Each row's context binds every dimension → exactly that row.
	want := [][]string{{"Happy", "4", "4"}, {"Happy", "6", "6"}, {"Happy", "7", "7"}}
	sameRows(t, got, want, "row-context measure")
}

func TestPaperDataLoads(t *testing.T) {
	db := msql.Open()
	if err := db.Exec(paperdata.All); err != nil {
		t.Fatal(err)
	}
	got := mustRows(t, db, `SELECT COUNT(*) FROM Orders`)
	sameRows(t, got, [][]string{{"5"}}, "orders count")
	got = mustRows(t, db, `SELECT COUNT(*) FROM Customers`)
	sameRows(t, got, [][]string{{"3"}}, "customers count")
}

// Executor statistics prove what each strategy actually does: with
// memoization a measure subquery is evaluated once per distinct context;
// without it, once per output row.
func TestMemoizationStats(t *testing.T) {
	q := `
		SELECT prodName, rev AT (ALL) AS total
		FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
		GROUP BY prodName`
	memo := open(t)
	memo.SetStrategy(msql.StrategyMemo)
	if _, err := memo.Query(q); err != nil {
		t.Fatal(err)
	}
	ms := memo.LastStats()
	// AT (ALL) has one distinct (empty) context → exactly 1 evaluation,
	// with a cache hit for each of the remaining product groups.
	if ms.SubqueryEvals != 1 {
		t.Errorf("memo evals = %d, want 1", ms.SubqueryEvals)
	}
	if ms.SubqueryCacheHits != 2 {
		t.Errorf("memo cache hits = %d, want 2 (3 products, 1 miss)", ms.SubqueryCacheHits)
	}

	naive := open(t)
	naive.SetStrategy(msql.StrategyNaive)
	if _, err := naive.Query(q); err != nil {
		t.Fatal(err)
	}
	ns := naive.LastStats()
	if ns.SubqueryEvals != 3 {
		t.Errorf("naive evals = %d, want 3 (one per group)", ns.SubqueryEvals)
	}
	if ns.SubqueryCacheHits != 0 {
		t.Errorf("naive cache hits = %d, want 0", ns.SubqueryCacheHits)
	}

	// The default strategy inlines group-partition contexts entirely: the
	// canonical AGGREGATE query runs with zero subquery evaluations.
	inline := open(t)
	if _, err := inline.Query(`
		SELECT prodName, AGGREGATE(rev) AS r
		FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
		GROUP BY prodName`); err != nil {
		t.Fatal(err)
	}
	if is := inline.LastStats(); is.SubqueryEvals != 0 {
		t.Errorf("inline evals = %d, want 0", is.SubqueryEvals)
	}
}
