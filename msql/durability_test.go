package msql_test

// End-to-end durability: everything a session does through SQL —
// tables, measure views, inserts with every value kind — survives
// close/reopen of the data directory, checkpoints bound replay, and
// the recovered session answers measure queries identically.

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/measures-sql/msql/internal/wal"
	"github.com/measures-sql/msql/msql"
)

func reopen(t *testing.T, dir string, db *msql.DB, opts ...msql.DirOption) *msql.DB {
	t.Helper()
	if db != nil {
		if err := db.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	db2, err := msql.OpenDir(dir, opts...)
	if err != nil {
		t.Fatalf("reopen %s: %v", dir, err)
	}
	return db2
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := msql.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Durable() {
		t.Fatal("OpenDir returned a non-durable DB")
	}
	db.MustExec(`CREATE TABLE Orders (prodName VARCHAR, orderDate DATE, revenue INTEGER, weight DOUBLE, rush BOOLEAN)`)
	db.MustExec(`INSERT INTO Orders VALUES
		('Happy', DATE '2024-01-10', 6, 1.5, TRUE),
		('Acme',  DATE '2024-02-20', 5, NULL, FALSE),
		('Happy', DATE '2024-03-05', 4, 0.25, TRUE)`)
	db.MustExec(`CREATE VIEW EO AS
		SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders`)
	const q = `SELECT prodName, AGGREGATE(sumRevenue) AS rev,
		AGGREGATE(sumRevenue) AT (ALL) AS total
		FROM EO GROUP BY prodName ORDER BY prodName`
	want := db.MustQuery(q)

	db = reopen(t, dir, db)
	defer db.Close()
	got, err := db.Query(q)
	if err != nil {
		t.Fatalf("measure query after recovery: %v", err)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("recovered measure query diverged:\nbefore %v\nafter  %v", want.Rows, got.Rows)
	}

	// The recovered session keeps accepting durable writes.
	db.MustExec(`INSERT INTO Orders VALUES ('Whiz', DATE '2024-04-01', 9, 2.0, FALSE)`)
	db = reopen(t, dir, db)
	defer db.Close()
	res := db.MustQuery(`SELECT COUNT(*) FROM Orders`)
	if res.Rows[0][0].I != 4 {
		t.Fatalf("row count after second recovery = %v, want 4", res.Rows[0][0])
	}
}

func TestDurableCheckpointAndDDL(t *testing.T) {
	dir := t.TempDir()
	db, err := msql.OpenDir(dir, msql.WithSyncPolicy(msql.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE t (a INTEGER)`)
	db.MustExec(`CREATE TABLE doomed (b VARCHAR)`)
	db.MustExec(`INSERT INTO t VALUES (1), (2)`)
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if st := db.WALStats(); st.Checkpoints != 1 {
		t.Fatalf("checkpoint count = %d", st.Checkpoints)
	}
	// Post-checkpoint tail: more rows, a drop, a view replacement.
	db.MustExec(`INSERT INTO t VALUES (3)`)
	db.MustExec(`DROP TABLE doomed`)
	db.MustExec(`CREATE VIEW v AS SELECT *, SUM(a) AS MEASURE m FROM t`)
	db.MustExec(`CREATE OR REPLACE VIEW v AS SELECT *, SUM(a)*2 AS MEASURE m FROM t`)

	db = reopen(t, dir, db)
	defer db.Close()
	tables, views := db.Tables()
	if len(tables) != 1 || len(views) != 1 {
		t.Fatalf("recovered objects: tables=%v views=%v", tables, views)
	}
	res := db.MustQuery(`SELECT AGGREGATE(m) FROM v`)
	if res.Rows[0][0].I != 12 { // (1+2+3)*2: replaced view + post-checkpoint row
		t.Fatalf("measure over recovered view = %v, want 12", res.Rows[0][0])
	}
	st := db.WALStats()
	if st.RecoveredRecords != 4 {
		t.Fatalf("replayed %d records, want the 4 post-checkpoint ones", st.RecoveredRecords)
	}
}

func TestDurableObservability(t *testing.T) {
	dir := t.TempDir()
	db, err := msql.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.MustExec(`CREATE TABLE t (a INTEGER)`)
	db.MustExec(`INSERT INTO t VALUES (1)`)
	db.MustExec(`INSERT INTO t VALUES (2)`)

	st := db.WALStats()
	if st.Appends != 3 || st.DurableSeq != 3 || st.Fsyncs == 0 {
		t.Fatalf("wal stats: %+v", st)
	}
	snap := db.Metrics()
	if snap.Storage == nil || snap.Storage.WALAppends != 3 || snap.Storage.SyncPolicy != "always" {
		t.Fatalf("metrics storage section: %+v", snap.Storage)
	}
	prom := snap.Prometheus()
	for _, series := range []string{"msql_wal_appends_total 3", "msql_wal_fsyncs_total", "msql_recovery_seconds"} {
		if !strings.Contains(prom, series) {
			t.Fatalf("prometheus output missing %q", series)
		}
	}
	res := db.MustQuery(`SELECT sync_policy, wal_appends, wal_durable_seq FROM msql_stats.storage`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "always" || res.Rows[0][1].I != 3 || res.Rows[0][2].I != 3 {
		t.Fatalf("msql_stats.storage = %v", res.Rows)
	}

	// In-memory sessions expose an empty storage relation and no section.
	mem := msql.Open()
	if rows := mem.MustQuery(`SELECT * FROM msql_stats.storage`).Rows; len(rows) != 0 {
		t.Fatalf("in-memory msql_stats.storage = %v, want empty", rows)
	}
	if mem.Metrics().Storage != nil {
		t.Fatal("in-memory metrics carry a storage section")
	}
}

// TestDurablePlanCacheInvalidation: a prepared statement planned before
// a crash must not serve a stale plan after recovery — the restored
// catalog version continues the pre-crash sequence.
func TestDurablePlanCacheInvalidation(t *testing.T) {
	dir := t.TempDir()
	db, err := msql.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE t (a INTEGER)`)
	db.MustExec(`INSERT INTO t VALUES (1)`)
	versionSensitive := db.MustQuery(`SELECT COUNT(*) FROM t`)
	if versionSensitive.Rows[0][0].I != 1 {
		t.Fatal("setup")
	}

	db = reopen(t, dir, db)
	defer db.Close()
	db.MustExec(`INSERT INTO t VALUES (2)`)
	res := db.MustQuery(`SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].I != 2 {
		t.Fatalf("count after recovery+insert = %v, want 2", res.Rows[0][0])
	}
}

func TestDurableSyncPolicies(t *testing.T) {
	for _, policy := range []string{"always", "interval", "off"} {
		t.Run(policy, func(t *testing.T) {
			p, err := msql.ParseSyncPolicy(policy)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			db, err := msql.OpenDir(dir, msql.WithSyncPolicy(p))
			if err != nil {
				t.Fatal(err)
			}
			db.MustExec(`CREATE TABLE t (a INTEGER)`)
			db.MustExec(`INSERT INTO t VALUES (1), (2), (3)`)
			if err := db.Sync(); err != nil {
				t.Fatalf("explicit sync under %s: %v", policy, err)
			}
			db = reopen(t, dir, db, msql.WithSyncPolicy(p))
			defer db.Close()
			if n := db.MustQuery(`SELECT COUNT(*) FROM t`).Rows[0][0].I; n != 3 {
				t.Fatalf("recovered %d rows under %s", n, policy)
			}
		})
	}
}

// TestDurableDDLFailedAppend: DDL whose WAL append fails must be
// reported as failed AND leave the in-memory catalog untouched, so
// reads never observe an object whose creation or drop did not become
// durable, and recovery agrees with what the session answered.
func TestDurableDDLFailedAppend(t *testing.T) {
	dir := t.TempDir()
	db, err := msql.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE keep (a INTEGER)`)
	db.MustExec(`INSERT INTO keep VALUES (1)`)

	wal.SetCrashHook(wal.CrashAt(wal.CrashBeforeAppend, 1))
	defer wal.SetCrashHook(nil)
	if err := db.Exec(`CREATE TABLE ghost (a INTEGER)`); err == nil {
		t.Fatal("CREATE TABLE acknowledged with a failed WAL append")
	}
	// DROP on the (now poisoned) WAL also fails; the table must survive.
	if err := db.Exec(`DROP TABLE keep`); err == nil {
		t.Fatal("DROP acknowledged on a poisoned WAL")
	}
	wal.SetCrashHook(nil)

	tables, _ := db.Tables()
	if len(tables) != 1 || !strings.EqualFold(tables[0], "keep") {
		t.Fatalf("catalog after failed DDL = %v, want [keep] only", tables)
	}
	if n := db.MustQuery(`SELECT COUNT(*) FROM keep`).Rows[0][0].I; n != 1 {
		t.Fatalf("keep lost rows after failed DDL")
	}

	db.Close() // best-effort: the manager is poisoned
	db, err = msql.OpenDir(dir)
	if err != nil {
		t.Fatalf("recovery after failed appends: %v", err)
	}
	defer db.Close()
	tables, _ = db.Tables()
	if len(tables) != 1 || !strings.EqualFold(tables[0], "keep") {
		t.Fatalf("recovered catalog = %v, want [keep] only", tables)
	}
}

// TestDurableConcurrentDDLInsertReplay: INSERTs racing DROP/CREATE on
// the same table through a shared session must never write a WAL that
// fails replay (e.g. an insert record logged after the drop of its
// table). Before the insert path re-resolved its target under the
// mutation lock, this workload could leave the data directory
// permanently unrecoverable.
func TestDurableConcurrentDDLInsertReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := msql.OpenDir(dir, msql.WithSyncPolicy(msql.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE t (a INTEGER)`)
	manyRows := "(0)" + strings.Repeat(", (1)", 39)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				// May fail while the table is dropped or replaced: a
				// statement error is fine, an unreplayable log is not.
				// A wide VALUES list keeps the window between the planning
				// lookup and the logging lock open (every row evaluates as
				// a one-off query in between).
				db.Exec(`INSERT INTO t VALUES ` + manyRows)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			// Pace the DDL across the insert phase (on one CPU the whole
			// loop would otherwise run inside a single scheduler quantum
			// and never land inside an insert's lookup-to-log window).
			time.Sleep(200 * time.Microsecond)
			db.Exec(`DROP TABLE t`)
			db.Exec(`CREATE TABLE t (a INTEGER)`)
		}
	}()
	wg.Wait()

	before := int64(-1)
	if res, err := db.Query(`SELECT COUNT(*) FROM t`); err == nil {
		before = res.Rows[0][0].I
	}
	db = reopen(t, dir, db)
	defer db.Close()
	after := int64(-1)
	if res, err := db.Query(`SELECT COUNT(*) FROM t`); err == nil {
		after = res.Rows[0][0].I
	}
	if before != after {
		t.Fatalf("recovered state diverged: %d rows before close, %d after", before, after)
	}
}

// TestDurableWriteAfterClose: mutations fail once the WAL is closed;
// the catalog stays readable.
func TestDurableWriteAfterClose(t *testing.T) {
	dir := t.TempDir()
	db, err := msql.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE t (a INTEGER)`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`INSERT INTO t VALUES (1)`); err == nil {
		t.Fatal("insert succeeded after Close")
	}
	if n := db.MustQuery(`SELECT COUNT(*) FROM t`).Rows[0][0].I; n != 0 {
		t.Fatalf("read after close: %d rows", n)
	}
}
