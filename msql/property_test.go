package msql_test

// Randomized property tests: generated measure queries over generated
// data must agree across (a) the three execution strategies and (b) the
// SQL-level expansion, whenever the expansion supports the query shape.
// This is experiment E20 plus a generative extension of E18.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"github.com/measures-sql/msql/internal/datagen"
	"github.com/measures-sql/msql/msql"
)

// buildRandomDB creates a database with a measure view over synthetic
// orders.
func buildRandomDB(t testing.TB, seed int64, strategy msql.Strategy) *msql.DB {
	t.Helper()
	db := msql.Open()
	db.MustExec(datagen.SetupSQL)
	ds := datagen.Generate(datagen.Config{
		Seed:      seed,
		Customers: 12, Products: 5, Orders: 300, Years: 2,
		NullProductFraction: 0.1,
	})
	if err := db.InsertRows("Customers", ds.Customers); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRows("Orders", ds.Orders); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE VIEW EO AS
		SELECT *, YEAR(orderDate) AS orderYear,
		       SUM(revenue) AS MEASURE rev,
		       COUNT(*) AS MEASURE cnt,
		       (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
		FROM Orders`)
	db.SetStrategy(strategy)
	return db
}

// randomQuery builds a random aggregate query over the EO view.
func randomQuery(rng *rand.Rand) string {
	dims := []string{"prodName", "custName", "orderYear"}
	rng.Shuffle(len(dims), func(i, j int) { dims[i], dims[j] = dims[j], dims[i] })
	nKeys := rng.Intn(3)
	keys := dims[:nKeys]

	measures := []string{
		"AGGREGATE(rev)",
		"AGGREGATE(margin)",
		"EVAL(cnt AT (VISIBLE))",
		"rev",
		"rev AT (ALL)",
		"cnt AT (ALL " + dims[rng.Intn(3)] + ")",
		"rev AT (SET custName = 'cust0003')",
		"rev AT (WHERE revenue > 50)",
	}
	var items []string
	items = append(items, keys...)
	nMeasures := 1 + rng.Intn(3)
	for i := 0; i < nMeasures; i++ {
		items = append(items, fmt.Sprintf("%s AS m%d", measures[rng.Intn(len(measures))], i))
	}

	var sb strings.Builder
	sb.WriteString("SELECT " + strings.Join(items, ", ") + " FROM EO")
	if rng.Intn(2) == 0 {
		preds := []string{
			"revenue > 20",
			"custName <> 'cust0001'",
			"orderYear = 2024",
			"prodName IS NOT NULL",
		}
		sb.WriteString(" WHERE " + preds[rng.Intn(len(preds))])
	}
	if nKeys > 0 {
		if rng.Intn(3) == 0 {
			sb.WriteString(" GROUP BY ROLLUP(" + strings.Join(keys, ", ") + ")")
		} else {
			sb.WriteString(" GROUP BY " + strings.Join(keys, ", "))
		}
		sb.WriteString(" ORDER BY ")
		var order []string
		for i := range keys {
			order = append(order, fmt.Sprintf("%d NULLS FIRST", i+1))
		}
		sb.WriteString(strings.Join(order, ", "))
	}
	return sb.String()
}

func TestRandomQueriesAgreeAcrossStrategies(t *testing.T) {
	const rounds = 40
	inline := buildRandomDB(t, 99, msql.StrategyDefault)
	memo := buildRandomDB(t, 99, msql.StrategyMemo)
	naive := buildRandomDB(t, 99, msql.StrategyNaive)
	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < rounds; i++ {
		q := randomQuery(rng)
		a, errA := inline.Query(q)
		b, errB := memo.Query(q)
		c, errC := naive.Query(q)
		if (errA == nil) != (errB == nil) || (errB == nil) != (errC == nil) {
			t.Fatalf("strategies disagree on error for %q: %v / %v / %v", q, errA, errB, errC)
		}
		if errA != nil {
			t.Fatalf("generated query failed: %v\nSQL: %s", errA, q)
		}
		sa, sb2, sc := rowsAsStrings(a), rowsAsStrings(b), rowsAsStrings(c)
		for _, pair := range []struct {
			name string
			x, y [][]string
		}{{"inline-vs-memo", sa, sb2}, {"memo-vs-naive", sb2, sc}} {
			if len(pair.x) != len(pair.y) {
				t.Fatalf("%s row count differs for %q: %d vs %d", pair.name, q, len(pair.x), len(pair.y))
			}
			for r := range pair.x {
				if strings.Join(pair.x[r], "|") != strings.Join(pair.y[r], "|") {
					t.Fatalf("%s differs for %q row %d:\n%v\n%v", pair.name, q, r, pair.x[r], pair.y[r])
				}
			}
		}
	}
}

// TestRandomQueriesAgreeAcrossWorkers is the parallel-execution oracle:
// every random query must return row-for-row identical results with the
// serial executor (Workers=1) and a 4-worker morsel-parallel run, for
// each strategy (memo exercises the shared singleflight context cache).
func TestRandomQueriesAgreeAcrossWorkers(t *testing.T) {
	const rounds = 40
	for _, strategy := range []msql.Strategy{msql.StrategyDefault, msql.StrategyMemo} {
		serial := buildRandomDB(t, 99, strategy)
		serial.SetWorkers(1)
		parallel := buildRandomDB(t, 99, strategy)
		parallel.SetWorkers(4)
		rng := rand.New(rand.NewSource(2025))
		for i := 0; i < rounds; i++ {
			q := randomQuery(rng)
			a, errA := serial.Query(q)
			b, errB := parallel.Query(q)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("workers disagree on error for %q: %v / %v", q, errA, errB)
			}
			if errA != nil {
				t.Fatalf("generated query failed: %v\nSQL: %s", errA, q)
			}
			sa, sb2 := rowsAsStrings(a), rowsAsStrings(b)
			if len(sa) != len(sb2) {
				t.Fatalf("workers=1 vs workers=4 row count differs for %q: %d vs %d", q, len(sa), len(sb2))
			}
			for r := range sa {
				if strings.Join(sa[r], "|") != strings.Join(sb2[r], "|") {
					t.Fatalf("workers=1 vs workers=4 differs for %q row %d:\n%v\n%v", q, r, sa[r], sb2[r])
				}
			}
		}
	}
}

// TestParallelMemoCacheHammer runs the same memoized measure query from
// 8 goroutines against one shared DB (one shared memo-capable session),
// each with multi-worker execution; run under -race in CI this verifies
// the concurrency safety of the measure-context cache and stats.
func TestParallelMemoCacheHammer(t *testing.T) {
	db := buildRandomDB(t, 31, msql.StrategyMemo)
	db.SetWorkers(4)
	const q = `SELECT prodName, AGGREGATE(rev) AS r, rev AT (ALL) AS tot
		FROM EO GROUP BY prodName ORDER BY 1 NULLS FIRST`
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := rowsAsStrings(want)

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := db.Query(q)
				if err != nil {
					errs[g] = err
					return
				}
				got := rowsAsStrings(res)
				if len(got) != len(wantRows) {
					errs[g] = fmt.Errorf("row count %d, want %d", len(got), len(wantRows))
					return
				}
				for r := range got {
					if strings.Join(got[r], "|") != strings.Join(wantRows[r], "|") {
						errs[g] = fmt.Errorf("row %d: %v, want %v", r, got[r], wantRows[r])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

func TestRandomQueriesMatchExpansion(t *testing.T) {
	const rounds = 40
	db := buildRandomDB(t, 7, msql.StrategyDefault)
	rng := rand.New(rand.NewSource(4711))
	expanded := 0
	for i := 0; i < rounds; i++ {
		q := randomQuery(rng)
		ex, err := db.Expand(q)
		if err != nil {
			continue // shape not supported by the SQL-level expansion
		}
		expanded++
		want, err := db.Query(q)
		if err != nil {
			t.Fatalf("measure query failed: %v\nSQL: %s", err, q)
		}
		got, err := db.Query(ex)
		if err != nil {
			t.Fatalf("expansion does not run: %v\nmeasure SQL: %s\nexpanded SQL: %s", err, q, ex)
		}
		w, g := rowsAsStrings(want), rowsAsStrings(got)
		if len(w) != len(g) {
			t.Fatalf("expansion row count differs for %q: %d vs %d\nexpanded: %s", q, len(w), len(g), ex)
		}
		for r := range w {
			if strings.Join(w[r], "|") != strings.Join(g[r], "|") {
				t.Fatalf("expansion differs for %q row %d:\n%v\n%v\nexpanded: %s", q, r, w[r], g[r], ex)
			}
		}
	}
	if expanded < rounds/4 {
		t.Errorf("only %d of %d random queries were expandable; generator or expander regressed", expanded, rounds)
	}
}

// Property (quick.Check): for a measure summed over random integer rows,
// AGGREGATE over groups plus AT (ALL) equals the direct totals.
func TestMeasureTotalsProperty(t *testing.T) {
	f := func(vals []int8) bool {
		db := msql.Open()
		db.MustExec(`CREATE TABLE T (k INTEGER, v INTEGER)`)
		total := 0
		for i, v := range vals {
			db.MustExec(fmt.Sprintf("INSERT INTO T VALUES (%d, %d)", i%3, v))
			total += int(v)
		}
		if len(vals) == 0 {
			return true
		}
		res, err := db.Query(`
			SELECT k, AGGREGATE(s) AS grp, s AT (ALL) AS tot
			FROM (SELECT *, SUM(v) AS MEASURE s FROM T) AS o
			GROUP BY k ORDER BY k`)
		if err != nil {
			return false
		}
		groupSum := 0
		for _, row := range res.Rows {
			if int(row[2].I) != total {
				return false
			}
			groupSum += int(row[1].I)
		}
		return groupSum == total
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
