package client

// Client side of the prepared-statement protocol. Prepare registers a
// named statement on the server; the returned Stmt executes it with
// typed parameters, under the same overload retry policy as Query.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/measures-sql/msql/internal/wire"
)

// Stmt is a named prepared statement registered on the server.
type Stmt struct {
	c         *Client
	name      string
	sql       string
	numParams int
}

// Name returns the server-side statement name.
func (s *Stmt) Name() string { return s.name }

// NumParams returns the number of parameter placeholders.
func (s *Stmt) NumParams() int { return s.numParams }

// Prepare registers sql under name on the server (replacing any
// previous statement of that name) and returns a handle for executing
// it. Registration itself retries overload responses like Query does.
func (c *Client) Prepare(ctx context.Context, name, sql string) (*Stmt, error) {
	body, err := json.Marshal(wire.PrepareRequest{Name: name, SQL: sql})
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < c.backoff.Attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(c.delay(attempt, lastRetryAfter(lastErr))):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		st, err := c.doPrepare(ctx, body, sql)
		if err == nil {
			st.name = name
			st.sql = sql
			return st, nil
		}
		lastErr = err
		var re *retryableError
		if !errors.As(err, &re) {
			return nil, err
		}
	}
	return nil, unwrapRetryable(lastErr)
}

func (c *Client) doPrepare(ctx context.Context, body []byte, sql string) (*Stmt, error) {
	resp, err := c.post(ctx, "/prepare", body, "")
	if err != nil {
		return nil, transportError(err, false)
	}
	defer resp.Body.Close()
	var pr wire.PrepareResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, fmt.Errorf("decoding prepare response (HTTP %d): %w", resp.StatusCode, err)
	}
	if pr.Error != nil {
		rerr := pr.Error.ToError(sql)
		if wire.Retryable(resp.StatusCode) {
			return nil, &retryableError{err: rerr, retryAfter: wire.RetryAfterSeconds(resp.Header)}
		}
		return nil, rerr
	}
	if resp.StatusCode != 200 {
		err := fmt.Errorf("HTTP %d without a structured error", resp.StatusCode)
		if wire.Retryable(resp.StatusCode) {
			return nil, &retryableError{err: err, retryAfter: wire.RetryAfterSeconds(resp.Header)}
		}
		return nil, err
	}
	return &Stmt{c: c, numParams: pr.NumParams}, nil
}

// Param is a typed wire parameter; build one with ParamOf or directly
// from a wire-shaped value.
type Param = wire.Param

// ParamOf builds a typed parameter from a Go value: nil → typeless
// NULL, bool → BOOLEAN, integers → INTEGER, floats → DOUBLE, string →
// VARCHAR, time.Time → DATE.
func ParamOf(v any) (Param, error) {
	switch v := v.(type) {
	case Param:
		return v, nil
	case nil:
		return Param{Type: "UNKNOWN", Value: nil}, nil
	case bool:
		return Param{Type: "BOOLEAN", Value: v}, nil
	case int:
		return Param{Type: "INTEGER", Value: float64(v)}, nil
	case int32:
		return Param{Type: "INTEGER", Value: float64(v)}, nil
	case int64:
		return Param{Type: "INTEGER", Value: float64(v)}, nil
	case float32:
		return Param{Type: "DOUBLE", Value: float64(v)}, nil
	case float64:
		return Param{Type: "DOUBLE", Value: v}, nil
	case string:
		return Param{Type: "VARCHAR", Value: v}, nil
	case time.Time:
		return Param{Type: "DATE", Value: v.Format("2006-01-02")}, nil
	default:
		return Param{}, fmt.Errorf("unsupported parameter type %T", v)
	}
}

// Exec executes the statement with the given Go-valued arguments,
// retrying overload responses under the client backoff policy.
func (s *Stmt) Exec(ctx context.Context, args ...any) (*Result, error) {
	params := make([]Param, len(args))
	for i, a := range args {
		p, err := ParamOf(a)
		if err != nil {
			return nil, fmt.Errorf("argument %d: %w", i+1, err)
		}
		params[i] = p
	}
	return s.ExecParams(ctx, params)
}

// ExecParams executes the statement with explicit typed parameters.
func (s *Stmt) ExecParams(ctx context.Context, params []Param, opts ...QueryOption) (*Result, error) {
	var o requestOpts
	for _, f := range opts {
		f(&o)
	}
	body, err := json.Marshal(wire.ExecuteRequest{Name: s.name, Params: params, TimeoutMillis: o.req.TimeoutMillis})
	if err != nil {
		return nil, err
	}
	c := s.c
	var lastErr error
	for attempt := 0; attempt < c.backoff.Attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(c.delay(attempt, lastRetryAfter(lastErr))):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		res, err := c.do(ctx, "/execute", body, s.sql, &o)
		if err == nil {
			return res, nil
		}
		lastErr = err
		var re *retryableError
		if !errors.As(err, &re) {
			return nil, err
		}
	}
	return nil, unwrapRetryable(lastErr)
}
