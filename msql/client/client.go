// Package client is the Go client for msqld, the msql query server.
// It speaks the JSON wire protocol, reconstructs the server's
// structured msql.Error taxonomy (codes, phases, byte offsets, hints —
// errors.Is(err, msql.ErrTimeout) works across the wire), and retries
// overload responses with capped exponential backoff plus jitter.
//
// The retry contract mirrors the server's shedding contract. Retried
// with backoff are: HTTP 429 (overload shed) and 503 (draining /
// unavailable), because those are transient by construction;
// connection-refused dial failures, because no request reached a
// server; and — only for requests marked WithIdempotent — connection
// resets and unexpected EOFs, where the request may have executed but
// re-executing a read is harmless. Every deterministic failure —
// parse, bind, expand, runtime, timeout — is surfaced on the first
// attempt, and a non-idempotent write that dies mid-flight is never
// blindly resent.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/measures-sql/msql/internal/wire"
)

// Backoff tunes the retry schedule for 429/503 responses.
type Backoff struct {
	// Attempts is the total number of tries, first included (default 4).
	Attempts int
	// Base is the pre-jitter delay before the first retry; it doubles
	// per retry (default 50ms).
	Base time.Duration
	// Max caps every delay, after jitter and Retry-After (default 2s).
	Max time.Duration
	// Seed makes the jitter sequence reproducible; 0 seeds from the
	// global source.
	Seed int64
}

func (b Backoff) withDefaults() Backoff {
	if b.Attempts <= 0 {
		b.Attempts = 4
	}
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	return b
}

// Client is a msqld client; safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	backoff Backoff

	mu  sync.Mutex
	rng *rand.Rand
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithBackoff replaces the retry policy.
func WithBackoff(b Backoff) Option { return func(c *Client) { c.backoff = b } }

// New creates a client for the server at baseURL (e.g.
// "http://127.0.0.1:7433").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   &http.Client{},
	}
	for _, o := range opts {
		o(c)
	}
	c.backoff = c.backoff.withDefaults()
	seed := c.backoff.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	c.rng = rand.New(rand.NewSource(seed))
	return c
}

// Result is one statement's rows as they came off the wire. Values are
// JSON-native: nil, bool, json.Number-free float64/int64 depending on
// decoding, and strings; Types names the SQL type of each column.
type Result struct {
	Columns []string
	Types   []string
	Rows    [][]any
	// Message is set instead of rows when the final statement was
	// DDL/DML ("created view …").
	Message string
	// RequestID is the correlation ID this request carried: the one set
	// with WithRequestID, or the client-generated one. The same ID
	// appears in the server's access log, the query's tracer spans, and
	// msql_stats.active_queries while the statement runs.
	RequestID string
}

// requestOpts is one request's wire body plus client-side knobs.
type requestOpts struct {
	req        wire.QueryRequest
	idempotent bool
	rawNumbers bool
}

// QueryOption adjusts one request.
type QueryOption func(*requestOpts)

// WithTimeout asks the server for a per-statement deadline; the server
// clamps it to its configured maximum.
func WithTimeout(d time.Duration) QueryOption {
	return func(o *requestOpts) { o.req.TimeoutMillis = int64(d / time.Millisecond) }
}

// WithRequestID sets the request correlation ID; without it the client
// generates one per request, so every query is traceable end to end.
func WithRequestID(id string) QueryOption {
	return func(o *requestOpts) { o.req.RequestID = id }
}

// WithIdempotent marks the request as a side-effect-free read, widening
// the retry contract to connection resets and unexpected EOFs: the
// request may have reached the server before the connection died, but
// running a read twice is harmless. Never set it on a statement with
// side effects.
func WithIdempotent() QueryOption {
	return func(o *requestOpts) { o.idempotent = true }
}

// WithExpectCatalogVersion pins the catalog version the statement was
// planned against; a server whose catalog has diverged rejects with a
// structured error instead of answering from the wrong schema.
func WithExpectCatalogVersion(v int64) QueryOption {
	return func(o *requestOpts) { o.req.ExpectCatalogVersion = v }
}

// WithRawNumbers decodes numeric result values as json.Number instead
// of float64, preserving 64-bit integers exactly. Coordinators
// gathering rows for re-insertion need this: a float64 round trip
// silently rounds integers beyond 2^53.
func WithRawNumbers() QueryOption {
	return func(o *requestOpts) { o.rawNumbers = true }
}

// newRequestID draws a fresh correlation ID from the client's jitter
// source.
func (c *Client) newRequestID() string {
	c.mu.Lock()
	n := c.rng.Uint64()
	c.mu.Unlock()
	return fmt.Sprintf("req-%016x", n)
}

// Query executes sql on the server, retrying overload responses
// (HTTP 429/503) under the backoff policy. The returned error is the
// reconstructed *msql.Error when the server produced one.
func (c *Client) Query(ctx context.Context, sql string, opts ...QueryOption) (*Result, error) {
	o := requestOpts{req: wire.QueryRequest{SQL: sql}}
	for _, f := range opts {
		f(&o)
	}
	if o.req.RequestID == "" {
		o.req.RequestID = c.newRequestID()
	}
	body, err := json.Marshal(o.req)
	if err != nil {
		return nil, err
	}

	var lastErr error
	for attempt := 0; attempt < c.backoff.Attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(c.delay(attempt, lastRetryAfter(lastErr))):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		res, err := c.do(ctx, "/query", body, sql, &o)
		if err == nil {
			res.RequestID = o.req.RequestID
			return res, nil
		}
		lastErr = err
		var re *retryableError
		if !errors.As(err, &re) {
			return nil, err
		}
	}
	return nil, unwrapRetryable(lastErr)
}

// QueryStream executes sql over the newline-delimited endpoint, calling
// fn once per row as rows arrive. It applies the same retry policy as
// Query (the stream has not started when an overload response arrives).
func (c *Client) QueryStream(ctx context.Context, sql string, fn func(row []any) error) (*Result, error) {
	o := requestOpts{req: wire.QueryRequest{SQL: sql, RequestID: c.newRequestID()}}
	body, err := json.Marshal(o.req)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < c.backoff.Attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(c.delay(attempt, lastRetryAfter(lastErr))):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		res, err := c.doStream(ctx, body, sql, fn, &o)
		if err == nil {
			res.RequestID = o.req.RequestID
			return res, nil
		}
		lastErr = err
		var re *retryableError
		if !errors.As(err, &re) {
			return nil, err
		}
	}
	return nil, unwrapRetryable(lastErr)
}

// Kill cancels the in-flight query with the given session query ID (as
// listed by Queries or msql_stats.active_queries). It returns false —
// with the server's structured error — when no such query is running,
// which a KILL that raced with normal completion will observe.
func (c *Client) Kill(ctx context.Context, id int64) (bool, error) {
	body, err := json.Marshal(wire.KillRequest{ID: id})
	if err != nil {
		return false, err
	}
	resp, err := c.post(ctx, "/kill", body, "")
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var kr wire.KillResponse
	if err := json.NewDecoder(resp.Body).Decode(&kr); err != nil {
		return false, fmt.Errorf("decoding kill response (HTTP %d): %w", resp.StatusCode, err)
	}
	if kr.Error != nil {
		return false, kr.Error.ToError("")
	}
	return kr.Killed, nil
}

// Healthz probes liveness.
func (c *Client) Healthz(ctx context.Context) error { return c.probe(ctx, "/healthz") }

// Readyz probes readiness (fails with a non-2xx error while draining).
func (c *Client) Readyz(ctx context.Context) error { return c.probe(ctx, "/readyz") }

func (c *Client) probe(ctx context.Context, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return nil
}

// retryableError marks an error whose HTTP status invites a retry; the
// wrapped error is what surfaces when attempts run out.
type retryableError struct {
	err        error
	retryAfter int // seconds, 0 when absent
}

func (r *retryableError) Error() string { return r.err.Error() }
func (r *retryableError) Unwrap() error { return r.err }

func unwrapRetryable(err error) error {
	var re *retryableError
	if errors.As(err, &re) {
		return re.err
	}
	return err
}

func lastRetryAfter(err error) int {
	var re *retryableError
	if errors.As(err, &re) {
		return re.retryAfter
	}
	return 0
}

// delay computes the capped, jittered backoff before retry `attempt`
// (1-based), honoring the server's Retry-After hint up to Max: the
// schedule is uniformly drawn from [d/2, d) where d doubles per retry.
func (c *Client) delay(attempt int, retryAfterSecs int) time.Duration {
	d := c.backoff.Base << (attempt - 1)
	if d > c.backoff.Max || d <= 0 {
		d = c.backoff.Max
	}
	c.mu.Lock()
	jittered := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.mu.Unlock()
	if ra := time.Duration(retryAfterSecs) * time.Second; ra > jittered {
		jittered = ra
	}
	if jittered > c.backoff.Max {
		jittered = c.backoff.Max
	}
	return jittered
}

// transportError classifies an error from the HTTP layer itself (no
// response arrived). Connection-refused always invites a retry: the
// dial failed, so no request can have executed — the exact window a
// restarting server presents. Reset/EOF mean the connection died after
// the request may have reached the server, so they retry only for
// idempotent reads. Context cancellation/expiry is the caller's
// verdict and is never retried.
func transportError(err error, idempotent bool) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if errors.Is(err, syscall.ECONNREFUSED) {
		return &retryableError{err: err}
	}
	if idempotent && (errors.Is(err, syscall.ECONNRESET) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) {
		return &retryableError{err: err}
	}
	return err
}

// post sends one JSON request body; callers own the response body. The
// correlation ID travels as the X-Request-Id header on every request,
// so fan-out requests from a coordinator land in each shard's access
// log under the original client's ID.
func (c *Client) post(ctx context.Context, path string, body []byte, requestID string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if requestID != "" {
		req.Header.Set("X-Request-Id", requestID)
	}
	return c.hc.Do(req)
}

func (c *Client) do(ctx context.Context, path string, body []byte, sql string, o *requestOpts) (*Result, error) {
	resp, err := c.post(ctx, path, body, o.req.RequestID)
	if err != nil {
		return nil, transportError(err, o.idempotent)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	if o.rawNumbers {
		dec.UseNumber()
	}
	var qr wire.QueryResponse
	if err := dec.Decode(&qr); err != nil {
		return nil, transportError(fmt.Errorf("decoding response (HTTP %d): %w", resp.StatusCode, err), o.idempotent)
	}
	if qr.Error != nil {
		rerr := qr.Error.ToError(sql)
		if wire.Retryable(resp.StatusCode) {
			return nil, &retryableError{err: rerr, retryAfter: wire.RetryAfterSeconds(resp.Header)}
		}
		return nil, rerr
	}
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("HTTP %d without a structured error", resp.StatusCode)
		if wire.Retryable(resp.StatusCode) {
			return nil, &retryableError{err: err, retryAfter: wire.RetryAfterSeconds(resp.Header)}
		}
		return nil, err
	}
	return &Result{Columns: qr.Columns, Types: qr.Types, Rows: qr.Rows, Message: qr.Message}, nil
}

func (c *Client) doStream(ctx context.Context, body []byte, sql string, fn func(row []any) error, o *requestOpts) (*Result, error) {
	resp, err := c.post(ctx, "/query.ndjson", body, o.req.RequestID)
	if err != nil {
		return nil, transportError(err, o.idempotent)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode != http.StatusOK {
		var qr wire.QueryResponse
		if err := dec.Decode(&qr); err == nil && qr.Error != nil {
			rerr := qr.Error.ToError(sql)
			if wire.Retryable(resp.StatusCode) {
				return nil, &retryableError{err: rerr, retryAfter: wire.RetryAfterSeconds(resp.Header)}
			}
			return nil, rerr
		}
		err := fmt.Errorf("HTTP %d without a structured error", resp.StatusCode)
		if wire.Retryable(resp.StatusCode) {
			return nil, &retryableError{err: err, retryAfter: wire.RetryAfterSeconds(resp.Header)}
		}
		return nil, err
	}
	var hdr wire.Header
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("decoding stream header: %w", err)
	}
	res := &Result{Columns: hdr.Columns, Types: hdr.Types}
	for {
		var line struct {
			Row  []any `json:"row"`
			Done bool  `json:"done"`
			Rows int   `json:"rows"`
		}
		if err := dec.Decode(&line); err != nil {
			return nil, fmt.Errorf("decoding stream: %w", err)
		}
		if line.Done {
			return res, nil
		}
		res.Rows = append(res.Rows, line.Row)
		if fn != nil {
			if err := fn(line.Row); err != nil {
				return nil, err
			}
		}
	}
}
