package client

// The widened retry contract and the shard-endpoint surface:
// connection-refused retries for everyone, reset/EOF only under
// WithIdempotent, X-Request-Id on every request, and the hedging
// helper's win/lose/fallback paths.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/measures-sql/msql/internal/wire"
)

func TestTransportErrorClassification(t *testing.T) {
	refused := &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}
	reset := &net.OpError{Op: "read", Err: syscall.ECONNRESET}
	cases := []struct {
		name       string
		err        error
		idempotent bool
		retryable  bool
	}{
		{"refused always retries", refused, false, true},
		{"refused idempotent retries", refused, true, true},
		{"reset plain does not", reset, false, false},
		{"reset idempotent retries", reset, true, true},
		{"eof plain does not", io.EOF, false, false},
		{"eof idempotent retries", io.EOF, true, true},
		{"unexpected eof idempotent retries", io.ErrUnexpectedEOF, true, true},
		{"canceled never retries", context.Canceled, true, false},
		{"deadline never retries", context.DeadlineExceeded, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := transportError(tc.err, tc.idempotent)
			var re *retryableError
			if errors.As(got, &re) != tc.retryable {
				t.Fatalf("retryable = %v, want %v (err %v)", !tc.retryable, tc.retryable, got)
			}
			if !errors.Is(got, tc.err) {
				t.Fatalf("classification must preserve the cause, got %v", got)
			}
		})
	}
}

// TestConnectionRefusedRetries boots the real server only after the
// first attempt has failed to dial it: the retry must dial again and
// succeed.
func TestConnectionRefusedRetries(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port; the first dial gets ECONNREFUSED

	var started atomic.Bool
	var ts *httptest.Server
	defer func() {
		if ts != nil {
			ts.Close()
		}
	}()
	go func() {
		time.Sleep(20 * time.Millisecond)
		l, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		ts = &httptest.Server{Listener: l, Config: &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(wire.QueryResponse{Message: "ok"})
		})}}
		ts.Start()
		started.Store(true)
	}()

	c := New("http://"+addr, WithBackoff(Backoff{Attempts: 8, Base: 10 * time.Millisecond, Max: 50 * time.Millisecond, Seed: 7}))
	res, err := c.Query(context.Background(), "SELECT 1")
	if err != nil {
		t.Fatalf("query should survive the refused window: %v (server started: %v)", err, started.Load())
	}
	if res.Message != "ok" {
		t.Fatalf("unexpected result %+v", res)
	}
}

// TestResetRetriesOnlyWhenIdempotent kills the first connection at the
// TCP level mid-response; the plain query surfaces the error, the
// idempotent one retries into the healthy handler.
func TestResetRetriesOnlyWhenIdempotent(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, _ := hj.Hijack()
			conn.Close() // client sees EOF / reset
			return
		}
		json.NewEncoder(w).Encode(wire.QueryResponse{Message: "ok"})
	}))
	defer ts.Close()

	pol := WithBackoff(Backoff{Attempts: 3, Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: 9})

	c := New(ts.URL, pol)
	if _, err := c.Query(context.Background(), "SELECT 1"); err == nil {
		t.Fatal("non-idempotent query must surface the dead connection, not retry")
	}

	attempts.Store(0)
	res, err := c.Query(context.Background(), "SELECT 1", WithIdempotent())
	if err != nil {
		t.Fatalf("idempotent query should retry past the dead connection: %v", err)
	}
	if res.Message != "ok" || attempts.Load() != 2 {
		t.Fatalf("want success on attempt 2, got %+v after %d attempts", res, attempts.Load())
	}
}

// TestRequestIDHeaderOnEveryRequest covers the coordinator fan-out
// contract: the correlation ID travels as X-Request-Id.
func TestRequestIDHeaderOnEveryRequest(t *testing.T) {
	var gotHeader atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader.Store(r.Header.Get("X-Request-Id"))
		json.NewEncoder(w).Encode(wire.QueryResponse{Message: "ok"})
	}))
	defer ts.Close()

	c := New(ts.URL)
	if _, err := c.Query(context.Background(), "SELECT 1", WithRequestID("corr-77")); err != nil {
		t.Fatal(err)
	}
	if got := gotHeader.Load(); got != "corr-77" {
		t.Fatalf("X-Request-Id = %v, want corr-77", got)
	}

	// Generated IDs travel too.
	if _, err := c.Query(context.Background(), "SELECT 1"); err != nil {
		t.Fatal(err)
	}
	if got, _ := gotHeader.Load().(string); got == "" {
		t.Fatal("generated request ID missing from X-Request-Id header")
	}
}

func TestPartialVersionMismatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(wire.PartialResponse{Version: 12, Error: &wire.Error{
			Code: "RUNTIME", Phase: "catalog", Offset: -1, Message: "catalog version mismatch",
		}})
	}))
	defer ts.Close()

	c := New(ts.URL, WithBackoff(Backoff{Attempts: 2, Base: time.Millisecond, Max: time.Millisecond, Seed: 1}))
	_, err := c.Partial(context.Background(), "SELECT COUNT(*) FROM t", 0, 1, 9)
	var vm *VersionMismatchError
	if !errors.As(err, &vm) {
		t.Fatalf("want VersionMismatchError, got %v", err)
	}
	if vm.Have != 12 || vm.Want != 9 {
		t.Fatalf("mismatch fields = %+v", vm)
	}
}

func TestApplyCASMissIsNotAnError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(wire.ApplyResponse{Version: 5, Error: &wire.Error{
			Code: "RUNTIME", Phase: "catalog", Offset: -1, Message: "catalog version mismatch",
		}})
	}))
	defer ts.Close()

	c := New(ts.URL)
	version, ok, err := c.ApplyDDL(context.Background(), "CREATE TABLE t (x INTEGER)", 3, "req-1")
	if err != nil || ok {
		t.Fatalf("CAS miss must be (v, false, nil), got ok=%v err=%v", ok, err)
	}
	if version != 5 {
		t.Fatalf("version = %d, want the server's current 5", version)
	}
}

func TestHedgePrimaryWinsWithoutHedging(t *testing.T) {
	v, out, err := Hedge(context.Background(), 50*time.Millisecond,
		func(ctx context.Context) (int, error) { return 1, nil },
		func(ctx context.Context) (int, error) { t.Error("hedge must not launch"); return 2, nil },
	)
	if err != nil || v != 1 || out.Winner != 0 || out.Hedged {
		t.Fatalf("got v=%d out=%+v err=%v", v, out, err)
	}
}

func TestHedgeSecondaryWinsWhenPrimaryLags(t *testing.T) {
	primaryStarted := make(chan struct{})
	v, out, err := Hedge(context.Background(), 5*time.Millisecond,
		func(ctx context.Context) (int, error) {
			close(primaryStarted)
			select {
			case <-time.After(5 * time.Second):
				return 1, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		},
		func(ctx context.Context) (int, error) { return 2, nil },
	)
	<-primaryStarted
	if err != nil || v != 2 || out.Winner != 1 || !out.Hedged {
		t.Fatalf("got v=%d out=%+v err=%v", v, out, err)
	}
}

func TestHedgeFallsBackWhenPrimaryFailsFast(t *testing.T) {
	v, out, err := Hedge(context.Background(), time.Hour,
		func(ctx context.Context) (int, error) { return 0, errors.New("down") },
		func(ctx context.Context) (int, error) { return 2, nil },
	)
	if err != nil || v != 2 || out.Winner != 1 || !out.Hedged {
		t.Fatalf("fast-fail must fall over to the hedge: v=%d out=%+v err=%v", v, out, err)
	}
}

func TestHedgeBothFailingReturnsPrimaryError(t *testing.T) {
	primaryErr := errors.New("primary down")
	_, out, err := Hedge(context.Background(), time.Millisecond,
		func(ctx context.Context) (int, error) { return 0, primaryErr },
		func(ctx context.Context) (int, error) { return 0, errors.New("hedge down") },
	)
	if !errors.Is(err, primaryErr) {
		t.Fatalf("want the primary's error, got %v", err)
	}
	if out.Winner != -1 {
		t.Fatalf("no winner expected, got %+v", out)
	}
}
