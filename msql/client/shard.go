package client

// Coordinator-facing methods: the shard endpoints (/partial, /apply,
// /catalog) and the hedging helper a coordinator races a lagging
// shard's replica with.
//
// Retry policy differs by endpoint. Partial and Catalog are idempotent
// reads, so they retry the full transient set (429/503, refused,
// reset/EOF). Apply is a version-guarded mutation: the client never
// resends it on a transport error, because a lost ack leaves "did it
// land?" genuinely unknown — the coordinator resolves that by probing
// /catalog and comparing versions, which the CAS contract makes
// unambiguous.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/measures-sql/msql/internal/wire"
)

// Partials is one shard's partial-aggregation answer: per-group keys
// and aggregate states, still in their canonical base64 wire form (the
// coordinator merges keys byte-wise and decodes states lazily).
type Partials struct {
	// Version is the shard's catalog version the query ran at.
	Version int64
	Groups  []PartialGroup
}

// PartialGroup mirrors the wire shape: a canonical base64 group key
// and one base64 aggregate state per call.
type PartialGroup struct {
	Key    string
	States []string
}

// CatalogInfo is a shard's identity and catalog state.
type CatalogInfo struct {
	Version int64
	Tables  []string
	Views   []string
	ShardID string
}

// VersionMismatchError reports a catalog-version CAS miss: the server
// is at Have, the request expected Want. The caller repairs the
// endpoint (replaying missed mutations) rather than retrying blindly.
type VersionMismatchError struct {
	Have int64
	Want int64
}

func (e *VersionMismatchError) Error() string {
	return fmt.Sprintf("catalog version mismatch: server at %d, expected %d", e.Have, e.Want)
}

// Partial runs an aggregation query's scan/filter/group phase on the
// server and returns serialized per-group partial states. It retries
// transient failures like an idempotent Query; a catalog-version miss
// surfaces as *VersionMismatchError.
func (c *Client) Partial(ctx context.Context, sql string, groups, aggs int, expectVersion int64, opts ...QueryOption) (*Partials, error) {
	o := requestOpts{idempotent: true}
	for _, f := range opts {
		f(&o)
	}
	req := wire.PartialRequest{
		SQL: sql, Groups: groups, Aggs: aggs,
		ExpectVersion: expectVersion,
		TimeoutMillis: o.req.TimeoutMillis,
		RequestID:     o.req.RequestID,
	}
	if req.RequestID == "" {
		req.RequestID = c.newRequestID()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < c.backoff.Attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(c.delay(attempt, lastRetryAfter(lastErr))):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		res, err := c.doPartial(ctx, body, sql, req.RequestID, expectVersion)
		if err == nil {
			return res, nil
		}
		lastErr = err
		var re *retryableError
		if !errors.As(err, &re) {
			return nil, err
		}
	}
	return nil, unwrapRetryable(lastErr)
}

func (c *Client) doPartial(ctx context.Context, body []byte, sql, reqID string, expect int64) (*Partials, error) {
	resp, err := c.post(ctx, "/partial", body, reqID)
	if err != nil {
		return nil, transportError(err, true)
	}
	defer resp.Body.Close()
	var pr wire.PartialResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, transportError(fmt.Errorf("decoding partial response (HTTP %d): %w", resp.StatusCode, err), true)
	}
	if resp.StatusCode == http.StatusConflict && pr.Error != nil {
		return nil, &VersionMismatchError{Have: pr.Version, Want: expect}
	}
	if pr.Error != nil {
		rerr := pr.Error.ToError(sql)
		if wire.Retryable(resp.StatusCode) {
			return nil, &retryableError{err: rerr, retryAfter: wire.RetryAfterSeconds(resp.Header)}
		}
		return nil, rerr
	}
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("HTTP %d without a structured error", resp.StatusCode)
		if wire.Retryable(resp.StatusCode) {
			return nil, &retryableError{err: err, retryAfter: wire.RetryAfterSeconds(resp.Header)}
		}
		return nil, err
	}
	out := &Partials{Version: pr.Version, Groups: make([]PartialGroup, len(pr.Groups))}
	for i, g := range pr.Groups {
		out.Groups[i] = PartialGroup{Key: g.Key, States: g.States}
	}
	return out, nil
}

// ApplyDDL applies one DDL/DML statement under the catalog-version CAS:
// the server executes it only if its version equals expect, advancing
// to expect+1. ok=false with err=nil is a version miss (version holds
// the server's current value). Transport errors are returned raw —
// resolving a lost ack is the coordinator's job (probe Catalog; the
// mutation landed iff the version advanced past expect).
func (c *Client) ApplyDDL(ctx context.Context, sql string, expect int64, requestID string) (version int64, ok bool, err error) {
	return c.apply(ctx, wire.ApplyRequest{SQL: sql, ExpectVersion: expect, RequestID: requestID})
}

// ApplyRows inserts pre-partitioned rows (EncodeRowsBinary wire form)
// into table under the same CAS contract as ApplyDDL.
func (c *Client) ApplyRows(ctx context.Context, table, rows string, expect int64, requestID string) (version int64, ok bool, err error) {
	return c.apply(ctx, wire.ApplyRequest{Table: table, Rows: rows, ExpectVersion: expect, RequestID: requestID})
}

func (c *Client) apply(ctx context.Context, req wire.ApplyRequest) (int64, bool, error) {
	if req.RequestID == "" {
		req.RequestID = c.newRequestID()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return 0, false, err
	}
	resp, err := c.post(ctx, "/apply", body, req.RequestID)
	if err != nil {
		// Deliberately no retry classification: the request may have
		// executed. The CAS version lets the caller find out.
		return 0, false, err
	}
	defer resp.Body.Close()
	var ar wire.ApplyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		return 0, false, fmt.Errorf("decoding apply response (HTTP %d): %w", resp.StatusCode, err)
	}
	if resp.StatusCode == http.StatusConflict {
		return ar.Version, false, nil
	}
	if ar.Error != nil {
		return ar.Version, false, ar.Error.ToError(req.SQL)
	}
	if resp.StatusCode != http.StatusOK {
		return ar.Version, false, fmt.Errorf("HTTP %d without a structured error", resp.StatusCode)
	}
	return ar.Version, true, nil
}

// Catalog fetches the shard's identity and catalog state. It is a
// plain GET with no client-side retry loop: callers probe it inside
// their own failure-handling (breaker) machinery.
func (c *Client) Catalog(ctx context.Context) (*CatalogInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/catalog", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var cr wire.CatalogResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("decoding catalog response (HTTP %d): %w", resp.StatusCode, err)
	}
	if cr.Error != nil {
		return nil, cr.Error.ToError("")
	}
	return &CatalogInfo{Version: cr.Version, Tables: cr.Tables, Views: cr.Views, ShardID: cr.ShardID}, nil
}

// HedgeOutcome reports how a hedged call resolved.
type HedgeOutcome struct {
	// Winner is 0 when the primary's result was used, 1 for the hedge.
	Winner int
	// Hedged reports whether the secondary was launched at all (the
	// primary outran the hedge delay otherwise).
	Hedged bool
}

// Hedge runs primary immediately and, if it has not finished within
// delay, races a single hedge request against it; the first success
// wins and the loser's context is canceled. Both failing returns the
// primary's error. Use only for idempotent calls — both requests may
// execute.
func Hedge[T any](ctx context.Context, delay time.Duration, primary, secondary func(context.Context) (T, error)) (T, HedgeOutcome, error) {
	type outcome struct {
		val  T
		err  error
		from int
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, 2)
	launch := func(from int, fn func(context.Context) (T, error)) {
		go func() {
			v, err := fn(ctx)
			ch <- outcome{val: v, err: err, from: from}
		}()
	}
	launch(0, primary)

	timer := time.NewTimer(delay)
	defer timer.Stop()
	var zero T
	hedged := false
	launched := 1
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !hedged {
				hedged = true
				launched++
				launch(1, secondary)
			}
		case out := <-ch:
			if out.err == nil {
				return out.val, HedgeOutcome{Winner: out.from, Hedged: hedged}, nil
			}
			if out.from == 0 || firstErr == nil {
				firstErr = out.err
			}
			launched--
			if launched == 0 {
				if !hedged {
					// The primary failed before the hedge delay: try the
					// replica immediately rather than giving up.
					hedged = true
					launched++
					launch(1, secondary)
					continue
				}
				return zero, HedgeOutcome{Winner: -1, Hedged: hedged}, firstErr
			}
		case <-ctx.Done():
			return zero, HedgeOutcome{Winner: -1, Hedged: hedged}, ctx.Err()
		}
	}
}
