package client

// The retry contract, tested against fake servers: only 429 and 503
// invite another attempt; every deterministic failure surfaces on the
// first try; delays are capped, jittered, deterministic under a seed,
// and honor Retry-After up to the cap.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/measures-sql/msql/internal/wire"
	"github.com/measures-sql/msql/msql"
)

// fakeServer answers /query with each status in sequence, then 200 with
// a one-row result; it counts attempts.
func fakeServer(t *testing.T, statuses ...int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		if int(n) <= len(statuses) {
			status := statuses[n-1]
			if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", "1")
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(wire.QueryResponse{Error: &wire.Error{
				Code: statusCode(status), Phase: "test", Offset: -1, Message: "injected",
			}})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(wire.QueryResponse{
			Columns: []string{"x"}, Types: []string{"INTEGER"}, Rows: [][]any{{float64(1)}},
		})
	}))
	t.Cleanup(ts.Close)
	return ts, &attempts
}

func statusCode(status int) string {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return "RESOURCE_EXHAUSTED"
	case http.StatusBadRequest:
		return "PARSE"
	default:
		return "RUNTIME"
	}
}

func fastPolicy(seed int64) Backoff {
	return Backoff{Attempts: 4, Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: seed}
}

func TestRetriesOvercomeTransientOverload(t *testing.T) {
	ts, attempts := fakeServer(t, http.StatusTooManyRequests, http.StatusServiceUnavailable)
	c := New(ts.URL, WithBackoff(fastPolicy(1)))
	res, err := c.Query(context.Background(), "SELECT 1 AS x")
	if err != nil {
		t.Fatalf("query should succeed on attempt 3: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (429, 503, 200)", got)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestNonRetryableSurfacesFirstAttempt(t *testing.T) {
	ts, attempts := fakeServer(t, http.StatusBadRequest)
	c := New(ts.URL, WithBackoff(fastPolicy(1)))
	_, err := c.Query(context.Background(), "SELEC")
	if err == nil {
		t.Fatal("want error")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 — a 400 must never be retried", got)
	}
	if !errors.Is(err, msql.ErrParse) {
		t.Fatalf("want ErrParse across the wire, got %v", err)
	}
}

func TestExhaustedRetriesSurfaceStructuredError(t *testing.T) {
	ts, attempts := fakeServer(t,
		http.StatusTooManyRequests, http.StatusTooManyRequests,
		http.StatusTooManyRequests, http.StatusTooManyRequests)
	c := New(ts.URL, WithBackoff(fastPolicy(1)))
	_, err := c.Query(context.Background(), "SELECT 1 AS x")
	if err == nil {
		t.Fatal("want error after exhausting retries")
	}
	if got := attempts.Load(); got != 4 {
		t.Fatalf("attempts = %d, want exactly Backoff.Attempts = 4", got)
	}
	if !errors.Is(err, msql.ErrResourceExhausted) {
		t.Fatalf("exhausted retries must surface the server's taxonomy error, got %v", err)
	}
	var re *retryableError
	if errors.As(err, &re) {
		t.Fatalf("the retryable wrapper must not escape Query: %v", err)
	}
}

func TestStreamRetriesToo(t *testing.T) {
	ts, attempts := fakeServer(t, http.StatusServiceUnavailable)
	c := New(ts.URL, WithBackoff(fastPolicy(1)))
	// The fake serves plain JSON, not NDJSON; only check the retry path
	// by letting the success decode fail after the retry happened.
	c.QueryStream(context.Background(), "SELECT 1 AS x", nil)
	if got := attempts.Load(); got != 2 {
		t.Fatalf("stream attempts = %d, want 2 (503 then retry)", got)
	}
}

func TestCancelDuringBackoffReturnsPromptly(t *testing.T) {
	ts, _ := fakeServer(t, http.StatusTooManyRequests, http.StatusTooManyRequests)
	c := New(ts.URL, WithBackoff(Backoff{Attempts: 3, Base: time.Hour, Max: time.Hour, Seed: 1}))
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(20*time.Millisecond, cancel)
	start := time.Now()
	_, err := c.Query(ctx, "SELECT 1 AS x")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("cancel during an hour-long backoff took %v to surface", el)
	}
}

// TestDelayBoundsAndDeterminism pins the backoff schedule: attempt k
// draws uniformly from [d/2, d] where d = Base<<(k-1) capped at Max;
// the same seed yields the same schedule; Retry-After acts as a floor
// but never exceeds Max.
func TestDelayBoundsAndDeterminism(t *testing.T) {
	mk := func(seed int64) *Client {
		return New("http://unused", WithBackoff(Backoff{
			Attempts: 6, Base: 100 * time.Millisecond, Max: time.Second, Seed: seed,
		}))
	}
	a, b := mk(42), mk(42)
	for attempt := 1; attempt <= 5; attempt++ {
		da := a.delay(attempt, 0)
		db := b.delay(attempt, 0)
		if da != db {
			t.Fatalf("attempt %d: same seed, different delays: %v vs %v", attempt, da, db)
		}
		d := 100 * time.Millisecond << (attempt - 1)
		if d > time.Second || d <= 0 {
			d = time.Second
		}
		if da < d/2 || da > d {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, da, d/2, d)
		}
	}
	if c := mk(43); c.delay(1, 0) == mk(42).delay(1, 0) {
		// Not impossible, but with a 50ms jitter range a collision across
		// seeds is ~1/50e6; treat it as a busted PRNG wiring.
		t.Fatalf("different seeds produced identical first delays")
	}

	// Retry-After is a floor…
	if d := mk(42).delay(1, 1); d != time.Second {
		// 1s Retry-After > any jittered first delay, and equals Max.
		t.Fatalf("Retry-After 1s should lift the delay to 1s, got %v", d)
	}
	// …but the cap always wins.
	if d := mk(42).delay(1, 30); d != time.Second {
		t.Fatalf("Retry-After 30s must be capped at Max=1s, got %v", d)
	}
}
