package msql

// Distributed-execution surface: the DB methods a shard server
// (internal/server) and a coordinator (internal/dist) need beyond the
// plain query API — partial aggregation, version-guarded mutations, and
// the shard-health metrics/virtual-table hooks.

import (
	"context"

	"github.com/measures-sql/msql/internal/engine"
	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/plan"
)

// PartialResult is a shard's partial-aggregation answer: per-group
// aggregate states ready to Merge with other shards' partials.
type PartialResult = exec.PartialResult

// PartialGroup is one group of a PartialResult.
type PartialGroup = exec.PartialGroup

// PlanQuery plans a single query without executing it. The returned
// tree is the engine's internal plan representation — usable only
// inside this module; coordinators walk it to classify queries for
// distributed execution.
func (db *DB) PlanQuery(ctx context.Context, sql string, opts ...Option) (plan.Node, error) {
	return db.session.PlanQuery(ctx, sql, overrides(opts))
}

// CatalogVersion returns the catalog's mutation counter. Every DDL and
// INSERT advances it by exactly one, and durable recovery restores the
// pre-crash value, so coordinators use it as the compare-and-swap token
// for exactly-once replicated mutations.
func (db *DB) CatalogVersion() int64 { return db.session.CatalogVersion() }

// PartialAggregate plans sql and runs its scan/filter/group phase,
// returning per-group partial aggregate states instead of final rows.
// groups/aggs cross-check the plan shape; a query whose shape cannot be
// merged across shards fails with a structured BIND error wrapping
// exec.ErrPartialUnsupported.
func (db *DB) PartialAggregate(ctx context.Context, sql string, groups, aggs int, opts ...Option) (*PartialResult, error) {
	return db.session.PartialAggregate(ctx, sql, groups, aggs, overrides(opts))
}

// ExecCAS executes one mutation statement iff the catalog version
// equals expect; on success the returned version is expect+1. A version
// mismatch is not an error: ok is false and version reports the current
// value, letting a coordinator that lost an ack distinguish "already
// applied" (version == expect+1) from divergence.
func (db *DB) ExecCAS(ctx context.Context, sql string, expect int64, opts ...Option) (res *Result, version int64, ok bool, err error) {
	return db.session.ExecCAS(ctx, sql, expect, overrides(opts))
}

// InsertRowsCAS bulk-inserts pre-built rows iff the catalog version
// equals expect (see ExecCAS for the contract).
func (db *DB) InsertRowsCAS(table string, rows [][]Value, expect int64) (version int64, ok bool, err error) {
	return db.session.InsertRowsCAS(table, rows, expect)
}

// ShardCounters is the distributed coordinator's slice of a metrics
// snapshot: scatter/retry/hedge/failover/breaker counters.
type ShardCounters = engine.ShardCounters

// RegisterShardMetrics installs (or with nil removes) a source of
// shard-coordination counters; Metrics() calls it so the failure
// envelope shows up in the same JSON and Prometheus output as the
// engine's own counters.
func (db *DB) RegisterShardMetrics(fn func() ShardCounters) {
	db.session.Metrics().SetShardSource(fn)
}

// RegisterVirtualTable installs (or replaces) a read-only virtual table
// backed by provider, queryable like the built-in msql_stats.* tables.
func (db *DB) RegisterVirtualTable(name string, cols []string, types []Type, provider func() [][]Value) error {
	return db.session.RegisterVirtualTable(name, cols, types, provider)
}
