package msql_test

// Robustness tests: hostile inputs must surface structured errors (never
// panics), resource limits must trip with the right code and session
// metric, per-call options must not leak into session state, and a
// worker panic must come back as ErrRuntime with the session usable
// afterwards.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/msql"
)

// TestHostileInputsReturnErrors runs expressions engineered to overflow,
// wrap, or divide by zero in subtle ways. Every one must produce either
// a clean result or a classified error — a panic fails the test run.
func TestHostileInputsReturnErrors(t *testing.T) {
	db := msql.Open()
	cases := []struct {
		name, sql string
		wantErr   bool
	}{
		{"add overflow", `SELECT 9223372036854775807 + 1`, true},
		{"sub overflow", `SELECT -9223372036854775807 - 2`, true},
		{"mul overflow", `SELECT 9223372036854775807 * 2`, true},
		{"abs minint", `SELECT ABS(-9223372036854775807 - 1)`, true},
		{"neg minint", `SELECT -(-9223372036854775807 - 1)`, true},
		{"cast huge float", `SELECT CAST(1e300 AS INTEGER)`, true},
		{"cast nan-ish", `SELECT CAST(1e300 * 1e300 AS INTEGER)`, true},
		{"substring negative length", `SELECT SUBSTRING('hello', 1, -1)`, true},
		{"int div zero is null", `SELECT 1 / 0`, false},
		{"mod zero is null", `SELECT MOD(1, 0)`, false},
		{"mod fractional divisor", `SELECT MOD(1.0, 0.5)`, false},
		{"mod huge float operand", `SELECT MOD(1e300, 7.0)`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := db.Query(tc.sql)
			if tc.wantErr {
				if !errors.Is(err, msql.ErrRuntime) {
					t.Fatalf("%s: want ErrRuntime, got %v", tc.sql, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("%s: unexpected error %v", tc.sql, err)
			}
		})
	}
}

// TestSubstringHugeLength is the regression for the int-wrap bug where
// SUBSTRING('hello', 2, MaxInt64) returned "" instead of "ello".
func TestSubstringHugeLength(t *testing.T) {
	db := msql.Open()
	res, err := db.Query(`SELECT SUBSTRING('hello', 2, 9223372036854775807)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].S; got != "ello" {
		t.Fatalf("got %q, want %q", got, "ello")
	}
}

// TestSumOverflow checks the aggregate accumulator path, not just the
// scalar operators.
func TestSumOverflow(t *testing.T) {
	db := msql.Open()
	db.MustExec(`CREATE TABLE B (x INTEGER)`)
	db.MustExec(`INSERT INTO B VALUES (9223372036854775807), (1)`)
	_, err := db.Query(`SELECT SUM(x) FROM B`)
	if !errors.Is(err, msql.ErrRuntime) {
		t.Fatalf("want ErrRuntime, got %v", err)
	}
	if !strings.Contains(err.Error(), "SUM") {
		t.Fatalf("error should name SUM: %v", err)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	db := open(t)
	t.Run("parse", func(t *testing.T) {
		_, err := db.Query(`SELEC 1`)
		if !errors.Is(err, msql.ErrParse) {
			t.Fatalf("want ErrParse, got %v", err)
		}
		var me *msql.Error
		if !errors.As(err, &me) {
			t.Fatalf("want *msql.Error, got %T", err)
		}
		if me.Query == "" {
			t.Fatal("Error.Query must carry the statement text")
		}
	})
	t.Run("bind", func(t *testing.T) {
		_, err := db.Query(`SELECT nosuchcolumn FROM Orders`)
		if !errors.Is(err, msql.ErrBind) {
			t.Fatalf("want ErrBind, got %v", err)
		}
	})
	t.Run("runtime has position", func(t *testing.T) {
		_, err := db.Query(`SELECT ABS(-9223372036854775807 - 1) FROM Orders`)
		var me *msql.Error
		if !errors.As(err, &me) {
			t.Fatalf("want *msql.Error, got %v", err)
		}
		if me.Code != msql.ErrRuntime {
			t.Fatalf("Code = %v, want ErrRuntime", me.Code)
		}
		if me.Pos < 0 {
			t.Fatalf("runtime error from a function call should carry a position, got %d", me.Pos)
		}
	})
	t.Run("codes are distinct sentinels", func(t *testing.T) {
		_, err := db.Query(`SELEC 1`)
		for _, code := range []msql.ErrorCode{msql.ErrBind, msql.ErrExpand,
			msql.ErrRuntime, msql.ErrCanceled, msql.ErrTimeout, msql.ErrResourceExhausted} {
			if errors.Is(err, code) {
				t.Fatalf("parse error must not match %v", code)
			}
		}
	})
}

// bigDB opens a database with a 20k-row table, large enough for limit
// and cancellation tests.
func bigDB(t testing.TB) *msql.DB {
	t.Helper()
	db := msql.Open()
	db.MustExec(`CREATE TABLE big (a INTEGER, b INTEGER)`)
	rows := make([][]msql.Value, 20000)
	for i := range rows {
		rows[i] = []msql.Value{sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i % 97))}
	}
	if err := db.InsertRows("big", rows); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSessionLimitsMaxRows(t *testing.T) {
	db := bigDB(t)
	db.SetLimits(msql.Limits{MaxRows: 100})
	_, err := db.Query(`SELECT a FROM big WHERE b < 40`)
	if !errors.Is(err, msql.ErrResourceExhausted) {
		t.Fatalf("want ErrResourceExhausted, got %v", err)
	}
	if got := db.Metrics().LimitTrips; got != 1 {
		t.Fatalf("LimitTrips = %d, want 1", got)
	}
	// Lifting the limits restores the session.
	db.SetLimits(msql.Limits{})
	if _, err := db.Query(`SELECT COUNT(*) FROM big`); err != nil {
		t.Fatalf("session must be usable after a limit trip: %v", err)
	}
}

func TestStatementTimeout(t *testing.T) {
	db := bigDB(t)
	exec.SetFailPoint(exec.FailOperator, func() error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	defer exec.ClearFailPoints()
	_, err := db.QueryContext(context.Background(),
		`SELECT a FROM big WHERE b < 40`, msql.WithTimeout(time.Millisecond))
	if !errors.Is(err, msql.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout must unwrap to context.DeadlineExceeded, got %v", err)
	}
	if got := db.Metrics().Timeouts; got != 1 {
		t.Fatalf("Timeouts metric = %d, want 1", got)
	}
	exec.ClearFailPoints()
	if _, err := db.Query(`SELECT COUNT(*) FROM big`); err != nil {
		t.Fatalf("session must be usable after a timeout: %v", err)
	}
}

// TestPerCallOptionsDoNotLeak checks WithLimits/WithWorkers scope to one
// call: the session's own settings stay untouched.
func TestPerCallOptionsDoNotLeak(t *testing.T) {
	db := bigDB(t)
	_, err := db.QueryContext(context.Background(),
		`SELECT a FROM big WHERE b < 40`,
		msql.WithLimits(msql.Limits{MaxRows: 10}), msql.WithWorkers(2))
	if !errors.Is(err, msql.ErrResourceExhausted) {
		t.Fatalf("want ErrResourceExhausted, got %v", err)
	}
	// The next plain call runs without any limit.
	res, err := db.Query(`SELECT COUNT(*) FROM big`)
	if err != nil {
		t.Fatalf("per-call limits leaked into the session: %v", err)
	}
	if res.Rows[0][0].I != 20000 {
		t.Fatalf("count = %d, want 20000", res.Rows[0][0].I)
	}
}

// TestSubqueryEvalLimit bounds the naive strategy's correlated-subquery
// blow-up with MaxSubqueryEvals.
func TestSubqueryEvalLimit(t *testing.T) {
	db := open(t)
	db.SetStrategy(msql.StrategyNaive)
	db.SetLimits(msql.Limits{MaxSubqueryEvals: 1})
	_, err := db.Query(`SELECT prodName, AGGREGATE(sumRevenue) FROM OrdersWithRevenue GROUP BY prodName`)
	if !errors.Is(err, msql.ErrResourceExhausted) {
		t.Fatalf("want ErrResourceExhausted, got %v", err)
	}
	var me *msql.Error
	if !errors.As(err, &me) || me.Hint == "" {
		t.Fatalf("limit errors must carry a hint, got %v", err)
	}
}

// TestWorkerPanicBecomesError injects a panic into every parallel worker
// and checks the public API returns ErrRuntime — and that the session
// survives.
func TestWorkerPanicBecomesError(t *testing.T) {
	db := bigDB(t)
	db.SetWorkers(4)
	exec.SetFailPoint(exec.FailWorkerStart, func() error { panic("injected worker panic") })
	_, err := db.Query(`SELECT a FROM big WHERE b < 40`)
	exec.ClearFailPoints()
	if !errors.Is(err, msql.ErrRuntime) {
		t.Fatalf("want ErrRuntime from recovered worker panic, got %v", err)
	}
	res, err := db.Query(`SELECT COUNT(*) FROM big`)
	if err != nil {
		t.Fatalf("session must be usable after a worker panic: %v", err)
	}
	if res.Rows[0][0].I != 20000 {
		t.Fatalf("count = %d, want 20000", res.Rows[0][0].I)
	}
}
