module github.com/measures-sql/msql

go 1.22
