// Quickstart: the paper's running example, end to end.
//
// It creates the Orders table (Table 2 of the paper), defines a measure
// view, and walks through the queries of Listings 3–8: AGGREGATE, the
// AT operator with ALL / SET / VISIBLE, and ROLLUP totals.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"github.com/measures-sql/msql/msql"
)

func main() {
	db := msql.Open()

	db.MustExec(`
		CREATE TABLE Orders (prodName VARCHAR, custName VARCHAR,
		                     orderDate DATE, revenue INTEGER, cost INTEGER);
		INSERT INTO Orders VALUES
		  ('Happy', 'Alice', DATE '2023-11-28', 6, 4),
		  ('Acme',  'Bob',   DATE '2023-11-27', 5, 2),
		  ('Happy', 'Alice', DATE '2024-11-28', 7, 4),
		  ('Whizz', 'Celia', DATE '2023-11-25', 3, 1),
		  ('Happy', 'Bob',   DATE '2022-11-27', 4, 1);
	`)

	// A measure attaches a calculation to the table. Note: no GROUP BY —
	// the view has the same rows as Orders, plus a formula that knows how
	// to aggregate itself in any evaluation context.
	db.MustExec(`
		CREATE VIEW EnhancedOrders AS
		SELECT *,
		       (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin,
		       SUM(revenue) AS MEASURE sumRevenue
		FROM Orders;
	`)

	section("Profit margin per product (paper Listing 4)")
	show(db, `
		SELECT prodName, AGGREGATE(profitMargin) AS profitMargin, COUNT(*) AS c
		FROM EnhancedOrders
		GROUP BY prodName
		ORDER BY prodName`)

	section("Share of total revenue — AT (ALL prodName) removes the product filter (Listing 6)")
	show(db, `
		SELECT prodName,
		       AGGREGATE(sumRevenue) AS revenue,
		       sumRevenue / sumRevenue AT (ALL prodName) AS shareOfTotal
		FROM EnhancedOrders
		GROUP BY prodName
		ORDER BY prodName`)

	section("Comparing against last year — AT (SET ...) rewrites the context (Listing 7)")
	show(db, `
		SELECT prodName, orderYear,
		       profitMargin,
		       profitMargin AT (SET orderYear = CURRENT orderYear - 1) AS lastYear
		FROM (SELECT *, YEAR(orderDate) AS orderYear,
		             (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin
		      FROM Orders)
		WHERE orderYear = 2024
		GROUP BY prodName, orderYear`)

	section("VISIBLE vs default under a WHERE clause and ROLLUP (Listing 8)")
	show(db, `
		SELECT o.prodName,
		       COUNT(*) AS c,
		       AGGREGATE(o.sumRevenue) AS visibleTotal,
		       o.sumRevenue AS unfilteredTotal
		FROM EnhancedOrders AS o
		WHERE o.custName <> 'Bob'
		GROUP BY ROLLUP(o.prodName)
		ORDER BY o.prodName NULLS LAST`)

	section("Every measure query expands to plain SQL (Listing 5)")
	expanded, err := db.Expand(`
		SELECT prodName, AGGREGATE(profitMargin) AS profitMargin
		FROM EnhancedOrders
		GROUP BY prodName`)
	if err != nil {
		panic(err)
	}
	fmt.Println(expanded)
}

func section(title string) {
	fmt.Println()
	fmt.Println("──", title)
}

func show(db *msql.DB, sql string) {
	fmt.Print(msql.Format(db.MustQuery(sql)))
}
