// Conciseness (paper §5.7): measure queries are a smaller, less
// repetitive target language than the plain SQL they expand to — the
// paper argues this helps humans and LLM text-to-SQL systems alike.
// This example prints measure queries next to their mechanical
// expansions with size metrics.
//
//	go run ./examples/conciseness
package main

import (
	"fmt"
	"strings"

	"github.com/measures-sql/msql/internal/lexer"
	"github.com/measures-sql/msql/internal/paperdata"
	"github.com/measures-sql/msql/msql"
)

func main() {
	db := msql.Open()
	db.MustExec(paperdata.All)

	queries := []struct {
		title string
		sql   string
	}{
		{"profit margin by product", `
			SELECT prodName, AGGREGATE(profitMargin) AS margin
			FROM EnhancedOrders
			GROUP BY prodName`},
		{"share of total revenue", `
			SELECT prodName,
			       AGGREGATE(sumRevenue) AS revenue,
			       sumRevenue / sumRevenue AT (ALL prodName) AS share
			FROM OrdersWithRevenue
			GROUP BY prodName`},
		{"year-over-year ratio", `
			SELECT prodName, YEAR(orderDate) AS orderYear,
			       sumRevenue / sumRevenue AT (SET orderYear = CURRENT orderYear - 1) AS ratio
			FROM OrdersWithRevenue
			GROUP BY prodName, YEAR(orderDate)`},
		{"three contexts at once", `
			SELECT prodName, YEAR(orderDate) AS orderYear,
			       AGGREGATE(sumRevenue) AS rev,
			       sumRevenue AT (SET orderYear = CURRENT orderYear - 1) AS lastYear,
			       sumRevenue AT (ALL) AS grandTotal
			FROM OrdersWithRevenue
			GROUP BY prodName, YEAR(orderDate)`},
	}

	fmt.Printf("%-28s %10s %10s %8s %14s\n", "query", "chars", "tokens", "ratio", "subqueries")
	for _, q := range queries {
		expanded, err := db.Expand(q.sql)
		if err != nil {
			panic(err)
		}
		mc, mt := size(q.sql)
		ec, et := size(expanded)
		subqueries := strings.Count(strings.ToUpper(expanded), "SELECT") - 1
		fmt.Printf("%-28s %4d→%-5d %4d→%-5d %7.1fx %14d\n",
			q.title, mc, ec, mt, et, float64(et)/float64(mt), subqueries)
	}

	fmt.Println("\nExample expansion (year-over-year ratio):")
	expanded, _ := db.Expand(queries[2].sql)
	fmt.Println(expanded)
}

// size returns (characters, tokens) of a SQL string, whitespace
// normalized.
func size(sql string) (int, int) {
	toks, err := lexer.Tokenize(sql)
	if err != nil {
		panic(err)
	}
	chars := 0
	for _, t := range toks {
		chars += len(t.Text)
	}
	return chars, len(toks) - 1 // minus EOF
}
