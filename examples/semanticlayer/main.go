// A semantic layer as SQL (paper §5.6): the paper describes Looker's
// Open SQL Interface, where each "Explore" — a wide join view with
// centrally defined measures — appears as a SQL table that any BI tool
// can query. This example builds such an Explore over a small star
// schema and plays the part of three different downstream tools, each
// issuing plain SQL against the one shared model.
//
//	go run ./examples/semanticlayer
package main

import (
	"fmt"

	"github.com/measures-sql/msql/internal/datagen"
	"github.com/measures-sql/msql/msql"
)

func main() {
	db := msql.Open()

	// The warehouse: a fact table and two dimension tables.
	db.MustExec(datagen.SetupSQL)
	ds := datagen.Generate(datagen.Config{Seed: 4, Customers: 40, Products: 8, Orders: 4000, Years: 2})
	must(db.InsertRows("Customers", ds.Customers))
	must(db.InsertRows("Orders", ds.Orders))
	db.MustExec(`
		CREATE TABLE Products (prodName VARCHAR, category VARCHAR);
		INSERT INTO Products
		SELECT DISTINCT prodName,
		       CASE WHEN prodName < 'prod004' THEN 'Toys' ELSE 'Tools' END
		FROM Orders;
	`)

	// The Explore: defined ONCE by the data team. Joins, grain and
	// calculations are encapsulated; consumers never repeat a formula.
	db.MustExec(`
		CREATE VIEW SalesExplore AS
		SELECT o.prodName, o.custName, o.orderDate, o.revenue, o.cost,
		       p.category, c.custAge,
		       YEAR(o.orderDate) AS orderYear,
		       SUM(o.revenue)                                   AS MEASURE totalRevenue,
		       (SUM(o.revenue) - SUM(o.cost)) / SUM(o.revenue)  AS MEASURE profitMargin,
		       COUNT(*)                                          AS MEASURE orderCount,
		       SUM(o.revenue) / COUNT(DISTINCT o.custName)       AS MEASURE revenuePerCustomer
		FROM Orders AS o
		JOIN Products AS p ON o.prodName = p.prodName
		JOIN Customers AS c ON o.custName = c.custName;
	`)

	tables, views := db.Tables()
	fmt.Println("Connected. Tables:", tables, "Explores:", views)

	fmt.Println("\n[dashboard tool] category KPIs, one query, zero formulas:")
	show(db, `
		SELECT category,
		       AGGREGATE(totalRevenue)       AS revenue,
		       ROUND(AGGREGATE(profitMargin), 3) AS margin,
		       AGGREGATE(orderCount)         AS orders,
		       ROUND(AGGREGATE(revenuePerCustomer), 1) AS revPerCustomer
		FROM SalesExplore
		GROUP BY category
		ORDER BY category`)

	fmt.Println("[spreadsheet tool] pivot: margin by category and year, with totals:")
	show(db, `
		SELECT category, orderYear,
		       ROUND(AGGREGATE(profitMargin), 3) AS margin,
		       AGGREGATE(totalRevenue) AS revenue
		FROM SalesExplore
		GROUP BY ROLLUP(category, orderYear)
		ORDER BY category NULLS LAST, orderYear NULLS LAST`)

	fmt.Println("[analyst] ad hoc: adult customers only, share of all adult revenue:")
	show(db, `
		SELECT prodName,
		       AGGREGATE(totalRevenue) AS revenue,
		       ROUND(totalRevenue AT (VISIBLE) /
		             totalRevenue AT (VISIBLE ALL prodName), 3) AS shareOfVisible
		FROM SalesExplore
		WHERE custAge >= 18
		GROUP BY prodName
		ORDER BY revenue DESC
		LIMIT 5`)
}

func show(db *msql.DB, sql string) {
	fmt.Print(msql.Format(db.MustQuery(sql)))
	fmt.Println()
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
