// Time series with measures (paper §6.5): a calendar dimension supplies
// the rows, and measures evaluate over dates that have no orders at all
// — the paper's question "how can I evaluate a measure on a table that
// has no rows?" answered with NULL/0, plus a moving average computed by
// shifting the context with AT (SET ...).
//
//	go run ./examples/timeseries
package main

import (
	"fmt"

	"github.com/measures-sql/msql/msql"
)

func main() {
	db := msql.Open()

	db.MustExec(`
		CREATE TABLE Sales (day DATE, amount INTEGER);
		INSERT INTO Sales VALUES
		  (DATE '2024-03-01', 10),
		  (DATE '2024-03-01', 5),
		  (DATE '2024-03-02', 8),
		  -- the 3rd is a holiday: no rows at all
		  (DATE '2024-03-04', 12),
		  (DATE '2024-03-06', 20);

		CREATE TABLE Calendar (day DATE);
		INSERT INTO Calendar VALUES
		  (DATE '2024-03-01'), (DATE '2024-03-02'), (DATE '2024-03-03'),
		  (DATE '2024-03-04'), (DATE '2024-03-05'), (DATE '2024-03-06');

		-- Project only the day dimension: the measure's dimensionality is
		-- the non-measure columns of its table (§3.4), and the context
		-- will constrain exactly the day.
		CREATE VIEW SalesM AS
		SELECT day, SUM(amount) AS MEASURE rev FROM Sales;
	`)

	// The calendar drives the output rows; each measure evaluation uses
	// AT (SET day = ...) to point the context at the calendar date — even
	// dates with no sales rows. COALESCE turns the empty-context NULL
	// into a zero, synthesizing the "revenue of a closed day" (§6.5).
	fmt.Println("Daily revenue with gap filling and a trailing 3-day average:")
	fmt.Print(msql.Format(db.MustQuery(`
		SELECT c.day,
		       COALESCE(s.rev AT (SET day = c.day), 0) AS revenue,
		       ROUND((COALESCE(s.rev AT (SET day = c.day), 0)
		            + COALESCE(s.rev AT (SET day = c.day - 1), 0)
		            + COALESCE(s.rev AT (SET day = c.day - 2), 0)) / 3.0, 2)
		         AS trailing3
		FROM Calendar AS c
		CROSS JOIN (SELECT * FROM SalesM LIMIT 1) AS s
		ORDER BY c.day`)))

	fmt.Println("\nThe same series through plain grouping misses the empty days:")
	fmt.Print(msql.Format(db.MustQuery(`
		SELECT day, SUM(amount) AS revenue
		FROM Sales GROUP BY day ORDER BY day`)))
}
