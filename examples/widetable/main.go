// Wide tables and complex measures (paper §5.3): a denormalized join
// view carrying measures that keep their own grain — no double-counting
// — plus a semi-additive inventory measure (last value over time, summed
// over warehouses via ARG_MAX) and a non-additive return-rate measure.
//
//	go run ./examples/widetable
package main

import (
	"fmt"

	"github.com/measures-sql/msql/msql"
)

func main() {
	db := msql.Open()

	db.MustExec(`
		CREATE TABLE Products (prodName VARCHAR, category VARCHAR);
		INSERT INTO Products VALUES
		  ('Happy', 'Toys'), ('Acme', 'Tools'), ('Whizz', 'Toys');

		CREATE TABLE Sales (prodName VARCHAR, units INTEGER, returned INTEGER);
		INSERT INTO Sales VALUES
		  ('Happy', 100, 7), ('Happy', 50, 3),
		  ('Acme', 80, 2), ('Whizz', 40, 4);

		CREATE TABLE Inventory (prodName VARCHAR, warehouse VARCHAR,
		                        snapDate DATE, onHand INTEGER);
		INSERT INTO Inventory VALUES
		  ('Happy', 'East', DATE '2024-01-01', 20),
		  ('Happy', 'East', DATE '2024-02-01', 12),
		  ('Happy', 'West', DATE '2024-01-01', 9),
		  ('Acme',  'East', DATE '2024-02-01', 5),
		  ('Whizz', 'West', DATE '2024-01-01', 30),
		  ('Whizz', 'West', DATE '2024-03-01', 8);
	`)

	// The paper recommends wide tables once measures exist, because
	// "calculations maintain their own consistency". The sales measures
	// are locked to the Sales grain even though the view joins Products.
	db.MustExec(`
		CREATE VIEW WideSales AS
		SELECT s.prodName, s.units, s.returned, p.category,
		       SUM(s.units) AS MEASURE unitsSold,
		       SUM(s.returned) / SUM(s.units) AS MEASURE returnRate
		FROM Sales AS s
		JOIN Products AS p ON s.prodName = p.prodName;
	`)

	fmt.Println("Non-additive return rate by category (never a sum of rates):")
	fmt.Print(msql.Format(db.MustQuery(`
		SELECT category,
		       AGGREGATE(unitsSold) AS units,
		       AGGREGATE(returnRate) AS returnRate
		FROM WideSales
		GROUP BY category
		ORDER BY category`)))

	// Semi-additive: last snapshot per (product, warehouse) — ARG_MAX
	// over the time dimension — then SUM over warehouses. The helper view
	// does the per-warehouse LAST_VALUE step; the measure sums it.
	db.MustExec(`
		CREATE VIEW LatestInventory AS
		SELECT prodName, warehouse,
		       ARG_MAX(onHand, snapDate) AS onHandNow
		FROM Inventory
		GROUP BY prodName, warehouse;

		CREATE VIEW InventoryM AS
		SELECT *, SUM(onHandNow) AS MEASURE onHand
		FROM LatestInventory;
	`)

	fmt.Println("\nSemi-additive items-on-hand (last value in time, sum across warehouses):")
	fmt.Print(msql.Format(db.MustQuery(`
		SELECT prodName, AGGREGATE(onHand) AS onHand
		FROM InventoryM
		GROUP BY prodName
		ORDER BY prodName`)))

	fmt.Println("\nGrand total on hand (sums the last snapshots, not all snapshots):")
	fmt.Print(msql.Format(db.MustQuery(`
		SELECT AGGREGATE(onHand) AS totalOnHand FROM InventoryM`)))
}
