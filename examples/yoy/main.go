// Year-over-year analysis on a synthetic retail dataset (paper §3.5 and
// Listing 10): a single measure definition supports this-year,
// last-year, growth-ratio and share-of-total columns without repeating a
// single filter — the evaluation context does the work.
//
//	go run ./examples/yoy
package main

import (
	"fmt"

	"github.com/measures-sql/msql/internal/datagen"
	"github.com/measures-sql/msql/msql"
)

func main() {
	db := msql.Open()
	db.MustExec(datagen.SetupSQL)
	cfg := datagen.Config{Seed: 42, Customers: 50, Products: 6, Orders: 5000, Years: 3}
	ds := datagen.Generate(cfg)
	must(db.InsertRows("Customers", ds.Customers))
	must(db.InsertRows("Orders", ds.Orders))

	// One view, one measure. Every column in the report below is this
	// measure evaluated in a different context.
	db.MustExec(`
		CREATE VIEW Sales AS
		SELECT *, YEAR(orderDate) AS orderYear,
		       SUM(revenue) AS MEASURE rev
		FROM Orders;
	`)

	fmt.Println("Revenue by product and year, with last year and growth:")
	fmt.Print(msql.Format(db.MustQuery(`
		SELECT prodName, orderYear,
		       rev                                            AS revenue,
		       rev AT (SET orderYear = CURRENT orderYear - 1) AS lastYear,
		       rev / rev AT (SET orderYear = CURRENT orderYear - 1) - 1
		                                                      AS growth,
		       rev / rev AT (ALL prodName)                    AS shareOfYear,
		       rev / rev AT (ALL)                             AS shareOfAll
		FROM Sales
		WHERE orderYear >= 2023
		GROUP BY prodName, orderYear
		ORDER BY prodName, orderYear`)))

	fmt.Println("\nProducts that grew year-over-year in 2024 (measures in HAVING):")
	fmt.Print(msql.Format(db.MustQuery(`
		SELECT prodName,
		       AGGREGATE(rev) AS revenue2024,
		       rev AT (SET orderYear = 2023) AS revenue2023
		FROM Sales
		WHERE orderYear = 2024
		GROUP BY prodName
		HAVING AGGREGATE(rev) > rev AT (SET orderYear = 2023)
		ORDER BY prodName`)))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
