package paperdata_test

import (
	"testing"

	"github.com/measures-sql/msql/internal/engine"
	"github.com/measures-sql/msql/internal/paperdata"
)

// The paper's datasets and views must load and match Tables 1-2 exactly.
func TestAllLoads(t *testing.T) {
	s := engine.New()
	if _, err := s.Execute(paperdata.All); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(`SELECT COUNT(*), SUM(revenue), SUM(cost) FROM Orders`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].I != 5 || row[1].I != 25 || row[2].I != 12 {
		t.Errorf("Orders totals: %v (want 5 rows, revenue 25, cost 12)", row)
	}
	res, err = s.Query(`SELECT SUM(custAge) FROM Customers`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 81 {
		t.Errorf("Customers age sum: %v (want 23+41+17=81)", res.Rows[0][0])
	}
	// All three views exist and bind.
	for _, v := range []string{"SummarizedOrders", "EnhancedOrders", "OrdersWithRevenue"} {
		if _, err := s.Query(`SELECT COUNT(*) FROM ` + v); err != nil {
			t.Errorf("view %s: %v", v, err)
		}
	}
}
