// Package paperdata loads the paper's example datasets — Table 1
// (Customers) and Table 2 (Orders) — and the views its listings define,
// so tests, examples and the experiment harness all run against exactly
// the data the paper prints.
package paperdata

// Schema creates the Customers and Orders tables with the paper's rows.
const Schema = `
CREATE TABLE Customers (custName VARCHAR, custAge INTEGER);
INSERT INTO Customers VALUES
  ('Alice', 23),
  ('Bob', 41),
  ('Celia', 17);

CREATE TABLE Orders (prodName VARCHAR, custName VARCHAR, orderDate DATE,
                     revenue INTEGER, cost INTEGER);
INSERT INTO Orders VALUES
  ('Happy', 'Alice', DATE '2023-11-28', 6, 4),
  ('Acme',  'Bob',   DATE '2023-11-27', 5, 2),
  ('Happy', 'Alice', DATE '2024-11-28', 7, 4),
  ('Whizz', 'Celia', DATE '2023-11-25', 3, 1),
  ('Happy', 'Bob',   DATE '2022-11-27', 4, 1);
`

// Views creates the views defined in the paper's listings.
const Views = `
CREATE VIEW SummarizedOrders AS
SELECT prodName, orderDate,
       (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
FROM Orders
GROUP BY prodName, orderDate;

CREATE VIEW EnhancedOrders AS
SELECT orderDate, prodName,
       (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin
FROM Orders;

CREATE VIEW OrdersWithRevenue AS
SELECT *, SUM(revenue) AS MEASURE sumRevenue
FROM Orders;
`

// All is Schema followed by Views.
const All = Schema + Views
