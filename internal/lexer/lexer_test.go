package lexer

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func texts(toks []Token) string {
	parts := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind == EOF {
			break
		}
		parts = append(parts, t.Text)
	}
	return strings.Join(parts, " ")
}

func TestBasicTokens(t *testing.T) {
	toks, err := Tokenize("SELECT prodName, SUM(revenue) AS MEASURE sumRevenue FROM Orders")
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT prodName , SUM ( revenue ) AS MEASURE sumRevenue FROM Orders"
	if got := texts(toks); got != want {
		t.Errorf("got %q\nwant %q", got, want)
	}
	// Keywords normalized, identifiers preserved.
	if toks[0].Kind != Keyword || toks[1].Kind != Ident || toks[1].Text != "prodName" {
		t.Errorf("unexpected token kinds: %v", kinds(toks))
	}
}

func TestKeywordCaseInsensitive(t *testing.T) {
	toks, err := Tokenize("select At aggregate visible")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "SELECT" || toks[1].Text != "AT" || toks[3].Text != "VISIBLE" {
		t.Errorf("keywords not normalized: %v", toks)
	}
	// AGGREGATE is not reserved; it lexes as an identifier (function name).
	if toks[2].Kind != Ident {
		t.Errorf("AGGREGATE should lex as identifier, got %v", toks[2])
	}
}

func TestStringLiterals(t *testing.T) {
	toks, err := Tokenize("'Bob' 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "Bob" || toks[1].Text != "it's" {
		t.Errorf("string values: %q %q", toks[0].Text, toks[1].Text)
	}
	if _, err := Tokenize("'unterminated"); err == nil {
		t.Error("expected error for unterminated string")
	}
}

func TestQuotedIdent(t *testing.T) {
	toks, err := Tokenize(`"Group" "a""b"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != Ident || toks[0].Text != "Group" {
		t.Errorf("quoted keyword should be an identifier: %v", toks[0])
	}
	if toks[1].Text != `a"b` {
		t.Errorf("doubled quote: %q", toks[1].Text)
	}
	if _, err := Tokenize(`"oops`); err == nil {
		t.Error("expected error for unterminated quoted identifier")
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Tokenize("1 2.5 .5 1e3 1.5E-2 2024")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "2.5", ".5", "1e3", "1.5E-2", "2024"}
	for i, w := range want {
		if toks[i].Kind != Number || toks[i].Text != w {
			t.Errorf("tok %d = %v, want number %q", i, toks[i], w)
		}
	}
}

func TestOperators(t *testing.T) {
	toks, err := Tokenize("a <> b != c <= d >= e || f -> g")
	if err != nil {
		t.Fatal(err)
	}
	got := texts(toks)
	want := "a <> b <> c <= d >= e || f -> g"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestComments(t *testing.T) {
	toks, err := Tokenize("SELECT -- line comment\n 1 /* block\ncomment */ + 2")
	if err != nil {
		t.Fatal(err)
	}
	if got := texts(toks); got != "SELECT 1 + 2" {
		t.Errorf("got %q", got)
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("SELECT x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 7 {
		t.Errorf("positions: %d %d", toks[0].Pos, toks[1].Pos)
	}
}

func TestBadCharacter(t *testing.T) {
	if _, err := Tokenize("SELECT ~x"); err == nil {
		t.Error("expected error for unexpected character")
	}
}

func TestUnicodeIdent(t *testing.T) {
	toks, err := Tokenize("sélect_été")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != Ident || toks[0].Text != "sélect_été" {
		t.Errorf("unicode ident: %v", toks[0])
	}
}
