// Package lexer tokenizes SQL text, including the measure extensions'
// keywords (MEASURE, AT, VISIBLE, CURRENT). AGGREGATE and EVAL lex as
// ordinary identifiers and are recognized as functions by the parser.
// Keywords are recognized case-insensitively; identifiers preserve their
// original spelling and may be double-quoted to escape keywords.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Kind classifies a token.
type Kind uint8

const (
	// EOF marks the end of input.
	EOF Kind = iota
	// Ident is an identifier (possibly quoted).
	Ident
	// Keyword is a reserved or contextual SQL keyword, normalized upper-case.
	Keyword
	// Number is an integer or decimal literal.
	Number
	// String is a single-quoted string literal (value has quotes removed
	// and doubled quotes collapsed).
	String
	// Op is an operator or punctuation token.
	Op
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of input"
	case Ident:
		return "identifier"
	case Keyword:
		return "keyword"
	case Number:
		return "number"
	case String:
		return "string"
	case Op:
		return "operator"
	default:
		return "unknown"
	}
}

// Token is a lexical token. Text is the normalized token text: upper-case
// for keywords, verbatim for identifiers and literals, the operator symbol
// for operators.
type Token struct {
	Kind Kind
	Text string
	Pos  int // byte offset in the input
}

// keywords lists every word the parser treats as a keyword. Contextual
// keywords (like MEASURE or AT) are included; the parser accepts them as
// identifiers where the grammar allows.
var keywords = map[string]bool{}

func init() {
	for _, w := range []string{
		"ALL", "AND", "AS", "ASC", "AT", "BETWEEN", "BY", "CASE", "CAST",
		"CREATE", "CROSS", "CUBE", "CURRENT", "DESC", "DISTINCT", "DROP",
		"ELSE", "END", "EXCEPT", "EXISTS", "FALSE", "FILTER", "FIRST",
		"FOLLOWING", "FROM", "FULL", "GROUP", "GROUPING", "HAVING", "IN",
		"INNER", "INSERT", "INTERSECT", "INTO", "IS", "JOIN", "LAST",
		"LEFT", "LIKE", "LIMIT", "MEASURE", "NATURAL", "NOT", "NULL",
		"NULLS", "OFFSET", "ON", "OR", "ORDER", "OUTER", "OVER",
		"PARTITION", "PRECEDING", "QUALIFY", "RANGE", "REPLACE", "RIGHT", "ROLLUP",
		"ROW", "ROWS", "SELECT", "SET", "SETS", "TABLE", "THEN", "TRUE",
		"UNBOUNDED", "UNION", "USING", "VALUES", "VIEW", "VISIBLE", "WHEN",
		"WHERE", "WITH", "WITHIN", "DATE", "EXPLAIN", "EXPAND",
	} {
		keywords[w] = true
	}
}

// IsKeyword reports whether the upper-cased word is a keyword.
func IsKeyword(word string) bool { return keywords[strings.ToUpper(word)] }

// Lexer scans SQL text into tokens.
type Lexer struct {
	src string
	pos int
}

// New returns a Lexer over src.
func New(src string) *Lexer { return &Lexer{src: src} }

// Tokenize scans the entire input, returning all tokens followed by an EOF
// token, or a lexical error annotated with its byte offset.
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == EOF {
			return toks, nil
		}
	}
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '\'':
		return l.scanString()
	case c == '"':
		return l.scanQuotedIdent()
	case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		return l.scanNumber()
	case isIdentStart(rune(c)) || c >= utf8.RuneSelf:
		return l.scanWord()
	default:
		return l.scanOp()
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func (l *Lexer) scanString() (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: String, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("unterminated string literal at offset %d", start)
}

func (l *Lexer) scanQuotedIdent() (Token, error) {
	start := l.pos
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
				sb.WriteByte('"')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: Ident, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("unterminated quoted identifier at offset %d", start)
}

func (l *Lexer) scanNumber() (Token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			return Token{Kind: Number, Text: l.src[start:l.pos], Pos: start}, nil
		}
	}
	return Token{Kind: Number, Text: l.src[start:l.pos], Pos: start}, nil
}

func (l *Lexer) scanWord() (Token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		return Token{Kind: Keyword, Text: upper, Pos: start}, nil
	}
	return Token{Kind: Ident, Text: word, Pos: start}, nil
}

// multi-character operators, longest first.
var multiOps = []string{"<>", "<=", ">=", "!=", "||", "->"}

func (l *Lexer) scanOp() (Token, error) {
	start := l.pos
	rest := l.src[l.pos:]
	for _, op := range multiOps {
		if strings.HasPrefix(rest, op) {
			l.pos += len(op)
			text := op
			if text == "!=" {
				text = "<>"
			}
			return Token{Kind: Op, Text: text, Pos: start}, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '+', '-', '*', '/', '%', '<', '>', '=', ';', '.', '?':
		l.pos++
		return Token{Kind: Op, Text: string(c), Pos: start}, nil
	case '$':
		// $n parameter placeholder: the dollar sign plus at least one digit.
		l.pos++
		numStart := l.pos
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == numStart {
			return Token{}, fmt.Errorf("expected digits after $ at offset %d", start)
		}
		return Token{Kind: Op, Text: l.src[start:l.pos], Pos: start}, nil
	default:
		return Token{}, fmt.Errorf("unexpected character %q at offset %d", c, start)
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
