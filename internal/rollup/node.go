package rollup

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/measures-sql/msql/internal/catalog"
	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/fn"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// group is one materialized grouping partition of a node: the key tuple
// (node key order), one aggregate state per node aggregate (nil slots
// for GROUPING placeholders), and the index of the group's first
// qualifying base row, which reproduces the executor's first-seen
// output order. A dirty group's states are stale and must be rebuilt
// from the base rows before being read.
type group struct {
	key    []sqltypes.Value
	states []fn.AggState
	order  int
	dirty  bool
}

// node is one lattice vertex: materialized aggregate states for one
// (base table, key set, aggregate list, row predicate) combination.
// All access goes through mu; the embedded evaluator is single-threaded
// and only used under it.
type node struct {
	mu        sync.Mutex
	src       *catalog.BaseTable
	srcName   string
	keys      []plan.Expr
	aggs      []aggSpec
	preds     []plan.Expr
	exact     bool
	maxGroups int

	ev       *exec.Evaluator
	rowsSeen int
	groups   map[string]*group
	nDirty   int
	disabled bool

	lastUse int64 // LRU tick, written under the lattice mutex
}

func newNode(req *request, maxGroups int) *node {
	return &node{
		src:       req.src,
		srcName:   strings.ToLower(req.src.Name()),
		keys:      req.keys,
		aggs:      req.aggs,
		preds:     req.preds,
		exact:     req.exact,
		maxGroups: maxGroups,
		ev:        exec.NewEvaluator(),
		groups:    map[string]*group{},
	}
}

func (nd *node) newStates() []fn.AggState {
	states := make([]fn.AggState, len(nd.aggs))
	for i := range nd.aggs {
		if nd.aggs[i].def == nil {
			continue
		}
		states[i] = nd.aggs[i].def.New(nd.aggs[i].argTypes)
	}
	return states
}

func (nd *node) resetLocked() {
	nd.groups = map[string]*group{}
	nd.rowsSeen = 0
	nd.nDirty = 0
}

// sync folds rows the node has not seen yet into its groups, against
// the immutable snapshot passed by the caller. The storage layer is
// append-only between truncations and snapshots are length-capped, so
// rows[nd.rowsSeen:] is exactly the INSERT delta; a snapshot shorter
// than rowsSeen means the table was truncated underneath us, which
// resets the node. Exactly-mergeable nodes accumulate delta rows in
// place (incremental maintenance: each group's Add stream stays in
// global row order, identical to a serial rescan); order-sensitive
// nodes only mark the touched groups dirty for lazy rebuild.
func (nd *node) sync(rows [][]sqltypes.Value, c *counters) error {
	if len(rows) < nd.rowsSeen {
		nd.resetLocked()
		c.invalidations.Add(1)
	}
	if len(rows) == nd.rowsSeen {
		return nil
	}
	for i := nd.rowsSeen; i < len(rows); i++ {
		row := rows[i]
		pass := true
		for _, p := range nd.preds {
			v, err := nd.ev.Eval(p, row)
			if err != nil {
				return err
			}
			if !v.IsTrue() {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		kv := make([]sqltypes.Value, len(nd.keys))
		for k, e := range nd.keys {
			v, err := nd.ev.Eval(e, row)
			if err != nil {
				return err
			}
			kv[k] = v
		}
		key := sqltypes.RowKey(kv)
		g := nd.groups[key]
		if g == nil {
			g = &group{key: kv, order: i}
			if nd.exact {
				g.states = nd.newStates()
			} else {
				g.dirty = true
				nd.nDirty++
			}
			nd.groups[key] = g
		}
		if nd.exact {
			if err := nd.accumulate(g, row); err != nil {
				return err
			}
			c.incrementalRows.Add(1)
		} else if !g.dirty {
			g.dirty = true
			nd.nDirty++
		}
	}
	nd.rowsSeen = len(rows)
	if len(nd.groups) > nd.maxGroups {
		nd.disabled = true
		nd.groups = nil
	}
	return nil
}

// accumulate replicates the executor's per-row aggregate accumulation
// (internal/exec/agg.go) for the gate's restricted shape: no DISTINCT,
// WITHIN DISTINCT, or FILTER clauses, so only argument evaluation and
// the SkipNulls rule remain.
func (nd *node) accumulate(g *group, row []sqltypes.Value) error {
	for ai := range nd.aggs {
		sp := &nd.aggs[ai]
		if sp.def == nil {
			continue
		}
		args := make([]sqltypes.Value, len(sp.args))
		skip := false
		for j, a := range sp.args {
			v, err := nd.ev.Eval(a, row)
			if err != nil {
				return err
			}
			args[j] = v
			if j == 0 && v.Null && sp.def.SkipNulls {
				skip = true
			}
		}
		if skip {
			continue
		}
		if err := g.states[ai].Add(args); err != nil {
			return err
		}
	}
	return nil
}

// rebuildDirty recomputes every dirty group's states in one pass over
// the synced prefix of the snapshot, in global row order — the lazy
// rebuild path for order-sensitive aggregates.
func (nd *node) rebuildDirty(rows [][]sqltypes.Value, c *counters) error {
	if nd.nDirty == 0 {
		return nil
	}
	for _, g := range nd.groups {
		if g.dirty {
			g.states = nd.newStates()
		}
	}
	rows = rows[:nd.rowsSeen]
	for _, row := range rows {
		pass := true
		for _, p := range nd.preds {
			v, err := nd.ev.Eval(p, row)
			if err != nil {
				return err
			}
			if !v.IsTrue() {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		kv := make([]sqltypes.Value, len(nd.keys))
		for k, e := range nd.keys {
			v, err := nd.ev.Eval(e, row)
			if err != nil {
				return err
			}
			kv[k] = v
		}
		g := nd.groups[sqltypes.RowKey(kv)]
		if g == nil || !g.dirty {
			continue
		}
		if err := nd.accumulate(g, row); err != nil {
			return err
		}
	}
	c.rebuilds.Add(int64(nd.nDirty))
	for _, g := range nd.groups {
		g.dirty = false
	}
	nd.nDirty = 0
	return nil
}

// activeTerm is a filter term whose guards did not fire: groups must
// match val on key column key.
type activeTerm struct {
	key int
	val sqltypes.Value
	eq  bool
}

func (t activeTerm) matches(kv sqltypes.Value) bool {
	if t.eq {
		// SQL `=`: a NULL on either side is not TRUE, so it never
		// selects a group.
		if t.val.Null || kv.Null {
			return false
		}
		return sqltypes.NotDistinct(kv, t.val)
	}
	return sqltypes.NotDistinct(kv, t.val)
}

// answer emits the request's output rows from the node's groups,
// reproducing the executor's emit contract exactly: grouping sets in
// order, groups within a set ascending by first qualifying row, absent
// key columns NULL-masked with the group expression's kind, GROUPING
// pseudo-aggregates computed from set membership, and an empty global
// set synthesized from fresh states.
func (nd *node) answer(req *request, active []activeTerm, empty bool) ([][]sqltypes.Value, error) {
	var sel []*group
	if !empty {
		for _, g := range nd.groups {
			match := true
			for _, t := range active {
				if !t.matches(g.key[t.key]) {
					match = false
					break
				}
			}
			if match {
				sel = append(sel, g)
			}
		}
		sortGroups(sel)
	}

	n := req.n
	var out [][]sqltypes.Value
	for _, set := range n.Sets {
		inSet := make(map[int]bool, len(set))
		for _, j := range set {
			inSet[j] = true
		}
		type outGroup struct {
			members []*group
			order   int
		}
		buckets := map[string]*outGroup{}
		var ordered []*outGroup
		for _, g := range sel {
			proj := make([]sqltypes.Value, len(set))
			for k, j := range set {
				proj[k] = g.key[req.groupKey[j]]
			}
			bk := sqltypes.RowKey(proj)
			og := buckets[bk]
			if og == nil {
				og = &outGroup{order: g.order}
				buckets[bk] = og
				ordered = append(ordered, og)
			}
			og.members = append(og.members, g)
		}
		if len(set) == 0 && len(ordered) == 0 {
			// A global grouping set emits a row even with no input.
			ordered = append(ordered, &outGroup{})
		}
		for _, og := range ordered {
			row := make([]sqltypes.Value, 0, len(n.GroupExprs)+len(n.Aggs))
			for j := range n.GroupExprs {
				if inSet[j] && len(og.members) > 0 {
					row = append(row, og.members[0].key[req.groupKey[j]])
				} else {
					row = append(row, sqltypes.Null(n.GroupExprs[j].Type().Kind))
				}
			}
			for ai := range req.aggs {
				sp := &req.aggs[ai]
				if sp.def == nil { // GROUPING
					g := int64(1)
					if inSet[sp.call.KeyIndex] {
						g = 0
					}
					row = append(row, sqltypes.NewInt(g))
					continue
				}
				switch len(og.members) {
				case 0:
					row = append(row, sp.def.New(sp.argTypes).Result())
				case 1:
					row = append(row, og.members[0].states[ai].Result())
				default:
					// Derive the coarser group by merging finer states in
					// ascending first-row order; gated on derivExact.
					st := sp.def.New(sp.argTypes)
					for _, m := range og.members {
						if err := st.Merge(m.states[ai]); err != nil {
							return nil, fmt.Errorf("rollup derivation merge: %w", err)
						}
					}
					row = append(row, st.Result())
				}
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func sortGroups(gs []*group) {
	// Map iteration order is random; sort by first qualifying row.
	sort.Slice(gs, func(a, b int) bool { return gs[a].order < gs[b].order })
}
