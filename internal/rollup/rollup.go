// Package rollup materializes a cube lattice of aggregate states over
// base tables, in the spirit of Gray et al.'s Data Cube: each lattice
// node holds per-group fn.AggState values (not finalized results) for
// one (base table, grouping-key set, aggregate list, row predicate)
// combination, and coarser grouping sets are derived from finer nodes
// by merging states instead of rescanning base rows. The lattice
// implements exec.RollupProvider: the executor consults it before
// every Aggregate node, so plain GROUP BY dashboards, measure
// evaluation contexts (whose expansion is an Aggregate under a
// key-pinning Filter), AT (ALL …) contexts, and ROLLUP queries are all
// served in O(groups) once materialized.
//
// Maintenance: INSERT deltas are folded into exactly-mergeable nodes
// in place (each group's Add stream stays in global row order, so the
// states are bit-identical to a serial rescan); order-sensitive
// aggregates (floating-point accumulation, AVG/VAR/STDDEV) only mark
// the touched groups dirty and are rebuilt lazily in one pass on next
// touch. TRUNCATE resets nodes; DDL drops them. The lattice is derived
// state: it is never logged to the WAL and rebuilds naturally from the
// recovered store after a crash.
//
// The correctness bar is bit-identity with direct execution under
// arbitrary query/mutation interleavings; the differential
// mutation-replay suite in msql/rollup_differential_test.go enforces
// it.
package rollup

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// Defaults bounding lattice memory: more nodes than maxNodes evicts the
// least recently used; a node exceeding maxGroupsPerNode disables
// itself (the key set is too fine to be worth materializing).
const (
	defaultMaxNodes         = 64
	defaultMaxGroupsPerNode = 1 << 16
)

type counters struct {
	hits            atomic.Int64
	misses          atomic.Int64
	builds          atomic.Int64
	rebuilds        atomic.Int64
	incrementalRows atomic.Int64
	invalidations   atomic.Int64
}

// Counters is a snapshot of lattice activity. Hits/Misses count
// TryAggregate outcomes; Builds counts node creations; Rebuilds counts
// dirty groups rebuilt lazily; IncrementalRows counts delta rows folded
// into exactly-mergeable nodes in place; Invalidations counts truncate
// resets and DDL drops. Nodes/Groups/DirtyGroups are point-in-time
// gauges.
type Counters struct {
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	Builds          int64 `json:"builds"`
	Rebuilds        int64 `json:"rebuilds"`
	IncrementalRows int64 `json:"incremental_rows"`
	Invalidations   int64 `json:"invalidations"`
	Nodes           int64 `json:"nodes"`
	Groups          int64 `json:"groups"`
	DirtyGroups     int64 `json:"dirty_groups"`
}

// NodeInfo describes one lattice node for introspection
// (msql_stats.rollups).
type NodeInfo struct {
	Table    string
	Keys     string
	Aggs     string
	Groups   int
	Dirty    int
	RowsSeen int
	Exact    bool
	Disabled bool
}

// Lattice is the cube lattice. It is safe for concurrent use; the
// zero value is not usable, construct with New.
type Lattice struct {
	mu       sync.Mutex
	nodes    map[string]*node
	useSeq   int64
	maxNodes int
	maxGrps  int
	c        counters
}

// New returns an empty lattice with default memory bounds.
func New() *Lattice {
	return NewWithLimits(defaultMaxNodes, defaultMaxGroupsPerNode)
}

// NewWithLimits returns an empty lattice with explicit bounds on node
// count (LRU-evicted beyond it) and groups per node (a node crossing it
// disables itself).
func NewWithLimits(maxNodes, maxGroupsPerNode int) *Lattice {
	if maxNodes <= 0 {
		maxNodes = defaultMaxNodes
	}
	if maxGroupsPerNode <= 0 {
		maxGroupsPerNode = defaultMaxGroupsPerNode
	}
	return &Lattice{
		nodes:    map[string]*node{},
		maxNodes: maxNodes,
		maxGrps:  maxGroupsPerNode,
	}
}

// TryAggregate implements exec.RollupProvider. It never returns an
// error for lattice-internal failures — those disable the node and
// miss, so the executor's direct path stays authoritative for error
// behavior; the only errors surfaced are ones the direct path would
// raise identically.
func (l *Lattice) TryAggregate(n *plan.Aggregate, eval func(plan.Expr) (sqltypes.Value, error)) ([][]sqltypes.Value, bool, error) {
	req, ok := analyze(n)
	if !ok {
		l.c.misses.Add(1)
		return nil, false, nil
	}

	// Resolve the per-call values before touching the node: guards,
	// selection values, and row-independent conjuncts all come from the
	// calling statement's scope. Evaluation failures fall back to the
	// direct path so error behavior is decided there.
	empty := false
	for _, ce := range req.consts {
		v, err := eval(ce)
		if err != nil {
			l.c.misses.Add(1)
			return nil, false, nil
		}
		if !v.IsTrue() {
			empty = true
		}
	}
	var active []activeTerm
	for _, t := range req.terms {
		inert := false
		for _, g := range t.guards {
			v, err := eval(g)
			if err != nil {
				l.c.misses.Add(1)
				return nil, false, nil
			}
			if v.IsTrue() {
				inert = true
				break
			}
		}
		if inert {
			continue
		}
		v, err := eval(t.rhs)
		if err != nil {
			l.c.misses.Add(1)
			return nil, false, nil
		}
		active = append(active, activeTerm{key: t.key, val: v, eq: t.eq})
	}

	// Deriving a coarser grouping than the node's key set merges states
	// of row-wise interleaved groups, which only derivation-exact
	// aggregates reproduce bit for bit. Merging happens whenever some
	// node key column is neither pinned by an active term nor part of
	// the emitted grouping set.
	if !req.derivExact && needsMerge(req, active) {
		l.c.misses.Add(1)
		return nil, false, nil
	}

	nd := l.nodeFor(req)
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.disabled {
		l.c.misses.Add(1)
		return nil, false, nil
	}
	rows := nd.src.Rows()
	if err := nd.sync(rows, &l.c); err != nil {
		nd.disabled = true
		nd.groups = nil
		l.c.misses.Add(1)
		return nil, false, nil
	}
	if nd.disabled { // group cap crossed during sync
		l.c.misses.Add(1)
		return nil, false, nil
	}
	if err := nd.rebuildDirty(rows, &l.c); err != nil {
		nd.disabled = true
		nd.groups = nil
		l.c.misses.Add(1)
		return nil, false, nil
	}
	out, err := nd.answer(req, active, empty)
	if err != nil {
		nd.disabled = true
		nd.groups = nil
		l.c.misses.Add(1)
		return nil, false, nil
	}
	l.c.hits.Add(1)
	return out, true, nil
}

// needsMerge reports whether answering req requires merging node
// groups: true when any grouping set leaves some node key column
// unconstrained (not pinned by an active term, not in the set).
func needsMerge(req *request, active []activeTerm) bool {
	pinned := map[int]bool{}
	for _, t := range active {
		pinned[t.key] = true
	}
	for _, set := range req.n.Sets {
		covered := 0
		seen := map[int]bool{}
		for k := range pinned {
			seen[k] = true
			covered++
		}
		for _, j := range set {
			if !seen[req.groupKey[j]] {
				seen[req.groupKey[j]] = true
				covered++
			}
		}
		if covered < len(req.keys) {
			return true
		}
	}
	return false
}

// nodeFor finds or creates the node for req, evicting the least
// recently used node beyond the cap.
func (l *Lattice) nodeFor(req *request) *node {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.useSeq++
	if nd, ok := l.nodes[req.nodeKey]; ok {
		nd.lastUse = l.useSeq
		return nd
	}
	if len(l.nodes) >= l.maxNodes {
		var lruKey string
		var lru *node
		for k, nd := range l.nodes {
			if lru == nil || nd.lastUse < lru.lastUse {
				lruKey, lru = k, nd
			}
		}
		delete(l.nodes, lruKey)
	}
	nd := newNode(req, l.maxGrps)
	nd.lastUse = l.useSeq
	l.nodes[req.nodeKey] = nd
	l.c.builds.Add(1)
	return nd
}

func (l *Lattice) nodesFor(table string) []*node {
	table = strings.ToLower(table)
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []*node
	for _, nd := range l.nodes {
		if nd.srcName == table {
			out = append(out, nd)
		}
	}
	return out
}

// NotifyMutation folds freshly inserted rows of table into its nodes
// eagerly (exactly-mergeable nodes update states in place; others mark
// touched groups dirty). The engine calls it synchronously after every
// INSERT applies, so a node can never answer from a shorter prefix
// than the statement that just committed.
func (l *Lattice) NotifyMutation(table string) {
	for _, nd := range l.nodesFor(table) {
		nd.mu.Lock()
		if !nd.disabled {
			if err := nd.sync(nd.src.Rows(), &l.c); err != nil {
				nd.disabled = true
				nd.groups = nil
			}
		}
		nd.mu.Unlock()
	}
}

// NotifyTruncate resets every node over table. Called synchronously
// after TRUNCATE applies, before any subsequent statement can insert
// replacement rows (a pure length check could miss a truncate-then-
// refill that restores the old row count).
func (l *Lattice) NotifyTruncate(table string) {
	for _, nd := range l.nodesFor(table) {
		nd.mu.Lock()
		if !nd.disabled {
			nd.resetLocked()
			l.c.invalidations.Add(1)
		}
		nd.mu.Unlock()
	}
}

// NotifyDDL drops every node over table: after DROP or CREATE OR
// REPLACE the old storage instance is unreachable and its materialized
// state is garbage.
func (l *Lattice) NotifyDDL(table string) {
	table = strings.ToLower(table)
	l.mu.Lock()
	defer l.mu.Unlock()
	for k, nd := range l.nodes {
		if nd.srcName == table {
			delete(l.nodes, k)
			l.c.invalidations.Add(1)
		}
	}
}

// Reset drops all nodes.
func (l *Lattice) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for k := range l.nodes {
		delete(l.nodes, k)
	}
}

// Stats returns an activity snapshot including point-in-time gauges.
func (l *Lattice) Stats() Counters {
	c := Counters{
		Hits:            l.c.hits.Load(),
		Misses:          l.c.misses.Load(),
		Builds:          l.c.builds.Load(),
		Rebuilds:        l.c.rebuilds.Load(),
		IncrementalRows: l.c.incrementalRows.Load(),
		Invalidations:   l.c.invalidations.Load(),
	}
	l.mu.Lock()
	nodes := make([]*node, 0, len(l.nodes))
	for _, nd := range l.nodes {
		nodes = append(nodes, nd)
	}
	l.mu.Unlock()
	for _, nd := range nodes {
		nd.mu.Lock()
		c.Nodes++
		c.Groups += int64(len(nd.groups))
		c.DirtyGroups += int64(nd.nDirty)
		nd.mu.Unlock()
	}
	return c
}

// Snapshot lists the lattice nodes for introspection, ordered by table
// then key signature for stable output.
func (l *Lattice) Snapshot() []NodeInfo {
	l.mu.Lock()
	nodes := make([]*node, 0, len(l.nodes))
	for _, nd := range l.nodes {
		nodes = append(nodes, nd)
	}
	l.mu.Unlock()
	infos := make([]NodeInfo, 0, len(nodes))
	for _, nd := range nodes {
		nd.mu.Lock()
		keySigs := make([]string, len(nd.keys))
		for i, k := range nd.keys {
			keySigs[i] = k.String()
		}
		aggSigs := make([]string, len(nd.aggs))
		for i := range nd.aggs {
			aggSigs[i] = nd.aggs[i].sig
		}
		infos = append(infos, NodeInfo{
			Table:    nd.srcName,
			Keys:     strings.Join(keySigs, ", "),
			Aggs:     strings.Join(aggSigs, ", "),
			Groups:   len(nd.groups),
			Dirty:    nd.nDirty,
			RowsSeen: nd.rowsSeen,
			Exact:    nd.exact,
			Disabled: nd.disabled,
		})
		nd.mu.Unlock()
	}
	sort.Slice(infos, func(a, b int) bool {
		if infos[a].Table != infos[b].Table {
			return infos[a].Table < infos[b].Table
		}
		if infos[a].Keys != infos[b].Keys {
			return infos[a].Keys < infos[b].Keys
		}
		return infos[a].Aggs < infos[b].Aggs
	})
	return infos
}
