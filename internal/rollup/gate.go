package rollup

import (
	"fmt"
	"sort"
	"strings"

	"github.com/measures-sql/msql/internal/catalog"
	"github.com/measures-sql/msql/internal/fn"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// The eligibility gate decides whether an Aggregate node can be answered
// from materialized lattice state. It mirrors the spirit of the
// partition-mergeable gate in internal/exec/partial.go but is stricter,
// because a lattice node outlives the statement that built it: every
// expression folded into a node must be self-contained (no correlated
// references, parameters, or subqueries) and deterministic, and every
// filter conjunct must either be a per-call group selection (an equality
// or IS NOT DISTINCT FROM pin against a row-independent value — the
// shape measure expansion emits for evaluation contexts), a fixed row
// predicate that can be baked into the node, or a row-independent
// condition evaluated once per call.

// aggSpec is one aggregate of a lattice node: the original call (for
// GROUPING metadata), its definition, the argument expressions rebased
// onto the base-table row, and the argument types the direct executor
// would use (so states are created identically).
type aggSpec struct {
	call     plan.AggCall
	def      *fn.Agg // nil for GROUPING
	args     []plan.Expr
	argTypes []sqltypes.Type
	sig      string
}

// term is one group-selection filter conjunct: key expression index,
// the row-independent comparison value, and optional row-independent
// guards (the GROUPING <> 0 disjuncts ROLLUP contexts emit); when any
// guard evaluates TRUE the term imposes no constraint.
type term struct {
	key    int
	rhs    plan.Expr
	guards []plan.Expr
	eq     bool // true: SQL `=` (NULL never matches); false: IS NOT DISTINCT FROM
}

// request is the analyzed form of an eligible Aggregate node.
type request struct {
	src      *catalog.BaseTable
	keys     []plan.Expr // rebased key expressions, sorted by signature
	keySigs  []string
	aggs     []aggSpec
	preds    []plan.Expr // rebased row predicates, original order
	terms    []term
	consts   []plan.Expr // wholly row-independent conjuncts
	groupKey []int       // GroupExprs[j] -> index into keys
	// exact: every aggregate merges exactly (fn.MergesExactly), so the
	// node maintains states in place on INSERT; otherwise mutations mark
	// touched groups dirty for lazy rebuild.
	exact bool
	// derivExact: every aggregate tolerates merging states of row-wise
	// interleaved groups (deriving a coarser grouping from a finer one),
	// which is stronger than chunk-merge exactness: chunk merges combine
	// contiguous row ranges, derivation merges interleaved ones, so
	// order-tie-breaking aggregates (ARG_MAX/ARG_MIN) and float
	// accumulators are excluded.
	derivExact bool
	n          *plan.Aggregate
	nodeKey    string
}

// flatSrc is an Aggregate input flattened to its base table: the current
// output columns and accumulated filter predicates, both rewritten as
// expressions over the raw base-table row.
type flatSrc struct {
	src   *catalog.BaseTable
	exprs []plan.Expr
	preds []plan.Expr // innermost Filter first
}

func flatten(n plan.Node) (*flatSrc, bool) {
	switch t := n.(type) {
	case *plan.Scan:
		bt, ok := t.Source.(*catalog.BaseTable)
		if !ok {
			return nil, false
		}
		cols := t.Sch.Cols
		exprs := make([]plan.Expr, len(cols))
		for i, c := range cols {
			exprs[i] = &plan.ColRef{Index: i, Name: c.Name, Typ: c.Typ}
		}
		return &flatSrc{src: bt, exprs: exprs}, true
	case *plan.Filter:
		f, ok := flatten(t.Input)
		if !ok {
			return nil, false
		}
		p, ok := substitute(t.Pred, f.exprs)
		if !ok {
			return nil, false
		}
		f.preds = append(f.preds, p)
		return f, true
	case *plan.Project:
		f, ok := flatten(t.Input)
		if !ok {
			return nil, false
		}
		exprs := make([]plan.Expr, len(t.Exprs))
		for i := range t.Exprs {
			e, ok := substitute(t.Exprs[i].Expr, f.exprs)
			if !ok {
				return nil, false
			}
			exprs[i] = e
		}
		f.exprs = exprs
		return f, true
	default:
		return nil, false
	}
}

// substitute rewrites e so that every ColRef resolves through the
// mapping m (the enclosing projection's expressions over the base row).
// Plan expressions are immutable, so rewritten nodes are fresh copies.
func substitute(e plan.Expr, m []plan.Expr) (plan.Expr, bool) {
	switch e := e.(type) {
	case *plan.ColRef:
		if e.Index < 0 || e.Index >= len(m) {
			return nil, false
		}
		return m[e.Index], true
	case *plan.CorrRef, *plan.Lit, *plan.Param:
		return e, true
	case *plan.Call:
		args := make([]plan.Expr, len(e.Args))
		for i, a := range e.Args {
			na, ok := substitute(a, m)
			if !ok {
				return nil, false
			}
			args[i] = na
		}
		return &plan.Call{Name: e.Name, Args: args, Typ: e.Typ, Pos: e.Pos}, true
	case *plan.And:
		l, ok := substitute(e.L, m)
		if !ok {
			return nil, false
		}
		r, ok := substitute(e.R, m)
		if !ok {
			return nil, false
		}
		return &plan.And{L: l, R: r}, true
	case *plan.Or:
		l, ok := substitute(e.L, m)
		if !ok {
			return nil, false
		}
		r, ok := substitute(e.R, m)
		if !ok {
			return nil, false
		}
		return &plan.Or{L: l, R: r}, true
	case *plan.Not:
		x, ok := substitute(e.X, m)
		if !ok {
			return nil, false
		}
		return &plan.Not{X: x}, true
	case *plan.IsNull:
		x, ok := substitute(e.X, m)
		if !ok {
			return nil, false
		}
		return &plan.IsNull{X: x, Neg: e.Neg}, true
	case *plan.IsDistinct:
		l, ok := substitute(e.L, m)
		if !ok {
			return nil, false
		}
		r, ok := substitute(e.R, m)
		if !ok {
			return nil, false
		}
		return &plan.IsDistinct{L: l, R: r, Neg: e.Neg}, true
	case *plan.InList:
		x, ok := substitute(e.X, m)
		if !ok {
			return nil, false
		}
		list := make([]plan.Expr, len(e.List))
		for i, item := range e.List {
			ni, ok := substitute(item, m)
			if !ok {
				return nil, false
			}
			list[i] = ni
		}
		return &plan.InList{X: x, List: list, Neg: e.Neg}, true
	case *plan.Case:
		whens := make([]plan.CaseWhen, len(e.Whens))
		for i, w := range e.Whens {
			c, ok := substitute(w.Cond, m)
			if !ok {
				return nil, false
			}
			t, ok := substitute(w.Then, m)
			if !ok {
				return nil, false
			}
			whens[i] = plan.CaseWhen{Cond: c, Then: t}
		}
		var els plan.Expr
		if e.Else != nil {
			var ok bool
			els, ok = substitute(e.Else, m)
			if !ok {
				return nil, false
			}
		}
		return &plan.Case{Whens: whens, Else: els, Typ: e.Typ}, true
	case *plan.Cast:
		x, ok := substitute(e.X, m)
		if !ok {
			return nil, false
		}
		return &plan.Cast{X: x, Kind: e.Kind}, true
	default:
		// Subquery, AggRef, or an unknown form: bail conservatively.
		return nil, false
	}
}

// selfContained reports whether e depends only on the current row:
// no correlated references, parameters, subqueries, or volatile calls.
// Such an expression evaluates identically inside any statement, which
// is what lets the lattice bake it into long-lived materialized state.
func selfContained(e plan.Expr) bool {
	ok := true
	plan.WalkExprs(e, func(x plan.Expr) {
		switch x.(type) {
		case *plan.CorrRef, *plan.Param, *plan.Subquery, *plan.AggRef:
			ok = false
		}
	})
	return ok && plan.ExprParallelSafe(e)
}

// rowIndependent reports whether e reads nothing from the current row,
// so it has one value per statement execution (correlated references
// and parameters are fine — the executor callback resolves them).
func rowIndependent(e plan.Expr) bool {
	ok := true
	plan.WalkExprs(e, func(x plan.Expr) {
		switch x.(type) {
		case *plan.ColRef, *plan.Subquery, *plan.AggRef:
			ok = false
		}
	})
	return ok && plan.ExprParallelSafe(e)
}

func splitAnd(e plan.Expr, out []plan.Expr) []plan.Expr {
	if a, ok := e.(*plan.And); ok {
		return splitAnd(a.R, splitAnd(a.L, out))
	}
	return append(out, e)
}

// keyTermKindOK enforces comparable kinds between a key expression and
// its comparison value, so group matching via sqltypes.NotDistinct can
// never disagree with the executor's row-at-a-time comparison. Float
// keys are rejected outright (0.0 and -0.0 compare equal but have
// distinct grouping identities).
func keyTermKindOK(keyKind, rhsKind sqltypes.Kind) bool {
	switch keyKind {
	case sqltypes.KindInt:
		return rhsKind == sqltypes.KindInt || rhsKind == sqltypes.KindFloat || rhsKind == sqltypes.KindUnknown
	case sqltypes.KindString, sqltypes.KindDate, sqltypes.KindBool:
		return rhsKind == keyKind || rhsKind == sqltypes.KindUnknown
	default:
		return false
	}
}

// pendingTerm is a filter conjunct classified as a group selection but
// not yet resolved to a key index.
type pendingTerm struct {
	keyExpr plan.Expr
	rhs     plan.Expr
	guards  []plan.Expr
	eq      bool
}

// classifyTerm sorts one filter conjunct into its gate category.
// Returns (term, isKeyTerm, ok).
func classifyTerm(e plan.Expr, guards []plan.Expr) (pendingTerm, bool, bool) {
	switch t := e.(type) {
	case *plan.IsDistinct:
		if !t.Neg {
			return pendingTerm{}, false, false
		}
		if selfContained(t.L) && rowIndependent(t.R) && keyTermKindOK(t.L.Type().Kind, t.R.Type().Kind) {
			return pendingTerm{keyExpr: t.L, rhs: t.R, guards: guards, eq: false}, true, true
		}
		if selfContained(t.R) && rowIndependent(t.L) && keyTermKindOK(t.R.Type().Kind, t.L.Type().Kind) {
			return pendingTerm{keyExpr: t.R, rhs: t.L, guards: guards, eq: false}, true, true
		}
		return pendingTerm{}, false, false
	case *plan.Call:
		if t.Name != "=" || len(t.Args) != 2 {
			return pendingTerm{}, false, false
		}
		l, r := t.Args[0], t.Args[1]
		if selfContained(l) && rowIndependent(r) && keyTermKindOK(l.Type().Kind, r.Type().Kind) {
			return pendingTerm{keyExpr: l, rhs: r, guards: guards, eq: true}, true, true
		}
		if selfContained(r) && rowIndependent(l) && keyTermKindOK(r.Type().Kind, l.Type().Kind) {
			return pendingTerm{keyExpr: r, rhs: l, guards: guards, eq: true}, true, true
		}
		return pendingTerm{}, false, false
	case *plan.Or:
		// Or(guard, term) with a row-independent guard: when the guard is
		// TRUE the disjunction holds for every row (the term is inert);
		// otherwise the disjunction reduces to the term for filtering
		// purposes, because a non-TRUE guard never turns a non-TRUE term
		// into TRUE. ROLLUP evaluation contexts emit this shape with a
		// GROUPING(d) <> 0 guard.
		if rowIndependent(t.L) {
			return classifyTerm(t.R, append(guards, t.L))
		}
		if rowIndependent(t.R) {
			return classifyTerm(t.L, append(guards, t.R))
		}
		return pendingTerm{}, false, false
	default:
		return pendingTerm{}, false, false
	}
}

// exprSig is the canonical signature of a rebased expression: structure
// plus result kind. Two expressions with equal signatures over the same
// base table are semantically identical, which is what node identity and
// key matching rely on.
func exprSig(e plan.Expr) string {
	return fmt.Sprintf("%d:%s", e.Type().Kind, e.String())
}

// derivationExact reports whether merging the aggregate's states across
// row-wise interleaved groups reproduces serial accumulation bit for
// bit, provided the merge happens in ascending first-row order. COUNT
// and non-float SUM are commutative (modulo overflow, the same judgment
// fn.ExactMerge makes); non-float MIN/MAX ties are value-identical so
// tie-breaking order cannot show; ANY_VALUE keeps the receiver, and the
// ascending merge order makes the receiver the globally first row.
// ARG_MAX/ARG_MIN break ties by row order across different expressions,
// which interleaved merging cannot reproduce, and float accumulation is
// order-sensitive outright.
func derivationExact(name string, argTypes []sqltypes.Type) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "ANY_VALUE":
		return true
	case "SUM", "MIN", "MAX":
		return len(argTypes) > 0 && argTypes[0].Kind != sqltypes.KindFloat
	default:
		return false
	}
}

// analyze runs the eligibility gate over an Aggregate node, returning
// the lattice request or (nil, false) when the node must fall back to
// direct hash aggregation.
func analyze(n *plan.Aggregate) (*request, bool) {
	if len(n.Sets) == 0 {
		return nil, false
	}
	f, ok := flatten(n.Input)
	if !ok {
		return nil, false
	}

	req := &request{src: f.src, n: n, exact: true, derivExact: true}

	// Aggregates: rebased argument expressions must be self-contained;
	// DISTINCT / WITHIN DISTINCT / FILTER need the raw row stream.
	for _, call := range n.Aggs {
		if call.Name == "GROUPING" {
			if call.KeyIndex < 0 || call.KeyIndex >= len(n.GroupExprs) {
				return nil, false
			}
			req.aggs = append(req.aggs, aggSpec{call: call, sig: fmt.Sprintf("GROUPING@%d", call.KeyIndex)})
			continue
		}
		if call.Distinct || len(call.WithinDistinct) > 0 || call.Filter != nil {
			return nil, false
		}
		def, ok := fn.LookupAgg(call.Name)
		if !ok {
			return nil, false
		}
		sp := aggSpec{call: call, def: def}
		sigParts := []string{strings.ToUpper(call.Name)}
		if call.Star {
			sigParts = append(sigParts, "*")
		}
		for _, a := range call.Args {
			ra, ok := substitute(a, f.exprs)
			if !ok || !selfContained(ra) {
				return nil, false
			}
			sp.args = append(sp.args, ra)
			sp.argTypes = append(sp.argTypes, a.Type())
			sigParts = append(sigParts, exprSig(ra))
		}
		sp.sig = strings.Join(sigParts, ",")
		req.aggs = append(req.aggs, sp)
		if !def.MergesExactly(sp.argTypes) {
			req.exact = false
		}
		if !derivationExact(call.Name, sp.argTypes) {
			req.derivExact = false
		}
	}

	// Filter conjuncts, innermost Filter first, left-to-right within
	// each And chain (matching the executor's short-circuit order for
	// the row predicates that survive into the node).
	var pending []pendingTerm
	for _, pred := range f.preds {
		for _, conj := range splitAnd(pred, nil) {
			if rowIndependent(conj) {
				req.consts = append(req.consts, conj)
				continue
			}
			if pt, isKey, ok := classifyTerm(conj, nil); ok && isKey {
				pending = append(pending, pt)
				continue
			}
			// A fixed row predicate bakes into the node identity; a
			// guarded one cannot (the guard's value varies per call,
			// which would need a different materialization each time).
			if selfContained(conj) {
				req.preds = append(req.preds, conj)
				continue
			}
			return nil, false
		}
	}

	// Group expressions must be self-contained after rebasing.
	groupExprs := make([]plan.Expr, len(n.GroupExprs))
	for j, g := range n.GroupExprs {
		rg, ok := substitute(g, f.exprs)
		if !ok || !selfContained(rg) {
			return nil, false
		}
		groupExprs[j] = rg
	}

	// Key set: group expressions plus pinned filter columns, deduplicated
	// by signature and sorted so that equivalent requests from different
	// query texts share one node.
	sigIndex := map[string]int{}
	addKey := func(e plan.Expr) int {
		sig := exprSig(e)
		if i, ok := sigIndex[sig]; ok {
			return i
		}
		i := len(req.keys)
		sigIndex[sig] = i
		req.keys = append(req.keys, e)
		req.keySigs = append(req.keySigs, sig)
		return i
	}
	for _, g := range groupExprs {
		addKey(g)
	}
	for i := range pending {
		addKey(pending[i].keyExpr)
	}
	perm := make([]int, len(req.keys))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return req.keySigs[perm[a]] < req.keySigs[perm[b]] })
	sortedKeys := make([]plan.Expr, len(perm))
	sortedSigs := make([]string, len(perm))
	pos := make([]int, len(perm)) // old index -> sorted index
	for ni, oi := range perm {
		sortedKeys[ni] = req.keys[oi]
		sortedSigs[ni] = req.keySigs[oi]
		pos[oi] = ni
	}
	req.keys, req.keySigs = sortedKeys, sortedSigs

	req.groupKey = make([]int, len(groupExprs))
	for j, g := range groupExprs {
		req.groupKey[j] = pos[sigIndex[exprSig(g)]]
	}
	for _, pt := range pending {
		req.terms = append(req.terms, term{
			key:    pos[sigIndex[exprSig(pt.keyExpr)]],
			rhs:    pt.rhs,
			guards: pt.guards,
			eq:     pt.eq,
		})
	}

	// Node identity: base table instance, key set, aggregate list, and
	// baked-in row predicates.
	var sb strings.Builder
	fmt.Fprintf(&sb, "%p|%s", f.src, strings.ToLower(f.src.Name()))
	sb.WriteString("|k:")
	sb.WriteString(strings.Join(req.keySigs, ";"))
	sb.WriteString("|a:")
	for i := range req.aggs {
		sb.WriteString(req.aggs[i].sig)
		sb.WriteByte(';')
	}
	sb.WriteString("|p:")
	predSigs := make([]string, len(req.preds))
	for i, p := range req.preds {
		predSigs[i] = exprSig(p)
	}
	sb.WriteString(strings.Join(predSigs, ";"))
	req.nodeKey = sb.String()
	return req, true
}
