package rollup_test

// Staleness and invalidation tests for the rollup lattice, driven
// through the engine so every notification path under test is the one
// production statements take: dirty-marking on order-sensitive
// aggregates, TRUNCATE resets (including the truncate-then-refill
// hazard a length-based delta check would miss), DDL node drops, and
// crash recovery rebuilding the lattice from the recovered store.

import (
	"fmt"
	"strings"
	"testing"

	"github.com/measures-sql/msql/internal/engine"
	"github.com/measures-sql/msql/internal/wal"
)

func newRollupSession(t *testing.T) *engine.Session {
	t.Helper()
	s := engine.New()
	s.SetRollups(true)
	mustExec(t, s, `CREATE TABLE Sales (region VARCHAR, amount INTEGER)`)
	mustExec(t, s, `INSERT INTO Sales VALUES ('east', 10), ('west', 20), ('east', 30)`)
	return s
}

func mustExec(t *testing.T, s *engine.Session, sql string) []*engine.Result {
	t.Helper()
	res, err := s.Execute(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

// queryStrings runs one query and renders its rows "a|b" per row.
func queryStrings(t *testing.T, s *engine.Session, sql string) []string {
	t.Helper()
	res := mustExec(t, s, sql)
	rows := res[len(res)-1].Rows
	out := make([]string, len(rows))
	for i, row := range rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		out[i] = strings.Join(cells, "|")
	}
	return out
}

// TestDirtyMarkingOnOrderSensitiveAggregates: AVG states do not merge
// exactly, so an INSERT must not fold into them in place — it marks the
// touched groups dirty, and the next query rebuilds them from base
// rows.
func TestDirtyMarkingOnOrderSensitiveAggregates(t *testing.T) {
	s := newRollupSession(t)
	q := `SELECT region, AVG(amount) FROM Sales GROUP BY region`
	queryStrings(t, s, q)
	st := s.RollupStats()
	if st.Hits == 0 {
		t.Fatalf("AVG query missed the lattice entirely: %+v", st)
	}
	if st.DirtyGroups != 0 {
		t.Fatalf("freshly built node has %d dirty groups", st.DirtyGroups)
	}
	mustExec(t, s, `INSERT INTO Sales VALUES ('east', 50)`)
	st = s.RollupStats()
	if st.DirtyGroups == 0 {
		t.Fatalf("INSERT into an order-sensitive node marked nothing dirty: %+v", st)
	}
	if st.IncrementalRows != 0 {
		t.Fatalf("order-sensitive node absorbed %d rows in place", st.IncrementalRows)
	}
	got := queryStrings(t, s, q)
	want := []string{"east|30.0", "west|20.0"} // (10+30+50)/3, 20/1
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("post-insert AVG rows = %v, want %v", got, want)
		}
	}
	st = s.RollupStats()
	if st.DirtyGroups != 0 {
		t.Fatalf("%d dirty groups survived the rebuilding query", st.DirtyGroups)
	}
	if st.Rebuilds == 0 {
		t.Fatalf("no rebuilds recorded: %+v", st)
	}
}

// TestExactMergeableIncrementalMaintenance: SUM/COUNT over integers
// fold INSERT deltas into their states in place — no dirty groups, no
// rebuilds, and the answer reflects the delta immediately.
func TestExactMergeableIncrementalMaintenance(t *testing.T) {
	s := newRollupSession(t)
	q := `SELECT region, SUM(amount), COUNT(*) FROM Sales GROUP BY region`
	queryStrings(t, s, q)
	mustExec(t, s, `INSERT INTO Sales VALUES ('west', 5), ('north', 7)`)
	st := s.RollupStats()
	if st.IncrementalRows == 0 {
		t.Fatalf("no incremental rows folded in place: %+v", st)
	}
	if st.DirtyGroups != 0 {
		t.Fatalf("exactly-mergeable node marked %d groups dirty", st.DirtyGroups)
	}
	got := queryStrings(t, s, q)
	want := []string{"east|40|2", "west|25|2", "north|7|1"}
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rows = %v, want %v", got, want)
		}
	}
	if st := s.RollupStats(); st.Rebuilds != 0 {
		t.Fatalf("exactly-mergeable maintenance triggered %d rebuilds", st.Rebuilds)
	}
}

// TestTruncateResetsNodes covers the refill hazard: TRUNCATE followed
// by an INSERT restoring the previous row count must not let the
// lattice answer from pre-truncate states.
func TestTruncateResetsNodes(t *testing.T) {
	s := newRollupSession(t)
	q := `SELECT region, SUM(amount) FROM Sales GROUP BY region`
	queryStrings(t, s, q)
	invalBefore := s.RollupStats().Invalidations
	mustExec(t, s, `TRUNCATE TABLE Sales`)
	st := s.RollupStats()
	if st.Invalidations == invalBefore {
		t.Fatalf("TRUNCATE recorded no invalidation: %+v", st)
	}
	if st.Groups != 0 {
		t.Fatalf("%d groups survived TRUNCATE", st.Groups)
	}
	// Refill to the same row count (3) with different values.
	mustExec(t, s, `INSERT INTO Sales VALUES ('east', 1), ('west', 2), ('east', 4)`)
	got := queryStrings(t, s, q)
	want := []string{"east|5", "west|2"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("post-refill rows = %v, want %v (stale pre-truncate states?)", got, want)
	}
	if s.RollupStats().Hits < 2 {
		t.Fatalf("post-refill query was not lattice-answered: %+v", s.RollupStats())
	}
}

// TestTruncateEmptyAnswer: between the reset and the refill the lattice
// must answer the empty table correctly (no groups at all for a keyed
// grouping; one synthesized row for a global aggregate).
func TestTruncateEmptyAnswer(t *testing.T) {
	s := newRollupSession(t)
	queryStrings(t, s, `SELECT region, SUM(amount) FROM Sales GROUP BY region`)
	mustExec(t, s, `TRUNCATE TABLE Sales`)
	if got := queryStrings(t, s, `SELECT region, SUM(amount) FROM Sales GROUP BY region`); len(got) != 0 {
		t.Fatalf("keyed grouping over empty table returned %v", got)
	}
	if got := queryStrings(t, s, `SELECT COUNT(*), SUM(amount) FROM Sales`); len(got) != 1 || got[0] != "0|NULL" {
		t.Fatalf("global aggregate over empty table returned %v, want [0|NULL]", got)
	}
}

// TestDDLInvalidation: DROP TABLE and CREATE OR REPLACE TABLE both
// detach the storage instance lattice nodes were built over; the nodes
// must be dropped, and queries against the replacement table must be
// answered from its (initially empty) data.
func TestDDLInvalidation(t *testing.T) {
	s := newRollupSession(t)
	queryStrings(t, s, `SELECT region, SUM(amount) FROM Sales GROUP BY region`)
	if st := s.RollupStats(); st.Nodes == 0 {
		t.Fatalf("no nodes materialized: %+v", st)
	}
	mustExec(t, s, `CREATE OR REPLACE TABLE Sales (region VARCHAR, amount INTEGER)`)
	if st := s.RollupStats(); st.Nodes != 0 {
		t.Fatalf("%d nodes survived CREATE OR REPLACE: %+v", st.Nodes, st)
	}
	mustExec(t, s, `INSERT INTO Sales VALUES ('south', 9)`)
	got := queryStrings(t, s, `SELECT region, SUM(amount) FROM Sales GROUP BY region`)
	if len(got) != 1 || got[0] != "'south'|9" {
		// Value.String quotes strings in SQL literal style only for
		// SQLLiteral; plain String does not — accept either rendering.
		if len(got) != 1 || got[0] != "south|9" {
			t.Fatalf("post-replace rows = %v", got)
		}
	}
	mustExec(t, s, `DROP TABLE Sales`)
	if st := s.RollupStats(); st.Nodes != 0 {
		t.Fatalf("%d nodes survived DROP TABLE", st.Nodes)
	}
}

// TestCrashRecoveryRebuildsLattice: the lattice is derived state and is
// never logged; after a fault-injected crash and recovery, a fresh
// lattice must rebuild from the recovered store and agree with direct
// execution.
func TestCrashRecoveryRebuildsLattice(t *testing.T) {
	dir := t.TempDir()
	s, err := engine.NewDurable(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	s.SetRollups(true)
	mustExec(t, s, `CREATE TABLE Sales (region VARCHAR, amount INTEGER)`)
	mustExec(t, s, `INSERT INTO Sales VALUES ('east', 10), ('west', 20)`)
	q := `SELECT region, SUM(amount) FROM Sales GROUP BY region`
	pre := queryStrings(t, s, q)
	if s.RollupStats().Hits == 0 {
		t.Fatal("lattice did not answer before the crash")
	}

	// Crash on the next append: the acknowledged state is the two rows
	// above; the failed insert below must not survive recovery.
	wal.SetCrashHook(wal.CrashAt(wal.CrashBeforeAppend, 1))
	if _, err := s.Execute(`INSERT INTO Sales VALUES ('east', 999)`); err == nil {
		t.Fatal("insert succeeded through an armed crash point")
	}
	wal.SetCrashHook(nil)
	s.CloseDurability()

	s2, err := engine.NewDurable(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer s2.CloseDurability()
	s2.SetRollups(true)
	if st := s2.RollupStats(); st.Nodes != 0 || st.Hits != 0 {
		t.Fatalf("recovered session started with lattice state: %+v", st)
	}
	got := queryStrings(t, s2, q)
	if fmt.Sprint(got) != fmt.Sprint(pre) {
		t.Fatalf("recovered lattice answer %v != pre-crash %v", got, pre)
	}
	st := s2.RollupStats()
	if st.Hits == 0 || st.Builds == 0 {
		t.Fatalf("recovered query was not lattice-answered: %+v", st)
	}
	// And the lattice keeps maintaining itself on the recovered store.
	mustExec(t, s2, `INSERT INTO Sales VALUES ('west', 1)`)
	got = queryStrings(t, s2, q)
	want := []string{"east|10", "west|21"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("post-recovery maintenance rows = %v, want %v", got, want)
	}
}
