package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// bigFilter wraps bigScan(n) in a Filter so execution walks a per-row
// loop with cancellation ticks.
func bigFilter(n int) *plan.Filter {
	return &plan.Filter{
		Input: bigScan(n),
		Pred: &plan.Call{Name: "<", Typ: boolT(),
			Args: []plan.Expr{col(1, "b"), &plan.Lit{Val: sqltypes.NewInt(40)}}},
	}
}

func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	settings := DefaultSettings()
	settings.Workers = 1
	_, err := RunContext(ctx, bigFilter(5000), settings)
	if !errors.Is(err, CodeCanceled) {
		t.Fatalf("want CodeCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error must unwrap to context.Canceled, got %v", err)
	}
	var ee *Error
	if !errors.As(err, &ee) {
		t.Fatalf("error must be *Error, got %T", err)
	}
	if ee.Code != CodeCanceled {
		t.Fatalf("Code = %v, want CodeCanceled", ee.Code)
	}
}

func TestRunContextCancelMidQuery(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			// The operator failpoint sleeps so the query is reliably
			// in flight when cancel fires.
			var once sync.Once
			SetFailPoint(FailOperator, func() error {
				once.Do(cancel)
				time.Sleep(2 * time.Millisecond)
				return nil
			})
			defer ClearFailPoints()
			settings := DefaultSettings()
			settings.Workers = workers
			_, err := RunContext(ctx, bigFilter(20000), settings)
			if !errors.Is(err, CodeCanceled) {
				t.Fatalf("want CodeCanceled, got %v", err)
			}
		})
	}
}

func TestRunContextTimeoutLimit(t *testing.T) {
	// No deadline on the context: the executor derives one from
	// Limits.Timeout. The operator failpoint outsleeps it.
	SetFailPoint(FailOperator, func() error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	defer ClearFailPoints()
	settings := DefaultSettings()
	settings.Workers = 1
	settings.Limits.Timeout = time.Millisecond
	_, err := RunContext(context.Background(), bigFilter(20000), settings)
	if !errors.Is(err, CodeTimeout) {
		t.Fatalf("want CodeTimeout, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error must unwrap to context.DeadlineExceeded, got %v", err)
	}
}

func TestMaxRowsTrip(t *testing.T) {
	settings := DefaultSettings()
	settings.Workers = 1
	settings.Limits.MaxRows = 100
	_, err := RunContext(context.Background(), bigFilter(5000), settings)
	if !errors.Is(err, CodeResourceExhausted) {
		t.Fatalf("want CodeResourceExhausted, got %v", err)
	}
	var ee *Error
	if !errors.As(err, &ee) || ee.Hint == "" {
		t.Fatalf("resource errors must carry a hint, got %v", err)
	}
}

func TestMaxMemBytesTrip(t *testing.T) {
	settings := DefaultSettings()
	settings.Workers = 1
	settings.Limits.MaxMemBytes = 256
	_, err := RunContext(context.Background(), bigFilter(5000), settings)
	if !errors.Is(err, CodeResourceExhausted) {
		t.Fatalf("want CodeResourceExhausted, got %v", err)
	}
}

func TestLimitsUntrippedUnchanged(t *testing.T) {
	want, err := Run(bigFilter(5000), DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	settings := DefaultSettings()
	settings.Limits = Limits{
		MaxRows: 1 << 40, MaxMemBytes: 1 << 40,
		MaxSubqueryEvals: 1 << 40, MaxExpansionDepth: 1 << 20,
	}
	got, err := RunContext(context.Background(), bigFilter(5000), settings)
	if err != nil {
		t.Fatalf("untripped limits must not fail: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("rows: got %d, want %d", len(got), len(want))
	}
}

func TestBudgetCounters(t *testing.T) {
	b := &budget{limits: Limits{MaxRows: 10, MaxMemBytes: 1000, MaxSubqueryEvals: 2, MaxExpansionDepth: 3}}
	if err := b.noteRows(10, 500); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if err := b.noteRows(1, 1); !errors.Is(err, CodeResourceExhausted) {
		t.Fatalf("row trip: got %v", err)
	}
	b2 := &budget{limits: Limits{MaxMemBytes: 100}}
	if err := b2.noteRows(1, 101); !errors.Is(err, CodeResourceExhausted) {
		t.Fatalf("mem trip: got %v", err)
	}
	b3 := &budget{limits: Limits{MaxSubqueryEvals: 2, MaxExpansionDepth: 3}}
	if err := b3.noteSubqueryEval(1); err != nil {
		t.Fatalf("eval 1: %v", err)
	}
	if err := b3.noteSubqueryEval(1); err != nil {
		t.Fatalf("eval 2: %v", err)
	}
	if err := b3.noteSubqueryEval(1); !errors.Is(err, CodeResourceExhausted) {
		t.Fatalf("eval trip: got %v", err)
	}
	if err := b3.noteSubqueryEval(4); !errors.Is(err, CodeResourceExhausted) {
		t.Fatalf("depth trip: got %v", err)
	}
	if err := (&budget{}).noteRows(1<<30, 1<<40); err != nil {
		t.Fatalf("zero limits mean unlimited: %v", err)
	}
}

func TestRowsBytesEstimate(t *testing.T) {
	if got := rowsBytes(nil); got != 0 {
		t.Fatalf("empty: %d", got)
	}
	rows := []Row{
		{sqltypes.NewInt(1), sqltypes.NewString("hello")},
		{sqltypes.NewInt(2), sqltypes.NewString("x")},
	}
	per := int64(bytesPerRow + 2*bytesPerValue + len("hello"))
	if got := rowsBytes(rows); got != per*2 {
		t.Fatalf("rowsBytes = %d, want %d", got, per*2)
	}
}

// TestMemoWaitCancel parks a waiter on an in-flight memo computation and
// cancels its context: the waiter must return promptly with CodeCanceled
// instead of blocking on the computing goroutine.
func TestMemoWaitCancel(t *testing.T) {
	cache := newMemoCache()
	sq := &plan.Subquery{}
	computing := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = cache.do(context.Background(), sq, "k", func(e *memoEntry) {
			close(computing)
			<-release
			e.scalar = sqltypes.NewInt(1)
		})
	}()
	<-computing
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := cache.do(ctx, sq, "k", func(e *memoEntry) {
		t.Error("waiter must not recompute")
	})
	if !errors.Is(err, CodeCanceled) {
		t.Fatalf("want CodeCanceled, got %v", err)
	}
	close(release)
	// After the computation finishes, a fresh lookup hits the cache.
	e, hit, err := cache.do(context.Background(), sq, "k", func(e *memoEntry) {
		t.Error("must be a cache hit")
	})
	if err != nil || !hit || e.scalar.I != 1 {
		t.Fatalf("post-release lookup: e=%v hit=%v err=%v", e, hit, err)
	}
}

// TestMemoComputePanicPoisons checks a panicking compute closes the entry
// so waiters are not stranded, and the panic still propagates.
func TestMemoComputePanicPoisons(t *testing.T) {
	cache := newMemoCache()
	sq := &plan.Subquery{}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic must propagate out of do")
			}
		}()
		_, _, _ = cache.do(context.Background(), sq, "k", func(e *memoEntry) {
			panic("boom")
		})
	}()
	e, hit, err := cache.do(context.Background(), sq, "k", func(e *memoEntry) {
		t.Error("poisoned entry must not recompute")
	})
	if err != nil || !hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	if !errors.Is(e.err, CodeRuntime) {
		t.Fatalf("poisoned entry error = %v, want CodeRuntime", e.err)
	}
}

func TestWorkerStartPanicRecovered(t *testing.T) {
	SetFailPoint(FailWorkerStart, func() error { panic("injected worker panic") })
	defer ClearFailPoints()
	settings := DefaultSettings()
	settings.Workers = 4
	_, err := RunContext(context.Background(), bigFilter(20000), settings)
	if !errors.Is(err, CodeRuntime) {
		t.Fatalf("want CodeRuntime from recovered panic, got %v", err)
	}
	var ee *Error
	if !errors.As(err, &ee) {
		t.Fatalf("want *Error, got %T", err)
	}
}

func TestFailOperatorError(t *testing.T) {
	injected := errors.New("injected operator failure")
	SetFailPoint(FailOperator, func() error { return injected })
	defer ClearFailPoints()
	_, err := Run(bigFilter(5000), DefaultSettings())
	if !errors.Is(err, injected) {
		t.Fatalf("want injected error in chain, got %v", err)
	}
	if !errors.Is(err, CodeRuntime) {
		t.Fatalf("want CodeRuntime classification, got %v", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	SetFailPoint(FailOperator, func() error { panic("operator panic") })
	defer ClearFailPoints()
	_, err := Run(bigFilter(5000), DefaultSettings())
	if !errors.Is(err, CodeRuntime) {
		t.Fatalf("want CodeRuntime, got %v", err)
	}
}
