package exec

import (
	"sync"

	"github.com/measures-sql/msql/internal/plan"
)

// Profile collects per-operator runtime metrics for one query, keyed by
// plan node identity (the executor runs the exact tree the optimizer
// produced, so pointer identity is stable for the life of the query).
// It implements plan.MetricsSource, so the annotated tree can be
// rendered with plan.ExplainAnalyzeTree(root, profile).
//
// All nodes reachable from the root — including subquery plans nested in
// expressions — are pre-registered at construction, so the hot path is
// almost always a read-locked map lookup; nodes materialized later (none
// today) fall back to lazy insertion under the write lock.
type Profile struct {
	mu    sync.RWMutex
	nodes map[plan.Node]*plan.OpMetrics
	subs  map[*plan.Subquery]*plan.OpMetrics
}

// NewProfile creates a profile pre-registered for every operator and
// subquery expression reachable from root.
func NewProfile(root plan.Node) *Profile {
	p := &Profile{
		nodes: map[plan.Node]*plan.OpMetrics{},
		subs:  map[*plan.Subquery]*plan.OpMetrics{},
	}
	p.register(root)
	return p
}

func (p *Profile) register(n plan.Node) {
	if _, ok := p.nodes[n]; ok {
		return
	}
	p.nodes[n] = &plan.OpMetrics{}
	plan.VisitNodeExprs(n, func(e plan.Expr) {
		plan.WalkExprs(e, func(x plan.Expr) {
			if sq, ok := x.(*plan.Subquery); ok {
				if _, ok := p.subs[sq]; !ok {
					p.subs[sq] = &plan.OpMetrics{}
					p.register(sq.Plan)
				}
			}
		})
	})
	for _, c := range n.Children() {
		p.register(c)
	}
}

// NodeMetrics implements plan.MetricsSource.
func (p *Profile) NodeMetrics(n plan.Node) *plan.OpMetrics {
	p.mu.RLock()
	m, ok := p.nodes[n]
	p.mu.RUnlock()
	if ok {
		return m
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if m, ok := p.nodes[n]; ok {
		return m
	}
	m = &plan.OpMetrics{}
	p.nodes[n] = m
	return m
}

// SubqueryMetrics implements plan.MetricsSource.
func (p *Profile) SubqueryMetrics(sq *plan.Subquery) *plan.OpMetrics {
	p.mu.RLock()
	m, ok := p.subs[sq]
	p.mu.RUnlock()
	if ok {
		return m
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if m, ok := p.subs[sq]; ok {
		return m
	}
	m = &plan.OpMetrics{}
	p.subs[sq] = m
	return m
}
