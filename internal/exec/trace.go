package exec

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/measures-sql/msql/internal/plan"
)

// Span is one structured event in a query's lifecycle: a phase (parse,
// bind, expand, optimize, execute, operator), what happened, how long it
// took, and phase-specific attributes.
type Span struct {
	// Phase is the lifecycle stage: "parse", "bind", "expand",
	// "optimize", "execute", or "operator".
	Phase string `json:"phase"`
	// Name identifies the event within the phase: the expanded measure,
	// the rewrite that fired, the operator that ran.
	Name string `json:"name"`
	// DurNs is the event duration in nanoseconds (0 when the event is a
	// point fact rather than a timed interval).
	DurNs int64 `json:"dur_ns"`
	// Attrs carries phase-specific detail, e.g. context="ALL prodName"
	// on an expand span or rows="97" on an operator span.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tracer receives lifecycle span events. Implementations must be safe
// for concurrent use; the engine emits spans from the query goroutine
// but tests may share one tracer across sessions.
type Tracer interface {
	Span(Span)
}

// TextTracer renders each span as one aligned text line.
type TextTracer struct {
	W  io.Writer
	mu sync.Mutex
}

// Span implements Tracer.
func (t *TextTracer) Span(s Span) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-40s", s.Phase, s.Name)
	if s.DurNs > 0 {
		fmt.Fprintf(&sb, " %12s", time.Duration(s.DurNs))
	}
	for _, k := range sortedAttrKeys(s.Attrs) {
		fmt.Fprintf(&sb, " %s=%s", k, s.Attrs[k])
	}
	sb.WriteByte('\n')
	t.mu.Lock()
	defer t.mu.Unlock()
	io.WriteString(t.W, sb.String())
}

// JSONTracer renders each span as one JSON object per line.
type JSONTracer struct {
	W  io.Writer
	mu sync.Mutex
}

// Span implements Tracer.
func (t *JSONTracer) Span(s Span) {
	b, err := json.Marshal(s)
	if err != nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.W.Write(append(b, '\n'))
}

// SpanCollector buffers spans for inspection in tests.
type SpanCollector struct {
	mu    sync.Mutex
	spans []Span
}

// Span implements Tracer.
func (c *SpanCollector) Span(s Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = append(c.spans, s)
}

// Spans returns a copy of the collected spans.
func (c *SpanCollector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, len(c.spans))
	copy(out, c.spans)
	return out
}

// ByPhase returns the collected spans with the given phase.
func (c *SpanCollector) ByPhase(phase string) []Span {
	var out []Span
	for _, s := range c.Spans() {
		if s.Phase == phase {
			out = append(out, s)
		}
	}
	return out
}

func sortedAttrKeys(attrs map[string]string) []string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PlanSpans emits one "operator" span per profiled plan node, in
// EXPLAIN order (pre-order, subquery plans before children), so a
// tracer sees per-operator execution detail after the query finishes.
func PlanSpans(root plan.Node, prof *Profile, t Tracer) {
	if prof == nil || t == nil {
		return
	}
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		m := prof.NodeMetrics(n).Load()
		attrs := map[string]string{"rows": fmt.Sprintf("%d", m.RowsOut)}
		if m.Calls > 1 {
			attrs["loops"] = fmt.Sprintf("%d", m.Calls)
		}
		if m.MaxWorkers > 1 {
			attrs["workers"] = fmt.Sprintf("%d", m.MaxWorkers)
		}
		t.Span(Span{Phase: "operator", Name: n.Explain(), DurNs: m.WallNs, Attrs: attrs})
		plan.VisitNodeExprs(n, func(e plan.Expr) {
			plan.WalkExprs(e, func(x plan.Expr) {
				if sq, ok := x.(*plan.Subquery); ok {
					sm := prof.SubqueryMetrics(sq).Load()
					label := sq.Label
					if label == "" {
						label = sq.String()
					}
					t.Span(Span{Phase: "operator", Name: "[" + label + "]", Attrs: map[string]string{
						"evals": fmt.Sprintf("%d", sm.Evals),
						"hits":  fmt.Sprintf("%d", sm.CacheHits),
					}})
					walk(sq.Plan)
				}
			})
		})
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(root)
}
