// Histogram is a lock-free log-bucketed latency histogram in the
// Monarch "distribution-typed value" tradition: fixed buckets whose
// widths grow geometrically, atomic counters, and quantile estimates
// read from a consistent snapshot. One histogram costs a few atomic
// adds per observation, so the statement-stats store can record every
// statement a busy server runs without a mutex on the hot path.
package exec

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histSubBits subdivides each power-of-two octave into 2^histSubBits
// sub-buckets, bounding the relative quantile error at 1/2^histSubBits
// (25% with 2 bits) instead of the 2x error of plain log2 buckets.
const histSubBits = 2

// histBuckets spans int64 nanoseconds: 64 octaves × 4 sub-buckets.
const histBuckets = 64 << histSubBits

// Histogram counts observations in log-spaced buckets. The zero value
// is ready to use; all methods are safe for concurrent use. Values are
// nanoseconds by convention, but nothing depends on the unit.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// histBucketIndex maps a value to its bucket. Values 0..7 are exact;
// larger values share an octave (floor log2) split into 4 sub-ranges by
// the two bits after the leading one. The mapping is monotonic in v.
func histBucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < 8 {
		return int(u)
	}
	e := uint(bits.Len64(u)) - 1 // >= 3
	sub := (u >> (e - histSubBits)) & (1<<histSubBits - 1)
	return int(e)<<histSubBits + int(sub)
}

// histBucketUpper returns the largest value that lands in bucket idx
// (the Prometheus `le` bound of that bucket).
func histBucketUpper(idx int) int64 {
	if idx < 8 {
		return int64(idx)
	}
	e := uint(idx >> histSubBits)
	sub := uint64(idx & (1<<histSubBits - 1))
	if e >= 62 {
		return math.MaxInt64 // top octaves would overflow; clamp
	}
	return int64((sub+1<<histSubBits+1)<<(e-histSubBits)) - 1
}

// Observe folds one value into the histogram.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[histBucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot returns a point-in-time copy with precomputed quantiles.
// Concurrent Observe calls may straddle the copy; each bucket value is
// individually consistent, which is all quantile estimation needs.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		SumNs:   h.sum.Load(),
		Buckets: make([]int64, histBuckets),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.P50Ns = s.Quantile(0.50)
	s.P95Ns = s.Quantile(0.95)
	s.P99Ns = s.Quantile(0.99)
	return s
}

// HistogramSnapshot is a consistent copy of a Histogram: totals, the
// standard latency quantiles, and the raw bucket counts (for Prometheus
// exposition; omitted from JSON).
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	SumNs   int64   `json:"sum_ns"`
	P50Ns   int64   `json:"p50_ns"`
	P95Ns   int64   `json:"p95_ns"`
	P99Ns   int64   `json:"p99_ns"`
	Buckets []int64 `json:"-"`
}

// Quantile estimates the p-quantile (0 < p <= 1): the upper bound of
// the first bucket at which the cumulative count reaches p×Count. The
// estimate errs high by at most one sub-bucket width (~25%).
func (s HistogramSnapshot) Quantile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(p*float64(s.Count) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		if cum >= target {
			return histBucketUpper(i)
		}
	}
	return histBucketUpper(len(s.Buckets) - 1)
}

// EachBucket calls fn for every non-empty bucket in increasing order
// with its inclusive upper bound and the cumulative count so far —
// exactly the shape a Prometheus `_bucket` series wants (the caller
// appends the +Inf bucket with the total count).
func (s HistogramSnapshot) EachBucket(fn func(upper int64, cumulative int64)) {
	var cum int64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		fn(histBucketUpper(i), cum)
	}
}
