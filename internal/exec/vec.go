package exec

import (
	"fmt"
	"sync/atomic"

	"github.com/measures-sql/msql/internal/fn"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/internal/vec"
)

// Vectorized execution. Filter, Project, and Aggregate process their
// input in vec.BatchRows-row batches: each expression compiles once into
// a small tree of vecExpr nodes, where a node is either a typed batch
// kernel (comparisons, arithmetic, AND/OR, CAST, ...) or a per-row
// fallback that calls the ordinary row evaluator for the selected rows
// (subqueries, CASE, IN, volatile-free expressions without a kernel).
// The row engine is the oracle: every path below must produce
// bit-identical values — including the Kind of NULLs — and must never
// raise an error the row engine would not. The two deliberate exceptions
// to error *identity* (not error presence) are documented on vecKernel
// and the aggregate path: evaluating column-at-a-time can surface a
// different row's error first.

// vecExpr is one compiled node. eval returns a fresh column with results
// at the selected indices; the compiled tree is shared across worker
// goroutines and holds no mutable state.
type vecExpr interface {
	eval(rt *runtime, vb *vecBatch, sel []int) (*vec.Col, error)
}

// vecBatch views one batch of input rows columnarly, materializing a
// column per referenced input column on first use. It also accumulates
// the batch's kernel/fallback row counts, flushed by noteBatch.
type vecBatch struct {
	rows  []Row
	kinds []sqltypes.Kind
	cols  []*vec.Col

	// share, when set, caches built columns across executions of a
	// cached plan (the operator reads straight from a base-table Scan);
	// off is this batch's row offset within the scan output.
	share *colShare
	off   int

	kernelRows   int64
	fallbackRows int64
}

func newVecBatch(rows []Row, kinds []sqltypes.Kind) *vecBatch {
	return &vecBatch{rows: rows, kinds: kinds, cols: make([]*vec.Col, len(kinds))}
}

func (vb *vecBatch) col(idx int) *vec.Col {
	if c := vb.cols[idx]; c != nil {
		return c
	}
	if vb.share != nil {
		if c := vb.share.get(vb.off, idx, len(vb.rows)); c != nil {
			vb.cols[idx] = c
			return c
		}
	}
	c := vec.BuildCol(vb.rows, idx, vb.kinds[idx])
	vb.cols[idx] = c
	if vb.share != nil {
		vb.share.put(vb.off, idx, c)
	}
	return c
}

// batchIota is the shared all-rows selection vector; slices of it are
// read-only.
var batchIota = func() []int {
	s := make([]int, vec.BatchRows)
	for i := range s {
		s[i] = i
	}
	return s
}()

// schemaKinds extracts the static column kinds of a node's output.
func schemaKinds(s *plan.Schema) []sqltypes.Kind {
	kinds := make([]sqltypes.Kind, len(s.Cols))
	for i, c := range s.Cols {
		kinds[i] = c.Typ.Kind
	}
	return kinds
}

// vecUsable reports whether the vectorized path may run an operator with
// the given expressions: vectorized mode is on and no expression
// contains a volatile call — column-major evaluation reorders calls
// across rows and expressions, which only pure expressions tolerate.
func (rt *runtime) vecUsable(exprs ...plan.Expr) bool {
	if !rt.sh.settings.Vectorized {
		return false
	}
	for _, e := range exprs {
		if e != nil && !plan.ExprParallelSafe(e) {
			return false
		}
	}
	return true
}

// tickBatch is tick amortized over a whole batch.
func (rt *runtime) tickBatch(n int) error {
	if rt.steps += n; rt.steps < cancelCheckRows {
		return nil
	}
	return rt.tickNow()
}

// noteBatch folds one processed batch's counters into the statement
// stats and the operator's EXPLAIN ANALYZE metrics.
func (rt *runtime) noteBatch(n plan.Node, vb *vecBatch) {
	if s := rt.sh.settings.Stats; s != nil {
		atomic.AddInt64(&s.VecBatches, 1)
		atomic.AddInt64(&s.VecKernelRows, vb.kernelRows)
		atomic.AddInt64(&s.VecFallbackRows, vb.fallbackRows)
	}
	if p := rt.sh.prof; p != nil {
		p.NodeMetrics(n).AddBatch(vb.kernelRows, vb.fallbackRows)
	}
	vb.kernelRows, vb.fallbackRows = 0, 0
}

// vecCompile compiles e for an input of the given width. Unsupported
// node types compile to a fallback over the whole subtree, so the result
// always evaluates — just not always columnarly.
func vecCompile(e plan.Expr, width int) vecExpr {
	switch e := e.(type) {
	case *plan.ColRef:
		if e.Index < 0 || e.Index >= width {
			// Out of range: let the row evaluator produce its error.
			return &vecFallback{e: e, typ: e.Typ.Kind}
		}
		return &vecColRef{idx: e.Index}
	case *plan.Lit:
		return &vecLit{val: e.Val}
	case *plan.Param:
		return &vecParam{idx: e.Index, kind: e.Typ.Kind}
	case *plan.Call:
		kinds := make([]sqltypes.Kind, len(e.Args))
		for i, a := range e.Args {
			kinds[i] = a.Type().Kind
		}
		kern, outKind, ok := fn.LookupKernel(e.Name, kinds)
		sc, scOK := fn.LookupScalar(e.Name)
		if !ok || !scOK || outKind != e.Typ.Kind {
			return &vecFallback{e: e, typ: e.Typ.Kind}
		}
		args := make([]vecExpr, len(e.Args))
		for i, a := range e.Args {
			args[i] = vecCompile(a, width)
		}
		pos := -1
		if e.Pos > 0 {
			pos = e.Pos - 1
		}
		return &vecKernel{
			name: e.Name, pos: pos, typ: e.Typ.Kind,
			sc: sc, kern: kern, argKinds: kinds, args: args,
		}
	case *plan.And:
		return &vecAnd{l: vecCompile(e.L, width), r: vecCompile(e.R, width)}
	case *plan.Or:
		return &vecOr{l: vecCompile(e.L, width), r: vecCompile(e.R, width)}
	case *plan.Not:
		return &vecNot{x: vecCompile(e.X, width)}
	case *plan.IsNull:
		return &vecIsNull{x: vecCompile(e.X, width), neg: e.Neg}
	case *plan.IsDistinct:
		return &vecIsDistinct{l: vecCompile(e.L, width), r: vecCompile(e.R, width), neg: e.Neg}
	case *plan.Cast:
		return &vecCast{x: vecCompile(e.X, width), kind: e.Kind}
	default:
		// CASE and IN short-circuit per row; subqueries, correlated and
		// aggregate refs need row context. All stay on the row path.
		return &vecFallback{e: e, typ: e.Type().Kind}
	}
}

// vecColRef reads an input column.
type vecColRef struct{ idx int }

func (v *vecColRef) eval(rt *runtime, vb *vecBatch, sel []int) (*vec.Col, error) {
	return vb.col(v.idx), nil
}

// vecLit broadcasts a literal.
type vecLit struct{ val sqltypes.Value }

func (v *vecLit) eval(rt *runtime, vb *vecBatch, sel []int) (*vec.Col, error) {
	c := vec.NewCol(v.val.K, len(vb.rows))
	for _, i := range sel {
		c.Set(i, v.val)
	}
	return c, nil
}

// vecParam broadcasts a prepared-statement parameter. The value is read
// from the execution's Settings at eval time, so a compiled tree cached
// in a Pipeline stays valid across executions with different arguments.
type vecParam struct {
	idx  int
	kind sqltypes.Kind
}

func (v *vecParam) eval(rt *runtime, vb *vecBatch, sel []int) (*vec.Col, error) {
	ps := rt.sh.settings.Params
	if v.idx < 0 || v.idx >= len(ps) {
		return nil, fmt.Errorf("parameter $%d not bound (%d provided)", v.idx+1, len(ps))
	}
	c := vec.NewCol(v.kind, len(vb.rows))
	for _, i := range sel {
		c.Set(i, ps[v.idx])
	}
	return c, nil
}

// vecKernel evaluates a scalar call. When the argument columns come back
// typed with the registered kinds it runs the batch kernel; otherwise it
// degrades to a boxed element-wise loop over the same scalar, which is
// still batch-shaped (no tree walk per row). Note the one semantic
// wrinkle: a kernel scans its selection in order, so when several rows
// would error (e.g. two overflows) the *first selected* row's error
// surfaces — the row engine surfaces the first row's error too, but an
// enclosing AND/OR evaluated column-major may reach this node with a
// different selection order across expressions. The differential harness
// therefore compares error presence, not messages.
type vecKernel struct {
	name     string
	pos      int
	typ      sqltypes.Kind
	sc       *fn.Scalar
	kern     fn.Kernel
	argKinds []sqltypes.Kind
	args     []vecExpr
}

func (v *vecKernel) wrap(err error) error {
	return &Error{
		Code: CodeRuntime, Phase: PhaseExecute, Pos: v.pos,
		Err: fmt.Errorf("in %s: %w", v.name, err),
	}
}

func (v *vecKernel) eval(rt *runtime, vb *vecBatch, sel []int) (*vec.Col, error) {
	cols := make([]*vec.Col, len(v.args))
	for k, a := range v.args {
		c, err := a.eval(rt, vb, sel)
		if err != nil {
			return nil, err
		}
		cols[k] = c
	}
	out := vec.NewCol(v.typ, len(vb.rows))
	fast := true
	for k, c := range cols {
		if c.Boxed() || c.Kind != v.argKinds[k] {
			fast = false
			break
		}
	}
	if fast {
		if err := v.kern(cols, sel, out); err != nil {
			return nil, v.wrap(err)
		}
		vb.kernelRows += int64(len(sel))
		return out, nil
	}
	// Boxed path: same strict-NULL short-circuit as evalCall.
	argv := make([]sqltypes.Value, len(cols))
	for _, i := range sel {
		anyNull := false
		for k, c := range cols {
			val := c.Value(i)
			argv[k] = val
			if val.Null {
				anyNull = true
			}
		}
		if v.sc.Strict && anyNull {
			out.Set(i, sqltypes.Null(v.typ))
			continue
		}
		res, err := v.sc.Eval(argv)
		if err != nil {
			return nil, v.wrap(err)
		}
		out.Set(i, res)
	}
	vb.kernelRows += int64(len(sel))
	return out, nil
}

// vecAnd is three-valued AND. The right side is evaluated only over the
// rows whose left side is not FALSE, which preserves the row engine's
// short-circuit guarantee: an error (or volatile effect, though volatile
// expressions never reach this path) in R cannot fire on a row where L
// already decided the result.
type vecAnd struct{ l, r vecExpr }

func (v *vecAnd) eval(rt *runtime, vb *vecBatch, sel []int) (*vec.Col, error) {
	lc, err := v.l.eval(rt, vb, sel)
	if err != nil {
		return nil, err
	}
	sel2 := make([]int, 0, len(sel))
	for _, i := range sel {
		if !lc.Value(i).IsFalse() {
			sel2 = append(sel2, i)
		}
	}
	var rc *vec.Col
	if len(sel2) > 0 {
		if rc, err = v.r.eval(rt, vb, sel2); err != nil {
			return nil, err
		}
	}
	out := vec.NewCol(sqltypes.KindBool, len(vb.rows))
	for _, i := range sel {
		lv := lc.Value(i)
		if lv.IsFalse() {
			out.Set(i, lv)
			continue
		}
		out.Set(i, sqltypes.And(lv, rc.Value(i)))
	}
	vb.kernelRows += int64(len(sel))
	return out, nil
}

// vecOr mirrors vecAnd with TRUE as the short-circuit value.
type vecOr struct{ l, r vecExpr }

func (v *vecOr) eval(rt *runtime, vb *vecBatch, sel []int) (*vec.Col, error) {
	lc, err := v.l.eval(rt, vb, sel)
	if err != nil {
		return nil, err
	}
	sel2 := make([]int, 0, len(sel))
	for _, i := range sel {
		if !lc.Value(i).IsTrue() {
			sel2 = append(sel2, i)
		}
	}
	var rc *vec.Col
	if len(sel2) > 0 {
		if rc, err = v.r.eval(rt, vb, sel2); err != nil {
			return nil, err
		}
	}
	out := vec.NewCol(sqltypes.KindBool, len(vb.rows))
	for _, i := range sel {
		lv := lc.Value(i)
		if lv.IsTrue() {
			out.Set(i, lv)
			continue
		}
		out.Set(i, sqltypes.Or(lv, rc.Value(i)))
	}
	vb.kernelRows += int64(len(sel))
	return out, nil
}

type vecNot struct{ x vecExpr }

func (v *vecNot) eval(rt *runtime, vb *vecBatch, sel []int) (*vec.Col, error) {
	xc, err := v.x.eval(rt, vb, sel)
	if err != nil {
		return nil, err
	}
	out := vec.NewCol(sqltypes.KindBool, len(vb.rows))
	for _, i := range sel {
		out.Set(i, sqltypes.Not(xc.Value(i)))
	}
	vb.kernelRows += int64(len(sel))
	return out, nil
}

type vecIsNull struct {
	x   vecExpr
	neg bool
}

func (v *vecIsNull) eval(rt *runtime, vb *vecBatch, sel []int) (*vec.Col, error) {
	xc, err := v.x.eval(rt, vb, sel)
	if err != nil {
		return nil, err
	}
	out := vec.NewCol(sqltypes.KindBool, len(vb.rows))
	for _, i := range sel {
		out.Set(i, sqltypes.NewBool(xc.Null(i) != v.neg))
	}
	vb.kernelRows += int64(len(sel))
	return out, nil
}

type vecIsDistinct struct {
	l, r vecExpr
	neg  bool
}

func (v *vecIsDistinct) eval(rt *runtime, vb *vecBatch, sel []int) (*vec.Col, error) {
	lc, err := v.l.eval(rt, vb, sel)
	if err != nil {
		return nil, err
	}
	rc, err := v.r.eval(rt, vb, sel)
	if err != nil {
		return nil, err
	}
	out := vec.NewCol(sqltypes.KindBool, len(vb.rows))
	for _, i := range sel {
		same := sqltypes.NotDistinct(lc.Value(i), rc.Value(i))
		out.Set(i, sqltypes.NewBool(same == v.neg))
	}
	vb.kernelRows += int64(len(sel))
	return out, nil
}

// vecCast converts element-wise; errors stay unwrapped exactly like the
// row evaluator's Cast case.
type vecCast struct {
	x    vecExpr
	kind sqltypes.Kind
}

func (v *vecCast) eval(rt *runtime, vb *vecBatch, sel []int) (*vec.Col, error) {
	xc, err := v.x.eval(rt, vb, sel)
	if err != nil {
		return nil, err
	}
	out := vec.NewCol(v.kind, len(vb.rows))
	for _, i := range sel {
		res, err := sqltypes.Cast(xc.Value(i), v.kind)
		if err != nil {
			return nil, err
		}
		out.Set(i, res)
	}
	vb.kernelRows += int64(len(sel))
	return out, nil
}

// vecFallback evaluates the subtree with the row engine, one selected
// row at a time in selection order. It is what keeps the vectorized path
// total: subqueries hit the same memo cache, CASE keeps its row-major
// short-circuit, and so on.
type vecFallback struct {
	e   plan.Expr
	typ sqltypes.Kind
}

func (v *vecFallback) eval(rt *runtime, vb *vecBatch, sel []int) (*vec.Col, error) {
	out := vec.NewCol(v.typ, len(vb.rows))
	for _, i := range sel {
		res, err := rt.eval(v.e, vb.rows[i])
		if err != nil {
			return nil, err
		}
		out.Set(i, res)
	}
	vb.fallbackRows += int64(len(sel))
	return out, nil
}

// runFilterVec is the columnar Filter: evaluate the predicate per batch,
// record keep bits, then compact in input order (same output order as
// the serial and morsel-parallel row paths).
func (rt *runtime) runFilterVec(n *plan.Filter, in []Row) ([]Row, error) {
	kinds := schemaKinds(n.Input.Schema())
	ve := rt.pipelineFilter(n, len(kinds))
	keep := make([]bool, len(in))
	process := func(w *runtime, lo, hi int) error {
		for blo := lo; blo < hi; blo += vec.BatchRows {
			bhi := min(blo+vec.BatchRows, hi)
			if err := w.tickBatch(bhi - blo); err != nil {
				return err
			}
			vb := w.getBatchShared(n.Input, blo, in[blo:bhi], kinds)
			sel := batchIota[:bhi-blo]
			c, err := ve.eval(w, vb, sel)
			if err != nil {
				return err
			}
			for _, i := range sel {
				keep[blo+i] = c.Value(i).IsTrue()
			}
			w.noteBatch(n, vb)
			w.putBatch(vb)
		}
		return nil
	}
	if workers, grain := rt.rowParallelism(len(in), n.Pred); workers > 1 {
		rt.noteFanout(n, workers)
		err := rt.forEachChunk(len(in), workers, grain, func(w *runtime, _, _, lo, hi int) error {
			return process(w, lo, hi)
		})
		if err != nil {
			return nil, err
		}
	} else if err := process(rt, 0, len(in)); err != nil {
		return nil, err
	}
	var out []Row
	for i, k := range keep {
		if k {
			out = append(out, in[i])
		}
	}
	return out, nil
}

// runProjectVec is the columnar Project: evaluate every output
// expression over the batch, then reassemble rows.
func (rt *runtime) runProjectVec(n *plan.Project, in []Row) ([]Row, error) {
	kinds := schemaKinds(n.Input.Schema())
	ves := rt.pipelineProject(n, len(kinds))
	out := make([]Row, len(in))
	process := func(w *runtime, lo, hi int) error {
		cols := make([]*vec.Col, len(ves))
		for blo := lo; blo < hi; blo += vec.BatchRows {
			bhi := min(blo+vec.BatchRows, hi)
			if err := w.tickBatch(bhi - blo); err != nil {
				return err
			}
			vb := w.getBatchShared(n.Input, blo, in[blo:bhi], kinds)
			sel := batchIota[:bhi-blo]
			for j, ve := range ves {
				c, err := ve.eval(w, vb, sel)
				if err != nil {
					return err
				}
				cols[j] = c
			}
			for _, i := range sel {
				row := make(Row, len(cols))
				for j, c := range cols {
					row[j] = c.Value(i)
				}
				out[blo+i] = row
			}
			w.noteBatch(n, vb)
			w.putBatch(vb)
		}
		return nil
	}
	if workers, grain := rt.rowParallelism(len(in), projectExprs(n)...); workers > 1 {
		rt.noteFanout(n, workers)
		err := rt.forEachChunk(len(in), workers, grain, func(w *runtime, _, _, lo, hi int) error {
			return process(w, lo, hi)
		})
		if err != nil {
			return nil, err
		}
	} else if err := process(rt, 0, len(in)); err != nil {
		return nil, err
	}
	return out, nil
}
