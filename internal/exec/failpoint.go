package exec

// Test-only fault injection. A FailPoint names a site in the executor
// where tests can deterministically inject a fault: return an error,
// sleep (a slow operator, to make mid-query cancellation reproducible),
// or panic (to exercise the worker panic-recovery path). Production
// queries pay one atomic load per site while no failpoint is armed.

import (
	"sync"
	"sync/atomic"
)

// FailPoint names an injection site.
type FailPoint string

const (
	// FailWorkerStart fires in every parallel worker goroutine as it
	// starts, before it claims any work.
	FailWorkerStart FailPoint = "worker-start"
	// FailOperator fires before every operator execution.
	FailOperator FailPoint = "operator"
	// FailSubqueryEval fires before every subquery plan execution.
	FailSubqueryEval FailPoint = "subquery-eval"
)

var (
	fpArmed atomic.Int32
	fpMu    sync.Mutex
	fpHooks = map[FailPoint]func() error{}
)

// SetFailPoint arms hook at site p. The hook may return an error (the
// operator fails), sleep (the operator runs slowly), or panic (the
// worker dies). Passing nil clears the site.
func SetFailPoint(p FailPoint, hook func() error) {
	fpMu.Lock()
	defer fpMu.Unlock()
	if hook == nil {
		if _, ok := fpHooks[p]; ok {
			delete(fpHooks, p)
			fpArmed.Add(-1)
		}
		return
	}
	if _, ok := fpHooks[p]; !ok {
		fpArmed.Add(1)
	}
	fpHooks[p] = hook
}

// ClearFailPoints disarms every failpoint.
func ClearFailPoints() {
	fpMu.Lock()
	defer fpMu.Unlock()
	fpHooks = map[FailPoint]func() error{}
	fpArmed.Store(0)
}

// failpoint runs the hook armed at p, if any.
func failpoint(p FailPoint) error {
	if fpArmed.Load() == 0 {
		return nil
	}
	fpMu.Lock()
	hook := fpHooks[p]
	fpMu.Unlock()
	if hook == nil {
		return nil
	}
	return hook()
}
