package exec

// Test-only fault injection. A FailPoint names a site in the executor
// where tests can deterministically inject a fault: return an error,
// sleep (a slow operator, to make mid-query cancellation reproducible),
// or panic (to exercise the worker panic-recovery path). Production
// queries pay one atomic load per site while no failpoint is armed.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// FailPoint names an injection site.
type FailPoint string

const (
	// FailWorkerStart fires in every parallel worker goroutine as it
	// starts, before it claims any work.
	FailWorkerStart FailPoint = "worker-start"
	// FailOperator fires before every operator execution.
	FailOperator FailPoint = "operator"
	// FailSubqueryEval fires before every subquery plan execution.
	FailSubqueryEval FailPoint = "subquery-eval"
	// FailServerAccept fires in the query server's admission path,
	// before a request is considered for admission; the server maps a
	// firing to an overload rejection (shed).
	FailServerAccept FailPoint = "server-accept"
)

var (
	fpArmed atomic.Int32
	fpMu    sync.Mutex
	fpHooks = map[FailPoint]func() error{}
)

// SetFailPoint arms hook at site p. The hook may return an error (the
// operator fails), sleep (the operator runs slowly), or panic (the
// worker dies). Passing nil clears the site.
func SetFailPoint(p FailPoint, hook func() error) {
	fpMu.Lock()
	defer fpMu.Unlock()
	if hook == nil {
		if _, ok := fpHooks[p]; ok {
			delete(fpHooks, p)
			fpArmed.Add(-1)
		}
		return
	}
	if _, ok := fpHooks[p]; !ok {
		fpArmed.Add(1)
	}
	fpHooks[p] = hook
}

// SetFailPointRate arms site p with a probabilistic hook that fails a
// `ratio` fraction of firings (0 clears, 1 always fails). The decision
// sequence is drawn from a private PRNG seeded with seed, so a given
// (ratio, seed) pair yields the same fail/pass sequence on every run —
// chaos tests stay reproducible. The injected error is a structured
// CodeRuntime *Error tagged with the site name.
func SetFailPointRate(p FailPoint, ratio float64, seed int64) {
	if ratio <= 0 {
		SetFailPoint(p, nil)
		return
	}
	var (
		mu  sync.Mutex
		rng = rand.New(rand.NewSource(seed))
	)
	SetFailPoint(p, func() error {
		mu.Lock()
		fire := ratio >= 1 || rng.Float64() < ratio
		mu.Unlock()
		if !fire {
			return nil
		}
		return &Error{
			Code:  CodeRuntime,
			Phase: PhaseExecute,
			Pos:   -1,
			Hint:  "injected fault (test failpoint)",
			Err:   fmt.Errorf("failpoint %s fired", p),
		}
	})
}

// Fire runs the hook armed at p, if any. It exists so packages layered
// above the executor (the query server) can host their own injection
// sites through the same registry.
func Fire(p FailPoint) error { return failpoint(p) }

// ClearFailPoints disarms every failpoint.
func ClearFailPoints() {
	fpMu.Lock()
	defer fpMu.Unlock()
	fpHooks = map[FailPoint]func() error{}
	fpArmed.Store(0)
}

// failpoint runs the hook armed at p, if any.
func failpoint(p FailPoint) error {
	if fpArmed.Load() == 0 {
		return nil
	}
	fpMu.Lock()
	hook := fpHooks[p]
	fpMu.Unlock()
	if hook == nil {
		return nil
	}
	return hook()
}
