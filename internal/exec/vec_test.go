package exec

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// nullScan builds a Scan over n rows with a nullable column:
// a: 0..n-1, n: NULL when a%3==0, otherwise a.
func nullScan(n int) *plan.Scan {
	src := &testSource{
		name:  "tn",
		cols:  []string{"a", "n"},
		types: []sqltypes.Type{intT(), intT()},
	}
	for i := 0; i < n; i++ {
		nv := sqltypes.NewInt(int64(i))
		if i%3 == 0 {
			nv = sqltypes.Null(sqltypes.KindInt)
		}
		src.rows = append(src.rows, Row{sqltypes.NewInt(int64(i)), nv})
	}
	sch := &plan.Schema{}
	for i, c := range src.cols {
		sch.Cols = append(sch.Cols, plan.Col{Name: c, Typ: src.types[i]})
	}
	return &plan.Scan{Source: src, Sch: sch}
}

func intLit(v int64) *plan.Lit { return &plan.Lit{Val: sqltypes.NewInt(v)} }

func cmp(op string, l, r plan.Expr) *plan.Call {
	return &plan.Call{Name: op, Typ: boolT(), Args: []plan.Expr{l, r}}
}

// runRowVsVec executes node with the row engine and the vectorized
// engine (same worker count) and requires bit-identical results. It
// returns the vectorized run's Stats.
func runRowVsVec(t *testing.T, node plan.Node, workers int) ([]Row, Stats) {
	t.Helper()
	rowSettings := DefaultSettings()
	rowSettings.Workers = workers
	var rowStats Stats
	rowSettings.Stats = &rowStats
	want, err := Run(node, rowSettings)
	if err != nil {
		t.Fatalf("row run: %v", err)
	}
	if rowStats.VecBatches != 0 {
		t.Fatalf("row run recorded %d batches; vectorization must be opt-in", rowStats.VecBatches)
	}

	vecSettings := DefaultSettings()
	vecSettings.Workers = workers
	vecSettings.Vectorized = true
	var vecStats Stats
	vecSettings.Stats = &vecStats
	got, err := Run(node, vecSettings)
	if err != nil {
		t.Fatalf("vectorized run: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("vectorized result differs from row engine\nrow: %v\nvec: %v", want, got)
	}
	return got, vecStats
}

// TestVectorizedExplainAnalyzeGolden pins the EXPLAIN ANALYZE rendering
// of a vectorized plan: a kernel-only filter and a mixed
// kernel/fallback projection must report exact batch and evaluation
// counts.
func TestVectorizedExplainAnalyzeGolden(t *testing.T) {
	// 2500 rows -> 3 batches (1024+1024+452). The filter predicate is one
	// comparison kernel (2500 kernel rows); the projection evaluates a+b
	// with a kernel and a CASE via the row fallback over the 1250
	// surviving rows (2 batches).
	filter := &plan.Filter{
		Input: bigScan(2500),
		Pred:  cmp("<", col(0, "a"), intLit(1250)),
	}
	caseExpr := &plan.Case{
		Whens: []plan.CaseWhen{{Cond: cmp("<", col(1, "b"), intLit(50)), Then: intLit(1)}},
		Else:  intLit(0),
		Typ:   intT(),
	}
	node := &plan.Project{
		Input: filter,
		Exprs: []plan.NamedExpr{
			{Expr: &plan.Call{Name: "+", Typ: intT(), Args: []plan.Expr{col(0, "a"), col(1, "b")}},
				Col: plan.Col{Name: "s", Typ: intT()}},
			{Expr: caseExpr, Col: plan.Col{Name: "c", Typ: intT()}},
		},
		Sch: &plan.Schema{Cols: []plan.Col{{Name: "s", Typ: intT()}, {Name: "c", Typ: intT()}}},
	}

	settings := DefaultSettings()
	settings.Workers = 1
	settings.Vectorized = true
	var stats Stats
	settings.Stats = &stats
	prof := NewProfile(node)
	settings.Profile = prof
	rows, err := Run(node, settings)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1250 {
		t.Fatalf("got %d rows, want 1250", len(rows))
	}

	txt := plan.ExplainAnalyzeTree(node, prof)
	// Filter: 3 input batches, one "<" kernel over all 2500 rows.
	if want := "(rows=1250 batches=3 kernel=2500 fallback=0"; !strings.Contains(txt, want) {
		t.Errorf("filter annotation %q missing:\n%s", want, txt)
	}
	// Project: 2 batches of survivors; "+" kernel on 1250 rows, CASE and
	// its operands fall back on the same 1250.
	if want := "(rows=1250 batches=2 kernel=1250 fallback=1250"; !strings.Contains(txt, want) {
		t.Errorf("project annotation %q missing:\n%s", want, txt)
	}
	// Tree totals agree with the executor's counters.
	if stats.VecBatches != 5 || stats.VecKernelRows != 3750 || stats.VecFallbackRows != 1250 {
		t.Errorf("stats batches=%d kernel=%d fallback=%d, want 5/3750/1250",
			stats.VecBatches, stats.VecKernelRows, stats.VecFallbackRows)
	}
}

// TestVectorizedBatchBoundaries runs a filter+project+aggregate plan at
// the batch-size boundaries (1023, 1024, 1025 rows) and at 0 rows,
// serial and parallel, requiring bit-identical results and the expected
// batch counts.
func TestVectorizedBatchBoundaries(t *testing.T) {
	mk := func(n int) plan.Node {
		filter := &plan.Filter{
			Input: bigScan(n),
			Pred:  cmp("<", col(1, "b"), intLit(90)),
		}
		return &plan.Aggregate{
			Input:      filter,
			GroupExprs: []plan.Expr{col(1, "b")},
			Sets:       [][]int{{0}},
			Aggs: []plan.AggCall{
				{Name: "COUNT", Star: true, KeyIndex: -1, Typ: intT()},
				{Name: "SUM", Args: []plan.Expr{col(0, "a")}, KeyIndex: -1, Typ: intT()},
				{Name: "SUM", Args: []plan.Expr{&plan.ColRef{Index: 2, Name: "f", Typ: floatT()}}, KeyIndex: -1, Typ: floatT()},
			},
			Sch: &plan.Schema{Cols: []plan.Col{
				{Name: "b", Typ: intT()},
				{Name: "cnt", Typ: intT()},
				{Name: "sa", Typ: intT()},
				{Name: "sf", Typ: floatT()},
			}},
		}
	}
	for _, n := range []int{0, 1023, 1024, 1025} {
		for _, workers := range []int{1, 4} {
			rows, st := runRowVsVec(t, mk(n), workers)
			if n == 0 {
				if len(rows) != 0 {
					t.Fatalf("n=0: got %d rows", len(rows))
				}
				continue
			}
			if st.VecBatches == 0 {
				t.Fatalf("n=%d workers=%d: no batches recorded", n, workers)
			}
			if workers == 1 {
				// Serial: filter sees ceil(n/1024) batches, the aggregate
				// re-batches the survivors.
				wantFilter := int64((n + 1023) / 1024)
				if st.VecBatches < wantFilter+1 {
					t.Fatalf("n=%d: %d batches, want at least %d", n, st.VecBatches, wantFilter+1)
				}
			}
		}
	}
}

// TestVecAndShortCircuit: the right operand of AND overflows on every
// row the left operand excludes. The row engine never evaluates those
// rows; the vectorized engine must not either.
func TestVecAndShortCircuit(t *testing.T) {
	overflowing := cmp(">",
		&plan.Call{Name: "+", Typ: intT(), Args: []plan.Expr{intLit(math.MaxInt64), col(0, "a")}},
		intLit(0))
	node := &plan.Filter{
		Input: bigScan(10),
		Pred:  &plan.And{L: cmp("=", col(0, "a"), intLit(0)), R: overflowing},
	}
	rows, st := runRowVsVec(t, node, 1)
	if len(rows) != 1 || rows[0][0].I != 0 {
		t.Fatalf("want the single a=0 row, got %v", rows)
	}
	if st.VecBatches == 0 {
		t.Fatal("filter did not run vectorized")
	}
}

// TestVecOrShortCircuit is the OR mirror: left is TRUE everywhere, so
// the overflowing right side must never run.
func TestVecOrShortCircuit(t *testing.T) {
	overflowing := cmp(">",
		&plan.Call{Name: "+", Typ: intT(), Args: []plan.Expr{intLit(math.MaxInt64), col(0, "a")}},
		intLit(0))
	node := &plan.Filter{
		Input: bigScan(10),
		Pred:  &plan.Or{L: cmp(">=", col(0, "a"), intLit(0)), R: overflowing},
	}
	rows, _ := runRowVsVec(t, node, 1)
	if len(rows) != 10 {
		t.Fatalf("want all 10 rows, got %d", len(rows))
	}
}

// TestVecAndErrorAgreement: when the row engine does hit the overflow
// (left side TRUE on an overflowing row), the vectorized engine must
// error too.
func TestVecAndErrorAgreement(t *testing.T) {
	overflowing := cmp(">",
		&plan.Call{Name: "+", Typ: intT(), Args: []plan.Expr{intLit(math.MaxInt64), col(0, "a")}},
		intLit(0))
	mk := func() plan.Node {
		return &plan.Filter{
			Input: bigScan(10),
			Pred:  &plan.And{L: cmp(">=", col(0, "a"), intLit(0)), R: overflowing},
		}
	}
	rowSettings := DefaultSettings()
	if _, err := Run(mk(), rowSettings); err == nil {
		t.Fatal("row engine: expected overflow error")
	}
	vecSettings := DefaultSettings()
	vecSettings.Vectorized = true
	if _, err := Run(mk(), vecSettings); err == nil {
		t.Fatal("vectorized engine: expected overflow error")
	}
}

// TestVecNullThreeValuedLogic: a NULL left operand does not short-
// circuit — the right side must still be evaluated and combined with
// SQL three-valued logic, identically in both engines.
func TestVecNullThreeValuedLogic(t *testing.T) {
	// n is NULL when a%3==0. (n < 5) OR (a = 0):
	//   a=0: NULL OR TRUE  = TRUE   -> kept
	//   a=3: NULL OR FALSE = NULL   -> dropped
	//   a in {1,2,4}: n<5 is TRUE   -> kept
	node := &plan.Filter{
		Input: nullScan(6),
		Pred: &plan.Or{
			L: cmp("<", col(1, "n"), intLit(5)),
			R: cmp("=", col(0, "a"), intLit(0)),
		},
	}
	rows, st := runRowVsVec(t, node, 1)
	var got []int64
	for _, r := range rows {
		got = append(got, r[0].I)
	}
	if want := []int64{0, 1, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("kept rows %v, want %v", got, want)
	}
	if st.VecBatches == 0 {
		t.Fatal("filter did not run vectorized")
	}

	// AND mirror with NOT: NOT(n < 5) AND-composed via De Morgan shape.
	node2 := &plan.Filter{
		Input: nullScan(6),
		Pred: &plan.And{
			L: &plan.Not{X: cmp("<", col(1, "n"), intLit(99))}, // FALSE or NULL
			R: cmp(">=", col(0, "a"), intLit(0)),               // TRUE
		},
	}
	rows2, _ := runRowVsVec(t, node2, 1)
	if len(rows2) != 0 {
		t.Fatalf("FALSE/NULL AND TRUE kept %d rows, want 0", len(rows2))
	}
}

// TestVecMixedKernelFallbackProjection: one projection mixing kernel
// expressions with fallback-only ones (CASE, IN) must agree with the
// row engine and record both kernel and fallback work.
func TestVecMixedKernelFallbackProjection(t *testing.T) {
	inList := &plan.InList{X: col(1, "b"), List: []plan.Expr{intLit(1), intLit(2), intLit(96)}}
	caseExpr := &plan.Case{
		Whens: []plan.CaseWhen{{Cond: inList, Then: col(0, "a")}},
		Typ:   intT(), // ELSE NULL
	}
	node := &plan.Project{
		Input: bigScan(2000),
		Exprs: []plan.NamedExpr{
			{Expr: &plan.Call{Name: "*", Typ: intT(), Args: []plan.Expr{col(0, "a"), intLit(3)}},
				Col: plan.Col{Name: "m", Typ: intT()}},
			{Expr: caseExpr, Col: plan.Col{Name: "c", Typ: intT()}},
			{Expr: &plan.Call{Name: "/", Typ: floatT(),
				Args: []plan.Expr{&plan.ColRef{Index: 2, Name: "f", Typ: floatT()}, intLit(0)}},
				Col: plan.Col{Name: "d", Typ: floatT()}}, // x/0 -> NULL, no error
		},
		Sch: &plan.Schema{Cols: []plan.Col{
			{Name: "m", Typ: intT()}, {Name: "c", Typ: intT()}, {Name: "d", Typ: floatT()},
		}},
	}
	rows, st := runRowVsVec(t, node, 1)
	if len(rows) != 2000 {
		t.Fatalf("got %d rows", len(rows))
	}
	if st.VecKernelRows == 0 || st.VecFallbackRows == 0 {
		t.Fatalf("mixed projection must use both paths: kernel=%d fallback=%d",
			st.VecKernelRows, st.VecFallbackRows)
	}
}

// TestVecAggregateDistinctAndFilter: DISTINCT aggregates and FILTER
// clauses go through the vectorized accumulator and must agree with the
// row engine, including FILTER-gated argument evaluation.
func TestVecAggregateDistinctAndFilter(t *testing.T) {
	node := &plan.Aggregate{
		Input:      bigScan(1500),
		GroupExprs: []plan.Expr{&plan.Call{Name: "%", Typ: intT(), Args: []plan.Expr{col(0, "a"), intLit(7)}}},
		Sets:       [][]int{{0}},
		Aggs: []plan.AggCall{
			{Name: "COUNT", Args: []plan.Expr{col(1, "b")}, Distinct: true, KeyIndex: -1, Typ: intT()},
			{Name: "SUM", Args: []plan.Expr{col(0, "a")},
				Filter: cmp("<", col(1, "b"), intLit(10)), KeyIndex: -1, Typ: intT()},
			{Name: "COUNT", Star: true, KeyIndex: -1, Typ: intT()},
		},
		Sch: &plan.Schema{Cols: []plan.Col{
			{Name: "g", Typ: intT()},
			{Name: "cd", Typ: intT()},
			{Name: "sf", Typ: intT()},
			{Name: "cnt", Typ: intT()},
		}},
	}
	for _, workers := range []int{1, 4} {
		rows, st := runRowVsVec(t, node, workers)
		if len(rows) != 7 {
			t.Fatalf("workers=%d: got %d groups, want 7", workers, len(rows))
		}
		if workers == 1 && st.VecBatches == 0 {
			t.Fatal("aggregate did not run vectorized")
		}
	}
}

// TestVecVolatileFallsBackToRows: plans containing volatile functions
// must bypass the vectorized path entirely (column-major evaluation
// would reorder the calls) yet still succeed.
func TestVecVolatileFallsBackToRows(t *testing.T) {
	node := &plan.Project{
		Input: bigScan(100),
		Exprs: []plan.NamedExpr{
			{Expr: &plan.Call{Name: "RANDOM", Typ: floatT()}, Col: plan.Col{Name: "r", Typ: floatT()}},
		},
		Sch: &plan.Schema{Cols: []plan.Col{{Name: "r", Typ: floatT()}}},
	}
	settings := DefaultSettings()
	settings.Vectorized = true
	var stats Stats
	settings.Stats = &stats
	rows, err := Run(node, settings)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("got %d rows", len(rows))
	}
	if stats.VecBatches != 0 {
		t.Fatalf("volatile projection must not vectorize; got %d batches", stats.VecBatches)
	}
}
