package exec

import (
	"math/rand"
	"sync"
	"testing"
)

func TestHistogramBucketsMonotonic(t *testing.T) {
	prevIdx := -1
	prevUpper := int64(-1)
	for v := int64(0); v < 1<<20; v += 1 + v/7 {
		idx := histBucketIndex(v)
		if idx < prevIdx {
			t.Fatalf("bucket index not monotonic: v=%d idx=%d prev=%d", v, idx, prevIdx)
		}
		if up := histBucketUpper(idx); up < v {
			t.Fatalf("upper bound below member: v=%d idx=%d upper=%d", v, idx, up)
		}
		if idx != prevIdx {
			if up := histBucketUpper(idx); up <= prevUpper {
				t.Fatalf("upper bounds not increasing: idx=%d upper=%d prevUpper=%d", idx, up, prevUpper)
			}
			prevUpper = histBucketUpper(idx)
		}
		prevIdx = idx
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	// Uniform values 1..1000: p50 ≈ 500, p99 ≈ 990; the log buckets may
	// err high by one sub-bucket (≤ 25%).
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.SumNs != 500500 {
		t.Fatalf("sum = %d, want 500500", s.SumNs)
	}
	check := func(p float64, exact int64) {
		got := s.Quantile(p)
		if got < exact || float64(got) > float64(exact)*1.3 {
			t.Errorf("q%.2f = %d, want within [%d, %d]", p, got, exact, int64(float64(exact)*1.3))
		}
	}
	check(0.50, 500)
	check(0.95, 950)
	check(0.99, 990)
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5) // clamped to 0
	s := h.Snapshot()
	if s.Count != 2 || s.SumNs != 0 {
		t.Fatalf("count=%d sum=%d, want 2, 0", s.Count, s.SumNs)
	}
	if q := s.Quantile(0.99); q != 0 {
		t.Fatalf("q99 of zeros = %d, want 0", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
}

func TestHistogramEachBucketCumulative(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(int64(i * 977))
	}
	s := h.Snapshot()
	var last int64
	var calls int
	prevUpper := int64(-1)
	s.EachBucket(func(upper, cum int64) {
		if upper <= prevUpper {
			t.Fatalf("upper bounds not increasing: %d after %d", upper, prevUpper)
		}
		if cum <= last {
			t.Fatalf("cumulative counts not increasing: %d after %d", cum, last)
		}
		prevUpper, last = upper, cum
		calls++
	})
	if calls == 0 || last != s.Count {
		t.Fatalf("final cumulative = %d over %d buckets, want %d", last, calls, s.Count)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1_000_000))
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var sum int64
	for _, c := range s.Buckets {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}
