package exec

import (
	"fmt"
	"sort"

	"github.com/measures-sql/msql/internal/fn"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// groupAcc accumulates one group for one grouping set.
type groupAcc struct {
	keyVals []sqltypes.Value // values of this set's keys, indexed by key position
	states  []fn.AggState
	dedup   []map[string]bool // per aggregate, for DISTINCT
	// within tracks WITHIN DISTINCT key tuples and the argument values
	// first seen for each, to enforce functional dependence.
	within []map[string]string
	order  int // index of the group's first input row (stable output order)
}

// aggEnv holds per-query aggregate metadata shared by the serial and
// parallel aggregation paths.
type aggEnv struct {
	n        *plan.Aggregate
	defs     []*fn.Agg
	argTypes [][]sqltypes.Type
}

func newAggEnv(n *plan.Aggregate) (*aggEnv, error) {
	env := &aggEnv{
		n:        n,
		defs:     make([]*fn.Agg, len(n.Aggs)),
		argTypes: make([][]sqltypes.Type, len(n.Aggs)),
	}
	for i, call := range n.Aggs {
		if call.Name == "GROUPING" {
			continue
		}
		def, ok := fn.LookupAgg(call.Name)
		if !ok {
			return nil, fmt.Errorf("unknown aggregate %s at runtime", call.Name)
		}
		env.defs[i] = def
		types := make([]sqltypes.Type, len(call.Args))
		for j, a := range call.Args {
			types[j] = a.Type()
		}
		env.argTypes[i] = types
	}
	return env, nil
}

func (env *aggEnv) newAcc(keyVals []sqltypes.Value, order int) *groupAcc {
	n := env.n
	acc := &groupAcc{
		keyVals: keyVals,
		states:  make([]fn.AggState, len(n.Aggs)),
		dedup:   make([]map[string]bool, len(n.Aggs)),
		within:  make([]map[string]string, len(n.Aggs)),
		order:   order,
	}
	for i, call := range n.Aggs {
		if call.Name == "GROUPING" {
			continue
		}
		acc.states[i] = env.defs[i].New(env.argTypes[i])
		if call.Distinct {
			acc.dedup[i] = map[string]bool{}
		}
		if len(call.WithinDistinct) > 0 {
			acc.within[i] = map[string]string{}
		}
	}
	return acc
}

// nullKeyVals returns a full-width key tuple with this set's columns
// filled in and the rest NULL.
func (env *aggEnv) maskKeyVals(set []int, keyVals []sqltypes.Value) []sqltypes.Value {
	kv := make([]sqltypes.Value, len(env.n.GroupExprs))
	for j := range kv {
		kv[j] = sqltypes.Null(sqltypes.KindUnknown)
	}
	for _, j := range set {
		kv[j] = keyVals[j]
	}
	return kv
}

// chunkMergeable reports whether two-phase (partial-state merge)
// parallel aggregation is exact for this query: every aggregate's
// partial states must merge exactly (no floating-point accumulation),
// and DISTINCT / WITHIN DISTINCT need the group's full row stream in
// one place, so they disqualify the chunk-merge path.
func (env *aggEnv) chunkMergeable() bool {
	for i, call := range env.n.Aggs {
		if call.Name == "GROUPING" {
			continue
		}
		if call.Distinct || len(call.WithinDistinct) > 0 {
			return false
		}
		def := env.defs[i]
		if def.ExactMerge == nil || !def.ExactMerge(env.argTypes[i]) {
			return false
		}
	}
	return true
}

// exprs returns every expression the aggregate evaluates per row, for
// parallel-safety analysis and cost detection.
func (env *aggEnv) exprs() []plan.Expr {
	var exprs []plan.Expr
	exprs = append(exprs, env.n.GroupExprs...)
	for _, call := range env.n.Aggs {
		exprs = append(exprs, call.Args...)
		if call.Filter != nil {
			exprs = append(exprs, call.Filter)
		}
		exprs = append(exprs, call.WithinDistinct...)
	}
	return exprs
}

type setTable struct {
	groups map[string]*groupAcc
}

// accumulateFn folds in[lo:hi] into tables on the given runtime; it is
// either the row-at-a-time accumulateRows or the vectorized variant.
type accumulateFn func(w *runtime, env *aggEnv, tables []setTable, in []Row, lo, hi int) error

func newSetTables(n int) []setTable {
	tables := make([]setTable, n)
	for i := range tables {
		tables[i] = setTable{groups: map[string]*groupAcc{}}
	}
	return tables
}

// runAggregate evaluates grouping-set hash aggregation. The input is
// scanned once; every grouping set maintains its own hash table, so
// ROLLUP/CUBE cost one pass regardless of the number of sets. With
// spare workers the scan runs in parallel: either by chunk-merging
// partial states (exact-merge aggregates) or by partitioning groups
// across workers (order-sensitive aggregates); both orders groups by
// first input row, reproducing the serial output exactly.
func (rt *runtime) runAggregate(n *plan.Aggregate) ([]Row, error) {
	in, err := rt.run(n.Input)
	if err != nil {
		return nil, err
	}
	env, err := newAggEnv(n)
	if err != nil {
		return nil, err
	}

	// The vectorized accumulate shares the groupAcc machinery, so it
	// slots into both the serial and the chunk-merge parallel paths. The
	// group-partitioned path (order-sensitive aggregates with spare
	// workers) stays row-at-a-time: each worker skips most rows, which
	// defeats batching.
	accum := (*runtime).accumulateRows
	if rt.vecUsable(env.exprs()...) && env.vecAggOK() {
		vea := rt.pipelineAgg(env, n.Input.Schema())
		accum = func(w *runtime, env *aggEnv, tables []setTable, in []Row, lo, hi int) error {
			return w.accumulateRowsVec(env, vea, tables, in, lo, hi)
		}
	}

	var tables []setTable
	if workers, grain := rt.rowParallelism(len(in), env.exprs()...); workers > 1 {
		rt.noteFanout(n, workers)
		if env.chunkMergeable() {
			tables, err = rt.aggChunkMerge(env, in, workers, grain, accum)
		} else {
			tables, err = rt.aggGroupPartitioned(env, in, workers, grain)
		}
	} else {
		tables = newSetTables(len(n.Sets))
		err = accum(rt, env, tables, in, 0, len(in))
	}
	if err != nil {
		return nil, err
	}

	return env.emit(tables, len(in))
}

// accumulateRows folds rows[lo:hi] into tables, creating groups keyed
// by each grouping set. Group order is the first input-row index.
func (rt *runtime) accumulateRows(env *aggEnv, tables []setTable, in []Row, lo, hi int) error {
	n := env.n
	for i := lo; i < hi; i++ {
		if err := rt.tick(); err != nil {
			return err
		}
		row := in[i]
		// Evaluate each group expression once per row.
		keyVals := make([]sqltypes.Value, len(n.GroupExprs))
		for j, g := range n.GroupExprs {
			v, err := rt.eval(g, row)
			if err != nil {
				return err
			}
			keyVals[j] = v
		}
		for si, set := range n.Sets {
			setKey := make([]sqltypes.Value, len(set))
			for k, j := range set {
				setKey[k] = keyVals[j]
			}
			key := sqltypes.RowKey(setKey)
			acc := tables[si].groups[key]
			if acc == nil {
				acc = env.newAcc(env.maskKeyVals(set, keyVals), i)
				tables[si].groups[key] = acc
			}
			if err := rt.accumulate(env, acc, row); err != nil {
				return err
			}
		}
	}
	return nil
}

// aggChunkMerge is the two-phase parallel path: each chunk accumulates
// private partial tables over its contiguous row range, then partials
// are merged left-to-right in chunk order. Restricted to exact-merge
// aggregates, so the result is bit-identical to one serial pass.
func (rt *runtime) aggChunkMerge(env *aggEnv, in []Row, workers, grain int, accum accumulateFn) ([]setTable, error) {
	chunkTables := make([][]setTable, numChunks(len(in), grain))
	err := rt.forEachChunk(len(in), workers, grain, func(w *runtime, _, chunk, lo, hi int) error {
		t := newSetTables(len(env.n.Sets))
		if err := accum(w, env, t, in, lo, hi); err != nil {
			return err
		}
		chunkTables[chunk] = t
		return nil
	})
	if err != nil {
		return nil, err
	}

	tables := newSetTables(len(env.n.Sets))
	for _, ct := range chunkTables {
		for si := range ct {
			for key, acc := range ct[si].groups {
				dst := tables[si].groups[key]
				if dst == nil {
					tables[si].groups[key] = acc
					continue
				}
				// dst holds earlier chunks' rows; acc extends it.
				for ai := range dst.states {
					if dst.states[ai] == nil {
						continue
					}
					if err := dst.states[ai].Merge(acc.states[ai]); err != nil {
						return nil, err
					}
				}
				if acc.order < dst.order {
					dst.order = acc.order
				}
			}
		}
	}
	return tables, nil
}

// aggGroupPartitioned is the fallback parallel path for order-sensitive
// aggregates (floating-point SUM/AVG/VAR, DISTINCT, WITHIN DISTINCT):
// group keys are precomputed over morsels, then groups are partitioned
// across workers by key hash, and each worker folds its groups' rows in
// ascending input order — exactly the serial accumulation per group.
func (rt *runtime) aggGroupPartitioned(env *aggEnv, in []Row, workers, grain int) ([]setTable, error) {
	n := env.n
	nSets := len(n.Sets)

	// Phase 1: per-row group-expression values, set keys, and hashes.
	allKeyVals := make([][]sqltypes.Value, len(in))
	setKeys := make([]string, len(in)*nSets)
	setHash := make([]uint32, len(in)*nSets)
	err := rt.forEachChunk(len(in), workers, grain, func(w *runtime, _, _, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := w.tick(); err != nil {
				return err
			}
			keyVals := make([]sqltypes.Value, len(n.GroupExprs))
			for j, g := range n.GroupExprs {
				v, err := w.eval(g, in[i])
				if err != nil {
					return err
				}
				keyVals[j] = v
			}
			allKeyVals[i] = keyVals
			for si, set := range n.Sets {
				setKey := make([]sqltypes.Value, len(set))
				for k, j := range set {
					setKey[k] = keyVals[j]
				}
				key := sqltypes.RowKey(setKey)
				setKeys[i*nSets+si] = key
				setHash[i*nSets+si] = hash32(key)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: worker w owns the groups whose key hash ≡ w (mod
	// workers). Every worker scans all rows in ascending order but only
	// evaluates aggregate arguments for rows of its own groups, so each
	// group sees its input in global order on a single goroutine.
	workerTables := make([][]setTable, workers)
	err = rt.runWorkers(workers, func(w *runtime, worker int) error {
		tables := newSetTables(nSets)
		workerTables[worker] = tables
		for i, row := range in {
			if err := w.tick(); err != nil {
				return err
			}
			for si, set := range n.Sets {
				idx := i*nSets + si
				if int(setHash[idx])%workers != worker {
					continue
				}
				key := setKeys[idx]
				acc := tables[si].groups[key]
				if acc == nil {
					acc = env.newAcc(env.maskKeyVals(set, allKeyVals[i]), i)
					tables[si].groups[key] = acc
				}
				if err := w.accumulate(env, acc, row); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 3: union the disjoint per-worker tables.
	tables := newSetTables(nSets)
	for _, wt := range workerTables {
		for si := range wt {
			for key, acc := range wt[si].groups {
				tables[si].groups[key] = acc
			}
		}
	}
	return tables, nil
}

// emit renders the final rows: group key columns, then aggregates. Set
// order, then first-seen (first input row) order within a set, for
// deterministic output.
func (env *aggEnv) emit(tables []setTable, inputLen int) ([]Row, error) {
	n := env.n

	// A global grouping set (no keys) emits a row even with no input.
	for si, set := range n.Sets {
		if len(set) == 0 && len(tables[si].groups) == 0 {
			kv := make([]sqltypes.Value, len(n.GroupExprs))
			for j := range kv {
				kv[j] = sqltypes.Null(sqltypes.KindUnknown)
			}
			tables[si].groups[""] = env.newAcc(kv, inputLen)
		}
	}

	var out []Row
	for si, set := range n.Sets {
		inSet := make(map[int]bool, len(set))
		for _, j := range set {
			inSet[j] = true
		}
		accs := make([]*groupAcc, 0, len(tables[si].groups))
		for _, acc := range tables[si].groups {
			accs = append(accs, acc)
		}
		sortAccs(accs)
		for _, acc := range accs {
			row := make(Row, 0, len(n.GroupExprs)+len(n.Aggs))
			for j := range n.GroupExprs {
				if inSet[j] {
					row = append(row, acc.keyVals[j])
				} else {
					row = append(row, sqltypes.Null(n.GroupExprs[j].Type().Kind))
				}
			}
			for i, call := range n.Aggs {
				if call.Name == "GROUPING" {
					g := int64(1)
					if inSet[call.KeyIndex] {
						g = 0
					}
					row = append(row, sqltypes.NewInt(g))
					continue
				}
				row = append(row, acc.states[i].Result())
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func sortAccs(accs []*groupAcc) {
	sort.Slice(accs, func(a, b int) bool { return accs[a].order < accs[b].order })
}

func (rt *runtime) accumulate(env *aggEnv, acc *groupAcc, row Row) error {
	for i, call := range env.n.Aggs {
		if call.Name == "GROUPING" {
			continue
		}
		if call.Filter != nil {
			v, err := rt.eval(call.Filter, row)
			if err != nil {
				return err
			}
			if !v.IsTrue() {
				continue
			}
		}
		args := make([]sqltypes.Value, len(call.Args))
		skip := false
		for j, a := range call.Args {
			v, err := rt.eval(a, row)
			if err != nil {
				return err
			}
			args[j] = v
			if j == 0 && v.Null && env.defs[i].SkipNulls {
				skip = true
			}
		}
		if skip {
			continue
		}
		if call.Distinct {
			key := sqltypes.RowKey(args)
			if acc.dedup[i][key] {
				continue
			}
			acc.dedup[i][key] = true
		}
		if len(call.WithinDistinct) > 0 {
			keyVals := make([]sqltypes.Value, len(call.WithinDistinct))
			for j, k := range call.WithinDistinct {
				v, err := rt.eval(k, row)
				if err != nil {
					return err
				}
				keyVals[j] = v
			}
			key := sqltypes.RowKey(keyVals)
			argKey := sqltypes.RowKey(args)
			if prev, seen := acc.within[i][key]; seen {
				if prev != argKey {
					return fmt.Errorf("%s WITHIN DISTINCT: argument is not functionally dependent on the keys (two different values for one key tuple)", call.Name)
				}
				continue
			}
			acc.within[i][key] = argKey
		}
		if err := acc.states[i].Add(args); err != nil {
			return err
		}
	}
	return nil
}
