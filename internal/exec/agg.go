package exec

import (
	"fmt"
	"sort"

	"github.com/measures-sql/msql/internal/fn"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// groupAcc accumulates one group for one grouping set.
type groupAcc struct {
	keyVals []sqltypes.Value // values of this set's keys, indexed by key position
	states  []fn.AggState
	dedup   []map[string]bool // per aggregate, for DISTINCT
	// within tracks WITHIN DISTINCT key tuples and the argument values
	// first seen for each, to enforce functional dependence.
	within []map[string]string
	order  int // stable output order (first-seen)
}

// runAggregate evaluates grouping-set hash aggregation. The input is
// scanned once; every grouping set maintains its own hash table, so
// ROLLUP/CUBE cost one pass regardless of the number of sets.
func (rt *runtime) runAggregate(n *plan.Aggregate) ([]Row, error) {
	in, err := rt.run(n.Input)
	if err != nil {
		return nil, err
	}

	argTypes := make([][]sqltypes.Type, len(n.Aggs))
	aggDefs := make([]*fn.Agg, len(n.Aggs))
	for i, call := range n.Aggs {
		if call.Name == "GROUPING" {
			continue
		}
		def, ok := fn.LookupAgg(call.Name)
		if !ok {
			return nil, fmt.Errorf("unknown aggregate %s at runtime", call.Name)
		}
		aggDefs[i] = def
		types := make([]sqltypes.Type, len(call.Args))
		for j, a := range call.Args {
			types[j] = a.Type()
		}
		argTypes[i] = types
	}

	newAcc := func(keyVals []sqltypes.Value, order int) *groupAcc {
		acc := &groupAcc{
			keyVals: keyVals,
			states:  make([]fn.AggState, len(n.Aggs)),
			dedup:   make([]map[string]bool, len(n.Aggs)),
			within:  make([]map[string]string, len(n.Aggs)),
			order:   order,
		}
		for i, call := range n.Aggs {
			if call.Name == "GROUPING" {
				continue
			}
			acc.states[i] = aggDefs[i].New(argTypes[i])
			if call.Distinct {
				acc.dedup[i] = map[string]bool{}
			}
			if len(call.WithinDistinct) > 0 {
				acc.within[i] = map[string]string{}
			}
		}
		return acc
	}

	type setTable struct {
		groups map[string]*groupAcc
	}
	tables := make([]setTable, len(n.Sets))
	for i := range tables {
		tables[i] = setTable{groups: map[string]*groupAcc{}}
	}
	orderCounter := 0

	for _, row := range in {
		// Evaluate each group expression once per row.
		keyVals := make([]sqltypes.Value, len(n.GroupExprs))
		for j, g := range n.GroupExprs {
			v, err := rt.eval(g, row)
			if err != nil {
				return nil, err
			}
			keyVals[j] = v
		}
		for si, set := range n.Sets {
			setKey := make([]sqltypes.Value, len(set))
			for k, j := range set {
				setKey[k] = keyVals[j]
			}
			key := sqltypes.RowKey(setKey)
			acc := tables[si].groups[key]
			if acc == nil {
				kv := make([]sqltypes.Value, len(n.GroupExprs))
				for j := range kv {
					kv[j] = sqltypes.Null(sqltypes.KindUnknown)
				}
				for _, j := range set {
					kv[j] = keyVals[j]
				}
				acc = newAcc(kv, orderCounter)
				orderCounter++
				tables[si].groups[key] = acc
			}
			if err := rt.accumulate(n, acc, row, aggDefs); err != nil {
				return nil, err
			}
		}
	}

	// A global grouping set (no keys) emits a row even with no input.
	for si, set := range n.Sets {
		if len(set) == 0 && len(tables[si].groups) == 0 {
			kv := make([]sqltypes.Value, len(n.GroupExprs))
			for j := range kv {
				kv[j] = sqltypes.Null(sqltypes.KindUnknown)
			}
			tables[si].groups[""] = newAcc(kv, orderCounter)
			orderCounter++
		}
	}

	// Emit: group key columns, then aggregates. Set order, then first-seen
	// order within a set, for deterministic output.
	var out []Row
	for si, set := range n.Sets {
		inSet := make(map[int]bool, len(set))
		for _, j := range set {
			inSet[j] = true
		}
		accs := make([]*groupAcc, 0, len(tables[si].groups))
		for _, acc := range tables[si].groups {
			accs = append(accs, acc)
		}
		sortAccs(accs)
		for _, acc := range accs {
			row := make(Row, 0, len(n.GroupExprs)+len(n.Aggs))
			for j := range n.GroupExprs {
				if inSet[j] {
					row = append(row, acc.keyVals[j])
				} else {
					row = append(row, sqltypes.Null(n.GroupExprs[j].Type().Kind))
				}
			}
			for i, call := range n.Aggs {
				if call.Name == "GROUPING" {
					g := int64(1)
					if inSet[call.KeyIndex] {
						g = 0
					}
					row = append(row, sqltypes.NewInt(g))
					continue
				}
				row = append(row, acc.states[i].Result())
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func sortAccs(accs []*groupAcc) {
	sort.Slice(accs, func(a, b int) bool { return accs[a].order < accs[b].order })
}

func (rt *runtime) accumulate(n *plan.Aggregate, acc *groupAcc, row Row, defs []*fn.Agg) error {
	for i, call := range n.Aggs {
		if call.Name == "GROUPING" {
			continue
		}
		if call.Filter != nil {
			v, err := rt.eval(call.Filter, row)
			if err != nil {
				return err
			}
			if !v.IsTrue() {
				continue
			}
		}
		args := make([]sqltypes.Value, len(call.Args))
		skip := false
		for j, a := range call.Args {
			v, err := rt.eval(a, row)
			if err != nil {
				return err
			}
			args[j] = v
			if j == 0 && v.Null && defs[i].SkipNulls {
				skip = true
			}
		}
		if skip {
			continue
		}
		if call.Distinct {
			key := sqltypes.RowKey(args)
			if acc.dedup[i][key] {
				continue
			}
			acc.dedup[i][key] = true
		}
		if len(call.WithinDistinct) > 0 {
			keyVals := make([]sqltypes.Value, len(call.WithinDistinct))
			for j, k := range call.WithinDistinct {
				v, err := rt.eval(k, row)
				if err != nil {
					return err
				}
				keyVals[j] = v
			}
			key := sqltypes.RowKey(keyVals)
			argKey := sqltypes.RowKey(args)
			if prev, seen := acc.within[i][key]; seen {
				if prev != argKey {
					return fmt.Errorf("%s WITHIN DISTINCT: argument is not functionally dependent on the keys (two different values for one key tuple)", call.Name)
				}
				continue
			}
			acc.within[i][key] = argKey
		}
		if err := acc.states[i].Add(args); err != nil {
			return err
		}
	}
	return nil
}
