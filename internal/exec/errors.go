package exec

// Structured error taxonomy. Every error that escapes a public engine
// entry point is (or wraps) an *Error carrying a stable Code, the
// lifecycle phase that produced it, and — when known — the query text
// and a byte offset into it. Codes double as errors.Is sentinels:
//
//	if errors.Is(err, exec.CodeCanceled) { ... }
//
// and cancellation/timeout errors additionally unwrap to
// context.Canceled / context.DeadlineExceeded, so callers using either
// convention match.

import (
	"context"
	"errors"
	"fmt"
	stdruntime "runtime"
	"strings"
)

// Code is the stable classification of an engine error. Code implements
// error so the constants act as errors.Is targets.
type Code int

const (
	// CodeUnknown is the zero Code; no classified error carries it.
	CodeUnknown Code = iota
	// CodeParse: the statement text failed to lex or parse.
	CodeParse
	// CodeBind: name resolution or type checking failed.
	CodeBind
	// CodeExpand: measure expansion (AT-context rewriting) failed.
	CodeExpand
	// CodeRuntime: execution failed (bad cast, overflow, internal panic).
	CodeRuntime
	// CodeCanceled: the caller's context was canceled mid-statement.
	CodeCanceled
	// CodeTimeout: the statement deadline (Limits.Timeout or a caller
	// deadline) expired.
	CodeTimeout
	// CodeResourceExhausted: a resource governor limit tripped
	// (MaxRows, MaxMemBytes, MaxSubqueryEvals, MaxExpansionDepth).
	CodeResourceExhausted
	// CodeUnavailable: a required remote participant (a shard, or every
	// endpoint of one) could not be reached after retries, failover, and
	// hedging. Distributed queries fail with this rather than return a
	// silently partial answer.
	CodeUnavailable
)

var codeNames = map[Code]string{
	CodeUnknown:           "UNKNOWN",
	CodeParse:             "PARSE",
	CodeBind:              "BIND",
	CodeExpand:            "EXPAND",
	CodeRuntime:           "RUNTIME",
	CodeCanceled:          "CANCELED",
	CodeTimeout:           "TIMEOUT",
	CodeResourceExhausted: "RESOURCE_EXHAUSTED",
	CodeUnavailable:       "UNAVAILABLE",
}

// String returns the stable name of the code.
func (c Code) String() string {
	if n, ok := codeNames[c]; ok {
		return n
	}
	return fmt.Sprintf("CODE(%d)", int(c))
}

// Error implements error so Codes work as errors.Is sentinels.
func (c Code) Error() string { return c.String() }

// CodeFromName is the inverse of Code.String: it returns the Code whose
// stable name matches (case-insensitively), or CodeUnknown. The wire
// protocol uses it to reconstruct structured errors client-side.
func CodeFromName(name string) Code {
	for c, n := range codeNames {
		if strings.EqualFold(n, name) {
			return c
		}
	}
	return CodeUnknown
}

// Lifecycle phase names used in Error.Phase and trace spans.
const (
	PhaseParse    = "parse"
	PhaseBind     = "bind"
	PhaseExpand   = "expand"
	PhaseOptimize = "optimize"
	PhaseExecute  = "execute"
)

// Error is the structured engine error. It satisfies errors.Is against
// its Code and errors.As against *Error, and unwraps to the cause.
type Error struct {
	// Code classifies the failure; see the Code constants.
	Code Code
	// Phase is the lifecycle stage that produced the error.
	Phase string
	// Query is the statement text, when known ("" otherwise).
	Query string
	// Pos is a byte offset into Query locating the failure, -1 unknown.
	Pos int
	// Hint suggests how to avoid or fix the failure ("" when none).
	Hint string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	var sb strings.Builder
	sb.WriteString(strings.ToLower(e.Code.String()))
	if e.Phase != "" && e.Phase != strings.ToLower(e.Code.String()) {
		fmt.Fprintf(&sb, " (%s)", e.Phase)
	}
	sb.WriteString(": ")
	if e.Err != nil {
		sb.WriteString(e.Err.Error())
	} else {
		sb.WriteString("unknown error")
	}
	if e.Pos >= 0 && e.Query != "" {
		fmt.Fprintf(&sb, " (at byte offset %d)", e.Pos)
	}
	if e.Hint != "" {
		fmt.Fprintf(&sb, " [hint: %s]", e.Hint)
	}
	return sb.String()
}

// Unwrap exposes the cause to errors.Is/As chains.
func (e *Error) Unwrap() error { return e.Err }

// Is matches Code sentinels: errors.Is(err, CodeCanceled).
func (e *Error) Is(target error) bool {
	c, ok := target.(Code)
	return ok && c == e.Code
}

// Wrap classifies err under code and phase unless it is already an
// *Error (directly or wrapped), in which case it is returned unchanged.
// Context errors are classified as CodeCanceled/CodeTimeout regardless
// of the requested code.
func Wrap(err error, code Code, phase string) error {
	if err == nil {
		return nil
	}
	var e *Error
	if errors.As(err, &e) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return CtxError(err)
	}
	return &Error{Code: code, Phase: phase, Pos: -1, Err: err}
}

// CtxError classifies a context error: DeadlineExceeded → CodeTimeout,
// anything else → CodeCanceled. The original error stays in the chain,
// so errors.Is(err, context.Canceled) keeps working.
func CtxError(err error) *Error {
	code, hint := CodeCanceled, "the caller canceled the statement"
	if errors.Is(err, context.DeadlineExceeded) {
		code, hint = CodeTimeout, "raise Limits.Timeout or simplify the query"
	}
	return &Error{Code: code, Phase: PhaseExecute, Pos: -1, Hint: hint, Err: err}
}

// PanicError converts a recovered panic value into a CodeRuntime error
// carrying the first frames of the panicking goroutine's stack.
func PanicError(r any, phase string) *Error {
	buf := make([]byte, 8192)
	n := stdruntime.Stack(buf, false)
	return &Error{
		Code:  CodeRuntime,
		Phase: phase,
		Pos:   -1,
		Hint:  "internal panic recovered; the session remains usable",
		Err:   fmt.Errorf("panic: %v\n%s", r, buf[:n]),
	}
}

// WithQuery attaches the statement text to err's outermost *Error when
// it does not already carry one. Non-*Error errors pass through.
func WithQuery(err error, query string) error {
	var e *Error
	if errors.As(err, &e) && e.Query == "" {
		e.Query = query
	}
	return err
}
