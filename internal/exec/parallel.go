package exec

// This file implements morsel-parallel execution. Operators over
// materialized row slices split their input into contiguous chunks
// ("morsels") claimed dynamically by a small pool of worker goroutines,
// then reassemble outputs in chunk order, so results are bit-identical
// to the serial path. Each worker gets its own runtime (private
// outer-row stack, serial nested execution) while sharing the query's
// settings, stats, and the sharded singleflight memo cache below.

import (
	"context"
	"errors"
	stdruntime "runtime"
	"sync"
	"sync/atomic"

	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

const (
	// morselRows is the chunk size for row-parallel operators: big
	// enough to amortize scheduling, small enough to balance skew.
	morselRows = 4096
	// minParallelRows is the input size below which fan-out overhead
	// outweighs the work and operators stay serial.
	minParallelRows = 2048
)

func resolveWorkers(w int) int {
	if w <= 0 {
		return stdruntime.GOMAXPROCS(0)
	}
	return w
}

// child creates a worker runtime sharing this runtime's caches and
// settings. The outer stack is copied so the worker's nested subquery
// evaluation cannot alias the parent's; workers run nested plans
// serially (workers=1) so fan-out never nests.
func (rt *runtime) child() *runtime {
	outer := make([]Row, len(rt.outer))
	copy(outer, rt.outer)
	return &runtime{sh: rt.sh, outer: outer, workers: 1}
}

// rowParallelism decides worker count and chunk size for a row-wise
// operator over n input rows whose expressions are exprs. Serial (1, 0)
// unless the runtime has spare workers and every expression is
// parallel-safe (no volatile functions). Expressions containing
// subqueries make each row expensive — a handful of rows is then worth
// fanning out at fine granularity (the memo strategy's Project over a
// few hundred group contexts is exactly this shape); cheap expressions
// need a large input and coarse morsels to amortize scheduling.
func (rt *runtime) rowParallelism(n int, exprs ...plan.Expr) (workers, grain int) {
	w := rt.workers
	if w <= 1 || n < 2 {
		return 1, 0
	}
	expensive := false
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if !plan.ExprParallelSafe(e) {
			return 1, 0
		}
		plan.WalkExprs(e, func(x plan.Expr) {
			if _, ok := x.(*plan.Subquery); ok {
				expensive = true
			}
		})
	}
	grain = morselRows
	if expensive {
		// Fine-grained dynamic claiming; each task is a scan or a cache
		// hit, so per-chunk overhead is irrelevant.
		grain = (n + w*8 - 1) / (w * 8)
		if grain > morselRows {
			grain = morselRows
		}
	} else if n < minParallelRows {
		return 1, 0
	}
	if chunks := (n + grain - 1) / grain; chunks < w {
		w = chunks
	}
	if w <= 1 {
		return 1, 0
	}
	return w, grain
}

// taskParallelism decides the worker count for coarse independent work
// items (window partitions) drawn from totalRows input rows. Serial
// unless there are spare workers, at least two tasks, every expression
// is parallel-safe, and the work is worth fanning out (large input, or
// subquery-bearing expressions that make each task expensive).
func (rt *runtime) taskParallelism(nTasks, totalRows int, exprs ...plan.Expr) int {
	w := rt.workers
	if w <= 1 || nTasks < 2 {
		return 1
	}
	expensive := false
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if !plan.ExprParallelSafe(e) {
			return 1
		}
		plan.WalkExprs(e, func(x plan.Expr) {
			if _, ok := x.(*plan.Subquery); ok {
				expensive = true
			}
		})
	}
	if !expensive && totalRows < minParallelRows {
		return 1
	}
	if nTasks < w {
		w = nTasks
	}
	return w
}

// runWorkers runs fn on `workers` goroutines, each with its own child
// runtime. It always drains every worker (wg.Wait even on error or
// cancellation — no goroutine outlives the call), recovers worker
// panics into CodeRuntime errors, and returns the most informative
// error: a real failure is preferred over cancellation noise, since
// one worker's error cancels the statement and makes the other
// workers' context errors secondary.
func (rt *runtime) runWorkers(workers int, fn func(w *runtime, worker int) error) error {
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		w := rt.child()
		wg.Add(1)
		go func(i int, w *runtime) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = PanicError(r, PhaseExecute)
				}
			}()
			if err := failpoint(FailWorkerStart); err != nil {
				errs[i] = err
				return
			}
			errs[i] = fn(w, i)
		}(i, w)
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, CodeCanceled) && !errors.Is(err, CodeTimeout) {
			return err
		}
	}
	return first
}

// numChunks returns how many chunks of the given grain cover n rows.
func numChunks(n, grain int) int { return (n + grain - 1) / grain }

// forEachChunk processes [0, n) in contiguous grain-sized chunks on
// `workers` goroutines; chunks are claimed dynamically, and every
// worker walks its chunks in ascending order. fn must write only chunk-
// or worker-owned state. On error the remaining chunks are abandoned.
func (rt *runtime) forEachChunk(n, workers, grain int, fn func(w *runtime, worker, chunk, lo, hi int) error) error {
	chunks := numChunks(n, grain)
	var next atomic.Int64
	var failed atomic.Bool
	return rt.runWorkers(workers, func(w *runtime, worker int) error {
		for {
			if failed.Load() {
				return nil
			}
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return nil
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			if err := fn(w, worker, c, lo, hi); err != nil {
				failed.Store(true)
				return err
			}
		}
	})
}

// forEachTask processes task indices [0, n) on `workers` goroutines,
// one index at a time (for coarse work items like window partitions or
// aggregation groups).
func (rt *runtime) forEachTask(n, workers int, fn func(w *runtime, i int) error) error {
	var next atomic.Int64
	var failed atomic.Bool
	return rt.runWorkers(workers, func(w *runtime, _ int) error {
		for {
			if failed.Load() {
				return nil
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return nil
			}
			if err := fn(w, i); err != nil {
				failed.Store(true)
				return err
			}
		}
	})
}

// projectExprs collects a Project's expressions for safety analysis.
func projectExprs(n *plan.Project) []plan.Expr {
	exprs := make([]plan.Expr, len(n.Exprs))
	for i, ne := range n.Exprs {
		exprs[i] = ne.Expr
	}
	return exprs
}

// projectRow evaluates one Project output row.
func (rt *runtime) projectRow(n *plan.Project, row Row) (Row, error) {
	proj := make(Row, len(n.Exprs))
	for j, ne := range n.Exprs {
		v, err := rt.eval(ne.Expr, row)
		if err != nil {
			return nil, err
		}
		proj[j] = v
	}
	return proj, nil
}

// runFilterParallel evaluates the predicate over morsels in parallel,
// writing a keep-bit per row, then compacts serially in row order.
func (rt *runtime) runFilterParallel(n *plan.Filter, in []Row, workers, grain int) ([]Row, error) {
	keep := make([]bool, len(in))
	err := rt.forEachChunk(len(in), workers, grain, func(w *runtime, _, _, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := w.tick(); err != nil {
				return err
			}
			v, err := w.eval(n.Pred, in[i])
			if err != nil {
				return err
			}
			keep[i] = v.IsTrue()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Row
	for i, row := range in {
		if keep[i] {
			out = append(out, row)
		}
	}
	return out, nil
}

// runProjectParallel evaluates the projection over morsels in parallel;
// each row's output lands at its own index, so order is preserved.
func (rt *runtime) runProjectParallel(n *plan.Project, in []Row, workers, grain int) ([]Row, error) {
	out := make([]Row, len(in))
	err := rt.forEachChunk(len(in), workers, grain, func(w *runtime, _, _, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := w.tick(); err != nil {
				return err
			}
			proj, err := w.projectRow(n, in[i])
			if err != nil {
				return err
			}
			out[i] = proj
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Sharded singleflight memo cache

// memoShardCount is a power of two comfortably above typical worker
// counts, keeping shard-lock contention negligible.
const memoShardCount = 32

// memoCache memoizes subquery evaluations per (subquery, evaluation
// context) across all workers of one query. Lookups of an in-flight
// entry block until its computation finishes, so concurrent workers
// evaluating the same context trigger exactly one base-table scan —
// the paper's "localized self-join" strategy (§5.1), parallel.
type memoCache struct {
	shards [memoShardCount]memoShard
}

type memoShard struct {
	mu      sync.Mutex
	entries map[memoCacheKey]*memoEntry
}

type memoCacheKey struct {
	sq  *plan.Subquery
	ctx string
}

// memoEntry holds one computed subquery artifact. Fields are written by
// the computing goroutine before done is closed and read by waiters
// after it is closed (or by the sole owner for uncached evaluation).
type memoEntry struct {
	done   chan struct{}
	scalar sqltypes.Value
	exists bool
	set    *inSet
	err    error
}

func newMemoCache() *memoCache {
	c := &memoCache{}
	for i := range c.shards {
		c.shards[i].entries = map[memoCacheKey]*memoEntry{}
	}
	return c
}

// hash32 is FNV-1a, used to shard memo entries and partition aggregate
// groups across workers.
func hash32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func memoShardIndex(ctx string) uint32 {
	return hash32(ctx) % memoShardCount
}

// do returns the completed entry for (sq, key), running compute at most
// once across all goroutines. hit reports whether this caller was
// served by the cache — either a finished entry or a wait on another
// goroutine's in-flight computation — rather than computing itself.
// Waiters block with a context escape hatch, so cancellation never
// deadlocks on an in-flight evaluation. If compute panics, the entry is
// poisoned with the recovered error and closed (waking waiters) before
// the panic is re-raised toward the worker's recover — a crashed
// computation must not strand its waiters.
func (c *memoCache) do(ctx context.Context, sq *plan.Subquery, key string, compute func(*memoEntry)) (e *memoEntry, hit bool, err error) {
	s := &c.shards[memoShardIndex(key)]
	k := memoCacheKey{sq: sq, ctx: key}
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.mu.Unlock()
		select {
		case <-e.done:
			return e, true, nil
		case <-ctx.Done():
			return nil, false, CtxError(ctx.Err())
		}
	}
	e = &memoEntry{done: make(chan struct{})}
	s.entries[k] = e
	s.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			e.err = PanicError(r, PhaseExecute)
			close(e.done)
			panic(r)
		}
		close(e.done)
	}()
	compute(e)
	return e, false, nil
}
