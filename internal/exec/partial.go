package exec

import (
	"context"
	"errors"
	"fmt"

	"github.com/measures-sql/msql/internal/fn"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// Partial aggregation: the shard-side half of scatter-gather. A
// coordinator pushes an aggregation query to each shard; instead of
// finishing the aggregates, the shard exports per-group fn.AggState
// partials for the coordinator to Merge across shards — the Data Cube
// decomposition that makes distributed GROUP BY exact for every
// aggregate whose states merge exactly.

// ErrPartialUnsupported reports a plan whose shape the partial path
// cannot export (set operations, grouping sets, DISTINCT aggregates,
// window functions above the aggregate, …). Coordinators treat it as
// "run this query another way", not as a failure.
var ErrPartialUnsupported = errors.New("query shape not supported for partial aggregation")

// PartialGroup is one group's exported state: the GROUP BY key values,
// one partial state per aggregate call in plan order, and the index of
// the group's first post-filter input row on this shard (coordinators
// combine it with a global-sequence aggregate to reproduce first-seen
// output order).
type PartialGroup struct {
	Key    []sqltypes.Value
	States []fn.AggState
	Order  int
}

// PartialResult is a shard's answer to a partial-aggregation request.
// Groups are sorted by first appearance in the shard's input. An empty
// input yields zero groups even for a global aggregate — synthesizing
// the empty-input row is the coordinator's job, exactly once.
type PartialResult struct {
	Groups []PartialGroup
}

// PartialAggregate evaluates the scan/filter/group phase of an
// aggregation plan and exports partial states instead of final values.
// The plan must be an Aggregate, optionally under Projects (the shape
// the planner emits for a plain single-set GROUP BY query); groups and
// aggs cross-check the expected counts so a coordinator and shard that
// planned different texts can never silently merge mismatched state.
func PartialAggregate(ctx context.Context, root plan.Node, groups, aggs int, settings *Settings) (res *PartialResult, err error) {
	if settings == nil {
		settings = DefaultSettings()
	}
	if t := settings.Limits.Timeout; t > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, t)
			defer cancel()
		}
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, PanicError(r, PhaseExecute)
		}
		err = Wrap(err, CodeRuntime, PhaseExecute)
	}()

	agg, err := unwrapAggregate(root)
	if err != nil {
		return nil, err
	}
	if err := checkPartialShape(agg, groups, aggs); err != nil {
		return nil, err
	}

	env, err := newAggEnv(agg)
	if err != nil {
		return nil, err
	}
	rt := newRuntime(ctx, settings)
	in, err := rt.run(agg.Input)
	if err != nil {
		return nil, err
	}
	// One grouping set, so one table; the serial accumulate path keeps
	// group order = first input row even with a parallel-capable runtime.
	tables := newSetTables(1)
	if err := rt.accumulateRows(env, tables, in, 0, len(in)); err != nil {
		return nil, err
	}

	accs := make([]*groupAcc, 0, len(tables[0].groups))
	for _, acc := range tables[0].groups {
		accs = append(accs, acc)
	}
	sortAccs(accs)
	out := &PartialResult{Groups: make([]PartialGroup, len(accs))}
	for i, acc := range accs {
		out.Groups[i] = PartialGroup{Key: acc.keyVals, States: acc.states, Order: acc.order}
	}
	return out, nil
}

// unwrapAggregate walks the Project chain the planner stacks on top of
// an Aggregate (final select-list shaping) down to the Aggregate
// itself. Any other operator above the aggregate means the query's
// final answer is not a pure merge of per-shard groups.
func unwrapAggregate(n plan.Node) (*plan.Aggregate, error) {
	for {
		switch t := n.(type) {
		case *plan.Aggregate:
			return t, nil
		case *plan.Project:
			n = t.Input
		default:
			return nil, partialShapeError("plan has %T above the aggregate", n)
		}
	}
}

// checkPartialShape rejects aggregate plans whose states do not merge
// group-wise across shards.
func checkPartialShape(agg *plan.Aggregate, groups, aggs int) error {
	if len(agg.Sets) != 1 {
		return partialShapeError("%d grouping sets", len(agg.Sets))
	}
	if len(agg.Sets[0]) != len(agg.GroupExprs) {
		return partialShapeError("grouping set covers %d of %d keys", len(agg.Sets[0]), len(agg.GroupExprs))
	}
	for _, call := range agg.Aggs {
		if call.Name == "GROUPING" {
			return partialShapeError("GROUPING call")
		}
		if call.Distinct || len(call.WithinDistinct) > 0 {
			return partialShapeError("%s with DISTINCT needs the full row stream in one place", call.Name)
		}
	}
	if len(agg.GroupExprs) != groups || len(agg.Aggs) != aggs {
		return &Error{
			Code:  CodeBind,
			Phase: PhaseBind,
			Err: fmt.Errorf("partial aggregation shape mismatch: plan has %d keys and %d aggregates, request expects %d and %d",
				len(agg.GroupExprs), len(agg.Aggs), groups, aggs),
		}
	}
	return nil
}

func partialShapeError(format string, args ...any) error {
	return &Error{
		Code:  CodeBind,
		Phase: PhaseBind,
		Err:   fmt.Errorf("%w: %s", ErrPartialUnsupported, fmt.Sprintf(format, args...)),
	}
}
