package exec

import (
	"errors"
	"testing"
)

// Rate-mode failpoints must be deterministic in the seed: the same
// (ratio, seed) pair yields the same fail/pass sequence, so chaos runs
// reproduce.
func TestFailPointRateDeterministic(t *testing.T) {
	defer ClearFailPoints()
	sequence := func(ratio float64, seed int64, n int) []bool {
		SetFailPointRate(FailServerAccept, ratio, seed)
		defer SetFailPoint(FailServerAccept, nil)
		out := make([]bool, n)
		for i := range out {
			out[i] = Fire(FailServerAccept) != nil
		}
		return out
	}
	a := sequence(0.3, 42, 200)
	b := sequence(0.3, 42, 200)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverged at firing %d with identical seed", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("ratio 0.3 produced %d/%d failures; expected a mix", fails, len(a))
	}
	c := sequence(0.3, 43, 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical 200-firing sequences")
	}
}

func TestFailPointRateEdgeRatios(t *testing.T) {
	defer ClearFailPoints()
	SetFailPointRate(FailServerAccept, 1.0, 1)
	if err := Fire(FailServerAccept); err == nil {
		t.Fatalf("ratio 1.0 did not fire")
	} else if !errors.Is(err, CodeRuntime) {
		t.Fatalf("injected error is not CodeRuntime: %v", err)
	}
	SetFailPointRate(FailServerAccept, 0, 1) // clears the site
	if err := Fire(FailServerAccept); err != nil {
		t.Fatalf("ratio 0 still fired: %v", err)
	}
	if err := Fire(FailPoint("never-armed")); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
}
