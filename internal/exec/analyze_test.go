package exec

import (
	"fmt"
	"strings"
	"testing"

	"github.com/measures-sql/msql/internal/plan"
)

// memoProbePlan is the shared-memo plan of TestSharedMemoParallelQuery:
// 4000 outer rows probing a memoized correlated COUNT over 97 distinct
// contexts.
func memoProbePlan() plan.Node {
	right := bigScan(500)
	sub := &plan.Subquery{
		Mode: plan.SubScalar,
		Memo: true,
		Plan: &plan.Aggregate{
			Input: &plan.Filter{
				Input: right,
				Pred: &plan.Call{Name: "=", Typ: boolT(),
					Args: []plan.Expr{col(1, "b"), &plan.CorrRef{Levels: 1, Index: 1, Name: "b", Typ: intT()}}},
			},
			GroupExprs: nil,
			Sets:       [][]int{{}},
			Aggs:       []plan.AggCall{{Name: "COUNT", Star: true, KeyIndex: -1, Typ: intT()}},
			Sch:        &plan.Schema{Cols: []plan.Col{{Name: "c", Typ: intT()}}},
		},
		Typ: intT(),
	}
	outer := bigScan(4000)
	return &plan.Project{
		Input: outer,
		Exprs: []plan.NamedExpr{
			{Expr: col(0, "a"), Col: plan.Col{Name: "a", Typ: intT()}},
			{Expr: sub, Col: plan.Col{Name: "c", Typ: intT()}},
		},
		Sch: &plan.Schema{Cols: []plan.Col{{Name: "a", Typ: intT()}, {Name: "c", Typ: intT()}}},
	}
}

// TestExplainAnalyzeSharedMemoParallel is the rendered-plan version of
// TestSharedMemoParallelQuery: after a 4-worker run, the annotated tree
// must show exactly 97 subquery evaluations (one per distinct context)
// with every other probe served by the memo, agreeing with Stats.
func TestExplainAnalyzeSharedMemoParallel(t *testing.T) {
	node := memoProbePlan()
	settings := DefaultSettings()
	settings.Workers = 4
	var stats Stats
	settings.Stats = &stats
	prof := NewProfile(node)
	settings.Profile = prof
	rows, err := Run(node, settings)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4000 {
		t.Fatalf("got %d rows, want 4000", len(rows))
	}

	txt := plan.ExplainAnalyzeTree(node, prof)
	if !strings.Contains(txt, "(evals=97 hits=3903)") {
		t.Errorf("rendered plan must show 97 evals / 3903 hits:\n%s", txt)
	}
	// The annotation must agree with the executor's own counters.
	want := fmt.Sprintf("(evals=%d hits=%d)", stats.SubqueryEvals, stats.SubqueryCacheHits)
	if !strings.Contains(txt, want) {
		t.Errorf("rendered plan disagrees with Stats %s:\n%s", want, txt)
	}
	// The outer Project fanned out across workers.
	if !strings.Contains(txt, "workers=4") {
		t.Errorf("rendered plan must show the worker fan-out:\n%s", txt)
	}
	if stats.ParallelFanouts == 0 {
		t.Error("expected at least one recorded fan-out")
	}
	// Root row count annotates the Project line.
	if !strings.Contains(txt, "(rows=4000 workers=4") {
		t.Errorf("root annotation missing rows/workers:\n%s", txt)
	}
}

// TestProfileDisabledIsNil ensures runs without a Profile leave node
// metrics untouched (the zero-overhead path) and that ExplainAnalyzeTree
// with a nil source degrades to the plain rendering.
func TestProfileDisabledIsNil(t *testing.T) {
	node := memoProbePlan()
	settings := DefaultSettings()
	settings.Workers = 2
	if _, err := Run(node, settings); err != nil {
		t.Fatal(err)
	}
	plain := plan.ExplainAnalyzeTree(node, nil)
	if strings.Contains(plain, "rows=") || strings.Contains(plain, "evals=") {
		t.Errorf("nil-source rendering must be unannotated:\n%s", plain)
	}
	if plain != plan.ExplainTree(node) {
		t.Error("nil-source ExplainAnalyzeTree must equal ExplainTree")
	}
}

// TestOpMetricsConcurrent hammers one OpMetrics from several goroutines;
// run under -race in CI.
func TestOpMetricsConcurrent(t *testing.T) {
	m := &plan.OpMetrics{}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(w int) {
			for i := 0; i < 1000; i++ {
				m.Record(3, 5)
				m.NoteWorkers(w + 1)
				m.AddEval()
				m.AddCacheHit()
			}
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	got := m.Load()
	if got.Calls != 4000 || got.RowsOut != 12000 || got.WallNs != 20000 {
		t.Errorf("record counters: %+v", got)
	}
	if got.MaxWorkers != 4 {
		t.Errorf("MaxWorkers = %d, want 4", got.MaxWorkers)
	}
	if got.Evals != 4000 || got.CacheHits != 4000 {
		t.Errorf("subquery counters: %+v", got)
	}
}
