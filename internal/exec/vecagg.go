package exec

import (
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/internal/vec"
)

// Vectorized hash aggregation: group expressions, FILTER predicates, and
// aggregate arguments are evaluated column-at-a-time per batch, then a
// row loop folds values into the same groupAcc machinery the row path
// uses — so grouping-set semantics, DISTINCT dedup, first-input-row
// group order, and aggregate state transitions are shared, not cloned.

// vecAggExprs is the compiled columnar form of an Aggregate's
// expressions; shared read-only across worker goroutines.
type vecAggExprs struct {
	kinds   []sqltypes.Kind
	groups  []vecExpr
	filters []vecExpr // per aggregate, nil when no FILTER clause
	args    [][]vecExpr
}

// vecAggOK reports whether the vectorized accumulate handles this
// aggregate. WITHIN DISTINCT is excluded: its key evaluation and
// functional-dependence errors interleave with argument evaluation per
// row, which column-major evaluation cannot reproduce exactly.
func (env *aggEnv) vecAggOK() bool {
	for _, call := range env.n.Aggs {
		if len(call.WithinDistinct) > 0 {
			return false
		}
	}
	return true
}

func compileVecAgg(env *aggEnv, inSchema *plan.Schema) *vecAggExprs {
	kinds := schemaKinds(inSchema)
	width := len(kinds)
	n := env.n
	vea := &vecAggExprs{
		kinds:   kinds,
		groups:  make([]vecExpr, len(n.GroupExprs)),
		filters: make([]vecExpr, len(n.Aggs)),
		args:    make([][]vecExpr, len(n.Aggs)),
	}
	for j, g := range n.GroupExprs {
		vea.groups[j] = vecCompile(g, width)
	}
	for i, call := range n.Aggs {
		if call.Name == "GROUPING" {
			continue
		}
		if call.Filter != nil {
			vea.filters[i] = vecCompile(call.Filter, width)
		}
		args := make([]vecExpr, len(call.Args))
		for j, a := range call.Args {
			args[j] = vecCompile(a, width)
		}
		vea.args[i] = args
	}
	return vea
}

// accumulateRowsVec is accumulateRows batch-at-a-time. Aggregate
// arguments are evaluated only over the rows whose FILTER predicate
// passed — the row path never evaluates arguments on filtered-out rows,
// so the columnar path must not either (an argument that errors on a
// filtered-out row would otherwise fail queries the row engine runs).
func (rt *runtime) accumulateRowsVec(env *aggEnv, vea *vecAggExprs, tables []setTable, in []Row, lo, hi int) error {
	n := env.n
	sc := rt.getAggScratch(n)
	kv := sc.kv
	keyBuf := sc.keyBuf[:0]
	defer func() {
		sc.keyBuf = keyBuf
		rt.putAggScratch(sc)
	}()
	argBufs := sc.argBufs
	filterCols := sc.filterCols
	argCols := sc.argCols
	groupCols := sc.groupCols

	for blo := lo; blo < hi; blo += vec.BatchRows {
		bhi := min(blo+vec.BatchRows, hi)
		bn := bhi - blo
		if err := rt.tickBatch(bn); err != nil {
			return err
		}
		vb := rt.getBatchShared(n.Input, blo, in[blo:bhi], vea.kinds)
		sel := batchIota[:bn]
		for j, g := range vea.groups {
			c, err := g.eval(rt, vb, sel)
			if err != nil {
				return err
			}
			groupCols[j] = c
		}
		for i, call := range n.Aggs {
			if call.Name == "GROUPING" {
				continue
			}
			asel := sel
			filterCols[i] = nil
			if f := vea.filters[i]; f != nil {
				fc, err := f.eval(rt, vb, sel)
				if err != nil {
					return err
				}
				filterCols[i] = fc
				sub := make([]int, 0, bn)
				for _, r := range sel {
					if fc.Value(r).IsTrue() {
						sub = append(sub, r)
					}
				}
				asel = sub
			}
			for j, a := range vea.args[i] {
				argCols[i][j] = nil
				if len(asel) == 0 {
					continue // no row will read this column
				}
				c, err := a.eval(rt, vb, asel)
				if err != nil {
					return err
				}
				argCols[i][j] = c
			}
		}
		for r := 0; r < bn; r++ {
			for j, c := range groupCols {
				kv[j] = c.Value(r)
			}
			for si, set := range n.Sets {
				keyBuf = keyBuf[:0]
				for _, j := range set {
					keyBuf = kv[j].AppendKey(keyBuf)
				}
				// string(keyBuf) in the index expression stays
				// allocation-free (the compiler's map-lookup special
				// case); only a missing group pays for the key copy.
				acc := tables[si].groups[string(keyBuf)]
				if acc == nil {
					acc = env.newAcc(env.maskKeyVals(set, kv), blo+r)
					tables[si].groups[string(keyBuf)] = acc
				}
				if err := env.accumulateVecRow(acc, r, filterCols, argCols, argBufs); err != nil {
					return err
				}
			}
		}
		rt.noteBatch(n, vb)
		rt.putBatch(vb)
	}
	return nil
}

// accumulateVecRow folds row r of the current batch into acc, mirroring
// accumulate() over pre-evaluated columns.
func (env *aggEnv) accumulateVecRow(acc *groupAcc, r int, filterCols []*vec.Col, argCols [][]*vec.Col, argBufs [][]sqltypes.Value) error {
	for i, call := range env.n.Aggs {
		if call.Name == "GROUPING" {
			continue
		}
		if fc := filterCols[i]; fc != nil && !fc.Value(r).IsTrue() {
			continue
		}
		args := argBufs[i]
		skip := false
		for j, c := range argCols[i] {
			v := c.Value(r)
			args[j] = v
			if j == 0 && v.Null && env.defs[i].SkipNulls {
				skip = true
			}
		}
		if skip {
			continue
		}
		if call.Distinct {
			key := sqltypes.RowKey(args)
			if acc.dedup[i][key] {
				continue
			}
			acc.dedup[i][key] = true
		}
		if err := acc.states[i].Add(args); err != nil {
			return err
		}
	}
	return nil
}
