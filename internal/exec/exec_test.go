package exec

import (
	"testing"

	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

func intT() sqltypes.Type  { return sqltypes.Type{Kind: sqltypes.KindInt} }
func boolT() sqltypes.Type { return sqltypes.Type{Kind: sqltypes.KindBool} }

func valuesNode(cols []string, rows ...[]int64) *plan.Values {
	sch := &plan.Schema{}
	for _, c := range cols {
		sch.Cols = append(sch.Cols, plan.Col{Name: c, Typ: intT()})
	}
	out := &plan.Values{Sch: sch}
	for _, r := range rows {
		exprs := make([]plan.Expr, len(r))
		for i, v := range r {
			exprs[i] = &plan.Lit{Val: sqltypes.NewInt(v)}
		}
		out.Rows = append(out.Rows, exprs)
	}
	return out
}

func col(i int, name string) *plan.ColRef { return &plan.ColRef{Index: i, Name: name, Typ: intT()} }

func TestSemiJoin(t *testing.T) {
	left := valuesNode([]string{"a"}, []int64{1}, []int64{2}, []int64{3})
	right := valuesNode([]string{"b"}, []int64{2}, []int64{2}, []int64{3})
	join := &plan.Join{
		Kind:      plan.JoinSemi,
		Left:      left,
		Right:     right,
		EquiLeft:  []plan.Expr{col(0, "a")},
		EquiRight: []plan.Expr{col(0, "b")},
		Sch:       left.Sch,
	}
	rows, err := Run(join, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Semi join: left rows with at least one match, emitted once each.
	if len(rows) != 2 || rows[0][0].I != 2 || rows[1][0].I != 3 {
		t.Fatalf("semi join rows: %v", rows)
	}
}

func TestMemoizationConsistency(t *testing.T) {
	// A correlated scalar subquery evaluated with and without memoization
	// must agree. The subquery counts right rows with b <= outer a.
	mk := func() plan.Node {
		right := valuesNode([]string{"b"}, []int64{1}, []int64{2}, []int64{3})
		sub := &plan.Subquery{
			Plan: &plan.Aggregate{
				Input: &plan.Filter{
					Input: right,
					Pred: &plan.Call{Name: "<=", Typ: boolT(),
						Args: []plan.Expr{col(0, "b"), &plan.CorrRef{Levels: 1, Index: 0, Name: "a", Typ: intT()}}},
				},
				Sets: [][]int{{}},
				Aggs: []plan.AggCall{{Name: "COUNT", Star: true, KeyIndex: -1, Typ: intT()}},
				Sch:  &plan.Schema{Cols: []plan.Col{{Name: "c", Typ: intT()}}},
			},
			Mode: plan.SubScalar,
			Typ:  intT(),
			Memo: true,
		}
		left := valuesNode([]string{"a"}, []int64{2}, []int64{2}, []int64{3}, []int64{0})
		return &plan.Project{
			Input: left,
			Exprs: []plan.NamedExpr{
				{Expr: col(0, "a"), Col: plan.Col{Name: "a", Typ: intT()}},
				{Expr: sub, Col: plan.Col{Name: "c", Typ: intT()}},
			},
			Sch: &plan.Schema{Cols: []plan.Col{{Name: "a", Typ: intT()}, {Name: "c", Typ: intT()}}},
		}
	}
	want := [][2]int64{{2, 2}, {2, 2}, {3, 3}, {0, 0}}
	for _, memo := range []bool{true, false} {
		rows, err := Run(mk(), &Settings{MemoizeSubqueries: memo})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(want) {
			t.Fatalf("memo=%v: %d rows", memo, len(rows))
		}
		for i, w := range want {
			if rows[i][0].I != w[0] || rows[i][1].I != w[1] {
				t.Errorf("memo=%v row %d: %v want %v", memo, i, rows[i], w)
			}
		}
	}
}

func TestScalarSubqueryEmptyAndMulti(t *testing.T) {
	empty := &plan.Subquery{
		Plan: &plan.Filter{
			Input: valuesNode([]string{"b"}, []int64{1}),
			Pred:  &plan.Lit{Val: sqltypes.NewBool(false)},
		},
		Mode: plan.SubScalar,
		Typ:  intT(),
	}
	out := &plan.Project{
		Input: valuesNode([]string{"a"}, []int64{0}),
		Exprs: []plan.NamedExpr{{Expr: empty, Col: plan.Col{Name: "v", Typ: intT()}}},
		Sch:   &plan.Schema{Cols: []plan.Col{{Name: "v", Typ: intT()}}},
	}
	rows, err := Run(out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0][0].Null {
		t.Errorf("empty scalar subquery should be NULL, got %v", rows[0][0])
	}

	multi := &plan.Subquery{
		Plan: valuesNode([]string{"b"}, []int64{1}, []int64{2}),
		Mode: plan.SubScalar,
		Typ:  intT(),
	}
	bad := &plan.Project{
		Input: valuesNode([]string{"a"}, []int64{0}),
		Exprs: []plan.NamedExpr{{Expr: multi, Col: plan.Col{Name: "v", Typ: intT()}}},
		Sch:   &plan.Schema{Cols: []plan.Col{{Name: "v", Typ: intT()}}},
	}
	if _, err := Run(bad, nil); err == nil {
		t.Error("multi-row scalar subquery must error")
	}
}

func TestNullSafeInSubquery(t *testing.T) {
	nullLit := &plan.Lit{Val: sqltypes.Null(sqltypes.KindInt)}
	setWithNull := &plan.Values{
		Rows: [][]plan.Expr{{nullLit}, {&plan.Lit{Val: sqltypes.NewInt(1)}}},
		Sch:  &plan.Schema{Cols: []plan.Col{{Name: "v", Typ: intT()}}},
	}
	mk := func(nullSafe bool) plan.Node {
		in := &plan.Subquery{
			Plan:     setWithNull,
			Mode:     plan.SubIn,
			Exprs:    []plan.Expr{nullLit},
			Typ:      boolT(),
			NullSafe: nullSafe,
		}
		return &plan.Project{
			Input: valuesNode([]string{"a"}, []int64{0}),
			Exprs: []plan.NamedExpr{{Expr: in, Col: plan.Col{Name: "v", Typ: boolT()}}},
			Sch:   &plan.Schema{Cols: []plan.Col{{Name: "v", Typ: boolT()}}},
		}
	}
	// NULL-safe: NULL IN {NULL, 1} is TRUE.
	rows, err := Run(mk(true), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0][0].IsTrue() {
		t.Errorf("null-safe membership: %v", rows[0][0])
	}
	// Plain SQL: NULL IN anything non-empty is NULL.
	rows, err = Run(mk(false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0][0].Null {
		t.Errorf("SQL IN with NULL lhs: %v", rows[0][0])
	}
}

func TestLimitEdgeCases(t *testing.T) {
	in := valuesNode([]string{"a"}, []int64{1}, []int64{2}, []int64{3})
	neg := &plan.Limit{Input: in, Count: &plan.Lit{Val: sqltypes.NewInt(-1)}}
	rows, err := Run(neg, nil)
	if err != nil || len(rows) != 0 {
		t.Errorf("negative limit: %v %v", rows, err)
	}
	far := &plan.Limit{Input: in, Offset: &plan.Lit{Val: sqltypes.NewInt(10)}}
	rows, err = Run(far, nil)
	if err != nil || len(rows) != 0 {
		t.Errorf("offset beyond input: %v %v", rows, err)
	}
}

func TestCorrRefOutOfScope(t *testing.T) {
	bad := &plan.Project{
		Input: valuesNode([]string{"a"}, []int64{1}),
		Exprs: []plan.NamedExpr{{
			Expr: &plan.CorrRef{Levels: 3, Index: 0, Name: "ghost", Typ: intT()},
			Col:  plan.Col{Name: "v", Typ: intT()},
		}},
		Sch: &plan.Schema{Cols: []plan.Col{{Name: "v", Typ: intT()}}},
	}
	if _, err := Run(bad, nil); err == nil {
		t.Error("out-of-scope correlation must error, not panic")
	}
}
