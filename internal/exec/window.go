package exec

import (
	"fmt"
	"sort"

	"github.com/measures-sql/msql/internal/fn"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// runWindow computes window functions: each function partitions the
// input, optionally sorts each partition, and computes one value per row
// (whole-partition for aggregates without ORDER BY, running peer-group
// frames with ORDER BY). Output rows preserve input order with the
// function results appended.
func (rt *runtime) runWindow(n *plan.Window) ([]Row, error) {
	in, err := rt.run(n.Input)
	if err != nil {
		return nil, err
	}
	results := make([][]sqltypes.Value, len(n.Funcs))
	for fi, wf := range n.Funcs {
		vals, err := rt.windowFunc(n, wf, in)
		if err != nil {
			return nil, err
		}
		results[fi] = vals
	}
	out := make([]Row, len(in))
	for i, row := range in {
		wide := make(Row, 0, len(row)+len(n.Funcs))
		wide = append(wide, row...)
		for fi := range n.Funcs {
			wide = append(wide, results[fi][i])
		}
		out[i] = wide
	}
	return out, nil
}

func (rt *runtime) windowFunc(n *plan.Window, wf plan.WindowFunc, in []Row) ([]sqltypes.Value, error) {
	// Partition: compute per-row partition keys (over morsels when the
	// input is large and the keys are safe), then bucket serially so
	// partOrder stays first-seen order.
	rowKeys := make([]string, len(in))
	evalKeys := func(w *runtime, lo, hi int) error {
		keyVals := make([]sqltypes.Value, len(wf.PartitionBy))
		for i := lo; i < hi; i++ {
			if err := w.tick(); err != nil {
				return err
			}
			for j, e := range wf.PartitionBy {
				v, err := w.eval(e, in[i])
				if err != nil {
					return err
				}
				keyVals[j] = v
			}
			rowKeys[i] = sqltypes.RowKey(keyVals)
		}
		return nil
	}
	if w, g := rt.rowParallelism(len(in), wf.PartitionBy...); w > 1 {
		rt.noteFanout(n, w)
		err := rt.forEachChunk(len(in), w, g, func(wr *runtime, _, _, lo, hi int) error {
			return evalKeys(wr, lo, hi)
		})
		if err != nil {
			return nil, err
		}
	} else if err := evalKeys(rt, 0, len(in)); err != nil {
		return nil, err
	}
	partitions := map[string][]int{}
	var partOrder []string
	for i := range in {
		key := rowKeys[i]
		if _, ok := partitions[key]; !ok {
			partOrder = append(partOrder, key)
		}
		partitions[key] = append(partitions[key], i)
	}

	// Partitions are independent: each one sorts its own rows and writes
	// results at its own disjoint set of out indices, so with spare
	// workers whole partitions are computed in parallel.
	out := make([]sqltypes.Value, len(in))
	exprs := append([]plan.Expr{}, wf.Args...)
	for _, item := range wf.OrderBy {
		exprs = append(exprs, item.Expr)
	}
	if w := rt.taskParallelism(len(partOrder), len(in), exprs...); w > 1 {
		rt.noteFanout(n, w)
		err := rt.forEachTask(len(partOrder), w, func(wr *runtime, pi int) error {
			return wr.windowOnePartition(wf, in, partitions[partOrder[pi]], out)
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	for _, key := range partOrder {
		if err := rt.windowOnePartition(wf, in, partitions[key], out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// windowOnePartition sorts one partition's rows (when the function has
// ORDER BY) and computes its per-row results into out.
func (rt *runtime) windowOnePartition(wf plan.WindowFunc, in []Row, idxs []int, out []sqltypes.Value) error {
	if len(wf.OrderBy) == 0 {
		return rt.windowPartition(wf, in, idxs, nil, out)
	}
	sortKeys := make([][]sqltypes.Value, len(idxs))
	for k, i := range idxs {
		if err := rt.tick(); err != nil {
			return err
		}
		sk := make([]sqltypes.Value, len(wf.OrderBy))
		for j, item := range wf.OrderBy {
			v, err := rt.eval(item.Expr, in[i])
			if err != nil {
				return err
			}
			sk[j] = v
		}
		sortKeys[k] = sk
	}
	perm := make([]int, len(idxs))
	for k := range perm {
		perm[k] = k
	}
	var sortErr error
	sort.SliceStable(perm, func(a, b int) bool {
		for j, item := range wf.OrderBy {
			c, err := compareForSort(sortKeys[perm[a]][j], sortKeys[perm[b]][j], item)
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	sorted := make([]int, len(idxs))
	keys := make([][]sqltypes.Value, len(idxs))
	for k, p := range perm {
		sorted[k] = idxs[p]
		keys[k] = sortKeys[p]
	}
	return rt.windowPartition(wf, in, sorted, keys, out)
}

// windowPartition computes wf over one partition (already sorted when
// sortKeys is non-nil) and writes per-row results into out.
func (rt *runtime) windowPartition(wf plan.WindowFunc, in []Row, idxs []int, sortKeys [][]sqltypes.Value, out []sqltypes.Value) error {
	peerEnd := func(start int) int {
		if sortKeys == nil {
			return len(idxs)
		}
		end := start + 1
		for end < len(idxs) && sameKeys(sortKeys[start], sortKeys[end]) {
			end++
		}
		return end
	}

	switch wf.Name {
	case "ROW_NUMBER":
		for k := range idxs {
			out[idxs[k]] = sqltypes.NewInt(int64(k + 1))
		}
		return nil
	case "RANK", "DENSE_RANK":
		rank, dense := 1, 1
		for k := 0; k < len(idxs); {
			end := peerEnd(k)
			val := int64(rank)
			if wf.Name == "DENSE_RANK" {
				val = int64(dense)
			}
			for p := k; p < end; p++ {
				out[idxs[p]] = sqltypes.NewInt(val)
			}
			rank += end - k
			dense++
			k = end
		}
		return nil
	case "NTILE":
		if len(wf.Args) != 1 {
			return fmt.Errorf("NTILE requires a bucket count")
		}
		nv, err := rt.eval(wf.Args[0], in[idxs[0]])
		if err != nil {
			return err
		}
		if nv.Null || nv.I <= 0 {
			return fmt.Errorf("NTILE bucket count must be positive")
		}
		n := len(idxs)
		// More buckets than rows puts row k alone in bucket k+1, which is
		// exactly what buckets=n computes — clamping is result-identical
		// and keeps k*buckets inside int64 for hostile bucket counts.
		buckets := n
		if nv.I < int64(n) {
			buckets = int(nv.I)
		}
		for k := range idxs {
			out[idxs[k]] = sqltypes.NewInt(int64(k*buckets/n + 1))
		}
		return nil
	case "LAG", "LEAD":
		offset := int64(1)
		if len(wf.Args) >= 2 {
			ov, err := rt.eval(wf.Args[1], in[idxs[0]])
			if err != nil {
				return err
			}
			offset = ov.I
		}
		for k := range idxs {
			src := k - int(offset)
			if wf.Name == "LEAD" {
				src = k + int(offset)
			}
			if src >= 0 && src < len(idxs) {
				v, err := rt.eval(wf.Args[0], in[idxs[src]])
				if err != nil {
					return err
				}
				out[idxs[k]] = v
			} else if len(wf.Args) >= 3 {
				v, err := rt.eval(wf.Args[2], in[idxs[k]])
				if err != nil {
					return err
				}
				out[idxs[k]] = v
			} else {
				out[idxs[k]] = sqltypes.Null(wf.Typ.Kind)
			}
		}
		return nil
	case "FIRST_VALUE", "LAST_VALUE":
		for k := 0; k < len(idxs); {
			end := peerEnd(k)
			srcIdx := 0
			if wf.Name == "LAST_VALUE" {
				if wf.Running {
					srcIdx = end - 1
				} else {
					srcIdx = len(idxs) - 1
				}
			}
			v, err := rt.eval(wf.Args[0], in[idxs[srcIdx]])
			if err != nil {
				return err
			}
			for p := k; p < end; p++ {
				out[idxs[p]] = v
			}
			k = end
		}
		return nil
	}

	// Aggregate function as a window.
	def, ok := fn.LookupAgg(wf.Name)
	if !ok {
		return fmt.Errorf("unknown window function %s", wf.Name)
	}
	types := make([]sqltypes.Type, len(wf.Args))
	for i, a := range wf.Args {
		types[i] = a.Type()
	}
	addRow := func(state fn.AggState, i int) error {
		if err := rt.tick(); err != nil {
			return err
		}
		args := make([]sqltypes.Value, len(wf.Args))
		for j, a := range wf.Args {
			v, err := rt.eval(a, in[i])
			if err != nil {
				return err
			}
			args[j] = v
		}
		if len(args) > 0 && args[0].Null && def.SkipNulls {
			return nil
		}
		return state.Add(args)
	}

	if !wf.Running {
		state := def.New(types)
		for _, i := range idxs {
			if err := addRow(state, i); err != nil {
				return err
			}
		}
		v := state.Result()
		for _, i := range idxs {
			out[i] = v
		}
		return nil
	}

	// Running frame: accumulate through each peer group, all peers share
	// the value (RANGE UNBOUNDED PRECEDING .. CURRENT ROW).
	state := def.New(types)
	for k := 0; k < len(idxs); {
		end := peerEnd(k)
		for p := k; p < end; p++ {
			if err := addRow(state, idxs[p]); err != nil {
				return err
			}
		}
		v := state.Result()
		for p := k; p < end; p++ {
			out[idxs[p]] = v
		}
		k = end
	}
	return nil
}

func sameKeys(a, b []sqltypes.Value) bool {
	return sqltypes.RowKey(a) == sqltypes.RowKey(b)
}
