// Package exec evaluates logical plans over in-memory rows. It is a
// materializing executor: each operator produces its full result. The
// piece most relevant to the paper is subquery memoization — correlated
// scalar subqueries (which every measure reference compiles to) are
// cached keyed on the outer values they depend on, which is exactly the
// "localized self-join" execution strategy of §5.1: compute each
// evaluation context's aggregate once, then probe the cached result.
package exec

import (
	"fmt"

	"github.com/measures-sql/msql/internal/fn"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// Row is one tuple of values.
type Row = []sqltypes.Value

// Stats counts executor events for one query; the experiment harness and
// tests use it to verify strategies do what they claim (e.g. memoization
// evaluates each distinct context once).
type Stats struct {
	// SubqueryEvals counts actual subquery plan executions.
	SubqueryEvals int
	// SubqueryCacheHits counts evaluations served from the memo cache.
	SubqueryCacheHits int
	// RowsScanned counts rows produced by Scan nodes.
	RowsScanned int
}

// Settings control execution strategies (for ablation benchmarks).
type Settings struct {
	// MemoizeSubqueries enables the localized self-join strategy: cache
	// subquery results keyed by their correlated inputs. Disabling it
	// re-evaluates subqueries per outer row (the naive strategy).
	MemoizeSubqueries bool
	// Stats, when non-nil, accumulates executor counters.
	Stats *Stats
}

// DefaultSettings returns the production configuration.
func DefaultSettings() *Settings {
	return &Settings{MemoizeSubqueries: true}
}

// runtime carries per-query execution state.
type runtime struct {
	settings *Settings
	// outer is the stack of outer-frame rows; a CorrRef at level L reads
	// outer[len(outer)-L].
	outer []Row
	// memo caches subquery evaluations per Subquery node.
	memo map[*plan.Subquery]*memoState
	// deps caches the discovered external dependencies per Subquery node.
	deps map[*plan.Subquery][]corrDep
}

type corrDep struct {
	levels int // relative to the subquery frame: 1 = immediate outer
	index  int
}

type memoState struct {
	scalar map[string]sqltypes.Value
	exists map[string]bool
	inSet  map[string]*inSet
}

type inSet struct {
	keys    map[string]bool
	hasNull bool
	count   int
}

func newRuntime(settings *Settings) *runtime {
	return &runtime{
		settings: settings,
		memo:     map[*plan.Subquery]*memoState{},
		deps:     map[*plan.Subquery][]corrDep{},
	}
}

func (rt *runtime) outerAt(levels int) (Row, error) {
	if levels <= 0 || levels > len(rt.outer) {
		return nil, fmt.Errorf("correlated reference escapes the available scopes (level %d of %d)", levels, len(rt.outer))
	}
	return rt.outer[len(rt.outer)-levels], nil
}

// eval evaluates e against row.
func (rt *runtime) eval(e plan.Expr, row Row) (sqltypes.Value, error) {
	switch e := e.(type) {
	case *plan.ColRef:
		if e.Index < 0 || e.Index >= len(row) {
			return sqltypes.Value{}, fmt.Errorf("column index %d out of range (row width %d)", e.Index, len(row))
		}
		return row[e.Index], nil

	case *plan.CorrRef:
		outer, err := rt.outerAt(e.Levels)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if e.Index < 0 || e.Index >= len(outer) {
			return sqltypes.Value{}, fmt.Errorf("correlated column index %d out of range", e.Index)
		}
		return outer[e.Index], nil

	case *plan.Lit:
		return e.Val, nil

	case *plan.Call:
		return rt.evalCall(e, row)

	case *plan.And:
		l, err := rt.eval(e.L, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if l.IsFalse() {
			return l, nil
		}
		r, err := rt.eval(e.R, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.And(l, r), nil

	case *plan.Or:
		l, err := rt.eval(e.L, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if l.IsTrue() {
			return l, nil
		}
		r, err := rt.eval(e.R, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.Or(l, r), nil

	case *plan.Not:
		x, err := rt.eval(e.X, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.Not(x), nil

	case *plan.IsNull:
		x, err := rt.eval(e.X, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewBool(x.Null != e.Neg), nil

	case *plan.IsDistinct:
		l, err := rt.eval(e.L, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		r, err := rt.eval(e.R, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		same := sqltypes.NotDistinct(l, r)
		return sqltypes.NewBool(same == e.Neg), nil

	case *plan.InList:
		return rt.evalInList(e, row)

	case *plan.Case:
		for _, w := range e.Whens {
			c, err := rt.eval(w.Cond, row)
			if err != nil {
				return sqltypes.Value{}, err
			}
			if c.IsTrue() {
				return rt.eval(w.Then, row)
			}
		}
		if e.Else != nil {
			return rt.eval(e.Else, row)
		}
		return sqltypes.Null(e.Typ.Kind), nil

	case *plan.Cast:
		x, err := rt.eval(e.X, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.Cast(x, e.Kind)

	case *plan.Subquery:
		return rt.evalSubquery(e, row)

	case *plan.AggRef:
		return sqltypes.Value{}, fmt.Errorf("internal error: unresolved aggregate reference at runtime")

	default:
		return sqltypes.Value{}, fmt.Errorf("internal error: cannot evaluate %T", e)
	}
}

func (rt *runtime) evalCall(e *plan.Call, row Row) (sqltypes.Value, error) {
	sc, ok := fn.LookupScalar(e.Name)
	if !ok {
		return sqltypes.Value{}, fmt.Errorf("unknown function %s at runtime", e.Name)
	}
	args := make([]sqltypes.Value, len(e.Args))
	anyNull := false
	for i, a := range e.Args {
		v, err := rt.eval(a, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		args[i] = v
		if v.Null {
			anyNull = true
		}
	}
	if sc.Strict && anyNull {
		return sqltypes.Null(e.Typ.Kind), nil
	}
	out, err := sc.Eval(args)
	if err != nil {
		return sqltypes.Value{}, err
	}
	return out, nil
}

func (rt *runtime) evalInList(e *plan.InList, row Row) (sqltypes.Value, error) {
	x, err := rt.eval(e.X, row)
	if err != nil {
		return sqltypes.Value{}, err
	}
	sawNull := x.Null
	matched := false
	for _, item := range e.List {
		v, err := rt.eval(item, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if v.Null || x.Null {
			sawNull = true
			continue
		}
		c, err := sqltypes.Compare(x, v)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if c == 0 {
			matched = true
			break
		}
	}
	switch {
	case matched:
		return sqltypes.NewBool(!e.Neg), nil
	case sawNull:
		return sqltypes.Null(sqltypes.KindBool), nil
	default:
		return sqltypes.NewBool(e.Neg), nil
	}
}

// collectDeps walks a subquery plan and records every reference to rows
// outside the subquery's own frame, for memo keying.
func collectDeps(sq *plan.Subquery) []corrDep {
	seen := map[corrDep]bool{}
	var deps []corrDep
	var walkNode func(n plan.Node, depth int)
	var walkExpr func(e plan.Expr, depth int)
	walkExpr = func(e plan.Expr, depth int) {
		plan.WalkExprs(e, func(x plan.Expr) {
			switch x := x.(type) {
			case *plan.CorrRef:
				// At nesting depth d (d = 1 directly inside sq.Plan), a
				// reference with Levels >= d escapes sq; relative to
				// sq's own frame it is at level Levels-d+1.
				if x.Levels >= depth {
					d := corrDep{levels: x.Levels - depth + 1, index: x.Index}
					if !seen[d] {
						seen[d] = true
						deps = append(deps, d)
					}
				}
			case *plan.Subquery:
				walkNode(x.Plan, depth+1)
			}
		})
	}
	walkNode = func(n plan.Node, depth int) {
		plan.VisitNodeExprs(n, func(e plan.Expr) { walkExpr(e, depth) })
		for _, c := range n.Children() {
			walkNode(c, depth)
		}
	}
	walkNode(sq.Plan, 1)
	return deps
}

// memoKey computes the cache key for sq given the current outer frames
// (with row about to be pushed as the immediate outer frame).
func (rt *runtime) memoKey(sq *plan.Subquery, row Row) (string, error) {
	deps, ok := rt.deps[sq]
	if !ok {
		deps = collectDeps(sq)
		rt.deps[sq] = deps
	}
	vals := make([]sqltypes.Value, len(deps))
	for i, d := range deps {
		var frame Row
		if d.levels == 1 {
			frame = row
		} else {
			f, err := rt.outerAt(d.levels - 1)
			if err != nil {
				return "", err
			}
			frame = f
		}
		if d.index < 0 || d.index >= len(frame) {
			return "", fmt.Errorf("correlated index %d out of range in memo key", d.index)
		}
		vals[i] = frame[d.index]
	}
	return sqltypes.RowKey(vals), nil
}

func (rt *runtime) evalSubquery(sq *plan.Subquery, row Row) (sqltypes.Value, error) {
	memoize := sq.Memo && rt.settings.MemoizeSubqueries
	var key string
	var state *memoState
	if memoize {
		k, err := rt.memoKey(sq, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		key = k
		state = rt.memo[sq]
		if state == nil {
			state = &memoState{}
			rt.memo[sq] = state
		}
	}

	switch sq.Mode {
	case plan.SubScalar:
		if memoize {
			if v, ok := state.scalar[key]; ok {
				rt.countHit()
				return v, nil
			}
		}
		rows, err := rt.runNested(sq, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		var v sqltypes.Value
		switch len(rows) {
		case 0:
			v = sqltypes.Null(sq.Typ.Kind)
		case 1:
			v = rows[0][0]
		default:
			return sqltypes.Value{}, fmt.Errorf("scalar subquery returned %d rows", len(rows))
		}
		if memoize {
			if state.scalar == nil {
				state.scalar = map[string]sqltypes.Value{}
			}
			state.scalar[key] = v
		}
		return v, nil

	case plan.SubExists:
		var exists bool
		cached := false
		if memoize {
			if v, ok := state.exists[key]; ok {
				exists, cached = v, true
				rt.countHit()
			}
		}
		if !cached {
			rows, err := rt.runNested(sq, row)
			if err != nil {
				return sqltypes.Value{}, err
			}
			exists = len(rows) > 0
			if memoize {
				if state.exists == nil {
					state.exists = map[string]bool{}
				}
				state.exists[key] = exists
			}
		}
		return sqltypes.NewBool(exists != sq.Neg), nil

	case plan.SubIn:
		var set *inSet
		if memoize {
			set = state.inSet[key]
			if set != nil {
				rt.countHit()
			}
		}
		if set == nil {
			rows, err := rt.runNested(sq, row)
			if err != nil {
				return sqltypes.Value{}, err
			}
			set = &inSet{keys: make(map[string]bool, len(rows)), count: len(rows)}
			for _, r := range rows {
				set.keys[sqltypes.RowKey(r)] = true
				for _, v := range r {
					if v.Null {
						set.hasNull = true
					}
				}
			}
			if memoize {
				if state.inSet == nil {
					state.inSet = map[string]*inSet{}
				}
				state.inSet[key] = set
			}
		}
		left := make([]sqltypes.Value, len(sq.Exprs))
		leftNull := false
		for i, e := range sq.Exprs {
			v, err := rt.eval(e, row)
			if err != nil {
				return sqltypes.Value{}, err
			}
			left[i] = v
			if v.Null {
				leftNull = true
			}
		}
		if sq.NullSafe {
			// Evaluation-context link terms: IS NOT DISTINCT FROM
			// membership, never NULL.
			return sqltypes.NewBool(set.keys[sqltypes.RowKey(left)] != sq.Neg), nil
		}
		if !leftNull && set.keys[sqltypes.RowKey(left)] {
			return sqltypes.NewBool(!sq.Neg), nil
		}
		if (leftNull && set.count > 0) || set.hasNull {
			return sqltypes.Null(sqltypes.KindBool), nil
		}
		return sqltypes.NewBool(sq.Neg), nil

	default:
		return sqltypes.Value{}, fmt.Errorf("unknown subquery mode")
	}
}

func (rt *runtime) countHit() {
	if rt.settings.Stats != nil {
		rt.settings.Stats.SubqueryCacheHits++
	}
}

func (rt *runtime) runNested(sq *plan.Subquery, row Row) ([]Row, error) {
	if rt.settings.Stats != nil {
		rt.settings.Stats.SubqueryEvals++
	}
	rt.outer = append(rt.outer, row)
	rows, err := rt.run(sq.Plan)
	rt.outer = rt.outer[:len(rt.outer)-1]
	return rows, err
}
