// Package exec evaluates logical plans over in-memory rows. It is a
// materializing executor: each operator produces its full result. The
// piece most relevant to the paper is subquery memoization — correlated
// scalar subqueries (which every measure reference compiles to) are
// cached keyed on the outer values they depend on, which is exactly the
// "localized self-join" execution strategy of §5.1: compute each
// evaluation context's aggregate once, then probe the cached result.
package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/measures-sql/msql/internal/fn"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// Row is one tuple of values.
type Row = []sqltypes.Value

// Stats counts executor events for one query; the experiment harness and
// tests use it to verify strategies do what they claim (e.g. memoization
// evaluates each distinct context once). Counters are updated atomically
// so they stay exact when Workers > 1.
type Stats struct {
	// SubqueryEvals counts actual subquery plan executions.
	SubqueryEvals int64
	// SubqueryCacheHits counts evaluations served from the memo cache
	// (including waits on another worker's in-flight evaluation).
	SubqueryCacheHits int64
	// RowsScanned counts rows produced by Scan nodes.
	RowsScanned int64
	// ParallelFanouts counts operator executions that fanned out to more
	// than one worker goroutine.
	ParallelFanouts int64
	// VecBatches counts columnar batches processed by the vectorized
	// operators (zero when Settings.Vectorized is off or nothing
	// vectorized).
	VecBatches int64
	// VecKernelRows counts expression-node evaluations done by batch
	// kernels and columnar operators; VecFallbackRows counts the rows a
	// vectorized operator handed back to the row-at-a-time evaluator
	// (subqueries, CASE, anything without a kernel).
	VecKernelRows   int64
	VecFallbackRows int64
	// RollupHits counts Aggregate nodes answered from the materialized
	// rollup lattice instead of hash aggregation over their input.
	RollupHits int64
}

// Reset zeroes the counters with atomic stores, so a session may reuse
// one Stats across queries even while other goroutines run queries that
// update it.
func (s *Stats) Reset() {
	atomic.StoreInt64(&s.SubqueryEvals, 0)
	atomic.StoreInt64(&s.SubqueryCacheHits, 0)
	atomic.StoreInt64(&s.RowsScanned, 0)
	atomic.StoreInt64(&s.ParallelFanouts, 0)
	atomic.StoreInt64(&s.VecBatches, 0)
	atomic.StoreInt64(&s.VecKernelRows, 0)
	atomic.StoreInt64(&s.VecFallbackRows, 0)
	atomic.StoreInt64(&s.RollupHits, 0)
}

// Snapshot returns a copy taken with atomic loads, safe against
// concurrent updates from worker goroutines.
func (s *Stats) Snapshot() Stats {
	return Stats{
		SubqueryEvals:     atomic.LoadInt64(&s.SubqueryEvals),
		SubqueryCacheHits: atomic.LoadInt64(&s.SubqueryCacheHits),
		RowsScanned:       atomic.LoadInt64(&s.RowsScanned),
		ParallelFanouts:   atomic.LoadInt64(&s.ParallelFanouts),
		VecBatches:        atomic.LoadInt64(&s.VecBatches),
		VecKernelRows:     atomic.LoadInt64(&s.VecKernelRows),
		VecFallbackRows:   atomic.LoadInt64(&s.VecFallbackRows),
		RollupHits:        atomic.LoadInt64(&s.RollupHits),
	}
}

// Settings control execution strategies (for ablation benchmarks).
type Settings struct {
	// MemoizeSubqueries enables the localized self-join strategy: cache
	// subquery results keyed by their correlated inputs. Disabling it
	// re-evaluates subqueries per outer row (the naive strategy).
	MemoizeSubqueries bool
	// Workers bounds the number of goroutines an operator may fan out
	// to. 0 means runtime.GOMAXPROCS(0); 1 runs every operator on the
	// calling goroutine (the exact serial path). Results are identical
	// for any value.
	Workers int
	// Vectorized routes filter, project, and hash-aggregate through the
	// columnar batch engine (internal/vec) where every expression either
	// runs as a typed batch kernel or falls back per-expression to the
	// row evaluator. Results are bit-identical to the row engine for any
	// setting; the differential harness enforces it.
	Vectorized bool
	// Stats, when non-nil, accumulates executor counters.
	Stats *Stats
	// Profile, when non-nil, collects per-operator metrics for EXPLAIN
	// ANALYZE. Leaving it nil keeps the instrumented paths to a single
	// nil check per operator call.
	Profile *Profile
	// Tracer, when non-nil, receives execution span events.
	Tracer Tracer
	// Limits bounds the statement's resource consumption; the zero
	// value is unlimited. See Limits for the dimensions.
	Limits Limits
	// Params holds prepared-statement parameter values: a plan.Param
	// with Index i evaluates to Params[i]. Values are constant for the
	// duration of one execution.
	Params []sqltypes.Value
	// Pipeline, when non-nil, carries compiled vectorized expression
	// trees and pooled batch scratch reused across executions of a
	// cached plan. It must only be set for executions of the exact
	// plan.Node the pipeline was built for (compiled trees are keyed by
	// node identity).
	Pipeline *Pipeline
	// Rollups, when non-nil, is consulted before every Aggregate
	// execution; eligible nodes are answered from materialized rollup
	// state instead of rescanning their input. Answers are bit-identical
	// to direct execution for any setting.
	Rollups RollupProvider
}

// DefaultSettings returns the production configuration.
func DefaultSettings() *Settings {
	return &Settings{MemoizeSubqueries: true}
}

// shared is the per-query state common to every worker goroutine: the
// settings, the concurrency-safe subquery memo cache, and the discovered
// correlation dependencies per subquery.
type shared struct {
	settings *Settings
	// prof mirrors settings.Profile so operators pay one pointer load on
	// the hot path instead of chasing settings.
	prof *Profile
	// ctx carries the statement's cancellation signal; every worker
	// checks it at amortized per-row checkpoints.
	ctx context.Context
	// bud is the statement's resource-consumption ledger.
	bud    *budget
	memo   *memoCache
	depsMu sync.RWMutex
	deps   map[*plan.Subquery][]corrDep
}

// runtime carries the execution state of one goroutine. The top-level
// runtime owns the full worker budget; worker runtimes created by the
// parallel operators share sh but run nested plans serially.
type runtime struct {
	sh *shared
	// outer is the stack of outer-frame rows; a CorrRef at level L reads
	// outer[len(outer)-L].
	outer []Row
	// workers is this goroutine's parallelism budget for the operators
	// it executes; worker runtimes get 1 so fan-out never nests.
	workers int
	// steps counts rows processed since the last cancellation check;
	// tick amortizes the context poll over cancelCheckRows rows.
	steps int
}

// cancelCheckRows is the amortization interval of the cooperative
// cancellation checkpoints: row loops poll the context once per this
// many rows, keeping the per-row overhead to an increment and compare.
const cancelCheckRows = 1024

// tick is the cooperative cancellation checkpoint called from row
// loops. It polls the context every cancelCheckRows calls.
func (rt *runtime) tick() error {
	if rt.steps++; rt.steps < cancelCheckRows {
		return nil
	}
	return rt.tickNow()
}

// tickNow polls the context immediately and resets the amortization
// counter.
func (rt *runtime) tickNow() error {
	rt.steps = 0
	if err := rt.sh.ctx.Err(); err != nil {
		return CtxError(err)
	}
	return nil
}

type corrDep struct {
	levels int // relative to the subquery frame: 1 = immediate outer
	index  int
}

type inSet struct {
	keys    map[string]bool
	hasNull bool
	count   int
}

func newRuntime(ctx context.Context, settings *Settings) *runtime {
	return &runtime{
		sh: &shared{
			settings: settings,
			prof:     settings.Profile,
			ctx:      ctx,
			bud:      &budget{limits: settings.Limits},
			memo:     newMemoCache(),
			deps:     map[*plan.Subquery][]corrDep{},
		},
		workers: resolveWorkers(settings.Workers),
	}
}

func (rt *runtime) outerAt(levels int) (Row, error) {
	if levels <= 0 || levels > len(rt.outer) {
		return nil, fmt.Errorf("correlated reference escapes the available scopes (level %d of %d)", levels, len(rt.outer))
	}
	return rt.outer[len(rt.outer)-levels], nil
}

// eval evaluates e against row.
func (rt *runtime) eval(e plan.Expr, row Row) (sqltypes.Value, error) {
	switch e := e.(type) {
	case *plan.ColRef:
		if e.Index < 0 || e.Index >= len(row) {
			return sqltypes.Value{}, fmt.Errorf("column index %d out of range (row width %d)", e.Index, len(row))
		}
		return row[e.Index], nil

	case *plan.CorrRef:
		outer, err := rt.outerAt(e.Levels)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if e.Index < 0 || e.Index >= len(outer) {
			return sqltypes.Value{}, fmt.Errorf("correlated column index %d out of range", e.Index)
		}
		return outer[e.Index], nil

	case *plan.Lit:
		return e.Val, nil

	case *plan.Param:
		ps := rt.sh.settings.Params
		if e.Index < 0 || e.Index >= len(ps) {
			return sqltypes.Value{}, fmt.Errorf("parameter $%d not bound (%d provided)", e.Index+1, len(ps))
		}
		return ps[e.Index], nil

	case *plan.Call:
		return rt.evalCall(e, row)

	case *plan.And:
		l, err := rt.eval(e.L, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if l.IsFalse() {
			return l, nil
		}
		r, err := rt.eval(e.R, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.And(l, r), nil

	case *plan.Or:
		l, err := rt.eval(e.L, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if l.IsTrue() {
			return l, nil
		}
		r, err := rt.eval(e.R, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.Or(l, r), nil

	case *plan.Not:
		x, err := rt.eval(e.X, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.Not(x), nil

	case *plan.IsNull:
		x, err := rt.eval(e.X, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewBool(x.Null != e.Neg), nil

	case *plan.IsDistinct:
		l, err := rt.eval(e.L, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		r, err := rt.eval(e.R, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		same := sqltypes.NotDistinct(l, r)
		return sqltypes.NewBool(same == e.Neg), nil

	case *plan.InList:
		return rt.evalInList(e, row)

	case *plan.Case:
		for _, w := range e.Whens {
			c, err := rt.eval(w.Cond, row)
			if err != nil {
				return sqltypes.Value{}, err
			}
			if c.IsTrue() {
				return rt.eval(w.Then, row)
			}
		}
		if e.Else != nil {
			return rt.eval(e.Else, row)
		}
		return sqltypes.Null(e.Typ.Kind), nil

	case *plan.Cast:
		x, err := rt.eval(e.X, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.Cast(x, e.Kind)

	case *plan.Subquery:
		return rt.evalSubquery(e, row)

	case *plan.AggRef:
		return sqltypes.Value{}, fmt.Errorf("internal error: unresolved aggregate reference at runtime")

	default:
		return sqltypes.Value{}, fmt.Errorf("internal error: cannot evaluate %T", e)
	}
}

func (rt *runtime) evalCall(e *plan.Call, row Row) (sqltypes.Value, error) {
	sc, ok := fn.LookupScalar(e.Name)
	if !ok {
		return sqltypes.Value{}, fmt.Errorf("unknown function %s at runtime", e.Name)
	}
	args := make([]sqltypes.Value, len(e.Args))
	anyNull := false
	for i, a := range e.Args {
		v, err := rt.eval(a, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		args[i] = v
		if v.Null {
			anyNull = true
		}
	}
	if sc.Strict && anyNull {
		return sqltypes.Null(e.Typ.Kind), nil
	}
	out, err := sc.Eval(args)
	if err != nil {
		// Attach the call site's source position (when the binder
		// recorded one) so hostile-input failures — bad casts, integer
		// overflow — point at the offending expression.
		pos := -1
		if e.Pos > 0 {
			pos = e.Pos - 1
		}
		return sqltypes.Value{}, &Error{
			Code: CodeRuntime, Phase: PhaseExecute, Pos: pos,
			Err: fmt.Errorf("in %s: %w", e.Name, err),
		}
	}
	return out, nil
}

func (rt *runtime) evalInList(e *plan.InList, row Row) (sqltypes.Value, error) {
	x, err := rt.eval(e.X, row)
	if err != nil {
		return sqltypes.Value{}, err
	}
	sawNull := x.Null
	matched := false
	for _, item := range e.List {
		v, err := rt.eval(item, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if v.Null || x.Null {
			sawNull = true
			continue
		}
		c, err := sqltypes.Compare(x, v)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if c == 0 {
			matched = true
			break
		}
	}
	switch {
	case matched:
		return sqltypes.NewBool(!e.Neg), nil
	case sawNull:
		return sqltypes.Null(sqltypes.KindBool), nil
	default:
		return sqltypes.NewBool(e.Neg), nil
	}
}

// collectDeps walks a subquery plan and records every reference to rows
// outside the subquery's own frame, for memo keying.
func collectDeps(sq *plan.Subquery) []corrDep {
	seen := map[corrDep]bool{}
	var deps []corrDep
	var walkNode func(n plan.Node, depth int)
	var walkExpr func(e plan.Expr, depth int)
	walkExpr = func(e plan.Expr, depth int) {
		plan.WalkExprs(e, func(x plan.Expr) {
			switch x := x.(type) {
			case *plan.CorrRef:
				// At nesting depth d (d = 1 directly inside sq.Plan), a
				// reference with Levels >= d escapes sq; relative to
				// sq's own frame it is at level Levels-d+1.
				if x.Levels >= depth {
					d := corrDep{levels: x.Levels - depth + 1, index: x.Index}
					if !seen[d] {
						seen[d] = true
						deps = append(deps, d)
					}
				}
			case *plan.Subquery:
				walkNode(x.Plan, depth+1)
			}
		})
	}
	walkNode = func(n plan.Node, depth int) {
		plan.VisitNodeExprs(n, func(e plan.Expr) { walkExpr(e, depth) })
		for _, c := range n.Children() {
			walkNode(c, depth)
		}
	}
	walkNode(sq.Plan, 1)
	return deps
}

// memoKey computes the cache key for sq given the current outer frames
// (with row about to be pushed as the immediate outer frame).
func (rt *runtime) memoKey(sq *plan.Subquery, row Row) (string, error) {
	rt.sh.depsMu.RLock()
	deps, ok := rt.sh.deps[sq]
	rt.sh.depsMu.RUnlock()
	if !ok {
		deps = collectDeps(sq)
		rt.sh.depsMu.Lock()
		rt.sh.deps[sq] = deps
		rt.sh.depsMu.Unlock()
	}
	vals := make([]sqltypes.Value, len(deps))
	for i, d := range deps {
		var frame Row
		if d.levels == 1 {
			frame = row
		} else {
			f, err := rt.outerAt(d.levels - 1)
			if err != nil {
				return "", err
			}
			frame = f
		}
		if d.index < 0 || d.index >= len(frame) {
			return "", fmt.Errorf("correlated index %d out of range in memo key", d.index)
		}
		vals[i] = frame[d.index]
	}
	return sqltypes.RowKey(vals), nil
}

func (rt *runtime) evalSubquery(sq *plan.Subquery, row Row) (sqltypes.Value, error) {
	var e *memoEntry
	if sq.Memo && rt.sh.settings.MemoizeSubqueries {
		key, err := rt.memoKey(sq, row)
		if err != nil {
			return sqltypes.Value{}, err
		}
		// Singleflight: workers that race on the same evaluation context
		// wait for the one computing it — exactly one base scan per
		// distinct context (the parallel "localized self-join"). The
		// wait is context-aware, so a canceled query never blocks on an
		// in-flight evaluation.
		var hit bool
		e, hit, err = rt.sh.memo.do(rt.sh.ctx, sq, key, func(e *memoEntry) {
			rt.computeSubquery(sq, row, e)
		})
		if err != nil {
			return sqltypes.Value{}, err
		}
		if hit {
			rt.countHit(sq)
		}
	} else {
		e = &memoEntry{}
		rt.computeSubquery(sq, row, e)
	}
	if e.err != nil {
		return sqltypes.Value{}, e.err
	}

	switch sq.Mode {
	case plan.SubScalar:
		return e.scalar, nil

	case plan.SubExists:
		return sqltypes.NewBool(e.exists != sq.Neg), nil

	case plan.SubIn:
		set := e.set
		left := make([]sqltypes.Value, len(sq.Exprs))
		leftNull := false
		for i, x := range sq.Exprs {
			v, err := rt.eval(x, row)
			if err != nil {
				return sqltypes.Value{}, err
			}
			left[i] = v
			if v.Null {
				leftNull = true
			}
		}
		if sq.NullSafe {
			// Evaluation-context link terms: IS NOT DISTINCT FROM
			// membership, never NULL.
			return sqltypes.NewBool(set.keys[sqltypes.RowKey(left)] != sq.Neg), nil
		}
		if !leftNull && set.keys[sqltypes.RowKey(left)] {
			return sqltypes.NewBool(!sq.Neg), nil
		}
		if (leftNull && set.count > 0) || set.hasNull {
			return sqltypes.Null(sqltypes.KindBool), nil
		}
		return sqltypes.NewBool(sq.Neg), nil

	default:
		return sqltypes.Value{}, fmt.Errorf("unknown subquery mode")
	}
}

// computeSubquery runs sq's plan for the given outer row and fills e
// with the mode-specific artifact (scalar value, existence bit, or IN
// set); the per-row parts of IN are applied by the caller.
func (rt *runtime) computeSubquery(sq *plan.Subquery, row Row, e *memoEntry) {
	rows, err := rt.runNested(sq, row)
	if err != nil {
		e.err = err
		return
	}
	switch sq.Mode {
	case plan.SubScalar:
		switch len(rows) {
		case 0:
			e.scalar = sqltypes.Null(sq.Typ.Kind)
		case 1:
			e.scalar = rows[0][0]
		default:
			e.err = fmt.Errorf("scalar subquery returned %d rows", len(rows))
		}
	case plan.SubExists:
		e.exists = len(rows) > 0
	case plan.SubIn:
		set := &inSet{keys: make(map[string]bool, len(rows)), count: len(rows)}
		for _, r := range rows {
			set.keys[sqltypes.RowKey(r)] = true
			for _, v := range r {
				if v.Null {
					set.hasNull = true
				}
			}
		}
		e.set = set
	}
}

func (rt *runtime) countHit(sq *plan.Subquery) {
	if s := rt.sh.settings.Stats; s != nil {
		atomic.AddInt64(&s.SubqueryCacheHits, 1)
	}
	if p := rt.sh.prof; p != nil {
		p.SubqueryMetrics(sq).AddCacheHit()
	}
}

func (rt *runtime) runNested(sq *plan.Subquery, row Row) ([]Row, error) {
	if err := rt.sh.bud.noteSubqueryEval(len(rt.outer) + 1); err != nil {
		return nil, err
	}
	if err := failpoint(FailSubqueryEval); err != nil {
		return nil, err
	}
	if s := rt.sh.settings.Stats; s != nil {
		atomic.AddInt64(&s.SubqueryEvals, 1)
	}
	if p := rt.sh.prof; p != nil {
		p.SubqueryMetrics(sq).AddEval()
	}
	rt.outer = append(rt.outer, row)
	rows, err := rt.run(sq.Plan)
	rt.outer = rt.outer[:len(rt.outer)-1]
	return rows, err
}
