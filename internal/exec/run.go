package exec

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// Run evaluates a plan and returns its rows.
func Run(n plan.Node, settings *Settings) ([]Row, error) {
	return RunContext(context.Background(), n, settings)
}

// RunContext evaluates a plan under ctx. Cancellation is cooperative:
// operator loops poll the context every cancelCheckRows rows and return
// a CodeCanceled/CodeTimeout *Error. When settings.Limits.Timeout is
// set and ctx has no deadline of its own, the timeout is applied here.
// Internal panics are recovered and surfaced as CodeRuntime errors.
func RunContext(ctx context.Context, n plan.Node, settings *Settings) (rows []Row, err error) {
	if settings == nil {
		settings = DefaultSettings()
	}
	if t := settings.Limits.Timeout; t > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, t)
			defer cancel()
		}
	}
	defer func() {
		if r := recover(); r != nil {
			rows, err = nil, PanicError(r, PhaseExecute)
		}
		err = Wrap(err, CodeRuntime, PhaseExecute)
	}()
	rt := newRuntime(ctx, settings)
	return rt.run(n)
}

// run executes one operator. Besides dispatching to runNode it hosts
// the two cross-cutting per-operator duties: the FailOperator fault-
// injection site and the coarse resource accounting (every operator's
// materialized output is charged to the query budget once, here). When
// a Profile is attached it also records rows out and inclusive wall
// time per call.
func (rt *runtime) run(n plan.Node) ([]Row, error) {
	if err := failpoint(FailOperator); err != nil {
		return nil, err
	}
	p := rt.sh.prof
	if p == nil {
		rows, err := rt.runNode(n)
		if err == nil {
			err = rt.sh.bud.noteRows(len(rows), rowsBytes(rows))
		}
		return rows, err
	}
	m := p.NodeMetrics(n)
	start := time.Now()
	rows, err := rt.runNode(n)
	m.Record(len(rows), int64(time.Since(start)))
	if err == nil {
		err = rt.sh.bud.noteRows(len(rows), rowsBytes(rows))
	}
	return rows, err
}

// noteFanout records that operator n fanned out to workers goroutines.
func (rt *runtime) noteFanout(n plan.Node, workers int) {
	if s := rt.sh.settings.Stats; s != nil {
		atomic.AddInt64(&s.ParallelFanouts, 1)
	}
	if p := rt.sh.prof; p != nil {
		p.NodeMetrics(n).NoteWorkers(workers)
	}
}

func (rt *runtime) runNode(n plan.Node) ([]Row, error) {
	switch n := n.(type) {
	case *plan.Scan:
		rows := n.Source.Rows()
		if s := rt.sh.settings.Stats; s != nil {
			atomic.AddInt64(&s.RowsScanned, int64(len(rows)))
		}
		return rows, nil

	case *plan.Values:
		out := make([]Row, len(n.Rows))
		for i, exprs := range n.Rows {
			row := make(Row, len(exprs))
			for j, e := range exprs {
				v, err := rt.eval(e, nil)
				if err != nil {
					return nil, err
				}
				row[j] = v
			}
			out[i] = row
		}
		return out, nil

	case *plan.Filter:
		in, err := rt.run(n.Input)
		if err != nil {
			return nil, err
		}
		if rt.vecUsable(n.Pred) {
			return rt.runFilterVec(n, in)
		}
		if w, g := rt.rowParallelism(len(in), n.Pred); w > 1 {
			rt.noteFanout(n, w)
			return rt.runFilterParallel(n, in, w, g)
		}
		var out []Row
		for _, row := range in {
			if err := rt.tick(); err != nil {
				return nil, err
			}
			v, err := rt.eval(n.Pred, row)
			if err != nil {
				return nil, err
			}
			if v.IsTrue() {
				out = append(out, row)
			}
		}
		return out, nil

	case *plan.Project:
		in, err := rt.run(n.Input)
		if err != nil {
			return nil, err
		}
		if rt.vecUsable(projectExprs(n)...) {
			return rt.runProjectVec(n, in)
		}
		if w, g := rt.rowParallelism(len(in), projectExprs(n)...); w > 1 {
			rt.noteFanout(n, w)
			return rt.runProjectParallel(n, in, w, g)
		}
		out := make([]Row, len(in))
		for i, row := range in {
			if err := rt.tick(); err != nil {
				return nil, err
			}
			proj, err := rt.projectRow(n, row)
			if err != nil {
				return nil, err
			}
			out[i] = proj
		}
		return out, nil

	case *plan.Join:
		return rt.runJoin(n)

	case *plan.Aggregate:
		if rows, ok, err := rt.tryRollup(n); err != nil {
			return nil, err
		} else if ok {
			return rows, nil
		}
		return rt.runAggregate(n)

	case *plan.Sort:
		in, err := rt.run(n.Input)
		if err != nil {
			return nil, err
		}
		return rt.sortRows(in, n.Items)

	case *plan.Limit:
		in, err := rt.run(n.Input)
		if err != nil {
			return nil, err
		}
		offset := 0
		if n.Offset != nil {
			v, err := rt.eval(n.Offset, nil)
			if err != nil {
				return nil, err
			}
			if !v.Null {
				offset = int(v.I)
			}
		}
		if offset < 0 {
			offset = 0
		}
		if offset >= len(in) {
			return nil, nil
		}
		in = in[offset:]
		if n.Count != nil {
			v, err := rt.eval(n.Count, nil)
			if err != nil {
				return nil, err
			}
			if !v.Null && int(v.I) < len(in) {
				if v.I < 0 {
					return nil, nil
				}
				in = in[:v.I]
			}
		}
		return in, nil

	case *plan.Distinct:
		in, err := rt.run(n.Input)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		var out []Row
		for _, row := range in {
			if err := rt.tick(); err != nil {
				return nil, err
			}
			k := sqltypes.RowKey(row)
			if !seen[k] {
				seen[k] = true
				out = append(out, row)
			}
		}
		return out, nil

	case *plan.SetOp:
		return rt.runSetOp(n)

	case *plan.Window:
		return rt.runWindow(n)

	default:
		return nil, fmt.Errorf("internal error: cannot execute %T", n)
	}
}

// joinEnv bundles per-join helpers shared by the serial and parallel
// probe paths.
type joinEnv struct {
	j          *plan.Join
	leftWidth  int
	rightWidth int
}

func (e *joinEnv) concat(l, r Row) Row {
	row := make(Row, 0, e.leftWidth+e.rightWidth)
	row = append(row, l...)
	return append(row, r...)
}

func (e *joinEnv) nullRow(w int, cols []plan.Col) Row {
	row := make(Row, w)
	for i := range row {
		row[i] = sqltypes.Null(cols[i].Typ.Kind)
	}
	return row
}

func (e *joinEnv) residualOK(rt *runtime, row Row) (bool, error) {
	if e.j.Residual == nil {
		return true, nil
	}
	v, err := rt.eval(e.j.Residual, row)
	if err != nil {
		return false, err
	}
	return v.IsTrue(), nil
}

// needRightMatched reports whether the join must track which right rows
// found a partner: only RIGHT and FULL joins null-pad unmatched right
// rows, so INNER/LEFT/SEMI/CROSS joins skip the bookkeeping entirely.
func (e *joinEnv) needRightMatched() bool {
	return e.j.Kind == plan.JoinRight || e.j.Kind == plan.JoinFull
}

// evalJoinKeys fills keys[lo:hi] (and nulls[lo:hi]) with the RowKey of
// exprs over rows; a key tuple containing NULL never matches anything
// and is marked instead of hashed.
func evalJoinKeys(w *runtime, rows []Row, exprs []plan.Expr, keys []string, nulls []bool, lo, hi int) error {
	kv := make([]sqltypes.Value, len(exprs))
	for i := lo; i < hi; i++ {
		if err := w.tick(); err != nil {
			return err
		}
		hasNull := false
		for k, e := range exprs {
			v, err := w.eval(e, rows[i])
			if err != nil {
				return err
			}
			kv[k] = v
			if v.Null {
				hasNull = true
			}
		}
		nulls[i] = hasNull
		if hasNull {
			keys[i] = ""
		} else {
			keys[i] = sqltypes.RowKey(kv)
		}
	}
	return nil
}

// joinKeys computes the join-key strings for one side, fanning out over
// morsels when the side is large and the key expressions are safe.
func (rt *runtime) joinKeys(rows []Row, exprs []plan.Expr) ([]string, []bool, error) {
	keys := make([]string, len(rows))
	nulls := make([]bool, len(rows))
	if w, g := rt.rowParallelism(len(rows), exprs...); w > 1 {
		err := rt.forEachChunk(len(rows), w, g, func(wr *runtime, _, _, lo, hi int) error {
			return evalJoinKeys(wr, rows, exprs, keys, nulls, lo, hi)
		})
		if err != nil {
			return nil, nil, err
		}
		return keys, nulls, nil
	}
	if err := evalJoinKeys(rt, rows, exprs, keys, nulls, 0, len(rows)); err != nil {
		return nil, nil, err
	}
	return keys, nulls, nil
}

func (rt *runtime) runJoin(j *plan.Join) ([]Row, error) {
	left, err := rt.run(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := rt.run(j.Right)
	if err != nil {
		return nil, err
	}
	env := &joinEnv{
		j:          j,
		leftWidth:  len(j.Left.Schema().Cols),
		rightWidth: len(j.Right.Schema().Cols),
	}

	var out []Row
	var rightMatched []bool
	if len(j.EquiLeft) > 0 {
		out, rightMatched, err = rt.runHashJoin(env, left, right)
	} else {
		out, rightMatched, err = rt.runNestedLoopJoin(env, left, right)
	}
	if err != nil {
		return nil, err
	}

	if env.needRightMatched() {
		for ri, rrow := range right {
			if !rightMatched[ri] {
				out = append(out, env.concat(env.nullRow(env.leftWidth, j.Left.Schema().Cols), rrow))
			}
		}
	}
	return out, nil
}

// probeChunk probes left[lo:hi] against the build index, appending
// output rows in left-row order; matched (when non-nil) records right
// rows that found a partner.
func (env *joinEnv) probeChunk(rt *runtime, left, right []Row, leftKeys []string, leftNulls []bool,
	index map[string][]int, matched []bool, lo, hi int) ([]Row, error) {
	j := env.j
	var out []Row
	for li := lo; li < hi; li++ {
		if err := rt.tick(); err != nil {
			return nil, err
		}
		lrow := left[li]
		found := false
		if !leftNulls[li] {
			for _, ri := range index[leftKeys[li]] {
				row := env.concat(lrow, right[ri])
				ok, err := env.residualOK(rt, row)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				found = true
				if matched != nil {
					matched[ri] = true
				}
				if j.Kind == plan.JoinSemi {
					break
				}
				out = append(out, row)
			}
		}
		switch j.Kind {
		case plan.JoinSemi:
			if found {
				out = append(out, lrow)
			}
		case plan.JoinLeft, plan.JoinFull:
			if !found {
				out = append(out, env.concat(lrow, env.nullRow(env.rightWidth, j.Right.Schema().Cols)))
			}
		}
	}
	return out, nil
}

// runHashJoin builds a hash index over the right (build) side and
// probes it with the left. Key evaluation on both sides and the probe
// loop fan out over morsels; map insertion and chunk reassembly stay in
// row order, so output is identical to the serial plan.
func (rt *runtime) runHashJoin(env *joinEnv, left, right []Row) ([]Row, []bool, error) {
	j := env.j

	rightKeys, rightNulls, err := rt.joinKeys(right, j.EquiRight)
	if err != nil {
		return nil, nil, err
	}
	index := make(map[string][]int, len(right))
	for ri := range right {
		if !rightNulls[ri] {
			index[rightKeys[ri]] = append(index[rightKeys[ri]], ri)
		}
	}

	leftKeys, leftNulls, err := rt.joinKeys(left, j.EquiLeft)
	if err != nil {
		return nil, nil, err
	}

	probeExprs := append([]plan.Expr{}, j.EquiLeft...)
	if j.Residual != nil {
		probeExprs = append(probeExprs, j.Residual)
	}
	workers, grain := rt.rowParallelism(len(left), probeExprs...)
	if workers > 1 {
		rt.noteFanout(j, workers)
	}
	if workers <= 1 {
		var matched []bool
		if env.needRightMatched() {
			matched = make([]bool, len(right))
		}
		out, err := env.probeChunk(rt, left, right, leftKeys, leftNulls, index, matched, 0, len(left))
		return out, matched, err
	}

	chunkOut := make([][]Row, numChunks(len(left), grain))
	workerMatched := make([][]bool, workers)
	err = rt.forEachChunk(len(left), workers, grain, func(w *runtime, worker, chunk, lo, hi int) error {
		var matched []bool
		if env.needRightMatched() {
			matched = workerMatched[worker]
			if matched == nil {
				matched = make([]bool, len(right))
				workerMatched[worker] = matched
			}
		}
		rows, err := env.probeChunk(w, left, right, leftKeys, leftNulls, index, matched, lo, hi)
		if err != nil {
			return err
		}
		chunkOut[chunk] = rows
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	var out []Row
	for _, rows := range chunkOut {
		out = append(out, rows...)
	}
	var matched []bool
	if env.needRightMatched() {
		matched = make([]bool, len(right))
		for _, wm := range workerMatched {
			for ri, m := range wm {
				if m {
					matched[ri] = true
				}
			}
		}
	}
	return out, matched, nil
}

// runNestedLoopJoin handles cross joins and arbitrary join conditions.
func (rt *runtime) runNestedLoopJoin(env *joinEnv, left, right []Row) ([]Row, []bool, error) {
	j := env.j
	var matched []bool
	if env.needRightMatched() {
		matched = make([]bool, len(right))
	}
	var out []Row
	for _, lrow := range left {
		found := false
		for ri, rrow := range right {
			if err := rt.tick(); err != nil {
				return nil, nil, err
			}
			row := env.concat(lrow, rrow)
			ok, err := env.residualOK(rt, row)
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				continue
			}
			found = true
			if matched != nil {
				matched[ri] = true
			}
			if j.Kind == plan.JoinSemi {
				break
			}
			out = append(out, row)
		}
		switch j.Kind {
		case plan.JoinSemi:
			if found {
				out = append(out, lrow)
			}
		case plan.JoinLeft, plan.JoinFull:
			if !found {
				out = append(out, env.concat(lrow, env.nullRow(env.rightWidth, j.Right.Schema().Cols)))
			}
		}
	}
	return out, matched, nil
}

func (rt *runtime) sortRows(rows []Row, items []plan.SortItem) ([]Row, error) {
	keys := make([][]sqltypes.Value, len(rows))
	for i, row := range rows {
		if err := rt.tick(); err != nil {
			return nil, err
		}
		k := make([]sqltypes.Value, len(items))
		for j, item := range items {
			v, err := rt.eval(item.Expr, row)
			if err != nil {
				return nil, err
			}
			k[j] = v
		}
		keys[i] = k
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for j, item := range items {
			c, err := compareForSort(ka[j], kb[j], item)
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	out := make([]Row, len(rows))
	for i, ix := range idx {
		out[i] = rows[ix]
	}
	return out, nil
}

func compareForSort(a, b sqltypes.Value, item plan.SortItem) (int, error) {
	if a.Null || b.Null {
		if a.Null && b.Null {
			return 0, nil
		}
		less := b.Null
		if item.NullsFirst {
			less = a.Null
		}
		if less {
			return -1, nil
		}
		return 1, nil
	}
	c, err := sqltypes.Compare(a, b)
	if err != nil {
		return 0, err
	}
	if item.Desc {
		c = -c
	}
	return c, nil
}

func (rt *runtime) runSetOp(n *plan.SetOp) ([]Row, error) {
	left, err := rt.run(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := rt.run(n.Right)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "UNION":
		all := append(append([]Row{}, left...), right...)
		if n.All {
			return all, nil
		}
		seen := map[string]bool{}
		var out []Row
		for _, row := range all {
			if err := rt.tick(); err != nil {
				return nil, err
			}
			k := sqltypes.RowKey(row)
			if !seen[k] {
				seen[k] = true
				out = append(out, row)
			}
		}
		return out, nil
	case "INTERSECT":
		counts := map[string]int{}
		for _, row := range right {
			counts[sqltypes.RowKey(row)]++
		}
		var out []Row
		emitted := map[string]bool{}
		for _, row := range left {
			if err := rt.tick(); err != nil {
				return nil, err
			}
			k := sqltypes.RowKey(row)
			if counts[k] > 0 {
				if n.All {
					counts[k]--
					out = append(out, row)
				} else if !emitted[k] {
					emitted[k] = true
					out = append(out, row)
				}
			}
		}
		return out, nil
	case "EXCEPT":
		counts := map[string]int{}
		for _, row := range right {
			counts[sqltypes.RowKey(row)]++
		}
		var out []Row
		emitted := map[string]bool{}
		for _, row := range left {
			if err := rt.tick(); err != nil {
				return nil, err
			}
			k := sqltypes.RowKey(row)
			if n.All {
				if counts[k] > 0 {
					counts[k]--
					continue
				}
				out = append(out, row)
			} else {
				if counts[k] == 0 && !emitted[k] {
					emitted[k] = true
					out = append(out, row)
				}
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown set operation %s", n.Op)
	}
}
