package exec

import (
	"fmt"
	"sort"

	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// Run evaluates a plan and returns its rows.
func Run(n plan.Node, settings *Settings) ([]Row, error) {
	if settings == nil {
		settings = DefaultSettings()
	}
	rt := newRuntime(settings)
	return rt.run(n)
}

func (rt *runtime) run(n plan.Node) ([]Row, error) {
	switch n := n.(type) {
	case *plan.Scan:
		rows := n.Source.Rows()
		if rt.settings.Stats != nil {
			rt.settings.Stats.RowsScanned += len(rows)
		}
		return rows, nil

	case *plan.Values:
		out := make([]Row, len(n.Rows))
		for i, exprs := range n.Rows {
			row := make(Row, len(exprs))
			for j, e := range exprs {
				v, err := rt.eval(e, nil)
				if err != nil {
					return nil, err
				}
				row[j] = v
			}
			out[i] = row
		}
		return out, nil

	case *plan.Filter:
		in, err := rt.run(n.Input)
		if err != nil {
			return nil, err
		}
		var out []Row
		for _, row := range in {
			v, err := rt.eval(n.Pred, row)
			if err != nil {
				return nil, err
			}
			if v.IsTrue() {
				out = append(out, row)
			}
		}
		return out, nil

	case *plan.Project:
		in, err := rt.run(n.Input)
		if err != nil {
			return nil, err
		}
		out := make([]Row, len(in))
		for i, row := range in {
			proj := make(Row, len(n.Exprs))
			for j, ne := range n.Exprs {
				v, err := rt.eval(ne.Expr, row)
				if err != nil {
					return nil, err
				}
				proj[j] = v
			}
			out[i] = proj
		}
		return out, nil

	case *plan.Join:
		return rt.runJoin(n)

	case *plan.Aggregate:
		return rt.runAggregate(n)

	case *plan.Sort:
		in, err := rt.run(n.Input)
		if err != nil {
			return nil, err
		}
		return rt.sortRows(in, n.Items)

	case *plan.Limit:
		in, err := rt.run(n.Input)
		if err != nil {
			return nil, err
		}
		offset := 0
		if n.Offset != nil {
			v, err := rt.eval(n.Offset, nil)
			if err != nil {
				return nil, err
			}
			if !v.Null {
				offset = int(v.I)
			}
		}
		if offset < 0 {
			offset = 0
		}
		if offset >= len(in) {
			return nil, nil
		}
		in = in[offset:]
		if n.Count != nil {
			v, err := rt.eval(n.Count, nil)
			if err != nil {
				return nil, err
			}
			if !v.Null && int(v.I) < len(in) {
				if v.I < 0 {
					return nil, nil
				}
				in = in[:v.I]
			}
		}
		return in, nil

	case *plan.Distinct:
		in, err := rt.run(n.Input)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		var out []Row
		for _, row := range in {
			k := sqltypes.RowKey(row)
			if !seen[k] {
				seen[k] = true
				out = append(out, row)
			}
		}
		return out, nil

	case *plan.SetOp:
		return rt.runSetOp(n)

	case *plan.Window:
		return rt.runWindow(n)

	default:
		return nil, fmt.Errorf("internal error: cannot execute %T", n)
	}
}

func (rt *runtime) runJoin(j *plan.Join) ([]Row, error) {
	left, err := rt.run(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := rt.run(j.Right)
	if err != nil {
		return nil, err
	}
	leftWidth := len(j.Left.Schema().Cols)
	rightWidth := len(j.Right.Schema().Cols)

	concat := func(l, r Row) Row {
		row := make(Row, 0, leftWidth+rightWidth)
		row = append(row, l...)
		return append(row, r...)
	}
	nullRow := func(w int, cols []plan.Col) Row {
		row := make(Row, w)
		for i := range row {
			row[i] = sqltypes.Null(cols[i].Typ.Kind)
		}
		return row
	}

	residualOK := func(row Row) (bool, error) {
		if j.Residual == nil {
			return true, nil
		}
		v, err := rt.eval(j.Residual, row)
		if err != nil {
			return false, err
		}
		return v.IsTrue(), nil
	}

	var out []Row
	rightMatched := make([]bool, len(right))

	if len(j.EquiLeft) > 0 {
		// Hash join.
		index := make(map[string][]int, len(right))
		rightKeyNull := make([]bool, len(right))
		for ri, rrow := range right {
			keyVals := make([]sqltypes.Value, len(j.EquiRight))
			hasNull := false
			for k, e := range j.EquiRight {
				v, err := rt.eval(e, rrow)
				if err != nil {
					return nil, err
				}
				keyVals[k] = v
				if v.Null {
					hasNull = true
				}
			}
			rightKeyNull[ri] = hasNull
			if !hasNull {
				key := sqltypes.RowKey(keyVals)
				index[key] = append(index[key], ri)
			}
		}
		for _, lrow := range left {
			keyVals := make([]sqltypes.Value, len(j.EquiLeft))
			hasNull := false
			for k, e := range j.EquiLeft {
				v, err := rt.eval(e, lrow)
				if err != nil {
					return nil, err
				}
				keyVals[k] = v
				if v.Null {
					hasNull = true
				}
			}
			matched := false
			if !hasNull {
				for _, ri := range index[sqltypes.RowKey(keyVals)] {
					row := concat(lrow, right[ri])
					ok, err := residualOK(row)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
					matched = true
					rightMatched[ri] = true
					if j.Kind == plan.JoinSemi {
						break
					}
					out = append(out, row)
				}
			}
			switch j.Kind {
			case plan.JoinSemi:
				if matched {
					out = append(out, lrow)
				}
			case plan.JoinLeft, plan.JoinFull:
				if !matched {
					out = append(out, concat(lrow, nullRow(rightWidth, j.Right.Schema().Cols)))
				}
			}
		}
	} else {
		// Nested loop (cross join or arbitrary condition).
		for _, lrow := range left {
			matched := false
			for ri, rrow := range right {
				row := concat(lrow, rrow)
				ok, err := residualOK(row)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				matched = true
				rightMatched[ri] = true
				if j.Kind == plan.JoinSemi {
					break
				}
				out = append(out, row)
			}
			switch j.Kind {
			case plan.JoinSemi:
				if matched {
					out = append(out, lrow)
				}
			case plan.JoinLeft, plan.JoinFull:
				if !matched {
					out = append(out, concat(lrow, nullRow(rightWidth, j.Right.Schema().Cols)))
				}
			}
		}
	}

	if j.Kind == plan.JoinRight || j.Kind == plan.JoinFull {
		for ri, rrow := range right {
			if !rightMatched[ri] {
				out = append(out, concat(nullRow(leftWidth, j.Left.Schema().Cols), rrow))
			}
		}
	}
	return out, nil
}

func (rt *runtime) sortRows(rows []Row, items []plan.SortItem) ([]Row, error) {
	keys := make([][]sqltypes.Value, len(rows))
	for i, row := range rows {
		k := make([]sqltypes.Value, len(items))
		for j, item := range items {
			v, err := rt.eval(item.Expr, row)
			if err != nil {
				return nil, err
			}
			k[j] = v
		}
		keys[i] = k
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for j, item := range items {
			c, err := compareForSort(ka[j], kb[j], item)
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	out := make([]Row, len(rows))
	for i, ix := range idx {
		out[i] = rows[ix]
	}
	return out, nil
}

func compareForSort(a, b sqltypes.Value, item plan.SortItem) (int, error) {
	if a.Null || b.Null {
		if a.Null && b.Null {
			return 0, nil
		}
		less := b.Null
		if item.NullsFirst {
			less = a.Null
		}
		if less {
			return -1, nil
		}
		return 1, nil
	}
	c, err := sqltypes.Compare(a, b)
	if err != nil {
		return 0, err
	}
	if item.Desc {
		c = -c
	}
	return c, nil
}

func (rt *runtime) runSetOp(n *plan.SetOp) ([]Row, error) {
	left, err := rt.run(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := rt.run(n.Right)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "UNION":
		all := append(append([]Row{}, left...), right...)
		if n.All {
			return all, nil
		}
		seen := map[string]bool{}
		var out []Row
		for _, row := range all {
			k := sqltypes.RowKey(row)
			if !seen[k] {
				seen[k] = true
				out = append(out, row)
			}
		}
		return out, nil
	case "INTERSECT":
		counts := map[string]int{}
		for _, row := range right {
			counts[sqltypes.RowKey(row)]++
		}
		var out []Row
		emitted := map[string]bool{}
		for _, row := range left {
			k := sqltypes.RowKey(row)
			if counts[k] > 0 {
				if n.All {
					counts[k]--
					out = append(out, row)
				} else if !emitted[k] {
					emitted[k] = true
					out = append(out, row)
				}
			}
		}
		return out, nil
	case "EXCEPT":
		counts := map[string]int{}
		for _, row := range right {
			counts[sqltypes.RowKey(row)]++
		}
		var out []Row
		emitted := map[string]bool{}
		for _, row := range left {
			k := sqltypes.RowKey(row)
			if n.All {
				if counts[k] > 0 {
					counts[k]--
					continue
				}
				out = append(out, row)
			} else {
				if counts[k] == 0 && !emitted[k] {
					emitted[k] = true
					out = append(out, row)
				}
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown set operation %s", n.Op)
	}
}
