package exec

import (
	"sync"

	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/internal/vec"
)

// Pipeline carries the reusable compiled artifacts of one cached plan:
// vectorized expression trees keyed by plan-node identity (node pointers
// are stable for a plan held in a plan cache) plus pooled batch and
// aggregate scratch. Compiled vecExpr trees are stateless and shared
// across worker goroutines, so a single Pipeline may serve concurrent
// executions of its plan; the maps are filled lazily under a lock on
// first execution and read-mostly afterwards.
type Pipeline struct {
	mu       sync.RWMutex
	filters  map[*plan.Filter]vecExpr
	projects map[*plan.Project][]vecExpr
	aggs     map[*plan.Aggregate]*vecAggExprs
	shares   map[plan.Node]*colShare

	batches sync.Pool // *vecBatch
	scratch sync.Pool // *aggScratch
}

// NewPipeline returns an empty pipeline for one plan.
func NewPipeline() *Pipeline {
	return &Pipeline{
		filters:  map[*plan.Filter]vecExpr{},
		projects: map[*plan.Project][]vecExpr{},
		aggs:     map[*plan.Aggregate]*vecAggExprs{},
		shares:   map[plan.Node]*colShare{},
	}
}

// colShare caches columnarized base-table batches across executions of
// a cached plan. An operator reading directly from a Scan sees the same
// rows at the same offsets every execution — the plan cache drops the
// entry (and this share with it) on any catalog-version bump — so the
// row→column conversion, the dominant per-batch cost, can be done once.
// Cached columns are read-only by the same contract that lets compiled
// vecExpr trees be shared across worker goroutines.
type colShare struct {
	mu   sync.Mutex
	cols map[colKey]*vec.Col
}

// colKey addresses one cached column: the batch's row offset within the
// scan output plus the column index.
type colKey struct{ off, idx int }

func (s *colShare) get(off, idx, n int) *vec.Col {
	s.mu.Lock()
	c := s.cols[colKey{off, idx}]
	s.mu.Unlock()
	if c != nil && c.Len() == n {
		return c
	}
	return nil
}

func (s *colShare) put(off, idx int, c *vec.Col) {
	s.mu.Lock()
	s.cols[colKey{off, idx}] = c
	s.mu.Unlock()
}

// shareFor returns the column share for one scan node, creating it on
// first use.
func (p *Pipeline) shareFor(n plan.Node) *colShare {
	p.mu.RLock()
	s := p.shares[n]
	p.mu.RUnlock()
	if s != nil {
		return s
	}
	p.mu.Lock()
	if s = p.shares[n]; s == nil {
		s = &colShare{cols: map[colKey]*vec.Col{}}
		p.shares[n] = s
	}
	p.mu.Unlock()
	return s
}

func (p *Pipeline) filterExpr(n *plan.Filter, width int) vecExpr {
	p.mu.RLock()
	ve := p.filters[n]
	p.mu.RUnlock()
	if ve != nil {
		return ve
	}
	ve = vecCompile(n.Pred, width)
	p.mu.Lock()
	p.filters[n] = ve
	p.mu.Unlock()
	return ve
}

func (p *Pipeline) projectExprs(n *plan.Project, width int) []vecExpr {
	p.mu.RLock()
	ves := p.projects[n]
	p.mu.RUnlock()
	if ves != nil {
		return ves
	}
	ves = make([]vecExpr, len(n.Exprs))
	for j, ne := range n.Exprs {
		ves[j] = vecCompile(ne.Expr, width)
	}
	p.mu.Lock()
	p.projects[n] = ves
	p.mu.Unlock()
	return ves
}

func (p *Pipeline) aggExprs(env *aggEnv, inSchema *plan.Schema) *vecAggExprs {
	p.mu.RLock()
	vea := p.aggs[env.n]
	p.mu.RUnlock()
	if vea != nil {
		return vea
	}
	vea = compileVecAgg(env, inSchema)
	p.mu.Lock()
	p.aggs[env.n] = vea
	p.mu.Unlock()
	return vea
}

func (p *Pipeline) getBatch(rows []Row, kinds []sqltypes.Kind) *vecBatch {
	if vb, _ := p.batches.Get().(*vecBatch); vb != nil && cap(vb.cols) >= len(kinds) {
		vb.rows, vb.kinds = rows, kinds
		vb.cols = vb.cols[:len(kinds)]
		for i := range vb.cols {
			vb.cols[i] = nil
		}
		vb.kernelRows, vb.fallbackRows = 0, 0
		return vb
	}
	return newVecBatch(rows, kinds)
}

func (p *Pipeline) putBatch(vb *vecBatch) {
	vb.rows = nil
	vb.share, vb.off = nil, 0
	p.batches.Put(vb)
}

// getBatch/putBatch on the runtime route through the pipeline's pool
// when one is attached; otherwise batches are allocated per use, which
// is the one-shot (uncached) execution path.
func (rt *runtime) getBatch(rows []Row, kinds []sqltypes.Kind) *vecBatch {
	if p := rt.sh.settings.Pipeline; p != nil {
		return p.getBatch(rows, kinds)
	}
	return newVecBatch(rows, kinds)
}

// getBatchShared is getBatch plus column sharing: when a pipeline is
// attached and the operator's input is a base-table Scan, the batch
// reuses (and on first execution fills) the pipeline's cached columns
// for the scan rows at this offset.
func (rt *runtime) getBatchShared(input plan.Node, off int, rows []Row, kinds []sqltypes.Kind) *vecBatch {
	vb := rt.getBatch(rows, kinds)
	if p := rt.sh.settings.Pipeline; p != nil {
		if _, ok := input.(*plan.Scan); ok {
			vb.share, vb.off = p.shareFor(input), off
		}
	}
	return vb
}

func (rt *runtime) putBatch(vb *vecBatch) {
	if p := rt.sh.settings.Pipeline; p != nil {
		p.putBatch(vb)
	}
}

// pipelineFilter and friends return cached compiled trees when a
// pipeline is attached, compiling fresh otherwise.
func (rt *runtime) pipelineFilter(n *plan.Filter, width int) vecExpr {
	if p := rt.sh.settings.Pipeline; p != nil {
		return p.filterExpr(n, width)
	}
	return vecCompile(n.Pred, width)
}

func (rt *runtime) pipelineProject(n *plan.Project, width int) []vecExpr {
	if p := rt.sh.settings.Pipeline; p != nil {
		return p.projectExprs(n, width)
	}
	ves := make([]vecExpr, len(n.Exprs))
	for j, ne := range n.Exprs {
		ves[j] = vecCompile(ne.Expr, width)
	}
	return ves
}

func (rt *runtime) pipelineAgg(env *aggEnv, inSchema *plan.Schema) *vecAggExprs {
	if p := rt.sh.settings.Pipeline; p != nil {
		return p.aggExprs(env, inSchema)
	}
	return compileVecAgg(env, inSchema)
}

// aggScratch is the per-accumulate-call scratch of the vectorized
// aggregate path; its shape depends on the Aggregate node, so a pooled
// instance is reused only when the shape matches.
type aggScratch struct {
	kv         []sqltypes.Value
	keyBuf     []byte
	argBufs    [][]sqltypes.Value
	filterCols []*vec.Col
	argCols    [][]*vec.Col
	groupCols  []*vec.Col
}

func newAggScratch(n *plan.Aggregate) *aggScratch {
	s := &aggScratch{
		kv:         make([]sqltypes.Value, len(n.GroupExprs)),
		argBufs:    make([][]sqltypes.Value, len(n.Aggs)),
		filterCols: make([]*vec.Col, len(n.Aggs)),
		argCols:    make([][]*vec.Col, len(n.Aggs)),
		groupCols:  make([]*vec.Col, len(n.GroupExprs)),
	}
	for i, call := range n.Aggs {
		s.argBufs[i] = make([]sqltypes.Value, len(call.Args))
		s.argCols[i] = make([]*vec.Col, len(call.Args))
	}
	return s
}

func (s *aggScratch) shapeMatches(n *plan.Aggregate) bool {
	if len(s.groupCols) != len(n.GroupExprs) || len(s.argBufs) != len(n.Aggs) {
		return false
	}
	for i, call := range n.Aggs {
		if len(s.argBufs[i]) != len(call.Args) {
			return false
		}
	}
	return true
}

func (rt *runtime) getAggScratch(n *plan.Aggregate) *aggScratch {
	if p := rt.sh.settings.Pipeline; p != nil {
		if s, _ := p.scratch.Get().(*aggScratch); s != nil && s.shapeMatches(n) {
			return s
		}
	}
	return newAggScratch(n)
}

func (rt *runtime) putAggScratch(s *aggScratch) {
	if p := rt.sh.settings.Pipeline; p != nil {
		for i := range s.groupCols {
			s.groupCols[i] = nil
		}
		for i := range s.filterCols {
			s.filterCols[i] = nil
		}
		for i := range s.argCols {
			for j := range s.argCols[i] {
				s.argCols[i][j] = nil
			}
		}
		p.scratch.Put(s)
	}
}
