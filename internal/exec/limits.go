package exec

// Resource governance. Limits caps what one statement may consume; the
// budget tracks consumption across every worker goroutine of a query
// with coarse per-operator accounting, so a runaway query (a cross join
// under StrategyNaive, a deeply nested measure expansion) trips a
// structured CodeResourceExhausted error instead of eating the host.

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/measures-sql/msql/internal/sqltypes"
)

// Limits bounds one statement's resource consumption. The zero value
// means unlimited in every dimension.
type Limits struct {
	// MaxRows caps the total rows materialized by all operators of the
	// statement (including subquery re-executions), a proxy for work
	// done. 0 = unlimited.
	MaxRows int64
	// MaxMemBytes caps the estimated bytes of materialized operator
	// output, accounted coarsely per operator (row count × sampled row
	// width). 0 = unlimited.
	MaxMemBytes int64
	// MaxSubqueryEvals caps actual subquery plan executions; it bounds
	// the blow-up of the naive correlated-subquery strategy. 0 = unlimited.
	MaxSubqueryEvals int64
	// MaxExpansionDepth caps the nesting depth of measure/subquery
	// evaluation frames (recursive measure references). 0 = unlimited.
	MaxExpansionDepth int
	// Timeout is the per-statement wall-clock deadline, covering
	// planning and execution. 0 = none.
	Timeout time.Duration
}

// budget is the per-query consumption ledger shared by all workers.
// Counters are atomic; limits are read-only after construction.
type budget struct {
	limits    Limits
	rows      atomic.Int64
	memBytes  atomic.Int64
	subqEvals atomic.Int64
}

func exhausted(hint, format string, args ...any) *Error {
	return &Error{
		Code:  CodeResourceExhausted,
		Phase: PhaseExecute,
		Pos:   -1,
		Hint:  hint,
		Err:   fmt.Errorf(format, args...),
	}
}

// noteRows charges n materialized rows of approximately bytes total to
// the budget and reports whether a limit tripped.
func (b *budget) noteRows(n int, bytes int64) error {
	if n == 0 {
		return nil
	}
	rows := b.rows.Add(int64(n))
	if b.limits.MaxRows > 0 && rows > b.limits.MaxRows {
		return exhausted("raise Limits.MaxRows or add filters",
			"row budget exhausted: %d rows materialized (limit %d)", rows, b.limits.MaxRows)
	}
	if b.limits.MaxMemBytes > 0 {
		mem := b.memBytes.Add(bytes)
		if mem > b.limits.MaxMemBytes {
			return exhausted("raise Limits.MaxMemBytes or reduce intermediate result sizes",
				"memory budget exhausted: ~%d bytes materialized (limit %d)", mem, b.limits.MaxMemBytes)
		}
	}
	return nil
}

// noteSubqueryEval charges one subquery plan execution at the given
// evaluation-frame depth.
func (b *budget) noteSubqueryEval(depth int) error {
	if max := b.limits.MaxExpansionDepth; max > 0 && depth > max {
		return exhausted("raise Limits.MaxExpansionDepth or flatten the measure definition",
			"measure/subquery expansion depth %d exceeds limit %d", depth, max)
	}
	if max := b.limits.MaxSubqueryEvals; max > 0 {
		if evals := b.subqEvals.Add(1); evals > max {
			return exhausted("raise Limits.MaxSubqueryEvals or use a memoizing strategy",
				"subquery evaluation budget exhausted: %d evaluations (limit %d)", evals, max)
		}
	}
	return nil
}

// rowsBytes estimates the memory footprint of a materialized row slice
// by sampling the first row: operators produce uniform-width rows, so
// count × sampled width is a fair coarse estimate.
const (
	bytesPerRow   = 48 // slice header + backing array slack
	bytesPerValue = 24
)

func rowsBytes(rows []Row) int64 {
	if len(rows) == 0 {
		return 0
	}
	per := int64(bytesPerRow)
	for _, v := range rows[0] {
		per += bytesPerValue
		if v.K == sqltypes.KindString {
			per += int64(len(v.S))
		}
	}
	return per * int64(len(rows))
}
