package exec

import (
	"context"
	"sync/atomic"

	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// RollupProvider answers eligible Aggregate nodes from materialized
// per-context aggregate state instead of rescanning the input — the cube
// lattice of internal/rollup implements it. The executor consults the
// provider before running an Aggregate; a (rows, true, nil) answer must
// be bit-identical to what the hash aggregation over the node's input
// would have produced, including group order and NULL masking. The
// differential mutation-replay suite enforces that contract.
type RollupProvider interface {
	// TryAggregate attempts to answer n from materialized state. eval
	// evaluates a row-independent expression in the calling statement's
	// scope: correlated references resolve against the enclosing query's
	// current row and plan.Param against the statement's parameter
	// vector, so the provider never inspects executor internals. A
	// (nil, false, nil) return means "not eligible / not materialized" —
	// the executor falls back to normal hash aggregation.
	TryAggregate(n *plan.Aggregate, eval func(plan.Expr) (sqltypes.Value, error)) ([][]sqltypes.Value, bool, error)
}

// tryRollup consults the settings' RollupProvider for an Aggregate node.
func (rt *runtime) tryRollup(n *plan.Aggregate) ([]Row, bool, error) {
	rp := rt.sh.settings.Rollups
	if rp == nil {
		return nil, false, nil
	}
	rows, ok, err := rp.TryAggregate(n, func(e plan.Expr) (sqltypes.Value, error) {
		return rt.eval(e, nil)
	})
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	if s := rt.sh.settings.Stats; s != nil {
		atomic.AddInt64(&s.RollupHits, 1)
	}
	return rows, true, nil
}

// Evaluator evaluates plan expressions over raw rows outside a query:
// the rollup lattice uses it to compute group keys and aggregate
// arguments during materialization and incremental maintenance. It only
// supports self-contained expressions (no correlated references, no
// parameters, no subqueries — exactly what the lattice's eligibility
// gate admits), so results are identical to any in-query evaluation of
// the same expression. Not safe for concurrent use.
type Evaluator struct {
	rt *runtime
}

// NewEvaluator returns a fresh expression evaluator.
func NewEvaluator() *Evaluator {
	return &Evaluator{rt: newRuntime(context.Background(), DefaultSettings())}
}

// Eval evaluates e against row.
func (ev *Evaluator) Eval(e plan.Expr, row Row) (sqltypes.Value, error) {
	return ev.rt.eval(e, row)
}
