package exec

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/measures-sql/msql/internal/fn"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// testSource is an in-memory RowSource for large synthetic inputs.
type testSource struct {
	name  string
	cols  []string
	types []sqltypes.Type
	rows  [][]sqltypes.Value
}

func (s *testSource) Name() string              { return s.name }
func (s *testSource) ColNames() []string        { return s.cols }
func (s *testSource) ColTypes() []sqltypes.Type { return s.types }
func (s *testSource) Rows() [][]sqltypes.Value  { return s.rows }

func floatT() sqltypes.Type { return sqltypes.Type{Kind: sqltypes.KindFloat} }

// bigScan builds a Scan over n rows (a: 0..n-1, b: a mod 97, f: a*0.37).
func bigScan(n int) *plan.Scan {
	src := &testSource{
		name:  "t",
		cols:  []string{"a", "b", "f"},
		types: []sqltypes.Type{intT(), intT(), floatT()},
	}
	for i := 0; i < n; i++ {
		src.rows = append(src.rows, Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(i % 97)),
			sqltypes.NewFloat(float64(i) * 0.37),
		})
	}
	sch := &plan.Schema{}
	for i, c := range src.cols {
		sch.Cols = append(sch.Cols, plan.Col{Name: c, Typ: src.types[i]})
	}
	return &plan.Scan{Source: src, Sch: sch}
}

// runBoth executes node serially and with 4 workers and requires
// bit-identical row lists.
func runBoth(t *testing.T, node plan.Node) []Row {
	t.Helper()
	serialSettings := DefaultSettings()
	serialSettings.Workers = 1
	serial, err := Run(node, serialSettings)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parSettings := DefaultSettings()
	parSettings.Workers = 4
	par, err := Run(node, parSettings)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if len(serial) != len(par) {
		t.Fatalf("row count: serial %d, parallel %d", len(serial), len(par))
	}
	for i := range serial {
		if sqltypes.RowKey(serial[i]) != sqltypes.RowKey(par[i]) {
			t.Fatalf("row %d differs: serial %v, parallel %v", i, serial[i], par[i])
		}
	}
	return serial
}

func TestParallelFilterProjectMatchesSerial(t *testing.T) {
	scan := bigScan(10000)
	filter := &plan.Filter{
		Input: scan,
		Pred: &plan.Call{Name: "<", Typ: boolT(),
			Args: []plan.Expr{col(1, "b"), &plan.Lit{Val: sqltypes.NewInt(40)}}},
	}
	projSch := &plan.Schema{Cols: []plan.Col{{Name: "a", Typ: intT()}, {Name: "s", Typ: intT()}}}
	project := &plan.Project{
		Input: filter,
		Exprs: []plan.NamedExpr{
			{Expr: col(0, "a"), Col: projSch.Cols[0]},
			{Expr: &plan.Call{Name: "+", Typ: intT(),
				Args: []plan.Expr{col(0, "a"), col(1, "b")}}, Col: projSch.Cols[1]},
		},
		Sch: projSch,
	}
	rows := runBoth(t, project)
	if len(rows) == 0 {
		t.Fatal("expected rows")
	}
}

func TestParallelHashJoinMatchesSerial(t *testing.T) {
	for _, kind := range []plan.JoinKind{plan.JoinInner, plan.JoinLeft, plan.JoinFull, plan.JoinSemi} {
		left := bigScan(6000)
		right := bigScan(300)
		sch := &plan.Schema{}
		sch.Cols = append(sch.Cols, left.Sch.Cols...)
		sch.Cols = append(sch.Cols, right.Sch.Cols...)
		if kind == plan.JoinSemi {
			sch = left.Sch
		}
		join := &plan.Join{
			Kind:      kind,
			Left:      left,
			Right:     right,
			EquiLeft:  []plan.Expr{col(1, "b")},
			EquiRight: []plan.Expr{col(1, "b")},
			Sch:       sch,
		}
		runBoth(t, join)
	}
}

func TestParallelAggregateChunkMergeMatchesSerial(t *testing.T) {
	// COUNT/SUM(int)/MIN/MAX merge exactly, so this takes the two-phase
	// chunk-merge path with 4 workers.
	scan := bigScan(20000)
	agg := &plan.Aggregate{
		Input:      scan,
		GroupExprs: []plan.Expr{col(1, "b")},
		Sets:       [][]int{{0}},
		Aggs: []plan.AggCall{
			{Name: "COUNT", Star: true, KeyIndex: -1, Typ: intT()},
			{Name: "SUM", Args: []plan.Expr{col(0, "a")}, KeyIndex: -1, Typ: intT()},
			{Name: "MIN", Args: []plan.Expr{col(0, "a")}, KeyIndex: -1, Typ: intT()},
			{Name: "MAX", Args: []plan.Expr{col(0, "a")}, KeyIndex: -1, Typ: intT()},
			{Name: "ANY_VALUE", Args: []plan.Expr{col(0, "a")}, KeyIndex: -1, Typ: intT()},
		},
		Sch: &plan.Schema{Cols: []plan.Col{
			{Name: "b", Typ: intT()}, {Name: "c", Typ: intT()}, {Name: "s", Typ: intT()},
			{Name: "mn", Typ: intT()}, {Name: "mx", Typ: intT()}, {Name: "av", Typ: intT()},
		}},
	}
	rows := runBoth(t, agg)
	if len(rows) != 97 {
		t.Fatalf("expected 97 groups, got %d", len(rows))
	}
}

func TestParallelAggregateGroupPartitionedMatchesSerial(t *testing.T) {
	// Float SUM/AVG and COUNT(DISTINCT) are order-sensitive, forcing the
	// group-partitioned path; results must still be bit-identical.
	scan := bigScan(20000)
	fcol := &plan.ColRef{Index: 2, Name: "f", Typ: floatT()}
	agg := &plan.Aggregate{
		Input:      scan,
		GroupExprs: []plan.Expr{col(1, "b")},
		Sets:       [][]int{{0}},
		Aggs: []plan.AggCall{
			{Name: "SUM", Args: []plan.Expr{fcol}, KeyIndex: -1, Typ: floatT()},
			{Name: "AVG", Args: []plan.Expr{fcol}, KeyIndex: -1, Typ: floatT()},
			{Name: "COUNT", Args: []plan.Expr{col(0, "a")}, Distinct: true, KeyIndex: -1, Typ: intT()},
			{Name: "VAR_SAMP", Args: []plan.Expr{fcol}, KeyIndex: -1, Typ: floatT()},
		},
		Sch: &plan.Schema{Cols: []plan.Col{
			{Name: "b", Typ: intT()}, {Name: "s", Typ: floatT()}, {Name: "av", Typ: floatT()},
			{Name: "cd", Typ: intT()}, {Name: "vr", Typ: floatT()},
		}},
	}
	rows := runBoth(t, agg)
	if len(rows) != 97 {
		t.Fatalf("expected 97 groups, got %d", len(rows))
	}
}

// TestMemoSingleflightConcurrent hammers one shared memo cache from 8
// goroutines (run under -race in CI): every distinct context must be
// computed exactly once, with all other lookups served by the cache.
func TestMemoSingleflightConcurrent(t *testing.T) {
	cache := newMemoCache()
	sq := &plan.Subquery{}
	const (
		goroutines = 8
		iterations = 5000
		contexts   = 32
	)
	var computes int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				want := int64(i % contexts)
				key := fmt.Sprintf("ctx-%d", want)
				e, _, err := cache.do(context.Background(), sq, key, func(e *memoEntry) {
					atomic.AddInt64(&computes, 1)
					e.scalar = sqltypes.NewInt(want)
				})
				if err != nil {
					t.Errorf("context %s: %v", key, err)
					return
				}
				if e.scalar.I != want {
					t.Errorf("context %s: got %d, want %d", key, e.scalar.I, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	if computes != contexts {
		t.Fatalf("computes = %d, want exactly %d (singleflight violated)", computes, contexts)
	}
}

// TestSharedMemoParallelQuery runs a memoized correlated subquery with
// several workers: total evals+hits must match the serial run, and the
// distinct contexts must each be computed once.
func TestSharedMemoParallelQuery(t *testing.T) {
	mkPlan := func() plan.Node {
		right := bigScan(500)
		sub := &plan.Subquery{
			Mode: plan.SubScalar,
			Memo: true,
			Plan: &plan.Aggregate{
				Input: &plan.Filter{
					Input: right,
					Pred: &plan.Call{Name: "=", Typ: boolT(),
						Args: []plan.Expr{col(1, "b"), &plan.CorrRef{Levels: 1, Index: 1, Name: "b", Typ: intT()}}},
				},
				GroupExprs: nil,
				Sets:       [][]int{{}},
				Aggs:       []plan.AggCall{{Name: "COUNT", Star: true, KeyIndex: -1, Typ: intT()}},
				Sch:        &plan.Schema{Cols: []plan.Col{{Name: "c", Typ: intT()}}},
			},
			Typ: intT(),
		}
		outer := bigScan(4000)
		return &plan.Project{
			Input: outer,
			Exprs: []plan.NamedExpr{
				{Expr: col(0, "a"), Col: plan.Col{Name: "a", Typ: intT()}},
				{Expr: sub, Col: plan.Col{Name: "c", Typ: intT()}},
			},
			Sch: &plan.Schema{Cols: []plan.Col{{Name: "a", Typ: intT()}, {Name: "c", Typ: intT()}}},
		}
	}

	runWith := func(workers int) ([]Row, Stats) {
		settings := DefaultSettings()
		settings.Workers = workers
		var stats Stats
		settings.Stats = &stats
		rows, err := Run(mkPlan(), settings)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rows, stats
	}

	serialRows, serialStats := runWith(1)
	parRows, parStats := runWith(4)
	if len(serialRows) != len(parRows) {
		t.Fatalf("row count: serial %d, parallel %d", len(serialRows), len(parRows))
	}
	for i := range serialRows {
		if sqltypes.RowKey(serialRows[i]) != sqltypes.RowKey(parRows[i]) {
			t.Fatalf("row %d differs", i)
		}
	}
	if serialStats.SubqueryEvals != parStats.SubqueryEvals {
		t.Fatalf("evals: serial %d, parallel %d", serialStats.SubqueryEvals, parStats.SubqueryEvals)
	}
	if serialStats.SubqueryCacheHits != parStats.SubqueryCacheHits {
		t.Fatalf("hits: serial %d, parallel %d", serialStats.SubqueryCacheHits, parStats.SubqueryCacheHits)
	}
	// 97 distinct b values: 97 evals, the rest hits.
	if parStats.SubqueryEvals != 97 {
		t.Fatalf("evals = %d, want 97", parStats.SubqueryEvals)
	}
	if parStats.SubqueryCacheHits != 4000-97 {
		t.Fatalf("hits = %d, want %d", parStats.SubqueryCacheHits, 4000-97)
	}
}

// TestAggStateMerge verifies that splitting a group's rows into two
// runs and merging the partial states reproduces single-pass results.
func TestAggStateMerge(t *testing.T) {
	intTypes := []sqltypes.Type{intT()}
	vals := make([]sqltypes.Value, 0, 101)
	for i := 0; i < 101; i++ {
		vals = append(vals, sqltypes.NewInt(int64((i*7919)%257)))
	}
	for _, name := range []string{"COUNT", "SUM", "AVG", "MIN", "MAX", "ANY_VALUE"} {
		def, ok := fn.LookupAgg(name)
		if !ok {
			t.Fatalf("missing aggregate %s", name)
		}
		single := def.New(intTypes)
		first := def.New(intTypes)
		second := def.New(intTypes)
		for i, v := range vals {
			args := []sqltypes.Value{v}
			if err := single.Add(args); err != nil {
				t.Fatal(err)
			}
			dst := first
			if i >= len(vals)/2 {
				dst = second
			}
			if err := dst.Add(args); err != nil {
				t.Fatal(err)
			}
		}
		if err := first.Merge(second); err != nil {
			t.Fatalf("%s merge: %v", name, err)
		}
		got, want := first.Result(), single.Result()
		if sqltypes.RowKey([]sqltypes.Value{got}) != sqltypes.RowKey([]sqltypes.Value{want}) {
			t.Errorf("%s: merged %v, single-pass %v", name, got, want)
		}
	}

	// Variance merges via the pairwise update; allow float tolerance.
	def, _ := fn.LookupAgg("VAR_SAMP")
	single := def.New(intTypes)
	first := def.New(intTypes)
	second := def.New(intTypes)
	for i, v := range vals {
		args := []sqltypes.Value{v}
		_ = single.Add(args)
		if i < len(vals)/2 {
			_ = first.Add(args)
		} else {
			_ = second.Add(args)
		}
	}
	if err := first.Merge(second); err != nil {
		t.Fatal(err)
	}
	got, want := first.Result().F, single.Result().F
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Errorf("VAR_SAMP: merged %v, single-pass %v", got, want)
	}
}

// TestMergeTypeMismatch ensures Merge rejects foreign state types.
func TestMergeTypeMismatch(t *testing.T) {
	count, _ := fn.LookupAgg("COUNT")
	min, _ := fn.LookupAgg("MIN")
	c := count.New(nil)
	m := min.New([]sqltypes.Type{intT()})
	if err := c.Merge(m); err == nil {
		t.Fatal("expected type-mismatch error")
	}
}

func TestResolveWorkers(t *testing.T) {
	if resolveWorkers(1) != 1 || resolveWorkers(5) != 5 {
		t.Fatal("explicit worker counts must pass through")
	}
	if resolveWorkers(0) < 1 {
		t.Fatal("default worker count must be at least 1")
	}
}
