package qgen

import (
	"fmt"
	"strings"
	"testing"
)

// TestDeterministic: the same seed must yield the same query stream —
// that is what makes harness failures reproducible.
func TestDeterministic(t *testing.T) {
	a := New(7, DefaultCatalog())
	b := New(7, DefaultCatalog())
	c := New(8, DefaultCatalog())
	var streamA, streamC strings.Builder
	for i := 0; i < 200; i++ {
		qa, qb := a.Query(), b.Query()
		if qa != qb {
			t.Fatalf("query %d diverged:\n%s\n%s", i, qa, qb)
		}
		streamA.WriteString(qa + "\n")
		streamC.WriteString(c.Query() + "\n")
	}
	if streamA.String() == streamC.String() {
		t.Fatal("different seeds produced an identical stream")
	}
}

// TestLiftLockstep: a lifting generator must stay in lockstep with a
// plain one at the same seed — substituting the recorded literals back
// into the placeholders must reproduce the plain query byte for byte.
// This is the invariant the prepared-statement differential harness
// rests on.
func TestLiftLockstep(t *testing.T) {
	plain := New(7, DefaultCatalog())
	lifted := New(7, DefaultCatalog())
	lifted.SetLift(true)
	withParams := 0
	for i := 0; i < 300; i++ {
		want := plain.Query()
		q := lifted.Query()
		params := lifted.TakeParams()
		if len(params) > 0 {
			withParams++
		}
		// Substitute highest-numbered placeholders first so $1 does not
		// clobber the prefix of $10.
		got := q
		for n := len(params); n >= 1; n-- {
			got = strings.ReplaceAll(got, fmt.Sprintf("$%d", n), params[n-1])
		}
		if got != want {
			t.Fatalf("query %d not equivalent after substitution:\nplain:  %s\nlifted: %s\nparams: %v", i, want, q, params)
		}
		if strings.Contains(got, "$") {
			t.Fatalf("query %d has unsubstituted placeholders: %s (params %v)", i, got, params)
		}
	}
	if withParams < 200 {
		t.Fatalf("only %d/300 lifted queries carried parameters", withParams)
	}
}

// TestCoverage: over a modest corpus the generator must exercise every
// AT modifier, ROLLUP, AGGREGATE/EVAL wrappers, and the scalar operator
// set — otherwise the differential harness quietly loses coverage.
func TestCoverage(t *testing.T) {
	g := New(42, DefaultCatalog())
	var all strings.Builder
	measures, scalars := 0, 0
	for i := 0; i < 400; i++ {
		q := g.Query()
		if strings.Contains(q, "FROM EO") {
			measures++
		} else {
			scalars++
		}
		all.WriteString(q + "\n")
	}
	corpus := all.String()
	for _, want := range []string{
		"AT (ALL)", "ALL prodName", "SET ", "AT (VISIBLE",
		"WHERE", "AGGREGATE(", "EVAL(", "ROLLUP(",
		"GROUP BY", "ORDER BY", "NULLS FIRST",
		"IS NULL", "IS NOT NULL", " IN (", "CASE WHEN", "CAST(",
		" + ", " - ", " * ", " / ", " % ",
		" = ", " <> ", " < ", " <= ", " > ", " >= ",
		" AND ", " OR ", "NOT ",
	} {
		if !strings.Contains(corpus, want) {
			t.Errorf("400-query corpus never produced %q", want)
		}
	}
	if measures == 0 || scalars == 0 {
		t.Fatalf("corpus must mix families: %d measure, %d scalar", measures, scalars)
	}
}
