// Package qgen generates random-but-valid SQL queries for differential
// testing. Generation is catalog-driven and fully determined by the
// seed: the same (seed, catalog) pair always yields the same query
// sequence, so a failing query is reproducible from the seed printed by
// the harness.
//
// Two query families are produced. Measure queries exercise the paper's
// surface — GROUP BY subsets and ROLLUP, measure references with every
// AT modifier (ALL, ALL dim, SET, WHERE, VISIBLE), AGGREGATE and EVAL —
// while scalar queries exercise the expression engine: arithmetic,
// comparisons, AND/OR/NOT three-valued logic, IS NULL, IN, CASE, and
// CAST, the exact operator set the vectorized kernels cover (plus the
// shapes that force its row fallback).
//
// With SetLift(true) the generator additionally lifts every literal to
// a $n placeholder and records the literal text, producing the corpus
// for the prepared-statement differential harness: substituting the
// recorded literals back into the placeholders reproduces the plain
// query exactly, and lifting consumes no randomness, so a plain and a
// lifting generator at the same seed emit pairwise-equivalent queries.
package qgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Catalog describes the queryable surface the generator draws from. All
// names are used verbatim in the generated SQL.
type Catalog struct {
	// Table is the measure view measure queries select from.
	Table string
	// RowTable is the raw table scalar queries select from.
	RowTable string
	// Dims are groupable dimension columns of Table.
	Dims []string
	// IntCols are integer columns present in both Table and RowTable.
	IntCols []string
	// StrCols are string columns present in both (nullable ones are
	// fine; the generator leans on IS NULL).
	StrCols []string
	// Measures are measure columns of Table.
	Measures []string
	// DimValues holds sample string literals per dimension, used for
	// SET modifiers and string comparisons.
	DimValues map[string][]string
}

// DefaultCatalog matches the EO view the tests build over the synthetic
// datagen Orders table (see buildRandomDB in msql/property_test.go).
func DefaultCatalog() Catalog {
	return Catalog{
		Table:    "EO",
		RowTable: "Orders",
		Dims:     []string{"prodName", "custName", "orderYear"},
		IntCols:  []string{"revenue", "cost"},
		StrCols:  []string{"prodName", "custName"},
		Measures: []string{"rev", "cnt", "margin"},
		DimValues: map[string][]string{
			"prodName": {"prod000", "prod001", "prod002"},
			"custName": {"cust0001", "cust0002", "cust0003"},
		},
	}
}

// Generator produces a deterministic stream of queries.
type Generator struct {
	rng    *rand.Rand
	cat    Catalog
	lift   bool
	params []string
	// scratch tracks whether the mutation stream's scratch table
	// currently exists (see Mutation).
	scratch bool
}

// New returns a generator for the catalog, seeded so the query stream
// is reproducible.
func New(seed int64, cat Catalog) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), cat: cat}
}

// SetLift toggles parameter lifting. When on, every liftable literal
// site emits a $n placeholder instead of the literal and records the
// literal's SQL text (retrievable with TakeParams). Lifting consumes no
// randomness, so a lifting generator stays in lockstep with a plain
// generator at the same seed: query i from one is the parameterized
// twin of query i from the other. ORDER BY ordinals are never lifted —
// they are syntax, not values.
func (g *Generator) SetLift(on bool) { g.lift = on }

// TakeParams returns the SQL literal texts lifted by the most recent
// query, in placeholder order ($1 first), and resets the list.
func (g *Generator) TakeParams() []string {
	p := g.params
	g.params = nil
	return p
}

// lit returns the literal SQL text verbatim, or — when lifting — records
// it and returns the next $n placeholder. It never touches the RNG.
func (g *Generator) lit(text string) string {
	if !g.lift {
		return text
	}
	g.params = append(g.params, text)
	return fmt.Sprintf("$%d", len(g.params))
}

// Query returns the next random query: usually a measure query, with a
// steady minority of scalar queries for expression-engine coverage.
func (g *Generator) Query() string {
	if g.rng.Intn(10) < 3 {
		return g.ScalarQuery()
	}
	return g.MeasureQuery()
}

func (g *Generator) pick(xs []string) string { return xs[g.rng.Intn(len(xs))] }

// intExpr generates an integer-valued expression over the catalog's
// integer columns. Literal magnitudes are kept small enough that no
// depth-2 product can overflow int64.
func (g *Generator) intExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			return g.pick(g.cat.IntCols)
		}
		return g.lit(fmt.Sprintf("%d", g.rng.Intn(100)))
	}
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.intExpr(depth-1), g.lit(fmt.Sprintf("%d", 1+g.rng.Intn(9))))
	case 3:
		// Integer % with a nonzero literal divisor.
		return fmt.Sprintf("(%s %% %s)", g.intExpr(depth-1), g.lit(fmt.Sprintf("%d", 2+g.rng.Intn(9))))
	default:
		return fmt.Sprintf("CASE WHEN %s THEN %s ELSE %s END",
			g.boolExpr(0), g.intExpr(depth-1), g.intExpr(depth-1))
	}
}

// numCmp is a comparison between two numeric expressions; / produces a
// float left side now and then (x/0 is NULL, never an error).
func (g *Generator) numCmp(depth int) string {
	op := g.pick([]string{"=", "<>", "<", "<=", ">", ">="})
	if g.rng.Intn(5) == 0 {
		return fmt.Sprintf("%s / %s %s %s", g.pick(g.cat.IntCols),
			g.lit(fmt.Sprintf("%d", 1+g.rng.Intn(4))), op, g.lit(fmt.Sprintf("%d", g.rng.Intn(50))))
	}
	return fmt.Sprintf("%s %s %s", g.intExpr(depth), op, g.intExpr(depth))
}

// boolExpr generates a boolean predicate; depth bounds AND/OR/NOT
// nesting.
func (g *Generator) boolExpr(depth int) string {
	if depth > 0 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("(%s AND %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
		case 1:
			return fmt.Sprintf("(%s OR %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
		case 2:
			return fmt.Sprintf("NOT %s", g.boolExpr(depth-1))
		}
	}
	switch g.rng.Intn(6) {
	case 0:
		dim := g.pickStrWithValues()
		return fmt.Sprintf("%s %s %s", dim, g.pick([]string{"=", "<>"}),
			g.lit(fmt.Sprintf("'%s'", g.pick(g.cat.DimValues[dim]))))
	case 1:
		return fmt.Sprintf("%s IS %sNULL", g.pick(g.cat.StrCols), g.pick([]string{"", "NOT "}))
	case 2:
		dim := g.pickStrWithValues()
		vals := g.cat.DimValues[dim]
		n := 1 + g.rng.Intn(len(vals))
		list := make([]string, n)
		for i := range list {
			list[i] = g.lit(fmt.Sprintf("'%s'", vals[i]))
		}
		return fmt.Sprintf("%s IN (%s)", dim, strings.Join(list, ", "))
	case 3:
		return fmt.Sprintf("CAST(%s AS FLOAT) %s %s",
			g.pick(g.cat.IntCols), g.pick([]string{"<", ">"}), g.lit(fmt.Sprintf("%d.5", g.rng.Intn(80))))
	default:
		return g.numCmp(1 + g.rng.Intn(2))
	}
}

func (g *Generator) pickStrWithValues() string {
	for {
		dim := g.pick(g.cat.StrCols)
		if len(g.cat.DimValues[dim]) > 0 {
			return dim
		}
	}
}

// atMods builds the parenthesized body of an AT: one or two modifiers
// drawn from ALL, ALL dim, SET dim = 'v', WHERE pred, VISIBLE.
func (g *Generator) atMods() string {
	var mods []string
	for i := 0; i < 1+g.rng.Intn(2); i++ {
		switch g.rng.Intn(5) {
		case 0:
			mods = append(mods, "ALL")
		case 1:
			mods = append(mods, "ALL "+g.pick(g.cat.Dims))
		case 2:
			dim := g.pickDimWithValues()
			mods = append(mods, fmt.Sprintf("SET %s = %s", dim,
				g.lit(fmt.Sprintf("'%s'", g.pick(g.cat.DimValues[dim])))))
		case 3:
			mods = append(mods, "WHERE "+g.boolExpr(1))
		default:
			mods = append(mods, "VISIBLE")
		}
	}
	return strings.Join(mods, " ")
}

func (g *Generator) pickDimWithValues() string {
	for {
		dim := g.pick(g.cat.Dims)
		if len(g.cat.DimValues[dim]) > 0 {
			return dim
		}
	}
}

// measureItem is one SELECT item referencing a measure, possibly with
// an AT context transform and an AGGREGATE/EVAL wrapper.
func (g *Generator) measureItem() string {
	m := g.pick(g.cat.Measures)
	switch g.rng.Intn(5) {
	case 0:
		return m
	case 1:
		return fmt.Sprintf("AGGREGATE(%s)", m)
	case 2:
		return fmt.Sprintf("EVAL(%s AT (VISIBLE))", m)
	default:
		return fmt.Sprintf("%s AT (%s)", m, g.atMods())
	}
}

// MeasureQuery returns a random aggregate query over the measure view:
// a random dimension subset (possibly ROLLUP), 1-3 measure items, an
// optional WHERE, and a deterministic ORDER BY over the keys.
func (g *Generator) MeasureQuery() string {
	g.params = nil
	dims := append([]string(nil), g.cat.Dims...)
	g.rng.Shuffle(len(dims), func(i, j int) { dims[i], dims[j] = dims[j], dims[i] })
	keys := dims[:g.rng.Intn(len(dims)+1)]

	items := append([]string(nil), keys...)
	for i, n := 0, 1+g.rng.Intn(3); i < n; i++ {
		items = append(items, fmt.Sprintf("%s AS m%d", g.measureItem(), i))
	}

	var sb strings.Builder
	sb.WriteString("SELECT " + strings.Join(items, ", ") + " FROM " + g.cat.Table)
	if g.rng.Intn(2) == 0 {
		sb.WriteString(" WHERE " + g.boolExpr(g.rng.Intn(3)))
	}
	if len(keys) > 0 {
		if g.rng.Intn(3) == 0 {
			sb.WriteString(" GROUP BY ROLLUP(" + strings.Join(keys, ", ") + ")")
		} else {
			sb.WriteString(" GROUP BY " + strings.Join(keys, ", "))
		}
		order := make([]string, len(keys))
		for i := range keys {
			order[i] = fmt.Sprintf("%d NULLS FIRST", i+1)
		}
		sb.WriteString(" ORDER BY " + strings.Join(order, ", "))
	}
	return sb.String()
}

// Mutation returns the next random mutation statement: usually a small
// INSERT batch into the raw table, occasionally TRUNCATE TABLE, and
// rarely scratch-table DDL churn (CREATE then DROP of a side table, so
// catalog-version invalidation paths get exercised without disturbing
// the data under test). The statement stream is fully determined by the
// seed, like the query stream, so a mutation schedule replays
// identically on two databases. The INSERT shape is the synthetic
// datagen Orders layout: (prodName VARCHAR, custName VARCHAR, orderDate
// DATE, revenue INTEGER, cost INTEGER).
func (g *Generator) Mutation() string {
	switch r := g.rng.Intn(24); {
	case r == 0:
		return "TRUNCATE TABLE " + g.cat.RowTable
	case r <= 2:
		if g.scratch {
			g.scratch = false
			return "DROP TABLE qgen_scratch"
		}
		g.scratch = true
		return "CREATE TABLE qgen_scratch (k VARCHAR, v INTEGER)"
	default:
		return g.insertBatch()
	}
}

// insertBatch renders an INSERT of 1-4 rows into the raw table, drawing
// dimension values from the catalog (plus a NULL product now and then,
// matching datagen's null fraction).
func (g *Generator) insertBatch() string {
	n := 1 + g.rng.Intn(4)
	rows := make([]string, n)
	for i := range rows {
		prod := "NULL"
		if g.rng.Intn(10) > 0 {
			prod = fmt.Sprintf("'%s'", g.pick(g.cat.DimValues["prodName"]))
		}
		cust := g.pick(g.cat.DimValues["custName"])
		date := fmt.Sprintf("DATE '202%d-%02d-%02d'",
			g.rng.Intn(3), 1+g.rng.Intn(12), 1+g.rng.Intn(28))
		revenue := 1 + g.rng.Intn(100)
		cost := 1 + g.rng.Intn(revenue)
		rows[i] = fmt.Sprintf("(%s, '%s', %s, %d, %d)", prod, cust, date, revenue, cost)
	}
	return fmt.Sprintf("INSERT INTO %s VALUES %s", g.cat.RowTable, strings.Join(rows, ", "))
}

// ScalarQuery returns a random non-aggregate projection over the raw
// table: arithmetic, CASE, CAST, and string items above an optional
// WHERE. Row order is the scan order, which both engines preserve, so
// no ORDER BY is needed.
func (g *Generator) ScalarQuery() string {
	g.params = nil
	var items []string
	for i, n := 0, 1+g.rng.Intn(4); i < n; i++ {
		var item string
		switch g.rng.Intn(6) {
		case 0:
			item = g.intExpr(2)
		case 1:
			item = fmt.Sprintf("%s / %s", g.pick(g.cat.IntCols), g.lit(fmt.Sprintf("%d", g.rng.Intn(4)))) // /0 -> NULL
		case 2:
			item = fmt.Sprintf("CAST(%s AS %s)", g.pick(g.cat.IntCols), g.pick([]string{"FLOAT", "VARCHAR", "BIGINT"}))
		case 3:
			item = g.pick(g.cat.StrCols)
		case 4:
			item = fmt.Sprintf("CASE WHEN %s THEN %s END", g.boolExpr(1), g.intExpr(1))
		default:
			item = fmt.Sprintf("CASE WHEN %s THEN %s ELSE %s END",
				g.boolExpr(0), g.pick(g.cat.StrCols), g.pick(g.cat.StrCols))
		}
		items = append(items, fmt.Sprintf("%s AS c%d", item, i))
	}
	var sb strings.Builder
	sb.WriteString("SELECT " + strings.Join(items, ", ") + " FROM " + g.cat.RowTable)
	if g.rng.Intn(3) > 0 {
		sb.WriteString(" WHERE " + g.boolExpr(g.rng.Intn(3)))
	}
	return sb.String()
}
