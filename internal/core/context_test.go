package core

import (
	"strings"
	"testing"

	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

func colRef(i int, name string) *plan.ColRef {
	return &plan.ColRef{Index: i, Name: name, Typ: sqltypes.Type{Kind: sqltypes.KindString}}
}

func corrRef(i int, name string) *plan.CorrRef {
	return &plan.CorrRef{Levels: 1, Index: i, Name: name, Typ: sqltypes.Type{Kind: sqltypes.KindString}}
}

func dimTerm(dim string, baseIdx, corrIdx int) Term {
	return Term{
		Kind:     TermDimEq,
		Dim:      dim,
		BaseExpr: colRef(baseIdx, dim),
		Value:    corrRef(corrIdx, dim),
	}
}

func TestRemoveDim(t *testing.T) {
	c := &Context{Terms: []Term{dimTerm("a", 0, 0), dimTerm("b", 1, 1)}}
	if !c.RemoveDim("A") { // case-insensitive
		t.Fatal("RemoveDim should report removal")
	}
	if len(c.Terms) != 1 || c.Terms[0].Dim != "b" {
		t.Fatalf("terms after removal: %+v", c.Terms)
	}
	if c.RemoveDim("missing") {
		t.Error("removing a missing dim should report false")
	}
}

func TestSetDimReplaces(t *testing.T) {
	c := &Context{Terms: []Term{dimTerm("y", 0, 0)}}
	newVal := &plan.Lit{Val: sqltypes.NewInt(2023)}
	c.SetDim("y", colRef(0, "y"), newVal)
	if len(c.Terms) != 1 {
		t.Fatalf("SET must replace, got %d terms", len(c.Terms))
	}
	if c.Terms[0].Value != newVal {
		t.Error("SET did not install the new value")
	}
}

func TestClearAndReplace(t *testing.T) {
	c := &Context{Terms: []Term{dimTerm("a", 0, 0)}}
	c.Clear()
	if len(c.Terms) != 0 {
		t.Fatal("Clear failed")
	}
	pred := &plan.IsNull{X: colRef(0, "a")}
	c.AddPred(colRef(0, "x"))
	c.ReplaceWith(pred)
	if len(c.Terms) != 1 || c.Terms[0].Kind != TermPred || c.Terms[0].Pred != pred {
		t.Fatalf("ReplaceWith: %+v", c.Terms)
	}
}

func TestCurrentValue(t *testing.T) {
	c := &Context{Terms: []Term{dimTerm("y", 0, 3)}}
	v := c.CurrentValue("Y")
	if v == nil {
		t.Fatal("CurrentValue should find the term")
	}
	if cr, ok := v.(*plan.CorrRef); !ok || cr.Index != 3 {
		t.Fatalf("CurrentValue = %v", v)
	}
	if c.CurrentValue("other") != nil {
		t.Error("unconstrained dim should yield nil")
	}
	// Grouping-guarded term wraps in CASE.
	g := &Context{Terms: []Term{{
		Kind: TermDimEq, Dim: "y",
		BaseExpr: colRef(0, "y"),
		Value:    corrRef(0, "y"),
		Grouping: corrRef(5, "grouping"),
	}}}
	if _, ok := g.CurrentValue("y").(*plan.Case); !ok {
		t.Errorf("guarded CurrentValue should be a CASE, got %v", g.CurrentValue("y"))
	}
}

func TestPredicateAssembly(t *testing.T) {
	empty := &Context{}
	pred, err := empty.Predicate()
	if err != nil || pred != nil {
		t.Fatalf("empty context predicate: %v, %v", pred, err)
	}

	c := &Context{Terms: []Term{dimTerm("a", 0, 0), dimTerm("b", 1, 1)}}
	pred, err = c.Predicate()
	if err != nil {
		t.Fatal(err)
	}
	and, ok := pred.(*plan.And)
	if !ok {
		t.Fatalf("two terms should conjoin, got %T", pred)
	}
	if _, ok := and.L.(*plan.IsDistinct); !ok {
		t.Errorf("term should be IS NOT DISTINCT FROM, got %T", and.L)
	}

	// Grouping-guarded term becomes (grouping <> 0 OR eq).
	g := &Context{Terms: []Term{{
		Kind: TermDimEq, Dim: "a",
		BaseExpr: colRef(0, "a"), Value: corrRef(0, "a"),
		Grouping: corrRef(7, "grouping"),
	}}}
	pred, err = g.Predicate()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pred.(*plan.Or); !ok {
		t.Fatalf("guarded term should be OR, got %T", pred)
	}

	// Non-derivable dimension errors only when constrained.
	bad := &Context{Terms: []Term{{Kind: TermDimEq, Dim: "ghost", Value: corrRef(0, "ghost")}}}
	if _, err := bad.Predicate(); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("expected non-derivable error, got %v", err)
	}
	bad.RemoveDim("ghost")
	if p, err := bad.Predicate(); err != nil || p != nil {
		t.Errorf("after removal the context is TRUE, got %v %v", p, err)
	}
}

func TestPredicateLinkTerm(t *testing.T) {
	setPlan := &plan.Values{Rows: nil, Sch: &plan.Schema{Cols: []plan.Col{{Name: "k"}}}}
	c := &Context{}
	c.AddLink([]plan.Expr{colRef(0, "k")}, setPlan)
	pred, err := c.Predicate()
	if err != nil {
		t.Fatal(err)
	}
	sq, ok := pred.(*plan.Subquery)
	if !ok || sq.Mode != plan.SubIn || !sq.NullSafe || !sq.Memo {
		t.Fatalf("link term should be a memoized null-safe IN subquery, got %v", pred)
	}
}

func TestDescribe(t *testing.T) {
	c := &Context{}
	if c.Describe() != "TRUE" {
		t.Errorf("empty context describes as %q", c.Describe())
	}
	c.Terms = []Term{dimTerm("a", 0, 0)}
	c.AddPred(&plan.IsNull{X: colRef(1, "b")})
	c.AddLink([]plan.Expr{colRef(0, "a")}, &plan.Values{Sch: &plan.Schema{}})
	d := c.Describe()
	for _, want := range []string{"a =", "IS NULL", "linked"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe %q missing %q", d, want)
		}
	}
}

func TestBuildMeasureSubquery(t *testing.T) {
	base := &plan.Values{
		Rows: nil,
		Sch:  &plan.Schema{Cols: []plan.Col{{Name: "x", Typ: sqltypes.Type{Kind: sqltypes.KindInt}}}},
	}
	info := &plan.MeasureInfo{
		Name:      "m",
		ValueType: sqltypes.Type{Kind: sqltypes.KindInt},
		Base:      base,
		Formula:   &plan.AggRef{Index: 0, Typ: sqltypes.Type{Kind: sqltypes.KindInt}},
		Aggs: []plan.AggCall{{
			Name: "SUM",
			Args: []plan.Expr{&plan.ColRef{Index: 0, Name: "x", Typ: sqltypes.Type{Kind: sqltypes.KindInt}}},
			Typ:  sqltypes.Type{Kind: sqltypes.KindInt},
		}},
		Dims: []plan.Dim{{Name: "x", Expr: colRef(0, "x")}},
	}

	// Empty context: Base feeds the aggregate directly.
	sq, err := BuildMeasureSubquery(info, &Context{})
	if err != nil {
		t.Fatal(err)
	}
	proj, ok := sq.Plan.(*plan.Project)
	if !ok {
		t.Fatalf("plan root should be Project, got %T", sq.Plan)
	}
	agg, ok := proj.Input.(*plan.Aggregate)
	if !ok || agg.Input != base {
		t.Fatalf("empty context must not add a Filter: %T", proj.Input)
	}
	if len(agg.Sets) != 1 || len(agg.Sets[0]) != 0 {
		t.Errorf("measure aggregate must be a single global group: %v", agg.Sets)
	}
	if !sq.Memo || sq.Mode != plan.SubScalar {
		t.Error("measure subquery must be a memoized scalar subquery")
	}

	// Constrained context adds the Filter.
	c := &Context{Terms: []Term{dimTerm("x", 0, 0)}}
	sq, err = BuildMeasureSubquery(info, c)
	if err != nil {
		t.Fatal(err)
	}
	proj = sq.Plan.(*plan.Project)
	if _, ok := proj.Input.(*plan.Aggregate).Input.(*plan.Filter); !ok {
		t.Error("constrained context must filter the base")
	}
	if !strings.Contains(sq.Label, "measure m") {
		t.Errorf("label: %q", sq.Label)
	}

	// Constraining a non-derivable dimension fails.
	badCtx := &Context{Terms: []Term{{Kind: TermDimEq, Dim: "ghost", Value: corrRef(0, "g")}}}
	if _, err := BuildMeasureSubquery(info, badCtx); err == nil {
		t.Error("expected error for non-derivable dimension")
	}
}
