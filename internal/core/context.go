// Package core implements the paper's central semantic machinery:
// evaluation contexts for context-sensitive expressions (CSEs), the AT
// context-transformation operator's modifiers (Table 3 of the paper),
// CURRENT-dimension resolution, and the assembly of a context into the
// row predicate that parameterizes a measure's auxiliary compute function
// (§4.2).
//
// A Context is a conjunction of terms over the measure's base relation.
// Each term is one of:
//
//   - DimEq:  dimExpr IS NOT DISTINCT FROM <value from the call site>,
//     optionally guarded by a GROUPING indicator so that ROLLUP
//     super-aggregate rows drop the constraint;
//   - Pred:   an arbitrary predicate over base columns (from the VISIBLE
//     modifier's residual WHERE clause, or an AT (WHERE ...) modifier);
//   - Link:   a semijoin term restricting the base table's join keys to
//     the values observed in the current group's joined rows — this is
//     what keeps measures at their own grain under joins (paper §3.6).
//
// The binder builds a default Context for each call site, applies the
// AT modifiers in order, and then calls Predicate to reify the context
// as a plan expression over the base row (with correlated references to
// the call-site row), exactly the paper's rowPredicate lambda.
package core

import (
	"fmt"
	"strings"

	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// TermKind classifies a context term.
type TermKind uint8

const (
	// TermDimEq constrains a dimension to a call-site value.
	TermDimEq TermKind = iota
	// TermPred is an arbitrary predicate over base columns.
	TermPred
	// TermLink is a semijoin restriction through join keys.
	TermLink
)

// Term is one conjunct of an evaluation context.
type Term struct {
	Kind TermKind

	// Dim is the dimension name for DimEq terms (dimension column name or
	// ad hoc dimension alias). Empty for Pred/Link terms.
	Dim string
	// BaseExpr is the dimension expression over the base row (DimEq).
	BaseExpr plan.Expr
	// Value is the call-site value expression; references to the call-site
	// row are CorrRefs at level 1 relative to the measure subquery (DimEq).
	Value plan.Expr
	// Grouping, if non-nil, is a call-site expression yielding the
	// GROUPING indicator for this dimension; when it is non-zero the term
	// is disabled (ROLLUP super-aggregate rows).
	Grouping plan.Expr

	// Pred is the predicate over the base row (Pred terms).
	Pred plan.Expr

	// LinkExprs and LinkPlan implement Link terms: the tuple of base-row
	// expressions must appear in the rows produced by LinkPlan (which is
	// correlated to the call-site row at level 2, since it runs inside the
	// measure subquery's filter).
	LinkExprs []plan.Expr
	LinkPlan  plan.Node
}

// Context is an evaluation context: the conjunction of Terms. The zero
// value is the TRUE context (no constraints).
type Context struct {
	Terms []Term
}

// Clone returns a shallow copy whose Terms slice is independent.
func (c *Context) Clone() *Context {
	out := &Context{Terms: make([]Term, len(c.Terms))}
	copy(out.Terms, c.Terms)
	return out
}

// Clear removes every term ("AT (ALL)" — the measure is evaluated over
// its entire base table).
func (c *Context) Clear() { c.Terms = nil }

// RemoveDim removes DimEq terms on the named dimension ("AT (ALL dim)").
// It reports whether any term was removed.
func (c *Context) RemoveDim(dim string) bool {
	removed := false
	out := c.Terms[:0]
	for _, t := range c.Terms {
		if t.Kind == TermDimEq && strings.EqualFold(t.Dim, dim) {
			removed = true
			continue
		}
		out = append(out, t)
	}
	c.Terms = out
	return removed
}

// SetDim implements "AT (SET dim = value)": any existing terms on the
// dimension are removed and the new constraint is appended.
func (c *Context) SetDim(dim string, baseExpr, value plan.Expr) {
	c.RemoveDim(dim)
	c.Terms = append(c.Terms, Term{
		Kind:     TermDimEq,
		Dim:      dim,
		BaseExpr: baseExpr,
		Value:    value,
	})
}

// AddPred appends a predicate term (VISIBLE residuals).
func (c *Context) AddPred(pred plan.Expr) {
	c.Terms = append(c.Terms, Term{Kind: TermPred, Pred: pred})
}

// AddLink appends a semijoin link term.
func (c *Context) AddLink(linkExprs []plan.Expr, linkPlan plan.Node) {
	c.Terms = append(c.Terms, Term{Kind: TermLink, LinkExprs: linkExprs, LinkPlan: linkPlan})
}

// ReplaceWith implements "AT (WHERE pred)": the context becomes exactly
// the given predicate (paper Table 3: "Sets the evaluation context to
// predicate").
func (c *Context) ReplaceWith(pred plan.Expr) {
	c.Terms = []Term{{Kind: TermPred, Pred: pred}}
}

// CurrentValue resolves "CURRENT dim": the call-site value expression the
// dimension is currently constrained to, guarded so that it yields NULL
// when the constraint is disabled by GROUPING. Returns nil if the
// dimension is unconstrained (the paper specifies NULL in that case; the
// caller substitutes a NULL literal).
func (c *Context) CurrentValue(dim string) plan.Expr {
	for _, t := range c.Terms {
		if t.Kind == TermDimEq && strings.EqualFold(t.Dim, dim) {
			if t.Grouping == nil {
				return t.Value
			}
			// CASE WHEN grouping <> 0 THEN NULL ELSE value END
			return &plan.Case{
				Whens: []plan.CaseWhen{{
					Cond: &plan.Call{
						Name: "<>",
						Args: []plan.Expr{t.Grouping, &plan.Lit{Val: sqltypes.NewInt(0)}},
						Typ:  sqltypes.Type{Kind: sqltypes.KindBool},
					},
					Then: &plan.Lit{Val: sqltypes.Null(t.Value.Type().Kind)},
				}},
				Else: t.Value,
				Typ:  t.Value.Type().Scalar(),
			}
		}
	}
	return nil
}

// Predicate reifies the context as a single boolean expression over the
// measure's base row. It is the paper's rowPredicate: the only thing a
// measure "cares about ... do I include this row in the total, or not?"
// (§3.5). A nil result means TRUE (no filtering needed). It fails if a
// surviving term constrains a dimension that is not derivable from the
// base table (BaseExpr nil).
func (c *Context) Predicate() (plan.Expr, error) {
	var conj plan.Expr
	and := func(e plan.Expr) {
		if conj == nil {
			conj = e
		} else {
			conj = &plan.And{L: conj, R: e}
		}
	}
	for _, t := range c.Terms {
		switch t.Kind {
		case TermDimEq:
			if t.BaseExpr == nil {
				return nil, fmt.Errorf("dimension %s is constrained by the evaluation context but is not derivable from the measure's base table", t.Dim)
			}
			eq := plan.Expr(&plan.IsDistinct{L: t.BaseExpr, R: t.Value, Neg: true})
			if t.Grouping != nil {
				// grouping <> 0 OR dim IS NOT DISTINCT FROM value
				eq = &plan.Or{
					L: &plan.Call{
						Name: "<>",
						Args: []plan.Expr{t.Grouping, &plan.Lit{Val: sqltypes.NewInt(0)}},
						Typ:  sqltypes.Type{Kind: sqltypes.KindBool},
					},
					R: eq,
				}
			}
			and(eq)
		case TermPred:
			and(t.Pred)
		case TermLink:
			and(&plan.Subquery{
				Plan:     t.LinkPlan,
				Mode:     plan.SubIn,
				Exprs:    t.LinkExprs,
				Typ:      sqltypes.Type{Kind: sqltypes.KindBool},
				Memo:     true,
				NullSafe: true,
				Label:    "context link",
			})
		}
	}
	return conj, nil
}

// Describe renders the context for diagnostics and EXPLAIN output.
func (c *Context) Describe() string {
	if len(c.Terms) == 0 {
		return "TRUE"
	}
	parts := make([]string, 0, len(c.Terms))
	for _, t := range c.Terms {
		switch t.Kind {
		case TermDimEq:
			g := ""
			if t.Grouping != nil {
				g = " (unless rolled up)"
			}
			parts = append(parts, fmt.Sprintf("%s = %s%s", t.Dim, t.Value, g))
		case TermPred:
			parts = append(parts, t.Pred.String())
		case TermLink:
			parts = append(parts, "linked through join keys")
		}
	}
	return strings.Join(parts, " AND ")
}

// BuildMeasureSubquery assembles the correlated scalar subquery that
// evaluates measure info in context c — the paper's §4.2 expansion:
//
//	(SELECT <formula> FROM <base> WHERE <context predicate>)
//
// The subquery aggregates the filtered base rows with a single global
// group (so an empty context slice means "whole table") and projects the
// formula over the aggregate outputs. Memoization is enabled so repeated
// evaluation in the same context costs one scan (the "localized
// self-join" strategy, §5.1); the optimizer may disable it for ablation.
func BuildMeasureSubquery(info *plan.MeasureInfo, c *Context) (*plan.Subquery, error) {
	pred, err := c.Predicate()
	if err != nil {
		return nil, fmt.Errorf("measure %s: %v", info.Name, err)
	}
	var input plan.Node = info.Base
	if pred != nil {
		input = &plan.Filter{Input: input, Pred: pred}
	}
	aggSchema := &plan.Schema{}
	for _, a := range info.Aggs {
		aggSchema.Cols = append(aggSchema.Cols, plan.Col{Name: strings.ToLower(a.Name), Typ: a.Typ})
	}
	agg := &plan.Aggregate{
		Input: input,
		Sets:  [][]int{{}},
		Aggs:  info.Aggs,
		Sch:   aggSchema,
	}
	// With no group keys the i-th aggregate is output column i.
	formula := plan.ReplaceAggRefs(info.Formula, func(ar *plan.AggRef) plan.Expr {
		return &plan.ColRef{Index: ar.Index, Name: fmt.Sprintf("agg%d", ar.Index), Typ: ar.Typ}
	})
	proj := &plan.Project{
		Input: agg,
		Exprs: []plan.NamedExpr{{Expr: formula, Col: plan.Col{Name: info.Name, Typ: info.ValueType}}},
		Sch:   &plan.Schema{Cols: []plan.Col{{Name: info.Name, Typ: info.ValueType}}},
	}
	return &plan.Subquery{
		Plan:  proj,
		Mode:  plan.SubScalar,
		Typ:   info.ValueType,
		Memo:  true,
		Label: "measure " + info.Name + " at " + c.Describe(),
	}, nil
}
