package core

// Property tests for the algebra of evaluation contexts: the laws behind
// the paper's Table 3 modifiers, checked over randomly generated
// contexts with testing/quick.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// genContext builds a random context with dimensions drawn from a fixed
// pool (duplicates excluded, like real contexts built from group keys).
func genContext(rng *rand.Rand) *Context {
	pool := []string{"a", "b", "c", "d", "e"}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	n := rng.Intn(len(pool) + 1)
	c := &Context{}
	for i := 0; i < n; i++ {
		c.Terms = append(c.Terms, dimTerm(pool[i], i, i))
	}
	if rng.Intn(3) == 0 {
		c.AddPred(&plan.IsNull{X: colRef(9, "p")})
	}
	return c
}

// contextKey captures the observable state of a context.
func contextKey(c *Context) []string {
	var out []string
	for _, t := range c.Terms {
		switch t.Kind {
		case TermDimEq:
			out = append(out, "dim:"+t.Dim+"="+t.Value.String())
		case TermPred:
			out = append(out, "pred:"+t.Pred.String())
		case TermLink:
			out = append(out, "link")
		}
	}
	return out
}

func quickCfg() *quick.Config {
	rng := rand.New(rand.NewSource(1))
	return &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(genContext(rng))
			}
		},
	}
}

// RemoveDim is idempotent.
func TestLawRemoveIdempotent(t *testing.T) {
	f := func(c *Context) bool {
		c1 := c.Clone()
		c1.RemoveDim("a")
		once := contextKey(c1)
		c1.RemoveDim("a")
		return reflect.DeepEqual(once, contextKey(c1))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// SET d then SET d again keeps only the last value (last-write-wins).
func TestLawSetOverwrites(t *testing.T) {
	v1 := &plan.Lit{Val: sqltypes.NewInt(1)}
	v2 := &plan.Lit{Val: sqltypes.NewInt(2)}
	f := func(c *Context) bool {
		c1 := c.Clone()
		c1.SetDim("a", colRef(0, "a"), v1)
		c1.SetDim("a", colRef(0, "a"), v2)
		c2 := c.Clone()
		c2.SetDim("a", colRef(0, "a"), v2)
		return reflect.DeepEqual(contextKey(c1), contextKey(c2))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// ALL dim then SET dim ≡ SET dim (the paper's removal-then-add collapses).
func TestLawAllThenSet(t *testing.T) {
	v := &plan.Lit{Val: sqltypes.NewInt(7)}
	f := func(c *Context) bool {
		c1 := c.Clone()
		c1.RemoveDim("b")
		c1.SetDim("b", colRef(1, "b"), v)
		c2 := c.Clone()
		c2.SetDim("b", colRef(1, "b"), v)
		return reflect.DeepEqual(contextKey(c1), contextKey(c2))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Clear is a left zero: anything before a bare ALL is irrelevant.
func TestLawClearAnnihilates(t *testing.T) {
	f := func(c1, c2 *Context) bool {
		a := c1.Clone()
		a.Clear()
		b := c2.Clone()
		b.Clear()
		return reflect.DeepEqual(contextKey(a), contextKey(b))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// ReplaceWith (the WHERE modifier) is also insensitive to prior state.
func TestLawWhereReplaces(t *testing.T) {
	pred := &plan.IsNull{X: colRef(0, "a")}
	f := func(c1, c2 *Context) bool {
		a := c1.Clone()
		a.ReplaceWith(pred)
		b := c2.Clone()
		b.ReplaceWith(pred)
		return reflect.DeepEqual(contextKey(a), contextKey(b))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// SET on distinct dimensions commutes.
func TestLawSetCommutesAcrossDims(t *testing.T) {
	va := &plan.Lit{Val: sqltypes.NewInt(1)}
	vb := &plan.Lit{Val: sqltypes.NewInt(2)}
	f := func(c *Context) bool {
		c1 := c.Clone()
		c1.SetDim("a", colRef(0, "a"), va)
		c1.SetDim("b", colRef(1, "b"), vb)
		c2 := c.Clone()
		c2.SetDim("b", colRef(1, "b"), vb)
		c2.SetDim("a", colRef(0, "a"), va)
		// Order of appended terms may differ; compare as sets.
		k1, k2 := contextKey(c1), contextKey(c2)
		if len(k1) != len(k2) {
			return false
		}
		set := map[string]int{}
		for _, k := range k1 {
			set[k]++
		}
		for _, k := range k2 {
			set[k]--
			if set[k] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// CurrentValue after SET returns exactly the SET value; after RemoveDim
// it returns nil.
func TestLawCurrentTracksSet(t *testing.T) {
	v := &plan.Lit{Val: sqltypes.NewInt(42)}
	f := func(c *Context) bool {
		c1 := c.Clone()
		c1.SetDim("c", colRef(2, "c"), v)
		if c1.CurrentValue("c") != plan.Expr(v) {
			return false
		}
		c1.RemoveDim("c")
		return c1.CurrentValue("c") == nil
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Predicate is TRUE (nil) iff the context has no terms.
func TestLawPredicateNilIffEmpty(t *testing.T) {
	f := func(c *Context) bool {
		pred, err := c.Predicate()
		if err != nil {
			return false
		}
		return (pred == nil) == (len(c.Terms) == 0)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
