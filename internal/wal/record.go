// Package wal provides the durability layer of the engine: an
// append-only, checksummed write-ahead log of catalog and data
// mutations, periodic checkpoint snapshots of the full store, and a
// recovery path that replays snapshot + log tail to the last intact
// record.
//
// The package is deliberately below the catalog: it speaks a small
// logical record vocabulary (CREATE TABLE / CREATE VIEW / DROP /
// INSERT / TRUNCATE) over sqltypes values and rebuilds a StoreDump the
// engine can load, so it never needs to parse SQL or know about plans.
// View definitions travel as rendered SQL text; the engine re-parses
// them at restore time.
//
// On-disk layout inside the data directory:
//
//	wal.log        append-only record log (header + records)
//	snapshot.msnap latest checkpoint (atomic-renamed into place)
//	snapshot.tmp   in-flight checkpoint (deleted on recovery)
//
// Record framing:
//
//	[uint32 length][uint32 crc32c(payload)][payload]
//	payload = [uvarint seq][1 byte type][type-specific body]
//
// The CRC covers the whole payload, so a torn or bit-flipped tail is
// detected and cleanly truncated during recovery — never replayed,
// never a panic.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/measures-sql/msql/internal/sqltypes"
)

// RecordType discriminates the logical mutation a record carries.
type RecordType byte

const (
	// RecCreateTable registers a base table (name, columns, types).
	RecCreateTable RecordType = 1
	// RecCreateView registers a view as rendered SQL text.
	RecCreateView RecordType = 2
	// RecDrop removes a table or view.
	RecDrop RecordType = 3
	// RecInsert appends coerced rows to a base table.
	RecInsert RecordType = 4
	// RecTruncate removes all rows of a base table.
	RecTruncate RecordType = 5
)

func (t RecordType) String() string {
	switch t {
	case RecCreateTable:
		return "CREATE TABLE"
	case RecCreateView:
		return "CREATE VIEW"
	case RecDrop:
		return "DROP"
	case RecInsert:
		return "INSERT"
	case RecTruncate:
		return "TRUNCATE"
	default:
		return fmt.Sprintf("RecordType(%d)", byte(t))
	}
}

// Record is one logical mutation. Only the fields relevant to Type are
// set; Seq is assigned by the Manager at append time.
type Record struct {
	Seq  uint64
	Type RecordType

	// Name is the object name (table or view).
	Name string
	// OrReplace carries CREATE ... OR REPLACE.
	OrReplace bool
	// Cols / Types describe a created table's schema.
	Cols  []string
	Types []sqltypes.Type
	// SQL is a view definition, rendered as parseable SQL.
	SQL string
	// Kind is "TABLE" or "VIEW" for RecDrop.
	Kind string
	// Rows are the inserted rows (already coerced to the table schema).
	Rows [][]sqltypes.Value
}

const (
	// recHeaderLen is the per-record framing overhead: length + CRC.
	recHeaderLen = 8
	// MaxRecordBytes caps one record's payload. Decoding rejects larger
	// claims before allocating, so a corrupt length prefix (or hostile
	// input) cannot OOM recovery.
	MaxRecordBytes = 64 << 20
)

// castagnoli is the CRC32-C table (the polynomial used by iSCSI and
// most storage systems; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendUvarint / appendString / appendValue build the payload.

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendValue encodes one SQL value. The kind byte's high bit carries
// the NULL flag; NULLs encode no body, so a NULL of any kind
// round-trips exactly (bare NULL vs typed NULL included).
func appendValue(b []byte, v sqltypes.Value) []byte {
	k := byte(v.K)
	if v.Null {
		return append(b, k|0x80)
	}
	b = append(b, k)
	switch v.K {
	case sqltypes.KindBool:
		if v.B {
			return append(b, 1)
		}
		return append(b, 0)
	case sqltypes.KindInt, sqltypes.KindDate:
		return binary.AppendVarint(b, v.I)
	case sqltypes.KindFloat:
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(v.F))
	case sqltypes.KindString:
		return appendString(b, v.S)
	default: // KindUnknown non-null cannot occur; encode as empty
		return b
	}
}

// byteReader walks a payload buffer with bounds checks; every decode
// error is a structured corruption error, never a panic.
type byteReader struct {
	buf []byte
	off int
}

func (r *byteReader) err(format string, args ...any) error {
	return &CorruptError{Detail: fmt.Sprintf(format, args...)}
}

func (r *byteReader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, r.err("unexpected end of record at offset %d", r.off)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, r.err("bad uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, r.err("bad varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.buf)-r.off) {
		return nil, r.err("string of %d bytes overruns record (%d left)", n, len(r.buf)-r.off)
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *byteReader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(n)
	return string(b), err
}

func (r *byteReader) value() (sqltypes.Value, error) {
	kb, err := r.byte()
	if err != nil {
		return sqltypes.Value{}, err
	}
	null := kb&0x80 != 0
	kind := sqltypes.Kind(kb &^ 0x80)
	if kind > sqltypes.KindDate {
		return sqltypes.Value{}, r.err("unknown value kind %d", kind)
	}
	if null {
		return sqltypes.Null(kind), nil
	}
	switch kind {
	case sqltypes.KindBool:
		b, err := r.byte()
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewBool(b != 0), nil
	case sqltypes.KindInt:
		i, err := r.varint()
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewInt(i), nil
	case sqltypes.KindDate:
		i, err := r.varint()
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewDateDays(i), nil
	case sqltypes.KindFloat:
		b, err := r.bytes(8)
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	case sqltypes.KindString:
		s, err := r.string()
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewString(s), nil
	default: // non-null KindUnknown: tolerate as bare NULL
		return sqltypes.Value{}, nil
	}
}

// encodePayload renders a record's payload (seq + type + body).
func encodePayload(rec *Record) []byte {
	b := make([]byte, 0, 64)
	b = appendUvarint(b, rec.Seq)
	b = append(b, byte(rec.Type))
	switch rec.Type {
	case RecCreateTable:
		b = appendString(b, rec.Name)
		b = appendBool(b, rec.OrReplace)
		b = appendUvarint(b, uint64(len(rec.Cols)))
		for i, c := range rec.Cols {
			b = appendString(b, c)
			b = append(b, byte(rec.Types[i].Kind))
		}
	case RecCreateView:
		b = appendString(b, rec.Name)
		b = appendBool(b, rec.OrReplace)
		b = appendString(b, rec.SQL)
	case RecDrop:
		b = appendString(b, rec.Kind)
		b = appendString(b, rec.Name)
	case RecInsert:
		b = appendString(b, rec.Name)
		b = appendUvarint(b, uint64(len(rec.Rows)))
		if len(rec.Rows) > 0 {
			b = appendUvarint(b, uint64(len(rec.Rows[0])))
			for _, row := range rec.Rows {
				for _, v := range row {
					b = appendValue(b, v)
				}
			}
		} else {
			b = appendUvarint(b, 0)
		}
	case RecTruncate:
		b = appendString(b, rec.Name)
	}
	return b
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// maxDecodeRows caps the row/column counts a decoder will allocate for
// up front; the payload length bounds the real count anyway (every row
// costs at least one byte), so this only limits pathological claims.
const maxDecodeRows = 1 << 24

// DecodePayload decodes one record payload (the bytes covered by the
// CRC). Arbitrary input yields a *CorruptError, never a panic: lengths
// are validated against the remaining buffer before any allocation.
func DecodePayload(buf []byte) (*Record, error) {
	if uint64(len(buf)) > MaxRecordBytes {
		return nil, &CorruptError{Detail: fmt.Sprintf("payload of %d bytes exceeds cap", len(buf))}
	}
	r := &byteReader{buf: buf}
	seq, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	tb, err := r.byte()
	if err != nil {
		return nil, err
	}
	rec := &Record{Seq: seq, Type: RecordType(tb)}
	switch rec.Type {
	case RecCreateTable:
		if rec.Name, err = r.string(); err != nil {
			return nil, err
		}
		orb, err := r.byte()
		if err != nil {
			return nil, err
		}
		rec.OrReplace = orb != 0
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(buf)) { // each column costs ≥2 bytes
			return nil, r.err("column count %d exceeds payload", n)
		}
		rec.Cols = make([]string, n)
		rec.Types = make([]sqltypes.Type, n)
		for i := range rec.Cols {
			if rec.Cols[i], err = r.string(); err != nil {
				return nil, err
			}
			kb, err := r.byte()
			if err != nil {
				return nil, err
			}
			if sqltypes.Kind(kb) > sqltypes.KindDate {
				return nil, r.err("unknown column kind %d", kb)
			}
			rec.Types[i] = sqltypes.Type{Kind: sqltypes.Kind(kb)}
		}
	case RecCreateView:
		if rec.Name, err = r.string(); err != nil {
			return nil, err
		}
		orb, err := r.byte()
		if err != nil {
			return nil, err
		}
		rec.OrReplace = orb != 0
		if rec.SQL, err = r.string(); err != nil {
			return nil, err
		}
	case RecDrop:
		if rec.Kind, err = r.string(); err != nil {
			return nil, err
		}
		if rec.Name, err = r.string(); err != nil {
			return nil, err
		}
	case RecInsert:
		if rec.Name, err = r.string(); err != nil {
			return nil, err
		}
		nrows, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		ncols, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nrows > maxDecodeRows || ncols > maxDecodeRows {
			return nil, r.err("row/column count %d×%d exceeds cap", nrows, ncols)
		}
		// Every value costs at least one byte; reject impossible claims
		// before allocating row storage.
		if nrows*max(ncols, 1) > uint64(len(buf)-r.off) {
			return nil, r.err("%d×%d values overrun %d remaining bytes", nrows, ncols, len(buf)-r.off)
		}
		rec.Rows = make([][]sqltypes.Value, nrows)
		for i := range rec.Rows {
			row := make([]sqltypes.Value, ncols)
			for j := range row {
				if row[j], err = r.value(); err != nil {
					return nil, err
				}
			}
			rec.Rows[i] = row
		}
	case RecTruncate:
		if rec.Name, err = r.string(); err != nil {
			return nil, err
		}
	default:
		return nil, r.err("unknown record type %d", tb)
	}
	if r.off != len(buf) {
		return nil, r.err("%d trailing bytes after record body", len(buf)-r.off)
	}
	return rec, nil
}

// EncodeRecord renders a record with framing (length + CRC + payload),
// ready to append to the log.
func EncodeRecord(rec *Record) []byte {
	payload := encodePayload(rec)
	out := make([]byte, recHeaderLen, recHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, castagnoli))
	return append(out, payload...)
}
