package wal

// Fuzz targets for the on-disk decoders. The contract under test: any
// byte string yields either a successful decode or a structured
// *CorruptError — never a panic, and never an allocation sized by
// attacker-claimed counts (the decoders validate claimed lengths
// against the remaining input before allocating).

import (
	"errors"
	"reflect"
	"testing"

	"github.com/measures-sql/msql/internal/sqltypes"
)

func fuzzSeedRecords() []*Record {
	return []*Record{
		{Seq: 1, Type: RecCreateTable, Name: "t", Cols: []string{"a", "b"},
			Types: []sqltypes.Type{{Kind: sqltypes.KindInt}, {Kind: sqltypes.KindString}}},
		{Seq: 2, Type: RecCreateView, Name: "v", OrReplace: true, SQL: "SELECT a FROM t"},
		{Seq: 3, Type: RecDrop, Kind: "TABLE", Name: "t"},
		{Seq: 4, Type: RecInsert, Name: "t", Rows: [][]sqltypes.Value{
			{sqltypes.NewInt(7), sqltypes.NewString("x")},
			{sqltypes.Null(sqltypes.KindInt), sqltypes.NewString("")},
			{sqltypes.NewFloat(3.25), sqltypes.NewDate(2024, 2, 29)},
			{sqltypes.NewBool(true), sqltypes.Null(sqltypes.KindUnknown)},
		}},
		{Seq: 5, Type: RecTruncate, Name: "t"},
	}
}

func FuzzDecodePayload(f *testing.F) {
	for _, rec := range fuzzSeedRecords() {
		f.Add(EncodeRecord(rec)[recHeaderLen:])
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	// A record claiming an enormous row count in a tiny buffer: must be
	// rejected by the pre-allocation cap, not attempted.
	f.Add([]byte{0x01, byte(RecInsert), 0x01, 't', 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodePayload(data)
		if err != nil {
			if !errors.As(err, new(*CorruptError)) {
				t.Fatalf("unstructured decode error: %v", err)
			}
			return
		}
		// Anything that decodes must re-encode and decode to the same
		// record (the codec is canonical for decoded values).
		again, err := DecodePayload(EncodeRecord(rec)[recHeaderLen:])
		if err != nil {
			t.Fatalf("re-decode of re-encoded record failed: %v", err)
		}
		if !reflect.DeepEqual(rec, again) {
			t.Fatalf("decode/encode/decode not stable:\nfirst  %+v\nsecond %+v", rec, again)
		}
	})
}

func FuzzDecodeSnapshot(f *testing.F) {
	dump := &StoreDump{Version: 9,
		Tables: []TableDump{{Name: "t", Cols: []string{"a"},
			Types: []sqltypes.Type{{Kind: sqltypes.KindInt}},
			Rows:  [][]sqltypes.Value{{sqltypes.NewInt(1)}, {sqltypes.Null(sqltypes.KindInt)}}}},
		Views: []ViewDump{{Name: "v", SQL: "SELECT a FROM t"}}}
	f.Add(encodeSnapshot(dump, 3))
	f.Add(encodeSnapshot(&StoreDump{}, 0))
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	// A CRC-valid snapshot whose claimed row count overflows the
	// rows×cols size product: must fail the bound, not reach make().
	f.Add(overflowSnapshotBytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		got, seq, err := DecodeSnapshot(data)
		if err != nil {
			if !errors.As(err, new(*CorruptError)) {
				t.Fatalf("unstructured snapshot decode error: %v", err)
			}
			return
		}
		round, seq2, err := DecodeSnapshot(encodeSnapshot(got, seq))
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if seq2 != seq || !reflect.DeepEqual(got, round) {
			t.Fatalf("snapshot decode/encode/decode not stable")
		}
	})
}
