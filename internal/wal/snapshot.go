package wal

// Checkpoint snapshots: a single file holding the full store (tables
// with rows, views as SQL text, catalog version) plus the sequence
// number of the last WAL record it includes. Snapshots are written to a
// temp file, fsynced, and atomically renamed into place; a crash at any
// point leaves either the old snapshot or the new one, never a partial
// file (a leftover temp file is deleted on recovery).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/measures-sql/msql/internal/sqltypes"
)

// TableDump is one base table's full state.
type TableDump struct {
	Name  string
	Cols  []string
	Types []sqltypes.Type
	Rows  [][]sqltypes.Value
}

// ViewDump is one view, carried as parseable SQL.
type ViewDump struct {
	Name string
	SQL  string
}

// StoreDump is the full logical store: what a checkpoint persists and
// what recovery hands back to the engine.
type StoreDump struct {
	// Version is the catalog version at dump time; restored so cached
	// plans from before a crash can never be mistaken for current.
	Version int64
	Tables  []TableDump
	Views   []ViewDump
}

// findTable returns the index of the named table, or -1.
func (d *StoreDump) findTable(name string) int {
	for i := range d.Tables {
		if equalFold(d.Tables[i].Name, name) {
			return i
		}
	}
	return -1
}

// findView returns the index of the named view, or -1.
func (d *StoreDump) findView(name string) int {
	for i := range d.Views {
		if equalFold(d.Views[i].Name, name) {
			return i
		}
	}
	return -1
}

// equalFold is case-insensitive name equality, mirroring the catalog's
// unquoted-identifier semantics.
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Apply folds one replayed record into the dump. Errors mean the log
// is inconsistent with the store it claims to describe (e.g. an INSERT
// into a table that was never created) — recovery surfaces them rather
// than skipping, because a silently dropped record would corrupt every
// record after it.
func (d *StoreDump) Apply(rec *Record) error {
	switch rec.Type {
	case RecCreateTable:
		if i := d.findTable(rec.Name); i >= 0 {
			if !rec.OrReplace {
				return fmt.Errorf("replay CREATE TABLE %s: already exists", rec.Name)
			}
			d.Tables = append(d.Tables[:i], d.Tables[i+1:]...)
		}
		if i := d.findView(rec.Name); i >= 0 {
			d.Views = append(d.Views[:i], d.Views[i+1:]...)
		}
		d.Tables = append(d.Tables, TableDump{Name: rec.Name, Cols: rec.Cols, Types: rec.Types})
	case RecCreateView:
		if i := d.findView(rec.Name); i >= 0 {
			if !rec.OrReplace {
				return fmt.Errorf("replay CREATE VIEW %s: already exists", rec.Name)
			}
			d.Views = append(d.Views[:i], d.Views[i+1:]...)
		}
		if i := d.findTable(rec.Name); i >= 0 {
			d.Tables = append(d.Tables[:i], d.Tables[i+1:]...)
		}
		d.Views = append(d.Views, ViewDump{Name: rec.Name, SQL: rec.SQL})
	case RecDrop:
		switch rec.Kind {
		case "TABLE":
			i := d.findTable(rec.Name)
			if i < 0 {
				return fmt.Errorf("replay DROP TABLE %s: does not exist", rec.Name)
			}
			d.Tables = append(d.Tables[:i], d.Tables[i+1:]...)
		case "VIEW":
			i := d.findView(rec.Name)
			if i < 0 {
				return fmt.Errorf("replay DROP VIEW %s: does not exist", rec.Name)
			}
			d.Views = append(d.Views[:i], d.Views[i+1:]...)
		default:
			return fmt.Errorf("replay DROP: unknown object kind %q", rec.Kind)
		}
	case RecInsert:
		i := d.findTable(rec.Name)
		if i < 0 {
			return fmt.Errorf("replay INSERT into %s: table does not exist", rec.Name)
		}
		t := &d.Tables[i]
		for _, row := range rec.Rows {
			if len(row) != len(t.Cols) {
				return fmt.Errorf("replay INSERT into %s: row width %d != %d columns", rec.Name, len(row), len(t.Cols))
			}
		}
		t.Rows = append(t.Rows, rec.Rows...)
	case RecTruncate:
		i := d.findTable(rec.Name)
		if i < 0 {
			return fmt.Errorf("replay TRUNCATE %s: table does not exist", rec.Name)
		}
		d.Tables[i].Rows = nil
	default:
		return fmt.Errorf("replay: unknown record type %d", rec.Type)
	}
	d.Version++
	return nil
}

// NumRows returns the total row count across tables (test helper).
func (d *StoreDump) NumRows() int {
	n := 0
	for i := range d.Tables {
		n += len(d.Tables[i].Rows)
	}
	return n
}

const (
	snapMagic   = "MSQLSNP1"
	walMagic    = "MSQLWAL1"
	snapName    = "snapshot.msnap"
	snapTmpName = "snapshot.tmp"
	logName     = "wal.log"
)

// encodeSnapshot renders magic + payload + CRC.
func encodeSnapshot(dump *StoreDump, lastSeq uint64) []byte {
	b := make([]byte, 0, 4096)
	b = append(b, snapMagic...)
	b = appendUvarint(b, lastSeq)
	b = binary.AppendVarint(b, dump.Version)
	b = appendUvarint(b, uint64(len(dump.Tables)))
	for i := range dump.Tables {
		t := &dump.Tables[i]
		b = appendString(b, t.Name)
		b = appendUvarint(b, uint64(len(t.Cols)))
		for j, c := range t.Cols {
			b = appendString(b, c)
			b = append(b, byte(t.Types[j].Kind))
		}
		b = appendUvarint(b, uint64(len(t.Rows)))
		for _, row := range t.Rows {
			for _, v := range row {
				b = appendValue(b, v)
			}
		}
	}
	b = appendUvarint(b, uint64(len(dump.Views)))
	for _, v := range dump.Views {
		b = appendString(b, v.Name)
		b = appendString(b, v.SQL)
	}
	crc := crc32.Checksum(b[len(snapMagic):], castagnoli)
	return binary.LittleEndian.AppendUint32(b, crc)
}

// DecodeSnapshot parses a snapshot file image. Arbitrary bytes yield a
// *CorruptError, never a panic; allocation is bounded by the input
// length.
func DecodeSnapshot(data []byte) (*StoreDump, uint64, error) {
	fail := func(format string, args ...any) (*StoreDump, uint64, error) {
		return nil, 0, &CorruptError{File: snapName, Offset: -1, Detail: fmt.Sprintf(format, args...)}
	}
	if len(data) < len(snapMagic)+4 {
		return fail("file of %d bytes is too short", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return fail("bad magic %q", data[:len(snapMagic)])
	}
	payload := data[len(snapMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return fail("checksum mismatch (got %08x, want %08x)", got, want)
	}
	r := &byteReader{buf: payload}
	lastSeq, err := r.uvarint()
	if err != nil {
		return nil, 0, err
	}
	version, err := r.varint()
	if err != nil {
		return nil, 0, err
	}
	dump := &StoreDump{Version: version}
	ntables, err := r.uvarint()
	if err != nil {
		return nil, 0, err
	}
	if ntables > uint64(len(payload)) {
		return fail("table count %d exceeds payload", ntables)
	}
	dump.Tables = make([]TableDump, 0, ntables)
	for ti := uint64(0); ti < ntables; ti++ {
		var t TableDump
		if t.Name, err = r.string(); err != nil {
			return nil, 0, err
		}
		ncols, err := r.uvarint()
		if err != nil {
			return nil, 0, err
		}
		if ncols > uint64(len(payload)) {
			return fail("column count %d exceeds payload", ncols)
		}
		t.Cols = make([]string, ncols)
		t.Types = make([]sqltypes.Type, ncols)
		for j := range t.Cols {
			if t.Cols[j], err = r.string(); err != nil {
				return nil, 0, err
			}
			kb, err := r.byte()
			if err != nil {
				return nil, 0, err
			}
			if sqltypes.Kind(kb) > sqltypes.KindDate {
				return fail("unknown column kind %d", kb)
			}
			t.Types[j] = sqltypes.Type{Kind: sqltypes.Kind(kb)}
		}
		nrows, err := r.uvarint()
		if err != nil {
			return nil, 0, err
		}
		// Divide rather than multiply: nrows is attacker-controlled and
		// nrows*ncols can wrap uint64, slipping a huge allocation past the
		// bound. Every value costs at least one encoded byte, so nrows must
		// fit in remaining/ncols.
		if nrows > uint64(len(payload)-r.off)/max(ncols, 1) {
			return fail("%d×%d values overrun %d remaining bytes", nrows, ncols, len(payload)-r.off)
		}
		t.Rows = make([][]sqltypes.Value, nrows)
		for i := range t.Rows {
			row := make([]sqltypes.Value, ncols)
			for j := range row {
				if row[j], err = r.value(); err != nil {
					return nil, 0, err
				}
			}
			t.Rows[i] = row
		}
		dump.Tables = append(dump.Tables, t)
	}
	nviews, err := r.uvarint()
	if err != nil {
		return nil, 0, err
	}
	if nviews > uint64(len(payload)) {
		return fail("view count %d exceeds payload", nviews)
	}
	dump.Views = make([]ViewDump, 0, nviews)
	for i := uint64(0); i < nviews; i++ {
		var v ViewDump
		if v.Name, err = r.string(); err != nil {
			return nil, 0, err
		}
		if v.SQL, err = r.string(); err != nil {
			return nil, 0, err
		}
		dump.Views = append(dump.Views, v)
	}
	if r.off != len(payload) {
		return fail("%d trailing bytes after snapshot body", len(payload)-r.off)
	}
	return dump, lastSeq, nil
}

// readSnapshotFile loads and verifies dir's snapshot, if present.
// Returns (nil, 0, nil) when no snapshot exists.
func readSnapshotFile(dir string) (*StoreDump, uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapName))
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	return DecodeSnapshot(data)
}

// writeSnapshotFile writes dump to the temp file, fsyncs it, and
// atomically renames it into place, firing crash points at each
// boundary. The directory is fsynced after the rename so the new name
// itself is durable.
func writeSnapshotFile(dir string, dump *StoreDump, lastSeq uint64) error {
	if err := crash(CrashBeforeSnapshot); err != nil {
		return err
	}
	tmp := filepath.Join(dir, snapTmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	data := encodeSnapshot(dump, lastSeq)
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := crash(CrashAfterSnapshot); err != nil {
		return err
	}
	if err := crash(CrashBeforeRename); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapName)); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	return crash(CrashAfterRename)
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
