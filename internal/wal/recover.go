package wal

// Log replay. The rules for damage, chosen so recovery is deterministic
// and never loses acknowledged history silently:
//
//   - A record that runs past end-of-file, has an impossible length, or
//     fails its checksum *as the final record* is a torn tail — the
//     expected shape of a crash mid-write. It is truncated away and
//     recovery succeeds with everything before it.
//   - A record that fails its checksum (or fails to decode) with more
//     log after it is interior corruption. Recovery refuses to skip it:
//     replaying records after a hole would rebuild a store that never
//     existed. The caller gets a CorruptError naming the offset.
//   - Records whose sequence is ≤ the snapshot's are skipped: a crash
//     between checkpoint rename and log truncation legitimately leaves
//     them behind.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// replayResult summarizes one replay pass.
type replayResult struct {
	applied   int
	skipped   int
	lastSeq   uint64
	goodSize  int64
	tornBytes int64
}

// replayLog scans f (an opened wal.log), applies post-snapshot records
// to dump, truncates any torn tail, and leaves f positioned for
// appending.
func replayLog(f *os.File, snapSeq uint64, dump *StoreDump) (replayResult, error) {
	var res replayResult
	st, err := f.Stat()
	if err != nil {
		return res, err
	}
	size := st.Size()
	headerLen := int64(len(walMagic))

	if size < headerLen {
		// Brand-new log, or one torn inside the header: (re)initialize.
		res.tornBytes = size
		if err := f.Truncate(0); err != nil {
			return res, err
		}
		if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
			return res, err
		}
		if err := f.Sync(); err != nil {
			return res, err
		}
		res.goodSize = headerLen
		_, err = f.Seek(headerLen, io.SeekStart)
		return res, err
	}

	magic := make([]byte, headerLen)
	if _, err := f.ReadAt(magic, 0); err != nil {
		return res, err
	}
	if string(magic) != walMagic {
		// Not our file: refuse rather than destroy whatever this is.
		return res, &CorruptError{File: logName, Offset: 0,
			Detail: fmt.Sprintf("bad magic %q (not a wal file)", magic)}
	}

	r := bufio.NewReaderSize(io.NewSectionReader(f, headerLen, size-headerLen), 1<<16)
	off := headerLen
	var prevSeq uint64
	torn := false
	for {
		var hdr [recHeaderLen]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				break // clean end of log
			}
			if err == io.ErrUnexpectedEOF {
				torn = true // partial header: crash mid-write
				break
			}
			return res, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if uint64(length) > MaxRecordBytes || int64(length) > size-off-recHeaderLen {
			// Impossible length: either a torn length prefix or a record
			// cut short by the crash. Both are tail damage.
			torn = true
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return res, err // size-checked above; only a real I/O error lands here
		}
		recEnd := off + recHeaderLen + int64(length)
		atEOF := recEnd == size
		if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
			if atEOF {
				torn = true // bit-flipped or half-written final record
				break
			}
			return res, &CorruptError{File: logName, Offset: off,
				Detail: fmt.Sprintf("checksum mismatch (got %08x, want %08x) with %d bytes of log after it",
					got, wantCRC, size-recEnd)}
		}
		rec, derr := DecodePayload(payload)
		if derr != nil {
			if atEOF {
				torn = true
				break
			}
			return res, &CorruptError{File: logName, Offset: off,
				Detail: fmt.Sprintf("undecodable record with %d bytes of log after it: %v", size-recEnd, derr)}
		}
		if rec.Seq <= prevSeq {
			// The checksum passed, so these bytes were written this way:
			// a sequence that does not advance is logic-level corruption.
			return res, &CorruptError{File: logName, Offset: off,
				Detail: fmt.Sprintf("sequence went from %d to %d", prevSeq, rec.Seq)}
		}
		prevSeq = rec.Seq
		if rec.Seq <= snapSeq {
			res.skipped++ // pre-checkpoint leftover, already in the snapshot
		} else {
			if err := dump.Apply(rec); err != nil {
				return res, &CorruptError{File: logName, Offset: off,
					Detail: fmt.Sprintf("replay of record seq %d failed: %v", rec.Seq, err)}
			}
			res.applied++
		}
		res.lastSeq = rec.Seq
		off = recEnd
	}

	res.goodSize = off
	if torn || off < size {
		res.tornBytes = size - off
		if err := f.Truncate(off); err != nil {
			return res, err
		}
		if err := f.Sync(); err != nil {
			return res, err
		}
	}
	_, err = f.Seek(off, io.SeekStart)
	return res, err
}
