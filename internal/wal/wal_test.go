package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/measures-sql/msql/internal/sqltypes"
)

func intT() sqltypes.Type { return sqltypes.Type{Kind: sqltypes.KindInt} }

// createRec / insertRec build the tiny workload vocabulary the tests
// share: one table t(a INTEGER), one row per insert carrying its index.
func createRec() *Record {
	return &Record{Type: RecCreateTable, Name: "t", Cols: []string{"a"}, Types: []sqltypes.Type{intT()}}
}

func insertRec(i int64) *Record {
	return &Record{Type: RecInsert, Name: "t", Rows: [][]sqltypes.Value{{sqltypes.NewInt(i)}}}
}

// wantRows builds the expected rows of t after inserts 0..n-1.
func wantRows(n int) [][]sqltypes.Value {
	rows := make([][]sqltypes.Value, n)
	for i := range rows {
		rows[i] = []sqltypes.Value{sqltypes.NewInt(int64(i))}
	}
	return rows
}

// checkPrefix asserts dump is table t with exactly rows 0..k-1 for some
// k with lo ≤ k ≤ hi, and returns k.
func checkPrefix(t *testing.T, dump *StoreDump, lo, hi int) int {
	t.Helper()
	if len(dump.Tables) != 1 || !equalFold(dump.Tables[0].Name, "t") {
		t.Fatalf("recovered tables = %+v, want just t", dump.Tables)
	}
	got := dump.Tables[0].Rows
	k := len(got)
	if k < lo || k > hi {
		t.Fatalf("recovered %d rows, want between %d and %d", k, lo, hi)
	}
	if k > 0 && !reflect.DeepEqual(got, wantRows(k)) {
		t.Fatalf("recovered rows are not the prefix 0..%d: %v", k-1, got)
	}
	return k
}

func mustOpen(t *testing.T, dir string, opts Options) (*Manager, *StoreDump) {
	t.Helper()
	m, dump, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return m, dump
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []*Record{
		{Seq: 1, Type: RecCreateTable, Name: "Orders", OrReplace: true,
			Cols:  []string{"a", "b", "c", "d", "e"},
			Types: []sqltypes.Type{intT(), {Kind: sqltypes.KindFloat}, {Kind: sqltypes.KindString}, {Kind: sqltypes.KindDate}, {Kind: sqltypes.KindBool}}},
		{Seq: 2, Type: RecCreateView, Name: "V", SQL: "SELECT *, SUM(a) AS MEASURE m FROM Orders"},
		{Seq: 3, Type: RecDrop, Kind: "VIEW", Name: "V"},
		{Seq: 4, Type: RecInsert, Name: "Orders", Rows: [][]sqltypes.Value{
			{sqltypes.NewInt(-42), sqltypes.NewFloat(1.5), sqltypes.NewString("x'y"), sqltypes.NewDate(2024, 2, 29), sqltypes.NewBool(true)},
			{sqltypes.Null(sqltypes.KindInt), sqltypes.Null(sqltypes.KindUnknown), sqltypes.NewString(""), sqltypes.Null(sqltypes.KindDate), sqltypes.NewBool(false)},
		}},
		{Seq: 5, Type: RecTruncate, Name: "Orders"},
		{Seq: 6, Type: RecInsert, Name: "Orders", Rows: nil},
	}
	for _, rec := range recs {
		framed := EncodeRecord(rec)
		got, err := DecodePayload(framed[recHeaderLen:])
		if err != nil {
			t.Fatalf("decode %s: %v", rec.Type, err)
		}
		// Normalize nil-vs-empty rows for the comparison.
		if len(rec.Rows) == 0 {
			rec.Rows, got.Rows = nil, nil
		}
		if !reflect.DeepEqual(rec, got) {
			t.Errorf("%s round trip:\n got %+v\nwant %+v", rec.Type, got, rec)
		}
	}
}

func TestEmptyWAL(t *testing.T) {
	dir := t.TempDir()
	m, dump := mustOpen(t, dir, Options{})
	if len(dump.Tables) != 0 || len(dump.Views) != 0 {
		t.Fatalf("fresh dir produced non-empty dump: %+v", dump)
	}
	ri := m.Recovery()
	if ri.FromSnapshot || ri.Records != 0 || ri.TornTailBytes != 0 {
		t.Fatalf("fresh dir recovery info: %+v", ri)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Header-only log reopens clean too.
	m2, dump2 := mustOpen(t, dir, Options{})
	defer m2.Close()
	if len(dump2.Tables) != 0 || m2.Recovery().TornTailBytes != 0 {
		t.Fatalf("header-only reopen: dump=%+v info=%+v", dump2, m2.Recovery())
	}
}

func TestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	m, _ := mustOpen(t, dir, Options{Sync: SyncAlways})
	if err := m.Append(createRec()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := m.Append(insertRec(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := m.StatsSnapshot()
	if st.Appends != 11 || st.DurableSeq != 11 || st.Fsyncs == 0 {
		t.Fatalf("stats after 11 synced appends: %+v", st)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, dump := mustOpen(t, dir, Options{})
	defer m2.Close()
	checkPrefix(t, dump, 10, 10)
	ri := m2.Recovery()
	if ri.Records != 11 || ri.FromSnapshot || ri.TornTailBytes != 0 {
		t.Fatalf("recovery info: %+v", ri)
	}
	if dump.Version != 11 {
		t.Fatalf("replayed version = %d, want 11", dump.Version)
	}
}

func TestCheckpointAndTail(t *testing.T) {
	dir := t.TempDir()
	m, dump := mustOpen(t, dir, Options{Sync: SyncAlways})
	if err := m.Append(createRec()); err != nil {
		t.Fatal(err)
	}
	dump.Apply(&Record{Type: RecCreateTable, Name: "t", Cols: []string{"a"}, Types: []sqltypes.Type{intT()}})
	for i := 0; i < 5; i++ {
		m.Append(insertRec(int64(i)))
		dump.Apply(insertRec(int64(i)))
	}
	if err := m.Checkpoint(dump); err != nil {
		t.Fatal(err)
	}
	if st := m.StatsSnapshot(); st.Checkpoints != 1 || st.WALBytes != int64(len(walMagic)) {
		t.Fatalf("stats after checkpoint: %+v", st)
	}

	// Snapshot-only recovery.
	m.Close()
	m2, d2 := mustOpen(t, dir, Options{Sync: SyncAlways})
	checkPrefix(t, d2, 5, 5)
	ri := m2.Recovery()
	if !ri.FromSnapshot || ri.Records != 0 || ri.SnapshotSeq != 6 {
		t.Fatalf("snapshot-only recovery info: %+v", ri)
	}

	// Snapshot + tail recovery: append more after the checkpoint.
	for i := 5; i < 9; i++ {
		if err := m2.Append(insertRec(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	m2.Close()
	m3, d3 := mustOpen(t, dir, Options{})
	defer m3.Close()
	checkPrefix(t, d3, 9, 9)
	if ri := m3.Recovery(); !ri.FromSnapshot || ri.Records != 4 {
		t.Fatalf("snapshot+tail recovery info: %+v", ri)
	}
	// Sequence numbers continue across the checkpoint.
	if seq := m3.StatsSnapshot().Seq; seq != 10 {
		t.Fatalf("seq after recovery = %d, want 10", seq)
	}
}

// TestVersionRestore: the dump version survives checkpoint + replay so
// the engine can restore catalog versioning.
func TestVersionRestore(t *testing.T) {
	dir := t.TempDir()
	m, dump := mustOpen(t, dir, Options{})
	m.Append(createRec())
	dump.Apply(createRec())
	dump.Version = 41 // pretend the engine was at version 41
	if err := m.Checkpoint(dump); err != nil {
		t.Fatal(err)
	}
	m.Append(insertRec(0))
	m.Close()
	_, d2 := mustOpen(t, dir, Options{})
	if d2.Version != 42 { // 41 from snapshot + 1 replayed insert
		t.Fatalf("recovered version = %d, want 42", d2.Version)
	}
}

func TestTornFinalRecord(t *testing.T) {
	for _, cut := range []string{"truncate", "flip"} {
		t.Run(cut, func(t *testing.T) {
			dir := t.TempDir()
			m, _ := mustOpen(t, dir, Options{Sync: SyncAlways})
			m.Append(createRec())
			for i := 0; i < 5; i++ {
				m.Append(insertRec(int64(i)))
			}
			m.Close()

			log := filepath.Join(dir, logName)
			data, err := os.ReadFile(log)
			if err != nil {
				t.Fatal(err)
			}
			bounds := recordBounds(t, data)
			last := bounds[len(bounds)-1]
			switch cut {
			case "truncate":
				// Cut into the middle of the final record.
				data = data[:last.off+recHeaderLen+2]
			case "flip":
				// Flip a payload byte of the final record; CRC catches it.
				data[last.off+recHeaderLen+1] ^= 0xff
			}
			if err := os.WriteFile(log, data, 0o644); err != nil {
				t.Fatal(err)
			}

			m2, dump := mustOpen(t, dir, Options{})
			defer m2.Close()
			checkPrefix(t, dump, 4, 4)
			ri := m2.Recovery()
			if ri.TornTailBytes == 0 {
				t.Fatalf("torn tail not reported: %+v", ri)
			}
			// The truncation is clean: appending and re-recovering works.
			if err := m2.Append(insertRec(4)); err != nil {
				t.Fatal(err)
			}
			m2.Close()
			m3, d3 := mustOpen(t, dir, Options{})
			defer m3.Close()
			checkPrefix(t, d3, 5, 5)
		})
	}
}

func TestCorruptMidLogIsError(t *testing.T) {
	dir := t.TempDir()
	m, _ := mustOpen(t, dir, Options{Sync: SyncAlways})
	m.Append(createRec())
	for i := 0; i < 5; i++ {
		m.Append(insertRec(int64(i)))
	}
	m.Close()

	log := filepath.Join(dir, logName)
	data, err := os.ReadFile(log)
	if err != nil {
		t.Fatal(err)
	}
	bounds := recordBounds(t, data)
	// Flip a payload byte of record 3 of 6 — interior damage.
	mid := bounds[2]
	data[mid.off+recHeaderLen+1] ^= 0xff
	if err := os.WriteFile(log, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(dir, Options{})
	if err == nil {
		t.Fatal("mid-log corruption recovered silently; want an error")
	}
	if !IsCorrupt(err) {
		t.Fatalf("mid-log corruption error = %v, want CorruptError", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Offset != mid.off {
		t.Fatalf("corrupt offset = %+v, want offset %d", err, mid.off)
	}
}

func TestDoubleRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	m, dump := mustOpen(t, dir, Options{Sync: SyncAlways})
	m.Append(createRec())
	dump.Apply(createRec())
	for i := 0; i < 7; i++ {
		m.Append(insertRec(int64(i)))
		dump.Apply(insertRec(int64(i)))
	}
	m.Checkpoint(dump)
	for i := 7; i < 10; i++ {
		m.Append(insertRec(int64(i)))
	}
	// Tear the tail so recovery has real work to do.
	m.Close()
	log := filepath.Join(dir, logName)
	data, _ := os.ReadFile(log)
	data = data[:len(data)-3]
	os.WriteFile(log, data, 0o644)

	m1, d1 := mustOpen(t, dir, Options{})
	m1.Close()
	m2, d2 := mustOpen(t, dir, Options{})
	m2.Close()
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("double recovery diverged:\nfirst %+v\nsecond %+v", d1, d2)
	}
	checkPrefix(t, d2, 9, 9)
	if m2.Recovery().TornTailBytes != 0 {
		t.Fatalf("second recovery still saw a torn tail: %+v", m2.Recovery())
	}
	// And byte-for-byte: the second recovery must not rewrite the log.
	after1, _ := os.ReadFile(log)
	m3, _ := mustOpen(t, dir, Options{})
	m3.Close()
	after2, _ := os.ReadFile(log)
	if !bytes.Equal(after1, after2) {
		t.Fatal("recovery of a clean log modified it")
	}
}

func TestViewAndDDLReplay(t *testing.T) {
	dir := t.TempDir()
	m, _ := mustOpen(t, dir, Options{})
	m.Append(createRec())
	m.Append(&Record{Type: RecCreateView, Name: "v", SQL: "SELECT a FROM t"})
	m.Append(&Record{Type: RecCreateTable, Name: "u", Cols: []string{"b"}, Types: []sqltypes.Type{intT()}})
	m.Append(insertRec(1))
	m.Append(&Record{Type: RecTruncate, Name: "t"})
	m.Append(&Record{Type: RecDrop, Kind: "TABLE", Name: "u"})
	m.Append(&Record{Type: RecCreateView, Name: "v", OrReplace: true, SQL: "SELECT a+1 FROM t"})
	m.Close()

	_, dump := mustOpen(t, dir, Options{})
	if len(dump.Tables) != 1 || len(dump.Tables[0].Rows) != 0 {
		t.Fatalf("tables after replay: %+v", dump.Tables)
	}
	if len(dump.Views) != 1 || dump.Views[0].SQL != "SELECT a+1 FROM t" {
		t.Fatalf("views after replay: %+v", dump.Views)
	}
}

// TestGroupCommit: concurrent SyncAlways appends all become durable and
// share fsyncs (the whole point of group commit). Run with -race.
func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	m, _ := mustOpen(t, dir, Options{Sync: SyncAlways})
	m.Append(createRec())
	const workers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*each)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := m.Append(insertRec(int64(w*each + i))); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := m.StatsSnapshot()
	if st.Appends != 1+workers*each {
		t.Fatalf("appends = %d", st.Appends)
	}
	if st.DurableSeq != st.Seq {
		t.Fatalf("durable seq %d lags appended seq %d after SyncAlways appends", st.DurableSeq, st.Seq)
	}
	m.Close()

	m2, dump := mustOpen(t, dir, Options{})
	defer m2.Close()
	if got := len(dump.Tables[0].Rows); got != workers*each {
		t.Fatalf("recovered %d rows, want %d", got, workers*each)
	}
}

func TestIntervalAndOffSyncStillRecoverOnCleanClose(t *testing.T) {
	for _, p := range []SyncPolicy{SyncInterval, SyncOff} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			m, _ := mustOpen(t, dir, Options{Sync: p, SyncEvery: 5 * time.Millisecond})
			m.Append(createRec())
			for i := 0; i < 20; i++ {
				m.Append(insertRec(int64(i)))
			}
			if err := m.Sync(); err != nil { // explicit flush works under any policy
				t.Fatal(err)
			}
			m.Close()
			m2, dump := mustOpen(t, dir, Options{})
			defer m2.Close()
			checkPrefix(t, dump, 20, 20)
		})
	}
}

// recBound is one record's framed extent inside a wal.log image.
type recBound struct{ off, end int64 }

// recordBounds walks the framing of a log image (test helper).
func recordBounds(t *testing.T, data []byte) []recBound {
	t.Helper()
	var out []recBound
	off := int64(len(walMagic))
	for off < int64(len(data)) {
		if off+recHeaderLen > int64(len(data)) {
			break
		}
		length := int64(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		end := off + recHeaderLen + length
		if end > int64(len(data)) {
			break
		}
		out = append(out, recBound{off: off, end: end})
		off = end
	}
	if len(out) == 0 {
		t.Fatal("no records found in log image")
	}
	return out
}

// overflowSnapshotBytes crafts a snapshot image with a valid CRC whose
// claimed row count (2^63) wraps uint64 when multiplied by the column
// count — a regression input for the pre-allocation size check.
func overflowSnapshotBytes() []byte {
	b := []byte(snapMagic)
	b = appendUvarint(b, 0)       // lastSeq
	b = binary.AppendVarint(b, 0) // catalog version
	b = appendUvarint(b, 1)       // one table
	b = appendString(b, "t")
	b = appendUvarint(b, 2) // two columns
	b = appendString(b, "a")
	b = append(b, byte(sqltypes.KindInt))
	b = appendString(b, "b")
	b = append(b, byte(sqltypes.KindInt))
	b = appendUvarint(b, 1<<63) // nrows: ×2 wraps to 0
	crc := crc32.Checksum(b[len(snapMagic):], castagnoli)
	return binary.LittleEndian.AppendUint32(b, crc)
}

// TestSnapshotOverflowRowCount: a crafted snapshot whose rows×cols size
// product overflows must be rejected with a structured error before any
// allocation, never a panic or a huge make().
func TestSnapshotOverflowRowCount(t *testing.T) {
	_, _, err := DecodeSnapshot(overflowSnapshotBytes())
	if err == nil {
		t.Fatal("decode of overflowing snapshot succeeded")
	}
	if !errors.As(err, new(*CorruptError)) {
		t.Fatalf("unstructured error: %v", err)
	}
}
