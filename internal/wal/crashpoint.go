package wal

// Deterministic fault injection for the durability layer. A CrashPoint
// names a boundary in the append / fsync / checkpoint machinery; tests
// arm a hook that makes the operation at that boundary fail, simulating
// a process crash at exactly that instant. The Manager treats any hook
// error as fatal: it poisons itself (every later operation fails), so a
// "crashed" manager cannot quietly keep acknowledging writes — the test
// then reopens the directory and asserts on what recovery rebuilds.
//
// Production cost is one atomic load per site while no hook is armed.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// CrashPoint names an injection site.
type CrashPoint string

const (
	// CrashBeforeAppend fires before a record's bytes reach the log file.
	CrashBeforeAppend CrashPoint = "append:before-write"
	// CrashAfterAppend fires after the OS write, before any fsync.
	CrashAfterAppend CrashPoint = "append:after-write"
	// CrashBeforeSync fires immediately before an fsync of the log.
	CrashBeforeSync CrashPoint = "sync:before"
	// CrashAfterSync fires after a successful fsync, before waiters are
	// acknowledged.
	CrashAfterSync CrashPoint = "sync:after"
	// CrashBeforeSnapshot fires before the checkpoint temp file is written.
	CrashBeforeSnapshot CrashPoint = "checkpoint:before-write"
	// CrashAfterSnapshot fires after the temp file is written and synced,
	// before the atomic rename.
	CrashAfterSnapshot CrashPoint = "checkpoint:after-write"
	// CrashBeforeRename fires immediately before the rename that
	// publishes a checkpoint.
	CrashBeforeRename CrashPoint = "checkpoint:before-rename"
	// CrashAfterRename fires after the rename, before the WAL truncation
	// — recovery must then skip pre-checkpoint records by sequence.
	CrashAfterRename CrashPoint = "checkpoint:after-rename"
	// CrashAfterTruncate fires after the WAL is truncated, before the
	// checkpoint is acknowledged.
	CrashAfterTruncate CrashPoint = "checkpoint:after-truncate"
)

// CrashPoints lists every injection site, in the order they appear on
// the append → sync → checkpoint path; the crash-point harness iterates
// it so a new site cannot be forgotten.
var CrashPoints = []CrashPoint{
	CrashBeforeAppend, CrashAfterAppend,
	CrashBeforeSync, CrashAfterSync,
	CrashBeforeSnapshot, CrashAfterSnapshot,
	CrashBeforeRename, CrashAfterRename, CrashAfterTruncate,
}

// ErrCrashed is wrapped by every injected crash failure.
var ErrCrashed = errors.New("injected crash")

var (
	crashArmed atomic.Int32
	crashMu    sync.Mutex
	crashHook  func(CrashPoint) error
)

// SetCrashHook arms (or with nil clears) the global crash hook. The
// hook runs at every crash point; returning a non-nil error makes the
// surrounding operation fail and poisons the manager.
func SetCrashHook(hook func(CrashPoint) error) {
	crashMu.Lock()
	defer crashMu.Unlock()
	crashHook = hook
	if hook == nil {
		crashArmed.Store(0)
	} else {
		crashArmed.Store(1)
	}
}

// CrashAt returns a hook that fails the nth firing (1-based) of site p
// and everything after it — once "dead", the manager stays dead, like a
// real crash.
func CrashAt(p CrashPoint, nth int) func(CrashPoint) error {
	var seen atomic.Int64
	var dead atomic.Bool
	return func(site CrashPoint) error {
		if dead.Load() {
			return fmt.Errorf("crash point %s (already dead): %w", site, ErrCrashed)
		}
		if site != p {
			return nil
		}
		if seen.Add(1) >= int64(nth) {
			dead.Store(true)
			return fmt.Errorf("crash point %s firing %d: %w", site, nth, ErrCrashed)
		}
		return nil
	}
}

// crash runs the armed hook at site p, if any.
func crash(p CrashPoint) error {
	if crashArmed.Load() == 0 {
		return nil
	}
	crashMu.Lock()
	hook := crashHook
	crashMu.Unlock()
	if hook == nil {
		return nil
	}
	return hook(p)
}
