package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects when the log is fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs before an append is acknowledged (group commit:
	// concurrent appends share one fsync). An acknowledged write
	// survives any crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a timer (Options.SyncEvery); a crash can
	// lose up to one interval of acknowledged writes.
	SyncInterval
	// SyncOff never fsyncs; durability is whatever the OS flushes. The
	// log still makes clean restarts exact.
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps the flag spelling ("always" / "interval" /
// "off") to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("unknown wal sync policy %q (want always, interval, or off)", s)
	}
}

// Options configures a Manager.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period (default 50ms).
	SyncEvery time.Duration
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 50 * time.Millisecond
	}
	return o
}

// Stats is a point-in-time copy of the manager's counters.
type Stats struct {
	// Appends counts records appended; AppendBytes their framed size.
	Appends     int64 `json:"appends"`
	AppendBytes int64 `json:"append_bytes"`
	// Fsyncs counts fsync syscalls on the log (group commit batches many
	// appends into one).
	Fsyncs int64 `json:"fsyncs"`
	// Checkpoints counts completed checkpoints; LastCheckpointNs is the
	// duration of the most recent one and CheckpointNs their sum.
	Checkpoints      int64 `json:"checkpoints"`
	CheckpointNs     int64 `json:"checkpoint_ns"`
	LastCheckpointNs int64 `json:"last_checkpoint_ns"`
	// RecoveryNs is how long Open spent rebuilding the store;
	// RecoveredRecords how many log records it replayed (post-snapshot);
	// TornTailBytes how many trailing bytes it discarded as torn.
	RecoveryNs       int64 `json:"recovery_ns"`
	RecoveredRecords int64 `json:"recovered_records"`
	TornTailBytes    int64 `json:"torn_tail_bytes"`
	// Seq is the last assigned record sequence number; DurableSeq the
	// last sequence known flushed to disk; WALBytes the current log size.
	Seq        int64 `json:"seq"`
	DurableSeq int64 `json:"durable_seq"`
	WALBytes   int64 `json:"wal_bytes"`
}

// Manager owns one data directory: the append-only log and its
// checkpoint snapshot. Safe for concurrent use; appends are serialized,
// sync waiters batch into shared fsyncs (group commit).
type Manager struct {
	dir  string
	opts Options

	// mu serializes appends, checkpoints, and file repositioning.
	mu   sync.Mutex
	f    *os.File
	seq  uint64
	size int64

	// Group-commit state: appended/synced are sequence watermarks; a
	// waiter either becomes the syncer (one fsync covers every record
	// appended before it started) or sleeps until a syncer finishes.
	gc struct {
		mu       sync.Mutex
		cond     *sync.Cond
		appended uint64
		synced   uint64
		inFlight bool
	}

	// broken holds the first fatal durability error; once set, every
	// later mutation fails with it.
	broken atomic.Pointer[BrokenError]
	closed atomic.Bool

	appends     atomic.Int64
	appendBytes atomic.Int64
	fsyncs      atomic.Int64
	checkpoints atomic.Int64
	checkNs     atomic.Int64
	lastCheckNs atomic.Int64
	recovery    RecoveryInfo

	stopSyncer chan struct{}
	syncerDone chan struct{}
}

// Dir returns the manager's data directory.
func (m *Manager) Dir() string { return m.dir }

// Policy returns the manager's sync policy.
func (m *Manager) Policy() SyncPolicy { return m.opts.Sync }

// Recovery returns what Open's recovery pass did.
func (m *Manager) Recovery() RecoveryInfo { return m.recovery }

// StatsSnapshot returns a point-in-time copy of the counters.
func (m *Manager) StatsSnapshot() Stats {
	m.gc.mu.Lock()
	synced := m.gc.synced
	m.gc.mu.Unlock()
	m.mu.Lock()
	seq, size := m.seq, m.size
	m.mu.Unlock()
	return Stats{
		Appends:          m.appends.Load(),
		AppendBytes:      m.appendBytes.Load(),
		Fsyncs:           m.fsyncs.Load(),
		Checkpoints:      m.checkpoints.Load(),
		CheckpointNs:     m.checkNs.Load(),
		LastCheckpointNs: m.lastCheckNs.Load(),
		RecoveryNs:       m.recovery.DurationNs,
		RecoveredRecords: int64(m.recovery.Records),
		TornTailBytes:    m.recovery.TornTailBytes,
		Seq:              int64(seq),
		DurableSeq:       int64(synced),
		WALBytes:         size,
	}
}

// fail poisons the manager with err (keeping the first failure) and
// returns the poison error. Waiters blocked on a sync are woken so they
// observe the failure instead of hanging.
func (m *Manager) fail(err error) error {
	be := &BrokenError{Err: err}
	if !m.broken.CompareAndSwap(nil, be) {
		be = m.broken.Load()
	}
	m.gc.mu.Lock()
	m.gc.cond.Broadcast()
	m.gc.mu.Unlock()
	return be
}

// check returns the poison or closed error, if any.
func (m *Manager) check() error {
	if be := m.broken.Load(); be != nil {
		return be
	}
	if m.closed.Load() {
		return ErrClosed
	}
	return nil
}

// Append assigns the next sequence number to rec, writes it to the
// log, and — under SyncAlways — blocks until it is on disk. A nil
// return means the record is durable to the policy's guarantee; any
// error poisons the manager.
func (m *Manager) Append(rec *Record) error {
	if err := m.check(); err != nil {
		return err
	}
	m.mu.Lock()
	if err := m.check(); err != nil {
		m.mu.Unlock()
		return err
	}
	if err := crash(CrashBeforeAppend); err != nil {
		m.mu.Unlock()
		return m.fail(err)
	}
	m.seq++
	rec.Seq = m.seq
	buf := EncodeRecord(rec)
	n, err := m.f.Write(buf)
	m.size += int64(n)
	if err != nil {
		// A partial write leaves a torn tail; recovery truncates it.
		m.mu.Unlock()
		return m.fail(err)
	}
	seq := m.seq
	m.appends.Add(1)
	m.appendBytes.Add(int64(n))
	if err := crash(CrashAfterAppend); err != nil {
		m.mu.Unlock()
		return m.fail(err)
	}
	m.gc.mu.Lock()
	m.gc.appended = seq
	m.gc.mu.Unlock()
	m.mu.Unlock()

	if m.opts.Sync == SyncAlways {
		return m.waitDurable(seq)
	}
	return nil
}

// waitDurable blocks until every record up to seq is fsynced (or the
// manager fails). One waiter at a time runs the fsync; the rest
// piggyback on its result — that is the group commit.
func (m *Manager) waitDurable(seq uint64) error {
	g := &m.gc
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.synced < seq {
		if be := m.broken.Load(); be != nil {
			return be
		}
		if m.closed.Load() {
			return ErrClosed
		}
		if !g.inFlight {
			g.inFlight = true
			target := g.appended
			g.mu.Unlock()
			err := crash(CrashBeforeSync)
			if err == nil {
				if err = m.f.Sync(); err == nil {
					m.fsyncs.Add(1)
					err = crash(CrashAfterSync)
				}
			}
			g.mu.Lock()
			g.inFlight = false
			if err != nil {
				g.mu.Unlock()
				m.fail(err) // broadcasts
				g.mu.Lock()
				continue
			}
			if target > g.synced {
				g.synced = target
			}
			g.cond.Broadcast()
		} else {
			g.cond.Wait()
		}
	}
	return nil
}

// Sync forces everything appended so far onto disk, regardless of the
// sync policy. Used by graceful drain and Close.
func (m *Manager) Sync() error {
	if err := m.check(); err != nil {
		return err
	}
	m.gc.mu.Lock()
	target := m.gc.appended
	done := m.gc.synced >= target
	m.gc.mu.Unlock()
	if done {
		return nil
	}
	return m.waitDurable(target)
}

// RecoveryInfo describes what Open's recovery pass found and did.
type RecoveryInfo struct {
	// FromSnapshot reports whether a checkpoint snapshot was loaded.
	FromSnapshot bool
	// SnapshotSeq is the last sequence the snapshot includes.
	SnapshotSeq uint64
	// Records is how many log records were replayed on top.
	Records int
	// SkippedRecords counts valid pre-snapshot records skipped (a crash
	// between checkpoint rename and truncation leaves them behind).
	SkippedRecords int
	// TornTailBytes is how many trailing bytes were discarded as a torn
	// or corrupt tail (0 for a clean log).
	TornTailBytes int64
	// DurationNs is the wall time of the whole recovery pass.
	DurationNs int64
}

// Open opens (creating if needed) the data directory, recovers the
// store from snapshot + log, and returns a manager positioned to append.
// A torn or corrupt log tail is truncated cleanly; corruption in the
// middle of the log is an error — see CorruptError.
func Open(dir string, opts Options) (*Manager, *StoreDump, error) {
	start := time.Now()
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	// A leftover temp snapshot is an unfinished checkpoint: discard it.
	if err := os.Remove(filepath.Join(dir, snapTmpName)); err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}

	var info RecoveryInfo
	dump, snapSeq, err := readSnapshotFile(dir)
	if err != nil {
		return nil, nil, err
	}
	if dump != nil {
		info.FromSnapshot = true
		info.SnapshotSeq = snapSeq
	} else {
		dump = &StoreDump{}
	}

	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	res, err := replayLog(f, snapSeq, dump)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	info.Records = res.applied
	info.SkippedRecords = res.skipped
	info.TornTailBytes = res.tornBytes

	m := &Manager{dir: dir, opts: opts, f: f, seq: max(res.lastSeq, snapSeq), size: res.goodSize}
	m.gc.cond = sync.NewCond(&m.gc.mu)
	m.gc.appended = m.seq
	m.gc.synced = m.seq
	info.DurationNs = int64(time.Since(start))
	m.recovery = info

	if opts.Sync == SyncInterval {
		m.stopSyncer = make(chan struct{})
		m.syncerDone = make(chan struct{})
		go m.runSyncer()
	}
	return m, dump, nil
}

// runSyncer is the SyncInterval background flusher.
func (m *Manager) runSyncer() {
	defer close(m.syncerDone)
	t := time.NewTicker(m.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stopSyncer:
			return
		case <-t.C:
			m.gc.mu.Lock()
			dirty := m.gc.appended > m.gc.synced
			target := m.gc.appended
			m.gc.mu.Unlock()
			if dirty {
				m.waitDurable(target) // errors poison the manager
			}
		}
	}
}

// Checkpoint persists dump (which must reflect every record appended so
// far — the caller serializes mutations around this call), atomically
// publishes it, and truncates the log. After a successful checkpoint
// recovery needs only the snapshot plus records appended afterwards.
func (m *Manager) Checkpoint(dump *StoreDump) error {
	if err := m.check(); err != nil {
		return err
	}
	start := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(); err != nil {
		return err
	}
	if err := writeSnapshotFile(m.dir, dump, m.seq); err != nil {
		return m.fail(err)
	}
	// The snapshot is durable and published: the log's records are now
	// redundant. Truncate back to the bare header.
	if err := m.truncateLogLocked(); err != nil {
		return m.fail(err)
	}
	if err := crash(CrashAfterTruncate); err != nil {
		return m.fail(err)
	}
	// Everything up to seq is durable through the snapshot; release any
	// interval-sync backlog so waiters do not fsync truncated bytes.
	m.gc.mu.Lock()
	if m.gc.synced < m.seq {
		m.gc.synced = m.seq
	}
	m.gc.cond.Broadcast()
	m.gc.mu.Unlock()
	m.checkpoints.Add(1)
	ns := int64(time.Since(start))
	m.checkNs.Add(ns)
	m.lastCheckNs.Store(ns)
	return nil
}

// truncateLogLocked resets the log file to header-only. Caller holds mu.
func (m *Manager) truncateLogLocked() error {
	if err := m.f.Truncate(int64(len(walMagic))); err != nil {
		return err
	}
	if _, err := m.f.Seek(int64(len(walMagic)), 0); err != nil {
		return err
	}
	if err := m.f.Sync(); err != nil {
		return err
	}
	m.fsyncs.Add(1)
	m.size = int64(len(walMagic))
	return nil
}

// Close flushes and closes the log. The manager is unusable afterwards;
// reopen the directory with Open to resume.
func (m *Manager) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	if m.stopSyncer != nil {
		close(m.stopSyncer)
		<-m.syncerDone
	}
	// Best-effort final flush (skip when poisoned: the log may be gone).
	var syncErr error
	if m.broken.Load() == nil {
		m.gc.mu.Lock()
		dirty := m.gc.appended > m.gc.synced
		m.gc.mu.Unlock()
		if dirty {
			if err := m.f.Sync(); err != nil {
				syncErr = err
			} else {
				m.fsyncs.Add(1)
			}
		}
	}
	// Wake anyone still blocked in waitDurable so they observe ErrClosed.
	m.gc.mu.Lock()
	m.gc.cond.Broadcast()
	m.gc.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.f.Close(); err != nil && syncErr == nil {
		syncErr = err
	}
	return syncErr
}
