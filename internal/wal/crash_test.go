package wal

// The crash-point harness: for every injection site on the append →
// fsync → checkpoint path, run a seeded workload that dies at that
// site, reopen the directory, and assert the recovered store is
// exactly a durable prefix of the workload — every acknowledged write
// present, nothing that was never issued, rows in order. This is the
// acceptance gate for the durability layer.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestCrashPointHarness(t *testing.T) {
	const inserts = 12
	for _, site := range CrashPoints {
		for nth := 1; nth <= 3; nth++ {
			t.Run(fmt.Sprintf("%s/nth=%d", site, nth), func(t *testing.T) {
				dir := t.TempDir()
				m, oracle := mustOpen(t, dir, Options{Sync: SyncAlways})
				SetCrashHook(CrashAt(site, nth))
				defer SetCrashHook(nil)

				// Workload: CREATE TABLE, inserts 0..11 with a checkpoint
				// in the middle. Track what was acknowledged (Append or
				// Checkpoint returned nil) versus merely issued.
				ackedCreate := false
				acked, issued := 0, 0
				crashed := false
				do := func(rec *Record) bool {
					if err := m.Append(rec); err != nil {
						if !errors.Is(err, ErrCrashed) {
							t.Fatalf("append failed with a non-injected error: %v", err)
						}
						crashed = true
						return false
					}
					if err := oracle.Apply(rec); err != nil {
						t.Fatalf("oracle apply: %v", err)
					}
					return true
				}
				ackedCreate = do(createRec())
				for i := 0; i < inserts && !crashed; i++ {
					if i == inserts/2 {
						if err := m.Checkpoint(oracle); err != nil {
							if !errors.Is(err, ErrCrashed) {
								t.Fatalf("checkpoint failed with a non-injected error: %v", err)
							}
							crashed = true
							break
						}
					}
					issued++
					if do(insertRec(int64(i))) {
						acked++
					}
				}
				if crashed {
					// A poisoned manager must refuse everything afterwards.
					if err := m.Append(insertRec(99)); err == nil {
						t.Fatal("append succeeded on a crashed manager")
					} else if !errors.As(err, new(*BrokenError)) {
						t.Fatalf("post-crash append error = %v, want BrokenError", err)
					}
				}

				// "Reboot": drop the hook, close whatever is left, recover.
				SetCrashHook(nil)
				m.Close()
				m2, dump, err := Open(dir, Options{})
				if err != nil {
					t.Fatalf("recovery after crash at %s: %v", site, err)
				}
				defer m2.Close()

				if len(dump.Tables) == 0 {
					if ackedCreate || acked > 0 {
						t.Fatalf("acked writes lost: create=%v inserts=%d but store is empty", ackedCreate, acked)
					}
					return
				}
				k := checkPrefix(t, dump, acked, issued)
				t.Logf("site %s nth %d: crashed=%v acked=%d issued=%d recovered=%d",
					site, nth, crashed, acked, issued, k)

				// The recovered manager must be fully writable again.
				if err := m2.Append(&Record{Type: RecInsert, Name: "t",
					Rows: wantRows(1)}); err != nil {
					t.Fatalf("append after recovery: %v", err)
				}
			})
		}
	}
}

// TestTornWriteInjector mangles a clean log image at seeded-random
// offsets — truncations (torn writes) and single-bit flips (media
// damage) — and asserts recovery either yields an ordered prefix of
// the original rows or refuses with a CorruptError. It must never
// panic and never fabricate a store that was not a prefix.
func TestTornWriteInjector(t *testing.T) {
	const n = 20
	src := t.TempDir()
	m, _ := mustOpen(t, src, Options{Sync: SyncAlways})
	if err := m.Append(createRec()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := m.Append(insertRec(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	clean, err := os.ReadFile(filepath.Join(src, logName))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))

	recover := func(t *testing.T, img []byte) (*StoreDump, error) {
		t.Helper()
		d := t.TempDir()
		if err := os.WriteFile(filepath.Join(d, logName), img, 0o644); err != nil {
			t.Fatal(err)
		}
		m2, dump, err := Open(d, Options{})
		if err != nil {
			return nil, err
		}
		m2.Close()
		return dump, nil
	}

	t.Run("truncate", func(t *testing.T) {
		for trial := 0; trial < 64; trial++ {
			cut := rng.Intn(len(clean) + 1)
			dump, err := recover(t, clean[:cut])
			if err != nil {
				t.Fatalf("trial %d: truncation to %d bytes must recover, got %v", trial, cut, err)
			}
			if len(dump.Tables) > 0 {
				checkPrefix(t, dump, 0, n)
			}
		}
	})
	t.Run("flip", func(t *testing.T) {
		for trial := 0; trial < 128; trial++ {
			img := append([]byte(nil), clean...)
			pos := rng.Intn(len(img))
			img[pos] ^= 1 << uint(rng.Intn(8))
			dump, err := recover(t, img)
			if err != nil {
				if !IsCorrupt(err) {
					t.Fatalf("trial %d: flip at %d gave non-corrupt error %v", trial, pos, err)
				}
				continue
			}
			if len(dump.Tables) > 0 {
				checkPrefix(t, dump, 0, n)
			}
		}
	})
}
