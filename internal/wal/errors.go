package wal

import (
	"errors"
	"fmt"
)

// CorruptError reports a structurally invalid record or snapshot. A
// corrupt *tail* is handled silently (truncated during recovery); a
// CorruptError escaping Open means corruption in the middle of the log
// or snapshot, which recovery refuses to skip — dropping an interior
// record would silently reorder history.
type CorruptError struct {
	// File is the corrupt file's name (empty when decoding a buffer).
	File string
	// Offset is the byte offset of the corrupt record, -1 if unknown.
	Offset int64
	// Detail describes what failed to parse or verify.
	Detail string
}

func (e *CorruptError) Error() string {
	if e.File != "" {
		return fmt.Sprintf("wal: corrupt %s at offset %d: %s", e.File, e.Offset, e.Detail)
	}
	return fmt.Sprintf("wal: corrupt record: %s", e.Detail)
}

// IsCorrupt reports whether err is (or wraps) a CorruptError.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// ErrClosed is returned by operations on a closed manager.
var ErrClosed = errors.New("wal: manager is closed")

// BrokenError wraps the first fatal durability failure; once a manager
// is poisoned, every later mutation fails with it, so a process that
// lost its log cannot quietly keep acknowledging writes.
type BrokenError struct{ Err error }

func (e *BrokenError) Error() string { return "wal: durability broken: " + e.Err.Error() }
func (e *BrokenError) Unwrap() error { return e.Err }
