package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Arithmetic. NULL operands propagate NULL of the result kind. INT op INT
// yields INT except for division, which always yields DOUBLE: the paper's
// Listing 4 computes 0.60/0.47/0.67 from integer revenue and cost columns,
// so measure formulas require non-truncating division.

// Add returns a + b. For DATE + INT it returns a date shifted by days.
func Add(a, b Value) (Value, error) { return arith(a, b, "+") }

// Sub returns a - b. DATE - INT shifts by days; DATE - DATE yields the
// difference in days as INTEGER.
func Sub(a, b Value) (Value, error) { return arith(a, b, "-") }

// Mul returns a * b.
func Mul(a, b Value) (Value, error) { return arith(a, b, "*") }

// Div returns a / b as DOUBLE; division by zero yields NULL (engines
// differ here; NULL keeps measure ratios total-safe, and we document it).
func Div(a, b Value) (Value, error) { return arith(a, b, "/") }

// Mod returns MOD(a, b) over integers.
func Mod(a, b Value) (Value, error) { return arith(a, b, "%") }

func arith(a, b Value, op string) (Value, error) {
	// Date arithmetic first.
	if a.K == KindDate || b.K == KindDate {
		return dateArith(a, b, op)
	}
	if !a.K.Numeric() && a.K != KindUnknown {
		return Value{}, fmt.Errorf("operator %s: non-numeric operand of type %s", op, a.K)
	}
	if !b.K.Numeric() && b.K != KindUnknown {
		return Value{}, fmt.Errorf("operator %s: non-numeric operand of type %s", op, b.K)
	}
	if op == "/" {
		if a.Null || b.Null {
			return Null(KindFloat), nil
		}
		den := b.AsFloat()
		if den == 0 {
			return Null(KindFloat), nil
		}
		return NewFloat(a.AsFloat() / den), nil
	}
	kind := KindInt
	if a.K == KindFloat || b.K == KindFloat {
		kind = KindFloat
	}
	if a.Null || b.Null {
		return Null(kind), nil
	}
	if kind == KindInt {
		switch op {
		case "+":
			if s, ok := addInt(a.I, b.I); ok {
				return NewInt(s), nil
			}
			return Value{}, fmt.Errorf("INTEGER overflow in %d + %d", a.I, b.I)
		case "-":
			if s, ok := subInt(a.I, b.I); ok {
				return NewInt(s), nil
			}
			return Value{}, fmt.Errorf("INTEGER overflow in %d - %d", a.I, b.I)
		case "*":
			if s, ok := mulInt(a.I, b.I); ok {
				return NewInt(s), nil
			}
			return Value{}, fmt.Errorf("INTEGER overflow in %d * %d", a.I, b.I)
		case "%":
			if b.I == 0 {
				return Null(KindInt), nil
			}
			return NewInt(a.I % b.I), nil
		}
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case "+":
		return NewFloat(x + y), nil
	case "-":
		return NewFloat(x - y), nil
	case "*":
		return NewFloat(x * y), nil
	case "%":
		if y == 0 {
			return Null(KindFloat), nil
		}
		if !inInt64Range(x) || !inInt64Range(y) {
			return Value{}, fmt.Errorf("MOD: operand out of INTEGER range")
		}
		// y != 0 does not imply int64(y) != 0 (e.g. MOD(1.0, 0.5)):
		// guard the truncated divisor or the modulo below faults.
		yi := int64(y)
		if yi == 0 {
			return Null(KindFloat), nil
		}
		return NewFloat(float64(int64(x) % yi)), nil
	}
	return Value{}, fmt.Errorf("unknown operator %s", op)
}

// addInt, subInt, mulInt are checked int64 arithmetic: ok is false on
// two's-complement overflow, which the engine surfaces as ErrRuntime
// instead of silently wrapping.
func addInt(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func subInt(a, b int64) (int64, bool) {
	d := a - b
	if (b < 0 && d < a) || (b > 0 && d > a) {
		return 0, false
	}
	return d, true
}

func mulInt(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	// MinInt64 has no positive counterpart, so the p/b != a probe below
	// cannot detect MinInt64 * -1; handle the extreme explicitly.
	if a == math.MinInt64 || b == math.MinInt64 {
		if a == 1 {
			return b, true
		}
		if b == 1 {
			return a, true
		}
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// AddInt64, SubInt64, MulInt64 expose the checked int64 arithmetic to the
// vectorized kernels, which must reproduce the scalar operators' overflow
// behavior exactly.
func AddInt64(a, b int64) (int64, bool) { return addInt(a, b) }

// SubInt64 is checked int64 subtraction; see AddInt64.
func SubInt64(a, b int64) (int64, bool) { return subInt(a, b) }

// MulInt64 is checked int64 multiplication; see AddInt64.
func MulInt64(a, b int64) (int64, bool) { return mulInt(a, b) }

// InInt64Range reports whether f truncates to an in-range int64; the
// vectorized MOD kernel shares it with the scalar operator.
func InInt64Range(f float64) bool { return inInt64Range(f) }

// inInt64Range reports whether f converts to int64 without leaving the
// type's range (NaN and ±Inf are out of range).
func inInt64Range(f float64) bool {
	// 2^63 is exact in float64; MaxInt64 itself is not, so the upper
	// bound is strict.
	return f >= math.MinInt64 && f < math.MaxInt64
}

func dateArith(a, b Value, op string) (Value, error) {
	switch {
	case a.K == KindDate && b.K == KindDate && op == "-":
		if a.Null || b.Null {
			return Null(KindInt), nil
		}
		return NewInt(a.I - b.I), nil
	case a.K == KindDate && (b.K == KindInt || b.K == KindUnknown) && (op == "+" || op == "-"):
		if a.Null || b.Null {
			return Null(KindDate), nil
		}
		if op == "+" {
			return NewDateDays(a.I + b.I), nil
		}
		return NewDateDays(a.I - b.I), nil
	case b.K == KindDate && (a.K == KindInt || a.K == KindUnknown) && op == "+":
		if a.Null || b.Null {
			return Null(KindDate), nil
		}
		return NewDateDays(a.I + b.I), nil
	default:
		return Value{}, fmt.Errorf("invalid date arithmetic: %s %s %s", a.K, op, b.K)
	}
}

// Neg returns -a.
func Neg(a Value) (Value, error) {
	if !a.K.Numeric() && a.K != KindUnknown {
		return Value{}, fmt.Errorf("unary minus: non-numeric operand of type %s", a.K)
	}
	if a.Null {
		return a, nil
	}
	if a.K == KindInt {
		if a.I == math.MinInt64 {
			return Value{}, fmt.Errorf("INTEGER overflow in -(%d)", a.I)
		}
		return NewInt(-a.I), nil
	}
	return NewFloat(-a.F), nil
}

// Cast converts v to kind, following SQL CAST semantics for the supported
// kinds. NULL casts to NULL of the target kind. Invalid conversions return
// an error (e.g. CAST('abc' AS INTEGER)).
func Cast(v Value, kind Kind) (Value, error) {
	if v.Null {
		return Null(kind), nil
	}
	if v.K == kind {
		return v, nil
	}
	switch kind {
	case KindBool:
		switch v.K {
		case KindString:
			switch strings.ToUpper(strings.TrimSpace(v.S)) {
			case "TRUE", "T", "1":
				return NewBool(true), nil
			case "FALSE", "F", "0":
				return NewBool(false), nil
			}
			return Value{}, fmt.Errorf("cannot cast %q to BOOLEAN", v.S)
		case KindInt:
			return NewBool(v.I != 0), nil
		}
	case KindInt:
		switch v.K {
		case KindFloat:
			if !inInt64Range(v.F) {
				return Value{}, fmt.Errorf("cannot cast %v to INTEGER: out of range", v.F)
			}
			return NewInt(int64(v.F)), nil
		case KindBool:
			return NewInt(b2i(v.B)), nil
		case KindString:
			i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("cannot cast %q to INTEGER", v.S)
			}
			return NewInt(i), nil
		}
	case KindFloat:
		switch v.K {
		case KindInt:
			return NewFloat(float64(v.I)), nil
		case KindBool:
			return NewFloat(float64(b2i(v.B))), nil
		case KindString:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
			if err != nil {
				return Value{}, fmt.Errorf("cannot cast %q to DOUBLE", v.S)
			}
			return NewFloat(f), nil
		}
	case KindString:
		return NewString(v.String()), nil
	case KindDate:
		if v.K == KindString {
			return ParseDate(strings.TrimSpace(v.S))
		}
	}
	return Value{}, fmt.Errorf("cannot cast %s to %s", v.K, kind)
}

// And implements SQL three-valued AND.
func And(a, b Value) Value {
	if a.IsFalse() || b.IsFalse() {
		return NewBool(false)
	}
	if a.Null || b.Null {
		return Null(KindBool)
	}
	return NewBool(true)
}

// Or implements SQL three-valued OR.
func Or(a, b Value) Value {
	if a.IsTrue() || b.IsTrue() {
		return NewBool(true)
	}
	if a.Null || b.Null {
		return Null(KindBool)
	}
	return NewBool(false)
}

// Not implements SQL three-valued NOT.
func Not(a Value) Value {
	if a.Null {
		return Null(KindBool)
	}
	return NewBool(!a.B)
}
