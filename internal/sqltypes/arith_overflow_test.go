package sqltypes

import (
	"math"
	"strings"
	"testing"
)

func TestCheckedIntHelpers(t *testing.T) {
	cases := []struct {
		op   string
		a, b int64
		want int64
		ok   bool
	}{
		{"+", 1, 2, 3, true},
		{"+", math.MaxInt64, 1, 0, false},
		{"+", math.MinInt64, -1, 0, false},
		{"+", math.MaxInt64, math.MinInt64, -1, true},
		{"-", 1, 2, -1, true},
		{"-", math.MinInt64, 1, 0, false},
		{"-", math.MaxInt64, -1, 0, false},
		{"-", 0, math.MinInt64, 0, false},
		{"*", 3, 4, 12, true},
		{"*", math.MaxInt64, 2, 0, false},
		{"*", math.MinInt64, -1, 0, false},
		{"*", math.MinInt64, 1, math.MinInt64, true},
		{"*", 1, math.MinInt64, math.MinInt64, true},
		{"*", math.MinInt64, 2, 0, false},
		{"*", -1, math.MinInt64, 0, false},
		{"*", 0, math.MinInt64, 0, true},
		{"*", math.MaxInt64, -1, -math.MaxInt64, true},
	}
	for _, tc := range cases {
		var got int64
		var ok bool
		switch tc.op {
		case "+":
			got, ok = addInt(tc.a, tc.b)
		case "-":
			got, ok = subInt(tc.a, tc.b)
		case "*":
			got, ok = mulInt(tc.a, tc.b)
		}
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("%d %s %d = (%d, %v), want (%d, %v)", tc.a, tc.op, tc.b, got, ok, tc.want, tc.ok)
		}
	}
}

func TestInInt64Range(t *testing.T) {
	for _, f := range []float64{0, 1, -1, math.MinInt64, math.MaxInt64 - 1024} {
		if !inInt64Range(f) {
			t.Errorf("inInt64Range(%v) = false, want true", f)
		}
	}
	for _, f := range []float64{math.MaxInt64, 1e300, -1e300, math.Inf(1), math.Inf(-1), math.NaN()} {
		if inInt64Range(f) {
			t.Errorf("inInt64Range(%v) = true, want false", f)
		}
	}
}

func TestArithOverflowErrors(t *testing.T) {
	max := NewInt(math.MaxInt64)
	min := NewInt(math.MinInt64)
	one := NewInt(1)
	for _, tc := range []struct {
		name string
		f    func() (Value, error)
	}{
		{"add", func() (Value, error) { return Add(max, one) }},
		{"sub", func() (Value, error) { return Sub(min, one) }},
		{"mul", func() (Value, error) { return Mul(max, NewInt(2)) }},
		{"neg", func() (Value, error) { return Neg(min) }},
	} {
		if _, err := tc.f(); err == nil || !strings.Contains(err.Error(), "overflow") {
			t.Errorf("%s: want overflow error, got %v", tc.name, err)
		}
	}
	// NULL propagation is unchanged by the overflow checks.
	if v, err := Add(Null(KindInt), max); err != nil || !v.Null {
		t.Errorf("NULL + max = (%v, %v), want NULL", v, err)
	}
}

func TestModEdgeCases(t *testing.T) {
	if v, err := Mod(NewFloat(1.0), NewFloat(0.5)); err != nil || !v.Null {
		t.Errorf("MOD(1.0, 0.5) = (%v, %v), want NULL (truncated divisor is zero)", v, err)
	}
	if v, err := Mod(NewInt(7), NewInt(0)); err != nil || !v.Null {
		t.Errorf("MOD(7, 0) = (%v, %v), want NULL", v, err)
	}
	if _, err := Mod(NewFloat(1e300), NewFloat(7)); err == nil {
		t.Error("MOD(1e300, 7) must error: operand out of INTEGER range")
	}
}

func TestCastFloatToIntRange(t *testing.T) {
	if _, err := Cast(NewFloat(1e300), KindInt); err == nil {
		t.Error("CAST(1e300 AS INTEGER) must error")
	}
	if _, err := Cast(NewFloat(math.NaN()), KindInt); err == nil {
		t.Error("CAST(NaN AS INTEGER) must error")
	}
	if v, err := Cast(NewFloat(-3.9), KindInt); err != nil || v.I != -3 {
		t.Errorf("CAST(-3.9 AS INTEGER) = (%v, %v), want -3 (truncation)", v, err)
	}
}
