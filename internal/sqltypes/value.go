package sqltypes

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"time"
)

// Value is a single SQL value. The zero Value is an untyped NULL.
//
// Dates are stored in I as days since 1970-01-01 (proleptic Gregorian,
// UTC); this makes date comparison and grouping cheap while YEAR/MONTH
// etc. convert through time.Time on demand.
type Value struct {
	K    Kind
	Null bool
	B    bool
	I    int64
	F    float64
	S    string
}

// Constructors.

// Null returns a NULL of kind k (use KindUnknown for a bare NULL literal).
func Null(k Kind) Value { return Value{K: k, Null: true} }

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value { return Value{K: KindBool, B: b} }

// NewInt returns an INTEGER value.
func NewInt(i int64) Value { return Value{K: KindInt, I: i} }

// NewFloat returns a DOUBLE value.
func NewFloat(f float64) Value { return Value{K: KindFloat, F: f} }

// NewString returns a VARCHAR value.
func NewString(s string) Value { return Value{K: KindString, S: s} }

// NewDate returns a DATE value for the given civil date.
func NewDate(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Value{K: KindDate, I: t.Unix() / 86400}
}

// NewDateDays returns a DATE value from days since the Unix epoch.
func NewDateDays(days int64) Value { return Value{K: KindDate, I: days} }

// ParseDate parses 'YYYY-MM-DD' (also accepting '/' separators, as the
// paper's tables print dates like 2023/11/28).
func ParseDate(s string) (Value, error) {
	for _, layout := range []string{"2006-01-02", "2006/01/02"} {
		if t, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
			return Value{K: KindDate, I: t.Unix() / 86400}, nil
		}
	}
	return Value{}, fmt.Errorf("invalid DATE literal %q", s)
}

// Time returns the civil date as a time.Time (midnight UTC). Only valid
// for DATE values.
func (v Value) Time() time.Time { return time.Unix(v.I*86400, 0).UTC() }

// IsTrue reports whether v is a non-null TRUE boolean.
func (v Value) IsTrue() bool { return v.K == KindBool && !v.Null && v.B }

// IsFalse reports whether v is a non-null FALSE boolean.
func (v Value) IsFalse() bool { return v.K == KindBool && !v.Null && !v.B }

// AsFloat returns the numeric value as float64. Valid for INT and FLOAT.
func (v Value) AsFloat() float64 {
	if v.K == KindInt {
		return float64(v.I)
	}
	return v.F
}

// String renders the value in SQL literal style; NULL renders as "NULL".
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.K {
	case KindBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return formatFloat(v.F)
	case KindString:
		return v.S
	case KindDate:
		return v.Time().Format("2006-01-02")
	default:
		return "NULL"
	}
}

// SQLLiteral renders the value as a SQL literal that re-parses to the same
// value (strings quoted, dates as DATE '...').
func (v Value) SQLLiteral() string {
	if v.Null {
		return "NULL"
	}
	switch v.K {
	case KindString:
		return "'" + escapeQuotes(v.S) + "'"
	case KindDate:
		return "DATE '" + v.Time().Format("2006-01-02") + "'"
	default:
		return v.String()
	}
}

func escapeQuotes(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'', '\'')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', 1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Compare orders two non-null values of compatible kinds. It returns
// -1, 0 or +1. Numeric kinds compare by value across INT/FLOAT. Callers
// must handle NULLs first (SQL gives them no order in comparisons; ORDER
// BY decides NULLS FIRST/LAST separately).
func Compare(a, b Value) (int, error) {
	if a.Null || b.Null {
		return 0, fmt.Errorf("Compare called with NULL operand")
	}
	switch {
	case a.K == KindInt && b.K == KindInt:
		return cmpOrdered(a.I, b.I), nil
	case a.K.Numeric() && b.K.Numeric():
		return cmpOrdered(a.AsFloat(), b.AsFloat()), nil
	case a.K == KindString && b.K == KindString:
		return cmpOrdered(a.S, b.S), nil
	case a.K == KindDate && b.K == KindDate:
		return cmpOrdered(a.I, b.I), nil
	case a.K == KindBool && b.K == KindBool:
		return cmpOrdered(b2i(a.B), b2i(b.B)), nil
	default:
		return 0, fmt.Errorf("cannot compare %s with %s", a.K, b.K)
	}
}

func cmpOrdered[T int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// NotDistinct implements IS NOT DISTINCT FROM: NULLs compare equal to each
// other and unequal to every non-null value. The paper relies on this for
// evaluation-context predicates over nullable dimensions (§3.3 footnote).
func NotDistinct(a, b Value) bool {
	if a.Null || b.Null {
		return a.Null == b.Null
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// AppendKey appends a canonical byte encoding of v to dst, suitable for
// use as a hash-map key component in GROUP BY / join / memo caches. The
// encoding folds INT and FLOAT of equal value to the same key and
// distinguishes NULL from every value.
func (v Value) AppendKey(dst []byte) []byte {
	if v.Null {
		return append(dst, 0)
	}
	switch v.K {
	case KindBool:
		if v.B {
			return append(dst, 1, 1)
		}
		return append(dst, 1, 0)
	case KindInt, KindFloat:
		f := v.AsFloat()
		if v.K == KindInt {
			f = float64(v.I)
		}
		// Canonicalize -0 to +0 so they group together.
		if f == 0 {
			f = 0
		}
		dst = append(dst, 2)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		return append(dst, buf[:]...)
	case KindString:
		dst = append(dst, 3)
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], uint32(len(v.S)))
		dst = append(dst, buf[:]...)
		return append(dst, v.S...)
	case KindDate:
		dst = append(dst, 4)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v.I))
		return append(dst, buf[:]...)
	default:
		return append(dst, 0)
	}
}

// RowKey encodes a slice of values as a single map key.
func RowKey(vals []Value) string {
	var dst []byte
	for _, v := range vals {
		dst = v.AppendKey(dst)
	}
	return string(dst)
}
