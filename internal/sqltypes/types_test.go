package sqltypes

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindFromName(t *testing.T) {
	cases := map[string]Kind{
		"int": KindInt, "INTEGER": KindInt, "BigInt": KindInt,
		"double": KindFloat, "DECIMAL": KindFloat,
		"varchar": KindString, "STRING": KindString,
		"date": KindDate, "boolean": KindBool, "nope": KindUnknown,
	}
	for name, want := range cases {
		if got := KindFromName(name); got != want {
			t.Errorf("KindFromName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestTypeString(t *testing.T) {
	ty := Type{Kind: KindFloat, Measure: true}
	if got := ty.String(); got != "DOUBLE MEASURE" {
		t.Errorf("got %q", got)
	}
	if got := ty.Scalar().String(); got != "DOUBLE" {
		t.Errorf("Scalar: got %q", got)
	}
	if !ty.Scalar().AsMeasure().Measure {
		t.Error("AsMeasure should set the flag")
	}
}

func TestCommonType(t *testing.T) {
	if k, err := CommonType(KindInt, KindFloat); err != nil || k != KindFloat {
		t.Errorf("int/float: %v %v", k, err)
	}
	if k, err := CommonType(KindUnknown, KindDate); err != nil || k != KindDate {
		t.Errorf("unknown/date: %v %v", k, err)
	}
	if _, err := CommonType(KindString, KindInt); err == nil {
		t.Error("string/int should be incompatible")
	}
}

func TestDateRoundTrip(t *testing.T) {
	v := NewDate(2023, time.November, 28)
	if got := v.String(); got != "2023-11-28" {
		t.Errorf("String = %q", got)
	}
	p, err := ParseDate("2023/11/28")
	if err != nil {
		t.Fatal(err)
	}
	if !NotDistinct(v, p) {
		t.Errorf("slash-parsed date %v != %v", p, v)
	}
	if v.Time().Year() != 2023 || v.Time().Month() != time.November || v.Time().Day() != 28 {
		t.Errorf("Time() = %v", v.Time())
	}
	if _, err := ParseDate("not a date"); err == nil {
		t.Error("expected error")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewFloat(2.5), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewString("a"), NewString("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewDate(2024, 1, 1), NewDate(2023, 12, 31), 1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v, %v) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
	}
	if _, err := Compare(NewString("x"), NewInt(1)); err == nil {
		t.Error("string vs int should error")
	}
	if _, err := Compare(Null(KindInt), NewInt(1)); err == nil {
		t.Error("null operand should error")
	}
}

func TestNotDistinct(t *testing.T) {
	if !NotDistinct(Null(KindInt), Null(KindString)) {
		t.Error("NULL should not be distinct from NULL")
	}
	if NotDistinct(Null(KindInt), NewInt(0)) {
		t.Error("NULL should be distinct from 0")
	}
	if !NotDistinct(NewInt(2), NewFloat(2)) {
		t.Error("2 and 2.0 should not be distinct")
	}
}

func TestArith(t *testing.T) {
	mustV := func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if v := mustV(Add(NewInt(2), NewInt(3))); v.K != KindInt || v.I != 5 {
		t.Errorf("2+3 = %v", v)
	}
	if v := mustV(Div(NewInt(3), NewInt(2))); v.K != KindFloat || v.F != 1.5 {
		t.Errorf("3/2 = %v (division must not truncate)", v)
	}
	if v := mustV(Div(NewInt(3), NewInt(0))); !v.Null {
		t.Errorf("3/0 = %v, want NULL", v)
	}
	if v := mustV(Mul(NewFloat(2), NewInt(3))); v.K != KindFloat || v.F != 6 {
		t.Errorf("2.0*3 = %v", v)
	}
	if v := mustV(Sub(NewInt(1), Null(KindInt))); !v.Null || v.K != KindInt {
		t.Errorf("1-NULL = %v", v)
	}
	if v := mustV(Mod(NewInt(7), NewInt(3))); v.I != 1 {
		t.Errorf("7%%3 = %v", v)
	}
	if v := mustV(Neg(NewInt(7))); v.I != -7 {
		t.Errorf("-7 = %v", v)
	}
	if _, err := Add(NewString("a"), NewInt(1)); err == nil {
		t.Error("string+int should error")
	}
}

func TestDateArith(t *testing.T) {
	d := NewDate(2024, 2, 28)
	v, err := Add(d, NewInt(2))
	if err != nil || v.String() != "2024-03-01" {
		t.Errorf("2024-02-28 + 2 = %v, %v (2024 is a leap year)", v, err)
	}
	diff, err := Sub(NewDate(2024, 1, 10), NewDate(2024, 1, 1))
	if err != nil || diff.I != 9 {
		t.Errorf("date diff = %v, %v", diff, err)
	}
	if _, err := Mul(d, NewInt(2)); err == nil {
		t.Error("date * int should error")
	}
}

func TestCast(t *testing.T) {
	v, err := Cast(NewString("42"), KindInt)
	if err != nil || v.I != 42 {
		t.Errorf("cast '42' to int: %v, %v", v, err)
	}
	v, err = Cast(NewFloat(2.9), KindInt)
	if err != nil || v.I != 2 {
		t.Errorf("cast 2.9 to int: %v, %v", v, err)
	}
	v, err = Cast(NewInt(1), KindBool)
	if err != nil || !v.B {
		t.Errorf("cast 1 to bool: %v, %v", v, err)
	}
	v, err = Cast(NewString("2024-01-02"), KindDate)
	if err != nil || v.String() != "2024-01-02" {
		t.Errorf("cast to date: %v, %v", v, err)
	}
	if _, err := Cast(NewString("abc"), KindInt); err == nil {
		t.Error("cast 'abc' to int should error")
	}
	v, err = Cast(Null(KindString), KindInt)
	if err != nil || !v.Null || v.K != KindInt {
		t.Errorf("cast NULL: %v, %v", v, err)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	tr, fa, nu := NewBool(true), NewBool(false), Null(KindBool)
	if !And(tr, nu).Null {
		t.Error("TRUE AND NULL should be NULL")
	}
	if !And(fa, nu).IsFalse() {
		t.Error("FALSE AND NULL should be FALSE")
	}
	if !Or(tr, nu).IsTrue() {
		t.Error("TRUE OR NULL should be TRUE")
	}
	if !Or(fa, nu).Null {
		t.Error("FALSE OR NULL should be NULL")
	}
	if !Not(nu).Null {
		t.Error("NOT NULL should be NULL")
	}
	if !Not(fa).IsTrue() {
		t.Error("NOT FALSE should be TRUE")
	}
}

func TestRowKey(t *testing.T) {
	// INT and FLOAT of equal value must share a key (GROUP BY folding).
	if RowKey([]Value{NewInt(2)}) != RowKey([]Value{NewFloat(2)}) {
		t.Error("2 and 2.0 should share a group key")
	}
	if RowKey([]Value{Null(KindInt)}) == RowKey([]Value{NewInt(0)}) {
		t.Error("NULL and 0 must not share a key")
	}
	// Adjacent strings must not be confusable ("a","bc" vs "ab","c").
	if RowKey([]Value{NewString("a"), NewString("bc")}) == RowKey([]Value{NewString("ab"), NewString("c")}) {
		t.Error("string boundaries must be preserved in keys")
	}
	if RowKey([]Value{NewBool(true)}) == RowKey([]Value{NewInt(1)}) {
		t.Error("bool and int keys must differ")
	}
}

func TestValueStringFormat(t *testing.T) {
	if got := NewFloat(0.6).String(); got != "0.6" {
		t.Errorf("0.6 formats as %q", got)
	}
	if got := NewFloat(2).String(); got != "2.0" {
		t.Errorf("2.0 formats as %q", got)
	}
	if got := NewString("it's").SQLLiteral(); got != "'it''s'" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := NewDate(2024, 5, 6).SQLLiteral(); got != "DATE '2024-05-06'" {
		t.Errorf("date literal = %q", got)
	}
	if got := Null(KindInt).SQLLiteral(); got != "NULL" {
		t.Errorf("null literal = %q", got)
	}
}

// Property: Compare is antisymmetric and consistent with NotDistinct for
// random integers.
func TestCompareProperties(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		c1, err1 := Compare(va, vb)
		c2, err2 := Compare(vb, va)
		if err1 != nil || err2 != nil {
			return false
		}
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == NotDistinct(va, vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: arithmetic on floats matches Go arithmetic.
func TestArithProperties(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		s, err := Add(NewFloat(a), NewFloat(b))
		if err != nil || s.F != a+b {
			return false
		}
		d, err := Div(NewFloat(a), NewFloat(b))
		if err != nil {
			return false
		}
		if b == 0 {
			return d.Null
		}
		return d.F == a/b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
