// Package sqltypes defines the SQL value and type system used throughout
// the engine: scalar kinds, three-valued logic, the MEASURE type wrapper
// from the paper ("the data type of a CSE is t MEASURE"), comparisons
// including IS NOT DISTINCT FROM, arithmetic, casts and hash keys.
package sqltypes

import (
	"fmt"
	"strings"
)

// Kind enumerates the scalar type kinds supported by the engine.
type Kind uint8

const (
	KindUnknown Kind = iota // type not yet inferred (e.g. bare NULL)
	KindBool
	KindInt
	KindFloat
	KindString
	KindDate
)

// String returns the SQL spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	default:
		return "UNKNOWN"
	}
}

// KindFromName maps a SQL type name to a Kind. It accepts the common
// synonyms so that CREATE TABLE statements from the paper and from users
// both work. Returns KindUnknown if the name is not recognized.
func KindFromName(name string) Kind {
	switch strings.ToUpper(name) {
	case "BOOL", "BOOLEAN":
		return KindBool
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT", "INT64":
		return KindInt
	case "FLOAT", "DOUBLE", "REAL", "FLOAT64", "DECIMAL", "NUMERIC":
		return KindFloat
	case "VARCHAR", "CHAR", "TEXT", "STRING":
		return KindString
	case "DATE":
		return KindDate
	default:
		return KindUnknown
	}
}

// Type is a SQL type: a scalar kind plus the measure flag. A column of
// type "DOUBLE MEASURE" is a measure column; evaluating it with EVAL or
// AGGREGATE yields a plain DOUBLE (paper §3.4).
type Type struct {
	Kind    Kind
	Measure bool
}

// Scalar returns the type with the measure flag cleared; this is the type
// produced by EVAL/AGGREGATE of a measure.
func (t Type) Scalar() Type { return Type{Kind: t.Kind} }

// AsMeasure returns the type with the measure flag set.
func (t Type) AsMeasure() Type { return Type{Kind: t.Kind, Measure: true} }

// String returns the SQL spelling, e.g. "DOUBLE MEASURE".
func (t Type) String() string {
	if t.Measure {
		return t.Kind.String() + " MEASURE"
	}
	return t.Kind.String()
}

// Numeric reports whether the kind is INT or FLOAT.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// PromoteNumeric returns the common numeric kind for a binary operation.
// INT op INT stays INT; anything involving FLOAT is FLOAT.
func PromoteNumeric(a, b Kind) (Kind, error) {
	if !a.Numeric() || !b.Numeric() {
		return KindUnknown, fmt.Errorf("expected numeric operands, got %s and %s", a, b)
	}
	if a == KindFloat || b == KindFloat {
		return KindFloat, nil
	}
	return KindInt, nil
}

// CommonType returns a type both a and b can be coerced to for comparisons
// and set operations, or an error if they are incompatible. UNKNOWN (bare
// NULL) unifies with anything.
func CommonType(a, b Kind) (Kind, error) {
	switch {
	case a == b:
		return a, nil
	case a == KindUnknown:
		return b, nil
	case b == KindUnknown:
		return a, nil
	case a.Numeric() && b.Numeric():
		return KindFloat, nil
	default:
		return KindUnknown, fmt.Errorf("incompatible types %s and %s", a, b)
	}
}
