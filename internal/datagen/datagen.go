// Package datagen produces deterministic synthetic retail data — a
// scaled-up version of the paper's Customers/Orders star schema — for
// benchmarks and property tests. The generator is seeded and pure, so
// experiment runs are reproducible.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/measures-sql/msql/internal/sqltypes"
)

// Config sizes a generated dataset.
type Config struct {
	Seed      int64
	Customers int
	Products  int
	Orders    int
	// Years of order history ending 2024 (inclusive); dates are uniform.
	Years int
	// NullProductFraction injects NULL prodName values to exercise the
	// IS NOT DISTINCT FROM paths of evaluation contexts.
	NullProductFraction float64
}

// DefaultConfig returns a mid-sized dataset.
func DefaultConfig() Config {
	return Config{Seed: 1, Customers: 100, Products: 20, Orders: 10_000, Years: 3}
}

// Dataset holds generated rows ready for insertion.
type Dataset struct {
	Customers [][]sqltypes.Value // custName, custAge
	Orders    [][]sqltypes.Value // prodName, custName, orderDate, revenue, cost
}

// Generate builds a dataset from cfg.
func Generate(cfg Config) *Dataset {
	if cfg.Years <= 0 {
		cfg.Years = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{}

	for i := 0; i < cfg.Customers; i++ {
		ds.Customers = append(ds.Customers, []sqltypes.Value{
			sqltypes.NewString(CustomerName(i)),
			sqltypes.NewInt(int64(14 + rng.Intn(70))),
		})
	}

	endDay := sqltypes.NewDate(2024, time.December, 31).I
	startDay := endDay - int64(cfg.Years)*365
	for i := 0; i < cfg.Orders; i++ {
		prod := sqltypes.NewString(ProductName(rng.Intn(cfg.Products)))
		if cfg.NullProductFraction > 0 && rng.Float64() < cfg.NullProductFraction {
			prod = sqltypes.Null(sqltypes.KindString)
		}
		revenue := int64(1 + rng.Intn(100))
		cost := int64(rng.Intn(int(revenue)) + 1)
		if cost > revenue {
			cost = revenue
		}
		ds.Orders = append(ds.Orders, []sqltypes.Value{
			prod,
			sqltypes.NewString(CustomerName(rng.Intn(cfg.Customers))),
			sqltypes.NewDateDays(startDay + rng.Int63n(endDay-startDay+1)),
			sqltypes.NewInt(revenue),
			sqltypes.NewInt(cost),
		})
	}
	return ds
}

// CustomerName returns the i-th synthetic customer name.
func CustomerName(i int) string { return fmt.Sprintf("cust%04d", i) }

// ProductName returns the i-th synthetic product name.
func ProductName(i int) string { return fmt.Sprintf("prod%03d", i) }

// SetupSQL returns the DDL for the synthetic schema (same shape as the
// paper's tables).
const SetupSQL = `
CREATE TABLE Customers (custName VARCHAR, custAge INTEGER);
CREATE TABLE Orders (prodName VARCHAR, custName VARCHAR, orderDate DATE,
                     revenue INTEGER, cost INTEGER);
`

// InsertSQL renders the dataset as INSERT statements (for engines that
// only speak SQL). Large datasets should prefer direct insertion via the
// catalog; this exists for the CLI's \gen command and scripts.
func (ds *Dataset) InsertSQL() string {
	var sb strings.Builder
	writeBatch := func(table string, rows [][]sqltypes.Value) {
		const batch = 500
		for start := 0; start < len(rows); start += batch {
			end := start + batch
			if end > len(rows) {
				end = len(rows)
			}
			fmt.Fprintf(&sb, "INSERT INTO %s VALUES\n", table)
			for i, row := range rows[start:end] {
				if i > 0 {
					sb.WriteString(",\n")
				}
				sb.WriteString("  (")
				for j, v := range row {
					if j > 0 {
						sb.WriteString(", ")
					}
					sb.WriteString(v.SQLLiteral())
				}
				sb.WriteString(")")
			}
			sb.WriteString(";\n")
		}
	}
	writeBatch("Customers", ds.Customers)
	writeBatch("Orders", ds.Orders)
	return sb.String()
}
