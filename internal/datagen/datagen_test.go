package datagen

import (
	"strings"
	"testing"

	"github.com/measures-sql/msql/internal/sqltypes"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 9, Customers: 10, Products: 3, Orders: 100, Years: 2}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Orders) != 100 || len(a.Customers) != 10 {
		t.Fatalf("sizes: %d %d", len(a.Orders), len(a.Customers))
	}
	for i := range a.Orders {
		if sqltypes.RowKey(a.Orders[i]) != sqltypes.RowKey(b.Orders[i]) {
			t.Fatalf("row %d differs between runs", i)
		}
	}
	c := Generate(Config{Seed: 10, Customers: 10, Products: 3, Orders: 100, Years: 2})
	same := true
	for i := range a.Orders {
		if sqltypes.RowKey(a.Orders[i]) != sqltypes.RowKey(c.Orders[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestInvariants(t *testing.T) {
	cfg := Config{Seed: 1, Customers: 5, Products: 4, Orders: 500, Years: 1, NullProductFraction: 0.2}
	ds := Generate(cfg)
	nulls := 0
	for _, row := range ds.Orders {
		prod, cust, date, rev, cost := row[0], row[1], row[2], row[3], row[4]
		if prod.Null {
			nulls++
		}
		if cust.Null || date.K != sqltypes.KindDate {
			t.Fatalf("bad row %v", row)
		}
		if rev.I < 1 || cost.I < 1 || cost.I > rev.I {
			t.Fatalf("cost/revenue invariant violated: %v", row)
		}
		y := date.Time().Year()
		if y < 2023 || y > 2024 {
			t.Fatalf("date out of range: %v", date)
		}
	}
	if nulls == 0 || nulls == len(ds.Orders) {
		t.Errorf("null fraction not applied: %d of %d", nulls, len(ds.Orders))
	}
}

func TestInsertSQL(t *testing.T) {
	ds := Generate(Config{Seed: 2, Customers: 3, Products: 2, Orders: 7, Years: 1})
	sql := ds.InsertSQL()
	// Two INSERT statements (small batches) mentioning both tables.
	if !strings.Contains(sql, "INSERT INTO Customers") {
		t.Error("missing Customers insert")
	}
	if !strings.Contains(sql, "INSERT INTO Orders") {
		t.Error("missing Orders insert")
	}
}
