// Package vec provides the columnar batch representation used by the
// vectorized execution path: typed column vectors with null bitmaps,
// processed ~1024 rows at a time through tight kernel loops instead of
// the row-at-a-time tree-walking interpreter (MonetDB/X100 style).
//
// The representation is exactness-first: the row engine is the oracle
// the vectorized engine is differentially tested against, so a column
// must round-trip every sqltypes.Value bit-for-bit — including NULLs of
// KindUnknown (a bare NULL literal) versus typed NULLs, which downstream
// arithmetic treats differently. Columns therefore carry an escape
// hatch: when a stored value does not fit the column's static kind
// exactly, the whole column silently promotes to a boxed representation
// that preserves the original Values verbatim.
package vec

import "github.com/measures-sql/msql/internal/sqltypes"

// BatchRows is the number of rows processed per batch. 1024 keeps a
// batch's working set (a few columns of 8-byte values plus bitmaps)
// comfortably inside L1/L2 while amortizing per-batch overhead.
const BatchRows = 1024

// Bitmap is a fixed-size bitmap; bit i set means row i is NULL.
type Bitmap []uint64

// NewBitmap returns a zeroed bitmap covering n rows.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Get reports whether bit i is set.
func (b Bitmap) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bitmap) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Col is a column vector of a fixed length. Exactly one backing store is
// active: a typed slice (selected by Kind, with Nulls marking NULL rows)
// or, after promotion, the boxed slice which holds exact Values.
type Col struct {
	// Kind is the column's static kind. For a typed column every value
	// boxed out of it has this kind; a boxed column may hold any mix.
	Kind  sqltypes.Kind
	Nulls Bitmap
	B     []bool
	I     []int64 // ints and dates (days since epoch)
	F     []float64
	S     []string
	boxed []sqltypes.Value
	n     int
}

// NewCol returns a column of n rows with the given static kind. A kind
// without a typed representation (KindUnknown) starts out boxed.
func NewCol(kind sqltypes.Kind, n int) *Col {
	c := &Col{Kind: kind, n: n}
	switch kind {
	case sqltypes.KindBool:
		c.B = make([]bool, n)
	case sqltypes.KindInt, sqltypes.KindDate:
		c.I = make([]int64, n)
	case sqltypes.KindFloat:
		c.F = make([]float64, n)
	case sqltypes.KindString:
		c.S = make([]string, n)
	default:
		c.boxed = make([]sqltypes.Value, n)
		return c
	}
	c.Nulls = NewBitmap(n)
	return c
}

// Len returns the number of rows.
func (c *Col) Len() int { return c.n }

// Boxed reports whether the column has fallen back to the exact boxed
// representation; kernels require typed columns and must not run on one.
func (c *Col) Boxed() bool { return c.boxed != nil }

// Null reports whether row i is NULL.
func (c *Col) Null(i int) bool {
	if c.boxed != nil {
		return c.boxed[i].Null
	}
	return c.Nulls.Get(i)
}

// SetNull marks row i NULL. On a boxed column the stored value is a NULL
// of the column's kind, matching what a strict kernel would produce.
func (c *Col) SetNull(i int) {
	if c.boxed != nil {
		c.boxed[i] = sqltypes.Null(c.Kind)
		return
	}
	c.Nulls.Set(i)
}

// Value boxes row i back to a sqltypes.Value. For a typed column the
// result has the column kind; for a boxed column it is the stored Value
// verbatim.
func (c *Col) Value(i int) sqltypes.Value {
	if c.boxed != nil {
		return c.boxed[i]
	}
	if c.Nulls.Get(i) {
		return sqltypes.Null(c.Kind)
	}
	switch c.Kind {
	case sqltypes.KindBool:
		return sqltypes.NewBool(c.B[i])
	case sqltypes.KindInt:
		return sqltypes.NewInt(c.I[i])
	case sqltypes.KindFloat:
		return sqltypes.NewFloat(c.F[i])
	case sqltypes.KindString:
		return sqltypes.NewString(c.S[i])
	default: // KindDate
		return sqltypes.NewDateDays(c.I[i])
	}
}

// fits reports whether v can be stored in the typed representation
// without losing exactness. NULLs only fit when Null(c.Kind) reproduces
// them — a bare NULL literal (KindUnknown) never fits a typed column.
func (c *Col) fits(v sqltypes.Value) bool { return v.K == c.Kind }

// Set stores v at row i exactly, promoting the column to the boxed
// representation if v does not fit the typed one.
func (c *Col) Set(i int, v sqltypes.Value) {
	if c.boxed == nil && !c.fits(v) {
		c.promote()
	}
	if c.boxed != nil {
		c.boxed[i] = v
		return
	}
	if v.Null {
		c.Nulls.Set(i)
		return
	}
	switch c.Kind {
	case sqltypes.KindBool:
		c.B[i] = v.B
	case sqltypes.KindInt, sqltypes.KindDate:
		c.I[i] = v.I
	case sqltypes.KindFloat:
		c.F[i] = v.F
	case sqltypes.KindString:
		c.S[i] = v.S
	}
}

// promote switches the column to the boxed representation, boxing the
// rows already stored. Slots never written box to the kind's zero value,
// which is harmless: callers only read rows they wrote.
func (c *Col) promote() {
	boxed := make([]sqltypes.Value, c.n)
	for i := 0; i < c.n; i++ {
		boxed[i] = c.Value(i)
	}
	c.boxed = boxed
	c.Nulls, c.B, c.I, c.F, c.S = nil, nil, nil, nil, nil
}

// BuildCol builds a column from column idx of rows, using kind as the
// typed layout. The first value that does not fit exactly promotes the
// column; the boxed result then preserves every Value verbatim.
func BuildCol(rows [][]sqltypes.Value, idx int, kind sqltypes.Kind) *Col {
	c := NewCol(kind, len(rows))
	if c.boxed != nil {
		for r, row := range rows {
			c.boxed[r] = row[idx]
		}
		return c
	}
	for r, row := range rows {
		v := row[idx]
		if !c.fits(v) {
			// Slow path: box everything from here on (promote copies
			// the prefix already stored).
			c.promote()
			for r2 := r; r2 < len(rows); r2++ {
				c.boxed[r2] = rows[r2][idx]
			}
			return c
		}
		if v.Null {
			c.Nulls.Set(r)
			continue
		}
		switch kind {
		case sqltypes.KindBool:
			c.B[r] = v.B
		case sqltypes.KindInt, sqltypes.KindDate:
			c.I[r] = v.I
		case sqltypes.KindFloat:
			c.F[r] = v.F
		case sqltypes.KindString:
			c.S[r] = v.S
		}
	}
	return c
}

// Batch is a horizontal slice of a relation in columnar form: up to
// BatchRows rows, one Col per referenced column (entries may be nil when
// a column was never touched), and an optional selection vector listing
// the live row indices.
type Batch struct {
	N    int
	Cols []*Col
	Sel  []int // nil means all N rows are live
}

// FromRows converts rows (all the same width as kinds) into a fully
// materialized batch. Mostly a testing convenience: the executor builds
// columns lazily, one per referenced input column.
func FromRows(rows [][]sqltypes.Value, kinds []sqltypes.Kind) *Batch {
	b := &Batch{N: len(rows), Cols: make([]*Col, len(kinds))}
	for i, k := range kinds {
		b.Cols[i] = BuildCol(rows, i, k)
	}
	return b
}

// Row boxes row i of the batch back to a value slice.
func (b *Batch) Row(i int) []sqltypes.Value {
	row := make([]sqltypes.Value, len(b.Cols))
	for j, c := range b.Cols {
		row[j] = c.Value(i)
	}
	return row
}
