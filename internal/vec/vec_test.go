package vec

import (
	"testing"

	"github.com/measures-sql/msql/internal/sqltypes"
)

func TestBitmap(t *testing.T) {
	b := NewBitmap(130)
	for _, i := range []int{0, 63, 64, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		b.Clear(i)
		if b.Get(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

// TestColRoundTrip checks that every kind of value — typed, typed NULL,
// and bare NULL — boxes back out of a column bit-for-bit.
func TestColRoundTrip(t *testing.T) {
	vals := []sqltypes.Value{
		sqltypes.NewInt(42),
		sqltypes.Null(sqltypes.KindInt),
		sqltypes.NewInt(-7),
	}
	c := NewCol(sqltypes.KindInt, len(vals))
	for i, v := range vals {
		c.Set(i, v)
	}
	if c.Boxed() {
		t.Fatal("int column with typed NULLs should stay typed")
	}
	for i, want := range vals {
		if got := c.Value(i); got != want {
			t.Fatalf("row %d: got %#v want %#v", i, got, want)
		}
	}
}

// TestColPromotion: a value that does not fit the static kind (here a
// bare NULL of KindUnknown in an int column) must promote the column and
// preserve every value exactly, including the ones stored before.
func TestColPromotion(t *testing.T) {
	c := NewCol(sqltypes.KindInt, 3)
	c.Set(0, sqltypes.NewInt(1))
	c.Set(1, sqltypes.Null(sqltypes.KindUnknown)) // promotes
	c.Set(2, sqltypes.NewInt(3))
	if !c.Boxed() {
		t.Fatal("column should have promoted to boxed")
	}
	want := []sqltypes.Value{
		sqltypes.NewInt(1),
		sqltypes.Null(sqltypes.KindUnknown),
		sqltypes.NewInt(3),
	}
	for i, w := range want {
		if got := c.Value(i); got != w {
			t.Fatalf("row %d: got %#v want %#v", i, got, w)
		}
	}
}

func TestBuildColTypedAndPromoted(t *testing.T) {
	rows := [][]sqltypes.Value{
		{sqltypes.NewString("a"), sqltypes.NewFloat(1.5)},
		{sqltypes.Null(sqltypes.KindString), sqltypes.NewFloat(2.5)},
		{sqltypes.NewString("c"), sqltypes.NewInt(9)}, // int in a float column
	}
	s := BuildCol(rows, 0, sqltypes.KindString)
	if s.Boxed() {
		t.Fatal("string column should stay typed")
	}
	f := BuildCol(rows, 1, sqltypes.KindFloat)
	if !f.Boxed() {
		t.Fatal("float column holding an int value should promote")
	}
	for r := range rows {
		if got := s.Value(r); got != rows[r][0] {
			t.Fatalf("col 0 row %d: got %#v want %#v", r, got, rows[r][0])
		}
		if got := f.Value(r); got != rows[r][1] {
			t.Fatalf("col 1 row %d: got %#v want %#v", r, got, rows[r][1])
		}
	}
}

func TestUnknownKindStartsBoxed(t *testing.T) {
	c := NewCol(sqltypes.KindUnknown, 2)
	if !c.Boxed() {
		t.Fatal("unknown-kind column must start boxed")
	}
	c.SetNull(0)
	if got, want := c.Value(0), sqltypes.Null(sqltypes.KindUnknown); got != want {
		t.Fatalf("got %#v want %#v", got, want)
	}
}

func TestBatchFromRows(t *testing.T) {
	rows := [][]sqltypes.Value{
		{sqltypes.NewInt(1), sqltypes.NewBool(true)},
		{sqltypes.NewInt(2), sqltypes.Null(sqltypes.KindBool)},
	}
	b := FromRows(rows, []sqltypes.Kind{sqltypes.KindInt, sqltypes.KindBool})
	for r := range rows {
		got := b.Row(r)
		for j := range rows[r] {
			if got[j] != rows[r][j] {
				t.Fatalf("row %d col %d: got %#v want %#v", r, j, got[j], rows[r][j])
			}
		}
	}
}
