// Package catalog tracks the named objects of a database session: base
// tables (backed by storage) and views (stored as ASTs, re-bound on use
// so that measures always reflect the current definition). Object names
// are case-insensitive, like standard SQL unquoted identifiers.
package catalog

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/internal/storage"
)

// BaseTable is a stored table; it implements plan.RowSource.
type BaseTable struct {
	Data *storage.Table
}

// Name implements plan.RowSource.
func (t *BaseTable) Name() string { return t.Data.Name() }

// ColNames implements plan.RowSource.
func (t *BaseTable) ColNames() []string { return t.Data.ColNames() }

// ColTypes implements plan.RowSource.
func (t *BaseTable) ColTypes() []sqltypes.Type { return t.Data.ColTypes() }

// Rows implements plan.RowSource.
func (t *BaseTable) Rows() [][]sqltypes.Value { return t.Data.Rows() }

// View is a named query; measures inside it are re-bound on every use.
type View struct {
	ViewName string
	Query    *ast.Query
}

// Catalog is the session namespace.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*BaseTable
	views  map[string]*View
	// virtuals are read-only provider-backed tables (see virtual.go);
	// they resolve after tables and views, so they can never shadow a
	// user object.
	virtuals map[string]*VirtualTable
	// version counts catalog-visible data and schema changes: DDL bumps
	// it here; the engine bumps it after INSERTs. Cached plans embed the
	// version they were built against, so any bump invalidates them.
	version atomic.Int64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*BaseTable),
		views:  make(map[string]*View),
	}
}

func key(name string) string { return strings.ToLower(name) }

// Version returns the current catalog version.
func (c *Catalog) Version() int64 { return c.version.Load() }

// BumpVersion records a data change (e.g. an INSERT) that invalidates
// plans built against earlier versions. DDL entry points bump
// internally; this is for mutations the catalog does not see.
func (c *Catalog) BumpVersion() { c.version.Add(1) }

// RestoreVersion forces the catalog version, used by crash recovery to
// continue the pre-crash version sequence: cached plans (or clients)
// holding versions from before the crash can never collide with a
// freshly recovered catalog that restarted its count at zero.
func (c *Catalog) RestoreVersion(v int64) { c.version.Store(v) }

// CreateTable registers a new base table.
func (c *Catalog) CreateTable(name string, cols []string, types []sqltypes.Type, orReplace bool) (*BaseTable, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if !orReplace {
		if _, ok := c.tables[k]; ok {
			return nil, fmt.Errorf("table %s already exists", name)
		}
		if _, ok := c.views[k]; ok {
			return nil, fmt.Errorf("view %s already exists", name)
		}
	}
	delete(c.views, k)
	t := &BaseTable{Data: storage.NewTable(name, cols, types)}
	c.tables[k] = t
	c.version.Add(1)
	return t, nil
}

// CheckCreate reports whether a CREATE (table or view) of name would
// succeed under the or-replace flag, without applying anything. The
// durable engine calls it before logging a DDL record, so a record is
// only written for a statement that will apply cleanly; the check must
// mirror the preconditions of CreateTable and CreateView exactly.
func (c *Catalog) CheckCreate(name string, orReplace bool) error {
	if orReplace {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	k := key(name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("table %s already exists", name)
	}
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("view %s already exists", name)
	}
	return nil
}

// CheckDrop reports whether Drop(kind, name) would succeed, without
// applying anything; it must mirror Drop's preconditions exactly.
func (c *Catalog) CheckDrop(kind, name string) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	k := key(name)
	switch kind {
	case "TABLE":
		if _, ok := c.tables[k]; !ok {
			return fmt.Errorf("table %s does not exist", name)
		}
	case "VIEW":
		if _, ok := c.views[k]; !ok {
			return fmt.Errorf("view %s does not exist", name)
		}
	default:
		return fmt.Errorf("unknown object kind %s", kind)
	}
	return nil
}

// CreateView registers a view definition.
func (c *Catalog) CreateView(name string, q *ast.Query, orReplace bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if !orReplace {
		if _, ok := c.tables[k]; ok {
			return fmt.Errorf("table %s already exists", name)
		}
		if _, ok := c.views[k]; ok {
			return fmt.Errorf("view %s already exists", name)
		}
	}
	delete(c.tables, k)
	c.views[k] = &View{ViewName: name, Query: q}
	c.version.Add(1)
	return nil
}

// Drop removes a table or view; kind is "TABLE" or "VIEW".
func (c *Catalog) Drop(kind, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	switch kind {
	case "TABLE":
		if _, ok := c.tables[k]; !ok {
			return fmt.Errorf("table %s does not exist", name)
		}
		delete(c.tables, k)
	case "VIEW":
		if _, ok := c.views[k]; !ok {
			return fmt.Errorf("view %s does not exist", name)
		}
		delete(c.views, k)
	default:
		return fmt.Errorf("unknown object kind %s", kind)
	}
	c.version.Add(1)
	return nil
}

// Table looks up a base table.
func (c *Catalog) Table(name string) (*BaseTable, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(name)]
	return t, ok
}

// View looks up a view.
func (c *Catalog) View(name string) (*View, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[key(name)]
	return v, ok
}

// Names returns all object names, for the CLI's \d command.
func (c *Catalog) Names() (tables, views []string) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, t := range c.tables {
		tables = append(tables, t.Name())
	}
	for _, v := range c.views {
		views = append(views, v.ViewName)
	}
	return tables, views
}
