package catalog

import (
	"testing"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/sqltypes"
)

func intCols() ([]string, []sqltypes.Type) {
	return []string{"a"}, []sqltypes.Type{{Kind: sqltypes.KindInt}}
}

func TestCreateLookupDrop(t *testing.T) {
	c := New()
	names, types := intCols()
	if _, err := c.CreateTable("T1", names, types, false); err != nil {
		t.Fatal(err)
	}
	// Case-insensitive lookup.
	if _, ok := c.Table("t1"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, err := c.CreateTable("t1", names, types, false); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := c.CreateTable("t1", names, types, true); err != nil {
		t.Errorf("OR REPLACE should succeed: %v", err)
	}
	if err := c.Drop("TABLE", "T1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("t1"); ok {
		t.Error("dropped table still visible")
	}
	if err := c.Drop("TABLE", "t1"); err == nil {
		t.Error("dropping a missing table should fail")
	}
	if err := c.Drop("NONSENSE", "x"); err == nil {
		t.Error("bad kind should fail")
	}
}

func TestViews(t *testing.T) {
	c := New()
	q := &ast.Query{Body: &ast.Select{Items: []ast.SelectItem{{Expr: &ast.NumberLit{Text: "1", IsInt: true, Int: 1}, Alias: "x"}}}}
	if err := c.CreateView("v", q, false); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView("V", q, false); err == nil {
		t.Error("duplicate view should fail")
	}
	v, ok := c.View("v")
	if !ok || v.ViewName != "v" {
		t.Fatalf("view lookup: %v %v", v, ok)
	}
	// A view and table cannot share a name.
	names, types := intCols()
	if _, err := c.CreateTable("v", names, types, false); err == nil {
		t.Error("table with view's name should fail")
	}
	// OR REPLACE of a view over a table name removes the table.
	if _, err := c.CreateTable("obj", names, types, false); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView("obj", q, true); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("obj"); ok {
		t.Error("CREATE OR REPLACE VIEW should shadow the table away")
	}
	tables, views := c.Names()
	if len(tables) != 0 || len(views) != 2 {
		t.Errorf("names: %v %v", tables, views)
	}
}

// TestCheckMirrorsApply: CheckCreate/CheckDrop must agree with the
// mutating methods they gate — the durable engine logs a DDL record
// between the check and the apply, so a divergence would log a record
// that cannot replay (or reject one that could).
func TestCheckMirrorsApply(t *testing.T) {
	c := New()
	names, types := intCols()
	if err := c.CheckCreate("t", false); err != nil {
		t.Fatalf("CheckCreate on empty catalog: %v", err)
	}
	if err := c.CheckDrop("TABLE", "t"); err == nil {
		t.Error("CheckDrop of a missing table should fail")
	}
	if _, err := c.CreateTable("t", names, types, false); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckCreate("T", false); err == nil {
		t.Error("CheckCreate over an existing table should fail")
	}
	if err := c.CheckCreate("T", true); err != nil {
		t.Errorf("CheckCreate OR REPLACE should pass: %v", err)
	}
	if err := c.CheckDrop("TABLE", "T"); err != nil {
		t.Errorf("CheckDrop of an existing table: %v", err)
	}
	if err := c.CheckDrop("VIEW", "t"); err == nil {
		t.Error("CheckDrop with the wrong kind should fail")
	}
	if err := c.CheckDrop("NONSENSE", "t"); err == nil {
		t.Error("CheckDrop with a bad kind should fail")
	}
	q := &ast.Query{Body: &ast.Select{Items: []ast.SelectItem{{Expr: &ast.NumberLit{Text: "1", IsInt: true, Int: 1}, Alias: "x"}}}}
	if err := c.CreateView("v", q, false); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckCreate("v", false); err == nil {
		t.Error("CheckCreate over an existing view should fail")
	}
	if err := c.CheckDrop("VIEW", "v"); err != nil {
		t.Errorf("CheckDrop of an existing view: %v", err)
	}
}
