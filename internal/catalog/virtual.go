// Read-only virtual tables: catalog objects whose rows are produced by
// a callback at scan time instead of storage. The engine registers its
// introspection surface (the msql_stats.* system tables) through this
// hook, so statement statistics, the live-query registry, and the
// metrics registry are queryable with ordinary SQL — measures included.
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"github.com/measures-sql/msql/internal/sqltypes"
)

// VirtualTable is a read-only table backed by a row provider. It
// implements plan.RowSource structurally (Name/ColNames/ColTypes/Rows),
// so the binder can hand it straight to a Scan node.
type VirtualTable struct {
	TableName string
	Cols      []string
	Types     []sqltypes.Type
	// Provider produces the current rows; it is called once per scan and
	// must be safe for concurrent use (system state keeps changing under
	// the query). Row ordering should be deterministic for a given state.
	Provider func() [][]sqltypes.Value
}

// Name implements plan.RowSource.
func (t *VirtualTable) Name() string { return t.TableName }

// ColNames implements plan.RowSource.
func (t *VirtualTable) ColNames() []string { return t.Cols }

// ColTypes implements plan.RowSource.
func (t *VirtualTable) ColTypes() []sqltypes.Type { return t.Types }

// Rows implements plan.RowSource.
func (t *VirtualTable) Rows() [][]sqltypes.Value {
	if t.Provider == nil {
		return nil
	}
	return t.Provider()
}

// RegisterVirtual installs (or replaces) a virtual table. Virtual names
// are conventionally schema-qualified ("msql_stats.statements"), which
// ordinary CREATE TABLE cannot produce, so they never collide with user
// objects.
func (c *Catalog) RegisterVirtual(t *VirtualTable) error {
	if t == nil || t.TableName == "" {
		return fmt.Errorf("virtual table needs a name")
	}
	if len(t.Cols) != len(t.Types) {
		return fmt.Errorf("virtual table %s: %d columns but %d types", t.TableName, len(t.Cols), len(t.Types))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.virtuals == nil {
		c.virtuals = map[string]*VirtualTable{}
	}
	c.virtuals[key(t.TableName)] = t
	return nil
}

// Virtual looks up a virtual table by (case-insensitive) name.
func (c *Catalog) Virtual(name string) (*VirtualTable, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.virtuals[key(name)]
	return t, ok
}

// VirtualNames returns the registered virtual table names, sorted (for
// the CLI's \d command).
func (c *Catalog) VirtualNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.virtuals))
	for _, t := range c.virtuals {
		names = append(names, t.TableName)
	}
	sort.Slice(names, func(i, j int) bool { return strings.ToLower(names[i]) < strings.ToLower(names[j]) })
	return names
}
