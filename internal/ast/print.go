package ast

import (
	"fmt"
	"strings"
)

// FormatStatement renders a statement as SQL text.
func FormatStatement(s Statement) string {
	var p printer
	p.statement(s)
	return p.sb.String()
}

// FormatQuery renders a query as SQL text.
func FormatQuery(q *Query) string {
	var p printer
	p.query(q)
	return p.sb.String()
}

// FormatExpr renders an expression as SQL text.
func FormatExpr(e Expr) string {
	var p printer
	p.expr(e, 0)
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) ws(s string)           { p.sb.WriteString(s) }
func (p *printer) wf(f string, a ...any) { fmt.Fprintf(&p.sb, f, a...) }

func (p *printer) nl() {
	p.sb.WriteByte('\n')
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("  ")
	}
}

func (p *printer) statement(s Statement) {
	switch s := s.(type) {
	case *CreateTable:
		p.ws("CREATE ")
		if s.OrReplace {
			p.ws("OR REPLACE ")
		}
		p.wf("TABLE %s (", quoteIdent(s.Name))
		for i, c := range s.Cols {
			if i > 0 {
				p.ws(", ")
			}
			p.wf("%s %s", quoteIdent(c.Name), c.TypeName)
		}
		p.ws(")")
	case *CreateView:
		p.ws("CREATE ")
		if s.OrReplace {
			p.ws("OR REPLACE ")
		}
		p.wf("VIEW %s AS", quoteIdent(s.Name))
		p.nl()
		p.query(s.Query)
	case *Insert:
		p.wf("INSERT INTO %s", quoteIdent(s.Table))
		if len(s.Columns) > 0 {
			p.ws(" (")
			for i, c := range s.Columns {
				if i > 0 {
					p.ws(", ")
				}
				p.ws(quoteIdent(c))
			}
			p.ws(")")
		}
		if s.Query != nil {
			p.nl()
			p.query(s.Query)
		} else {
			p.ws(" VALUES ")
			for i, row := range s.Rows {
				if i > 0 {
					p.ws(", ")
				}
				p.ws("(")
				p.exprList(row)
				p.ws(")")
			}
		}
	case *Drop:
		p.wf("DROP %s %s", s.Kind, quoteIdent(s.Name))
	case *Truncate:
		p.wf("TRUNCATE TABLE %s", quoteIdent(s.Table))
	case *Explain:
		p.ws("EXPLAIN")
		if s.Analyze {
			p.ws(" ANALYZE")
		}
		if s.Execute != nil {
			p.ws(" ")
			p.statement(s.Execute)
			return
		}
		p.nl()
		p.query(s.Query)
	case *Expand:
		p.ws("EXPAND")
		p.nl()
		p.query(s.Query)
	case *QueryStmt:
		p.query(s.Query)
	case *Prepare:
		p.wf("PREPARE %s", quoteIdent(s.Name))
		if len(s.Types) > 0 {
			p.ws(" (")
			for i, t := range s.Types {
				if i > 0 {
					p.ws(", ")
				}
				p.ws(t)
			}
			p.ws(")")
		}
		p.ws(" AS")
		p.nl()
		p.query(s.Query)
	case *ExecuteStmt:
		p.wf("EXECUTE %s", quoteIdent(s.Name))
		if len(s.Args) > 0 {
			p.ws(" (")
			p.exprList(s.Args)
			p.ws(")")
		}
	case *Deallocate:
		if s.All {
			p.ws("DEALLOCATE ALL")
		} else {
			p.wf("DEALLOCATE %s", quoteIdent(s.Name))
		}
	case *Kill:
		p.wf("KILL %d", s.ID)
	default:
		p.wf("/* unknown statement %T */", s)
	}
}

func (p *printer) query(q *Query) {
	if len(q.With) > 0 {
		p.ws("WITH ")
		for i, cte := range q.With {
			if i > 0 {
				p.ws(", ")
			}
			p.wf("%s AS (", quoteIdent(cte.Name))
			p.indent++
			p.nl()
			p.query(cte.Query)
			p.indent--
			p.ws(")")
		}
		p.nl()
	}
	p.body(q.Body)
	if len(q.OrderBy) > 0 {
		p.nl()
		p.ws("ORDER BY ")
		p.orderItems(q.OrderBy)
	}
	if q.Limit != nil {
		p.nl()
		p.ws("LIMIT ")
		p.expr(q.Limit, 0)
	}
	if q.Offset != nil {
		p.nl()
		p.ws("OFFSET ")
		p.expr(q.Offset, 0)
	}
}

func (p *printer) body(b Body) {
	switch b := b.(type) {
	case *Select:
		p.selectBlock(b)
	case *SetOp:
		p.body(b.Left)
		p.nl()
		p.ws(b.Op)
		if b.All {
			p.ws(" ALL")
		}
		p.nl()
		p.body(b.Right)
	case *SubqueryBody:
		p.ws("(")
		p.indent++
		p.nl()
		p.query(b.Query)
		p.indent--
		p.nl()
		p.ws(")")
	}
}

func (p *printer) selectBlock(s *Select) {
	p.ws("SELECT ")
	if s.Distinct {
		p.ws("DISTINCT ")
	}
	for i, item := range s.Items {
		if i > 0 {
			p.ws(", ")
		}
		p.selectItem(item)
	}
	if s.From != nil {
		p.nl()
		p.ws("FROM ")
		p.tableExpr(s.From)
	}
	if s.Where != nil {
		p.nl()
		p.ws("WHERE ")
		p.expr(s.Where, 0)
	}
	if len(s.GroupBy) > 0 {
		p.nl()
		p.ws("GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				p.ws(", ")
			}
			p.groupItem(g)
		}
	}
	if s.Having != nil {
		p.nl()
		p.ws("HAVING ")
		p.expr(s.Having, 0)
	}
	if s.Qualify != nil {
		p.nl()
		p.ws("QUALIFY ")
		p.expr(s.Qualify, 0)
	}
}

func (p *printer) selectItem(item SelectItem) {
	if item.Star {
		if item.StarTable != "" {
			p.wf("%s.*", quoteIdent(item.StarTable))
		} else {
			p.ws("*")
		}
		return
	}
	p.expr(item.Expr, 0)
	if item.Alias != "" {
		if item.Measure {
			p.wf(" AS MEASURE %s", quoteIdent(item.Alias))
		} else {
			p.wf(" AS %s", quoteIdent(item.Alias))
		}
	}
}

func (p *printer) groupItem(g GroupItem) {
	switch g.Kind {
	case GroupExpr:
		p.expr(g.Exprs[0], 0)
	case GroupRollup:
		p.ws("ROLLUP(")
		p.exprList(g.Exprs)
		p.ws(")")
	case GroupCube:
		p.ws("CUBE(")
		p.exprList(g.Exprs)
		p.ws(")")
	case GroupSets:
		p.ws("GROUPING SETS(")
		for i, set := range g.Sets {
			if i > 0 {
				p.ws(", ")
			}
			p.ws("(")
			p.exprList(set)
			p.ws(")")
		}
		p.ws(")")
	}
}

func (p *printer) orderItems(items []OrderItem) {
	for i, o := range items {
		if i > 0 {
			p.ws(", ")
		}
		p.expr(o.Expr, 0)
		if o.Desc {
			p.ws(" DESC")
		}
		if o.NullsFirst != nil {
			if *o.NullsFirst {
				p.ws(" NULLS FIRST")
			} else {
				p.ws(" NULLS LAST")
			}
		}
	}
}

func (p *printer) tableExpr(t TableExpr) {
	switch t := t.(type) {
	case *TableName:
		p.ws(quoteQualified(t.Name))
		if t.Alias != "" {
			p.wf(" AS %s", quoteIdent(t.Alias))
		}
	case *SubqueryTable:
		p.ws("(")
		p.indent++
		p.nl()
		p.query(t.Query)
		p.indent--
		p.ws(")")
		if t.Alias != "" {
			p.wf(" AS %s", quoteIdent(t.Alias))
		}
	case *JoinExpr:
		p.tableExpr(t.Left)
		p.nl()
		if t.Natural {
			p.ws("NATURAL ")
		}
		p.ws(t.Kind.String())
		p.ws(" ")
		p.tableExpr(t.Right)
		if t.On != nil {
			p.ws(" ON ")
			p.expr(t.On, 0)
		}
		if len(t.Using) > 0 {
			p.ws(" USING (")
			for i, c := range t.Using {
				if i > 0 {
					p.ws(", ")
				}
				p.ws(quoteIdent(c))
			}
			p.ws(")")
		}
	}
}

// Operator precedence levels for parenthesization, low to high.
const (
	precOr = iota + 1
	precAnd
	precNot
	precCmp
	precConcat
	precAdd
	precMul
	precUnary
	precPostfix
)

func binaryPrec(op string) int {
	switch op {
	case "OR":
		return precOr
	case "AND":
		return precAnd
	case "=", "<>", "<", "<=", ">", ">=":
		return precCmp
	case "||":
		return precConcat
	case "+", "-":
		return precAdd
	case "*", "/", "%":
		return precMul
	default:
		return precCmp
	}
}

// expr prints e, parenthesizing if its precedence is below min.
func (p *printer) expr(e Expr, min int) {
	switch e := e.(type) {
	case *Ident:
		for i, part := range e.Parts {
			if i > 0 {
				p.ws(".")
			}
			p.ws(quoteIdent(part))
		}
	case *NumberLit:
		p.ws(e.Text)
	case *StringLit:
		p.ws("'" + strings.ReplaceAll(e.Val, "'", "''") + "'")
	case *BoolLit:
		if e.Val {
			p.ws("TRUE")
		} else {
			p.ws("FALSE")
		}
	case *NullLit:
		p.ws("NULL")
	case *DateLit:
		p.wf("DATE '%s'", e.Val)
	case *Unary:
		p.paren(precUnary < min, func() {
			if e.Op == "NOT" {
				p.ws("NOT ")
				p.expr(e.X, precNot)
			} else {
				p.ws(e.Op)
				p.expr(e.X, precUnary)
			}
		})
	case *Binary:
		prec := binaryPrec(e.Op)
		p.paren(prec < min, func() {
			p.expr(e.L, prec)
			p.wf(" %s ", e.Op)
			p.expr(e.R, prec+1)
		})
	case *IsNull:
		p.paren(precCmp < min, func() {
			p.expr(e.X, precCmp+1)
			if e.Not {
				p.ws(" IS NOT NULL")
			} else {
				p.ws(" IS NULL")
			}
		})
	case *IsDistinct:
		p.paren(precCmp < min, func() {
			p.expr(e.L, precCmp+1)
			if e.Not {
				p.ws(" IS NOT DISTINCT FROM ")
			} else {
				p.ws(" IS DISTINCT FROM ")
			}
			p.expr(e.R, precCmp+1)
		})
	case *Between:
		p.paren(precCmp < min, func() {
			p.expr(e.X, precCmp+1)
			if e.Not {
				p.ws(" NOT")
			}
			p.ws(" BETWEEN ")
			p.expr(e.Lo, precCmp+1)
			p.ws(" AND ")
			p.expr(e.Hi, precCmp+1)
		})
	case *InList:
		p.paren(precCmp < min, func() {
			p.expr(e.X, precCmp+1)
			if e.Not {
				p.ws(" NOT")
			}
			p.ws(" IN (")
			p.exprList(e.List)
			p.ws(")")
		})
	case *InSubquery:
		p.paren(precCmp < min, func() {
			p.expr(e.X, precCmp+1)
			if e.Not {
				p.ws(" NOT")
			}
			p.ws(" IN (")
			p.indent++
			p.nl()
			p.query(e.Query)
			p.indent--
			p.ws(")")
		})
	case *Exists:
		if e.Not {
			p.ws("NOT ")
		}
		p.ws("EXISTS (")
		p.indent++
		p.nl()
		p.query(e.Query)
		p.indent--
		p.ws(")")
	case *ScalarSubquery:
		p.ws("(")
		p.indent++
		p.nl()
		p.query(e.Query)
		p.indent--
		p.ws(")")
	case *Case:
		p.ws("CASE")
		if e.Operand != nil {
			p.ws(" ")
			p.expr(e.Operand, 0)
		}
		for _, w := range e.Whens {
			p.ws(" WHEN ")
			p.expr(w.Cond, 0)
			p.ws(" THEN ")
			p.expr(w.Then, 0)
		}
		if e.Else != nil {
			p.ws(" ELSE ")
			p.expr(e.Else, 0)
		}
		p.ws(" END")
	case *Cast:
		p.ws("CAST(")
		p.expr(e.X, 0)
		p.wf(" AS %s)", e.TypeName)
	case *FuncCall:
		p.funcCall(e)
	case *At:
		p.paren(precPostfix < min, func() {
			p.expr(e.X, precPostfix)
			p.ws(" AT (")
			for i, m := range e.Mods {
				if i > 0 {
					p.ws(" ")
				}
				p.atMod(m)
			}
			p.ws(")")
		})
	case *Current:
		p.ws("CURRENT ")
		p.expr(e.Dim, precPostfix)
	case *Param:
		// Canonical $n form: ? placeholders print with their assigned
		// index, so equivalent texts normalize identically for the plan
		// cache key. Index 0 never occurs in parsed SQL; the statement
		// fingerprint normalizer uses it to stand in for literals.
		if e.Index <= 0 {
			p.ws("?")
		} else {
			p.wf("$%d", e.Index)
		}
	default:
		p.wf("/* unknown expr %T */", e)
	}
}

func (p *printer) funcCall(e *FuncCall) {
	p.wf("%s(", strings.ToUpper(e.Name))
	if e.Star {
		p.ws("*")
	} else {
		if e.Distinct {
			p.ws("DISTINCT ")
		}
		p.exprList(e.Args)
	}
	p.ws(")")
	if len(e.WithinDistinct) > 0 {
		p.ws(" WITHIN DISTINCT (")
		p.exprList(e.WithinDistinct)
		p.ws(")")
	}
	if e.Filter != nil {
		p.ws(" FILTER (WHERE ")
		p.expr(e.Filter, 0)
		p.ws(")")
	}
	if e.Over != nil {
		p.ws(" OVER (")
		sep := false
		if len(e.Over.PartitionBy) > 0 {
			p.ws("PARTITION BY ")
			p.exprList(e.Over.PartitionBy)
			sep = true
		}
		if len(e.Over.OrderBy) > 0 {
			if sep {
				p.ws(" ")
			}
			p.ws("ORDER BY ")
			p.orderItems(e.Over.OrderBy)
			sep = true
		}
		if e.Over.Frame != nil {
			if sep {
				p.ws(" ")
			}
			f := e.Over.Frame
			p.wf("%s BETWEEN %s AND %s", f.Unit, frameBound(f.Start), frameBound(f.End))
		}
		p.ws(")")
	}
}

func frameBound(b FrameBound) string {
	switch b.Kind {
	case UnboundedPreceding:
		return "UNBOUNDED PRECEDING"
	case OffsetPreceding:
		return FormatExpr(b.Offset) + " PRECEDING"
	case CurrentRow:
		return "CURRENT ROW"
	case OffsetFollowing:
		return FormatExpr(b.Offset) + " FOLLOWING"
	case UnboundedFollowing:
		return "UNBOUNDED FOLLOWING"
	default:
		return "CURRENT ROW"
	}
}

func (p *printer) atMod(m AtMod) {
	switch m := m.(type) {
	case *AtAll:
		p.ws("ALL")
		for i, d := range m.Dims {
			if i > 0 {
				p.ws(",")
			}
			p.ws(" ")
			p.expr(d, 0)
		}
	case *AtSet:
		p.ws("SET ")
		p.expr(m.Dim, 0)
		p.ws(" = ")
		p.expr(m.Value, 0)
	case *AtVisible:
		p.ws("VISIBLE")
	case *AtWhere:
		p.ws("WHERE ")
		p.expr(m.Pred, 0)
	}
}

func (p *printer) exprList(list []Expr) {
	for i, e := range list {
		if i > 0 {
			p.ws(", ")
		}
		p.expr(e, 0)
	}
}

func (p *printer) paren(need bool, f func()) {
	if need {
		p.ws("(")
	}
	f()
	if need {
		p.ws(")")
	}
}

// quoteQualified renders a possibly dot-qualified table name
// ("msql_stats.statements"), quoting each segment independently so the
// output re-parses as the same qualified reference.
func quoteQualified(s string) string {
	if !strings.Contains(s, ".") {
		return quoteIdent(s)
	}
	parts := strings.Split(s, ".")
	for i, p := range parts {
		parts[i] = quoteIdent(p)
	}
	return strings.Join(parts, ".")
}

// quoteIdent double-quotes an identifier if it collides with a keyword or
// contains characters that would not re-lex as an identifier.
func quoteIdent(s string) string {
	if s == "" {
		return s
	}
	if needsQuoting(s) {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func needsQuoting(s string) bool {
	for i, r := range s {
		if r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
			continue
		}
		if i > 0 && r >= '0' && r <= '9' {
			continue
		}
		return true
	}
	return isKeywordName(s)
}
