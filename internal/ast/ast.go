// Package ast defines the abstract syntax tree for the SQL dialect,
// including the paper's measure extensions: AS MEASURE select items, the
// AGGREGATE and EVAL functions, the AT context-transformation operator
// with its modifiers (ALL, ALL dims, SET, VISIBLE, WHERE), and the
// CURRENT dimension qualifier.
//
// The package also provides a SQL printer (print.go) able to render any
// tree back to parseable SQL; the measure-expansion rewrite uses it to
// show queries "expanded in place to simple, clear SQL" (paper abstract).
package ast

// Node is implemented by every AST node.
type Node interface {
	node()
}

// Statement is implemented by every top-level statement.
type Statement interface {
	Node
	stmt()
}

// ---------------------------------------------------------------------------
// Statements

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Name      string
	OrReplace bool
	Cols      []ColumnDef
}

// ColumnDef is a column definition in CREATE TABLE.
type ColumnDef struct {
	Name     string
	TypeName string
}

// CreateView is CREATE [OR REPLACE] VIEW name AS query.
type CreateView struct {
	Name      string
	OrReplace bool
	Query     *Query
}

// Insert is INSERT INTO name [(cols)] VALUES (...) | query.
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr // nil if Query is set
	Query   *Query
}

// Drop is DROP TABLE|VIEW name.
type Drop struct {
	Kind string // "TABLE" or "VIEW"
	Name string
}

// Truncate is TRUNCATE [TABLE] name: delete every row, keep the schema.
type Truncate struct {
	Table string
}

// Explain is EXPLAIN query: prints the logical plan. With Analyze set
// (EXPLAIN ANALYZE) the query is executed and the plan is annotated with
// per-operator runtime metrics. Execute is set instead of Query for
// EXPLAIN [ANALYZE] EXECUTE name (...), which reports whether the plan
// came from the plan cache.
type Explain struct {
	Query   *Query
	Execute *ExecuteStmt
	Analyze bool
}

// Expand is EXPAND query: prints the measure-free expansion of the query
// (the paper's Listing 5 / Listing 11 rewrite).
type Expand struct {
	Query *Query
}

// QueryStmt wraps a query used as a statement.
type QueryStmt struct {
	Query *Query
}

// Prepare is PREPARE name [(type, ...)] AS query. Types, when present,
// declare the parameter types; otherwise parameter types are inferred
// from the EXECUTE arguments. NParams is the highest parameter index
// referenced by the query ($n and ? placeholders share one numbering).
type Prepare struct {
	Name    string
	Types   []string
	Query   *Query
	NParams int
}

// ExecuteStmt is EXECUTE name [(expr, ...)]. Arguments must be
// constant-evaluable expressions.
type ExecuteStmt struct {
	Name string
	Args []Expr
}

// Deallocate is DEALLOCATE name or DEALLOCATE ALL.
type Deallocate struct {
	Name string
	All  bool
}

// Kill is KILL <query-id>: cancel the in-flight statement with that ID
// in the session's live-query registry (the victim fails with the
// CANCELED taxonomy code).
type Kill struct {
	ID int64
}

func (*CreateTable) node() {}
func (*CreateView) node()  {}
func (*Insert) node()      {}
func (*Drop) node()        {}
func (*Truncate) node()    {}
func (*Explain) node()     {}
func (*Expand) node()      {}
func (*QueryStmt) node()   {}
func (*Prepare) node()     {}
func (*ExecuteStmt) node() {}
func (*Deallocate) node()  {}
func (*Kill) node()        {}

func (*CreateTable) stmt() {}
func (*CreateView) stmt()  {}
func (*Insert) stmt()      {}
func (*Drop) stmt()        {}
func (*Truncate) stmt()    {}
func (*Explain) stmt()     {}
func (*Expand) stmt()      {}
func (*QueryStmt) stmt()   {}
func (*Prepare) stmt()     {}
func (*ExecuteStmt) stmt() {}
func (*Deallocate) stmt()  {}
func (*Kill) stmt()        {}

// ---------------------------------------------------------------------------
// Queries

// Query is a full query expression: optional WITH list, a body (SELECT or
// set operation), and optional ORDER BY / LIMIT / OFFSET.
type Query struct {
	With    []CTE
	Body    Body
	OrderBy []OrderItem
	Limit   Expr
	Offset  Expr
}

// CTE is one WITH entry.
type CTE struct {
	Name  string
	Query *Query
}

// Body is the body of a query: a Select, a set operation, or a
// parenthesized query.
type Body interface {
	Node
	body()
}

// SetOp is UNION [ALL] / INTERSECT / EXCEPT.
type SetOp struct {
	Op    string // "UNION", "INTERSECT", "EXCEPT"
	All   bool
	Left  Body
	Right Body
}

// SubqueryBody wraps a parenthesized query used as a body.
type SubqueryBody struct {
	Query *Query
}

// Select is a SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ... block.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     TableExpr // nil means SELECT without FROM
	Where    Expr
	GroupBy  []GroupItem
	Having   Expr
	// Qualify filters on window function results (a common SQL
	// extension; evaluated after windows are computed).
	Qualify Expr
}

func (*Query) node()        {}
func (*SetOp) node()        {}
func (*Select) node()       {}
func (*SubqueryBody) node() {}
func (*SetOp) body()        {}
func (*Select) body()       {}
func (*SubqueryBody) body() {}

// SelectItem is one projection. Star items are "*" or "t.*". Measure
// items carry the AS MEASURE flag from the paper's syntax.
type SelectItem struct {
	Star      bool
	StarTable string // qualifier for "t.*", empty for plain "*"
	Expr      Expr
	Alias     string
	Measure   bool // AS MEASURE alias
}

// GroupKind classifies a GROUP BY item.
type GroupKind uint8

const (
	// GroupExpr is a simple grouping expression.
	GroupExpr GroupKind = iota
	// GroupRollup is ROLLUP(e1, ..., en).
	GroupRollup
	// GroupCube is CUBE(e1, ..., en).
	GroupCube
	// GroupSets is GROUPING SETS((...), (...)).
	GroupSets
)

// GroupItem is one item in GROUP BY.
type GroupItem struct {
	Kind  GroupKind
	Exprs []Expr   // for GroupExpr (len 1), GroupRollup, GroupCube
	Sets  [][]Expr // for GroupSets
}

// OrderItem is one ORDER BY item.
type OrderItem struct {
	Expr       Expr
	Desc       bool
	NullsFirst *bool // nil = default (NULLS LAST ascending, FIRST descending)
}

// ---------------------------------------------------------------------------
// Table expressions

// TableExpr is implemented by FROM-clause items.
type TableExpr interface {
	Node
	tableExpr()
}

// TableName references a named table or view.
type TableName struct {
	Name  string
	Alias string
}

// SubqueryTable is a derived table.
type SubqueryTable struct {
	Query *Query
	Alias string
}

// JoinKind classifies a join.
type JoinKind uint8

const (
	// JoinInner is INNER JOIN (or bare JOIN).
	JoinInner JoinKind = iota
	// JoinLeft is LEFT [OUTER] JOIN.
	JoinLeft
	// JoinRight is RIGHT [OUTER] JOIN.
	JoinRight
	// JoinFull is FULL [OUTER] JOIN.
	JoinFull
	// JoinCross is CROSS JOIN.
	JoinCross
)

// String returns the SQL spelling of the join kind.
func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinRight:
		return "RIGHT JOIN"
	case JoinFull:
		return "FULL JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// JoinExpr is a join between two table expressions.
type JoinExpr struct {
	Kind    JoinKind
	Natural bool
	Left    TableExpr
	Right   TableExpr
	On      Expr
	Using   []string
}

func (*TableName) node()          {}
func (*SubqueryTable) node()      {}
func (*JoinExpr) node()           {}
func (*TableName) tableExpr()     {}
func (*SubqueryTable) tableExpr() {}
func (*JoinExpr) tableExpr()      {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is implemented by every expression node.
type Expr interface {
	Node
	expr()
}

// Ident is a possibly-qualified identifier: a or t.a.
type Ident struct {
	Parts []string
	Pos   int
}

// Name returns the unqualified column name.
func (i *Ident) Name() string { return i.Parts[len(i.Parts)-1] }

// Qualifier returns the table qualifier, or "" if unqualified.
func (i *Ident) Qualifier() string {
	if len(i.Parts) > 1 {
		return i.Parts[0]
	}
	return ""
}

// NumberLit is a numeric literal.
type NumberLit struct {
	Text  string
	IsInt bool
	Int   int64
	Float float64
}

// StringLit is a string literal.
type StringLit struct {
	Val string
}

// BoolLit is TRUE or FALSE.
type BoolLit struct {
	Val bool
}

// NullLit is NULL.
type NullLit struct{}

// DateLit is DATE 'yyyy-mm-dd'.
type DateLit struct {
	Val string
}

// Unary is a prefix operator: - x, NOT x.
type Unary struct {
	Op string
	X  Expr
}

// Binary is an infix operator: arithmetic, comparison, AND/OR, ||.
type Binary struct {
	Op string
	L  Expr
	R  Expr
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// IsDistinct is x IS [NOT] DISTINCT FROM y.
type IsDistinct struct {
	L   Expr
	R   Expr
	Not bool // true for IS NOT DISTINCT FROM
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X   Expr
	Lo  Expr
	Hi  Expr
	Not bool
}

// InList is x [NOT] IN (e1, ..., en).
type InList struct {
	X    Expr
	List []Expr
	Not  bool
}

// InSubquery is x [NOT] IN (query).
type InSubquery struct {
	X     Expr
	Query *Query
	Not   bool
}

// Exists is [NOT] EXISTS (query).
type Exists struct {
	Query *Query
	Not   bool
}

// ScalarSubquery is a parenthesized query used as a scalar expression.
type ScalarSubquery struct {
	Query *Query
}

// When is one WHEN ... THEN ... arm of a CASE.
type When struct {
	Cond Expr
	Then Expr
}

// Case is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []When
	Else    Expr
}

// Cast is CAST(x AS type).
type Cast struct {
	X        Expr
	TypeName string
}

// FuncCall is a function or aggregate invocation, optionally with
// DISTINCT, FILTER (WHERE ...) and OVER (...). COUNT(*) sets Star.
type FuncCall struct {
	Name     string
	Distinct bool
	Star     bool
	Args     []Expr
	Filter   Expr
	Over     *WindowSpec
	// WithinDistinct holds the keys of a WITHIN DISTINCT (...) clause on
	// an aggregate (Calcite CALCITE-4483, the paper's §6.3 candidate for
	// grain management): the aggregate sees one row per distinct key
	// tuple, and argument values must be consistent within a tuple.
	WithinDistinct []Expr
	Pos            int
}

// WindowSpec is the OVER (...) clause.
type WindowSpec struct {
	PartitionBy []Expr
	OrderBy     []OrderItem
	Frame       *Frame
}

// Frame is a window frame clause.
type Frame struct {
	Unit  string // "ROWS" or "RANGE"
	Start FrameBound
	End   FrameBound
}

// FrameBoundKind classifies a frame bound.
type FrameBoundKind uint8

const (
	// UnboundedPreceding is UNBOUNDED PRECEDING.
	UnboundedPreceding FrameBoundKind = iota
	// OffsetPreceding is n PRECEDING.
	OffsetPreceding
	// CurrentRow is CURRENT ROW.
	CurrentRow
	// OffsetFollowing is n FOLLOWING.
	OffsetFollowing
	// UnboundedFollowing is UNBOUNDED FOLLOWING.
	UnboundedFollowing
)

// FrameBound is one bound of a window frame.
type FrameBound struct {
	Kind   FrameBoundKind
	Offset Expr
}

// At is the paper's context-transformation operator: cse AT (modifiers).
type At struct {
	X    Expr
	Mods []AtMod
}

// AtMod is implemented by the AT modifiers of Table 3 in the paper.
type AtMod interface {
	Node
	atMod()
}

// AtAll is ALL (clear the whole context) when Dims is empty, or
// ALL dim, ... (remove terms on the named dimensions).
type AtAll struct {
	Dims []Expr
}

// AtSet is SET dim = expr.
type AtSet struct {
	Dim   Expr
	Value Expr
}

// AtVisible is VISIBLE.
type AtVisible struct{}

// AtWhere is WHERE predicate.
type AtWhere struct {
	Pred Expr
}

// Current is the CURRENT dim qualifier, valid inside AT modifiers.
type Current struct {
	Dim Expr
}

// Param is a parameter placeholder in a prepared statement: $n, or a
// bare ? auto-numbered left to right. Index is 1-based.
type Param struct {
	Index int
	Pos   int
}

// Placeholder is an internal marker node used by rewrite passes (e.g.
// the EXPAND statement's measure rewriter) to thread intermediate state
// through TransformExpr. It never appears in parsed SQL and the printer
// rejects it.
type Placeholder struct {
	Tag any
}

func (*Ident) node()          {}
func (*NumberLit) node()      {}
func (*StringLit) node()      {}
func (*BoolLit) node()        {}
func (*NullLit) node()        {}
func (*DateLit) node()        {}
func (*Unary) node()          {}
func (*Binary) node()         {}
func (*IsNull) node()         {}
func (*IsDistinct) node()     {}
func (*Between) node()        {}
func (*InList) node()         {}
func (*InSubquery) node()     {}
func (*Exists) node()         {}
func (*ScalarSubquery) node() {}
func (*Case) node()           {}
func (*Cast) node()           {}
func (*FuncCall) node()       {}
func (*At) node()             {}
func (*Param) node()          {}
func (*Placeholder) node()    {}
func (*AtAll) node()          {}
func (*AtSet) node()          {}
func (*AtVisible) node()      {}
func (*AtWhere) node()        {}
func (*Current) node()        {}

func (*Ident) expr()          {}
func (*NumberLit) expr()      {}
func (*StringLit) expr()      {}
func (*BoolLit) expr()        {}
func (*NullLit) expr()        {}
func (*DateLit) expr()        {}
func (*Unary) expr()          {}
func (*Binary) expr()         {}
func (*IsNull) expr()         {}
func (*IsDistinct) expr()     {}
func (*Between) expr()        {}
func (*InList) expr()         {}
func (*InSubquery) expr()     {}
func (*Exists) expr()         {}
func (*ScalarSubquery) expr() {}
func (*Case) expr()           {}
func (*Cast) expr()           {}
func (*FuncCall) expr()       {}
func (*At) expr()             {}
func (*Current) expr()        {}
func (*Param) expr()          {}
func (*Placeholder) expr()    {}

func (*AtAll) atMod()     {}
func (*AtSet) atMod()     {}
func (*AtVisible) atMod() {}
func (*AtWhere) atMod()   {}
