package ast

import "github.com/measures-sql/msql/internal/lexer"

func isKeywordName(s string) bool { return lexer.IsKeyword(s) }

// WalkExpr calls f for e and every expression nested inside it (including
// expressions inside AT modifiers, CASE arms, subquery-free positions).
// It does not descend into subqueries; callers that need that handle
// *ScalarSubquery etc. themselves. If f returns false the node's children
// are skipped.
func WalkExpr(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch e := e.(type) {
	case *Unary:
		WalkExpr(e.X, f)
	case *Binary:
		WalkExpr(e.L, f)
		WalkExpr(e.R, f)
	case *IsNull:
		WalkExpr(e.X, f)
	case *IsDistinct:
		WalkExpr(e.L, f)
		WalkExpr(e.R, f)
	case *Between:
		WalkExpr(e.X, f)
		WalkExpr(e.Lo, f)
		WalkExpr(e.Hi, f)
	case *InList:
		WalkExpr(e.X, f)
		for _, x := range e.List {
			WalkExpr(x, f)
		}
	case *InSubquery:
		WalkExpr(e.X, f)
	case *Case:
		WalkExpr(e.Operand, f)
		for _, w := range e.Whens {
			WalkExpr(w.Cond, f)
			WalkExpr(w.Then, f)
		}
		WalkExpr(e.Else, f)
	case *Cast:
		WalkExpr(e.X, f)
	case *FuncCall:
		for _, a := range e.Args {
			WalkExpr(a, f)
		}
		for _, k := range e.WithinDistinct {
			WalkExpr(k, f)
		}
		WalkExpr(e.Filter, f)
		if e.Over != nil {
			for _, pb := range e.Over.PartitionBy {
				WalkExpr(pb, f)
			}
			for _, ob := range e.Over.OrderBy {
				WalkExpr(ob.Expr, f)
			}
		}
	case *At:
		WalkExpr(e.X, f)
		for _, m := range e.Mods {
			switch m := m.(type) {
			case *AtAll:
				for _, d := range m.Dims {
					WalkExpr(d, f)
				}
			case *AtSet:
				WalkExpr(m.Dim, f)
				WalkExpr(m.Value, f)
			case *AtWhere:
				WalkExpr(m.Pred, f)
			}
		}
	case *Current:
		WalkExpr(e.Dim, f)
	}
}

// TransformExpr returns a copy of e with f applied bottom-up to every
// node. f receives an already-transformed node and returns its
// replacement. Subqueries are not descended into.
func TransformExpr(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Unary:
		c := *x
		c.X = TransformExpr(x.X, f)
		return f(&c)
	case *Binary:
		c := *x
		c.L = TransformExpr(x.L, f)
		c.R = TransformExpr(x.R, f)
		return f(&c)
	case *IsNull:
		c := *x
		c.X = TransformExpr(x.X, f)
		return f(&c)
	case *IsDistinct:
		c := *x
		c.L = TransformExpr(x.L, f)
		c.R = TransformExpr(x.R, f)
		return f(&c)
	case *Between:
		c := *x
		c.X = TransformExpr(x.X, f)
		c.Lo = TransformExpr(x.Lo, f)
		c.Hi = TransformExpr(x.Hi, f)
		return f(&c)
	case *InList:
		c := *x
		c.X = TransformExpr(x.X, f)
		c.List = transformList(x.List, f)
		return f(&c)
	case *InSubquery:
		c := *x
		c.X = TransformExpr(x.X, f)
		return f(&c)
	case *Case:
		c := *x
		c.Operand = TransformExpr(x.Operand, f)
		c.Whens = make([]When, len(x.Whens))
		for i, w := range x.Whens {
			c.Whens[i] = When{Cond: TransformExpr(w.Cond, f), Then: TransformExpr(w.Then, f)}
		}
		c.Else = TransformExpr(x.Else, f)
		return f(&c)
	case *Cast:
		c := *x
		c.X = TransformExpr(x.X, f)
		return f(&c)
	case *FuncCall:
		c := *x
		c.Args = transformList(x.Args, f)
		c.WithinDistinct = transformList(x.WithinDistinct, f)
		c.Filter = TransformExpr(x.Filter, f)
		if x.Over != nil {
			over := *x.Over
			over.PartitionBy = transformList(x.Over.PartitionBy, f)
			over.OrderBy = make([]OrderItem, len(x.Over.OrderBy))
			for i, o := range x.Over.OrderBy {
				o.Expr = TransformExpr(o.Expr, f)
				over.OrderBy[i] = o
			}
			c.Over = &over
		}
		return f(&c)
	case *At:
		c := *x
		c.X = TransformExpr(x.X, f)
		c.Mods = make([]AtMod, len(x.Mods))
		for i, m := range x.Mods {
			switch m := m.(type) {
			case *AtAll:
				mc := *m
				mc.Dims = transformList(m.Dims, f)
				c.Mods[i] = &mc
			case *AtSet:
				mc := *m
				mc.Dim = TransformExpr(m.Dim, f)
				mc.Value = TransformExpr(m.Value, f)
				c.Mods[i] = &mc
			case *AtWhere:
				mc := *m
				mc.Pred = TransformExpr(m.Pred, f)
				c.Mods[i] = &mc
			default:
				c.Mods[i] = m
			}
		}
		return f(&c)
	case *Current:
		c := *x
		c.Dim = TransformExpr(x.Dim, f)
		return f(&c)
	default:
		return f(e)
	}
}

func transformList(list []Expr, f func(Expr) Expr) []Expr {
	if list == nil {
		return nil
	}
	out := make([]Expr, len(list))
	for i, e := range list {
		out[i] = TransformExpr(e, f)
	}
	return out
}
