package ast

import (
	"testing"
)

func ident(name string) *Ident { return &Ident{Parts: []string{name}} }

func TestWalkExpr(t *testing.T) {
	// a + m AT (SET y = CURRENT y - 1 WHERE z = 2)
	e := &Binary{
		Op: "+",
		L:  ident("a"),
		R: &At{
			X: ident("m"),
			Mods: []AtMod{
				&AtSet{Dim: ident("y"), Value: &Binary{Op: "-", L: &Current{Dim: ident("y")}, R: &NumberLit{Text: "1", IsInt: true, Int: 1}}},
				&AtWhere{Pred: &Binary{Op: "=", L: ident("z"), R: &NumberLit{Text: "2", IsInt: true, Int: 2}}},
			},
		},
	}
	var names []string
	WalkExpr(e, func(x Expr) bool {
		if id, ok := x.(*Ident); ok {
			names = append(names, id.Name())
		}
		return true
	})
	want := map[string]bool{"a": true, "m": true, "y": true, "z": true}
	if len(names) != 5 { // y appears twice (SET dim and CURRENT)
		t.Errorf("visited %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected ident %q", n)
		}
	}
}

func TestTransformExpr(t *testing.T) {
	e := &Binary{Op: "+", L: ident("a"), R: ident("b")}
	out := TransformExpr(e, func(x Expr) Expr {
		if id, ok := x.(*Ident); ok && id.Name() == "a" {
			return ident("renamed")
		}
		return x
	})
	if FormatExpr(out) != "renamed + b" {
		t.Errorf("got %q", FormatExpr(out))
	}
	// Original is unchanged (copy-on-write).
	if FormatExpr(e) != "a + b" {
		t.Errorf("original mutated: %q", FormatExpr(e))
	}
}

func TestIdentHelpers(t *testing.T) {
	q := &Ident{Parts: []string{"t", "col"}}
	if q.Name() != "col" || q.Qualifier() != "t" {
		t.Errorf("%q %q", q.Name(), q.Qualifier())
	}
	u := ident("col")
	if u.Qualifier() != "" {
		t.Errorf("unqualified should have empty qualifier")
	}
}

func TestQuoteIdentInPrinter(t *testing.T) {
	// A column named like a keyword must print quoted and reparse.
	e := &Ident{Parts: []string{"select"}}
	if got := FormatExpr(e); got != `"select"` {
		t.Errorf("got %q", got)
	}
	e2 := &Ident{Parts: []string{"weird name"}}
	if got := FormatExpr(e2); got != `"weird name"` {
		t.Errorf("got %q", got)
	}
	e3 := &Ident{Parts: []string{"normal_name2"}}
	if got := FormatExpr(e3); got != "normal_name2" {
		t.Errorf("got %q", got)
	}
}

func TestFormatStatementKinds(t *testing.T) {
	stmts := []Statement{
		&CreateTable{Name: "t", Cols: []ColumnDef{{Name: "a", TypeName: "INTEGER"}}},
		&CreateView{Name: "v", OrReplace: true, Query: &Query{Body: &Select{Items: []SelectItem{{Expr: &NumberLit{Text: "1", IsInt: true, Int: 1}, Alias: "x"}}}}},
		&Insert{Table: "t", Rows: [][]Expr{{&NumberLit{Text: "1", IsInt: true, Int: 1}}}},
		&Drop{Kind: "VIEW", Name: "v"},
	}
	want := []string{
		"CREATE TABLE t (a INTEGER)",
		"CREATE OR REPLACE VIEW v AS\nSELECT 1 AS x",
		"INSERT INTO t VALUES (1)",
		"DROP VIEW v",
	}
	for i, s := range stmts {
		if got := FormatStatement(s); got != want[i] {
			t.Errorf("stmt %d:\ngot  %q\nwant %q", i, got, want[i])
		}
	}
}
