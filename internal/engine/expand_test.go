package engine

import (
	"strings"
	"testing"

	"github.com/measures-sql/msql/internal/parser"
)

func expandSession(t *testing.T) *Session {
	t.Helper()
	s := New()
	if _, err := s.Execute(`
		CREATE TABLE Orders (prodName VARCHAR, custName VARCHAR, orderDate DATE,
		                     revenue INTEGER, cost INTEGER);
		INSERT INTO Orders VALUES
		  ('Happy', 'Alice', DATE '2023-11-28', 6, 4),
		  ('Acme',  'Bob',   DATE '2023-11-27', 5, 2),
		  ('Happy', 'Bob',   DATE '2022-11-27', 4, 1);
		CREATE VIEW MV AS
		SELECT *, SUM(revenue) AS MEASURE rev,
		       (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
		FROM Orders;
	`); err != nil {
		t.Fatal(err)
	}
	return s
}

func expand(t *testing.T, s *Session, sql string) string {
	t.Helper()
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.ExpandQuery(q)
	if err != nil {
		t.Fatalf("expand %q: %v", sql, err)
	}
	return out
}

func expandErr(t *testing.T, s *Session, sql, needle string) {
	t.Helper()
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.ExpandQuery(q)
	if err == nil {
		t.Fatalf("expand %q: expected error with %q", sql, needle)
	}
	if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(needle)) {
		t.Errorf("expand %q: error %q missing %q", sql, err, needle)
	}
}

func TestExpandMeasureFreeQueryUnchanged(t *testing.T) {
	s := expandSession(t)
	out := expand(t, s, `SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName`)
	if strings.Contains(out, "(") && strings.Contains(strings.ToUpper(out), "FROM ORDERS AS I") {
		t.Errorf("measure-free query should pass through: %s", out)
	}
}

func TestExpandViaCTE(t *testing.T) {
	s := expandSession(t)
	out := expand(t, s, `
		WITH V AS (SELECT *, AVG(revenue) AS MEASURE avgRev FROM Orders)
		SELECT prodName, AGGREGATE(avgRev) AS a FROM V GROUP BY prodName`)
	if !strings.Contains(out, "AVG(i.revenue)") {
		t.Errorf("CTE-provided measure not expanded:\n%s", out)
	}
	// The expansion must run and agree with the original.
	orig, err := s.Query(`
		WITH V AS (SELECT *, AVG(revenue) AS MEASURE avgRev FROM Orders)
		SELECT prodName, AGGREGATE(avgRev) AS a FROM V GROUP BY prodName ORDER BY prodName`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Query(out + " ORDER BY prodName")
	if err != nil {
		t.Fatalf("expanded CTE query fails: %v\n%s", err, out)
	}
	if len(orig.Rows) != len(got.Rows) {
		t.Errorf("row counts differ: %d vs %d", len(orig.Rows), len(got.Rows))
	}
}

func TestExpandBakedWhere(t *testing.T) {
	s := expandSession(t)
	if _, err := s.Execute(`CREATE VIEW NB AS
		SELECT prodName, custName, revenue, SUM(revenue) AS MEASURE rev
		FROM Orders WHERE custName <> 'Bob'`); err != nil {
		t.Fatal(err)
	}
	out := expand(t, s, `SELECT prodName, AGGREGATE(rev) AS r FROM NB GROUP BY prodName`)
	// The view's own WHERE must appear inside the subquery (baked in).
	if !strings.Contains(out, "<> 'Bob'") {
		t.Errorf("baked WHERE missing from expansion:\n%s", out)
	}
}

func TestExpandGlobalAggregate(t *testing.T) {
	s := expandSession(t)
	out := expand(t, s, `SELECT AGGREGATE(rev) AS total FROM MV`)
	// One row, no outer FROM needed.
	res, err := s.Query(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 15 {
		t.Errorf("global expansion rows: %v\n%s", res.Rows, out)
	}
}

func TestExpandUnsupportedShapes(t *testing.T) {
	s := expandSession(t)
	expandErr(t, s, `SELECT prodName, AGGREGATE(rev) AS r FROM MV GROUP BY ROLLUP(prodName)`, "ROLLUP")
	expandErr(t, s, `SELECT m.prodName, AGGREGATE(m.rev) AS r
	                 FROM MV AS m JOIN Orders AS o ON m.prodName = o.prodName
	                 GROUP BY m.prodName`, "join")
	expandErr(t, s, `SELECT * FROM MV`, "SELECT *")
	expandErr(t, s, `SELECT prodName, SUM(revenue) AS MEASURE m2 FROM MV GROUP BY prodName`, "aggregate query")
}

func TestExpandRecursiveMeasureRejected(t *testing.T) {
	s := New()
	if _, err := s.Execute(`
		CREATE TABLE T (v INTEGER);
	`); err != nil {
		t.Fatal(err)
	}
	// The view itself fails to bind, so CREATE VIEW rejects it — the
	// expansion path never sees recursive measures.
	_, err := s.Execute(`CREATE VIEW R AS SELECT *, m + 1 AS MEASURE m FROM T`)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("recursive measure should fail at CREATE VIEW: %v", err)
	}
}
