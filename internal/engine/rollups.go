// Rollup lattice wiring: the session owns (at most) one
// rollup.Lattice, installed into the executor settings as the
// RollupProvider and kept consistent by synchronous notifications from
// every mutation path — execInsert, InsertRows (and the CAS variants,
// which route through them), execTruncate, execDrop, and CREATE OR
// REPLACE TABLE. The lattice is derived state: it is never written to
// the WAL, and a session recovered from a crash starts with an empty
// lattice that re-materializes from the recovered store on first use.
package engine

import (
	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/optimizer"
	"github.com/measures-sql/msql/internal/rollup"
)

// SetRollups enables or disables the materialized rollup lattice.
// Enabling replaces any existing lattice with a fresh one; statements
// already running keep the settings snapshot (and so the lattice) they
// started with.
func (s *Session) SetRollups(on bool) {
	if !on {
		s.rollups.Store(nil)
		s.metrics.SetRollupSource(nil)
		s.Update(func(ex *exec.Settings, _ *optimizer.Options) { ex.Rollups = nil })
		return
	}
	l := rollup.New()
	s.rollups.Store(l)
	s.metrics.SetRollupSource(func() RollupCounters { return rollupCounters(l.Stats()) })
	s.Update(func(ex *exec.Settings, _ *optimizer.Options) { ex.Rollups = l })
}

// RollupsEnabled reports whether a lattice is installed.
func (s *Session) RollupsEnabled() bool { return s.rollups.Load() != nil }

// RollupStats returns the lattice activity counters (zero value when
// rollups are disabled).
func (s *Session) RollupStats() rollup.Counters {
	if l := s.rollups.Load(); l != nil {
		return l.Stats()
	}
	return rollup.Counters{}
}

// rollupMutation folds a just-committed INSERT into the table's
// lattice nodes. Called synchronously after the insert applies so a
// node can never answer from a shorter prefix than an acknowledged
// statement.
func (s *Session) rollupMutation(table string) {
	if l := s.rollups.Load(); l != nil {
		l.NotifyMutation(table)
	}
}

// rollupTruncate resets the table's lattice nodes. Called synchronously
// after TRUNCATE applies, before any later statement can refill the
// table to its old length.
func (s *Session) rollupTruncate(table string) {
	if l := s.rollups.Load(); l != nil {
		l.NotifyTruncate(table)
	}
}

// rollupDDL drops the table's lattice nodes after DROP or CREATE OR
// REPLACE detaches the storage instance they were built over.
func (s *Session) rollupDDL(table string) {
	if l := s.rollups.Load(); l != nil {
		l.NotifyDDL(table)
	}
}

// rollupCounters adapts the lattice's counters to the metrics section.
func rollupCounters(c rollup.Counters) RollupCounters {
	return RollupCounters{
		Hits:            c.Hits,
		Misses:          c.Misses,
		Builds:          c.Builds,
		Rebuilds:        c.Rebuilds,
		IncrementalRows: c.IncrementalRows,
		Invalidations:   c.Invalidations,
		Nodes:           c.Nodes,
		Groups:          c.Groups,
		DirtyGroups:     c.DirtyGroups,
	}
}
