// Package engine dispatches SQL statements: DDL against the catalog, DML
// against storage, and queries through binder → optimizer → executor.
package engine

import (
	"fmt"
	"strings"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/binder"
	"github.com/measures-sql/msql/internal/catalog"
	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/optimizer"
	"github.com/measures-sql/msql/internal/parser"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// Result is the outcome of one statement.
type Result struct {
	// Columns are the output column names (empty for non-queries).
	Columns []string
	// Types are the output column types.
	Types []sqltypes.Type
	// Rows are the result rows (nil for non-queries).
	Rows [][]sqltypes.Value
	// Message describes the effect of a non-query statement.
	Message string
}

// Session is one database session: a catalog plus execution settings.
type Session struct {
	cat       *catalog.Catalog
	exec      *exec.Settings
	opt       optimizer.Options
	lastStats exec.Stats
}

// LastStats returns the executor counters of the most recent query.
func (s *Session) LastStats() exec.Stats { return s.lastStats }

// New creates an empty session with default settings.
func New() *Session {
	return &Session{
		cat:  catalog.New(),
		exec: exec.DefaultSettings(),
		opt:  optimizer.DefaultOptions(),
	}
}

// Catalog exposes the session catalog (for tooling like the CLI's \d).
func (s *Session) Catalog() *catalog.Catalog { return s.cat }

// ExecSettings exposes the execution settings for strategy experiments.
func (s *Session) ExecSettings() *exec.Settings { return s.exec }

// OptOptions returns a pointer to the optimizer options for strategy
// experiments.
func (s *Session) OptOptions() *optimizer.Options { return &s.opt }

// Execute parses and runs a script of one or more statements.
func (s *Session) Execute(sql string) ([]*Result, error) {
	stmts, err := parser.ParseStatements(sql)
	if err != nil {
		return nil, err
	}
	results := make([]*Result, 0, len(stmts))
	for _, stmt := range stmts {
		r, err := s.ExecStatement(stmt)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// Query runs a single statement that must produce rows.
func (s *Session) Query(sql string) (*Result, error) {
	stmt, err := parser.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	r, err := s.ExecStatement(stmt)
	if err != nil {
		return nil, err
	}
	if r.Columns == nil {
		return nil, fmt.Errorf("statement did not return rows")
	}
	return r, nil
}

// ExecStatement runs one parsed statement.
func (s *Session) ExecStatement(stmt ast.Statement) (*Result, error) {
	switch stmt := stmt.(type) {
	case *ast.CreateTable:
		return s.execCreateTable(stmt)
	case *ast.CreateView:
		return s.execCreateView(stmt)
	case *ast.Insert:
		return s.execInsert(stmt)
	case *ast.Drop:
		if err := s.cat.Drop(stmt.Kind, stmt.Name); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("dropped %s %s", strings.ToLower(stmt.Kind), stmt.Name)}, nil
	case *ast.QueryStmt:
		return s.runQuery(stmt.Query)
	case *ast.Explain:
		node, err := s.Plan(stmt.Query)
		if err != nil {
			return nil, err
		}
		return &Result{Message: plan.ExplainTree(node)}, nil
	case *ast.Expand:
		text, err := s.ExpandQuery(stmt.Query)
		if err != nil {
			return nil, err
		}
		return &Result{Message: text}, nil
	default:
		return nil, fmt.Errorf("unsupported statement %T", stmt)
	}
}

// Plan binds and optimizes a query.
func (s *Session) Plan(q *ast.Query) (plan.Node, error) {
	node, err := binder.New(s.cat).WithInline(s.opt.InlineMeasures).BindQuery(q)
	if err != nil {
		return nil, err
	}
	return optimizer.Optimize(node, s.opt), nil
}

func (s *Session) runQuery(q *ast.Query) (*Result, error) {
	node, err := s.Plan(q)
	if err != nil {
		return nil, err
	}
	s.lastStats.Reset()
	settings := *s.exec
	settings.Stats = &s.lastStats
	rows, err := exec.Run(node, &settings)
	if err != nil {
		return nil, err
	}
	sch := node.Schema()
	res := &Result{
		Columns: sch.ColNames(),
		Types:   make([]sqltypes.Type, len(sch.Cols)),
		Rows:    rows,
	}
	if res.Columns == nil {
		res.Columns = []string{}
	}
	for i, c := range sch.Cols {
		res.Types[i] = c.Typ
	}
	return res, nil
}

func (s *Session) execCreateTable(stmt *ast.CreateTable) (*Result, error) {
	names := make([]string, len(stmt.Cols))
	types := make([]sqltypes.Type, len(stmt.Cols))
	for i, c := range stmt.Cols {
		kind := sqltypes.KindFromName(c.TypeName)
		if kind == sqltypes.KindUnknown {
			return nil, fmt.Errorf("unknown type %s for column %s", c.TypeName, c.Name)
		}
		names[i] = c.Name
		types[i] = sqltypes.Type{Kind: kind}
	}
	if _, err := s.cat.CreateTable(stmt.Name, names, types, stmt.OrReplace); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("created table %s", stmt.Name)}, nil
}

func (s *Session) execCreateView(stmt *ast.CreateView) (*Result, error) {
	// Validate the definition now so errors surface at CREATE time.
	if _, err := binder.New(s.cat).BindQuery(stmt.Query); err != nil {
		return nil, fmt.Errorf("invalid view definition: %w", err)
	}
	if err := s.cat.CreateView(stmt.Name, stmt.Query, stmt.OrReplace); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("created view %s", stmt.Name)}, nil
}

func (s *Session) execInsert(stmt *ast.Insert) (*Result, error) {
	table, ok := s.cat.Table(stmt.Table)
	if !ok {
		return nil, fmt.Errorf("table %s does not exist", stmt.Table)
	}
	colNames := table.ColNames()

	// Column list: map provided columns to table positions.
	target := make([]int, len(colNames))
	for i := range target {
		target[i] = -1
	}
	width := len(colNames)
	if len(stmt.Columns) > 0 {
		width = len(stmt.Columns)
		for pos, name := range stmt.Columns {
			found := false
			for ti, cn := range colNames {
				if strings.EqualFold(cn, name) {
					target[ti] = pos
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("column %s does not exist in table %s", name, stmt.Table)
			}
		}
	} else {
		for i := range colNames {
			target[i] = i
		}
	}

	var srcRows [][]sqltypes.Value
	switch {
	case stmt.Query != nil:
		res, err := s.runQuery(stmt.Query)
		if err != nil {
			return nil, err
		}
		if len(res.Columns) != width {
			return nil, fmt.Errorf("INSERT expects %d columns, query returned %d", width, len(res.Columns))
		}
		srcRows = res.Rows
	default:
		for _, rowExprs := range stmt.Rows {
			if len(rowExprs) != width {
				return nil, fmt.Errorf("INSERT expects %d values, got %d", width, len(rowExprs))
			}
			row := make([]sqltypes.Value, len(rowExprs))
			for i, e := range rowExprs {
				v, err := evalConstExpr(e)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			srcRows = append(srcRows, row)
		}
	}

	rows := make([][]sqltypes.Value, len(srcRows))
	for ri, src := range srcRows {
		row := make([]sqltypes.Value, len(colNames))
		for ti := range colNames {
			if target[ti] >= 0 {
				row[ti] = src[target[ti]]
			} else {
				row[ti] = sqltypes.Null(table.ColTypes()[ti].Kind)
			}
		}
		rows[ri] = row
	}
	if err := table.Data.Insert(rows); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("inserted %d rows", len(rows))}, nil
}

// InsertRows bulk-inserts pre-built rows into a base table, bypassing
// SQL parsing (used by the benchmark harness to load large datasets).
func (s *Session) InsertRows(table string, rows [][]sqltypes.Value) error {
	t, ok := s.cat.Table(table)
	if !ok {
		return fmt.Errorf("table %s does not exist", table)
	}
	return t.Data.Insert(rows)
}

// evalConstExpr evaluates a constant literal expression for INSERT VALUES
// by wrapping it in a one-row query.
func evalConstExpr(e ast.Expr) (sqltypes.Value, error) {
	node, err := binder.New(catalog.New()).BindQuery(&ast.Query{
		Body: &ast.Select{Items: []ast.SelectItem{{Expr: e, Alias: "v"}}},
	})
	if err != nil {
		return sqltypes.Value{}, err
	}
	rows, err := exec.Run(node, exec.DefaultSettings())
	if err != nil {
		return sqltypes.Value{}, err
	}
	if len(rows) != 1 || len(rows[0]) != 1 {
		return sqltypes.Value{}, fmt.Errorf("INSERT value did not evaluate to a single value")
	}
	return rows[0][0], nil
}
