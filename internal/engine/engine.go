// Package engine dispatches SQL statements: DDL against the catalog, DML
// against storage, and queries through binder → optimizer → executor.
package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/binder"
	"github.com/measures-sql/msql/internal/catalog"
	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/optimizer"
	"github.com/measures-sql/msql/internal/parser"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/rollup"
	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/internal/wal"
)

// Result is the outcome of one statement.
type Result struct {
	// Columns are the output column names (empty for non-queries).
	Columns []string
	// Types are the output column types.
	Types []sqltypes.Type
	// Rows are the result rows (nil for non-queries).
	Rows [][]sqltypes.Value
	// Message describes the effect of a non-query statement.
	Message string
}

// Session is one database session: a catalog plus execution settings.
// Statement execution snapshots the settings under mu (see
// statementConfig), so mutating them through Update while another
// goroutine runs a query is safe: the in-flight statement keeps the
// configuration it started with.
type Session struct {
	cat *catalog.Catalog
	// mu guards exec, opt, and strategy against concurrent mutation.
	mu        sync.Mutex
	exec      *exec.Settings
	opt       optimizer.Options
	lastStats exec.Stats
	metrics   *Metrics
	tracer    exec.Tracer
	// strategy labels the per-strategy metrics buckets; SetStrategy in
	// the public API keeps it in sync with the options it sets.
	strategy string
	// prepared is the named prepared-statement registry (SQL
	// PREPARE/EXECUTE and the wire protocol share it).
	prepared *preparedRegistry
	// plans is the session plan cache; every prepared execution routes
	// through it.
	plans *planCache
	// stmts aggregates per-fingerprint execution statistics
	// (msql_stats.statements).
	stmts *statementStats
	// queries is the live-query registry backing
	// msql_stats.active_queries and KILL.
	queries *queryRegistry
	// cas serializes ExecCAS/InsertRowsCAS so their catalog-version
	// check-then-apply is atomic (the shard /apply endpoint's
	// exactly-once contract).
	cas sync.Mutex
	// rollups is the materialized rollup lattice (see rollups.go); nil
	// until SetRollups enables it. Atomic so the msql_stats.rollups
	// provider can read it without touching the session mutex.
	rollups atomic.Pointer[rollup.Lattice]
	// slow is the slow-query log configuration; a statement whose total
	// wall time meets the threshold emits one JSON line to w.
	slow struct {
		mu        sync.Mutex
		w         io.Writer
		threshold time.Duration
	}
	// dur is the write-ahead logging state (see durability.go); nil for
	// pure in-memory sessions.
	dur *durability
}

// Overrides carries per-statement setting overrides for the Context
// entry points; nil fields keep the session values.
type Overrides struct {
	// Workers overrides the executor worker budget.
	Workers *int
	// Limits replaces the session resource limits wholesale.
	Limits *exec.Limits
	// Timeout overrides (only) the statement timeout, after Limits.
	Timeout *time.Duration
	// Vectorized overrides the columnar-execution toggle.
	Vectorized *bool
	// Source labels the statement's origin in the live-query registry
	// ("repl", "api", "wire"); empty defaults to "api".
	Source string
	// RequestID is the caller-supplied request correlation ID. When set,
	// tracer spans for this statement are tagged with request_id and
	// query_id attributes, and the slow-query log carries it.
	RequestID string
}

// stmtConfig is the per-statement snapshot of session configuration:
// every statement runs to completion on the settings it started with.
type stmtConfig struct {
	exec     exec.Settings
	opt      optimizer.Options
	strategy string
}

// stmtEnv bundles one statement's context and configuration snapshot.
type stmtEnv struct {
	ctx context.Context
	cfg stmtConfig
	// execAttrs, when non-nil, is merged into the execute span's
	// attributes (prepared executions report cached= / cache_key=).
	execAttrs map[string]string
	// tracer is the statement's tracer: the session tracer, wrapped with
	// request/query ID tags when the statement carries a request ID.
	tracer exec.Tracer
	// live is this statement's entry in the live-query registry (nil for
	// bare planning envs).
	live *liveQuery
	// stats is the statement-stats accumulator for this statement's
	// fingerprint; nil when tracking is off or the statement is
	// untracked. Prepared EXECUTE retargets it to the underlying query's
	// fingerprint.
	stats *stmtStatEntry
	// requestID is the caller's correlation ID (Overrides.RequestID).
	requestID string
}

// span forwards one event to the statement tracer, if any.
func (env *stmtEnv) span(sp exec.Span) {
	if env.tracer != nil {
		env.tracer.Span(sp)
	}
}

// statementConfig snapshots the session settings under the lock and
// applies per-call overrides to the copy.
func (s *Session) statementConfig(ov *Overrides) stmtConfig {
	s.mu.Lock()
	cfg := stmtConfig{exec: *s.exec, opt: s.opt, strategy: s.strategy}
	s.mu.Unlock()
	if ov != nil {
		if ov.Workers != nil {
			cfg.exec.Workers = *ov.Workers
		}
		if ov.Limits != nil {
			cfg.exec.Limits = *ov.Limits
		}
		if ov.Timeout != nil {
			cfg.exec.Limits.Timeout = *ov.Timeout
		}
		if ov.Vectorized != nil {
			cfg.exec.Vectorized = *ov.Vectorized
		}
	}
	return cfg
}

// Update mutates the session settings under the lock. Statements that
// are already running keep their snapshot; the change applies to the
// next statement.
func (s *Session) Update(fn func(ex *exec.Settings, opt *optimizer.Options)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.exec, &s.opt)
}

// LastStats returns the executor counters of the most recent query. The
// copy is taken with atomic loads, so it is safe even while another
// goroutine's query is updating the counters.
func (s *Session) LastStats() exec.Stats { return s.lastStats.Snapshot() }

// Metrics returns the session's cumulative metrics registry.
func (s *Session) Metrics() *Metrics { return s.metrics }

// SetTracer installs (or with nil removes) a lifecycle tracer.
func (s *Session) SetTracer(t exec.Tracer) { s.tracer = t }

// SetStrategyLabel names the strategy bucket for subsequent queries.
func (s *Session) SetStrategyLabel(label string) {
	s.mu.Lock()
	s.strategy = label
	s.mu.Unlock()
}

// New creates an empty session with default settings.
func New() *Session {
	s := &Session{
		cat:      catalog.New(),
		exec:     exec.DefaultSettings(),
		opt:      optimizer.DefaultOptions(),
		metrics:  newMetrics(),
		strategy: "default",
		prepared: newPreparedRegistry(),
		plans:    newPlanCache(DefaultPlanCacheSize),
		stmts:    newStatementStats(),
		queries:  newQueryRegistry(),
	}
	s.metrics.SetPlanCacheSource(s.plans.counters)
	s.registerSystemTables()
	return s
}

// Catalog exposes the session catalog (for tooling like the CLI's \d).
func (s *Session) Catalog() *catalog.Catalog { return s.cat }

// ExecSettings exposes the execution settings for strategy experiments.
func (s *Session) ExecSettings() *exec.Settings { return s.exec }

// OptOptions returns a pointer to the optimizer options for strategy
// experiments.
func (s *Session) OptOptions() *optimizer.Options { return &s.opt }

// span forwards one event to the session tracer, if any.
func (s *Session) span(sp exec.Span) {
	if s.tracer != nil {
		s.tracer.Span(sp)
	}
}

// parseSpanned runs one parse callback, emitting the parse lifecycle
// span and classifying any failure into the error taxonomy (wrapped
// with the statement text and folded into the session metrics). Every
// parse in the engine — scripts, single statements, and prepared
// queries — funnels through here so span and error handling cannot
// drift between entry points.
func (s *Session) parseSpanned(sql string, parse func() (int, error)) error {
	start := time.Now()
	n, err := parse()
	sp := exec.Span{Phase: "parse", Name: "parse", DurNs: int64(time.Since(start))}
	if err == nil {
		sp.Attrs = map[string]string{"statements": fmt.Sprintf("%d", n)}
	} else {
		sp.Attrs = map[string]string{"error": err.Error()}
	}
	s.span(sp)
	if err != nil {
		err = exec.WithQuery(exec.Wrap(err, exec.CodeParse, exec.PhaseParse), sql)
		s.metrics.recordOutcome(s.strategyLabel(), err)
	}
	return err
}

// strategyLabel reads the current strategy label under the lock.
func (s *Session) strategyLabel() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.strategy
}

// parseStatements parses a script, emitting a parse span.
func (s *Session) parseStatements(sql string) ([]ast.Statement, error) {
	var stmts []ast.Statement
	err := s.parseSpanned(sql, func() (int, error) {
		var err error
		stmts, err = parser.ParseStatements(sql)
		return len(stmts), err
	})
	return stmts, err
}

// Execute parses and runs a script of one or more statements.
func (s *Session) Execute(sql string) ([]*Result, error) {
	return s.ExecuteContext(context.Background(), sql, nil)
}

// ExecuteContext parses and runs a script under ctx with per-call
// overrides (nil keeps the session settings). Errors carry the
// statement text.
func (s *Session) ExecuteContext(ctx context.Context, sql string, ov *Overrides) ([]*Result, error) {
	stmts, err := s.parseStatements(sql)
	if err != nil {
		return nil, err
	}
	results := make([]*Result, 0, len(stmts))
	for _, stmt := range stmts {
		r, err := s.ExecStatementContext(ctx, stmt, ov)
		if err != nil {
			return results, exec.WithQuery(err, sql)
		}
		results = append(results, r)
	}
	return results, nil
}

// Query runs a single statement that must produce rows.
func (s *Session) Query(sql string) (*Result, error) {
	return s.QueryContext(context.Background(), sql, nil)
}

// QueryContext runs a single row-producing statement under ctx with
// per-call overrides (nil keeps the session settings).
func (s *Session) QueryContext(ctx context.Context, sql string, ov *Overrides) (*Result, error) {
	var stmt ast.Statement
	err := s.parseSpanned(sql, func() (int, error) {
		var err error
		stmt, err = parser.ParseStatement(sql)
		return 1, err
	})
	if err != nil {
		return nil, err
	}
	r, err := s.ExecStatementContext(ctx, stmt, ov)
	if err != nil {
		return nil, exec.WithQuery(err, sql)
	}
	if r.Columns == nil {
		return nil, fmt.Errorf("statement did not return rows")
	}
	return r, nil
}

// ExecStatement runs one parsed statement.
func (s *Session) ExecStatement(stmt ast.Statement) (*Result, error) {
	return s.ExecStatementContext(context.Background(), stmt, nil)
}

// ExecStatementContext runs one parsed statement under ctx with
// per-call overrides. This is the engine's guard rail: the statement
// timeout is applied here (covering planning and execution), internal
// panics are recovered into CodeRuntime errors, every escaping error is
// classified into the taxonomy, and the outcome is folded into the
// session metrics.
func (s *Session) ExecStatementContext(ctx context.Context, stmt ast.Statement, ov *Overrides) (*Result, error) {
	return s.withStmtEnv(ctx, ov, s.statementInfo(stmt), func(env *stmtEnv) (*Result, error) {
		return s.execStatement(env, stmt)
	})
}

// withStmtEnv wraps one statement-shaped unit of work in the engine
// guard rail: settings snapshot, live-query registration (the KILL
// hook), statement timeout, panic recovery, error classification,
// metrics, statement statistics, and the slow-query log.
// Prepared-statement execution shares it with ExecStatementContext.
func (s *Session) withStmtEnv(ctx context.Context, ov *Overrides, info stmtInfo, fn func(env *stmtEnv) (*Result, error)) (res *Result, err error) {
	env := &stmtEnv{ctx: ctx, cfg: s.statementConfig(ov), tracer: s.tracer}
	source := "api"
	if ov != nil {
		if ov.Source != "" {
			source = ov.Source
		}
		env.requestID = ov.RequestID
	}
	start := time.Now()
	lq := &liveQuery{
		sql:         info.sql,
		fingerprint: info.fingerprint,
		source:      source,
		requestID:   env.requestID,
		strategy:    env.cfg.strategy,
		started:     start,
	}
	var done func()
	env.ctx, done = s.queries.register(env.ctx, lq)
	env.live = lq
	// Tag spans with correlation IDs only when the caller sent a request
	// ID, so untagged workloads see byte-identical spans.
	if env.requestID != "" && env.tracer != nil {
		env.tracer = &taggedTracer{t: env.tracer, attrs: map[string]string{
			"request_id": env.requestID,
			"query_id":   fmt.Sprintf("%d", lq.id),
		}}
	}
	env.stats = s.stmts.entry(info.fingerprint)
	if t := env.cfg.exec.Limits.Timeout; t > 0 {
		if _, has := env.ctx.Deadline(); !has {
			var cancel context.CancelFunc
			env.ctx, cancel = context.WithTimeout(env.ctx, t)
			defer cancel()
		}
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, exec.PanicError(r, exec.PhaseExecute)
		}
		if err != nil {
			err = exec.Wrap(err, exec.CodeRuntime, exec.PhaseExecute)
			s.metrics.recordOutcome(env.cfg.strategy, err)
		}
		done()
		// env.stats may have been retargeted by execPrepared, so read it
		// here rather than at registration time.
		if e := env.stats; e != nil {
			e.calls.Add(1)
			if err != nil {
				e.errors.Add(1)
			}
		}
		s.logSlowQuery(lq, time.Since(start), res, err)
	}()
	if err := env.ctx.Err(); err != nil {
		return nil, exec.CtxError(err)
	}
	return fn(env)
}

// SetSlowQueryLog installs (or with nil w removes) the slow-query log:
// statements whose total wall time is at least threshold emit one JSON
// line to w.
func (s *Session) SetSlowQueryLog(w io.Writer, threshold time.Duration) {
	s.slow.mu.Lock()
	s.slow.w = w
	s.slow.threshold = threshold
	s.slow.mu.Unlock()
}

// slowQueryRecord is one slow-query log line. Field order is the JSON
// field order, so log lines are stable for tooling.
type slowQueryRecord struct {
	TS          string  `json:"ts"`
	QueryID     int64   `json:"query_id"`
	RequestID   string  `json:"request_id,omitempty"`
	Source      string  `json:"source"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	SQL         string  `json:"sql"`
	DurMs       float64 `json:"dur_ms"`
	Rows        int     `json:"rows"`
	Code        string  `json:"code,omitempty"`
}

func (s *Session) logSlowQuery(lq *liveQuery, dur time.Duration, res *Result, err error) {
	s.slow.mu.Lock()
	w, threshold := s.slow.w, s.slow.threshold
	s.slow.mu.Unlock()
	if w == nil || dur < threshold {
		return
	}
	rec := slowQueryRecord{
		TS:          time.Now().UTC().Format(time.RFC3339Nano),
		QueryID:     lq.id,
		RequestID:   lq.requestID,
		Source:      lq.source,
		Fingerprint: lq.fingerprint,
		SQL:         lq.sql,
		DurMs:       float64(dur) / 1e6,
	}
	if res != nil {
		rec.Rows = len(res.Rows)
	}
	var ee *exec.Error
	if errors.As(err, &ee) {
		rec.Code = ee.Code.String()
	} else if err != nil {
		rec.Code = exec.CodeUnknown.String()
	}
	line, jerr := json.Marshal(rec)
	if jerr != nil {
		return
	}
	s.slow.mu.Lock()
	w.Write(append(line, '\n'))
	s.slow.mu.Unlock()
}

func (s *Session) execStatement(env *stmtEnv, stmt ast.Statement) (*Result, error) {
	switch stmt := stmt.(type) {
	case *ast.CreateTable:
		return s.execCreateTable(stmt)
	case *ast.CreateView:
		return s.execCreateView(stmt)
	case *ast.Insert:
		return s.execInsert(env, stmt)
	case *ast.Drop:
		return s.execDrop(stmt)
	case *ast.Truncate:
		return s.execTruncate(stmt)
	case *ast.QueryStmt:
		return s.runQuery(env, stmt.Query)
	case *ast.Prepare:
		return s.execPrepareStmt(stmt)
	case *ast.ExecuteStmt:
		return s.execExecuteStmt(env, stmt)
	case *ast.Deallocate:
		return s.execDeallocate(stmt)
	case *ast.Explain:
		if stmt.Execute != nil {
			return s.explainExecute(env, stmt.Execute, stmt.Analyze)
		}
		if stmt.Analyze {
			return s.explainAnalyze(env, stmt.Query)
		}
		node, _, err := s.planQuery(env, stmt.Query)
		if err != nil {
			return nil, err
		}
		return &Result{Message: plan.ExplainTree(node)}, nil
	case *ast.Expand:
		text, err := s.ExpandQuery(stmt.Query)
		if err != nil {
			return nil, exec.Wrap(err, exec.CodeExpand, exec.PhaseExpand)
		}
		return &Result{Message: text}, nil
	case *ast.Kill:
		if !s.queries.kill(stmt.ID) {
			return nil, exec.Wrap(fmt.Errorf("no running query with id %d", stmt.ID), exec.CodeBind, exec.PhaseBind)
		}
		return &Result{Message: fmt.Sprintf("killed query %d", stmt.ID)}, nil
	default:
		return nil, fmt.Errorf("unsupported statement %T", stmt)
	}
}

// Plan binds and optimizes a query.
func (s *Session) Plan(q *ast.Query) (plan.Node, error) {
	env := &stmtEnv{ctx: context.Background(), cfg: s.statementConfig(nil), tracer: s.tracer}
	node, _, err := s.planQuery(env, q)
	return node, err
}

// StatementStats snapshots the statement-stats store, sorted by
// fingerprint.
func (s *Session) StatementStats() []StatementStat { return s.stmts.snapshot() }

// SetStatementStats toggles statement-stats tracking. When off, the
// fingerprinting and recording overhead disappears from the statement
// path; accumulated statistics are retained.
func (s *Session) SetStatementStats(on bool) { s.stmts.setEnabled(on) }

// ResetStatementStats clears all accumulated statement statistics.
func (s *Session) ResetStatementStats() { s.stmts.reset() }

// ActiveQueries lists the session's in-flight statements, oldest first.
func (s *Session) ActiveQueries() []ActiveQuery { return s.queries.snapshot() }

// Kill cancels the in-flight statement with the given query ID. It
// returns false when no such query is running. The victim fails with
// the CANCELED taxonomy code at its next cooperative checkpoint.
func (s *Session) Kill(id int64) bool { return s.queries.kill(id) }

// planQuery binds and optimizes q, emitting bind / expand / optimize
// lifecycle spans and returning the total planning time.
func (s *Session) planQuery(env *stmtEnv, q *ast.Query) (plan.Node, int64, error) {
	return s.planQueryParams(env, q, nil)
}

// planQueryParams is planQuery for parameterized queries: kinds types
// the statement's placeholders (nil rejects parameters entirely).
func (s *Session) planQueryParams(env *stmtEnv, q *ast.Query, kinds []sqltypes.Kind) (plan.Node, int64, error) {
	b := binder.New(s.cat).WithInline(env.cfg.opt.InlineMeasures)
	if kinds != nil {
		b = b.WithParams(kinds)
	}
	start := time.Now()
	bound, err := b.BindQuery(q)
	bindNs := int64(time.Since(start))
	if err != nil {
		return nil, 0, exec.Wrap(err, exec.CodeBind, exec.PhaseBind)
	}
	env.span(exec.Span{Phase: "bind", Name: "bind", DurNs: bindNs})
	if env.tracer != nil {
		for _, name := range b.InlinedMeasures() {
			env.span(exec.Span{Phase: "expand", Name: name, Attrs: map[string]string{"strategy": "inline"}})
		}
		env.emitExpandSpans(bound)
	}

	start = time.Now()
	node, rep := optimizer.OptimizeWithReportContext(env.ctx, bound, env.cfg.opt)
	optNs := int64(time.Since(start))
	env.span(exec.Span{Phase: "optimize", Name: "optimize", DurNs: optNs})
	if env.tracer != nil {
		rule := func(name, attr string, count int) {
			if count > 0 {
				env.span(exec.Span{Phase: "optimize", Name: name, Attrs: map[string]string{attr: fmt.Sprintf("%d", count)}})
			}
		}
		rule("winmagic", "rewrites", rep.WinMagicRewrites)
		rule("pushdown", "conjuncts", rep.FilterPushdowns)
		rule("fold", "constants", rep.ConstantsFolded)
		rule("memo-strip", "subqueries", rep.MemoStripped)
	}
	return node, bindNs + optNs, nil
}

// emitExpandSpans reports each measure expansion present in the bound
// plan: BuildMeasureSubquery labels measure subqueries
// "measure <name> at <context>", which is exactly the (measure, context
// transform) pair the tracer wants.
func (env *stmtEnv) emitExpandSpans(n plan.Node) {
	plan.VisitNodeExprs(n, func(e plan.Expr) {
		plan.WalkExprs(e, func(x plan.Expr) {
			sq, ok := x.(*plan.Subquery)
			if !ok {
				return
			}
			if rest, ok := strings.CutPrefix(sq.Label, "measure "); ok {
				name, ctx := rest, ""
				if i := strings.Index(rest, " at "); i >= 0 {
					name, ctx = rest[:i], rest[i+len(" at "):]
				}
				attrs := map[string]string{"strategy": "subquery"}
				if ctx != "" {
					attrs["context"] = ctx
				}
				env.span(exec.Span{Phase: "expand", Name: name, Attrs: attrs})
			}
			env.emitExpandSpans(sq.Plan)
		})
	})
	for _, c := range n.Children() {
		env.emitExpandSpans(c)
	}
}

// execPlan runs an optimized plan with this session's settings: Stats
// are reset and collected into lastStats, the metrics registry is
// updated, and when withProfile is set (EXPLAIN ANALYZE) or a tracer is
// installed, per-operator metrics are collected too.
func (s *Session) execPlan(env *stmtEnv, node plan.Node, planNs int64, withProfile bool) ([][]sqltypes.Value, *exec.Profile, error) {
	env.live.setPhase(phaseExecute)
	s.lastStats.Reset()
	settings := env.cfg.exec
	settings.Stats = &s.lastStats
	var prof *exec.Profile
	if withProfile || env.tracer != nil {
		prof = exec.NewProfile(node)
		settings.Profile = prof
	}
	settings.Tracer = env.tracer

	start := time.Now()
	rows, err := exec.RunContext(env.ctx, node, &settings)
	execNs := int64(time.Since(start))
	if err != nil {
		env.span(exec.Span{Phase: "execute", Name: "query", DurNs: execNs,
			Attrs: map[string]string{"error": err.Error()}})
		return nil, nil, err
	}
	st := s.lastStats.Snapshot()
	s.metrics.recordQuery(env.cfg.strategy, len(rows), st, planNs, execNs)
	if e := env.stats; e != nil {
		e.rows.Add(int64(len(rows)))
		e.cacheHits.Add(st.SubqueryCacheHits)
		e.plan.Observe(planNs)
		e.exec.Observe(execNs)
	}
	attrs := map[string]string{
		"rows":    fmt.Sprintf("%d", len(rows)),
		"scanned": fmt.Sprintf("%d", st.RowsScanned),
		"evals":   fmt.Sprintf("%d", st.SubqueryEvals),
		"hits":    fmt.Sprintf("%d", st.SubqueryCacheHits),
	}
	if settings.Vectorized {
		attrs["vectorized"] = "true"
		attrs["batches"] = fmt.Sprintf("%d", st.VecBatches)
		attrs["kernel_rows"] = fmt.Sprintf("%d", st.VecKernelRows)
		attrs["fallback_rows"] = fmt.Sprintf("%d", st.VecFallbackRows)
	}
	if st.RollupHits > 0 {
		attrs["rollup_hits"] = fmt.Sprintf("%d", st.RollupHits)
	}
	for k, v := range env.execAttrs {
		attrs[k] = v
	}
	env.span(exec.Span{Phase: "execute", Name: "query", DurNs: execNs, Attrs: attrs})
	if prof != nil && env.tracer != nil {
		exec.PlanSpans(node, prof, env.tracer)
	}
	return rows, prof, nil
}

func (s *Session) runQuery(env *stmtEnv, q *ast.Query) (*Result, error) {
	node, planNs, err := s.planQuery(env, q)
	if err != nil {
		return nil, err
	}
	rows, _, err := s.execPlan(env, node, planNs, false)
	if err != nil {
		return nil, err
	}
	sch := node.Schema()
	res := &Result{
		Columns: sch.ColNames(),
		Types:   make([]sqltypes.Type, len(sch.Cols)),
		Rows:    rows,
	}
	if res.Columns == nil {
		res.Columns = []string{}
	}
	for i, c := range sch.Cols {
		res.Types[i] = c.Typ
	}
	return res, nil
}

// explainAnalyze executes the query with a Profile attached and renders
// the annotated plan plus a totals footer.
func (s *Session) explainAnalyze(env *stmtEnv, q *ast.Query) (*Result, error) {
	node, planNs, err := s.planQuery(env, q)
	if err != nil {
		return nil, err
	}
	rows, prof, err := s.execPlan(env, node, planNs, true)
	if err != nil {
		return nil, err
	}
	st := s.lastStats.Snapshot()
	totals := fmt.Sprintf("Totals: rows=%d scanned=%d evals=%d hits=%d fanouts=%d",
		len(rows), st.RowsScanned, st.SubqueryEvals, st.SubqueryCacheHits, st.ParallelFanouts)
	if st.VecBatches > 0 {
		totals += fmt.Sprintf(" batches=%d kernel=%d fallback=%d",
			st.VecBatches, st.VecKernelRows, st.VecFallbackRows)
	}
	msg := plan.ExplainAnalyzeTree(node, prof) + totals + "\n"
	return &Result{Message: msg}, nil
}

func (s *Session) execCreateTable(stmt *ast.CreateTable) (*Result, error) {
	names := make([]string, len(stmt.Cols))
	types := make([]sqltypes.Type, len(stmt.Cols))
	for i, c := range stmt.Cols {
		kind := sqltypes.KindFromName(c.TypeName)
		if kind == sqltypes.KindUnknown {
			return nil, fmt.Errorf("unknown type %s for column %s", c.TypeName, c.Name)
		}
		names[i] = c.Name
		types[i] = sqltypes.Type{Kind: kind}
	}
	defer s.lockDurable()()
	// Validate, then log, then apply: a record is only written for DDL
	// that will apply cleanly, and a failed append leaves the catalog
	// untouched — reads never observe an object whose creation failed.
	if err := s.cat.CheckCreate(stmt.Name, stmt.OrReplace); err != nil {
		return nil, err
	}
	if err := s.logMutation(&wal.Record{Type: wal.RecCreateTable, Name: stmt.Name,
		OrReplace: stmt.OrReplace, Cols: names, Types: types}); err != nil {
		return nil, err
	}
	if _, err := s.cat.CreateTable(stmt.Name, names, types, stmt.OrReplace); err != nil {
		return nil, err
	}
	// CREATE OR REPLACE detaches the old storage instance; drop any
	// lattice nodes materialized over it.
	s.rollupDDL(stmt.Name)
	return &Result{Message: fmt.Sprintf("created table %s", stmt.Name)}, nil
}

func (s *Session) execCreateView(stmt *ast.CreateView) (*Result, error) {
	// Validate the definition now so errors surface at CREATE time.
	if _, err := binder.New(s.cat).BindQuery(stmt.Query); err != nil {
		return nil, fmt.Errorf("invalid view definition: %w", err)
	}
	defer s.lockDurable()()
	if err := s.cat.CheckCreate(stmt.Name, stmt.OrReplace); err != nil {
		return nil, err
	}
	// Views are logged as rendered SQL and re-parsed at recovery.
	if err := s.logMutation(&wal.Record{Type: wal.RecCreateView, Name: stmt.Name,
		OrReplace: stmt.OrReplace, SQL: ast.FormatQuery(stmt.Query)}); err != nil {
		return nil, err
	}
	if err := s.cat.CreateView(stmt.Name, stmt.Query, stmt.OrReplace); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("created view %s", stmt.Name)}, nil
}

func (s *Session) execDrop(stmt *ast.Drop) (*Result, error) {
	defer s.lockDurable()()
	if err := s.cat.CheckDrop(stmt.Kind, stmt.Name); err != nil {
		return nil, err
	}
	if err := s.logMutation(&wal.Record{Type: wal.RecDrop, Kind: stmt.Kind, Name: stmt.Name}); err != nil {
		return nil, err
	}
	if err := s.cat.Drop(stmt.Kind, stmt.Name); err != nil {
		return nil, err
	}
	s.rollupDDL(stmt.Name)
	return &Result{Message: fmt.Sprintf("dropped %s %s", strings.ToLower(stmt.Kind), stmt.Name)}, nil
}

// execTruncate deletes every row of a base table, keeping the schema.
// It follows the same durability contract as INSERT (validate, log,
// apply under the mutation lock) and the same invalidation contract
// (BumpVersion, so cached plans — including identical-binding result
// memos — built over the old rows can never be served again).
func (s *Session) execTruncate(stmt *ast.Truncate) (*Result, error) {
	defer s.lockDurable()()
	table, ok := s.cat.Table(stmt.Table)
	if !ok {
		return nil, fmt.Errorf("table %s does not exist", stmt.Table)
	}
	if err := s.logMutation(&wal.Record{Type: wal.RecTruncate, Name: stmt.Table}); err != nil {
		return nil, err
	}
	n := table.Data.NumRows()
	table.Data.Truncate()
	// Data changed: invalidate cached plans built against the old rows.
	s.cat.BumpVersion()
	// Reset rollup nodes eagerly: a later refill to the old row count
	// must not let a length-based delta check miss the truncation.
	s.rollupTruncate(stmt.Table)
	return &Result{Message: fmt.Sprintf("truncated table %s (%d rows)", stmt.Table, n)}, nil
}

func (s *Session) execInsert(env *stmtEnv, stmt *ast.Insert) (*Result, error) {
	table, ok := s.cat.Table(stmt.Table)
	if !ok {
		return nil, fmt.Errorf("table %s does not exist", stmt.Table)
	}
	colNames := table.ColNames()

	// Column list: map provided columns to table positions.
	target := make([]int, len(colNames))
	for i := range target {
		target[i] = -1
	}
	width := len(colNames)
	if len(stmt.Columns) > 0 {
		width = len(stmt.Columns)
		for pos, name := range stmt.Columns {
			found := false
			for ti, cn := range colNames {
				if strings.EqualFold(cn, name) {
					target[ti] = pos
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("column %s does not exist in table %s", name, stmt.Table)
			}
		}
	} else {
		for i := range colNames {
			target[i] = i
		}
	}

	var srcRows [][]sqltypes.Value
	switch {
	case stmt.Query != nil:
		res, err := s.runQuery(env, stmt.Query)
		if err != nil {
			return nil, err
		}
		if len(res.Columns) != width {
			return nil, fmt.Errorf("INSERT expects %d columns, query returned %d", width, len(res.Columns))
		}
		srcRows = res.Rows
	default:
		for _, rowExprs := range stmt.Rows {
			if len(rowExprs) != width {
				return nil, fmt.Errorf("INSERT expects %d values, got %d", width, len(rowExprs))
			}
			row := make([]sqltypes.Value, len(rowExprs))
			for i, e := range rowExprs {
				v, err := evalConstExpr(e)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			srcRows = append(srcRows, row)
		}
	}

	rows := make([][]sqltypes.Value, len(srcRows))
	for ri, src := range srcRows {
		row := make([]sqltypes.Value, len(colNames))
		for ti := range colNames {
			if target[ti] >= 0 {
				row[ti] = src[target[ti]]
			} else {
				row[ti] = sqltypes.Null(table.ColTypes()[ti].Kind)
			}
		}
		rows[ri] = row
	}
	defer s.lockDurable()()
	// Re-resolve the table under the mutation lock: a concurrent DROP or
	// CREATE OR REPLACE since the planning lookup above has already been
	// logged, and an insert record written after it would never replay
	// (the WAL would describe inserting into a dropped table). Fail the
	// statement instead of logging an unreplayable history.
	if cur, ok := s.cat.Table(stmt.Table); !ok {
		return nil, fmt.Errorf("table %s does not exist", stmt.Table)
	} else if cur != table {
		return nil, fmt.Errorf("table %s was concurrently replaced", stmt.Table)
	}
	// Coerce first so the log carries exactly the values that will be
	// stored; log before applying so an acknowledged insert is always
	// recoverable, and a failed log append changes nothing in memory.
	coerced, err := table.Data.CoerceRows(rows)
	if err != nil {
		return nil, err
	}
	if err := s.logMutation(insertRecord(stmt.Table, coerced)); err != nil {
		return nil, err
	}
	table.Data.InsertPrepared(coerced)
	// Data changed: invalidate cached plans built against the old rows.
	s.cat.BumpVersion()
	s.rollupMutation(stmt.Table)
	return &Result{Message: fmt.Sprintf("inserted %d rows", len(rows))}, nil
}

// InsertRows bulk-inserts pre-built rows into a base table, bypassing
// SQL parsing (used by the benchmark harness to load large datasets).
func (s *Session) InsertRows(table string, rows [][]sqltypes.Value) error {
	// The lookup happens under the mutation lock so the logged record
	// order matches apply order (see execInsert).
	defer s.lockDurable()()
	t, ok := s.cat.Table(table)
	if !ok {
		return fmt.Errorf("table %s does not exist", table)
	}
	coerced, err := t.Data.CoerceRows(rows)
	if err != nil {
		return err
	}
	if err := s.logMutation(insertRecord(table, coerced)); err != nil {
		return err
	}
	t.Data.InsertPrepared(coerced)
	s.cat.BumpVersion()
	s.rollupMutation(table)
	return nil
}

// evalConstExpr evaluates a constant literal expression for INSERT VALUES
// by wrapping it in a one-row query.
func evalConstExpr(e ast.Expr) (sqltypes.Value, error) {
	node, err := binder.New(catalog.New()).BindQuery(&ast.Query{
		Body: &ast.Select{Items: []ast.SelectItem{{Expr: e, Alias: "v"}}},
	})
	if err != nil {
		return sqltypes.Value{}, err
	}
	rows, err := exec.Run(node, exec.DefaultSettings())
	if err != nil {
		return sqltypes.Value{}, err
	}
	if len(rows) != 1 || len(rows[0]) != 1 {
		return sqltypes.Value{}, fmt.Errorf("INSERT value did not evaluate to a single value")
	}
	return rows[0][0], nil
}
