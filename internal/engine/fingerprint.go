// Statement fingerprinting for the statement-stats store: queries that
// differ only in literal values share one fingerprint, in the
// pg_stat_statements tradition. The normalization reuses the plan
// cache's canonicalization (ast.FormatQuery over the parsed tree, which
// already renders parameters as $n) and additionally replaces every
// literal with a `?` placeholder, so `WHERE revenue > 10` and
// `WHERE revenue > 99` aggregate into the same statistics row.
package engine

import (
	"strings"

	"github.com/measures-sql/msql/internal/ast"
)

// stmtInfo is what the guard rail needs to know about the statement it
// wraps: a one-line display text (for the live-query registry and the
// slow-query log) and the stats-store fingerprint (empty = untracked).
type stmtInfo struct {
	sql         string
	fingerprint string
}

// oneLine collapses the printer's multi-line rendering into a single
// display line.
func oneLine(s string) string { return strings.Join(strings.Fields(s), " ") }

// statementInfo derives the display text and fingerprint for one parsed
// statement. When the stats store is disabled, fingerprinting (which
// deep-copies the query) is skipped entirely — that is the overhead
// msqlbench's E27 measures.
func (s *Session) statementInfo(stmt ast.Statement) stmtInfo {
	track := s.stmts.enabledNow()
	switch st := stmt.(type) {
	case *ast.QueryStmt:
		info := stmtInfo{sql: oneLine(ast.FormatQuery(st.Query))}
		if track {
			info.fingerprint = fingerprintQuery(st.Query)
		}
		return info
	case *ast.ExecuteStmt:
		// Retargeted to the underlying prepared query's fingerprint in
		// execPrepared, so EXECUTE and direct SQL aggregate together.
		return stmtInfo{sql: oneLine(ast.FormatStatement(st))}
	case *ast.Insert:
		// INSERT values are high-cardinality; fingerprint by target table.
		info := stmtInfo{sql: "INSERT INTO " + st.Table}
		if track {
			info.fingerprint = info.sql
		}
		return info
	case *ast.Explain, *ast.Expand:
		// Diagnostic statements stay out of the stats store.
		return stmtInfo{sql: oneLine(ast.FormatStatement(st))}
	case *ast.Kill:
		return stmtInfo{sql: oneLine(ast.FormatStatement(st))}
	default:
		// DDL and the prepared-statement verbs: low cardinality, the
		// formatted text is its own fingerprint.
		info := stmtInfo{sql: oneLine(ast.FormatStatement(stmt))}
		if track {
			info.fingerprint = info.sql
		}
		return info
	}
}

// fingerprintQuery renders q with literals replaced by ?, on one line.
func fingerprintQuery(q *ast.Query) string {
	return oneLine(ast.FormatQuery(normalizeQuery(q)))
}

// normalizeQuery deep-copies q with every literal replaced by a
// placeholder (ast.Param with index 0 prints as `?`). The walk descends
// into CTEs, set operations, derived tables, and subquery expressions,
// so literals anywhere in the statement normalize.
func normalizeQuery(q *ast.Query) *ast.Query {
	if q == nil {
		return nil
	}
	c := *q
	if q.With != nil {
		c.With = make([]ast.CTE, len(q.With))
		for i, cte := range q.With {
			cte.Query = normalizeQuery(cte.Query)
			c.With[i] = cte
		}
	}
	c.Body = normalizeBody(q.Body)
	if q.OrderBy != nil {
		c.OrderBy = make([]ast.OrderItem, len(q.OrderBy))
		for i, o := range q.OrderBy {
			o.Expr = normalizeExpr(o.Expr)
			c.OrderBy[i] = o
		}
	}
	c.Limit = normalizeExpr(q.Limit)
	c.Offset = normalizeExpr(q.Offset)
	return &c
}

func normalizeBody(b ast.Body) ast.Body {
	switch b := b.(type) {
	case *ast.Select:
		return normalizeSelect(b)
	case *ast.SetOp:
		c := *b
		c.Left = normalizeBody(b.Left)
		c.Right = normalizeBody(b.Right)
		return &c
	case *ast.SubqueryBody:
		c := *b
		c.Query = normalizeQuery(b.Query)
		return &c
	default:
		return b
	}
}

func normalizeSelect(sel *ast.Select) *ast.Select {
	c := *sel
	if sel.Items != nil {
		c.Items = make([]ast.SelectItem, len(sel.Items))
		for i, it := range sel.Items {
			it.Expr = normalizeExpr(it.Expr)
			c.Items[i] = it
		}
	}
	c.From = normalizeTableExpr(sel.From)
	c.Where = normalizeExpr(sel.Where)
	if sel.GroupBy != nil {
		c.GroupBy = make([]ast.GroupItem, len(sel.GroupBy))
		for i, g := range sel.GroupBy {
			g.Exprs = normalizeExprList(g.Exprs)
			if g.Sets != nil {
				sets := make([][]ast.Expr, len(g.Sets))
				for j, set := range g.Sets {
					sets[j] = normalizeExprList(set)
				}
				g.Sets = sets
			}
			c.GroupBy[i] = g
		}
	}
	c.Having = normalizeExpr(sel.Having)
	c.Qualify = normalizeExpr(sel.Qualify)
	return &c
}

func normalizeTableExpr(te ast.TableExpr) ast.TableExpr {
	switch te := te.(type) {
	case *ast.SubqueryTable:
		c := *te
		c.Query = normalizeQuery(te.Query)
		return &c
	case *ast.JoinExpr:
		c := *te
		c.Left = normalizeTableExpr(te.Left)
		c.Right = normalizeTableExpr(te.Right)
		c.On = normalizeExpr(te.On)
		return &c
	default: // *ast.TableName or nil
		return te
	}
}

func normalizeExprList(list []ast.Expr) []ast.Expr {
	if list == nil {
		return nil
	}
	out := make([]ast.Expr, len(list))
	for i, e := range list {
		out[i] = normalizeExpr(e)
	}
	return out
}

// normalizeExpr applies the literal replacement through TransformExpr
// and recurses into subquery-bearing expressions (which TransformExpr
// deliberately does not descend).
func normalizeExpr(e ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	return ast.TransformExpr(e, func(x ast.Expr) ast.Expr {
		switch x := x.(type) {
		case *ast.NumberLit, *ast.StringLit, *ast.BoolLit, *ast.DateLit:
			// NULL stays: it changes typing and plan shape, and NULL
			// literals are not the parameter-like values that explode
			// fingerprint cardinality.
			return &ast.Param{Index: 0}
		case *ast.InSubquery:
			c := *x
			c.Query = normalizeQuery(x.Query)
			return &c
		case *ast.Exists:
			c := *x
			c.Query = normalizeQuery(x.Query)
			return &c
		case *ast.ScalarSubquery:
			c := *x
			c.Query = normalizeQuery(x.Query)
			return &c
		default:
			return x
		}
	})
}
