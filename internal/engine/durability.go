// Durable sessions: an engine Session whose catalog and data mutations
// are written through a WAL (internal/wal) before they are
// acknowledged, with checkpoint snapshots bounding recovery time.
//
// The contract with the WAL layer:
//
//   - Every mutation holds dur.mu across validate, append-to-log, and
//     apply-to-memory, so log order equals apply order and replay is
//     deterministic. INSERT re-resolves its target table under dur.mu,
//     so a record can never be logged after the DROP or CREATE OR
//     REPLACE that removed its table.
//   - Mutations validate first and log before they apply: a record is
//     only written for a statement that will apply cleanly, and a
//     failed append changes nothing in memory — reads never observe a
//     change whose statement was reported as failed.
//   - INSERT coerces rows first (storage.CoerceRows), logs exactly the
//     coerced values, then applies with InsertPrepared — the replayed
//     table is byte-for-byte the pre-crash table.
//   - A failed append poisons the WAL manager: the statement fails, and
//     so does every later mutation. A session that lost durability
//     cannot quietly keep acknowledging writes.
//   - Checkpoint serializes against mutations on the same dur.mu, so
//     the snapshot it writes is consistent with the log position it
//     records.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/parser"
	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/internal/wal"
)

// durability is the session's write-ahead logging state; nil on pure
// in-memory sessions.
type durability struct {
	// mu serializes mutations (apply + log) and checkpoints.
	mu  sync.Mutex
	wal *wal.Manager
}

// NewDurable opens (or creates) a durable session backed by dir:
// recovery replays the checkpoint snapshot plus the log tail into a
// fresh session, and every later mutation is logged before it is
// acknowledged.
func NewDurable(dir string, opts wal.Options) (*Session, error) {
	m, dump, err := wal.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	s := New()
	if err := s.restoreDump(dump); err != nil {
		m.Close()
		return nil, fmt.Errorf("recovery of %s: %w", dir, err)
	}
	// Continue the pre-crash catalog version sequence so stale cached
	// plans can never match the recovered catalog.
	s.cat.RestoreVersion(dump.Version)
	s.dur = &durability{wal: m}
	s.metrics.SetStorageSource(func() StorageCounters { return storageCounters(m) })
	return s, nil
}

// restoreDump loads a recovered store into the (empty) session.
func (s *Session) restoreDump(dump *wal.StoreDump) error {
	for i := range dump.Tables {
		td := &dump.Tables[i]
		bt, err := s.cat.CreateTable(td.Name, td.Cols, td.Types, false)
		if err != nil {
			return fmt.Errorf("table %s: %w", td.Name, err)
		}
		// Rows were coerced before they were logged; apply them verbatim.
		bt.Data.InsertPrepared(td.Rows)
	}
	for _, vd := range dump.Views {
		q, err := parser.ParseQuery(vd.SQL)
		if err != nil {
			return fmt.Errorf("view %s: %w", vd.Name, err)
		}
		// No bind validation here: views re-bind on use, and view-on-view
		// definitions must restore regardless of dump order.
		if err := s.cat.CreateView(vd.Name, q, true); err != nil {
			return fmt.Errorf("view %s: %w", vd.Name, err)
		}
	}
	return nil
}

// Durable reports whether this session writes through a WAL.
func (s *Session) Durable() bool { return s.dur != nil }

// WALStats returns the durability layer's counters (zero value for
// in-memory sessions).
func (s *Session) WALStats() wal.Stats {
	if s.dur == nil {
		return wal.Stats{}
	}
	return s.dur.wal.StatsSnapshot()
}

// WALRecovery returns what recovery found when the session was opened.
func (s *Session) WALRecovery() wal.RecoveryInfo {
	if s.dur == nil {
		return wal.RecoveryInfo{}
	}
	return s.dur.wal.Recovery()
}

// lockDurable takes the durability mutation lock when the session is
// durable; the returned function releases it. In-memory sessions pay a
// single nil check.
func (s *Session) lockDurable() func() {
	if s.dur == nil {
		return func() {}
	}
	s.dur.mu.Lock()
	return s.dur.mu.Unlock
}

// logMutation appends one mutation record to the WAL. Callers hold
// dur.mu (via lockDurable), have validated that the mutation will apply
// cleanly, and apply it to memory only after this returns nil; an error
// here means the change did not become durable — the statement fails
// with nothing applied, and the poisoned manager fails everything after
// it.
func (s *Session) logMutation(rec *wal.Record) error {
	if s.dur == nil {
		return nil
	}
	return s.dur.wal.Append(rec)
}

// buildDump snapshots the full logical store. Callers hold dur.mu, so
// the dump is consistent with the current log position. Objects are
// sorted by name for deterministic snapshot bytes.
func (s *Session) buildDump() *wal.StoreDump {
	dump := &wal.StoreDump{Version: s.cat.Version()}
	tableNames, viewNames := s.cat.Names()
	sort.Strings(tableNames)
	sort.Strings(viewNames)
	for _, name := range tableNames {
		bt, ok := s.cat.Table(name)
		if !ok {
			continue
		}
		dump.Tables = append(dump.Tables, wal.TableDump{
			Name:  bt.Name(),
			Cols:  bt.ColNames(),
			Types: bt.ColTypes(),
			Rows:  bt.Rows(),
		})
	}
	for _, name := range viewNames {
		v, ok := s.cat.View(name)
		if !ok {
			continue
		}
		dump.Views = append(dump.Views, wal.ViewDump{
			Name: v.ViewName,
			SQL:  ast.FormatQuery(v.Query),
		})
	}
	return dump
}

// Checkpoint writes a snapshot of the full store and truncates the WAL,
// bounding the next recovery's replay work. No-op on in-memory
// sessions.
func (s *Session) Checkpoint() error {
	if s.dur == nil {
		return nil
	}
	s.dur.mu.Lock()
	defer s.dur.mu.Unlock()
	return s.dur.wal.Checkpoint(s.buildDump())
}

// SyncWAL forces everything logged so far onto disk regardless of the
// sync policy (graceful drain calls this). No-op on in-memory sessions.
func (s *Session) SyncWAL() error {
	if s.dur == nil {
		return nil
	}
	return s.dur.wal.Sync()
}

// CloseDurability flushes and closes the WAL. The session itself stays
// usable for reads; mutations fail once the log is closed.
func (s *Session) CloseDurability() error {
	if s.dur == nil {
		return nil
	}
	return s.dur.wal.Close()
}

// storageCounters adapts a WAL manager's stats to the metrics section.
func storageCounters(m *wal.Manager) StorageCounters {
	st := m.StatsSnapshot()
	return StorageCounters{
		WALAppends:       st.Appends,
		WALAppendBytes:   st.AppendBytes,
		WALFsyncs:        st.Fsyncs,
		WALBytes:         st.WALBytes,
		WALSeq:           st.Seq,
		WALDurableSeq:    st.DurableSeq,
		Checkpoints:      st.Checkpoints,
		CheckpointNs:     st.CheckpointNs,
		LastCheckpointNs: st.LastCheckpointNs,
		RecoveryNs:       st.RecoveryNs,
		RecoveredRecords: st.RecoveredRecords,
		TornTailBytes:    st.TornTailBytes,
		SyncPolicy:       m.Policy().String(),
	}
}

// insertRecord builds the WAL record for an INSERT of already-coerced
// rows.
func insertRecord(table string, rows [][]sqltypes.Value) *wal.Record {
	return &wal.Record{Type: wal.RecInsert, Name: table, Rows: rows}
}
