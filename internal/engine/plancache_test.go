package engine

// Plan-cache correctness: hit/miss accounting, invalidation on INSERT
// and DDL, settings-key separation, LRU eviction, volatile and
// disabled-cache bypasses, EXPLAIN EXECUTE's cache footer, and a
// concurrent Prepare/Execute/Insert/resize hammer meant to run under
// -race.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/measures-sql/msql/internal/sqltypes"
)

func newPrepSession(t *testing.T) *Session {
	t.Helper()
	s := New()
	for _, sql := range []string{
		"CREATE TABLE t (a INT, b STRING)",
		"INSERT INTO t VALUES (1,'x'),(2,'y'),(3,'z')",
	} {
		if _, err := s.Execute(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	return s
}

// TestPreparedSQLRoundTrip drives the SQL-level surface end to end:
// PREPARE, EXECUTE (cold then warm), handle-based ? placeholders,
// invalidation on INSERT, and DEALLOCATE semantics.
func TestPreparedSQLRoundTrip(t *testing.T) {
	s := newPrepSession(t)
	mustExec := func(sql string) {
		t.Helper()
		if _, err := s.Execute(sql); err != nil {
			t.Fatal(sql, err)
		}
	}
	mustExec("PREPARE q AS SELECT a, b FROM t WHERE a >= $1 ORDER BY a")
	r, err := s.Query("EXECUTE q(2)")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 || r.Rows[0][0].String() != "2" {
		t.Fatalf("rows=%v", r.Rows)
	}
	if r, err = s.Query("EXECUTE q(2)"); err != nil || len(r.Rows) != 2 {
		t.Fatalf("warm execute: rows=%v err=%v", r, err)
	}
	pc := s.PlanCacheCountersSnapshot()
	if pc.Hits != 1 || pc.Misses != 1 || pc.Entries != 1 {
		t.Fatalf("after cold+warm: %+v", pc)
	}

	// SQL PREPARE of an existing name must error; DEALLOCATE frees it.
	if _, err := s.Execute("PREPARE q AS SELECT a FROM t"); err == nil {
		t.Fatal("duplicate PREPARE q succeeded")
	}
	mustExec("PREPARE q2 AS SELECT COUNT(*) FROM t WHERE a > $1")
	mustExec("DEALLOCATE q2")
	if _, err := s.Query("EXECUTE q2(0)"); err == nil {
		t.Fatal("EXECUTE after DEALLOCATE succeeded")
	}

	// ? placeholders through the handle API share the same cache.
	ps, err := s.Prepare("SELECT COUNT(*) FROM t WHERE a > ?")
	if err != nil {
		t.Fatal(err)
	}
	if ps.NumParams() != 1 {
		t.Fatalf("NumParams=%d", ps.NumParams())
	}
	res, err := ps.Execute(sqltypes.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "2" {
		t.Fatalf("count=%v", res.Rows)
	}

	// INSERT bumps the catalog version: the stale entry is removed at
	// the next lookup and counted as an invalidation, and the replanned
	// query sees the new row.
	mustExec("INSERT INTO t VALUES (4,'w')")
	if r, err = s.Query("EXECUTE q(2)"); err != nil || len(r.Rows) != 3 {
		t.Fatalf("after insert: rows=%v err=%v", r, err)
	}
	pc = s.PlanCacheCountersSnapshot()
	if pc.Invalidations != 1 {
		t.Fatalf("after insert: %+v", pc)
	}
}

// TestPlanCacheSettingsSeparateEntries: the same prepared statement
// executed under different execution settings must occupy different
// cache entries — a plan compiled vectorized at 4 workers is not the
// plan for row mode at 1 worker.
func TestPlanCacheSettingsSeparateEntries(t *testing.T) {
	s := newPrepSession(t)
	ps, err := s.Prepare("SELECT a FROM t WHERE a >= $1 ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	on, off := true, false
	w1, w4 := 1, 4
	ovs := []*Overrides{
		{Vectorized: &on, Workers: &w1},
		{Vectorized: &off, Workers: &w1},
		{Vectorized: &on, Workers: &w4},
	}
	args := []sqltypes.Value{sqltypes.NewInt(2)}
	for _, ov := range ovs {
		if _, err := ps.ExecuteContext(ctx, args, ov); err != nil {
			t.Fatal(err)
		}
	}
	pc := s.PlanCacheCountersSnapshot()
	if pc.Entries != 3 || pc.Misses != 3 || pc.Hits != 0 {
		t.Fatalf("after 3 distinct settings: %+v", pc)
	}
	for _, ov := range ovs {
		if _, err := ps.ExecuteContext(ctx, args, ov); err != nil {
			t.Fatal(err)
		}
	}
	pc = s.PlanCacheCountersSnapshot()
	if pc.Entries != 3 || pc.Hits != 3 {
		t.Fatalf("after re-running each: %+v", pc)
	}

	// Different parameter kinds also separate entries: $1 as DOUBLE
	// plans a different comparison than $1 as INTEGER.
	if _, err := ps.ExecuteContext(ctx, []sqltypes.Value{sqltypes.NewFloat(2)}, ovs[0]); err != nil {
		t.Fatal(err)
	}
	pc = s.PlanCacheCountersSnapshot()
	if pc.Entries != 4 {
		t.Fatalf("DOUBLE kind did not get its own entry: %+v", pc)
	}
}

// TestPlanCacheLRUEviction: a tiny cap evicts the least recently used
// entry, and a shrink via SetPlanCacheSize evicts down to the new cap.
func TestPlanCacheLRUEviction(t *testing.T) {
	s := newPrepSession(t)
	s.SetPlanCacheSize(2)
	// Three distinct query texts: the cache keys on normalized SQL, so
	// statements sharing a text would (correctly) share one entry.
	for name, sql := range map[string]string{
		"s1": "SELECT a FROM t WHERE a >= $1",
		"s2": "SELECT b FROM t WHERE a >= $1",
		"s3": "SELECT a, b FROM t WHERE a >= $1",
	} {
		if _, err := s.Execute(fmt.Sprintf("PREPARE %s AS %s", name, sql)); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []string{"EXECUTE s1(1)", "EXECUTE s2(1)", "EXECUTE s3(1)"} {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	pc := s.PlanCacheCountersSnapshot()
	if pc.Entries != 2 || pc.Evictions != 1 {
		t.Fatalf("after 3 inserts at cap 2: %+v", pc)
	}
	// s1 was the LRU victim: re-running it is a miss; s3 stayed hot.
	if _, err := s.Query("EXECUTE s3(1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("EXECUTE s1(1)"); err != nil {
		t.Fatal(err)
	}
	pc = s.PlanCacheCountersSnapshot()
	if pc.Hits != 1 || pc.Misses != 4 {
		t.Fatalf("LRU order wrong: %+v", pc)
	}
	s.SetPlanCacheSize(1)
	pc = s.PlanCacheCountersSnapshot()
	if pc.Entries != 1 {
		t.Fatalf("shrink did not evict: %+v", pc)
	}
}

// TestPlanCacheDisabledBypasses: size 0 turns every prepared execution
// into a bypass — no lookups, no entries, still correct results.
func TestPlanCacheDisabledBypasses(t *testing.T) {
	s := newPrepSession(t)
	s.SetPlanCacheSize(0)
	ps, err := s.Prepare("SELECT COUNT(*) FROM t WHERE a > ?")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := ps.Execute(sqltypes.NewInt(1))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].String() != "2" {
			t.Fatalf("run %d: %v", i, res.Rows)
		}
	}
	pc := s.PlanCacheCountersSnapshot()
	if pc.Bypasses != 3 || pc.Hits != 0 || pc.Misses != 0 || pc.Entries != 0 {
		t.Fatalf("disabled cache: %+v", pc)
	}
}

// TestPlanCacheVolatileBypass: a plan containing RANDOM() must be
// replanned per execution — caching it would freeze the random stream.
func TestPlanCacheVolatileBypass(t *testing.T) {
	s := newPrepSession(t)
	ps, err := s.Prepare("SELECT a, RANDOM() FROM t WHERE a >= ?")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := ps.Execute(sqltypes.NewInt(1)); err != nil {
			t.Fatal(err)
		}
	}
	pc := s.PlanCacheCountersSnapshot()
	if pc.Entries != 0 || pc.Hits != 0 || pc.Bypasses != 2 {
		t.Fatalf("volatile plan was cached: %+v", pc)
	}
}

// TestPlanCacheResultMemo: repeated executions of a cache-resident
// entry with identical arguments are answered from the result memo;
// different arguments are not, and an INSERT drops the memo with its
// entry so fresh rows are returned.
func TestPlanCacheResultMemo(t *testing.T) {
	s := newPrepSession(t)
	ps, err := s.Prepare("SELECT a, b FROM t WHERE a >= ? ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	run := func(arg int64) *Result {
		t.Helper()
		res, err := ps.Execute(sqltypes.NewInt(arg))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Execution 1 plans (miss), 2 executes warm and stores the memo,
	// 3 hits the memo.
	r1, r2, r3 := run(2), run(2), run(2)
	pc := s.PlanCacheCountersSnapshot()
	if pc.MemoHits != 1 || pc.Hits != 2 || pc.Misses != 1 {
		t.Fatalf("after 3 identical executions: %+v", pc)
	}
	for _, r := range []*Result{r2, r3} {
		if fmt.Sprint(r.Rows) != fmt.Sprint(r1.Rows) {
			t.Fatalf("memo rows diverge: %v vs %v", r.Rows, r1.Rows)
		}
	}
	// A different binding misses the memo but still reuses the plan.
	if r := run(3); len(r.Rows) != 1 {
		t.Fatalf("arg=3 rows=%v", r.Rows)
	}
	pc = s.PlanCacheCountersSnapshot()
	if pc.MemoHits != 1 || pc.Hits != 3 {
		t.Fatalf("distinct binding hit the memo: %+v", pc)
	}
	// INSERT invalidates the entry — the memo dies with it, so the next
	// identical execution sees the new row.
	if _, err := s.Execute("INSERT INTO t VALUES (9,'n')"); err != nil {
		t.Fatal(err)
	}
	if r := run(2); len(r.Rows) != 3 {
		t.Fatalf("after insert rows=%v", r.Rows)
	}
	pc = s.PlanCacheCountersSnapshot()
	if pc.MemoHits != 1 || pc.Invalidations != 1 {
		t.Fatalf("stale memo served after insert: %+v", pc)
	}
	// Callers own their rows: mutating a returned result must not leak
	// into later memo hits.
	warm := run(2) // warm execute, stores memo
	warm.Rows[0][0] = sqltypes.NewInt(777)
	if r := run(2); r.Rows[0][0].String() == "777" {
		t.Fatal("memo shares storage with caller rows")
	}
}

// TestPlanCacheMemoDisabled: with the cache off (and for volatile
// plans, which never become resident) no execution touches the memo.
func TestPlanCacheMemoDisabled(t *testing.T) {
	s := newPrepSession(t)
	s.SetPlanCacheSize(0)
	ps, err := s.Prepare("SELECT COUNT(*) FROM t WHERE a > ?")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ps.Execute(sqltypes.NewInt(0)); err != nil {
			t.Fatal(err)
		}
	}
	if pc := s.PlanCacheCountersSnapshot(); pc.MemoHits != 0 {
		t.Fatalf("memo hit with cache disabled: %+v", pc)
	}
}

// TestPlanCacheDDLInvalidation: any DDL bumps the catalog version, so a
// cached plan built before it is removed at its next lookup.
func TestPlanCacheDDLInvalidation(t *testing.T) {
	s := newPrepSession(t)
	if _, err := s.Execute("PREPARE q AS SELECT a FROM t WHERE a >= $1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("EXECUTE q(1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute("CREATE VIEW v AS SELECT a FROM t"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("EXECUTE q(1)"); err != nil {
		t.Fatal(err)
	}
	pc := s.PlanCacheCountersSnapshot()
	if pc.Invalidations != 1 {
		t.Fatalf("DDL did not invalidate: %+v", pc)
	}
}

// TestExplainExecuteCacheFooter: EXPLAIN [ANALYZE] EXECUTE reports the
// cache outcome; once warmed, the footer says cached=true with a stable
// 16-hex key digest.
func TestExplainExecuteCacheFooter(t *testing.T) {
	s := newPrepSession(t)
	if _, err := s.Execute("PREPARE q AS SELECT a, b FROM t WHERE a >= $1 ORDER BY a"); err != nil {
		t.Fatal(err)
	}
	rs, err := s.Execute("EXPLAIN EXECUTE q(2)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rs[0].Message, "Cache: cached=false key=") {
		t.Fatalf("cold EXPLAIN EXECUTE:\n%s", rs[0].Message)
	}
	// EXPLAIN EXECUTE plans (and caches) without running; the next
	// execution — analyzed here — is warm.
	rs, err = s.Execute("EXPLAIN ANALYZE EXECUTE q(2)")
	if err != nil {
		t.Fatal(err)
	}
	msg := rs[0].Message
	if !strings.Contains(msg, "Cache: cached=true key=") {
		t.Fatalf("warm EXPLAIN ANALYZE EXECUTE:\n%s", msg)
	}
	if !strings.Contains(msg, "Totals: rows=2") {
		t.Fatalf("missing analyze totals:\n%s", msg)
	}
	i := strings.Index(msg, "key=")
	digest := strings.TrimSpace(msg[i+4:])
	if len(digest) != 16 {
		t.Fatalf("key digest %q is not 16 hex chars", digest)
	}
}

// TestPlanCacheConcurrentHammer races prepared executions against
// inserts (invalidation), SQL EXECUTE, and live cache resizing. Run
// under -race; correctness here is "no error, no data race, counters
// consistent".
func TestPlanCacheConcurrentHammer(t *testing.T) {
	s := newPrepSession(t)
	if _, err := s.Execute("PREPARE q AS SELECT COUNT(*) FROM t WHERE a > $1"); err != nil {
		t.Fatal(err)
	}
	ps, err := s.Prepare("SELECT a FROM t WHERE a >= ? ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, iters = 6, 60
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 4 {
				case 0:
					if _, err := s.Query("EXECUTE q(1)"); err != nil {
						errCh <- err
						return
					}
				case 1:
					if _, err := ps.Execute(sqltypes.NewInt(2)); err != nil {
						errCh <- err
						return
					}
				case 2:
					if _, err := s.Execute(fmt.Sprintf("INSERT INTO t VALUES (%d,'h')", 10+i)); err != nil {
						errCh <- err
						return
					}
				default:
					s.SetPlanCacheSize([]int{0, 2, 128}[i%3])
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	s.SetPlanCacheSize(DefaultPlanCacheSize)
	pc := s.PlanCacheCountersSnapshot()
	if pc.Hits+pc.Misses+pc.Bypasses == 0 {
		t.Fatalf("hammer never touched the cache: %+v", pc)
	}
	t.Logf("hammer counters: %+v", pc)
}
