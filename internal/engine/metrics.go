// Session-level metrics: cumulative counters across every query a
// session runs, exportable as expvar-style JSON and Prometheus text.
package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/measures-sql/msql/internal/exec"
)

// Metrics accumulates session-wide execution counters. All updates are
// atomic (or mutex-guarded for the per-strategy map), so concurrent
// queries on one session aggregate exactly.
type Metrics struct {
	queries         int64
	errors          int64
	canceled        int64
	timeouts        int64
	limitTrips      int64
	rowsReturned    int64
	rowsScanned     int64
	subqueryEvals   int64
	cacheHits       int64
	parallelFanouts int64
	vecBatches      int64
	vecKernelRows   int64
	vecFallbackRows int64
	planNs          int64
	execNs          int64

	// planHist / execHist distribute per-statement planning and
	// execution latencies (exported as Prometheus histograms and the
	// PlanLatency/ExecLatency snapshot sections).
	planHist exec.Histogram
	execHist exec.Histogram

	mu         sync.Mutex
	byStrategy map[string]*stratCounters
	// serverFn, when set, supplies a point-in-time copy of the serving
	// layer's counters (the msqld front end registers itself here) so
	// one Metrics snapshot covers both engine and server.
	serverFn func() ServerCounters
	// planFn supplies the session plan cache's counters (registered by
	// engine.New) so snapshots cover prepared-statement caching too.
	planFn func() PlanCacheCounters
	// storageFn supplies the durability layer's counters (registered by
	// NewDurable) so snapshots cover WAL and checkpoint activity.
	storageFn func() StorageCounters
	// shardFn supplies the distributed coordinator's counters (a
	// dist.Coordinator registers itself here) so one snapshot covers the
	// whole scatter-gather failure envelope.
	shardFn func() ShardCounters
	// rollupFn supplies the rollup lattice's counters (registered by
	// SetRollups) so snapshots cover materialized-rollup activity.
	rollupFn func() RollupCounters
}

// RollupCounters is the rollup lattice's slice of a metrics snapshot.
// Nodes, Groups, and DirtyGroups are gauges; the rest are cumulative.
type RollupCounters struct {
	// Hits counts Aggregate executions answered from the lattice.
	Hits int64 `json:"hits"`
	// Misses counts consultations that fell back to direct execution.
	Misses int64 `json:"misses"`
	// Builds counts lattice node creations.
	Builds int64 `json:"builds"`
	// Rebuilds counts dirty groups rebuilt lazily from base rows.
	Rebuilds int64 `json:"rebuilds"`
	// IncrementalRows counts delta rows folded into exactly-mergeable
	// nodes in place.
	IncrementalRows int64 `json:"incremental_rows"`
	// Invalidations counts truncate resets and DDL node drops.
	Invalidations int64 `json:"invalidations"`
	// Nodes/Groups/DirtyGroups describe the lattice right now.
	Nodes       int64 `json:"nodes"`
	Groups      int64 `json:"groups"`
	DirtyGroups int64 `json:"dirty_groups"`
}

// SetRollupSource registers (or with nil removes) the rollup lattice's
// counter source; Snapshot calls it to fill the Rollups section.
func (m *Metrics) SetRollupSource(fn func() RollupCounters) {
	m.mu.Lock()
	m.rollupFn = fn
	m.mu.Unlock()
}

// ShardCounters is the distributed coordinator's slice of a metrics
// snapshot: the scatter-gather failure envelope. ShardsTotal and
// BreakersOpen are gauges; the rest are cumulative.
type ShardCounters struct {
	// Scatters counts shard fan-out calls issued (one per shard per
	// distributed query phase).
	Scatters int64 `json:"scatters"`
	// Retries counts transport-level retry attempts beyond the first try.
	Retries int64 `json:"retries"`
	// Hedges counts hedged requests sent to a second endpoint after the
	// p99-based delay.
	Hedges int64 `json:"hedges"`
	// Failovers counts shard calls answered by an endpoint other than
	// the first one tried.
	Failovers int64 `json:"failovers"`
	// BreakerOpens counts closed→open circuit-breaker transitions.
	BreakerOpens int64 `json:"breaker_opens"`
	// ShardErrors counts queries that failed with ErrShardUnavailable.
	ShardErrors int64 `json:"shard_errors"`
	// ShardsTotal and BreakersOpen describe the topology right now.
	ShardsTotal  int64 `json:"shards_total"`
	BreakersOpen int64 `json:"breakers_open"`
}

// SetShardSource registers (or with nil removes) the distributed
// coordinator's counter source; Snapshot calls it to fill the Shards
// section.
func (m *Metrics) SetShardSource(fn func() ShardCounters) {
	m.mu.Lock()
	m.shardFn = fn
	m.mu.Unlock()
}

// StorageCounters is the durability layer's slice of a metrics
// snapshot: write-ahead log, checkpoint, and recovery counters. WALSeq,
// WALDurableSeq, and WALBytes are gauges; the rest are cumulative.
type StorageCounters struct {
	WALAppends       int64  `json:"wal_appends"`
	WALAppendBytes   int64  `json:"wal_append_bytes"`
	WALFsyncs        int64  `json:"wal_fsyncs"`
	WALBytes         int64  `json:"wal_bytes"`
	WALSeq           int64  `json:"wal_seq"`
	WALDurableSeq    int64  `json:"wal_durable_seq"`
	Checkpoints      int64  `json:"checkpoints"`
	CheckpointNs     int64  `json:"checkpoint_ns"`
	LastCheckpointNs int64  `json:"last_checkpoint_ns"`
	RecoveryNs       int64  `json:"recovery_ns"`
	RecoveredRecords int64  `json:"recovered_records"`
	TornTailBytes    int64  `json:"torn_tail_bytes"`
	SyncPolicy       string `json:"sync_policy"`
}

// SetStorageSource registers (or with nil removes) the durability
// layer's counter source; Snapshot calls it to fill the Storage
// section.
func (m *Metrics) SetStorageSource(fn func() StorageCounters) {
	m.mu.Lock()
	m.storageFn = fn
	m.mu.Unlock()
}

// ServerCounters is the serving layer's slice of a metrics snapshot:
// admission-control and drain counters published by a query server
// sitting in front of the session. Inflight and Queued are gauges; the
// rest are cumulative counters.
type ServerCounters struct {
	Inflight    int64 `json:"inflight"`
	Queued      int64 `json:"queued"`
	Accepted    int64 `json:"accepted"`
	Admitted    int64 `json:"admitted"`
	Shed        int64 `json:"shed"`
	Rejected    int64 `json:"rejected_draining"`
	Drained     int64 `json:"drained"`
	DrainKilled int64 `json:"drain_killed"`
	Panics      int64 `json:"panics"`
	DrainNs     int64 `json:"drain_ns"`
}

// SetServerSource registers (or with nil removes) the serving layer's
// counter source; Snapshot calls it to fill the Server section.
func (m *Metrics) SetServerSource(fn func() ServerCounters) {
	m.mu.Lock()
	m.serverFn = fn
	m.mu.Unlock()
}

// SetPlanCacheSource registers (or with nil removes) the plan cache's
// counter source; Snapshot calls it to fill the PlanCache section.
func (m *Metrics) SetPlanCacheSource(fn func() PlanCacheCounters) {
	m.mu.Lock()
	m.planFn = fn
	m.mu.Unlock()
}

// stratCounters is the per-strategy slice of the registry.
type stratCounters struct {
	Queries int64 `json:"queries"`
	Errors  int64 `json:"errors"`
	PlanNs  int64 `json:"plan_ns"`
	ExecNs  int64 `json:"exec_ns"`
}

func newMetrics() *Metrics {
	return &Metrics{byStrategy: map[string]*stratCounters{}}
}

// recordQuery folds one finished query's executor counters into the
// registry.
func (m *Metrics) recordQuery(strategy string, rows int, st exec.Stats, planNs, execNs int64) {
	atomic.AddInt64(&m.queries, 1)
	atomic.AddInt64(&m.rowsReturned, int64(rows))
	atomic.AddInt64(&m.rowsScanned, st.RowsScanned)
	atomic.AddInt64(&m.subqueryEvals, st.SubqueryEvals)
	atomic.AddInt64(&m.cacheHits, st.SubqueryCacheHits)
	atomic.AddInt64(&m.parallelFanouts, st.ParallelFanouts)
	atomic.AddInt64(&m.vecBatches, st.VecBatches)
	atomic.AddInt64(&m.vecKernelRows, st.VecKernelRows)
	atomic.AddInt64(&m.vecFallbackRows, st.VecFallbackRows)
	atomic.AddInt64(&m.planNs, planNs)
	atomic.AddInt64(&m.execNs, execNs)
	m.planHist.Observe(planNs)
	m.execHist.Observe(execNs)
	m.mu.Lock()
	sc := m.byStrategy[strategy]
	if sc == nil {
		sc = &stratCounters{}
		m.byStrategy[strategy] = sc
	}
	sc.Queries++
	sc.PlanNs += planNs
	sc.ExecNs += execNs
	m.mu.Unlock()
}

// recordOutcome folds one failed statement into the registry,
// classifying cancellations, timeouts, and resource-limit trips by
// their error code, and attributing the error to the strategy that ran
// the statement (so "memo" failures are distinguishable from "naive"
// ones in the per-strategy series).
func (m *Metrics) recordOutcome(strategy string, err error) {
	if err == nil {
		return
	}
	atomic.AddInt64(&m.errors, 1)
	switch {
	case errors.Is(err, exec.CodeCanceled):
		atomic.AddInt64(&m.canceled, 1)
	case errors.Is(err, exec.CodeTimeout):
		atomic.AddInt64(&m.timeouts, 1)
	case errors.Is(err, exec.CodeResourceExhausted):
		atomic.AddInt64(&m.limitTrips, 1)
	}
	m.mu.Lock()
	sc := m.byStrategy[strategy]
	if sc == nil {
		sc = &stratCounters{}
		m.byStrategy[strategy] = sc
	}
	sc.Errors++
	m.mu.Unlock()
}

// MetricsSnapshot is a point-in-time copy of the registry.
type MetricsSnapshot struct {
	Queries         int64                    `json:"queries"`
	Errors          int64                    `json:"errors"`
	Canceled        int64                    `json:"canceled"`
	Timeouts        int64                    `json:"timeouts"`
	LimitTrips      int64                    `json:"limit_trips"`
	RowsReturned    int64                    `json:"rows_returned"`
	RowsScanned     int64                    `json:"rows_scanned"`
	SubqueryEvals   int64                    `json:"subquery_evals"`
	CacheHits       int64                    `json:"cache_hits"`
	CacheHitRatio   float64                  `json:"cache_hit_ratio"`
	ParallelFanouts int64                    `json:"parallel_fanouts"`
	VecBatches      int64                    `json:"vec_batches"`
	VecKernelRows   int64                    `json:"vec_kernel_rows"`
	VecFallbackRows int64                    `json:"vec_fallback_rows"`
	PlanNs          int64                    `json:"plan_ns"`
	ExecNs          int64                    `json:"exec_ns"`
	PlanLatency     exec.HistogramSnapshot   `json:"plan_latency"`
	ExecLatency     exec.HistogramSnapshot   `json:"exec_latency"`
	ByStrategy      map[string]stratCounters `json:"by_strategy"`
	// PlanCache carries the prepared-statement plan cache's counters.
	PlanCache *PlanCacheCounters `json:"plan_cache,omitempty"`
	// Server carries the serving layer's counters when a query server
	// has registered itself (SetServerSource); nil otherwise.
	Server *ServerCounters `json:"server,omitempty"`
	// Storage carries the durability layer's counters when the session
	// writes through a WAL (SetStorageSource); nil otherwise.
	Storage *StorageCounters `json:"storage,omitempty"`
	// Shards carries the distributed coordinator's counters when one has
	// registered itself (SetShardSource); nil otherwise.
	Shards *ShardCounters `json:"shards,omitempty"`
	// Rollups carries the rollup lattice's counters when rollups are
	// enabled (SetRollupSource); nil otherwise.
	Rollups *RollupCounters `json:"rollups,omitempty"`
}

// Snapshot returns a consistent copy of the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Queries:         atomic.LoadInt64(&m.queries),
		Errors:          atomic.LoadInt64(&m.errors),
		Canceled:        atomic.LoadInt64(&m.canceled),
		Timeouts:        atomic.LoadInt64(&m.timeouts),
		LimitTrips:      atomic.LoadInt64(&m.limitTrips),
		RowsReturned:    atomic.LoadInt64(&m.rowsReturned),
		RowsScanned:     atomic.LoadInt64(&m.rowsScanned),
		SubqueryEvals:   atomic.LoadInt64(&m.subqueryEvals),
		CacheHits:       atomic.LoadInt64(&m.cacheHits),
		ParallelFanouts: atomic.LoadInt64(&m.parallelFanouts),
		VecBatches:      atomic.LoadInt64(&m.vecBatches),
		VecKernelRows:   atomic.LoadInt64(&m.vecKernelRows),
		VecFallbackRows: atomic.LoadInt64(&m.vecFallbackRows),
		PlanNs:          atomic.LoadInt64(&m.planNs),
		ExecNs:          atomic.LoadInt64(&m.execNs),
		PlanLatency:     m.planHist.Snapshot(),
		ExecLatency:     m.execHist.Snapshot(),
		ByStrategy:      map[string]stratCounters{},
	}
	if total := s.SubqueryEvals + s.CacheHits; total > 0 {
		s.CacheHitRatio = float64(s.CacheHits) / float64(total)
	}
	m.mu.Lock()
	for k, v := range m.byStrategy {
		s.ByStrategy[k] = *v
	}
	serverFn, planFn, storageFn, shardFn, rollupFn := m.serverFn, m.planFn, m.storageFn, m.shardFn, m.rollupFn
	m.mu.Unlock()
	if planFn != nil {
		pc := planFn()
		s.PlanCache = &pc
	}
	if serverFn != nil {
		sc := serverFn()
		s.Server = &sc
	}
	if storageFn != nil {
		st := storageFn()
		s.Storage = &st
	}
	if shardFn != nil {
		sh := shardFn()
		s.Shards = &sh
	}
	if rollupFn != nil {
		rc := rollupFn()
		s.Rollups = &rc
	}
	return s
}

// JSON renders the snapshot as expvar-style indented JSON.
func (s MetricsSnapshot) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format. Strategy labels are emitted in sorted order so the output is
// deterministic.
func (s MetricsSnapshot) Prometheus() string {
	var sb strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("msql_queries_total", "Queries executed.", s.Queries)
	counter("msql_query_errors_total", "Queries that returned an error.", s.Errors)
	counter("msql_queries_canceled_total", "Statements ended by caller cancellation.", s.Canceled)
	counter("msql_query_timeouts_total", "Statements ended by a deadline or Limits.Timeout.", s.Timeouts)
	counter("msql_limit_trips_total", "Statements ended by a resource governor limit.", s.LimitTrips)
	counter("msql_rows_returned_total", "Rows returned to clients.", s.RowsReturned)
	counter("msql_rows_scanned_total", "Rows produced by Scan operators.", s.RowsScanned)
	counter("msql_subquery_evals_total", "Actual subquery plan executions.", s.SubqueryEvals)
	counter("msql_subquery_cache_hits_total", "Subquery evaluations served from the memo cache.", s.CacheHits)
	counter("msql_parallel_fanouts_total", "Operator executions that fanned out to multiple workers.", s.ParallelFanouts)
	counter("msql_vec_batches_total", "Columnar batches processed by the vectorized engine.", s.VecBatches)
	counter("msql_vec_kernel_rows_total", "Expression evaluations done by batch kernels.", s.VecKernelRows)
	counter("msql_vec_fallback_rows_total", "Rows the vectorized engine handed back to the row evaluator.", s.VecFallbackRows)
	fmt.Fprintf(&sb, "# HELP msql_cache_hit_ratio Fraction of subquery evaluations served from cache.\n# TYPE msql_cache_hit_ratio gauge\nmsql_cache_hit_ratio %g\n", s.CacheHitRatio)
	histogram := func(name, help string, h exec.HistogramSnapshot) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		h.EachBucket(func(upperNs, cum int64) {
			fmt.Fprintf(&sb, "%s_bucket{le=\"%g\"} %d\n", name, float64(upperNs)/1e9, cum)
		})
		fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(&sb, "%s_sum %g\n", name, float64(h.SumNs)/1e9)
		fmt.Fprintf(&sb, "%s_count %d\n", name, h.Count)
	}
	histogram("msql_plan_duration_seconds", "Per-statement planning latency.", s.PlanLatency)
	histogram("msql_exec_duration_seconds", "Per-statement execution latency.", s.ExecLatency)
	if pc := s.PlanCache; pc != nil {
		counter("msql_plan_cache_hits_total", "Prepared executions served from the plan cache.", pc.Hits)
		counter("msql_plan_cache_misses_total", "Prepared executions that had to plan.", pc.Misses)
		counter("msql_plan_cache_evictions_total", "Plan-cache entries evicted by the LRU cap.", pc.Evictions)
		counter("msql_plan_cache_invalidations_total", "Plan-cache entries dropped after DDL or data changes.", pc.Invalidations)
		counter("msql_plan_cache_bypasses_total", "Prepared executions that skipped the plan cache (volatile or disabled).", pc.Bypasses)
		counter("msql_plan_cache_memo_hits_total", "Prepared executions answered from an entry's identical-binding result memo.", pc.MemoHits)
		fmt.Fprintf(&sb, "# HELP msql_plan_cache_entries Plans currently cached.\n# TYPE msql_plan_cache_entries gauge\nmsql_plan_cache_entries %d\n", pc.Entries)
	}

	strategies := make([]string, 0, len(s.ByStrategy))
	for k := range s.ByStrategy {
		strategies = append(strategies, k)
	}
	sort.Strings(strategies)
	sb.WriteString("# HELP msql_strategy_queries_total Queries executed per strategy.\n# TYPE msql_strategy_queries_total counter\n")
	for _, k := range strategies {
		fmt.Fprintf(&sb, "msql_strategy_queries_total{strategy=%q} %d\n", k, s.ByStrategy[k].Queries)
	}
	sb.WriteString("# HELP msql_strategy_errors_total Failed statements per strategy.\n# TYPE msql_strategy_errors_total counter\n")
	for _, k := range strategies {
		fmt.Fprintf(&sb, "msql_strategy_errors_total{strategy=%q} %d\n", k, s.ByStrategy[k].Errors)
	}
	sb.WriteString("# HELP msql_plan_seconds_total Time spent binding and optimizing, per strategy.\n# TYPE msql_plan_seconds_total counter\n")
	for _, k := range strategies {
		fmt.Fprintf(&sb, "msql_plan_seconds_total{strategy=%q} %g\n", k, float64(s.ByStrategy[k].PlanNs)/1e9)
	}
	sb.WriteString("# HELP msql_exec_seconds_total Time spent executing, per strategy.\n# TYPE msql_exec_seconds_total counter\n")
	for _, k := range strategies {
		fmt.Fprintf(&sb, "msql_exec_seconds_total{strategy=%q} %g\n", k, float64(s.ByStrategy[k].ExecNs)/1e9)
	}
	if sv := s.Server; sv != nil {
		gauge := func(name, help string, v int64) {
			fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
		}
		gauge("msql_server_inflight", "Queries executing right now.", sv.Inflight)
		gauge("msql_server_queued", "Requests waiting for an execution slot.", sv.Queued)
		counter("msql_server_requests_total", "Query requests received.", sv.Accepted)
		counter("msql_server_admitted_total", "Requests admitted to execution.", sv.Admitted)
		counter("msql_server_shed_total", "Requests shed by overload control (HTTP 429).", sv.Shed)
		counter("msql_server_rejected_draining_total", "Requests rejected while draining (HTTP 503).", sv.Rejected)
		counter("msql_server_drained_total", "Inflight queries completed during graceful drain.", sv.Drained)
		counter("msql_server_drain_killed_total", "Inflight queries canceled at the drain deadline.", sv.DrainKilled)
		counter("msql_server_panics_total", "Request handler panics recovered.", sv.Panics)
		fmt.Fprintf(&sb, "# HELP msql_server_drain_seconds Time the last graceful drain took.\n# TYPE msql_server_drain_seconds gauge\nmsql_server_drain_seconds %g\n", float64(sv.DrainNs)/1e9)
	}
	if st := s.Storage; st != nil {
		gauge := func(name, help string, v int64) {
			fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
		}
		counter("msql_wal_appends_total", "Records appended to the write-ahead log.", st.WALAppends)
		counter("msql_wal_append_bytes_total", "Framed bytes appended to the write-ahead log.", st.WALAppendBytes)
		counter("msql_wal_fsyncs_total", "Fsync syscalls on the log (group commit batches appends).", st.WALFsyncs)
		counter("msql_checkpoints_total", "Checkpoint snapshots completed.", st.Checkpoints)
		gauge("msql_wal_bytes", "Current size of the write-ahead log.", st.WALBytes)
		gauge("msql_wal_seq", "Last assigned WAL sequence number.", st.WALSeq)
		gauge("msql_wal_durable_seq", "Last WAL sequence known flushed to disk.", st.WALDurableSeq)
		fmt.Fprintf(&sb, "# HELP msql_checkpoint_seconds_total Time spent writing checkpoints.\n# TYPE msql_checkpoint_seconds_total counter\nmsql_checkpoint_seconds_total %g\n", float64(st.CheckpointNs)/1e9)
		fmt.Fprintf(&sb, "# HELP msql_last_checkpoint_seconds Duration of the most recent checkpoint.\n# TYPE msql_last_checkpoint_seconds gauge\nmsql_last_checkpoint_seconds %g\n", float64(st.LastCheckpointNs)/1e9)
		fmt.Fprintf(&sb, "# HELP msql_recovery_seconds Time the last crash recovery took.\n# TYPE msql_recovery_seconds gauge\nmsql_recovery_seconds %g\n", float64(st.RecoveryNs)/1e9)
		counter("msql_recovered_records_total", "Log records replayed by the last recovery.", st.RecoveredRecords)
		counter("msql_torn_tail_bytes_total", "Trailing log bytes discarded as torn by the last recovery.", st.TornTailBytes)
	}
	if sh := s.Shards; sh != nil {
		gauge := func(name, help string, v int64) {
			fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
		}
		counter("msql_shard_scatters_total", "Shard fan-out calls issued by the coordinator.", sh.Scatters)
		counter("msql_shard_retries_total", "Shard call retry attempts beyond the first try.", sh.Retries)
		counter("msql_shard_hedges_total", "Hedged requests sent to a second endpoint.", sh.Hedges)
		counter("msql_shard_failovers_total", "Shard calls answered by a non-primary endpoint.", sh.Failovers)
		counter("msql_shard_breaker_open_total", "Circuit-breaker closed-to-open transitions.", sh.BreakerOpens)
		counter("msql_shard_errors_total", "Queries failed with a structured shard-unavailable error.", sh.ShardErrors)
		gauge("msql_shard_count", "Shards in the topology.", sh.ShardsTotal)
		gauge("msql_shard_breakers_open", "Endpoints whose breaker is currently open.", sh.BreakersOpen)
	}
	if rc := s.Rollups; rc != nil {
		gauge := func(name, help string, v int64) {
			fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
		}
		counter("msql_rollup_hits_total", "Aggregate executions answered from the rollup lattice.", rc.Hits)
		counter("msql_rollup_misses_total", "Lattice consultations that fell back to direct execution.", rc.Misses)
		counter("msql_rollup_builds_total", "Rollup lattice nodes materialized.", rc.Builds)
		counter("msql_rollup_rebuilds_total", "Dirty rollup groups rebuilt lazily from base rows.", rc.Rebuilds)
		counter("msql_rollup_incremental_rows_total", "Insert delta rows folded into rollup states in place.", rc.IncrementalRows)
		counter("msql_rollup_invalidations_total", "Rollup nodes reset by TRUNCATE or dropped by DDL.", rc.Invalidations)
		gauge("msql_rollup_nodes", "Rollup lattice nodes currently materialized.", rc.Nodes)
		gauge("msql_rollup_groups", "Groups currently materialized across all rollup nodes.", rc.Groups)
		gauge("msql_rollup_dirty_groups", "Materialized groups currently awaiting lazy rebuild.", rc.DirtyGroups)
	}
	return sb.String()
}
