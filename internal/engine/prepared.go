// Prepared statements: PREPARE/EXECUTE/DEALLOCATE at the SQL level, a
// handle-based Prepare for the Go API, and a named registry for the
// wire protocol. All three execute through the session plan cache.
package engine

import (
	"context"
	"fmt"
	"sync"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/parser"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// Prepared is one prepared statement: the parsed query, its normalized
// text (the plan-cache key prefix), and the declared parameter types
// (empty means types are inferred from the arguments at EXECUTE time).
type Prepared struct {
	name    string
	sql     string
	query   *ast.Query
	nParams int
	types   []sqltypes.Kind
	// fp is the statement-stats fingerprint of the underlying query,
	// precomputed so per-execution tracking costs one map lookup.
	fp string
}

// NumParams returns the number of parameter placeholders.
func (p *Prepared) NumParams() int { return p.nParams }

// SQL returns the normalized statement text (parameters rendered $n).
func (p *Prepared) SQL() string { return p.sql }

// newPrepared builds a Prepared from a parsed query, resolving declared
// type names and, when the parameter types are fully known, binding the
// query once so definition errors surface at PREPARE time.
func (s *Session) newPrepared(name string, q *ast.Query, nParams int, typeNames []string) (*Prepared, error) {
	p := &Prepared{name: name, sql: ast.FormatQuery(q), query: q, nParams: nParams}
	p.fp = fingerprintQuery(q)
	if len(typeNames) > 0 {
		if len(typeNames) != nParams {
			return nil, fmt.Errorf("prepared statement declares %d parameter types but uses %d parameters", len(typeNames), nParams)
		}
		p.types = make([]sqltypes.Kind, len(typeNames))
		for i, tn := range typeNames {
			k := sqltypes.KindFromName(tn)
			if k == sqltypes.KindUnknown {
				return nil, fmt.Errorf("unknown type %s for parameter $%d", tn, i+1)
			}
			p.types[i] = k
		}
	}
	if nParams == 0 || len(p.types) > 0 {
		kinds := p.types
		if kinds == nil {
			kinds = []sqltypes.Kind{}
		}
		env := &stmtEnv{ctx: context.Background(), cfg: s.statementConfig(nil), tracer: s.tracer}
		if _, _, err := s.planQueryParams(env, q, kinds); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// preparedRegistry is the session's named prepared-statement namespace,
// shared by SQL PREPARE/EXECUTE and the wire protocol.
type preparedRegistry struct {
	mu    sync.Mutex
	stmts map[string]*Prepared
}

func newPreparedRegistry() *preparedRegistry {
	return &preparedRegistry{stmts: map[string]*Prepared{}}
}

func (r *preparedRegistry) get(name string) (*Prepared, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.stmts[name]
	return p, ok
}

func (r *preparedRegistry) put(p *Prepared, replace bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.stmts[p.name]; ok && !replace {
		return fmt.Errorf("prepared statement %s already exists", p.name)
	}
	r.stmts[p.name] = p
	return nil
}

func (r *preparedRegistry) drop(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.stmts[name]
	delete(r.stmts, name)
	return ok
}

func (r *preparedRegistry) clear() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.stmts)
	r.stmts = map[string]*Prepared{}
	return n
}

// execPrepareStmt handles SQL PREPARE name [(types)] AS query.
func (s *Session) execPrepareStmt(stmt *ast.Prepare) (*Result, error) {
	p, err := s.newPrepared(stmt.Name, stmt.Query, stmt.NParams, stmt.Types)
	if err != nil {
		return nil, err
	}
	if err := s.prepared.put(p, false); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("prepared %s", stmt.Name)}, nil
}

// execDeallocate handles DEALLOCATE name | DEALLOCATE ALL.
func (s *Session) execDeallocate(stmt *ast.Deallocate) (*Result, error) {
	if stmt.All {
		n := s.prepared.clear()
		return &Result{Message: fmt.Sprintf("deallocated %d prepared statements", n)}, nil
	}
	if !s.prepared.drop(stmt.Name) {
		return nil, fmt.Errorf("prepared statement %s does not exist", stmt.Name)
	}
	return &Result{Message: fmt.Sprintf("deallocated %s", stmt.Name)}, nil
}

// executeArgs evaluates EXECUTE argument expressions and coerces them
// to the declared parameter types, if any.
func (s *Session) executeArgs(p *Prepared, args []ast.Expr) ([]sqltypes.Value, error) {
	if len(args) != p.nParams {
		return nil, fmt.Errorf("prepared statement %s expects %d parameters, got %d", p.name, p.nParams, len(args))
	}
	vals := make([]sqltypes.Value, len(args))
	for i, e := range args {
		v, err := evalConstExpr(e)
		if err != nil {
			return nil, fmt.Errorf("parameter $%d: %w", i+1, err)
		}
		vals[i] = v
	}
	return coerceParams(p, vals)
}

// coerceParams casts argument values to the declared parameter types so
// that e.g. EXECUTE q(1) against PREPARE q (DOUBLE) caches and runs as
// a DOUBLE parameter.
func coerceParams(p *Prepared, vals []sqltypes.Value) ([]sqltypes.Value, error) {
	if len(vals) != p.nParams {
		return nil, fmt.Errorf("prepared statement expects %d parameters, got %d", p.nParams, len(vals))
	}
	if p.types == nil {
		return vals, nil
	}
	out := make([]sqltypes.Value, len(vals))
	for i, v := range vals {
		c, err := sqltypes.Cast(v, p.types[i])
		if err != nil {
			return nil, fmt.Errorf("parameter $%d: %w", i+1, err)
		}
		out[i] = c
	}
	return out, nil
}

// lookupPrepared fetches a named prepared statement or errors. An
// unknown name is a bind-class error (name resolution), so clients see
// HTTP 400, not 500.
func (s *Session) lookupPrepared(name string) (*Prepared, error) {
	p, ok := s.prepared.get(name)
	if !ok {
		return nil, exec.Wrap(fmt.Errorf("prepared statement %s does not exist", name), exec.CodeBind, exec.PhaseBind)
	}
	return p, nil
}

// execExecuteStmt handles SQL EXECUTE name (args).
func (s *Session) execExecuteStmt(env *stmtEnv, stmt *ast.ExecuteStmt) (*Result, error) {
	p, err := s.lookupPrepared(stmt.Name)
	if err != nil {
		return nil, err
	}
	vals, err := s.executeArgs(p, stmt.Args)
	if err != nil {
		return nil, err
	}
	return s.execPrepared(env, p, vals)
}

// preparedPlan resolves the plan for one execution of p with the given
// parameter values: a plan-cache lookup keyed on normalized text +
// parameter kinds + settings, falling back to bind/optimize on a miss.
// Freshly planned entries are inserted unless the plan is volatile or
// the cache is disabled (both counted as bypasses).
func (s *Session) preparedPlan(env *stmtEnv, p *Prepared, vals []sqltypes.Value) (entry *cachedPlan, cached bool, key string, planNs int64, err error) {
	kinds := make([]sqltypes.Kind, len(vals))
	for i, v := range vals {
		kinds[i] = v.K
	}
	key = planCacheKey(p.sql, kinds, &env.cfg)
	ver := s.cat.Version()
	useCache := s.plans.enabled()
	if useCache {
		if e := s.plans.lookup(key, ver); e != nil {
			return e, true, key, 0, nil
		}
	} else {
		s.plans.noteBypass()
	}
	node, ns, err := s.planQueryParams(env, p.query, kinds)
	if err != nil {
		return nil, false, key, 0, err
	}
	sch := node.Schema()
	types := make([]sqltypes.Type, len(sch.Cols))
	for i, c := range sch.Cols {
		types[i] = c.Typ
	}
	e := &cachedPlan{key: key, version: ver, node: node, pipe: exec.NewPipeline(), columns: sch.ColNames(), types: types}
	if useCache {
		if planCacheable(node) {
			s.plans.insert(e)
		} else {
			s.plans.noteBypass()
		}
	}
	return e, false, key, ns, nil
}

// execPrepared runs one prepared execution end to end: plan-cache
// lookup (or plan+insert), parameter injection via Settings.Params, and
// pipeline attachment, annotating the execute span with cached= and
// cache_key=. Executions of a cache-resident entry with a previously
// seen parameter binding are answered from the entry's result memo
// without touching the executor: the entry dies on any catalog-version
// bump and volatile plans never enter the cache, so a memoized result
// is exactly what re-execution would produce.
func (s *Session) execPrepared(env *stmtEnv, p *Prepared, vals []sqltypes.Value) (*Result, error) {
	// Retarget statement stats to the underlying query's fingerprint so
	// SQL EXECUTE and the equivalent direct query aggregate together.
	if e := s.stmts.entry(p.fp); e != nil {
		env.stats = e
	}
	entry, cached, key, planNs, err := s.preparedPlan(env, p, vals)
	if err != nil {
		return nil, err
	}
	env.cfg.exec.Params = vals
	env.cfg.exec.Pipeline = entry.pipe
	env.execAttrs = map[string]string{"cached": fmt.Sprintf("%t", cached), "cache_key": cacheKeyDigest(key)}
	mk := ""
	if cached {
		mk = paramMemoKey(vals)
		if rows, ok := entry.memoLookup(mk); ok {
			s.plans.noteMemoHit()
			env.execAttrs["memo"] = "true"
			if e := env.stats; e != nil {
				e.rows.Add(int64(len(rows)))
				e.memoHits.Add(1)
			}
			res := &Result{Columns: entry.columns, Types: entry.types, Rows: rows}
			if res.Columns == nil {
				res.Columns = []string{}
			}
			return res, nil
		}
	}
	rows, _, err := s.execPlan(env, entry.node, planNs, false)
	if err != nil {
		return nil, err
	}
	if cached {
		entry.memoStore(mk, rows)
	}
	res := &Result{Columns: entry.columns, Types: entry.types, Rows: rows}
	if res.Columns == nil {
		res.Columns = []string{}
	}
	return res, nil
}

// explainExecute renders EXPLAIN [ANALYZE] EXECUTE: the (possibly
// cached) plan tree, plus a Cache: footer reporting whether this
// execution hit the plan cache and under which key.
func (s *Session) explainExecute(env *stmtEnv, ex *ast.ExecuteStmt, analyze bool) (*Result, error) {
	p, err := s.lookupPrepared(ex.Name)
	if err != nil {
		return nil, err
	}
	vals, err := s.executeArgs(p, ex.Args)
	if err != nil {
		return nil, err
	}
	entry, cached, key, planNs, err := s.preparedPlan(env, p, vals)
	if err != nil {
		return nil, err
	}
	cacheLine := fmt.Sprintf("Cache: cached=%t key=%s\n", cached, cacheKeyDigest(key))
	if !analyze {
		return &Result{Message: plan.ExplainTree(entry.node) + cacheLine}, nil
	}
	env.cfg.exec.Params = vals
	env.cfg.exec.Pipeline = entry.pipe
	env.execAttrs = map[string]string{"cached": fmt.Sprintf("%t", cached), "cache_key": cacheKeyDigest(key)}
	rows, prof, err := s.execPlan(env, entry.node, planNs, true)
	if err != nil {
		return nil, err
	}
	st := s.lastStats.Snapshot()
	totals := fmt.Sprintf("Totals: rows=%d scanned=%d evals=%d hits=%d fanouts=%d",
		len(rows), st.RowsScanned, st.SubqueryEvals, st.SubqueryCacheHits, st.ParallelFanouts)
	if st.VecBatches > 0 {
		totals += fmt.Sprintf(" batches=%d kernel=%d fallback=%d",
			st.VecBatches, st.VecKernelRows, st.VecFallbackRows)
	}
	msg := plan.ExplainAnalyzeTree(entry.node, prof) + totals + "\n" + cacheLine
	return &Result{Message: msg}, nil
}

// PreparedStmt is a handle-based prepared statement for the Go API; it
// is not in the session's named registry, so handles owned by different
// callers cannot collide.
type PreparedStmt struct {
	sess *Session
	p    *Prepared
}

// Prepare parses one parameterized query ($n or ? placeholders) and
// returns a reusable handle. Executions share the session plan cache,
// so the first ExecuteContext plans and later ones reuse the compiled
// pipeline.
func (s *Session) Prepare(sql string) (*PreparedStmt, error) {
	var (
		q *ast.Query
		n int
	)
	err := s.parseSpanned(sql, func() (int, error) {
		var err error
		q, n, err = parser.ParseQueryWithParams(sql)
		return 1, err
	})
	if err != nil {
		return nil, err
	}
	p, err := s.newPrepared("", q, n, nil)
	if err != nil {
		return nil, err
	}
	return &PreparedStmt{sess: s, p: p}, nil
}

// NumParams returns the number of parameter placeholders.
func (ps *PreparedStmt) NumParams() int { return ps.p.nParams }

// ExecuteContext runs the prepared statement with the given parameter
// values under the same guard rail as ExecStatementContext.
func (ps *PreparedStmt) ExecuteContext(ctx context.Context, args []sqltypes.Value, ov *Overrides) (*Result, error) {
	s := ps.sess
	info := stmtInfo{sql: oneLine(ps.p.sql), fingerprint: ps.p.fp}
	return s.withStmtEnv(ctx, ov, info, func(env *stmtEnv) (*Result, error) {
		vals, err := coerceParams(ps.p, args)
		if err != nil {
			return nil, err
		}
		return s.execPrepared(env, ps.p, vals)
	})
}

// Execute runs the prepared statement with background context.
func (ps *PreparedStmt) Execute(args ...sqltypes.Value) (*Result, error) {
	return ps.ExecuteContext(context.Background(), args, nil)
}

// PrepareNamed registers (or replaces) a named prepared statement for
// the wire protocol, returning its parameter count. Unlike SQL PREPARE,
// re-preparing an existing name replaces it, so clients can re-prepare
// after reconnecting without an explicit DEALLOCATE.
func (s *Session) PrepareNamed(name, sql string) (int, error) {
	var (
		q *ast.Query
		n int
	)
	err := s.parseSpanned(sql, func() (int, error) {
		var err error
		q, n, err = parser.ParseQueryWithParams(sql)
		return 1, err
	})
	if err != nil {
		return 0, err
	}
	p, err := s.newPrepared(name, q, n, nil)
	if err != nil {
		return 0, err
	}
	if err := s.prepared.put(p, true); err != nil {
		return 0, err
	}
	return n, nil
}

// ExecuteNamed runs a named prepared statement with pre-built parameter
// values (the wire protocol path).
func (s *Session) ExecuteNamed(ctx context.Context, name string, args []sqltypes.Value, ov *Overrides) (*Result, error) {
	p, err := s.lookupPrepared(name)
	if err != nil {
		return nil, err
	}
	info := stmtInfo{sql: oneLine(p.sql), fingerprint: p.fp}
	return s.withStmtEnv(ctx, ov, info, func(env *stmtEnv) (*Result, error) {
		vals, err := coerceParams(p, args)
		if err != nil {
			return nil, err
		}
		return s.execPrepared(env, p, vals)
	})
}

// DeallocateNamed removes a named prepared statement, reporting whether
// it existed.
func (s *Session) DeallocateNamed(name string) bool { return s.prepared.drop(name) }

// SetPlanCacheSize changes the plan-cache entry cap; 0 disables caching
// and clears the cache. Safe to call while queries are in flight.
func (s *Session) SetPlanCacheSize(n int) { s.plans.setSize(n) }

// PlanCacheCountersSnapshot returns the plan cache's counters.
func (s *Session) PlanCacheCountersSnapshot() PlanCacheCounters { return s.plans.counters() }
