// Shard-facing session surface: the engine entry points msqld exposes
// when it serves as one shard of a distributed topology. A coordinator
// (internal/dist) drives these through the /partial and /apply wire
// endpoints; they run inside the same withStmtEnv guard rail as every
// other statement, so KILL, timeouts, metrics, statement stats, and the
// slow-query log all see shard traffic.
package engine

import (
	"context"
	"fmt"

	"time"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/catalog"
	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/parser"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// RegisterVirtualTable installs (or replaces) a read-only virtual table
// backed by provider. Coordinators use it to publish topology state
// (msql_stats.shards) through the same SQL surface as the built-in
// introspection tables.
func (s *Session) RegisterVirtualTable(name string, cols []string, types []sqltypes.Type, provider func() [][]sqltypes.Value) error {
	return s.cat.RegisterVirtual(&catalog.VirtualTable{TableName: name, Cols: cols, Types: types, Provider: provider})
}

// PlanQuery plans a single query without executing it and returns the
// physical plan tree. A coordinator uses the shape of the plan — which
// tables are scanned, whether the root is a mergeable aggregate,
// whether subqueries appear — to pick a distributed execution path
// before any shard sees the statement. Planning runs inside the usual
// statement guard rail, so coordinator-side planning shows up in
// msql_stats.statements like any other statement.
func (s *Session) PlanQuery(ctx context.Context, sql string, ov *Overrides) (plan.Node, error) {
	var q *ast.Query
	if err := s.parseSpanned(sql, func() (int, error) {
		var err error
		q, err = parser.ParseQuery(sql)
		return 0, err
	}); err != nil {
		return nil, err
	}
	stmt := &ast.QueryStmt{Query: q}
	var node plan.Node
	_, err := s.withStmtEnv(ctx, ov, s.statementInfo(stmt), func(env *stmtEnv) (*Result, error) {
		n, _, err := s.planQuery(env, q)
		if err != nil {
			return nil, err
		}
		node = n
		return &Result{Message: "planned"}, nil
	})
	if err != nil {
		return nil, err
	}
	return node, nil
}

// EvalConstExpr evaluates a constant expression the way INSERT VALUES
// does (wrapping it in a one-row query), for callers that partition
// literal rows before any table sees them.
func EvalConstExpr(e ast.Expr) (sqltypes.Value, error) {
	return evalConstExpr(e)
}

// CatalogVersion returns the session's current catalog version: a
// deterministic count of applied mutations (durable recovery restores
// the pre-crash value). Coordinators use it as the compare-and-swap
// token that makes replicated mutations exactly-once.
func (s *Session) CatalogVersion() int64 { return s.cat.Version() }

// PartialAggregate plans sql and runs its scan/filter/group phase,
// returning per-group partial aggregate states instead of final rows.
// groups and aggs cross-check the plan shape (see exec.PartialAggregate).
func (s *Session) PartialAggregate(ctx context.Context, sql string, groups, aggs int, ov *Overrides) (*exec.PartialResult, error) {
	var q *ast.Query
	if err := s.parseSpanned(sql, func() (int, error) {
		var err error
		q, err = parser.ParseQuery(sql)
		return 0, err
	}); err != nil {
		return nil, err
	}
	stmt := &ast.QueryStmt{Query: q}
	var out *exec.PartialResult
	_, err := s.withStmtEnv(ctx, ov, s.statementInfo(stmt), func(env *stmtEnv) (*Result, error) {
		node, planNs, err := s.planQuery(env, q)
		if err != nil {
			return nil, err
		}
		env.live.setPhase(phaseExecute)
		settings := env.cfg.exec
		settings.Tracer = env.tracer
		start := time.Now()
		res, err := exec.PartialAggregate(env.ctx, node, groups, aggs, &settings)
		execNs := int64(time.Since(start))
		if err != nil {
			return nil, err
		}
		if e := env.stats; e != nil {
			e.rows.Add(int64(len(res.Groups)))
			e.plan.Observe(planNs)
			e.exec.Observe(execNs)
		}
		env.span(exec.Span{Phase: "execute", Name: "partial", DurNs: execNs,
			Attrs: map[string]string{"groups": fmt.Sprintf("%d", len(res.Groups))}})
		out = res
		return &Result{Message: fmt.Sprintf("%d partial groups", len(res.Groups))}, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ExecCAS executes one mutation statement if and only if the catalog
// version equals expect; on success the version is expect+1. A version
// mismatch returns the current version and a nil result with ok=false —
// not an error — so callers can distinguish "already applied" (version
// is expect+1) from genuine divergence. Concurrent ExecCAS/InsertRowsCAS
// calls serialize on the session's CAS lock, making the
// check-then-apply atomic.
func (s *Session) ExecCAS(ctx context.Context, sql string, expect int64, ov *Overrides) (res *Result, version int64, ok bool, err error) {
	s.cas.Lock()
	defer s.cas.Unlock()
	if v := s.cat.Version(); v != expect {
		return nil, v, false, nil
	}
	stmts, err := s.parseStatements(sql)
	if err != nil {
		return nil, s.cat.Version(), false, err
	}
	if len(stmts) != 1 {
		return nil, s.cat.Version(), false, exec.Wrap(fmt.Errorf("apply expects exactly one statement, got %d", len(stmts)), exec.CodeParse, exec.PhaseParse)
	}
	switch stmts[0].(type) {
	case *ast.CreateTable, *ast.CreateView, *ast.Drop, *ast.Insert, *ast.Truncate:
	default:
		return nil, s.cat.Version(), false, exec.Wrap(fmt.Errorf("apply accepts only mutation statements"), exec.CodeParse, exec.PhaseParse)
	}
	res, err = s.ExecStatementContext(ctx, stmts[0], ov)
	if err != nil {
		return nil, s.cat.Version(), false, err
	}
	return res, s.cat.Version(), true, nil
}

// InsertRowsCAS bulk-inserts pre-partitioned rows if and only if the
// catalog version equals expect (see ExecCAS for the contract). The
// rows are coerced against the target table, so a coordinator can send
// values in wire form.
func (s *Session) InsertRowsCAS(table string, rows [][]sqltypes.Value, expect int64) (version int64, ok bool, err error) {
	s.cas.Lock()
	defer s.cas.Unlock()
	if v := s.cat.Version(); v != expect {
		return v, false, nil
	}
	if err := s.InsertRows(table, rows); err != nil {
		return s.cat.Version(), false, err
	}
	return s.cat.Version(), true, nil
}
