// The live-query registry: every statement entering the guard rail gets
// a session-unique query ID, visible through msql_stats.active_queries
// and cancellable with KILL <id> (or the server's /kill endpoint). The
// kill path reuses the engine's context-cancellation machinery, so a
// killed query fails with the CANCELED taxonomy code at the next
// cooperative checkpoint.
package engine

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Query phases reported in active_queries.
const (
	phasePlan    = "plan"
	phaseExecute = "execute"
)

// liveQuery is one in-flight statement.
type liveQuery struct {
	id          int64
	sql         string
	fingerprint string
	source      string // "repl", "api", "wire"
	requestID   string
	strategy    string
	started     time.Time
	phase       atomic.Value // string
	cancel      context.CancelFunc
}

func (q *liveQuery) setPhase(p string) {
	if q != nil {
		q.phase.Store(p)
	}
}

// queryRegistry tracks in-flight statements for one session.
type queryRegistry struct {
	mu     sync.Mutex
	nextID int64
	live   map[int64]*liveQuery
}

func newQueryRegistry() *queryRegistry {
	return &queryRegistry{live: make(map[int64]*liveQuery)}
}

// register assigns an ID, wraps ctx with a cancel hook for KILL, and
// enters the query into the live set. The returned done func must be
// called when the statement finishes (it also releases the context).
func (r *queryRegistry) register(ctx context.Context, q *liveQuery) (context.Context, func()) {
	ctx, cancel := context.WithCancel(ctx)
	q.cancel = cancel
	q.phase.Store(phasePlan)
	r.mu.Lock()
	r.nextID++
	q.id = r.nextID
	r.live[q.id] = q
	r.mu.Unlock()
	return ctx, func() {
		r.mu.Lock()
		delete(r.live, q.id)
		r.mu.Unlock()
		cancel()
	}
}

// kill cancels the query with the given ID. Returns false if no such
// query is currently running.
func (r *queryRegistry) kill(id int64) bool {
	r.mu.Lock()
	q := r.live[id]
	r.mu.Unlock()
	if q == nil {
		return false
	}
	q.cancel()
	return true
}

// ActiveQuery is a point-in-time view of one in-flight statement.
type ActiveQuery struct {
	ID          int64     `json:"id"`
	SQL         string    `json:"sql"`
	Fingerprint string    `json:"fingerprint,omitempty"`
	Source      string    `json:"source"`
	RequestID   string    `json:"request_id,omitempty"`
	Strategy    string    `json:"strategy"`
	Phase       string    `json:"phase"`
	Started     time.Time `json:"started"`
	ElapsedMs   float64   `json:"elapsed_ms"`
}

// snapshot lists in-flight queries ordered by ID (oldest first).
func (r *queryRegistry) snapshot() []ActiveQuery {
	now := time.Now()
	r.mu.Lock()
	out := make([]ActiveQuery, 0, len(r.live))
	for _, q := range r.live {
		phase, _ := q.phase.Load().(string)
		out = append(out, ActiveQuery{
			ID:          q.id,
			SQL:         q.sql,
			Fingerprint: q.fingerprint,
			Source:      q.source,
			RequestID:   q.requestID,
			Strategy:    q.strategy,
			Phase:       phase,
			Started:     q.started,
			ElapsedMs:   float64(now.Sub(q.started)) / 1e6,
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
