// Queryable introspection: the msql_stats.* virtual tables expose the
// statement-stats store, the live-query registry, the metrics registry,
// and the plan cache as read-only relations, so the engine's own SQL
// surface (including measures) works over its operational state:
//
//	SELECT fingerprint, calls, p99_exec_ms
//	FROM msql_stats.statements ORDER BY p99_exec_ms DESC;
//
// The providers read only their own stores' locks — never the session
// mutex — so a statement scanning msql_stats.* cannot deadlock against
// the statement machinery that is running it.
package engine

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"github.com/measures-sql/msql/internal/catalog"
	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// taggedTracer decorates every span with fixed correlation attributes
// (request_id, query_id). Span-provided attributes win on collision.
type taggedTracer struct {
	t     exec.Tracer
	attrs map[string]string
}

func (tt *taggedTracer) Span(sp exec.Span) {
	merged := make(map[string]string, len(sp.Attrs)+len(tt.attrs))
	for k, v := range tt.attrs {
		merged[k] = v
	}
	for k, v := range sp.Attrs {
		merged[k] = v
	}
	sp.Attrs = merged
	tt.t.Span(sp)
}

func nsToMs(ns int64) float64 { return float64(ns) / 1e6 }

// registerSystemTables installs the msql_stats.* virtual tables into
// the session catalog. Called once from New; registration errors are
// impossible by construction (fixed names, matched column lists).
func (s *Session) registerSystemTables() {
	intT := sqltypes.Type{Kind: sqltypes.KindInt}
	floatT := sqltypes.Type{Kind: sqltypes.KindFloat}
	strT := sqltypes.Type{Kind: sqltypes.KindString}

	mustRegister := func(t *catalog.VirtualTable) {
		if err := s.cat.RegisterVirtual(t); err != nil {
			panic(fmt.Sprintf("registerSystemTables: %v", err))
		}
	}

	mustRegister(&catalog.VirtualTable{
		TableName: "msql_stats.statements",
		Cols: []string{
			"fingerprint", "calls", "errors", "rows_returned", "cache_hits", "memo_hits",
			"p50_plan_ms", "p99_plan_ms", "p50_exec_ms", "p95_exec_ms", "p99_exec_ms",
			"total_exec_ms",
		},
		Types: []sqltypes.Type{
			strT, intT, intT, intT, intT, intT,
			floatT, floatT, floatT, floatT, floatT,
			floatT,
		},
		Provider: func() [][]sqltypes.Value {
			stats := s.stmts.snapshot()
			rows := make([][]sqltypes.Value, 0, len(stats))
			for _, st := range stats {
				rows = append(rows, []sqltypes.Value{
					sqltypes.NewString(st.Fingerprint),
					sqltypes.NewInt(st.Calls),
					sqltypes.NewInt(st.Errors),
					sqltypes.NewInt(st.Rows),
					sqltypes.NewInt(st.CacheHits),
					sqltypes.NewInt(st.MemoHits),
					sqltypes.NewFloat(nsToMs(st.Plan.P50Ns)),
					sqltypes.NewFloat(nsToMs(st.Plan.P99Ns)),
					sqltypes.NewFloat(nsToMs(st.Exec.P50Ns)),
					sqltypes.NewFloat(nsToMs(st.Exec.P95Ns)),
					sqltypes.NewFloat(nsToMs(st.Exec.P99Ns)),
					sqltypes.NewFloat(nsToMs(st.Exec.SumNs)),
				})
			}
			return rows
		},
	})

	mustRegister(&catalog.VirtualTable{
		TableName: "msql_stats.active_queries",
		Cols: []string{
			"query_id", "source", "phase", "sql", "request_id", "strategy",
			"elapsed_ms", "started",
		},
		Types: []sqltypes.Type{
			intT, strT, strT, strT, strT, strT,
			floatT, strT,
		},
		Provider: func() [][]sqltypes.Value {
			live := s.queries.snapshot()
			rows := make([][]sqltypes.Value, 0, len(live))
			for _, q := range live {
				rows = append(rows, []sqltypes.Value{
					sqltypes.NewInt(q.ID),
					sqltypes.NewString(q.Source),
					sqltypes.NewString(q.Phase),
					sqltypes.NewString(q.SQL),
					sqltypes.NewString(q.RequestID),
					sqltypes.NewString(q.Strategy),
					sqltypes.NewFloat(q.ElapsedMs),
					sqltypes.NewString(q.Started.UTC().Format(time.RFC3339Nano)),
				})
			}
			return rows
		},
	})

	mustRegister(&catalog.VirtualTable{
		TableName: "msql_stats.metrics",
		Cols:      []string{"name", "value"},
		Types:     []sqltypes.Type{strT, floatT},
		Provider: func() [][]sqltypes.Value {
			flat := flattenMetrics(s.metrics.Snapshot())
			names := make([]string, 0, len(flat))
			for k := range flat {
				names = append(names, k)
			}
			sort.Strings(names)
			rows := make([][]sqltypes.Value, 0, len(names))
			for _, k := range names {
				rows = append(rows, []sqltypes.Value{
					sqltypes.NewString(k), sqltypes.NewFloat(flat[k]),
				})
			}
			return rows
		},
	})

	mustRegister(&catalog.VirtualTable{
		TableName: "msql_stats.storage",
		Cols: []string{
			"sync_policy", "wal_appends", "wal_append_bytes", "wal_fsyncs",
			"wal_bytes", "wal_seq", "wal_durable_seq", "checkpoints",
			"checkpoint_ms", "last_checkpoint_ms", "recovery_ms",
			"recovered_records", "torn_tail_bytes",
		},
		Types: []sqltypes.Type{
			strT, intT, intT, intT,
			intT, intT, intT, intT,
			floatT, floatT, floatT,
			intT, intT,
		},
		Provider: func() [][]sqltypes.Value {
			if s.dur == nil {
				return nil // in-memory session: no durability state to report
			}
			sc := storageCounters(s.dur.wal)
			return [][]sqltypes.Value{{
				sqltypes.NewString(sc.SyncPolicy),
				sqltypes.NewInt(sc.WALAppends),
				sqltypes.NewInt(sc.WALAppendBytes),
				sqltypes.NewInt(sc.WALFsyncs),
				sqltypes.NewInt(sc.WALBytes),
				sqltypes.NewInt(sc.WALSeq),
				sqltypes.NewInt(sc.WALDurableSeq),
				sqltypes.NewInt(sc.Checkpoints),
				sqltypes.NewFloat(nsToMs(sc.CheckpointNs)),
				sqltypes.NewFloat(nsToMs(sc.LastCheckpointNs)),
				sqltypes.NewFloat(nsToMs(sc.RecoveryNs)),
				sqltypes.NewInt(sc.RecoveredRecords),
				sqltypes.NewInt(sc.TornTailBytes),
			}}
		},
	})

	mustRegister(&catalog.VirtualTable{
		TableName: "msql_stats.rollups",
		Cols: []string{
			"table_name", "keys", "aggs", "groups", "dirty", "rows_seen",
			"exact", "disabled",
		},
		Types: []sqltypes.Type{
			strT, strT, strT, intT, intT, intT,
			intT, intT,
		},
		Provider: func() [][]sqltypes.Value {
			l := s.rollups.Load()
			if l == nil {
				return nil // rollups disabled: no lattice to report
			}
			boolInt := func(b bool) sqltypes.Value {
				if b {
					return sqltypes.NewInt(1)
				}
				return sqltypes.NewInt(0)
			}
			infos := l.Snapshot()
			rows := make([][]sqltypes.Value, 0, len(infos))
			for _, ni := range infos {
				rows = append(rows, []sqltypes.Value{
					sqltypes.NewString(ni.Table),
					sqltypes.NewString(ni.Keys),
					sqltypes.NewString(ni.Aggs),
					sqltypes.NewInt(int64(ni.Groups)),
					sqltypes.NewInt(int64(ni.Dirty)),
					sqltypes.NewInt(int64(ni.RowsSeen)),
					boolInt(ni.Exact),
					boolInt(ni.Disabled),
				})
			}
			return rows
		},
	})

	mustRegister(&catalog.VirtualTable{
		TableName: "msql_stats.plan_cache",
		Cols: []string{
			"hits", "misses", "evictions", "invalidations", "bypasses",
			"memo_hits", "entries",
		},
		Types: []sqltypes.Type{intT, intT, intT, intT, intT, intT, intT},
		Provider: func() [][]sqltypes.Value {
			pc := s.plans.counters()
			return [][]sqltypes.Value{{
				sqltypes.NewInt(pc.Hits),
				sqltypes.NewInt(pc.Misses),
				sqltypes.NewInt(pc.Evictions),
				sqltypes.NewInt(pc.Invalidations),
				sqltypes.NewInt(pc.Bypasses),
				sqltypes.NewInt(pc.MemoHits),
				sqltypes.NewInt(pc.Entries),
			}}
		},
	})
}

// flattenMetrics turns the nested metrics snapshot into dotted
// name→value pairs (by_strategy.memo.queries, plan_cache.hits, ...) by
// round-tripping through its JSON form, so new snapshot fields appear
// in msql_stats.metrics without further wiring.
func flattenMetrics(snap MetricsSnapshot) map[string]float64 {
	raw, err := json.Marshal(snap)
	if err != nil {
		return nil
	}
	var tree any
	if err := json.Unmarshal(raw, &tree); err != nil {
		return nil
	}
	out := map[string]float64{}
	flattenJSON("", tree, out)
	return out
}

func flattenJSON(prefix string, v any, out map[string]float64) {
	switch v := v.(type) {
	case map[string]any:
		for k, child := range v {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flattenJSON(key, child, out)
		}
	case float64:
		out[prefix] = v
	case bool:
		if v {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	}
}
