// Plan cache: compiled query plans keyed by normalized SQL text,
// parameter types, and the settings that influenced planning, with LRU
// eviction and catalog-version invalidation. A cached entry carries the
// optimized plan.Node plus a reusable exec.Pipeline (compiled vectorized
// expression trees and pooled batch scratch), so a warm EXECUTE skips
// parse, bind, optimize, and vectorized compilation entirely.
package engine

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"github.com/measures-sql/msql/internal/catalog"
	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// DefaultPlanCacheSize is the per-session entry cap; SetPlanCacheSize
// changes it (0 disables caching entirely).
const DefaultPlanCacheSize = 128

// cachedPlan is one plan-cache entry: everything runQuery would have
// produced for this (query, parameter types, settings) triple, ready to
// execute with only parameter values injected at run time.
type cachedPlan struct {
	key     string
	version int64 // catalog version the plan was built against
	node    plan.Node
	pipe    *exec.Pipeline
	columns []string
	types   []sqltypes.Type

	// Identical-binding result memo: dashboards re-issue the same query
	// with the same arguments, so each entry keeps the result rows of
	// its last few parameter bindings. Safe because the entry is built
	// from a non-volatile plan, is dropped whenever the catalog version
	// bumps, and execution is deterministic under fixed settings (the
	// settings are part of the entry's key).
	memoMu  sync.Mutex
	memo    map[string]*list.Element
	memoLRU *list.List // front = most recent; values are *memoResult
}

// memoMaxRows bounds the size of a memoized result; memoMaxBindings
// bounds how many distinct parameter bindings one entry remembers.
const (
	memoMaxRows     = 4096
	memoMaxBindings = 8
)

type memoResult struct {
	key  string
	rows [][]sqltypes.Value
}

// paramMemoKey encodes parameter values for the result memo. Kinds are
// already fixed by the entry's cache key, so the value encoding alone
// (AppendKey separates NULL, type, and content) is collision-free.
func paramMemoKey(vals []sqltypes.Value) string {
	var buf []byte
	for _, v := range vals {
		buf = v.AppendKey(buf)
	}
	return string(buf)
}

// copyRows deep-copies result rows so a memoized result and the rows
// handed to a caller never share mutable storage.
func copyRows(rows [][]sqltypes.Value) [][]sqltypes.Value {
	if rows == nil {
		return nil
	}
	out := make([][]sqltypes.Value, len(rows))
	for i, r := range rows {
		cr := make([]sqltypes.Value, len(r))
		copy(cr, r)
		out[i] = cr
	}
	return out
}

// memoLookup returns a copy of the memoized rows for this binding, if
// present.
func (e *cachedPlan) memoLookup(key string) ([][]sqltypes.Value, bool) {
	e.memoMu.Lock()
	defer e.memoMu.Unlock()
	if e.memo == nil {
		return nil, false
	}
	el, ok := e.memo[key]
	if !ok {
		return nil, false
	}
	e.memoLRU.MoveToFront(el)
	return copyRows(el.Value.(*memoResult).rows), true
}

// memoStore remembers rows for this binding, evicting the least
// recently used binding past the cap. Oversized results are skipped.
func (e *cachedPlan) memoStore(key string, rows [][]sqltypes.Value) {
	if len(rows) > memoMaxRows {
		return
	}
	e.memoMu.Lock()
	defer e.memoMu.Unlock()
	if e.memo == nil {
		e.memo = map[string]*list.Element{}
		e.memoLRU = list.New()
	}
	if el, ok := e.memo[key]; ok {
		el.Value.(*memoResult).rows = copyRows(rows)
		e.memoLRU.MoveToFront(el)
		return
	}
	e.memo[key] = e.memoLRU.PushFront(&memoResult{key: key, rows: copyRows(rows)})
	for e.memoLRU.Len() > memoMaxBindings {
		tail := e.memoLRU.Back()
		e.memoLRU.Remove(tail)
		delete(e.memo, tail.Value.(*memoResult).key)
	}
}

// PlanCacheCounters is a point-in-time copy of the plan cache's
// counters, embedded in MetricsSnapshot and served by msqld.
type PlanCacheCounters struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	// Bypasses counts executions that skipped the cache because the
	// plan contains volatile expressions (e.g. RANDOM) or caching is
	// disabled.
	Bypasses int64 `json:"bypasses"`
	// MemoHits counts executions answered from a cached entry's
	// identical-binding result memo without re-executing the plan.
	MemoHits int64 `json:"memo_hits"`
	// Entries is the current resident entry count (a gauge).
	Entries int64 `json:"entries"`
}

// planCache is an LRU map of compiled plans. Entries whose catalog
// version is stale are dropped at lookup time (counted as
// invalidations); the catalog version is part of the entry, not the
// key, so DDL and INSERT invalidate rather than strand old entries.
type planCache struct {
	mu    sync.Mutex
	size  int
	lru   *list.List // front = most recently used; values are *cachedPlan
	items map[string]*list.Element

	hits, misses, evictions, invalidations, bypasses, memoHits int64
}

func newPlanCache(size int) *planCache {
	return &planCache{size: size, lru: list.New(), items: map[string]*list.Element{}}
}

// enabled reports whether lookups can ever hit (size > 0).
func (c *planCache) enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size > 0
}

// lookup returns the entry under key if present and built against the
// current catalog version; stale entries are removed and counted as
// invalidations. A nil return is a miss (already counted).
func (c *planCache) lookup(key string, version int64) *cachedPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil
	}
	e := el.Value.(*cachedPlan)
	if e.version != version {
		c.lru.Remove(el)
		delete(c.items, key)
		c.invalidations++
		c.misses++
		return nil
	}
	c.lru.MoveToFront(el)
	c.hits++
	return e
}

// insert adds an entry, evicting from the LRU tail past the size cap.
// A concurrent insert under the same key wins by replacement; both
// entries are equivalent, so either is safe to serve.
func (c *planCache) insert(e *cachedPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.size <= 0 {
		return
	}
	if el, ok := c.items[e.key]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.items[e.key] = c.lru.PushFront(e)
	for c.lru.Len() > c.size {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.items, tail.Value.(*cachedPlan).key)
		c.evictions++
	}
}

// noteBypass counts an execution that skipped the cache.
func (c *planCache) noteBypass() {
	c.mu.Lock()
	c.bypasses++
	c.mu.Unlock()
}

// noteMemoHit counts an execution answered from a result memo.
func (c *planCache) noteMemoHit() {
	c.mu.Lock()
	c.memoHits++
	c.mu.Unlock()
}

// setSize changes the entry cap, evicting down to the new cap; 0 (or
// negative) disables caching and clears the cache. Safe to call while
// executions are in flight — entries already handed out stay valid.
func (c *planCache) setSize(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.size = n
	if n <= 0 {
		c.lru.Init()
		c.items = map[string]*list.Element{}
		return
	}
	for c.lru.Len() > n {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.items, tail.Value.(*cachedPlan).key)
		c.evictions++
	}
}

// counters returns a consistent copy of the cache counters.
func (c *planCache) counters() PlanCacheCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheCounters{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Bypasses:      c.bypasses,
		MemoHits:      c.memoHits,
		Entries:       int64(c.lru.Len()),
	}
}

// planCacheKey builds the full cache key: normalized query text (the
// printer renders parameters canonically as $n), the parameter kind
// signature, and every setting that can change the chosen plan or its
// compiled pipeline. The catalog version is deliberately not part of
// the key — it lives on the entry so that DDL/INSERT invalidates
// in place instead of stranding stale entries until eviction.
func planCacheKey(sqlNorm string, kinds []sqltypes.Kind, cfg *stmtConfig) string {
	var sb strings.Builder
	sb.WriteString(sqlNorm)
	sb.WriteString("\x00params=")
	for i, k := range kinds {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k.String())
	}
	ex := cfg.exec
	fmt.Fprintf(&sb, "\x00strategy=%s workers=%d vec=%t memo=%t limits=%+v opt=%+v",
		cfg.strategy, ex.Workers, ex.Vectorized, ex.MemoizeSubqueries, ex.Limits, cfg.opt)
	return sb.String()
}

// cacheKeyDigest is the short form shown in spans and EXPLAIN output.
func cacheKeyDigest(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("%016x", h.Sum64())
}

// planCacheable reports whether a plan may be cached and re-executed:
// every expression in every node (including nested subquery plans) must
// be non-volatile. A plan containing RANDOM() must be replanned per
// execution so constant folding and pipeline reuse cannot freeze its
// per-row results. Scans over msql_stats.* virtual tables are likewise
// excluded: their contents change on every statement without a catalog
// version bump, so both the plan cache's result memo and pipeline reuse
// would serve stale introspection data.
func planCacheable(n plan.Node) bool {
	if !plan.NodeParallelSafe(n) {
		return false
	}
	if sc, ok := n.(*plan.Scan); ok {
		if _, virtual := sc.Source.(*catalog.VirtualTable); virtual {
			return false
		}
	}
	if subqueryHasVirtualScan(n) {
		return false
	}
	for _, c := range n.Children() {
		if !planCacheable(c) {
			return false
		}
	}
	return true
}

// subqueryHasVirtualScan checks the subquery plans embedded in n's own
// expressions (child nodes are covered by planCacheable's recursion).
func subqueryHasVirtualScan(n plan.Node) bool {
	found := false
	plan.VisitNodeExprs(n, func(e plan.Expr) {
		plan.WalkExprs(e, func(x plan.Expr) {
			if sq, ok := x.(*plan.Subquery); ok && !planCacheable(sq.Plan) {
				found = true
			}
		})
	})
	return found
}
