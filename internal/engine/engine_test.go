package engine

import (
	"strings"
	"testing"

	"github.com/measures-sql/msql/internal/sqltypes"
)

// newSession creates a session preloaded with small test tables.
func newSession(t testing.TB) *Session {
	t.Helper()
	s := New()
	_, err := s.Execute(`
		CREATE TABLE nums (n INTEGER, grp VARCHAR);
		INSERT INTO nums VALUES (1, 'a'), (2, 'a'), (3, 'b'), (4, 'b'), (5, NULL);
		CREATE TABLE pets (name VARCHAR, owner VARCHAR);
		INSERT INTO pets VALUES ('Rex', 'a'), ('Tom', 'b'), ('Jab', 'zz');
	`)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// rows renders all result rows as pipe-joined strings.
func rows(t testing.TB, s *Session, sql string) []string {
	t.Helper()
	res, err := s.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func expect(t *testing.T, s *Session, sql string, want ...string) {
	t.Helper()
	got := rows(t, s, sql)
	if len(got) != len(want) {
		t.Fatalf("%q: got %d rows %v, want %d %v", sql, len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%q row %d: got %q want %q", sql, i, got[i], want[i])
		}
	}
}

func expectErr(t *testing.T, s *Session, sql, needle string) {
	t.Helper()
	_, err := s.Execute(sql)
	if err == nil {
		t.Fatalf("%q: expected error containing %q", sql, needle)
	}
	if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(needle)) {
		t.Errorf("%q: error %q does not mention %q", sql, err, needle)
	}
}

func TestBasicSelect(t *testing.T) {
	s := newSession(t)
	expect(t, s, `SELECT n + 1 AS m FROM nums WHERE n < 3 ORDER BY n`, "2", "3")
	expect(t, s, `SELECT DISTINCT grp FROM nums ORDER BY grp NULLS FIRST`, "NULL", "a", "b")
	expect(t, s, `SELECT n FROM nums ORDER BY n DESC LIMIT 2`, "5", "4")
	expect(t, s, `SELECT n FROM nums ORDER BY n LIMIT 2 OFFSET 2`, "3", "4")
	expect(t, s, `SELECT 1 + 2 AS x`, "3")
	expect(t, s, `SELECT CASE WHEN n > 3 THEN 'big' ELSE 'small' END AS size
	              FROM nums WHERE n IN (1, 5) ORDER BY n`, "small", "big")
}

func TestAggregates(t *testing.T) {
	s := newSession(t)
	expect(t, s, `SELECT grp, SUM(n), COUNT(*), AVG(n) FROM nums
	              WHERE grp IS NOT NULL GROUP BY grp ORDER BY grp`,
		"a|3|2|1.5", "b|7|2|3.5")
	expect(t, s, `SELECT COUNT(*), COUNT(grp), COUNT(DISTINCT grp) FROM nums`, "5|4|2")
	expect(t, s, `SELECT SUM(n) FILTER (WHERE grp = 'a') AS sa FROM nums`, "3")
	expect(t, s, `SELECT grp FROM nums GROUP BY grp HAVING COUNT(*) > 1 ORDER BY grp`, "a", "b")
	// Empty input: global aggregate still returns one row.
	expect(t, s, `SELECT COUNT(*), SUM(n) FROM nums WHERE n > 100`, "0|NULL")
	// GROUP BY ordinal and alias.
	expect(t, s, `SELECT grp AS g, COUNT(*) FROM nums WHERE grp IS NOT NULL GROUP BY 1 ORDER BY g`, "a|2", "b|2")
	expect(t, s, `SELECT grp AS g, COUNT(*) FROM nums WHERE grp IS NOT NULL GROUP BY g ORDER BY g`, "a|2", "b|2")
}

func TestGroupingSets(t *testing.T) {
	s := newSession(t)
	expect(t, s, `SELECT grp, COUNT(*) AS c, GROUPING(grp) AS g FROM nums
	              GROUP BY ROLLUP(grp) ORDER BY g, grp NULLS FIRST`,
		"NULL|1|0", "a|2|0", "b|2|0", "NULL|5|1")
	expect(t, s, `SELECT grp, n, COUNT(*) FROM nums WHERE n <= 2
	              GROUP BY CUBE(grp, n) ORDER BY grp NULLS FIRST, n NULLS FIRST`,
		"NULL|NULL|2", "NULL|1|1", "NULL|2|1", "a|NULL|2", "a|1|1", "a|2|1")
	expect(t, s, `SELECT grp, COUNT(*) FROM nums GROUP BY GROUPING SETS((grp), ()) ORDER BY grp NULLS FIRST, 2`,
		"NULL|1", "NULL|5", "a|2", "b|2")
}

func TestJoins(t *testing.T) {
	s := newSession(t)
	expect(t, s, `SELECT p.name, n.n FROM pets AS p JOIN nums AS n ON p.owner = n.grp
	              ORDER BY p.name, n.n`,
		"Rex|1", "Rex|2", "Tom|3", "Tom|4")
	expect(t, s, `SELECT p.name, n.n FROM pets AS p LEFT JOIN nums AS n ON p.owner = n.grp
	              ORDER BY p.name, n.n NULLS FIRST`,
		"Jab|NULL", "Rex|1", "Rex|2", "Tom|3", "Tom|4")
	expect(t, s, `SELECT p.name, n.n FROM nums AS n RIGHT JOIN pets AS p ON p.owner = n.grp
	              ORDER BY p.name, n.n NULLS FIRST`,
		"Jab|NULL", "Rex|1", "Rex|2", "Tom|3", "Tom|4")
	expect(t, s, `SELECT COUNT(*) FROM pets AS p FULL JOIN nums AS n ON p.owner = n.grp`,
		"6") // 4 matches + Jab + NULL-group row
	expect(t, s, `SELECT COUNT(*) FROM pets, nums`, "15")
	expect(t, s, `SELECT COUNT(*) FROM pets CROSS JOIN nums`, "15")
	// Non-equi join runs on the nested-loop path.
	expect(t, s, `SELECT COUNT(*) FROM nums AS a JOIN nums AS b ON a.n < b.n`, "10")
	// NULL keys never match.
	expect(t, s, `SELECT COUNT(*) FROM nums AS a JOIN nums AS b ON a.grp = b.grp`, "8")
}

func TestUsingAndNatural(t *testing.T) {
	s := New()
	if _, err := s.Execute(`
		CREATE TABLE l (k INTEGER, a VARCHAR);
		CREATE TABLE r (k INTEGER, b VARCHAR);
		INSERT INTO l VALUES (1, 'x'), (2, 'y');
		INSERT INTO r VALUES (1, 'X'), (3, 'Z');
	`); err != nil {
		t.Fatal(err)
	}
	expect(t, s, `SELECT k, a, b FROM l JOIN r USING (k)`, "1|x|X")
	expect(t, s, `SELECT k, a, b FROM l NATURAL JOIN r`, "1|x|X")
	// SELECT * shows the USING column once.
	res, err := s.Query(`SELECT * FROM l JOIN r USING (k)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 {
		t.Errorf("USING star width = %d (%v), want 3", len(res.Columns), res.Columns)
	}
}

func TestSetOps(t *testing.T) {
	s := newSession(t)
	expect(t, s, `SELECT n FROM nums WHERE n <= 2 UNION ALL SELECT n FROM nums WHERE n <= 1 ORDER BY 1`,
		"1", "1", "2")
	expect(t, s, `SELECT n FROM nums WHERE n <= 2 UNION SELECT n FROM nums WHERE n <= 3 ORDER BY 1`,
		"1", "2", "3")
	expect(t, s, `SELECT n FROM nums INTERSECT SELECT n FROM nums WHERE n > 3 ORDER BY 1`,
		"4", "5")
	expect(t, s, `SELECT n FROM nums EXCEPT SELECT n FROM nums WHERE n > 2 ORDER BY 1`,
		"1", "2")
	expect(t, s, `SELECT n FROM nums WHERE n <= 2 UNION ALL SELECT n FROM nums WHERE n <= 2
	              EXCEPT ALL SELECT n FROM nums WHERE n = 1 ORDER BY 1`,
		"1", "2", "2")
}

func TestSubqueries(t *testing.T) {
	s := newSession(t)
	expect(t, s, `SELECT n FROM nums WHERE n = (SELECT MAX(n) FROM nums)`, "5")
	expect(t, s, `SELECT n FROM nums WHERE n IN (SELECT n + 1 FROM nums WHERE n <= 2) ORDER BY n`,
		"2", "3")
	expect(t, s, `SELECT n FROM nums AS o
	              WHERE EXISTS (SELECT 1 FROM pets WHERE owner = o.grp) ORDER BY n`,
		"1", "2", "3", "4")
	expect(t, s, `SELECT n FROM nums AS o
	              WHERE NOT EXISTS (SELECT 1 FROM pets WHERE owner = o.grp) ORDER BY n`,
		"5")
	// Correlated scalar subquery per row.
	expect(t, s, `SELECT n, (SELECT COUNT(*) FROM nums AS i WHERE i.n < o.n) AS below
	              FROM nums AS o WHERE n <= 2 ORDER BY n`,
		"1|0", "2|1")
	// Scalar subquery with two rows errors at runtime.
	_, err := s.Query(`SELECT (SELECT n FROM nums WHERE n <= 2) AS x`)
	if err == nil || !strings.Contains(err.Error(), "scalar subquery") {
		t.Errorf("expected scalar subquery error, got %v", err)
	}
	// NOT IN with NULLs: standard three-valued logic.
	expect(t, s, `SELECT COUNT(*) FROM nums WHERE grp NOT IN (SELECT grp FROM nums WHERE grp IS NOT NULL)`, "0")
}

func TestWindows(t *testing.T) {
	s := newSession(t)
	expect(t, s, `SELECT n, SUM(n) OVER (PARTITION BY grp) AS tot FROM nums WHERE grp IS NOT NULL ORDER BY n`,
		"1|3", "2|3", "3|7", "4|7")
	expect(t, s, `SELECT n, SUM(n) OVER (ORDER BY n) AS run FROM nums ORDER BY n`,
		"1|1", "2|3", "3|6", "4|10", "5|15")
	expect(t, s, `SELECT n, ROW_NUMBER() OVER (ORDER BY n DESC) AS rn FROM nums ORDER BY n LIMIT 2`,
		"1|5", "2|4")
	expect(t, s, `SELECT n, LAG(n) OVER (ORDER BY n) AS prev FROM nums ORDER BY n LIMIT 3`,
		"1|NULL", "2|1", "3|2")
	expect(t, s, `SELECT n, LEAD(n, 2, 0) OVER (ORDER BY n) AS next2 FROM nums ORDER BY n DESC LIMIT 2`,
		"5|0", "4|0")
	expect(t, s, `SELECT n, FIRST_VALUE(n) OVER (PARTITION BY grp ORDER BY n) AS f,
	                     LAST_VALUE(n) OVER (PARTITION BY grp ORDER BY n ROWS BETWEEN UNBOUNDED PRECEDING AND UNBOUNDED FOLLOWING) AS l
	              FROM nums WHERE grp = 'a' ORDER BY n`,
		"1|1|2", "2|1|2")
	// RANK with ties.
	s2 := New()
	if _, err := s2.Execute(`CREATE TABLE t (v INTEGER); INSERT INTO t VALUES (10), (10), (20)`); err != nil {
		t.Fatal(err)
	}
	expect(t, s2, `SELECT v, RANK() OVER (ORDER BY v) AS r, DENSE_RANK() OVER (ORDER BY v) AS d
	               FROM t ORDER BY v, r`,
		"10|1|1", "10|1|1", "20|3|2")
	// Running aggregates share values across peers (RANGE semantics).
	expect(t, s2, `SELECT v, SUM(v) OVER (ORDER BY v) AS run FROM t ORDER BY v`,
		"10|20", "10|20", "20|40")
}

func TestCTE(t *testing.T) {
	s := newSession(t)
	expect(t, s, `WITH big AS (SELECT n FROM nums WHERE n >= 4)
	              SELECT COUNT(*) FROM big`, "2")
	expect(t, s, `WITH a AS (SELECT 1 AS x), b AS (SELECT x + 1 AS y FROM a)
	              SELECT y FROM b`, "2")
}

func TestInsertSelectAndDrop(t *testing.T) {
	s := newSession(t)
	if _, err := s.Execute(`CREATE TABLE copy (n INTEGER, grp VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(`INSERT INTO copy SELECT n, grp FROM nums WHERE n <= 2`); err != nil {
		t.Fatal(err)
	}
	expect(t, s, `SELECT COUNT(*) FROM copy`, "2")
	// Column-list insert fills missing columns with NULL.
	if _, err := s.Execute(`INSERT INTO copy (n) VALUES (99)`); err != nil {
		t.Fatal(err)
	}
	expect(t, s, `SELECT grp FROM copy WHERE n = 99`, "NULL")
	if _, err := s.Execute(`DROP TABLE copy`); err != nil {
		t.Fatal(err)
	}
	expectErr(t, s, `SELECT * FROM copy`, "does not exist")
}

func TestViewsAndExplain(t *testing.T) {
	s := newSession(t)
	if _, err := s.Execute(`CREATE VIEW evens AS SELECT n FROM nums WHERE n % 2 = 0`); err != nil {
		t.Fatal(err)
	}
	expect(t, s, `SELECT n FROM evens ORDER BY n`, "2", "4")
	// Invalid view definitions fail at CREATE time.
	expectErr(t, s, `CREATE VIEW bad AS SELECT missing FROM nums`, "invalid view definition")
	res, err := s.Execute(`EXPLAIN SELECT grp, COUNT(*) FROM nums GROUP BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res[0].Message, "Aggregate") || !strings.Contains(res[0].Message, "Scan nums") {
		t.Errorf("explain output:\n%s", res[0].Message)
	}
}

func TestErrorMessages(t *testing.T) {
	s := newSession(t)
	expectErr(t, s, `SELECT missing FROM nums`, "not found")
	expectErr(t, s, `SELECT n FROM nums, pets WHERE name = 1`, "incompatible types")
	expectErr(t, s, `SELECT grp FROM nums GROUP BY n`, "GROUP BY")
	expectErr(t, s, `SELECT SUM(SUM(n)) FROM nums`, "nested")
	expectErr(t, s, `SELECT n FROM nums WHERE SUM(n) > 1`, "not allowed")
	expectErr(t, s, `SELECT UNKNOWN_FUNC(n) FROM nums`, "unknown function")
	expectErr(t, s, `SELECT n FROM nums UNION SELECT n, grp FROM nums`, "same number of columns")
	expectErr(t, s, `CREATE TABLE bad (x NONSENSE)`, "unknown type")
	expectErr(t, s, `INSERT INTO nums (nope) VALUES (1)`, "does not exist")
	expectErr(t, s, `SELECT n FROM nums ORDER BY 9`, "out of range")
	expectErr(t, s, `SELECT nums.n FROM nums AS a`, "not found")
	// Ambiguous column across two relations.
	expectErr(t, s, `SELECT n FROM nums AS a, nums AS b`, "ambiguous")
}

func TestNullSemantics(t *testing.T) {
	s := newSession(t)
	expect(t, s, `SELECT COUNT(*) FROM nums WHERE grp = NULL`, "0")
	expect(t, s, `SELECT COUNT(*) FROM nums WHERE grp IS NULL`, "1")
	expect(t, s, `SELECT COUNT(*) FROM nums WHERE grp IS NOT DISTINCT FROM NULL`, "1")
	expect(t, s, `SELECT COUNT(*) FROM nums WHERE NOT (grp = 'a')`, "2")
	expect(t, s, `SELECT n FROM nums WHERE n BETWEEN 2 AND 3 ORDER BY n`, "2", "3")
	expect(t, s, `SELECT COALESCE(grp, '?') AS g FROM nums WHERE n = 5`, "?")
	// NULL group key forms its own group.
	expect(t, s, `SELECT grp, COUNT(*) FROM nums GROUP BY grp ORDER BY grp NULLS LAST`,
		"a|2", "b|2", "NULL|1")
}

func TestDateHandling(t *testing.T) {
	s := New()
	if _, err := s.Execute(`
		CREATE TABLE d (dt DATE);
		INSERT INTO d VALUES (DATE '2024-02-28'), (DATE '2024-03-01');
	`); err != nil {
		t.Fatal(err)
	}
	expect(t, s, `SELECT dt + 2 FROM d ORDER BY dt LIMIT 1`, "2024-03-01")
	expect(t, s, `SELECT YEAR(dt), MONTH(dt) FROM d ORDER BY dt LIMIT 1`, "2024|2")
	expect(t, s, `SELECT MAX(dt) - MIN(dt) FROM d`, "2")
	expect(t, s, `SELECT COUNT(*) FROM d WHERE dt >= DATE '2024-03-01'`, "1")
	expect(t, s, `SELECT CAST('2024-05-05' AS DATE) AS c`, "2024-05-05")
}

func TestInsertRowsBulk(t *testing.T) {
	s := New()
	if _, err := s.Execute(`CREATE TABLE t (a INTEGER, b VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	err := s.InsertRows("t", [][]sqltypes.Value{
		{sqltypes.NewInt(1), sqltypes.NewString("x")},
		{sqltypes.NewInt(2), sqltypes.NewString("y")},
	})
	if err != nil {
		t.Fatal(err)
	}
	expect(t, s, `SELECT COUNT(*) FROM t`, "2")
	if err := s.InsertRows("missing", nil); err == nil {
		t.Error("bulk insert into missing table should fail")
	}
}

func TestQualify(t *testing.T) {
	s := newSession(t)
	// Top value per group, directly via QUALIFY.
	expect(t, s, `
		SELECT grp, n FROM nums
		WHERE grp IS NOT NULL
		QUALIFY ROW_NUMBER() OVER (PARTITION BY grp ORDER BY n DESC) = 1
		ORDER BY grp`,
		"a|2", "b|4")
	// QUALIFY can combine window values with row values.
	expect(t, s, `
		SELECT n FROM nums
		QUALIFY n > AVG(n) OVER ()
		ORDER BY n`,
		"4", "5")
	expectErr(t, s, `SELECT grp, COUNT(*) FROM nums GROUP BY grp QUALIFY COUNT(*) > 1`, "QUALIFY")
}

func TestExplainAndExpandStatements(t *testing.T) {
	s := newSession(t)
	if _, err := s.Execute(`CREATE VIEW MV2 AS
		SELECT *, SUM(n) AS MEASURE total FROM nums`); err != nil {
		t.Fatal(err)
	}
	// EXPAND as a SQL statement returns the rewritten text as a message.
	res, err := s.Execute(`EXPAND SELECT grp, AGGREGATE(total) AS v FROM MV2 GROUP BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res[0].Message, "SUM(i.n)") {
		t.Errorf("EXPAND statement output:\n%s", res[0].Message)
	}
	// EXPLAIN of a measure query shows the plan (inlined: an Aggregate).
	res, err = s.Execute(`EXPLAIN SELECT grp, AGGREGATE(total) AS v FROM MV2 GROUP BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res[0].Message, "Aggregate") {
		t.Errorf("EXPLAIN statement output:\n%s", res[0].Message)
	}
}
