package engine

import (
	"fmt"
	"strings"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/binder"
	"github.com/measures-sql/msql/internal/fn"
)

// ExpandQuery rewrites a query that uses measures into measure-free SQL,
// the paper's §4.2 static-rewrite strategy shown in Listings 5 and 11:
// each measure reference becomes a correlated scalar subquery over the
// measure's base table whose WHERE clause spells out the evaluation
// context. The returned text re-parses and executes on this same engine,
// and the golden tests assert it produces identical results to the
// measure query.
//
// Supported shape: a SELECT whose FROM is a single view, CTE or derived
// table defining measures (or any measure-free query, returned
// unchanged); GROUP BY of plain expressions; the AT modifiers of Table 3.
// Joins and ROLLUP fall back with an error — the executable closure
// strategy still handles them; only the SQL *display* is limited.
func (s *Session) ExpandQuery(q *ast.Query) (string, error) {
	// Validate the original binds before rewriting.
	if _, err := binder.New(s.cat).BindQuery(q); err != nil {
		return "", err
	}
	out, err := s.expandQueryAST(q)
	if err != nil {
		return "", err
	}
	return ast.FormatQuery(out), nil
}

type measureDef struct {
	formula ast.Expr
}

// expander holds the rewrite context for one SELECT.
type expander struct {
	session    *Session
	measures   map[string]*measureDef
	dims       map[string]ast.Expr // dim name -> expression over base columns
	dimOrder   []string
	baseFrom   ast.TableExpr // measure base relation (view's FROM or derived)
	baseWhere  ast.Expr      // view's own WHERE (baked in)
	outerAlias string
	innerAlias string
	groupExprs []ast.Expr
	groupNames []string
	outerWhere ast.Expr
	aggregate  bool
}

func (s *Session) expandQueryAST(q *ast.Query) (*ast.Query, error) {
	sel, ok := q.Body.(*ast.Select)
	if !ok {
		return q, nil
	}

	// Locate the measure-providing relation.
	inner, alias, err := s.providerSelect(q, sel.From)
	if err != nil {
		return nil, err
	}
	if inner == nil {
		return q, nil // no measures anywhere; nothing to do
	}

	ex := &expander{
		session:    s,
		measures:   map[string]*measureDef{},
		dims:       map[string]ast.Expr{},
		outerAlias: alias,
		innerAlias: "i",
		outerWhere: sel.Where,
	}
	if strings.EqualFold(ex.outerAlias, "i") {
		ex.innerAlias = "i2"
	}
	if err := ex.loadProvider(inner); err != nil {
		return nil, err
	}
	if len(ex.measures) == 0 {
		return q, nil
	}

	// Group keys.
	ex.aggregate = len(sel.GroupBy) > 0 || sel.Having != nil
	if !ex.aggregate {
		for _, item := range sel.Items {
			if !item.Star && astUsesAgg(item.Expr) {
				ex.aggregate = true
			}
		}
	}
	for _, g := range sel.GroupBy {
		if g.Kind != ast.GroupExpr {
			return nil, fmt.Errorf("EXPAND does not support ROLLUP/CUBE/GROUPING SETS (the executable rewrite does)")
		}
		e := g.Exprs[0]
		name := ""
		if n, ok := e.(*ast.NumberLit); ok && n.IsInt && int(n.Int) >= 1 && int(n.Int) <= len(sel.Items) {
			item := sel.Items[n.Int-1]
			e = item.Expr
			name = item.Alias
		}
		if id, ok := e.(*ast.Ident); ok {
			name = id.Name()
			// Alias of a select item?
			for _, item := range sel.Items {
				if !item.Star && strings.EqualFold(item.Alias, id.Name()) && !item.Measure {
					if _, isDim := ex.dims[strings.ToLower(id.Name())]; !isDim {
						e = item.Expr
					}
					break
				}
			}
		} else {
			for _, item := range sel.Items {
				if !item.Star && item.Alias != "" && !item.Measure &&
					ast.FormatExpr(item.Expr) == ast.FormatExpr(e) {
					name = item.Alias
					break
				}
			}
		}
		ex.groupExprs = append(ex.groupExprs, e)
		ex.groupNames = append(ex.groupNames, name)
	}

	// Rewrite the select items, HAVING, WHERE and ORDER BY.
	newSel := *sel
	newSel.Items = make([]ast.SelectItem, len(sel.Items))
	for i, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("EXPAND does not support SELECT * over a table with measures; list the columns")
		}
		if item.Measure {
			return nil, fmt.Errorf("EXPAND does not support redefining measures; expand the consuming query instead")
		}
		rewritten, err := ex.rewriteExpr(item.Expr)
		if err != nil {
			return nil, err
		}
		newSel.Items[i] = ast.SelectItem{Expr: rewritten, Alias: item.Alias}
	}
	if sel.Having != nil {
		h, err := ex.rewriteExpr(sel.Having)
		if err != nil {
			return nil, err
		}
		newSel.Having = h
	}
	if sel.Where != nil {
		w, err := ex.rewriteExpr(sel.Where)
		if err != nil {
			return nil, err
		}
		newSel.Where = w
	}

	// Replace the FROM with the measure-free provider. Special case: a
	// global aggregate query (no GROUP BY) whose aggregates were all
	// measures now consists solely of uncorrelated scalar subqueries — it
	// must still return exactly one row, so the outer FROM and WHERE are
	// dropped (grouped queries keep their GROUP BY and stay aggregates).
	if ex.aggregate && len(sel.GroupBy) == 0 && !selectTouchesOuter(&newSel) {
		newSel.From = nil
		newSel.Where = nil
	} else {
		newSel.From = ex.measureFreeFrom()
	}

	newQuery := *q
	newQuery.Body = &newSel
	if len(q.OrderBy) > 0 {
		newQuery.OrderBy = make([]ast.OrderItem, len(q.OrderBy))
		for i, o := range q.OrderBy {
			ro, err := ex.rewriteExpr(o.Expr)
			if err != nil {
				return nil, err
			}
			o.Expr = ro
			newQuery.OrderBy[i] = o
		}
	}
	return &newQuery, nil
}

// providerSelect finds the SELECT that defines the measures used by the
// query: a view, a CTE of this query, or a derived table. Returns nil if
// the FROM has no measure definitions.
func (s *Session) providerSelect(q *ast.Query, from ast.TableExpr) (*ast.Select, string, error) {
	switch from := from.(type) {
	case *ast.TableName:
		alias := from.Alias
		if alias == "" {
			alias = "o"
		}
		var def *ast.Query
		for _, cte := range q.With {
			if strings.EqualFold(cte.Name, from.Name) {
				def = cte.Query
			}
		}
		if def == nil {
			if v, ok := s.cat.View(from.Name); ok {
				def = v.Query
			}
		}
		if def == nil {
			return nil, "", nil // base table: no measures
		}
		sel, ok := def.Body.(*ast.Select)
		if !ok {
			return nil, "", nil
		}
		if !selectHasMeasures(sel) {
			return nil, "", nil
		}
		return sel, alias, nil
	case *ast.SubqueryTable:
		alias := from.Alias
		if alias == "" {
			alias = "o"
		}
		sel, ok := from.Query.Body.(*ast.Select)
		if !ok || !selectHasMeasures(sel) {
			return nil, "", nil
		}
		return sel, alias, nil
	case *ast.JoinExpr:
		// Joins: only reject when a side defines measures.
		for _, side := range []ast.TableExpr{from.Left, from.Right} {
			inner, _, err := s.providerSelect(q, side)
			if err != nil {
				return nil, "", err
			}
			if inner != nil {
				return nil, "", fmt.Errorf("EXPAND does not support measures under joins (the executable rewrite does)")
			}
		}
		return nil, "", nil
	default:
		return nil, "", nil
	}
}

func selectHasMeasures(sel *ast.Select) bool {
	for _, item := range sel.Items {
		if item.Measure {
			return true
		}
	}
	return false
}

// loadProvider captures the provider's measures, dimensions, base FROM
// and baked WHERE.
func (ex *expander) loadProvider(sel *ast.Select) error {
	if len(sel.GroupBy) > 0 {
		return fmt.Errorf("EXPAND: measure-defining queries must not have GROUP BY")
	}
	ex.baseFrom = sel.From
	ex.baseWhere = sel.Where
	for _, item := range sel.Items {
		switch {
		case item.Measure:
			ex.measures[strings.ToLower(item.Alias)] = &measureDef{formula: item.Expr}
		case item.Star:
			// Star: dims are the base table's columns, passed through.
			// Mark with a sentinel so dimExpr falls back to the name.
			ex.dims["*"] = nil
		default:
			name := item.Alias
			if name == "" {
				if id, ok := item.Expr.(*ast.Ident); ok {
					name = id.Name()
				} else {
					return fmt.Errorf("EXPAND: measure-defining query has an unnamed computed column")
				}
			}
			ex.dims[strings.ToLower(name)] = item.Expr
			ex.dimOrder = append(ex.dimOrder, name)
		}
	}
	// Sibling references inside measure formulas.
	for name, def := range ex.measures {
		expanded, err := ex.substituteMeasureRefs(def.formula, map[string]bool{name: true}, 0)
		if err != nil {
			return err
		}
		def.formula = expanded
	}
	return nil
}

func (ex *expander) substituteMeasureRefs(e ast.Expr, active map[string]bool, depth int) (ast.Expr, error) {
	if depth > 32 {
		return nil, fmt.Errorf("measure definitions nest too deeply")
	}
	var serr error
	out := ast.TransformExpr(e, func(x ast.Expr) ast.Expr {
		id, ok := x.(*ast.Ident)
		if !ok || serr != nil {
			return x
		}
		key := strings.ToLower(id.Name())
		def, isMeasure := ex.measures[key]
		if !isMeasure {
			return x
		}
		if active[key] {
			serr = fmt.Errorf("recursive measures are not supported (cycle through %s)", id.Name())
			return x
		}
		active[key] = true
		inner, err := ex.substituteMeasureRefs(def.formula, active, depth+1)
		delete(active, key)
		if err != nil {
			serr = err
			return x
		}
		return inner
	})
	return out, serr
}

// measureFreeFrom builds the replacement FROM clause: the base table
// directly when the provider was just "* plus measures" with no WHERE,
// otherwise a derived table of the non-measure columns.
func (ex *expander) measureFreeFrom() ast.TableExpr {
	_, hasStar := ex.dims["*"]
	if hasStar && len(ex.dimOrder) == 0 && ex.baseWhere == nil {
		if tn, ok := ex.baseFrom.(*ast.TableName); ok {
			return &ast.TableName{Name: tn.Name, Alias: ex.outerAlias}
		}
	}
	items := []ast.SelectItem{}
	if hasStar {
		items = append(items, ast.SelectItem{Star: true})
	}
	for _, name := range ex.dimOrder {
		items = append(items, ast.SelectItem{Expr: ex.dims[strings.ToLower(name)], Alias: name})
	}
	return &ast.SubqueryTable{
		Query: &ast.Query{Body: &ast.Select{Items: items, From: ex.baseFrom, Where: ex.baseWhere}},
		Alias: ex.outerAlias,
	}
}

// selectTouchesOuter reports whether the rewritten select still needs its
// FROM clause: a plain aggregate function or any column reference outside
// the generated scalar subqueries. ast.WalkExpr does not descend into
// subqueries, which is exactly the scoping needed here.
func selectTouchesOuter(sel *ast.Select) bool {
	touched := false
	check := func(e ast.Expr) {
		ast.WalkExpr(e, func(x ast.Expr) bool {
			switch x.(type) {
			case *ast.Ident:
				touched = true
			case *ast.FuncCall:
				if astUsesAgg(x) {
					touched = true
				}
			}
			return true
		})
	}
	for _, item := range sel.Items {
		if item.Star {
			return true
		}
		check(item.Expr)
	}
	if sel.Having != nil {
		check(sel.Having)
	}
	return touched
}

func astUsesAgg(e ast.Expr) bool {
	found := false
	ast.WalkExpr(e, func(x ast.Expr) bool {
		if fc, ok := x.(*ast.FuncCall); ok && fc.Over == nil {
			name := strings.ToUpper(fc.Name)
			if name == "AGGREGATE" || fn.IsAggName(name) || name == "GROUPING" {
				found = true
			}
		}
		return true
	})
	return found
}

// pendingMeasure accumulates a measure reference and its AT modifier
// chain while the bottom-up rewrite climbs out of nested AT and
// AGGREGATE/EVAL wrappers.
type pendingMeasure struct {
	def  *measureDef
	mods []ast.AtMod
}

// rewriteExpr replaces measure references (bare, AT-modified, or wrapped
// in AGGREGATE/EVAL) with correlated scalar subqueries. The transform is
// bottom-up, so measure idents first become placeholders; enclosing AT
// nodes prepend their modifiers (outer modifiers apply first, paper
// §3.5); AGGREGATE prepends VISIBLE; a final pass converts placeholders
// to subqueries.
func (ex *expander) rewriteExpr(e ast.Expr) (ast.Expr, error) {
	var rerr error
	marked := ast.TransformExpr(e, func(x ast.Expr) ast.Expr {
		if rerr != nil {
			return x
		}
		switch x := x.(type) {
		case *ast.Ident:
			if def := ex.measureOf(x); def != nil {
				return &ast.Placeholder{Tag: &pendingMeasure{def: def}}
			}
		case *ast.At:
			if ph, ok := placeholderOf(x.X); ok {
				ph.mods = append(append([]ast.AtMod{}, x.Mods...), ph.mods...)
				return &ast.Placeholder{Tag: ph}
			}
			rerr = fmt.Errorf("AT applied to a non-measure expression")
		case *ast.FuncCall:
			name := strings.ToUpper(x.Name)
			if name != "AGGREGATE" && name != "EVAL" {
				return x
			}
			if len(x.Args) != 1 {
				rerr = fmt.Errorf("%s takes exactly one argument", name)
				return x
			}
			ph, ok := placeholderOf(x.Args[0])
			if !ok {
				rerr = fmt.Errorf("%s argument must be a measure", name)
				return x
			}
			if name == "AGGREGATE" {
				ph.mods = append([]ast.AtMod{&ast.AtVisible{}}, ph.mods...)
			}
			return &ast.Placeholder{Tag: ph}
		}
		return x
	})
	if rerr != nil {
		return nil, rerr
	}
	out := ast.TransformExpr(marked, func(x ast.Expr) ast.Expr {
		if rerr != nil {
			return x
		}
		if ph, ok := placeholderOf(x); ok {
			sub, err := ex.measureSubquery(ph.def, ph.mods)
			if err != nil {
				rerr = err
				return x
			}
			return sub
		}
		return x
	})
	return out, rerr
}

func placeholderOf(e ast.Expr) (*pendingMeasure, bool) {
	if p, ok := e.(*ast.Placeholder); ok {
		if ph, ok := p.Tag.(*pendingMeasure); ok {
			return ph, true
		}
	}
	return nil, false
}

func (ex *expander) measureOf(id *ast.Ident) *measureDef {
	if q := id.Qualifier(); q != "" && !strings.EqualFold(q, ex.outerAlias) {
		return nil
	}
	return ex.measures[strings.ToLower(id.Name())]
}

// ---------------------------------------------------------------------------
// Subquery assembly

// sqlTerm is one conjunct of the SQL-level evaluation context.
type sqlTerm struct {
	dim   string   // dimension name for SET/ALL matching; "" for predicates
	pred  ast.Expr // the predicate, already rewritten to the inner alias
	value ast.Expr // the call-site value (for CURRENT), outer-qualified
}

// measureSubquery builds the correlated scalar subquery for one measure
// reference with its modifier chain — the textual form of the paper's
// computeM(rowPredicate) call (Listing 5 / Listing 11).
func (ex *expander) measureSubquery(def *measureDef, mods []ast.AtMod) (ast.Expr, error) {
	terms, err := ex.defaultTerms()
	if err != nil {
		return nil, err
	}
	for _, mod := range mods {
		terms, err = ex.applyMod(terms, mod)
		if err != nil {
			return nil, err
		}
	}

	formula, err := ex.iRewrite(def.formula)
	if err != nil {
		return nil, err
	}

	var where ast.Expr
	and := func(e ast.Expr) {
		if e == nil {
			return
		}
		if where == nil {
			where = e
		} else {
			where = &ast.Binary{Op: "AND", L: where, R: e}
		}
	}
	if ex.baseWhere != nil {
		bw, err := ex.iRewrite(ex.baseWhere)
		if err != nil {
			return nil, err
		}
		and(bw)
	}
	for _, t := range terms {
		and(t.pred)
	}

	from, err := ex.innerFrom()
	if err != nil {
		return nil, err
	}
	return &ast.ScalarSubquery{Query: &ast.Query{Body: &ast.Select{
		Items: []ast.SelectItem{{Expr: formula}},
		From:  from,
		Where: where,
	}}}, nil
}

// innerFrom renders the measure's base relation aliased for the
// subquery. A plain table keeps its name; anything else becomes a
// derived table.
func (ex *expander) innerFrom() (ast.TableExpr, error) {
	switch f := ex.baseFrom.(type) {
	case *ast.TableName:
		if f.Alias != "" && !strings.EqualFold(f.Alias, ex.innerAlias) {
			// The provider's own alias stays usable; re-alias to i.
			return &ast.TableName{Name: f.Name, Alias: ex.innerAlias}, nil
		}
		return &ast.TableName{Name: f.Name, Alias: ex.innerAlias}, nil
	case *ast.SubqueryTable:
		return &ast.SubqueryTable{Query: f.Query, Alias: ex.innerAlias}, nil
	case *ast.JoinExpr:
		return &ast.SubqueryTable{
			Query: &ast.Query{Body: &ast.Select{Items: []ast.SelectItem{{Star: true}}, From: f}},
			Alias: ex.innerAlias,
		}, nil
	default:
		return nil, fmt.Errorf("EXPAND: unsupported base relation %T", ex.baseFrom)
	}
}

// defaultTerms builds the default evaluation context for the call site:
// at an aggregate site, one term per grouping expression; at a row site,
// one term per dimension of the measure's table.
func (ex *expander) defaultTerms() ([]sqlTerm, error) {
	var terms []sqlTerm
	if ex.aggregate {
		for j, g := range ex.groupExprs {
			iSide, err := ex.iRewrite(g)
			if err != nil {
				return nil, err
			}
			oSide := ex.oQualify(g)
			terms = append(terms, sqlTerm{
				dim:   ex.groupNames[j],
				pred:  &ast.IsDistinct{L: iSide, R: oSide, Not: true},
				value: oSide,
			})
		}
		return terms, nil
	}
	names, err := ex.allDimNames()
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		iSide, err := ex.iRewrite(&ast.Ident{Parts: []string{name}})
		if err != nil {
			return nil, err
		}
		oSide := &ast.Ident{Parts: []string{ex.outerAlias, name}}
		terms = append(terms, sqlTerm{
			dim:   name,
			pred:  &ast.IsDistinct{L: iSide, R: oSide, Not: true},
			value: oSide,
		})
	}
	return terms, nil
}

// allDimNames enumerates the measure table's dimension names, resolving
// SELECT * through the catalog when possible.
func (ex *expander) allDimNames() ([]string, error) {
	var names []string
	if _, hasStar := ex.dims["*"]; hasStar {
		tn, ok := ex.baseFrom.(*ast.TableName)
		if !ok {
			return nil, fmt.Errorf("EXPAND: cannot enumerate dimensions of SELECT * over a derived base; list the columns")
		}
		t, ok := ex.session.cat.Table(tn.Name)
		if !ok {
			return nil, fmt.Errorf("EXPAND: cannot enumerate dimensions: %s is not a base table", tn.Name)
		}
		names = append(names, t.ColNames()...)
	}
	names = append(names, ex.dimOrder...)
	return names, nil
}

func (ex *expander) applyMod(terms []sqlTerm, mod ast.AtMod) ([]sqlTerm, error) {
	switch m := mod.(type) {
	case *ast.AtAll:
		if len(m.Dims) == 0 {
			return nil, nil
		}
		for _, d := range m.Dims {
			name := dimNameFor(d)
			out := terms[:0]
			for _, t := range terms {
				if !strings.EqualFold(t.dim, name) {
					out = append(out, t)
				}
			}
			terms = out
		}
		return terms, nil

	case *ast.AtSet:
		name := dimNameFor(m.Dim)
		var current ast.Expr
		for _, t := range terms {
			if strings.EqualFold(t.dim, name) {
				current = t.value
			}
		}
		value, err := ex.rewriteModValue(m.Value, name, current)
		if err != nil {
			return nil, err
		}
		iSide, err := ex.dimExprFor(name)
		if err != nil {
			return nil, err
		}
		out := terms[:0]
		for _, t := range terms {
			if !strings.EqualFold(t.dim, name) {
				out = append(out, t)
			}
		}
		return append(out, sqlTerm{
			dim:   name,
			pred:  &ast.IsDistinct{L: iSide, R: value, Not: true},
			value: value,
		}), nil

	case *ast.AtVisible:
		if ex.outerWhere == nil {
			return terms, nil
		}
		vis, err := ex.iRewrite(ex.outerWhere)
		if err != nil {
			return nil, fmt.Errorf("VISIBLE: %w", err)
		}
		return append(terms, sqlTerm{pred: vis}), nil

	case *ast.AtWhere:
		pred, err := ex.rewriteModWhere(m.Pred, terms)
		if err != nil {
			return nil, err
		}
		return []sqlTerm{{pred: pred}}, nil

	default:
		return nil, fmt.Errorf("unsupported AT modifier %T", mod)
	}
}

func dimNameFor(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name()
	}
	return ast.FormatExpr(e)
}

// dimExprFor returns the inner-side expression for a dimension name,
// which may be a projected dimension, a base column (star), or an ad hoc
// dimension named by a grouping alias.
func (ex *expander) dimExprFor(name string) (ast.Expr, error) {
	if e, ok := ex.dims[strings.ToLower(name)]; ok && e != nil {
		return ex.iRewrite(e)
	}
	// Ad hoc dimensions (grouping-expression aliases) take precedence
	// over falling back to a base column of a star projection.
	for j, n := range ex.groupNames {
		if strings.EqualFold(n, name) {
			return ex.iRewrite(ex.groupExprs[j])
		}
	}
	if _, hasStar := ex.dims["*"]; hasStar {
		return &ast.Ident{Parts: []string{ex.innerAlias, name}}, nil
	}
	return nil, fmt.Errorf("unknown dimension %s", name)
}

// rewriteModValue rewrites a SET value: CURRENT dim becomes the current
// call-site value (or NULL when unconstrained); other identifiers are
// outer-qualified.
func (ex *expander) rewriteModValue(e ast.Expr, dim string, current ast.Expr) (ast.Expr, error) {
	var rerr error
	out := ast.TransformExpr(e, func(x ast.Expr) ast.Expr {
		switch x := x.(type) {
		case *ast.Current:
			id, ok := x.Dim.(*ast.Ident)
			if !ok {
				rerr = fmt.Errorf("CURRENT requires a dimension name")
				return x
			}
			if strings.EqualFold(id.Name(), dim) && current != nil {
				return current
			}
			// CURRENT of another constrained dimension.
			for j, n := range ex.groupNames {
				if strings.EqualFold(n, id.Name()) {
					return ex.oQualify(ex.groupExprs[j])
				}
			}
			return &ast.NullLit{}
		case *ast.Ident:
			if x.Qualifier() == "" {
				return &ast.Ident{Parts: []string{ex.outerAlias, x.Name()}}
			}
		}
		return x
	})
	return out, rerr
}

// rewriteModWhere rewrites an AT (WHERE ...) predicate: dimension names
// go to the inner side; outer-qualified references stay as correlations.
func (ex *expander) rewriteModWhere(e ast.Expr, _ []sqlTerm) (ast.Expr, error) {
	var rerr error
	out := ast.TransformExpr(e, func(x ast.Expr) ast.Expr {
		id, ok := x.(*ast.Ident)
		if !ok || rerr != nil {
			return x
		}
		if q := id.Qualifier(); q != "" {
			if strings.EqualFold(q, ex.outerAlias) {
				return x // correlation to the outer query
			}
			rerr = fmt.Errorf("unknown qualifier %s in AT (WHERE ...)", q)
			return x
		}
		inner, err := ex.dimExprFor(id.Name())
		if err != nil {
			rerr = err
			return x
		}
		return inner
	})
	return out, rerr
}

// iRewrite maps an expression written over the measure table's columns
// onto the base relation: projected dimensions expand to their defining
// expressions, and every remaining bare column is qualified with the
// inner alias.
func (ex *expander) iRewrite(e ast.Expr) (ast.Expr, error) {
	var rerr error
	var rewrite func(e ast.Expr, depth int) ast.Expr
	rewrite = func(e ast.Expr, depth int) ast.Expr {
		if depth > 32 {
			rerr = fmt.Errorf("dimension definitions nest too deeply")
			return e
		}
		return ast.TransformExpr(e, func(x ast.Expr) ast.Expr {
			id, ok := x.(*ast.Ident)
			if !ok || rerr != nil {
				return x
			}
			q := id.Qualifier()
			if q != "" && !strings.EqualFold(q, ex.outerAlias) && !strings.EqualFold(q, ex.innerAlias) {
				return x
			}
			if _, isMeasure := ex.measures[strings.ToLower(id.Name())]; isMeasure {
				rerr = fmt.Errorf("measure %s cannot appear inside this expression when expanding", id.Name())
				return x
			}
			if dimExpr, ok := ex.dims[strings.ToLower(id.Name())]; ok && dimExpr != nil {
				if _, isIdent := dimExpr.(*ast.Ident); !isIdent || dimExpr.(*ast.Ident).Name() != id.Name() {
					return rewrite(dimExpr, depth+1)
				}
			}
			return &ast.Ident{Parts: []string{ex.innerAlias, id.Name()}}
		})
	}
	out := rewrite(e, 0)
	return out, rerr
}

// oQualify qualifies bare column references with the outer alias.
func (ex *expander) oQualify(e ast.Expr) ast.Expr {
	return ast.TransformExpr(e, func(x ast.Expr) ast.Expr {
		if id, ok := x.(*ast.Ident); ok && id.Qualifier() == "" {
			return &ast.Ident{Parts: []string{ex.outerAlias, id.Name()}}
		}
		return x
	})
}
