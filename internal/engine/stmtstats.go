// The statement-stats store: cumulative per-fingerprint execution
// statistics in the style of pg_stat_statements, queryable through the
// msql_stats.statements virtual table and the Session.StatementStats
// accessor. Counter updates are atomic and latency distributions are
// lock-free log-bucketed histograms, so the hot path takes the store's
// RWMutex only in read mode (map lookup); the write lock is taken once
// per new fingerprint.
package engine

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/measures-sql/msql/internal/exec"
)

// stmtStatsCap bounds the fingerprint map. Beyond it, new fingerprints
// fold into a single overflow entry so a literal-heavy workload that
// defeats normalization cannot grow memory without bound.
const stmtStatsCap = 512

// stmtStatsOverflow is the fingerprint that absorbs entries past the cap.
const stmtStatsOverflow = "<overflow>"

// stmtStatEntry is the live accumulator for one fingerprint. All fields
// are updated atomically; readers snapshot without stopping writers.
type stmtStatEntry struct {
	fingerprint string
	calls       atomic.Int64
	errors      atomic.Int64
	rows        atomic.Int64
	cacheHits   atomic.Int64 // subquery-cache hits during execution
	memoHits    atomic.Int64 // whole-result memo hits (execution skipped)
	plan        exec.Histogram
	exec        exec.Histogram
}

// statementStats is the per-session store. enabled defaults to true and
// may be toggled at runtime; when off, lookups return nil and callers
// skip fingerprint computation entirely.
type statementStats struct {
	enabled atomic.Bool
	mu      sync.RWMutex
	entries map[string]*stmtStatEntry
}

func newStatementStats() *statementStats {
	st := &statementStats{entries: make(map[string]*stmtStatEntry)}
	st.enabled.Store(true)
	return st
}

func (st *statementStats) enabledNow() bool { return st.enabled.Load() }

func (st *statementStats) setEnabled(on bool) { st.enabled.Store(on) }

// entry returns the accumulator for fingerprint, creating it if needed.
// Returns nil when tracking is off or the fingerprint is empty.
func (st *statementStats) entry(fingerprint string) *stmtStatEntry {
	if fingerprint == "" || !st.enabled.Load() {
		return nil
	}
	st.mu.RLock()
	e := st.entries[fingerprint]
	st.mu.RUnlock()
	if e != nil {
		return e
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if e := st.entries[fingerprint]; e != nil {
		return e
	}
	if len(st.entries) >= stmtStatsCap {
		fingerprint = stmtStatsOverflow
		if e := st.entries[fingerprint]; e != nil {
			return e
		}
	}
	e = &stmtStatEntry{fingerprint: fingerprint}
	st.entries[fingerprint] = e
	return e
}

// reset clears all accumulated statistics.
func (st *statementStats) reset() {
	st.mu.Lock()
	st.entries = make(map[string]*stmtStatEntry)
	st.mu.Unlock()
}

// StatementStat is a point-in-time snapshot of one fingerprint's
// statistics. Latency snapshots carry precomputed p50/p95/p99 and the
// raw buckets for exposition formats.
type StatementStat struct {
	Fingerprint string                 `json:"fingerprint"`
	Calls       int64                  `json:"calls"`
	Errors      int64                  `json:"errors"`
	Rows        int64                  `json:"rows"`
	CacheHits   int64                  `json:"cache_hits"`
	MemoHits    int64                  `json:"memo_hits"`
	Plan        exec.HistogramSnapshot `json:"plan"`
	Exec        exec.HistogramSnapshot `json:"exec"`
}

// snapshot returns all entries sorted by fingerprint for deterministic
// output.
func (st *statementStats) snapshot() []StatementStat {
	st.mu.RLock()
	entries := make([]*stmtStatEntry, 0, len(st.entries))
	for _, e := range st.entries {
		entries = append(entries, e)
	}
	st.mu.RUnlock()
	out := make([]StatementStat, 0, len(entries))
	for _, e := range entries {
		out = append(out, StatementStat{
			Fingerprint: e.fingerprint,
			Calls:       e.calls.Load(),
			Errors:      e.errors.Load(),
			Rows:        e.rows.Load(),
			CacheHits:   e.cacheHits.Load(),
			MemoHits:    e.memoHits.Load(),
			Plan:        e.plan.Snapshot(),
			Exec:        e.exec.Snapshot(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}
