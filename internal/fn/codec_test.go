package fn

import (
	"bytes"
	"math"
	"testing"
	"time"

	"github.com/measures-sql/msql/internal/sqltypes"
)

func typ(k sqltypes.Kind) sqltypes.Type { return sqltypes.Type{Kind: k} }

// aggCase describes one registered aggregate plus representative
// argument types for building states.
type aggCase struct {
	name     string
	argTypes []sqltypes.Type
}

// codecCases covers every registered aggregate at least once; SUM twice
// to hit both the exact integer and the order-sensitive float paths.
func codecCases() []aggCase {
	return []aggCase{
		{"COUNT", nil},
		{"SUM", []sqltypes.Type{typ(sqltypes.KindInt)}},
		{"SUM", []sqltypes.Type{typ(sqltypes.KindFloat)}},
		{"AVG", []sqltypes.Type{typ(sqltypes.KindFloat)}},
		{"MIN", []sqltypes.Type{typ(sqltypes.KindInt)}},
		{"MAX", []sqltypes.Type{typ(sqltypes.KindString)}},
		{"VAR_POP", []sqltypes.Type{typ(sqltypes.KindFloat)}},
		{"VAR_SAMP", []sqltypes.Type{typ(sqltypes.KindFloat)}},
		{"VARIANCE", []sqltypes.Type{typ(sqltypes.KindFloat)}},
		{"STDDEV_POP", []sqltypes.Type{typ(sqltypes.KindFloat)}},
		{"STDDEV_SAMP", []sqltypes.Type{typ(sqltypes.KindFloat)}},
		{"STDDEV", []sqltypes.Type{typ(sqltypes.KindFloat)}},
		{"ANY_VALUE", []sqltypes.Type{typ(sqltypes.KindDate)}},
		{"ARG_MAX", []sqltypes.Type{typ(sqltypes.KindString), typ(sqltypes.KindInt)}},
		{"ARG_MIN", []sqltypes.Type{typ(sqltypes.KindInt), typ(sqltypes.KindFloat)}},
	}
}

// sampleArg produces the i-th sample value of a kind; nullEvery > 0
// makes every nullEvery-th value NULL (NULL-heavy partitions).
func sampleArg(k sqltypes.Kind, i, nullEvery int) sqltypes.Value {
	if nullEvery > 0 && i%nullEvery == 0 {
		return sqltypes.Null(k)
	}
	switch k {
	case sqltypes.KindBool:
		return sqltypes.NewBool(i%2 == 0)
	case sqltypes.KindInt:
		return sqltypes.NewInt(int64(i*7 - 3))
	case sqltypes.KindFloat:
		return sqltypes.NewFloat(float64(i)*1.25 - 2.5)
	case sqltypes.KindDate:
		return sqltypes.NewDate(2024, time.January, 1+i%28)
	default:
		return sqltypes.NewString(string(rune('a'+i%26)) + "-val")
	}
}

// buildRows materializes n argument tuples for an aggregate.
func buildRows(argTypes []sqltypes.Type, n, nullEvery int) [][]sqltypes.Value {
	rows := make([][]sqltypes.Value, n)
	for i := range rows {
		args := make([]sqltypes.Value, len(argTypes))
		for j, t := range argTypes {
			args[j] = sampleArg(t.Kind, i+j, nullEvery)
		}
		rows[i] = args
	}
	return rows
}

// skipRow mirrors exec's accumulate loop (SkipNulls on the first
// argument) and additionally skips NULL comparison keys for the
// two-argument extremum aggregates, where a NULL key is a runtime
// error rather than a partial state.
func skipRow(def *Agg, args []sqltypes.Value) bool {
	if def.SkipNulls && len(args) > 0 && args[0].Null {
		return true
	}
	return def.MinArgs >= 2 && len(args) > 1 && args[1].Null
}

// addRows feeds rows into a state the way exec's accumulate loop does.
func addRows(t *testing.T, def *Agg, st AggState, rows [][]sqltypes.Value) {
	t.Helper()
	for _, args := range rows {
		if skipRow(def, args) {
			continue
		}
		if err := st.Add(args); err != nil {
			t.Fatalf("%s.Add: %v", def.Name, err)
		}
	}
}

// TestStateCodecRoundTrip: for every registered aggregate × partition
// shape (empty, single-row, NULL-heavy, mixed), encode→decode→Merge of
// two partials must match a single-pass accumulation exactly when the
// aggregate declares ExactMerge, and within float tolerance otherwise.
func TestStateCodecRoundTrip(t *testing.T) {
	shapes := []struct {
		name          string
		nLeft, nRight int
		nullEvery     int
	}{
		{"empty_both", 0, 0, 0},
		{"empty_left", 0, 5, 0},
		{"single_row", 1, 0, 0},
		{"all_null", 6, 6, 1},
		{"null_heavy", 8, 8, 2},
		{"mixed", 9, 13, 3},
	}
	for _, tc := range codecCases() {
		def, ok := LookupAgg(tc.name)
		if !ok {
			t.Fatalf("aggregate %s not registered", tc.name)
		}
		for _, sh := range shapes {
			name := tc.name + "/" + sh.name
			if len(tc.argTypes) > 0 {
				name += "/" + tc.argTypes[0].Kind.String()
			}
			t.Run(name, func(t *testing.T) {
				left := buildRows(tc.argTypes, sh.nLeft, sh.nullEvery)
				right := buildRows(tc.argTypes, sh.nRight, sh.nullEvery)

				ls, rs := def.New(tc.argTypes), def.New(tc.argTypes)
				addRows(t, def, ls, left)
				addRows(t, def, rs, right)

				// Encode both partials, decode them, merge the decoded
				// copies — exactly what coordinator-side gather does.
				lb, err := EncodeState(ls)
				if err != nil {
					t.Fatalf("encode left: %v", err)
				}
				rb, err := EncodeState(rs)
				if err != nil {
					t.Fatalf("encode right: %v", err)
				}
				ld, n, err := DecodeState(lb)
				if err != nil {
					t.Fatalf("decode left: %v", err)
				}
				if n != len(lb) {
					t.Fatalf("decode left consumed %d of %d bytes", n, len(lb))
				}
				rd, n, err := DecodeState(rb)
				if err != nil {
					t.Fatalf("decode right: %v", err)
				}
				if n != len(rb) {
					t.Fatalf("decode right consumed %d of %d bytes", n, len(rb))
				}
				if err := ld.Merge(rd); err != nil {
					t.Fatalf("merge: %v", err)
				}
				got := ld.Result()

				single := def.New(tc.argTypes)
				addRows(t, def, single, append(append([][]sqltypes.Value{}, left...), right...))
				want := single.Result()

				if def.MergesExactly(tc.argTypes) {
					// The value codec is canonical, so byte equality is
					// exact value equality (and handles NULLs and the
					// untyped zero Value from empty ANY_VALUE).
					if !bytes.Equal(AppendValue(nil, got), AppendValue(nil, want)) {
						t.Fatalf("exact merge mismatch: got %v want %v", got, want)
					}
					return
				}
				// Order-sensitive accumulators (float SUM/AVG/VAR*): same
				// nullability and numeric agreement within tolerance.
				if got.Null != want.Null || got.K != want.K {
					t.Fatalf("merge shape mismatch: got %v want %v", got, want)
				}
				if !got.Null {
					g, w := got.AsFloat(), want.AsFloat()
					if diff := math.Abs(g - w); diff > 1e-9*(1+math.Abs(w)) {
						t.Fatalf("merge value mismatch: got %v want %v (diff %g)", g, w, diff)
					}
				}
			})
		}
	}
}

// TestStateCodecMergeAcrossShards splits one logical partition into
// four shard-local partials, round-trips each through the codec, and
// checks the merged result against single-pass for every exact-merge
// aggregate — the exact coordinator combine path.
func TestStateCodecMergeAcrossShards(t *testing.T) {
	for _, tc := range codecCases() {
		def, _ := LookupAgg(tc.name)
		if !def.MergesExactly(tc.argTypes) {
			continue
		}
		rows := buildRows(tc.argTypes, 40, 4)
		merged := def.New(tc.argTypes)
		for shard := 0; shard < 4; shard++ {
			st := def.New(tc.argTypes)
			for i, args := range rows {
				if i%4 != shard || skipRow(def, args) {
					continue
				}
				if err := st.Add(args); err != nil {
					t.Fatalf("%s.Add: %v", tc.name, err)
				}
			}
			buf, err := EncodeState(st)
			if err != nil {
				t.Fatalf("%s encode: %v", tc.name, err)
			}
			dec, _, err := DecodeState(buf)
			if err != nil {
				t.Fatalf("%s decode: %v", tc.name, err)
			}
			if err := merged.Merge(dec); err != nil {
				t.Fatalf("%s merge: %v", tc.name, err)
			}
		}
		single := def.New(tc.argTypes)
		addRows(t, def, single, rows)
		got, want := merged.Result(), single.Result()
		if !bytes.Equal(AppendValue(nil, got), AppendValue(nil, want)) {
			t.Errorf("%s: 4-shard merge %v != single-pass %v", tc.name, got, want)
		}
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	vals := []sqltypes.Value{
		sqltypes.Null(sqltypes.KindUnknown),
		sqltypes.Null(sqltypes.KindInt),
		sqltypes.Null(sqltypes.KindString),
		sqltypes.NewBool(true),
		sqltypes.NewBool(false),
		sqltypes.NewInt(0),
		sqltypes.NewInt(-1),
		sqltypes.NewInt(math.MaxInt64),
		sqltypes.NewInt(math.MinInt64),
		sqltypes.NewFloat(0),
		sqltypes.NewFloat(math.Copysign(0, -1)),
		sqltypes.NewFloat(math.Inf(1)),
		sqltypes.NewFloat(math.SmallestNonzeroFloat64),
		sqltypes.NewFloat(3.141592653589793),
		sqltypes.NewString(""),
		sqltypes.NewString("plain"),
		sqltypes.NewString("utf8 — œ∑´®†"),
		sqltypes.NewString(string([]byte{0, 1, 2, 0xff})),
		sqltypes.NewDate(1969, time.December, 31),
		sqltypes.NewDate(2026, time.August, 8),
	}
	for _, v := range vals {
		buf := AppendValue(nil, v)
		got, n, err := DecodeValue(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(buf) {
			t.Fatalf("decode %v consumed %d of %d", v, n, len(buf))
		}
		if got.K != v.K || got.Null != v.Null {
			t.Fatalf("round trip %v: got %v", v, got)
		}
		if !v.Null && !sqltypes.NotDistinct(got, v) {
			t.Fatalf("round trip %v: got %v", v, got)
		}
	}
	// NaN is not equal to itself; check bit pattern explicitly.
	nan := sqltypes.NewFloat(math.NaN())
	got, _, err := DecodeValue(AppendValue(nil, nan))
	if err != nil {
		t.Fatalf("decode NaN: %v", err)
	}
	if math.Float64bits(got.F) != math.Float64bits(nan.F) {
		t.Fatalf("NaN bits changed: %x != %x", math.Float64bits(got.F), math.Float64bits(nan.F))
	}

	// Tuple round trip.
	tup := AppendValues(nil, vals)
	dec, n, err := DecodeValues(tup)
	if err != nil {
		t.Fatalf("decode tuple: %v", err)
	}
	if n != len(tup) || len(dec) != len(vals) {
		t.Fatalf("tuple decode: consumed %d of %d, %d values", n, len(tup), len(dec))
	}
	// Re-encoding the decoded tuple must be byte-identical: the codec is
	// canonical, so coordinators can compare encoded group keys directly.
	if re := AppendValues(nil, dec); !bytes.Equal(re, tup) {
		t.Fatalf("re-encode differs:\n  %x\n  %x", re, tup)
	}
}

func TestStateCodecRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":               {},
		"unknown_tag":         {99},
		"count_truncated":     {tagCount},
		"count_negative":      {tagCount, 0x01}, // varint -1
		"sum_bad_kind":        {tagSum, 77, 0},
		"sum_truncated_float": {tagSum, byte(sqltypes.KindFloat), 1, 0, 1, 2, 3},
		"minmax_bad_bool":     {tagMinMax, 5, 0},
		"minmax_no_value":     {tagMinMax, 0, 1},
		"var_truncated":       {tagVar, 0, 0, 4, 0, 0, 0},
		"any_bad_value_kind":  {tagAnyValue, 1, 42},
		"argmax_half_pair":    {tagArgExtreme, 0, 1, byte(sqltypes.KindInt), 2},
	}
	for name, buf := range cases {
		if _, _, err := DecodeState(buf); err == nil {
			t.Errorf("%s: DecodeState(%x) succeeded, want error", name, buf)
		}
	}
	// Oversized string length must fail before allocating.
	huge := append([]byte{tagAnyValue, 1, byte(sqltypes.KindString)}, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, _, err := DecodeState(huge); err == nil {
		t.Error("oversized string length accepted")
	}
	// Tuple claiming 2^60 values must fail before allocating.
	hugeTup := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10}
	if _, _, err := DecodeValues(hugeTup); err == nil {
		t.Error("oversized tuple count accepted")
	}
}

// FuzzDecodeState: arbitrary bytes must never panic the state decoder,
// and anything it accepts must re-encode and merge with itself.
func FuzzDecodeState(f *testing.F) {
	for _, tc := range codecCases() {
		def, _ := LookupAgg(tc.name)
		st := def.New(tc.argTypes)
		for _, args := range buildRows(tc.argTypes, 5, 2) {
			if skipRow(def, args) {
				continue
			}
			_ = st.Add(args)
		}
		if buf, err := EncodeState(st); err == nil {
			f.Add(buf)
		}
	}
	f.Add([]byte{tagVar, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, n, err := DecodeState(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		buf, err := EncodeState(st)
		if err != nil {
			t.Fatalf("re-encode of accepted state failed: %v", err)
		}
		st2, _, err := DecodeState(buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		// Merging with a same-tag sibling must not panic. It may return an
		// error (e.g. ARG_MAX states holding NULL keys reject comparison),
		// which the coordinator surfaces as a structured query error.
		_ = st.Merge(st2)
		_ = st.Result()
	})
}

// FuzzDecodeValues: arbitrary bytes must never panic the tuple decoder.
func FuzzDecodeValues(f *testing.F) {
	f.Add(AppendValues(nil, []sqltypes.Value{
		sqltypes.NewInt(7), sqltypes.Null(sqltypes.KindString), sqltypes.NewFloat(1.5),
	}))
	f.Add([]byte{3, byte(sqltypes.KindString), 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, n, err := DecodeValues(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Canonical: re-encode must decode to pairwise not-distinct values.
		re := AppendValues(nil, vals)
		vals2, _, err := DecodeValues(re)
		if err != nil || len(vals2) != len(vals) {
			t.Fatalf("re-decode: %v (%d vs %d values)", err, len(vals2), len(vals))
		}
	})
}
