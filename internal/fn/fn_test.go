package fn

import (
	"testing"
	"testing/quick"

	"github.com/measures-sql/msql/internal/sqltypes"
)

func evalScalar(t *testing.T, name string, args ...sqltypes.Value) sqltypes.Value {
	t.Helper()
	sc, ok := LookupScalar(name)
	if !ok {
		t.Fatalf("missing function %s", name)
	}
	v, err := sc.Eval(args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func TestOperators(t *testing.T) {
	if v := evalScalar(t, "+", sqltypes.NewInt(2), sqltypes.NewInt(3)); v.I != 5 {
		t.Errorf("2+3=%v", v)
	}
	if v := evalScalar(t, "/", sqltypes.NewInt(1), sqltypes.NewInt(4)); v.F != 0.25 {
		t.Errorf("1/4=%v", v)
	}
	if v := evalScalar(t, "=", sqltypes.NewString("a"), sqltypes.NewString("a")); !v.B {
		t.Errorf("'a'='a' should be true")
	}
	if v := evalScalar(t, "<=", sqltypes.NewInt(2), sqltypes.NewFloat(2.0)); !v.B {
		t.Errorf("2<=2.0 should be true")
	}
	if v := evalScalar(t, "||", sqltypes.NewString("a"), sqltypes.NewInt(1)); v.S != "a1" {
		t.Errorf("'a'||1=%v", v)
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h__llo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "abc", true},
		{"abc", "a%c%", true},
		{"aXbXc", "a%b%c", true},
	}
	for _, c := range cases {
		v := evalScalar(t, "LIKE", sqltypes.NewString(c.s), sqltypes.NewString(c.p))
		if v.B != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.p, v.B, c.want)
		}
		n := evalScalar(t, "NOT LIKE", sqltypes.NewString(c.s), sqltypes.NewString(c.p))
		if n.B == c.want {
			t.Errorf("NOT LIKE should invert for %q %q", c.s, c.p)
		}
	}
}

func TestDateFunctions(t *testing.T) {
	d := sqltypes.NewDate(2024, 11, 28)
	if v := evalScalar(t, "YEAR", d); v.I != 2024 {
		t.Errorf("YEAR=%v", v)
	}
	if v := evalScalar(t, "MONTH", d); v.I != 11 {
		t.Errorf("MONTH=%v", v)
	}
	if v := evalScalar(t, "DAY", d); v.I != 28 {
		t.Errorf("DAY=%v", v)
	}
	if v := evalScalar(t, "QUARTER", d); v.I != 4 {
		t.Errorf("QUARTER=%v", v)
	}
	// 2024-11-28 is a Thursday: DAYOFWEEK = 5 (1 = Sunday).
	if v := evalScalar(t, "DAYOFWEEK", d); v.I != 5 {
		t.Errorf("DAYOFWEEK=%v", v)
	}
	if v := evalScalar(t, "DATE_TRUNC", sqltypes.NewString("month"), d); v.String() != "2024-11-01" {
		t.Errorf("DATE_TRUNC month=%v", v)
	}
	if v := evalScalar(t, "DATE_TRUNC", sqltypes.NewString("quarter"), d); v.String() != "2024-10-01" {
		t.Errorf("DATE_TRUNC quarter=%v", v)
	}
	if v := evalScalar(t, "DATE_TRUNC", sqltypes.NewString("year"), d); v.String() != "2024-01-01" {
		t.Errorf("DATE_TRUNC year=%v", v)
	}
	// 2024-11-28 truncated to week (Monday) = 2024-11-25.
	if v := evalScalar(t, "DATE_TRUNC", sqltypes.NewString("week"), d); v.String() != "2024-11-25" {
		t.Errorf("DATE_TRUNC week=%v", v)
	}
}

func TestStringFunctions(t *testing.T) {
	if v := evalScalar(t, "UPPER", sqltypes.NewString("abc")); v.S != "ABC" {
		t.Errorf("UPPER=%v", v)
	}
	if v := evalScalar(t, "SUBSTRING", sqltypes.NewString("hello"), sqltypes.NewInt(2), sqltypes.NewInt(3)); v.S != "ell" {
		t.Errorf("SUBSTRING=%v", v)
	}
	if v := evalScalar(t, "SUBSTRING", sqltypes.NewString("hello"), sqltypes.NewInt(4)); v.S != "lo" {
		t.Errorf("SUBSTRING no-len=%v", v)
	}
	if v := evalScalar(t, "LEFT", sqltypes.NewString("hello"), sqltypes.NewInt(2)); v.S != "he" {
		t.Errorf("LEFT=%v", v)
	}
	if v := evalScalar(t, "RIGHT", sqltypes.NewString("hello"), sqltypes.NewInt(2)); v.S != "lo" {
		t.Errorf("RIGHT=%v", v)
	}
	if v := evalScalar(t, "LENGTH", sqltypes.NewString("héllo")); v.I != 5 {
		t.Errorf("LENGTH=%v (rune count)", v)
	}
	if v := evalScalar(t, "REPLACE", sqltypes.NewString("aXbX"), sqltypes.NewString("X"), sqltypes.NewString("-")); v.S != "a-b-" {
		t.Errorf("REPLACE=%v", v)
	}
	if v := evalScalar(t, "CONCAT", sqltypes.NewString("a"), sqltypes.NewInt(1), sqltypes.NewString("b")); v.S != "a1b" {
		t.Errorf("CONCAT=%v", v)
	}
}

func TestConditionals(t *testing.T) {
	if v := evalScalar(t, "COALESCE", sqltypes.Null(sqltypes.KindInt), sqltypes.NewInt(7)); v.I != 7 {
		t.Errorf("COALESCE=%v", v)
	}
	if v := evalScalar(t, "NULLIF", sqltypes.NewInt(3), sqltypes.NewInt(3)); !v.Null {
		t.Errorf("NULLIF equal should be NULL, got %v", v)
	}
	if v := evalScalar(t, "NULLIF", sqltypes.NewInt(3), sqltypes.NewInt(4)); v.I != 3 {
		t.Errorf("NULLIF=%v", v)
	}
	if v := evalScalar(t, "GREATEST", sqltypes.NewInt(1), sqltypes.NewInt(9), sqltypes.NewInt(5)); v.I != 9 {
		t.Errorf("GREATEST=%v", v)
	}
	if v := evalScalar(t, "LEAST", sqltypes.NewFloat(1.5), sqltypes.NewInt(2)); v.F != 1.5 {
		t.Errorf("LEAST=%v", v)
	}
}

func TestNumericFunctions(t *testing.T) {
	if v := evalScalar(t, "ABS", sqltypes.NewInt(-4)); v.I != 4 {
		t.Errorf("ABS=%v", v)
	}
	if v := evalScalar(t, "ROUND", sqltypes.NewFloat(2.567), sqltypes.NewInt(1)); v.F != 2.6 {
		t.Errorf("ROUND=%v", v)
	}
	if v := evalScalar(t, "FLOOR", sqltypes.NewFloat(2.9)); v.F != 2 {
		t.Errorf("FLOOR=%v", v)
	}
	if v := evalScalar(t, "CEIL", sqltypes.NewFloat(2.1)); v.F != 3 {
		t.Errorf("CEIL=%v", v)
	}
	if v := evalScalar(t, "SIGN", sqltypes.NewFloat(-0.5)); v.I != -1 {
		t.Errorf("SIGN=%v", v)
	}
	if v := evalScalar(t, "POWER", sqltypes.NewInt(2), sqltypes.NewInt(10)); v.F != 1024 {
		t.Errorf("POWER=%v", v)
	}
	if v := evalScalar(t, "NEG", sqltypes.NewInt(5)); v.I != -5 {
		t.Errorf("NEG=%v", v)
	}
	if _, err := MustLookupScalar("SQRT").Eval([]sqltypes.Value{sqltypes.NewFloat(-1)}); err == nil {
		t.Error("SQRT(-1) should error")
	}
	if _, err := MustLookupScalar("LN").Eval([]sqltypes.Value{sqltypes.NewFloat(0)}); err == nil {
		t.Error("LN(0) should error")
	}
}

func TestAggregates(t *testing.T) {
	run := func(name string, rows ...[]sqltypes.Value) sqltypes.Value {
		t.Helper()
		agg, ok := LookupAgg(name)
		if !ok {
			t.Fatalf("missing aggregate %s", name)
		}
		var types []sqltypes.Type
		if len(rows) > 0 {
			for _, v := range rows[0] {
				types = append(types, sqltypes.Type{Kind: v.K})
			}
		}
		state := agg.New(types)
		for _, r := range rows {
			if err := state.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		return state.Result()
	}
	one := func(vals ...int64) [][]sqltypes.Value {
		rows := make([][]sqltypes.Value, len(vals))
		for i, v := range vals {
			rows[i] = []sqltypes.Value{sqltypes.NewInt(v)}
		}
		return rows
	}
	if v := run("SUM", one(1, 2, 3)...); v.I != 6 {
		t.Errorf("SUM=%v", v)
	}
	if v := run("AVG", one(1, 2, 3)...); v.F != 2 {
		t.Errorf("AVG=%v", v)
	}
	if v := run("MIN", one(5, 2, 9)...); v.I != 2 {
		t.Errorf("MIN=%v", v)
	}
	if v := run("MAX", one(5, 2, 9)...); v.I != 9 {
		t.Errorf("MAX=%v", v)
	}
	if v := run("COUNT", one(5, 2)...); v.I != 2 {
		t.Errorf("COUNT=%v", v)
	}
	if v := run("ANY_VALUE", one(7, 8)...); v.I != 7 {
		t.Errorf("ANY_VALUE=%v", v)
	}
	if v := run("VAR_POP", one(2, 4, 4, 4, 5, 5, 7, 9)...); v.F != 4 {
		t.Errorf("VAR_POP=%v", v)
	}
	if v := run("STDDEV_POP", one(2, 4, 4, 4, 5, 5, 7, 9)...); v.F != 2 {
		t.Errorf("STDDEV_POP=%v", v)
	}
	// Empty SUM is NULL; empty COUNT is 0.
	if v := run("SUM"); !v.Null {
		t.Errorf("empty SUM=%v", v)
	}
	if v := run("COUNT"); v.I != 0 {
		t.Errorf("empty COUNT=%v", v)
	}
	// ARG_MAX(x, y): value of x at max y.
	argmax := run("ARG_MAX",
		[]sqltypes.Value{sqltypes.NewString("old"), sqltypes.NewInt(1)},
		[]sqltypes.Value{sqltypes.NewString("new"), sqltypes.NewInt(9)},
		[]sqltypes.Value{sqltypes.NewString("mid"), sqltypes.NewInt(5)},
	)
	if argmax.S != "new" {
		t.Errorf("ARG_MAX=%v", argmax)
	}
}

func TestAggArity(t *testing.T) {
	count, _ := LookupAgg("COUNT")
	if err := CheckAggArity(count, 0, true); err != nil {
		t.Errorf("COUNT(*) should be allowed: %v", err)
	}
	sum, _ := LookupAgg("SUM")
	if err := CheckAggArity(sum, 0, true); err == nil {
		t.Error("SUM(*) should be rejected")
	}
	if err := CheckAggArity(sum, 2, false); err == nil {
		t.Error("SUM with 2 args should be rejected")
	}
}

func TestWindowRegistry(t *testing.T) {
	if !IsWindowOnly("row_number") || IsWindowOnly("SUM") {
		t.Error("window-only classification wrong")
	}
	typ, err := WindowRet("LAG", []sqltypes.Type{{Kind: sqltypes.KindString}})
	if err != nil || typ.Kind != sqltypes.KindString {
		t.Errorf("LAG type: %v %v", typ, err)
	}
	if _, err := WindowRet("FIRST_VALUE", nil); err == nil {
		t.Error("FIRST_VALUE with no args should error")
	}
}

// Property: Welford variance matches the naive formula.
func TestVarianceProperty(t *testing.T) {
	f := func(xs []int16) bool {
		if len(xs) < 2 {
			return true
		}
		agg, _ := LookupAgg("VAR_POP")
		state := agg.New([]sqltypes.Type{{Kind: sqltypes.KindFloat}})
		var sum, sumsq float64
		for _, x := range xs {
			v := float64(x)
			sum += v
			sumsq += v * v
			if err := state.Add([]sqltypes.Value{sqltypes.NewFloat(v)}); err != nil {
				return false
			}
		}
		n := float64(len(xs))
		naive := sumsq/n - (sum/n)*(sum/n)
		got := state.Result().F
		diff := naive - got
		if diff < 0 {
			diff = -diff
		}
		scale := naive
		if scale < 1 {
			scale = 1
		}
		return diff/scale < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
