// Package fn is the registry of scalar and aggregate functions: the
// binder consults it for arity and result-type checking, the executor for
// evaluation. Operators (+, =, LIKE, ...) are registered under their
// symbol so the whole expression language flows through one table.
package fn

import (
	"fmt"
	"strings"
	"time"

	"github.com/measures-sql/msql/internal/sqltypes"
)

// Scalar describes a scalar function.
type Scalar struct {
	Name    string
	MinArgs int
	MaxArgs int // -1 means variadic
	// Strict functions return NULL when any argument is NULL; the
	// executor short-circuits them and Eval never sees a NULL.
	Strict bool
	// Volatile functions may return different values for identical
	// arguments (e.g. RANDOM). Expressions containing one are pinned to
	// serial, in-order evaluation by the parallel executor.
	Volatile bool
	// Ret computes the result type from argument types.
	Ret func(args []sqltypes.Type) (sqltypes.Type, error)
	// Eval computes the result.
	Eval func(args []sqltypes.Value) (sqltypes.Value, error)
}

var scalars = map[string]*Scalar{}

// LookupScalar finds a scalar function by (case-insensitive) name.
func LookupScalar(name string) (*Scalar, bool) {
	s, ok := scalars[strings.ToUpper(name)]
	return s, ok
}

// MustLookupScalar is LookupScalar for names the engine itself generates.
func MustLookupScalar(name string) *Scalar {
	s, ok := LookupScalar(name)
	if !ok {
		panic("fn: missing builtin " + name)
	}
	return s
}

func register(s *Scalar) {
	scalars[s.Name] = s
}

// Fixed-type helpers.

func retKind(k sqltypes.Kind) func([]sqltypes.Type) (sqltypes.Type, error) {
	return func([]sqltypes.Type) (sqltypes.Type, error) {
		return sqltypes.Type{Kind: k}, nil
	}
}

func argNumeric(args []sqltypes.Type, name string) error {
	for _, a := range args {
		if !a.Kind.Numeric() && a.Kind != sqltypes.KindUnknown {
			return fmt.Errorf("%s: expected numeric argument, got %s", name, a)
		}
	}
	return nil
}

func retPromote(name string) func([]sqltypes.Type) (sqltypes.Type, error) {
	return func(args []sqltypes.Type) (sqltypes.Type, error) {
		if err := argNumeric(args, name); err != nil {
			return sqltypes.Type{}, err
		}
		kind := sqltypes.KindInt
		for _, a := range args {
			if a.Kind == sqltypes.KindFloat {
				kind = sqltypes.KindFloat
			}
		}
		return sqltypes.Type{Kind: kind}, nil
	}
}

func requireDate(args []sqltypes.Type, name string) error {
	if args[0].Kind != sqltypes.KindDate && args[0].Kind != sqltypes.KindUnknown {
		return fmt.Errorf("%s: expected DATE argument, got %s", name, args[0])
	}
	return nil
}

func init() {
	registerOperators()
	registerDateFuncs()
	registerNumericFuncs()
	registerStringFuncs()
	registerConditionalFuncs()
}

func registerOperators() {
	arith := func(sym string, f func(a, b sqltypes.Value) (sqltypes.Value, error), ret func([]sqltypes.Type) (sqltypes.Type, error)) {
		register(&Scalar{
			Name: sym, MinArgs: 2, MaxArgs: 2, Strict: true,
			Ret: ret,
			Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
				return f(args[0], args[1])
			},
		})
	}
	arithRet := func(sym string) func([]sqltypes.Type) (sqltypes.Type, error) {
		return func(args []sqltypes.Type) (sqltypes.Type, error) {
			a, b := args[0], args[1]
			// Date arithmetic.
			if a.Kind == sqltypes.KindDate || b.Kind == sqltypes.KindDate {
				switch {
				case sym == "-" && a.Kind == sqltypes.KindDate && b.Kind == sqltypes.KindDate:
					return sqltypes.Type{Kind: sqltypes.KindInt}, nil
				case (sym == "+" || sym == "-") && a.Kind == sqltypes.KindDate:
					return sqltypes.Type{Kind: sqltypes.KindDate}, nil
				case sym == "+" && b.Kind == sqltypes.KindDate:
					return sqltypes.Type{Kind: sqltypes.KindDate}, nil
				default:
					return sqltypes.Type{}, fmt.Errorf("invalid date arithmetic %s %s %s", a, sym, b)
				}
			}
			if sym == "/" {
				if err := argNumeric(args, sym); err != nil {
					return sqltypes.Type{}, err
				}
				return sqltypes.Type{Kind: sqltypes.KindFloat}, nil
			}
			return retPromote(sym)(args)
		}
	}
	arith("+", sqltypes.Add, arithRet("+"))
	arith("-", sqltypes.Sub, arithRet("-"))
	arith("*", sqltypes.Mul, retPromote("*"))
	arith("/", sqltypes.Div, arithRet("/"))
	arith("%", sqltypes.Mod, retPromote("%"))

	cmpRet := func(args []sqltypes.Type) (sqltypes.Type, error) {
		if _, err := sqltypes.CommonType(args[0].Kind, args[1].Kind); err != nil {
			return sqltypes.Type{}, err
		}
		return sqltypes.Type{Kind: sqltypes.KindBool}, nil
	}
	cmp := func(sym string, test func(c int) bool) {
		register(&Scalar{
			Name: sym, MinArgs: 2, MaxArgs: 2, Strict: true,
			Ret: cmpRet,
			Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
				c, err := sqltypes.Compare(args[0], args[1])
				if err != nil {
					return sqltypes.Value{}, err
				}
				return sqltypes.NewBool(test(c)), nil
			},
		})
	}
	cmp("=", func(c int) bool { return c == 0 })
	cmp("<>", func(c int) bool { return c != 0 })
	cmp("<", func(c int) bool { return c < 0 })
	cmp("<=", func(c int) bool { return c <= 0 })
	cmp(">", func(c int) bool { return c > 0 })
	cmp(">=", func(c int) bool { return c >= 0 })

	register(&Scalar{
		Name: "||", MinArgs: 2, MaxArgs: 2, Strict: true,
		Ret: retKind(sqltypes.KindString),
		Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
			a, err := sqltypes.Cast(args[0], sqltypes.KindString)
			if err != nil {
				return sqltypes.Value{}, err
			}
			b, err := sqltypes.Cast(args[1], sqltypes.KindString)
			if err != nil {
				return sqltypes.Value{}, err
			}
			return sqltypes.NewString(a.S + b.S), nil
		},
	})

	like := func(name string, neg bool) {
		register(&Scalar{
			Name: name, MinArgs: 2, MaxArgs: 2, Strict: true,
			Ret: retKind(sqltypes.KindBool),
			Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
				if args[0].K != sqltypes.KindString || args[1].K != sqltypes.KindString {
					return sqltypes.Value{}, fmt.Errorf("LIKE requires string operands")
				}
				m := likeMatch(args[0].S, args[1].S)
				return sqltypes.NewBool(m != neg), nil
			},
		})
	}
	like("LIKE", false)
	like("NOT LIKE", true)
}

// likeMatch implements SQL LIKE with % and _ wildcards (no escape).
func likeMatch(s, pattern string) bool {
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

func registerDateFuncs() {
	datePart := func(name string, part func(v sqltypes.Value) int64) {
		register(&Scalar{
			Name: name, MinArgs: 1, MaxArgs: 1, Strict: true,
			Ret: func(args []sqltypes.Type) (sqltypes.Type, error) {
				if err := requireDate(args, name); err != nil {
					return sqltypes.Type{}, err
				}
				return sqltypes.Type{Kind: sqltypes.KindInt}, nil
			},
			Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
				return sqltypes.NewInt(part(args[0])), nil
			},
		})
	}
	datePart("YEAR", func(v sqltypes.Value) int64 { return int64(v.Time().Year()) })
	datePart("MONTH", func(v sqltypes.Value) int64 { return int64(v.Time().Month()) })
	datePart("DAY", func(v sqltypes.Value) int64 { return int64(v.Time().Day()) })
	datePart("QUARTER", func(v sqltypes.Value) int64 { return int64((v.Time().Month()-1)/3 + 1) })
	// DAYOFWEEK: 1 = Sunday ... 7 = Saturday, as in most SQL dialects.
	datePart("DAYOFWEEK", func(v sqltypes.Value) int64 { return int64(v.Time().Weekday()) + 1 })

	register(&Scalar{
		Name: "DATE_TRUNC", MinArgs: 2, MaxArgs: 2, Strict: true,
		Ret: func(args []sqltypes.Type) (sqltypes.Type, error) {
			if args[0].Kind != sqltypes.KindString && args[0].Kind != sqltypes.KindUnknown {
				return sqltypes.Type{}, fmt.Errorf("DATE_TRUNC: first argument must be a unit string")
			}
			if args[1].Kind != sqltypes.KindDate && args[1].Kind != sqltypes.KindUnknown {
				return sqltypes.Type{}, fmt.Errorf("DATE_TRUNC: second argument must be a DATE")
			}
			return sqltypes.Type{Kind: sqltypes.KindDate}, nil
		},
		Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
			t := args[1].Time()
			switch strings.ToUpper(args[0].S) {
			case "YEAR":
				return sqltypes.NewDate(t.Year(), 1, 1), nil
			case "QUARTER":
				q := (int(t.Month()) - 1) / 3
				return sqltypes.NewDate(t.Year(), time.Month(q*3+1), 1), nil
			case "MONTH":
				return sqltypes.NewDate(t.Year(), t.Month(), 1), nil
			case "WEEK":
				// Truncate to Monday.
				wd := (int(t.Weekday()) + 6) % 7
				return sqltypes.NewDateDays(args[1].I - int64(wd)), nil
			case "DAY":
				return args[1], nil
			default:
				return sqltypes.Value{}, fmt.Errorf("DATE_TRUNC: unknown unit %q", args[0].S)
			}
		},
	})
}
