package fn

import (
	"fmt"
	"math"
	"strings"

	"github.com/measures-sql/msql/internal/sqltypes"
)

// AggState accumulates one group's values for one aggregate call.
// Add is called once per qualifying input row (NULL-skipping and
// DISTINCT de-duplication are handled by the executor); Result returns
// the aggregate value for the group.
//
// Merge folds another state of the same concrete type into the receiver.
// The other state must have been accumulated over a later, disjoint
// slice of the group's input rows; merging partial states left-to-right
// in input order is then equivalent to single-pass accumulation. The
// parallel executor uses this for two-phase (per-chunk, then merge)
// hash aggregation.
type AggState interface {
	Add(args []sqltypes.Value) error
	Merge(other AggState) error
	Result() sqltypes.Value
}

// Agg describes an aggregate function.
type Agg struct {
	Name    string
	MinArgs int
	MaxArgs int
	// Star reports whether the function may be called as f(*): only COUNT.
	Star bool
	// SkipNulls: rows where the first argument is NULL are not passed to
	// Add (SQL default for COUNT(x)/SUM/AVG/...).
	SkipNulls bool
	// Ret computes the result type from argument types ([] for COUNT(*)).
	Ret func(args []sqltypes.Type) (sqltypes.Type, error)
	// New creates a fresh accumulator for a group.
	New func(args []sqltypes.Type) AggState
	// ExactMerge reports whether two-phase accumulation (per-chunk states
	// combined with Merge) reproduces single-pass accumulation
	// bit-for-bit for the given argument types. It is false for
	// floating-point accumulators, where addition order matters; the
	// executor then falls back to a group-partitioned parallel plan that
	// keeps each group's rows in input order. nil means false.
	ExactMerge func(args []sqltypes.Type) bool
}

// MergesExactly reports ExactMerge for the given argument types,
// treating a nil ExactMerge as "never exact" (the order-sensitive
// float accumulators leave it unset).
func (a *Agg) MergesExactly(args []sqltypes.Type) bool {
	return a.ExactMerge != nil && a.ExactMerge(args)
}

var aggs = map[string]*Agg{}

// LookupAgg finds an aggregate by (case-insensitive) name.
func LookupAgg(name string) (*Agg, bool) {
	a, ok := aggs[strings.ToUpper(name)]
	return a, ok
}

// IsAggName reports whether name is a registered aggregate function.
func IsAggName(name string) bool {
	_, ok := LookupAgg(name)
	return ok
}

func registerAgg(a *Agg) { aggs[a.Name] = a }

// ---------------------------------------------------------------------------
// States

// mergeTypeError reports an executor bug: partial states of two
// different concrete types were merged.
func mergeTypeError(dst, src AggState) error {
	return fmt.Errorf("internal error: cannot merge aggregate state %T into %T", src, dst)
}

type countState struct{ n int64 }

func (s *countState) Add([]sqltypes.Value) error { s.n++; return nil }
func (s *countState) Result() sqltypes.Value     { return sqltypes.NewInt(s.n) }

func (s *countState) Merge(other AggState) error {
	o, ok := other.(*countState)
	if !ok {
		return mergeTypeError(s, other)
	}
	s.n += o.n
	return nil
}

type sumState struct {
	kind   sqltypes.Kind
	any    bool
	intSum int64
	fltSum float64
}

func (s *sumState) Add(args []sqltypes.Value) error {
	s.any = true
	if s.kind == sqltypes.KindInt {
		return s.addInt(args[0].I)
	}
	s.fltSum += args[0].AsFloat()
	return nil
}

// addInt accumulates with an overflow check: a hostile or runaway SUM
// over INTEGER must error rather than silently wrap.
func (s *sumState) addInt(v int64) error {
	sum := s.intSum + v
	if (s.intSum > 0 && v > 0 && sum < 0) || (s.intSum < 0 && v < 0 && sum >= 0) {
		return fmt.Errorf("INTEGER overflow in SUM")
	}
	s.intSum = sum
	return nil
}

func (s *sumState) Merge(other AggState) error {
	o, ok := other.(*sumState)
	if !ok {
		return mergeTypeError(s, other)
	}
	if !o.any {
		return nil
	}
	s.any = true
	if s.kind == sqltypes.KindInt {
		if err := s.addInt(o.intSum); err != nil {
			return err
		}
	}
	s.fltSum += o.fltSum
	return nil
}

func (s *sumState) Result() sqltypes.Value {
	if !s.any {
		return sqltypes.Null(s.kind)
	}
	if s.kind == sqltypes.KindInt {
		return sqltypes.NewInt(s.intSum)
	}
	return sqltypes.NewFloat(s.fltSum)
}

type avgState struct {
	n   int64
	sum float64
}

func (s *avgState) Add(args []sqltypes.Value) error {
	s.n++
	s.sum += args[0].AsFloat()
	return nil
}

func (s *avgState) Merge(other AggState) error {
	o, ok := other.(*avgState)
	if !ok {
		return mergeTypeError(s, other)
	}
	s.n += o.n
	s.sum += o.sum
	return nil
}

func (s *avgState) Result() sqltypes.Value {
	if s.n == 0 {
		return sqltypes.Null(sqltypes.KindFloat)
	}
	return sqltypes.NewFloat(s.sum / float64(s.n))
}

type minMaxState struct {
	wantLess bool
	best     sqltypes.Value
	any      bool
}

func (s *minMaxState) Add(args []sqltypes.Value) error {
	if !s.any {
		s.best, s.any = args[0], true
		return nil
	}
	c, err := sqltypes.Compare(args[0], s.best)
	if err != nil {
		return err
	}
	if (c < 0) == s.wantLess && c != 0 {
		s.best = args[0]
	}
	return nil
}

func (s *minMaxState) Merge(other AggState) error {
	o, ok := other.(*minMaxState)
	if !ok {
		return mergeTypeError(s, other)
	}
	if !o.any {
		return nil
	}
	if !s.any {
		s.best, s.any = o.best, true
		return nil
	}
	c, err := sqltypes.Compare(o.best, s.best)
	if err != nil {
		return err
	}
	// Ties keep the receiver's (earlier) value, matching Add.
	if (c < 0) == s.wantLess && c != 0 {
		s.best = o.best
	}
	return nil
}

func (s *minMaxState) Result() sqltypes.Value {
	if !s.any {
		return sqltypes.Null(s.best.K)
	}
	return s.best
}

// varState implements Welford's online algorithm for variance.
type varState struct {
	n        int64
	mean, m2 float64
	sample   bool
	stddev   bool
}

func (s *varState) Add(args []sqltypes.Value) error {
	s.n++
	x := args[0].AsFloat()
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	return nil
}

// Merge combines two Welford partial states (Chan et al.'s parallel
// update). Not bit-identical to sequential Add, so ExactMerge is false.
func (s *varState) Merge(other AggState) error {
	o, ok := other.(*varState)
	if !ok {
		return mergeTypeError(s, other)
	}
	if o.n == 0 {
		return nil
	}
	if s.n == 0 {
		s.n, s.mean, s.m2 = o.n, o.mean, o.m2
		return nil
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.mean += d * float64(o.n) / float64(n)
	s.n = n
	return nil
}

func (s *varState) Result() sqltypes.Value {
	den := float64(s.n)
	if s.sample {
		den = float64(s.n - 1)
	}
	if s.n == 0 || den <= 0 {
		return sqltypes.Null(sqltypes.KindFloat)
	}
	v := s.m2 / den
	if s.stddev {
		v = math.Sqrt(v)
	}
	return sqltypes.NewFloat(v)
}

type anyValueState struct {
	val sqltypes.Value
	any bool
}

func (s *anyValueState) Add(args []sqltypes.Value) error {
	if !s.any {
		s.val, s.any = args[0], true
	}
	return nil
}

func (s *anyValueState) Merge(other AggState) error {
	o, ok := other.(*anyValueState)
	if !ok {
		return mergeTypeError(s, other)
	}
	if !s.any && o.any {
		s.val, s.any = o.val, true
	}
	return nil
}

func (s *anyValueState) Result() sqltypes.Value { return s.val }

// argExtremeState implements ARG_MAX(x, y) / ARG_MIN(x, y): the value of
// x at the extreme y. Used for semi-additive measures (paper §5.3:
// inventory rolls up with LAST_VALUE over time — ARG_MAX(qty, date)).
type argExtremeState struct {
	wantLess bool
	bestKey  sqltypes.Value
	val      sqltypes.Value
	any      bool
}

func (s *argExtremeState) Add(args []sqltypes.Value) error {
	x, y := args[0], args[1]
	if !s.any {
		s.val, s.bestKey, s.any = x, y, true
		return nil
	}
	c, err := sqltypes.Compare(y, s.bestKey)
	if err != nil {
		return err
	}
	if (c < 0) == s.wantLess && c != 0 {
		s.val, s.bestKey = x, y
	}
	return nil
}

func (s *argExtremeState) Merge(other AggState) error {
	o, ok := other.(*argExtremeState)
	if !ok {
		return mergeTypeError(s, other)
	}
	if !o.any {
		return nil
	}
	if !s.any {
		s.val, s.bestKey, s.any = o.val, o.bestKey, true
		return nil
	}
	c, err := sqltypes.Compare(o.bestKey, s.bestKey)
	if err != nil {
		return err
	}
	// Ties keep the receiver's (earlier) value, matching Add.
	if (c < 0) == s.wantLess && c != 0 {
		s.val, s.bestKey = o.val, o.bestKey
	}
	return nil
}

func (s *argExtremeState) Result() sqltypes.Value {
	if !s.any {
		return sqltypes.Null(s.val.K)
	}
	return s.val
}

// ---------------------------------------------------------------------------
// Registration

// alwaysExact is the ExactMerge of order-insensitive, non-float states.
func alwaysExact([]sqltypes.Type) bool { return true }

func init() {
	registerAgg(&Agg{
		Name: "COUNT", MinArgs: 0, MaxArgs: 1, Star: true, SkipNulls: true,
		Ret:        func([]sqltypes.Type) (sqltypes.Type, error) { return sqltypes.Type{Kind: sqltypes.KindInt}, nil },
		New:        func([]sqltypes.Type) AggState { return &countState{} },
		ExactMerge: alwaysExact,
	})
	registerAgg(&Agg{
		Name: "SUM", MinArgs: 1, MaxArgs: 1, SkipNulls: true,
		Ret: func(args []sqltypes.Type) (sqltypes.Type, error) {
			if err := argNumeric(args, "SUM"); err != nil {
				return sqltypes.Type{}, err
			}
			if args[0].Kind == sqltypes.KindFloat {
				return sqltypes.Type{Kind: sqltypes.KindFloat}, nil
			}
			return sqltypes.Type{Kind: sqltypes.KindInt}, nil
		},
		New: func(args []sqltypes.Type) AggState {
			kind := sqltypes.KindInt
			if len(args) > 0 && args[0].Kind == sqltypes.KindFloat {
				kind = sqltypes.KindFloat
			}
			return &sumState{kind: kind}
		},
		// Integer sums are associative; float sums are order-sensitive.
		ExactMerge: func(args []sqltypes.Type) bool {
			return len(args) == 0 || args[0].Kind != sqltypes.KindFloat
		},
	})
	registerAgg(&Agg{
		Name: "AVG", MinArgs: 1, MaxArgs: 1, SkipNulls: true,
		Ret: func(args []sqltypes.Type) (sqltypes.Type, error) {
			if err := argNumeric(args, "AVG"); err != nil {
				return sqltypes.Type{}, err
			}
			return sqltypes.Type{Kind: sqltypes.KindFloat}, nil
		},
		New: func([]sqltypes.Type) AggState { return &avgState{} },
	})
	minMax := func(name string, wantLess bool) {
		registerAgg(&Agg{
			Name: name, MinArgs: 1, MaxArgs: 1, SkipNulls: true,
			Ret:        func(args []sqltypes.Type) (sqltypes.Type, error) { return args[0].Scalar(), nil },
			New:        func([]sqltypes.Type) AggState { return &minMaxState{wantLess: wantLess} },
			ExactMerge: alwaysExact,
		})
	}
	minMax("MIN", true)
	minMax("MAX", false)
	variance := func(name string, sample, stddev bool) {
		registerAgg(&Agg{
			Name: name, MinArgs: 1, MaxArgs: 1, SkipNulls: true,
			Ret: func(args []sqltypes.Type) (sqltypes.Type, error) {
				if err := argNumeric(args, name); err != nil {
					return sqltypes.Type{}, err
				}
				return sqltypes.Type{Kind: sqltypes.KindFloat}, nil
			},
			New: func([]sqltypes.Type) AggState { return &varState{sample: sample, stddev: stddev} },
		})
	}
	variance("VAR_POP", false, false)
	variance("VAR_SAMP", true, false)
	variance("VARIANCE", true, false)
	variance("STDDEV_POP", false, true)
	variance("STDDEV_SAMP", true, true)
	variance("STDDEV", true, true)
	registerAgg(&Agg{
		Name: "ANY_VALUE", MinArgs: 1, MaxArgs: 1, SkipNulls: true,
		Ret:        func(args []sqltypes.Type) (sqltypes.Type, error) { return args[0].Scalar(), nil },
		New:        func([]sqltypes.Type) AggState { return &anyValueState{} },
		ExactMerge: alwaysExact,
	})
	argExtreme := func(name string, wantLess bool) {
		registerAgg(&Agg{
			Name: name, MinArgs: 2, MaxArgs: 2, SkipNulls: true,
			Ret:        func(args []sqltypes.Type) (sqltypes.Type, error) { return args[0].Scalar(), nil },
			New:        func([]sqltypes.Type) AggState { return &argExtremeState{wantLess: wantLess} },
			ExactMerge: alwaysExact,
		})
	}
	argExtreme("ARG_MAX", false)
	argExtreme("ARG_MIN", true)
}

// CheckAggArity validates an aggregate call's argument count.
func CheckAggArity(a *Agg, nargs int, star bool) error {
	if star {
		if !a.Star {
			return fmt.Errorf("%s(*) is not valid", a.Name)
		}
		return nil
	}
	if nargs < a.MinArgs || nargs > a.MaxArgs {
		return fmt.Errorf("%s expects %d to %d arguments, got %d", a.Name, a.MinArgs, a.MaxArgs, nargs)
	}
	return nil
}
