// Binary serialization of aggregate partial states, used by the
// scatter-gather /partial endpoint to ship per-group AggStates from
// shard nodes to a coordinator that finishes the aggregation with
// Merge. The format is self-framing and versionless-by-tag: one tag
// byte names the concrete state type, followed by that type's fields.
//
// The decoder follows the same discipline as the WAL record decoders:
// every read is bounds-checked through byteReader, lengths are
// validated against the remaining buffer before allocation, and a
// malformed buffer produces a structured error — never a panic or an
// over-allocation.
package fn

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/measures-sql/msql/internal/sqltypes"
)

// State type tags. Stable wire values: append only.
const (
	tagCount      = 1
	tagSum        = 2
	tagAvg        = 3
	tagMinMax     = 4
	tagVar        = 5
	tagAnyValue   = 6
	tagArgExtreme = 7
)

// nullFlag marks a NULL value in the kind byte.
const nullFlag = 0x80

// AppendValue appends one SQL value in the codec's binary form: a kind
// byte (high bit = NULL), then the payload for non-NULL values.
func AppendValue(dst []byte, v sqltypes.Value) []byte {
	k := byte(v.K)
	if v.Null {
		return append(dst, k|nullFlag)
	}
	dst = append(dst, k)
	switch v.K {
	case sqltypes.KindBool:
		b := byte(0)
		if v.B {
			b = 1
		}
		dst = append(dst, b)
	case sqltypes.KindInt, sqltypes.KindDate:
		dst = binary.AppendVarint(dst, v.I)
	case sqltypes.KindFloat:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
	default: // VARCHAR and unknown-kind non-NULLs carry their string form
		dst = binary.AppendUvarint(dst, uint64(len(v.S)))
		dst = append(dst, v.S...)
	}
	return dst
}

// AppendValues appends a count-prefixed tuple of values.
func AppendValues(dst []byte, vals []sqltypes.Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = AppendValue(dst, v)
	}
	return dst
}

// byteReader is a bounds-checked cursor over an untrusted buffer.
type byteReader struct {
	buf []byte
	off int
}

func (r *byteReader) remaining() int { return len(r.buf) - r.off }

func (r *byteReader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("state codec: truncated buffer at offset %d", r.off)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *byteReader) bool() (bool, error) {
	b, err := r.byte()
	if err != nil {
		return false, err
	}
	if b > 1 {
		return false, fmt.Errorf("state codec: invalid bool byte 0x%02x at offset %d", b, r.off-1)
	}
	return b == 1, nil
}

func (r *byteReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("state codec: bad varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("state codec: bad uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) float() (float64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("state codec: truncated float at offset %d", r.off)
	}
	bits := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return math.Float64frombits(bits), nil
}

func (r *byteReader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	// Validate against the remaining buffer before converting: a hostile
	// length must not drive an allocation.
	if n > uint64(r.remaining()) {
		return "", fmt.Errorf("state codec: string length %d exceeds %d remaining bytes", n, r.remaining())
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *byteReader) value() (sqltypes.Value, error) {
	kb, err := r.byte()
	if err != nil {
		return sqltypes.Value{}, err
	}
	kind := sqltypes.Kind(kb &^ nullFlag)
	if kind > sqltypes.KindDate {
		return sqltypes.Value{}, fmt.Errorf("state codec: unknown value kind %d at offset %d", kind, r.off-1)
	}
	if kb&nullFlag != 0 {
		return sqltypes.Null(kind), nil
	}
	switch kind {
	case sqltypes.KindBool:
		b, err := r.bool()
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewBool(b), nil
	case sqltypes.KindInt, sqltypes.KindDate:
		i, err := r.varint()
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.Value{K: kind, I: i}, nil
	case sqltypes.KindFloat:
		f, err := r.float()
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewFloat(f), nil
	default:
		s, err := r.string()
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.Value{K: kind, S: s}, nil
	}
}

// DecodeValue decodes one value, returning the bytes consumed.
func DecodeValue(buf []byte) (sqltypes.Value, int, error) {
	r := &byteReader{buf: buf}
	v, err := r.value()
	if err != nil {
		return sqltypes.Value{}, 0, err
	}
	return v, r.off, nil
}

// DecodeValues decodes a count-prefixed tuple, returning bytes consumed.
func DecodeValues(buf []byte) ([]sqltypes.Value, int, error) {
	r := &byteReader{buf: buf}
	vals, err := r.values()
	if err != nil {
		return nil, 0, err
	}
	return vals, r.off, nil
}

func (r *byteReader) values() ([]sqltypes.Value, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Each value needs at least its kind byte, so n can never exceed the
	// remaining buffer; reject before allocating.
	if n > uint64(r.remaining()) {
		return nil, fmt.Errorf("state codec: tuple of %d values exceeds %d remaining bytes", n, r.remaining())
	}
	vals := make([]sqltypes.Value, n)
	for i := range vals {
		v, err := r.value()
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

// AppendState serializes one aggregate partial state.
func AppendState(dst []byte, s AggState) ([]byte, error) {
	switch s := s.(type) {
	case *countState:
		dst = append(dst, tagCount)
		dst = binary.AppendVarint(dst, s.n)
	case *sumState:
		dst = append(dst, tagSum, byte(s.kind), boolByte(s.any))
		dst = binary.AppendVarint(dst, s.intSum)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.fltSum))
	case *avgState:
		dst = append(dst, tagAvg)
		dst = binary.AppendVarint(dst, s.n)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.sum))
	case *minMaxState:
		dst = append(dst, tagMinMax, boolByte(s.wantLess), boolByte(s.any))
		dst = AppendValue(dst, s.best)
	case *varState:
		dst = append(dst, tagVar, boolByte(s.sample), boolByte(s.stddev))
		dst = binary.AppendVarint(dst, s.n)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.mean))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.m2))
	case *anyValueState:
		dst = append(dst, tagAnyValue, boolByte(s.any))
		dst = AppendValue(dst, s.val)
	case *argExtremeState:
		dst = append(dst, tagArgExtreme, boolByte(s.wantLess), boolByte(s.any))
		dst = AppendValue(dst, s.bestKey)
		dst = AppendValue(dst, s.val)
	default:
		return nil, fmt.Errorf("state codec: unencodable aggregate state %T", s)
	}
	return dst, nil
}

// EncodeState serializes one aggregate partial state into a fresh
// buffer.
func EncodeState(s AggState) ([]byte, error) { return AppendState(nil, s) }

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// DecodeState reconstructs a partial state from its binary form,
// returning the bytes consumed. The result is ready for Merge with
// other states of the same tag, and for Result.
func DecodeState(buf []byte) (AggState, int, error) {
	r := &byteReader{buf: buf}
	s, err := r.state()
	if err != nil {
		return nil, 0, err
	}
	return s, r.off, nil
}

func (r *byteReader) state() (AggState, error) {
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagCount:
		n, err := r.varint()
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("state codec: negative COUNT %d", n)
		}
		return &countState{n: n}, nil
	case tagSum:
		kb, err := r.byte()
		if err != nil {
			return nil, err
		}
		kind := sqltypes.Kind(kb)
		if kind > sqltypes.KindDate {
			return nil, fmt.Errorf("state codec: unknown SUM kind %d", kb)
		}
		any, err := r.bool()
		if err != nil {
			return nil, err
		}
		intSum, err := r.varint()
		if err != nil {
			return nil, err
		}
		fltSum, err := r.float()
		if err != nil {
			return nil, err
		}
		return &sumState{kind: kind, any: any, intSum: intSum, fltSum: fltSum}, nil
	case tagAvg:
		n, err := r.varint()
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("state codec: negative AVG count %d", n)
		}
		sum, err := r.float()
		if err != nil {
			return nil, err
		}
		return &avgState{n: n, sum: sum}, nil
	case tagMinMax:
		wantLess, err := r.bool()
		if err != nil {
			return nil, err
		}
		any, err := r.bool()
		if err != nil {
			return nil, err
		}
		best, err := r.value()
		if err != nil {
			return nil, err
		}
		return &minMaxState{wantLess: wantLess, any: any, best: best}, nil
	case tagVar:
		sample, err := r.bool()
		if err != nil {
			return nil, err
		}
		stddev, err := r.bool()
		if err != nil {
			return nil, err
		}
		n, err := r.varint()
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("state codec: negative VAR count %d", n)
		}
		mean, err := r.float()
		if err != nil {
			return nil, err
		}
		m2, err := r.float()
		if err != nil {
			return nil, err
		}
		return &varState{n: n, mean: mean, m2: m2, sample: sample, stddev: stddev}, nil
	case tagAnyValue:
		any, err := r.bool()
		if err != nil {
			return nil, err
		}
		val, err := r.value()
		if err != nil {
			return nil, err
		}
		return &anyValueState{any: any, val: val}, nil
	case tagArgExtreme:
		wantLess, err := r.bool()
		if err != nil {
			return nil, err
		}
		any, err := r.bool()
		if err != nil {
			return nil, err
		}
		bestKey, err := r.value()
		if err != nil {
			return nil, err
		}
		val, err := r.value()
		if err != nil {
			return nil, err
		}
		return &argExtremeState{wantLess: wantLess, any: any, bestKey: bestKey, val: val}, nil
	default:
		return nil, fmt.Errorf("state codec: unknown state tag %d", tag)
	}
}
