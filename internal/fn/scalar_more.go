package fn

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/measures-sql/msql/internal/sqltypes"
)

func registerNumericFuncs() {
	register(&Scalar{
		Name: "NEG", MinArgs: 1, MaxArgs: 1, Strict: true,
		Ret: retPromote("unary minus"),
		Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
			return sqltypes.Neg(args[0])
		},
	})
	register(&Scalar{
		Name: "ABS", MinArgs: 1, MaxArgs: 1, Strict: true,
		Ret: retPromote("ABS"),
		Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
			v := args[0]
			if v.K == sqltypes.KindInt {
				if v.I < 0 {
					if v.I == math.MinInt64 {
						return sqltypes.Value{}, fmt.Errorf("INTEGER overflow in ABS(%d)", v.I)
					}
					return sqltypes.NewInt(-v.I), nil
				}
				return v, nil
			}
			return sqltypes.NewFloat(math.Abs(v.AsFloat())), nil
		},
	})
	register(&Scalar{
		Name: "SIGN", MinArgs: 1, MaxArgs: 1, Strict: true,
		Ret: func(args []sqltypes.Type) (sqltypes.Type, error) {
			if err := argNumeric(args, "SIGN"); err != nil {
				return sqltypes.Type{}, err
			}
			return sqltypes.Type{Kind: sqltypes.KindInt}, nil
		},
		Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
			f := args[0].AsFloat()
			switch {
			case f > 0:
				return sqltypes.NewInt(1), nil
			case f < 0:
				return sqltypes.NewInt(-1), nil
			default:
				return sqltypes.NewInt(0), nil
			}
		},
	})
	register(&Scalar{
		Name: "ROUND", MinArgs: 1, MaxArgs: 2, Strict: true,
		Ret: func(args []sqltypes.Type) (sqltypes.Type, error) {
			if err := argNumeric(args, "ROUND"); err != nil {
				return sqltypes.Type{}, err
			}
			return sqltypes.Type{Kind: sqltypes.KindFloat}, nil
		},
		Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
			scale := 0.0
			if len(args) == 2 {
				scale = args[1].AsFloat()
			}
			mult := math.Pow(10, scale)
			return sqltypes.NewFloat(math.Round(args[0].AsFloat()*mult) / mult), nil
		},
	})
	unaryFloat := func(name string, f func(float64) float64, domain func(float64) error) {
		register(&Scalar{
			Name: name, MinArgs: 1, MaxArgs: 1, Strict: true,
			Ret: func(args []sqltypes.Type) (sqltypes.Type, error) {
				if err := argNumeric(args, name); err != nil {
					return sqltypes.Type{}, err
				}
				return sqltypes.Type{Kind: sqltypes.KindFloat}, nil
			},
			Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
				x := args[0].AsFloat()
				if domain != nil {
					if err := domain(x); err != nil {
						return sqltypes.Value{}, err
					}
				}
				return sqltypes.NewFloat(f(x)), nil
			},
		})
	}
	unaryFloat("SQRT", math.Sqrt, func(x float64) error {
		if x < 0 {
			return fmt.Errorf("SQRT of negative value %g", x)
		}
		return nil
	})
	unaryFloat("LN", math.Log, func(x float64) error {
		if x <= 0 {
			return fmt.Errorf("LN of non-positive value %g", x)
		}
		return nil
	})
	unaryFloat("EXP", math.Exp, nil)
	intify := func(name string, f func(float64) float64) {
		register(&Scalar{
			Name: name, MinArgs: 1, MaxArgs: 1, Strict: true,
			Ret: retPromote(name),
			Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
				if args[0].K == sqltypes.KindInt {
					return args[0], nil
				}
				return sqltypes.NewFloat(f(args[0].AsFloat())), nil
			},
		})
	}
	intify("FLOOR", math.Floor)
	intify("CEIL", math.Ceil)
	intify("CEILING", math.Ceil)
	register(&Scalar{
		Name: "POWER", MinArgs: 2, MaxArgs: 2, Strict: true,
		Ret: func(args []sqltypes.Type) (sqltypes.Type, error) {
			if err := argNumeric(args, "POWER"); err != nil {
				return sqltypes.Type{}, err
			}
			return sqltypes.Type{Kind: sqltypes.KindFloat}, nil
		},
		Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
			return sqltypes.NewFloat(math.Pow(args[0].AsFloat(), args[1].AsFloat())), nil
		},
	})
	register(&Scalar{
		Name: "MOD", MinArgs: 2, MaxArgs: 2, Strict: true,
		Ret: retPromote("MOD"),
		Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
			return sqltypes.Mod(args[0], args[1])
		},
	})
	register(&Scalar{
		Name: "RANDOM", MinArgs: 0, MaxArgs: 0,
		Volatile: true,
		Ret:      retKind(sqltypes.KindFloat),
		Eval: func([]sqltypes.Value) (sqltypes.Value, error) {
			return sqltypes.NewFloat(rand.Float64()), nil
		},
	})
}

func registerStringFuncs() {
	str1 := func(name string, f func(string) string) {
		register(&Scalar{
			Name: name, MinArgs: 1, MaxArgs: 1, Strict: true,
			Ret: retKind(sqltypes.KindString),
			Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
				if args[0].K != sqltypes.KindString {
					return sqltypes.Value{}, fmt.Errorf("%s: expected string argument", name)
				}
				return sqltypes.NewString(f(args[0].S)), nil
			},
		})
	}
	str1("UPPER", strings.ToUpper)
	str1("LOWER", strings.ToLower)
	str1("TRIM", strings.TrimSpace)
	register(&Scalar{
		Name: "LENGTH", MinArgs: 1, MaxArgs: 1, Strict: true,
		Ret: retKind(sqltypes.KindInt),
		Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
			if args[0].K != sqltypes.KindString {
				return sqltypes.Value{}, fmt.Errorf("LENGTH: expected string argument")
			}
			return sqltypes.NewInt(int64(len([]rune(args[0].S)))), nil
		},
	})
	register(&Scalar{
		Name: "SUBSTRING", MinArgs: 2, MaxArgs: 3, Strict: true,
		Ret: retKind(sqltypes.KindString),
		Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
			runes := []rune(args[0].S)
			start := int(args[1].I) - 1 // SQL is 1-based
			if start < 0 {
				start = 0
			}
			if start > len(runes) {
				start = len(runes)
			}
			end := len(runes)
			if len(args) == 3 {
				length := args[2].I
				if length < 0 {
					return sqltypes.Value{}, fmt.Errorf("SUBSTRING: negative length %d", length)
				}
				// Compare in int64: start + int(length) wraps for huge
				// lengths and used to truncate the result to "".
				if length < int64(end-start) {
					end = start + int(length)
				}
			}
			return sqltypes.NewString(string(runes[start:end])), nil
		},
	})
	register(&Scalar{
		Name: "REPLACE", MinArgs: 3, MaxArgs: 3, Strict: true,
		Ret: retKind(sqltypes.KindString),
		Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
			return sqltypes.NewString(strings.ReplaceAll(args[0].S, args[1].S, args[2].S)), nil
		},
	})
	register(&Scalar{
		Name: "CONCAT", MinArgs: 1, MaxArgs: -1, Strict: true,
		Ret: retKind(sqltypes.KindString),
		Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
			var sb strings.Builder
			for _, a := range args {
				s, err := sqltypes.Cast(a, sqltypes.KindString)
				if err != nil {
					return sqltypes.Value{}, err
				}
				sb.WriteString(s.S)
			}
			return sqltypes.NewString(sb.String()), nil
		},
	})
	register(&Scalar{
		Name: "LEFT", MinArgs: 2, MaxArgs: 2, Strict: true,
		Ret: retKind(sqltypes.KindString),
		Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
			runes := []rune(args[0].S)
			n := int(args[1].I)
			if n < 0 {
				n = 0
			}
			if n > len(runes) {
				n = len(runes)
			}
			return sqltypes.NewString(string(runes[:n])), nil
		},
	})
	register(&Scalar{
		Name: "RIGHT", MinArgs: 2, MaxArgs: 2, Strict: true,
		Ret: retKind(sqltypes.KindString),
		Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
			runes := []rune(args[0].S)
			n := int(args[1].I)
			if n < 0 {
				n = 0
			}
			if n > len(runes) {
				n = len(runes)
			}
			return sqltypes.NewString(string(runes[len(runes)-n:])), nil
		},
	})
}

func registerConditionalFuncs() {
	commonOf := func(name string) func([]sqltypes.Type) (sqltypes.Type, error) {
		return func(args []sqltypes.Type) (sqltypes.Type, error) {
			kind := sqltypes.KindUnknown
			for _, a := range args {
				k, err := sqltypes.CommonType(kind, a.Kind)
				if err != nil {
					return sqltypes.Type{}, fmt.Errorf("%s: %v", name, err)
				}
				kind = k
			}
			return sqltypes.Type{Kind: kind}, nil
		}
	}
	register(&Scalar{
		Name: "COALESCE", MinArgs: 1, MaxArgs: -1, Strict: false,
		Ret: commonOf("COALESCE"),
		Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
			for _, a := range args {
				if !a.Null {
					return a, nil
				}
			}
			return args[len(args)-1], nil
		},
	})
	register(&Scalar{
		Name: "NULLIF", MinArgs: 2, MaxArgs: 2, Strict: false,
		Ret: func(args []sqltypes.Type) (sqltypes.Type, error) {
			return args[0], nil
		},
		Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
			if sqltypes.NotDistinct(args[0], args[1]) {
				return sqltypes.Null(args[0].K), nil
			}
			return args[0], nil
		},
	})
	extreme := func(name string, wantLess bool) {
		register(&Scalar{
			Name: name, MinArgs: 1, MaxArgs: -1, Strict: true,
			Ret: commonOf(name),
			Eval: func(args []sqltypes.Value) (sqltypes.Value, error) {
				best := args[0]
				for _, a := range args[1:] {
					c, err := sqltypes.Compare(a, best)
					if err != nil {
						return sqltypes.Value{}, err
					}
					if (c < 0) == wantLess && c != 0 {
						best = a
					}
				}
				return best, nil
			},
		})
	}
	extreme("GREATEST", false)
	extreme("LEAST", true)
}
