package fn

import (
	"fmt"
	"strings"

	"github.com/measures-sql/msql/internal/sqltypes"
)

// Window-only functions (usable only with OVER). Aggregate functions may
// also be used as window functions; the executor handles both.

var windowOnly = map[string]bool{
	"ROW_NUMBER":  true,
	"RANK":        true,
	"DENSE_RANK":  true,
	"LAG":         true,
	"LEAD":        true,
	"FIRST_VALUE": true,
	"LAST_VALUE":  true,
	"NTILE":       true,
}

// IsWindowOnly reports whether name is valid only with an OVER clause.
func IsWindowOnly(name string) bool { return windowOnly[strings.ToUpper(name)] }

// WindowRet computes the result type of a window-only function.
func WindowRet(name string, args []sqltypes.Type) (sqltypes.Type, error) {
	switch strings.ToUpper(name) {
	case "ROW_NUMBER", "RANK", "DENSE_RANK", "NTILE":
		if len(args) > 1 {
			return sqltypes.Type{}, fmt.Errorf("%s takes no arguments", name)
		}
		return sqltypes.Type{Kind: sqltypes.KindInt}, nil
	case "LAG", "LEAD":
		if len(args) < 1 || len(args) > 3 {
			return sqltypes.Type{}, fmt.Errorf("%s expects 1 to 3 arguments", name)
		}
		return args[0].Scalar(), nil
	case "FIRST_VALUE", "LAST_VALUE":
		if len(args) != 1 {
			return sqltypes.Type{}, fmt.Errorf("%s expects 1 argument", name)
		}
		return args[0].Scalar(), nil
	default:
		return sqltypes.Type{}, fmt.Errorf("unknown window function %s", name)
	}
}
