package fn

import (
	"fmt"

	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/internal/vec"
)

// Batch kernels: typed column-at-a-time implementations of the hot
// scalar operators (comparisons, int/float arithmetic, MOD), registered
// per argument-kind signature. A kernel runs only when the executor has
// typed (non-boxed) columns whose kinds match the registered signature;
// anything else goes through the generic boxed path or the row-at-a-time
// fallback. Every kernel must agree bit-for-bit with the scalar operator
// it mirrors — the differential harness treats the row engine as the
// oracle — so NULL handling, overflow errors, and division-by-zero
// semantics below are copied from sqltypes, not reinvented.

// Kernel evaluates one operator over the selected rows of typed argument
// columns, writing results (or null bits) into out at the same indices.
type Kernel func(args []*vec.Col, sel []int, out *vec.Col) error

type kernelKey struct {
	name string
	sig  string
}

type kernelEntry struct {
	k   Kernel
	out sqltypes.Kind
}

var kernels = map[kernelKey]kernelEntry{}

func kindSig(kinds []sqltypes.Kind) string {
	b := make([]byte, len(kinds))
	for i, k := range kinds {
		b[i] = byte(k)
	}
	return string(b)
}

// RegisterKernel registers a batch kernel for name over the given
// argument kinds, producing out-kind results.
func RegisterKernel(name string, kinds []sqltypes.Kind, out sqltypes.Kind, k Kernel) {
	kernels[kernelKey{name, kindSig(kinds)}] = kernelEntry{k, out}
}

// LookupKernel returns the kernel for name over the given argument
// kinds and the kind of column it produces.
func LookupKernel(name string, kinds []sqltypes.Kind) (Kernel, sqltypes.Kind, bool) {
	e, ok := kernels[kernelKey{name, kindSig(kinds)}]
	return e.k, e.out, ok
}

// cmpOrd builds a comparison kernel over two same-layout columns whose
// values order with <, using get to pick the typed slice.
func cmpOrd[T int64 | float64 | string](get func(*vec.Col) []T, test func(int) bool) Kernel {
	return func(args []*vec.Col, sel []int, out *vec.Col) error {
		a, b := args[0], args[1]
		av, bv := get(a), get(b)
		for _, i := range sel {
			if a.Nulls.Get(i) || b.Nulls.Get(i) {
				out.Nulls.Set(i)
				continue
			}
			x, y := av[i], bv[i]
			c := 0
			if x < y {
				c = -1
			} else if x > y {
				c = 1
			}
			out.B[i] = test(c)
		}
		return nil
	}
}

// asFloats returns an accessor viewing a numeric column as float64,
// matching Value.AsFloat for cross-kind comparisons and float arithmetic.
func asFloats(c *vec.Col) func(int) float64 {
	if c.Kind == sqltypes.KindInt {
		is := c.I
		return func(i int) float64 { return float64(is[i]) }
	}
	fs := c.F
	return func(i int) float64 { return fs[i] }
}

// cmpNum builds a comparison kernel over mixed int/float columns via
// float promotion, exactly like sqltypes.Compare does.
func cmpNum(test func(int) bool) Kernel {
	return func(args []*vec.Col, sel []int, out *vec.Col) error {
		a, b := args[0], args[1]
		av, bv := asFloats(a), asFloats(b)
		for _, i := range sel {
			if a.Nulls.Get(i) || b.Nulls.Get(i) {
				out.Nulls.Set(i)
				continue
			}
			x, y := av(i), bv(i)
			c := 0
			if x < y {
				c = -1
			} else if x > y {
				c = 1
			}
			out.B[i] = test(c)
		}
		return nil
	}
}

// cmpBool compares two bool columns with false < true, matching
// sqltypes.Compare's b2i ordering.
func cmpBool(test func(int) bool) Kernel {
	return func(args []*vec.Col, sel []int, out *vec.Col) error {
		a, b := args[0], args[1]
		for _, i := range sel {
			if a.Nulls.Get(i) || b.Nulls.Get(i) {
				out.Nulls.Set(i)
				continue
			}
			x, y := 0, 0
			if a.B[i] {
				x = 1
			}
			if b.B[i] {
				y = 1
			}
			out.B[i] = test(x - y) // x-y is already the comparison result's sign
		}
		return nil
	}
}

// intArith builds a checked int64 arithmetic kernel; sym is the operator
// symbol used in the overflow error, which must match sqltypes.arith.
func intArith(op func(a, b int64) (int64, bool), sym string) Kernel {
	return func(args []*vec.Col, sel []int, out *vec.Col) error {
		a, b := args[0], args[1]
		for _, i := range sel {
			if a.Nulls.Get(i) || b.Nulls.Get(i) {
				out.Nulls.Set(i)
				continue
			}
			s, ok := op(a.I[i], b.I[i])
			if !ok {
				return fmt.Errorf("INTEGER overflow in %d %s %d", a.I[i], sym, b.I[i])
			}
			out.I[i] = s
		}
		return nil
	}
}

// floatArith builds a float arithmetic kernel over any numeric columns.
func floatArith(op func(x, y float64) float64) Kernel {
	return func(args []*vec.Col, sel []int, out *vec.Col) error {
		a, b := args[0], args[1]
		av, bv := asFloats(a), asFloats(b)
		for _, i := range sel {
			if a.Nulls.Get(i) || b.Nulls.Get(i) {
				out.Nulls.Set(i)
				continue
			}
			out.F[i] = op(av(i), bv(i))
		}
		return nil
	}
}

// divKernel mirrors sqltypes.Div: always DOUBLE, NULL on NULL operands
// and on division by zero.
func divKernel(args []*vec.Col, sel []int, out *vec.Col) error {
	a, b := args[0], args[1]
	av, bv := asFloats(a), asFloats(b)
	for _, i := range sel {
		if a.Nulls.Get(i) || b.Nulls.Get(i) {
			out.Nulls.Set(i)
			continue
		}
		den := bv(i)
		if den == 0 {
			out.Nulls.Set(i)
			continue
		}
		out.F[i] = av(i) / den
	}
	return nil
}

// modIntKernel mirrors the int path of sqltypes.Mod: NULL on zero
// divisor, otherwise truncated modulo.
func modIntKernel(args []*vec.Col, sel []int, out *vec.Col) error {
	a, b := args[0], args[1]
	for _, i := range sel {
		if a.Nulls.Get(i) || b.Nulls.Get(i) {
			out.Nulls.Set(i)
			continue
		}
		if b.I[i] == 0 {
			out.Nulls.Set(i)
			continue
		}
		out.I[i] = a.I[i] % b.I[i]
	}
	return nil
}

// modFloatKernel mirrors the float path of sqltypes.Mod, including the
// INTEGER-range error and the truncated-divisor zero guard.
func modFloatKernel(args []*vec.Col, sel []int, out *vec.Col) error {
	a, b := args[0], args[1]
	av, bv := asFloats(a), asFloats(b)
	for _, i := range sel {
		if a.Nulls.Get(i) || b.Nulls.Get(i) {
			out.Nulls.Set(i)
			continue
		}
		x, y := av(i), bv(i)
		if y == 0 {
			out.Nulls.Set(i)
			continue
		}
		if !sqltypes.InInt64Range(x) || !sqltypes.InInt64Range(y) {
			return fmt.Errorf("MOD: operand out of INTEGER range")
		}
		yi := int64(y)
		if yi == 0 {
			out.Nulls.Set(i)
			continue
		}
		out.F[i] = float64(int64(x) % yi)
	}
	return nil
}

func init() {
	const (
		kB = sqltypes.KindBool
		kI = sqltypes.KindInt
		kF = sqltypes.KindFloat
		kS = sqltypes.KindString
		kD = sqltypes.KindDate
	)
	sig := func(a, b sqltypes.Kind) []sqltypes.Kind { return []sqltypes.Kind{a, b} }
	intSlice := func(c *vec.Col) []int64 { return c.I }
	floatSlice := func(c *vec.Col) []float64 { return c.F }
	strSlice := func(c *vec.Col) []string { return c.S }

	cmps := []struct {
		name string
		test func(int) bool
	}{
		{"=", func(c int) bool { return c == 0 }},
		{"<>", func(c int) bool { return c != 0 }},
		{"<", func(c int) bool { return c < 0 }},
		{"<=", func(c int) bool { return c <= 0 }},
		{">", func(c int) bool { return c > 0 }},
		{">=", func(c int) bool { return c >= 0 }},
	}
	for _, cmp := range cmps {
		RegisterKernel(cmp.name, sig(kI, kI), kB, cmpOrd(intSlice, cmp.test))
		RegisterKernel(cmp.name, sig(kF, kF), kB, cmpOrd(floatSlice, cmp.test))
		RegisterKernel(cmp.name, sig(kI, kF), kB, cmpNum(cmp.test))
		RegisterKernel(cmp.name, sig(kF, kI), kB, cmpNum(cmp.test))
		RegisterKernel(cmp.name, sig(kS, kS), kB, cmpOrd(strSlice, cmp.test))
		RegisterKernel(cmp.name, sig(kD, kD), kB, cmpOrd(intSlice, cmp.test))
		RegisterKernel(cmp.name, sig(kB, kB), kB, cmpBool(cmp.test))
	}

	ints := []struct {
		name string
		op   func(a, b int64) (int64, bool)
	}{
		{"+", sqltypes.AddInt64},
		{"-", sqltypes.SubInt64},
		{"*", sqltypes.MulInt64},
	}
	floats := []struct {
		name string
		op   func(x, y float64) float64
	}{
		{"+", func(x, y float64) float64 { return x + y }},
		{"-", func(x, y float64) float64 { return x - y }},
		{"*", func(x, y float64) float64 { return x * y }},
	}
	for _, a := range ints {
		RegisterKernel(a.name, sig(kI, kI), kI, intArith(a.op, a.name))
	}
	for _, a := range floats {
		for _, s := range [][]sqltypes.Kind{sig(kF, kF), sig(kI, kF), sig(kF, kI)} {
			RegisterKernel(a.name, s, kF, floatArith(a.op))
		}
	}
	for _, s := range [][]sqltypes.Kind{sig(kI, kI), sig(kF, kF), sig(kI, kF), sig(kF, kI)} {
		RegisterKernel("/", s, kF, divKernel)
	}
	RegisterKernel("%", sig(kI, kI), kI, modIntKernel)
	for _, s := range [][]sqltypes.Kind{sig(kF, kF), sig(kI, kF), sig(kF, kI)} {
		RegisterKernel("%", s, kF, modFloatKernel)
	}
}
