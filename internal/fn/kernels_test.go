package fn

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/internal/vec"
)

// randValue returns a random value of the given kind, NULL ~25% of the
// time. Magnitudes are kept small so arithmetic never overflows — the
// sweep checks agreement on the happy path; overflow has its own test.
func randValue(rng *rand.Rand, kind sqltypes.Kind) sqltypes.Value {
	if rng.Intn(4) == 0 {
		return sqltypes.Null(kind)
	}
	switch kind {
	case sqltypes.KindBool:
		return sqltypes.NewBool(rng.Intn(2) == 0)
	case sqltypes.KindInt:
		return sqltypes.NewInt(int64(rng.Intn(201) - 100))
	case sqltypes.KindFloat:
		return sqltypes.NewFloat(float64(rng.Intn(2001)-1000) / 8)
	case sqltypes.KindString:
		return sqltypes.NewString(strings.Repeat("ab", rng.Intn(3)) + string(rune('a'+rng.Intn(4))))
	case sqltypes.KindDate:
		return sqltypes.NewDateDays(int64(rng.Intn(1000)))
	default:
		return sqltypes.Null(sqltypes.KindUnknown)
	}
}

// TestKernelsMatchScalars sweeps every registered kernel signature with
// random columns (including NULLs) and asserts the kernel output equals
// the row engine's semantics: strict NULL short-circuit, then the scalar
// Eval, value-exact.
func TestKernelsMatchScalars(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 257 // not a multiple of 64, to exercise bitmap tails
	for key, entry := range kernels {
		sc, ok := LookupScalar(key.name)
		if !ok {
			t.Fatalf("kernel %q has no scalar twin", key.name)
		}
		kinds := make([]sqltypes.Kind, len(key.sig))
		for i := range key.sig {
			kinds[i] = sqltypes.Kind(key.sig[i])
		}
		rows := make([][]sqltypes.Value, n)
		for r := range rows {
			row := make([]sqltypes.Value, len(kinds))
			for j, k := range kinds {
				row[j] = randValue(rng, k)
			}
			rows[r] = row
		}
		cols := make([]*vec.Col, len(kinds))
		for j, k := range kinds {
			cols[j] = vec.BuildCol(rows, j, k)
			if cols[j].Boxed() {
				t.Fatalf("%s%v: arg column %d unexpectedly boxed", key.name, kinds, j)
			}
		}
		sel := make([]int, n)
		for i := range sel {
			sel[i] = i
		}
		out := vec.NewCol(entry.out, n)
		if err := entry.k(cols, sel, out); err != nil {
			t.Fatalf("%s%v: kernel error: %v", key.name, kinds, err)
		}
		for _, i := range sel {
			args := rows[i]
			var want sqltypes.Value
			anyNull := false
			for _, a := range args {
				if a.Null {
					anyNull = true
				}
			}
			if sc.Strict && anyNull {
				want = sqltypes.Null(entry.out)
			} else {
				var err error
				want, err = sc.Eval(args)
				if err != nil {
					t.Fatalf("%s%v row %d: scalar error: %v", key.name, kinds, i, err)
				}
			}
			if got := out.Value(i); got != want {
				t.Fatalf("%s%v row %d args %v: kernel %#v, scalar %#v",
					key.name, kinds, i, args, got, want)
			}
		}
	}
}

func intCols(a, b []sqltypes.Value) []*vec.Col {
	rows := make([][]sqltypes.Value, len(a))
	for i := range a {
		rows[i] = []sqltypes.Value{a[i], b[i]}
	}
	return []*vec.Col{
		vec.BuildCol(rows, 0, sqltypes.KindInt),
		vec.BuildCol(rows, 1, sqltypes.KindInt),
	}
}

// TestKernelIntOverflow: the checked int kernels must surface the exact
// sqltypes overflow error, and only for selected rows.
func TestKernelIntOverflow(t *testing.T) {
	k, out, ok := LookupKernel("+", []sqltypes.Kind{sqltypes.KindInt, sqltypes.KindInt})
	if !ok {
		t.Fatal("no int + kernel")
	}
	cols := intCols(
		[]sqltypes.Value{sqltypes.NewInt(1), sqltypes.NewInt(math.MaxInt64)},
		[]sqltypes.Value{sqltypes.NewInt(2), sqltypes.NewInt(1)},
	)
	res := vec.NewCol(out, 2)
	err := k(cols, []int{0, 1}, res)
	if err == nil {
		t.Fatal("expected overflow error")
	}
	if want := "INTEGER overflow in 9223372036854775807 + 1"; err.Error() != want {
		t.Fatalf("error %q, want %q", err, want)
	}
	// The overflowing row deselected: no error.
	if err := k(cols, []int{0}, vec.NewCol(out, 2)); err != nil {
		t.Fatalf("unexpected error with overflow row unselected: %v", err)
	}
}

// TestKernelNullPropagation: NULL in either operand yields NULL without
// evaluating the operation (division by zero on a NULL row must not
// matter).
func TestKernelNullPropagation(t *testing.T) {
	k, out, ok := LookupKernel("/", []sqltypes.Kind{sqltypes.KindInt, sqltypes.KindInt})
	if !ok {
		t.Fatal("no int / kernel")
	}
	cols := intCols(
		[]sqltypes.Value{sqltypes.NewInt(10), sqltypes.Null(sqltypes.KindInt), sqltypes.NewInt(10)},
		[]sqltypes.Value{sqltypes.Null(sqltypes.KindInt), sqltypes.NewInt(0), sqltypes.NewInt(0)},
	)
	res := vec.NewCol(out, 3)
	if err := k(cols, []int{0, 1, 2}, res); err != nil {
		t.Fatalf("kernel error: %v", err)
	}
	for i := 0; i < 3; i++ {
		if got, want := res.Value(i), sqltypes.Null(sqltypes.KindFloat); got != want {
			t.Fatalf("row %d: got %#v want %#v", i, got, want)
		}
	}
}

// TestKernelEmptyAndBoundarySelections runs a kernel over selection
// vectors of size 0, 1023, 1024, and 1025 (batch-boundary sizes) and
// verifies results only at selected rows.
func TestKernelEmptyAndBoundarySelections(t *testing.T) {
	k, out, ok := LookupKernel("<", []sqltypes.Kind{sqltypes.KindInt, sqltypes.KindInt})
	if !ok {
		t.Fatal("no int < kernel")
	}
	const n = 1025
	a := make([]sqltypes.Value, n)
	b := make([]sqltypes.Value, n)
	for i := range a {
		a[i] = sqltypes.NewInt(int64(i))
		b[i] = sqltypes.NewInt(512)
	}
	cols := intCols(a, b)
	for _, size := range []int{0, 1023, 1024, 1025} {
		sel := make([]int, size)
		for i := range sel {
			sel[i] = i
		}
		res := vec.NewCol(out, n)
		if err := k(cols, sel, res); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		for _, i := range sel {
			want := sqltypes.NewBool(int64(i) < 512)
			if got := res.Value(i); got != want {
				t.Fatalf("size %d row %d: got %#v want %#v", size, i, got, want)
			}
		}
	}
}

// TestKernelModMatchesScalar pins the quirky MOD cases: zero divisors
// and the float path's truncated-divisor guard (MOD(1.0, 0.5)).
func TestKernelModMatchesScalar(t *testing.T) {
	ff := []sqltypes.Kind{sqltypes.KindFloat, sqltypes.KindFloat}
	k, out, ok := LookupKernel("%", ff)
	if !ok {
		t.Fatal("no float % kernel")
	}
	rows := [][]sqltypes.Value{
		{sqltypes.NewFloat(1.0), sqltypes.NewFloat(0.5)}, // int64(0.5) == 0 → NULL
		{sqltypes.NewFloat(7.0), sqltypes.NewFloat(0)},   // zero divisor → NULL
		{sqltypes.NewFloat(7.5), sqltypes.NewFloat(2)},
	}
	cols := []*vec.Col{
		vec.BuildCol(rows, 0, sqltypes.KindFloat),
		vec.BuildCol(rows, 1, sqltypes.KindFloat),
	}
	res := vec.NewCol(out, len(rows))
	if err := k(cols, []int{0, 1, 2}, res); err != nil {
		t.Fatalf("kernel error: %v", err)
	}
	for i, row := range rows {
		want, err := sqltypes.Mod(row[0], row[1])
		if err != nil {
			t.Fatalf("row %d: scalar error: %v", i, err)
		}
		if got := res.Value(i); got != want {
			t.Fatalf("row %d: got %#v want %#v", i, got, want)
		}
	}
}
