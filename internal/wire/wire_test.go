package wire

// Fidelity of the error taxonomy and of SQL values across the wire.

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/sqltypes"
)

func TestErrorRoundTripPreservesEverything(t *testing.T) {
	for _, code := range []exec.Code{
		exec.CodeParse, exec.CodeBind, exec.CodeExpand, exec.CodeRuntime,
		exec.CodeCanceled, exec.CodeTimeout, exec.CodeResourceExhausted,
	} {
		orig := &exec.Error{
			Code:  code,
			Phase: "execute",
			Query: "SELECT 1",
			Pos:   7,
			Hint:  "try harder",
			Err:   errors.New("boom"),
		}
		got := FromError(orig).ToError("SELECT 1")
		if got.Code != code || got.Phase != "execute" || got.Pos != 7 || got.Hint != "try harder" {
			t.Fatalf("%v: round trip lost fields: %+v", code, got)
		}
		if got.Query != "SELECT 1" {
			t.Fatalf("%v: query not re-attached: %q", code, got.Query)
		}
		if !errors.Is(got, code) {
			t.Fatalf("%v: errors.Is against the code sentinel broke", code)
		}
		if got.Err.Error() != "boom" {
			t.Fatalf("%v: cause message %q, want boom", code, got.Err.Error())
		}
	}
}

func TestContextSentinelsSurviveTheWire(t *testing.T) {
	canceled := FromError(exec.CtxError(context.Canceled)).ToError("q")
	if !errors.Is(canceled, context.Canceled) {
		t.Fatal("CANCELED must unwrap to context.Canceled after a round trip")
	}
	timeout := FromError(exec.CtxError(context.DeadlineExceeded)).ToError("q")
	if !errors.Is(timeout, context.DeadlineExceeded) {
		t.Fatal("TIMEOUT must unwrap to context.DeadlineExceeded after a round trip")
	}
	if errors.Is(canceled, context.DeadlineExceeded) || errors.Is(timeout, context.Canceled) {
		t.Fatal("sentinels crossed")
	}
}

func TestNonTaxonomyErrorMapsToRuntime(t *testing.T) {
	w := FromError(errors.New("stray"))
	if w.Code != "RUNTIME" || w.Offset != -1 || w.Message != "stray" {
		t.Fatalf("stray error mapped to %+v", w)
	}
}

func TestHTTPStatusMapping(t *testing.T) {
	cases := map[string]int{
		"PARSE":              http.StatusBadRequest,
		"BIND":               http.StatusBadRequest,
		"EXPAND":             http.StatusBadRequest,
		"RUNTIME":            http.StatusInternalServerError,
		"CANCELED":           StatusClientClosedRequest,
		"TIMEOUT":            http.StatusGatewayTimeout,
		"RESOURCE_EXHAUSTED": http.StatusTooManyRequests,
		"UNKNOWN":            http.StatusInternalServerError,
	}
	for code, want := range cases {
		if got := (&Error{Code: code}).HTTPStatus(); got != want {
			t.Errorf("%s → %d, want %d", code, got, want)
		}
	}
}

func TestRetryableIsExactly429And503(t *testing.T) {
	for status := 100; status < 600; status++ {
		want := status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
		if Retryable(status) != want {
			t.Errorf("Retryable(%d) = %v, want %v", status, !want, want)
		}
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	h := http.Header{}
	if got := RetryAfterSeconds(h); got != 0 {
		t.Fatalf("absent header → %d, want 0", got)
	}
	h.Set("Retry-After", "7")
	if got := RetryAfterSeconds(h); got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
	h.Set("Retry-After", "Wed, 21 Oct 2015 07:28:00 GMT")
	if got := RetryAfterSeconds(h); got != 0 {
		t.Fatalf("HTTP-date form should fall back to 0, got %d", got)
	}
	h.Set("Retry-After", "-3")
	if got := RetryAfterSeconds(h); got != 0 {
		t.Fatalf("negative should fall back to 0, got %d", got)
	}
}

func TestEncodeValue(t *testing.T) {
	null := sqltypes.Value{Null: true}
	if EncodeValue(null) != nil {
		t.Fatal("NULL must encode as nil")
	}
	if got := EncodeValue(sqltypes.NewInt(42)); got != int64(42) {
		t.Fatalf("int → %#v", got)
	}
	if got := EncodeValue(sqltypes.NewFloat(1.5)); got != 1.5 {
		t.Fatalf("float → %#v", got)
	}
	if got := EncodeValue(sqltypes.NewBool(true)); got != true {
		t.Fatalf("bool → %#v", got)
	}
	if got := EncodeValue(sqltypes.NewString("hi")); got != "hi" {
		t.Fatalf("string → %#v", got)
	}
}
