package wire

// Prepared-statement wire messages: POST /prepare registers a named
// parameterized statement, POST /execute runs it with typed parameter
// values. Parameters carry an explicit SQL type name alongside the
// JSON-native value because JSON cannot distinguish INTEGER from
// DOUBLE, and the plan cache keys on parameter types — an ambiguous
// number would make one client flip a server between cache entries.

import (
	"fmt"
	"math"
	"time"

	"github.com/measures-sql/msql/internal/sqltypes"
)

// PrepareRequest is the body of POST /prepare. Re-preparing an existing
// name replaces it (clients re-prepare after reconnecting).
type PrepareRequest struct {
	Name string `json:"name"`
	SQL  string `json:"sql"`
}

// PrepareResponse is the body of a POST /prepare reply.
type PrepareResponse struct {
	Name      string `json:"name,omitempty"`
	NumParams int    `json:"num_params"`
	Error     *Error `json:"error,omitempty"`
}

// ExecuteRequest is the body of POST /execute.
type ExecuteRequest struct {
	Name   string  `json:"name"`
	Params []Param `json:"params,omitempty"`
	// RequestID has /query semantics: the X-Request-Id header wins,
	// empty generates one server-side.
	RequestID string `json:"request_id,omitempty"`
	// TimeoutMillis has /query semantics: clamped by the server.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// Param is one typed parameter value. Type is the SQL type name
// (BOOLEAN, INTEGER, DOUBLE, VARCHAR, DATE); Value is the JSON-native
// encoding EncodeValue produces (null encodes SQL NULL of that type).
type Param struct {
	Type  string `json:"type"`
	Value any    `json:"value"`
}

// EncodeParam converts a SQL value to its wire form.
func EncodeParam(v sqltypes.Value) Param {
	return Param{Type: v.K.String(), Value: EncodeValue(v)}
}

// EncodeParams converts a parameter list to its wire form.
func EncodeParams(vals []sqltypes.Value) []Param {
	if len(vals) == 0 {
		return nil
	}
	out := make([]Param, len(vals))
	for i, v := range vals {
		out[i] = EncodeParam(v)
	}
	return out
}

// Decode reconstructs the SQL value, round-tripping exactly what
// EncodeParam produced. The declared type drives interpretation:
// INTEGER rejects non-integral numbers instead of truncating.
func (p Param) Decode() (sqltypes.Value, error) {
	kind := sqltypes.KindFromName(p.Type)
	if kind == sqltypes.KindUnknown && p.Type != "" && p.Type != "UNKNOWN" {
		return sqltypes.Value{}, fmt.Errorf("unknown parameter type %q", p.Type)
	}
	if p.Value == nil {
		return sqltypes.Null(kind), nil
	}
	switch kind {
	case sqltypes.KindBool:
		b, ok := p.Value.(bool)
		if !ok {
			return sqltypes.Value{}, fmt.Errorf("BOOLEAN parameter carries %T", p.Value)
		}
		return sqltypes.NewBool(b), nil
	case sqltypes.KindInt:
		f, ok := p.Value.(float64)
		if !ok || f != math.Trunc(f) || math.Abs(f) > 1<<53 {
			return sqltypes.Value{}, fmt.Errorf("INTEGER parameter carries %v (%T)", p.Value, p.Value)
		}
		return sqltypes.NewInt(int64(f)), nil
	case sqltypes.KindFloat:
		f, ok := p.Value.(float64)
		if !ok {
			return sqltypes.Value{}, fmt.Errorf("DOUBLE parameter carries %T", p.Value)
		}
		return sqltypes.NewFloat(f), nil
	case sqltypes.KindString:
		s, ok := p.Value.(string)
		if !ok {
			return sqltypes.Value{}, fmt.Errorf("VARCHAR parameter carries %T", p.Value)
		}
		return sqltypes.NewString(s), nil
	case sqltypes.KindDate:
		s, ok := p.Value.(string)
		if !ok {
			return sqltypes.Value{}, fmt.Errorf("DATE parameter carries %T", p.Value)
		}
		t, err := time.Parse("2006-01-02", s)
		if err != nil {
			return sqltypes.Value{}, fmt.Errorf("DATE parameter: %w", err)
		}
		return sqltypes.NewDate(t.Year(), t.Month(), t.Day()), nil
	default:
		return sqltypes.Value{}, fmt.Errorf("parameter with no type carries non-null %T", p.Value)
	}
}

// DecodeParams reconstructs a parameter list.
func DecodeParams(ps []Param) ([]sqltypes.Value, error) {
	vals := make([]sqltypes.Value, len(ps))
	for i, p := range ps {
		v, err := p.Decode()
		if err != nil {
			return nil, fmt.Errorf("parameter %d: %w", i+1, err)
		}
		vals[i] = v
	}
	return vals, nil
}
