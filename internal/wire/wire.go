// Package wire defines the query server's wire protocol: the JSON
// request/response shapes shared by internal/server (the msqld front
// end) and msql/client, plus the faithful round-trip of the structured
// msql error taxonomy and of SQL values over JSON.
//
// Two framings share these types: a single-object JSON body (POST
// /query) and a newline-delimited stream (POST /query.ndjson) whose
// lines are a Header, zero or more RowLine objects, and a Trailer.
package wire

import (
	"context"
	"errors"
	"net/http"
	"strconv"

	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// QueryRequest is the body of POST /query and /query.ndjson.
type QueryRequest struct {
	// SQL is a statement or script to execute.
	SQL string `json:"sql"`
	// TimeoutMillis, when > 0, requests a per-statement deadline. The
	// server clamps it to its configured maximum; 0 inherits the
	// server's session default (exec.Limits.Timeout).
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// RequestID is the client's correlation ID for this request. The
	// X-Request-Id header takes precedence; when both are empty the
	// server generates one. The effective ID is echoed in the
	// X-Request-Id response header, the server's access log, the
	// engine's tracer spans, and any error payload.
	RequestID string `json:"request_id,omitempty"`
	// ExpectCatalogVersion, when > 0, makes the server reject the query
	// with a structured RUNTIME error unless its catalog version matches.
	// Shard coordinators use it to keep a scatter from silently reading
	// an endpoint that missed (or replayed ahead of) a mutation.
	ExpectCatalogVersion int64 `json:"expect_catalog_version,omitempty"`
}

// PartialRequest is the body of POST /partial: run an aggregation
// query's scan/filter/group phase and return serialized per-group
// AggStates instead of final values, for a coordinator to Merge with
// partials from other shards.
type PartialRequest struct {
	// SQL is a single aggregation SELECT. The server validates that its
	// plan is a plain aggregate (no DISTINCT aggregates, no GROUPING
	// SETS) whose shape matches Groups/Aggs.
	SQL string `json:"sql"`
	// Groups/Aggs cross-check the expected plan shape: the number of
	// GROUP BY expressions and of aggregate calls in SQL.
	Groups int `json:"groups"`
	Aggs   int `json:"aggs"`
	// ExpectVersion, when > 0, is the catalog version this request was
	// planned against; a mismatched server rejects instead of answering
	// from a stale (or differently-mutated) catalog.
	ExpectVersion int64 `json:"expect_version,omitempty"`
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	RequestID     string `json:"request_id,omitempty"`
}

// PartialGroup is one group's worth of partial aggregate state.
type PartialGroup struct {
	// Key is the base64 binary encoding (fn.AppendValues) of the group's
	// GROUP BY values; canonical, so coordinators merge groups by
	// comparing keys byte-wise.
	Key string `json:"key"`
	// States holds one base64 fn.EncodeState blob per aggregate, in
	// select-list order.
	States []string `json:"states"`
}

// PartialResponse is the body of a POST /partial reply.
type PartialResponse struct {
	// Version is the catalog version the query ran at.
	Version int64          `json:"version"`
	Groups  []PartialGroup `json:"groups,omitempty"`
	Error   *Error         `json:"error,omitempty"`
}

// ApplyRequest is the body of POST /apply: one replicated mutation —
// either a DDL statement (SQL set) or an insert of pre-partitioned,
// pre-coerced rows (Table/Rows set). ExpectVersion makes application
// exactly-once: the server applies only if its catalog version equals
// ExpectVersion, and the version becomes ExpectVersion+1 on success, so
// a coordinator that loses an ack can probe /catalog to learn whether
// the mutation landed instead of resending it.
type ApplyRequest struct {
	SQL   string `json:"sql,omitempty"`
	Table string `json:"table,omitempty"`
	// Rows is the base64 binary encoding of the coerced rows: a
	// fn.AppendValues tuple per row, concatenated, prefixed with a
	// uvarint row count.
	Rows          string `json:"rows,omitempty"`
	ExpectVersion int64  `json:"expect_version"`
	RequestID     string `json:"request_id,omitempty"`
}

// ApplyResponse is the body of a POST /apply reply. Version reports the
// server's catalog version after the call (also on version-mismatch
// rejections, so the coordinator can resynchronize).
type ApplyResponse struct {
	Version int64  `json:"version"`
	Message string `json:"message,omitempty"`
	Error   *Error `json:"error,omitempty"`
}

// CatalogResponse is the body of GET /catalog: the shard's identity and
// catalog state, used by coordinators to attach endpoints and to probe
// after a lost /apply ack.
type CatalogResponse struct {
	Version int64    `json:"version"`
	Tables  []string `json:"tables,omitempty"`
	Views   []string `json:"views,omitempty"`
	// ShardID is the -shard-id the node was started with; empty for
	// non-shard servers.
	ShardID string `json:"shard_id,omitempty"`
	Error   *Error `json:"error,omitempty"`
}

// QueryResponse is the body of a POST /query reply, success or failure.
type QueryResponse struct {
	// Columns/Types/Rows carry the last row-producing result.
	Columns []string `json:"columns,omitempty"`
	Types   []string `json:"types,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
	// Message carries a non-query statement's outcome ("created view …").
	Message string `json:"message,omitempty"`
	// Error is set instead of the above when the request failed.
	Error *Error `json:"error,omitempty"`
}

// KillRequest is the body of POST /kill: cancel the in-flight query
// with the given session query ID.
type KillRequest struct {
	ID int64 `json:"id"`
}

// KillResponse reports whether /kill found a running query to cancel.
type KillResponse struct {
	Killed bool   `json:"killed"`
	Error  *Error `json:"error,omitempty"`
}

// Header is the first line of an NDJSON response stream.
type Header struct {
	Columns []string `json:"columns"`
	Types   []string `json:"types"`
}

// RowLine is one data line of an NDJSON response stream.
type RowLine struct {
	Row []any `json:"row"`
}

// Trailer ends an NDJSON response stream.
type Trailer struct {
	Done bool `json:"done"`
	Rows int  `json:"rows"`
}

// Error is the wire form of *exec.Error: every field a client needs to
// reconstruct the structured error, minus the query text (the client
// already has it and re-attaches it).
type Error struct {
	Code    string `json:"code"`
	Phase   string `json:"phase,omitempty"`
	Offset  int    `json:"offset"`
	Hint    string `json:"hint,omitempty"`
	Message string `json:"message"`
	// RequestID is the effective request correlation ID, echoed so a
	// failed request can be matched to server logs and traces.
	RequestID string `json:"request_id,omitempty"`
}

// FromError converts any engine error into its wire form. Non-taxonomy
// errors (there should be none escaping the engine) map to RUNTIME.
func FromError(err error) *Error {
	var e *exec.Error
	if !errors.As(err, &e) {
		return &Error{Code: exec.CodeRuntime.String(), Phase: exec.PhaseExecute, Offset: -1, Message: err.Error()}
	}
	msg := ""
	if e.Err != nil {
		msg = e.Err.Error()
	}
	return &Error{
		Code:    e.Code.String(),
		Phase:   e.Phase,
		Offset:  e.Pos,
		Hint:    e.Hint,
		Message: msg,
	}
}

// cause preserves the server-side message verbatim while still
// unwrapping to the context sentinel, so client-side
// errors.Is(err, context.Canceled) keeps working after a round trip.
type cause struct {
	msg   string
	under error
}

func (c *cause) Error() string { return c.msg }
func (c *cause) Unwrap() error { return c.under }

// ToError reconstructs the structured *exec.Error, attaching the query
// text the client sent.
func (w *Error) ToError(query string) *exec.Error {
	code := exec.CodeFromName(w.Code)
	var under error = &cause{msg: w.Message}
	switch code {
	case exec.CodeCanceled:
		under = &cause{msg: w.Message, under: context.Canceled}
	case exec.CodeTimeout:
		under = &cause{msg: w.Message, under: context.DeadlineExceeded}
	}
	return &exec.Error{
		Code:  code,
		Phase: w.Phase,
		Query: query,
		Pos:   w.Offset,
		Hint:  w.Hint,
		Err:   under,
	}
}

// HTTPStatus maps a taxonomy code to the status the server responds
// with. RESOURCE_EXHAUSTED is the overload-shed signal (429, paired
// with Retry-After); 503 is reserved for the draining server, which
// sets it explicitly.
func (w *Error) HTTPStatus() int {
	switch exec.CodeFromName(w.Code) {
	case exec.CodeParse, exec.CodeBind, exec.CodeExpand:
		return http.StatusBadRequest
	case exec.CodeCanceled:
		return StatusClientClosedRequest
	case exec.CodeTimeout:
		return http.StatusGatewayTimeout
	case exec.CodeResourceExhausted:
		return http.StatusTooManyRequests
	case exec.CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// StatusClientClosedRequest reports that the client went away before
// the statement finished (nginx's 499 convention; net/http has no name
// for it).
const StatusClientClosedRequest = 499

// Retryable reports whether a response status invites a retry: only
// overload (429) and draining/unavailable (503). Every other status is
// deterministic — retrying would repeat the same failure.
func Retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// RetryAfterSeconds parses a Retry-After header in its seconds form,
// returning 0 when absent or malformed.
func RetryAfterSeconds(h http.Header) int {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// EncodeRows converts result rows to their JSON-native wire form.
func EncodeRows(rows [][]sqltypes.Value) [][]any {
	out := make([][]any, len(rows))
	for i, row := range rows {
		enc := make([]any, len(row))
		for j, v := range row {
			enc[j] = EncodeValue(v)
		}
		out[i] = enc
	}
	return out
}

// EncodeValue maps a SQL value onto JSON-native types: NULL → null,
// BOOLEAN → bool, INTEGER → number, DOUBLE → number, VARCHAR → string,
// DATE → "YYYY-MM-DD" string.
func EncodeValue(v sqltypes.Value) any {
	if v.Null {
		return nil
	}
	switch v.K {
	case sqltypes.KindBool:
		return v.B
	case sqltypes.KindInt:
		return v.I
	case sqltypes.KindFloat:
		return v.F
	case sqltypes.KindDate:
		return v.Time().Format("2006-01-02")
	default:
		return v.S
	}
}
