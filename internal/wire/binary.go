package wire

// Binary payload helpers for the shard endpoints (/partial, /apply).
// Group keys, aggregate states, and bulk rows travel as base64-wrapped
// binary (the fn codec) rather than JSON values: the encoding is
// canonical — byte equality is value equality — so a coordinator can
// merge groups from different shards by comparing key strings, and a
// decode failure is always a structured error, never a silent zero.

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"

	"github.com/measures-sql/msql/internal/fn"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// maxBinaryRows bounds a decoded /apply batch, mirroring the fn codec's
// discipline of validating lengths before allocating.
const maxBinaryRows = 1 << 22

// EncodeKey encodes a group key (or any value tuple) canonically.
func EncodeKey(vals []sqltypes.Value) string {
	return base64.StdEncoding.EncodeToString(fn.AppendValues(nil, vals))
}

// DecodeKey reverses EncodeKey.
func DecodeKey(s string) ([]sqltypes.Value, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("group key: %w", err)
	}
	vals, n, err := fn.DecodeValues(buf)
	if err != nil {
		return nil, fmt.Errorf("group key: %w", err)
	}
	if n != len(buf) {
		return nil, fmt.Errorf("group key: %d trailing bytes", len(buf)-n)
	}
	return vals, nil
}

// EncodeStates serializes one partial state per aggregate.
func EncodeStates(states []fn.AggState) ([]string, error) {
	out := make([]string, len(states))
	for i, st := range states {
		buf, err := fn.EncodeState(st)
		if err != nil {
			return nil, fmt.Errorf("aggregate %d: %w", i, err)
		}
		out[i] = base64.StdEncoding.EncodeToString(buf)
	}
	return out, nil
}

// DecodeStates reverses EncodeStates.
func DecodeStates(ss []string) ([]fn.AggState, error) {
	out := make([]fn.AggState, len(ss))
	for i, s := range ss {
		buf, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return nil, fmt.Errorf("aggregate %d: %w", i, err)
		}
		st, n, err := fn.DecodeState(buf)
		if err != nil {
			return nil, fmt.Errorf("aggregate %d: %w", i, err)
		}
		if n != len(buf) {
			return nil, fmt.Errorf("aggregate %d: %d trailing bytes", i, len(buf)-n)
		}
		out[i] = st
	}
	return out, nil
}

// EncodeRowsBinary packs rows for ApplyRequest.Rows: a uvarint row
// count, then one fn.AppendValues tuple per row.
func EncodeRowsBinary(rows [][]sqltypes.Value) string {
	buf := binary.AppendUvarint(nil, uint64(len(rows)))
	for _, row := range rows {
		buf = fn.AppendValues(buf, row)
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// DecodeRowsBinary reverses EncodeRowsBinary, validating the declared
// count against the remaining bytes before allocating.
func DecodeRowsBinary(s string) ([][]sqltypes.Value, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("rows: %w", err)
	}
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("rows: bad count prefix")
	}
	if count > maxBinaryRows || count > uint64(len(buf)-n) {
		return nil, fmt.Errorf("rows: count %d exceeds payload", count)
	}
	rest := buf[n:]
	rows := make([][]sqltypes.Value, 0, count)
	for i := uint64(0); i < count; i++ {
		vals, used, err := fn.DecodeValues(rest)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		rest = rest[used:]
		rows = append(rows, vals)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("rows: %d trailing bytes", len(rest))
	}
	return rows, nil
}
