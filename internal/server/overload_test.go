package server_test

// E24: the overload experiment. Sweep offered load (concurrent
// closed-loop clients) against a server with max-inflight 4 and a
// bounded queue, and observe the admission-control signature:
//
//   - latency of ADMITTED requests stays bounded by queue-wait +
//     service time no matter the offered load (no collapse), because
//     excess work is shed at the door rather than queued;
//   - the shed rate is ~zero below capacity and grows with load.
//
// This is the load-shedding half of the robustness story; the chaos
// soak covers the fault-injection half. EXPERIMENTS.md E24 records a
// reference run of this test's table.

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/measures-sql/msql/internal/server"
	"github.com/measures-sql/msql/msql"
	"github.com/measures-sql/msql/msql/client"
)

func TestOverloadSweepE24(t *testing.T) {
	db := testDB(t)
	slowOperators(t) // ~1ms per operator => listing3 takes a few ms

	const (
		queueWait = 25 * time.Millisecond
		window    = 400 * time.Millisecond
	)
	srv, ts := startServer(t, db, server.Config{
		MaxInflight: 4,
		MaxQueue:    4,
		QueueWait:   queueWait,
		MaxTimeout:  time.Second,
	})

	type point struct {
		offered  int
		ok, shed int64
		p50, p95 time.Duration
	}
	var sweep []point

	for _, offered := range []int{2, 8, 32} {
		before := srv.Counters()
		var (
			wg   sync.WaitGroup
			ok   atomic.Int64
			shed atomic.Int64
			mu   sync.Mutex
		)
		var latencies []time.Duration
		stop := make(chan struct{})
		for i := 0; i < offered; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// Attempts: 1 — measure raw server behavior, not retries.
				c := client.New(ts.URL, client.WithBackoff(client.Backoff{
					Attempts: 1, Base: time.Millisecond, Max: time.Millisecond, Seed: int64(i + 1),
				}))
				for {
					select {
					case <-stop:
						return
					default:
					}
					start := time.Now()
					_, err := c.Query(context.Background(), listing3)
					el := time.Since(start)
					switch {
					case err == nil:
						ok.Add(1)
						mu.Lock()
						latencies = append(latencies, el)
						mu.Unlock()
					case errors.Is(err, msql.ErrResourceExhausted):
						shed.Add(1)
					default:
						t.Errorf("offered=%d: unexpected error: %v", offered, err)
						return
					}
				}
			}(i)
		}
		time.Sleep(window)
		close(stop)
		wg.Wait()

		sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
		pct := func(p float64) time.Duration {
			if len(latencies) == 0 {
				return 0
			}
			i := int(p * float64(len(latencies)-1))
			return latencies[i]
		}
		after := srv.Counters()
		pt := point{offered: offered, ok: ok.Load(), shed: shed.Load(), p50: pct(0.50), p95: pct(0.95)}
		sweep = append(sweep, pt)
		t.Logf("offered=%2d clients: ok=%4d shed=%4d (server shed %d) p50=%v p95=%v throughput=%.0f/s",
			pt.offered, pt.ok, pt.shed, after.Shed-before.Shed, pt.p50, pt.p95,
			float64(pt.ok)/window.Seconds())
	}

	under, over := sweep[0], sweep[len(sweep)-1]
	if under.ok == 0 || over.ok == 0 {
		t.Fatalf("no successes at some load point: %+v", sweep)
	}
	if over.shed == 0 {
		t.Fatalf("8x-over-capacity load produced zero sheds; admission control absent")
	}
	// The admitted-latency bound: a request waits at most queueWait for a
	// slot, then runs. Allow generous headroom for scheduler noise, but a
	// collapse (latency ~ offered load) must fail this.
	bound := queueWait + 200*time.Millisecond
	if over.p95 > bound {
		t.Fatalf("p95 at %d clients = %v, above the shed-bounded %v — latency grows with offered load",
			over.offered, over.p95, bound)
	}
}
